#!/usr/bin/env bash
# serve-smoke: the daemon's crash-recovery invariant, end to end.
#
# Leg 1 starts a daemon, submits a measurement job, and SIGKILLs the
# daemon mid-run (as soon as the observation cache shows partial
# progress). Leg 2 restarts on the same state directory: the WAL replay
# must re-enqueue the job and finish it exactly once. Leg 3 runs the same
# job on a fresh daemon with no interruption. The recovered and the
# uninterrupted result documents — and the cache CSVs behind them — must
# be byte-identical (cmp). Finally, a resubmission of the finished job
# must dedup onto it ("duplicate":true) without recomputing anything.
set -euo pipefail

BIN=${BIN:-_build/default/bin/interferometry_cli.exe}
ROOT=${ROOT:-_serve-smoke}
JOB='{"kind":"measure","bench":"429.mcf","layouts":60,"quick":true}'

rm -rf "$ROOT"
mkdir -p "$ROOT"

daemon_pid() { sed -n 's/.*"pid":\([0-9]*\).*/\1/p' "$1/serve.json"; }

start_daemon() { # $1 state dir, $2 log file
  "$BIN" serve --state-dir "$1" >"$2" 2>&1 &
  for _ in $(seq 1 100); do
    [ -f "$1/serve.json" ] && break
    sleep 0.05
  done
  [ -f "$1/serve.json" ] || { echo "serve-smoke: daemon did not boot"; exit 1; }
}

wait_done() { # $1 state dir, $2 job id
  for _ in $(seq 1 600); do
    if "$BIN" status --state-dir "$1" "$2" 2>/dev/null | grep -q '"status":"done"'; then
      return 0
    fi
    sleep 0.2
  done
  echo "serve-smoke: job $2 did not finish"; exit 1
}

# ---- leg 1: submit, then SIGKILL mid-run ---------------------------------
start_daemon "$ROOT/crash" "$ROOT/crash.log"
ACK=$("$BIN" submit --state-dir "$ROOT/crash" "$JOB")
ID=$(printf '%s' "$ACK" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "serve-smoke: no job id in ack: $ACK"; exit 1; }

# Kill as soon as a few observations hit the cache: provably mid-run.
for _ in $(seq 1 600); do
  # Under pipefail, cat's exit 1 on the not-yet-existing glob must not
  # take the script down — the whole point of the loop is to wait for it.
  lines=$(cat "$ROOT"/crash/cache/429.mcf.*.csv 2>/dev/null | wc -l) || lines=0
  [ "$lines" -ge 3 ] && break
  sleep 0.02
done
kill -9 "$(daemon_pid "$ROOT/crash")"
wait 2>/dev/null || true
if [ -f "$ROOT/crash/jobs/$ID.json" ]; then
  echo "serve-smoke: WARNING: job finished before the kill landed (machine too fast?)"
fi
echo "serve-smoke: killed daemon mid-run ($lines cache rows, job $ID)"

# ---- leg 2: restart, replay, exactly-once completion ---------------------
start_daemon "$ROOT/crash" "$ROOT/recover.log"
wait_done "$ROOT/crash" "$ID"
"$BIN" result --state-dir "$ROOT/crash" "$ID" > "$ROOT/recovered.json"
grep -q '"record":"submit"' "$ROOT/crash/ledger.wal"
grep -q '"record":"done"'   "$ROOT/crash/ledger.wal"
[ "$(grep -c '"record":"submit"' "$ROOT/crash/ledger.wal")" -eq 1 ] \
  || { echo "serve-smoke: replay duplicated the submit record"; exit 1; }

# A resubmission dedups onto the finished job — the O(lookup) fast path.
DUP=$("$BIN" submit --state-dir "$ROOT/crash" "$JOB")
printf '%s' "$DUP" | grep -q '"duplicate":true' \
  || { echo "serve-smoke: resubmission was not deduped: $DUP"; exit 1; }
printf '%s' "$DUP" | grep -q '"status":"done"' \
  || { echo "serve-smoke: deduped job not reported done: $DUP"; exit 1; }

# Graceful drain.
kill "$(daemon_pid "$ROOT/crash")"
wait 2>/dev/null || true

# ---- leg 3: the same job, uninterrupted, on fresh state ------------------
start_daemon "$ROOT/clean" "$ROOT/clean.log"
"$BIN" submit --state-dir "$ROOT/clean" "$JOB" >/dev/null
wait_done "$ROOT/clean" "$ID"
"$BIN" result --state-dir "$ROOT/clean" "$ID" > "$ROOT/oneshot.json"
kill "$(daemon_pid "$ROOT/clean")"
wait 2>/dev/null || true

# ---- the invariant -------------------------------------------------------
cmp "$ROOT/recovered.json" "$ROOT/oneshot.json"
cmp "$ROOT"/crash/cache/429.mcf.*.csv "$ROOT"/clean/cache/429.mcf.*.csv
echo "serve-smoke OK: SIGKILL mid-run -> replay -> exactly-once, result and cache bit-identical"
