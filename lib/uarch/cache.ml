type geometry = { size_bytes : int; assoc : int; line_bytes : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let geometry_sets g =
  if g.size_bytes <= 0 || g.assoc <= 0 || g.line_bytes <= 0 then
    invalid_arg "Cache.geometry_sets: nonpositive geometry";
  if not (is_pow2 g.line_bytes) then invalid_arg "Cache.geometry_sets: line size not a power of two";
  let sets = g.size_bytes / (g.assoc * g.line_bytes) in
  if sets * g.assoc * g.line_bytes <> g.size_bytes then
    invalid_arg "Cache.geometry_sets: size not divisible by assoc * line";
  if not (is_pow2 sets) then invalid_arg "Cache.geometry_sets: set count not a power of two";
  sets

type t = {
  geometry : geometry;
  sets : int;
  line_shift : int;
  tags : int array;  (** [set * assoc + way], LRU order per set; -1 invalid *)
  mutable accesses : int;
  mutable misses : int;
}

let log2_exact n =
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let create g =
  let sets = geometry_sets g in
  {
    geometry = g;
    sets;
    line_shift = log2_exact g.line_bytes;
    tags = Array.make (sets * g.assoc) (-1);
    accesses = 0;
    misses = 0;
  }

let geometry t = t.geometry

(* [find_way]/[promote] are the innermost operations of every simulated
   cache reference; they run once or twice per dynamic block. Indices stay
   in bounds by construction ([base = set * assoc] with [set < sets], and
   [way < assoc]), so the bound is hoisted and the scans use unsafe reads
   instead of a bounds check per way. *)
let find_way t base tag =
  let tags = t.tags in
  let limit = base + t.geometry.assoc in
  let i = ref base in
  while !i < limit && Array.unsafe_get tags !i <> tag do incr i done;
  if !i < limit then !i - base else -1

let promote t base way tag =
  (* Shift ways [0, way) down one and install [tag] as MRU. *)
  let tags = t.tags in
  for w = base + way downto base + 1 do
    Array.unsafe_set tags w (Array.unsafe_get tags (w - 1))
  done;
  Array.unsafe_set tags base tag

let access t addr =
  t.accesses <- t.accesses + 1;
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let base = set * t.geometry.assoc in
  let way = find_way t base line in
  if way >= 0 then begin
    promote t base way line;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    promote t base (t.geometry.assoc - 1) line;
    false
  end

let probe t addr =
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let base = set * t.geometry.assoc in
  find_way t base line >= 0

let touch t addr = ignore (access t addr)

let fill t addr =
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let base = set * t.geometry.assoc in
  let way = find_way t base line in
  promote t base (if way >= 0 then way else t.geometry.assoc - 1) line

(* Hot-path internals for callers that inline the MRU-hit check (the replay
   fetch loop): when [tags.((line land set_mask) * assoc) = line] the access
   is an MRU hit — [promote] would be a no-op — so the caller only needs
   [count_hit]; any other case must go through [access]. *)
let hot t = (t.tags, t.sets - 1, t.geometry.assoc, t.line_shift)
let count_hit t = t.accesses <- t.accesses + 1

let access_range t ~addr ~bytes =
  if bytes <= 0 then 0
  else begin
    let first = addr lsr t.line_shift in
    let last = (addr + bytes - 1) lsr t.line_shift in
    let misses = ref 0 in
    for line = first to last do
      if not (access t (line lsl t.line_shift)) then incr misses
    done;
    !misses
  end

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.accesses <- 0;
  t.misses <- 0

let accesses t = t.accesses
let misses t = t.misses
