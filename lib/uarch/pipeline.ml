module Program = Pi_isa.Program
module Trace = Pi_isa.Trace

type penalties = {
  mispredict : float;
  btb_miss : float;
  l1i_miss : float;
  l1d_miss : float;
  l2_miss : float;
  store_miss_factor : float;
}

type instr_costs = {
  plain : float;
  fp : float;
  mul : float;
  div : float;
  mem : float;
  term : float;
}

type overlap = { chase : float; random : float; sequential : float; fixed : float }

type config = {
  name : string;
  make_predictor : unit -> Predictor.t;
  make_indirect : unit -> Indirect.t;
  data_prefetcher : bool;
  trace_cache : Trace_cache.geometry option;
  l1i : Cache.geometry;
  l1d : Cache.geometry;
  l2 : Cache.geometry;
  costs : instr_costs;
  penalties : penalties;
  overlap : overlap;
  wrong_path : bool;
  perfect_btb : bool;  (* oracle indirect-target prediction *)
}

type counts = {
  cycles : float;
  instructions : int;
  cond_branches : int;
  cond_mispredicts : int;
  indirect_branches : int;
  indirect_mispredicts : int;
  btb_misses : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  l2_accesses : int;
  l2_misses : int;
}

(* Static per-block cost of the instruction mix, cycles. *)
let block_base_cost costs (b : Program.block) =
  let acc = ref costs.term in
  Array.iter
    (fun instr ->
      acc :=
        !acc
        +.
        match instr with
        | Program.Plain n -> costs.plain *. float_of_int n
        | Program.Fp n -> costs.fp *. float_of_int n
        | Program.Mul n -> costs.mul *. float_of_int n
        | Program.Div n -> costs.div *. float_of_int n
        | Program.Mem _ -> costs.mem)
    b.instrs;
  !acc

let pattern_overlap overlap = function
  | Program.Chase _ -> overlap.chase
  | Program.Random_uniform -> overlap.random
  | Program.Sequential _ -> overlap.sequential
  | Program.Fixed_offset _ -> overlap.fixed

let run_unoptimized ?(warmup_blocks = 0) config (trace : Trace.t) (placement : Pi_layout.Placement.t) =
  let program = trace.Trace.program in
  let code = placement.Pi_layout.Placement.code in
  let data = placement.Pi_layout.Placement.data in
  let predictor = config.make_predictor () in
  let indirect_predictor = config.make_indirect () in
  let prefetcher = if config.data_prefetcher then Some (Prefetcher.create ()) else None in
  let trace_cache = Option.map Trace_cache.create config.trace_cache in
  let l1i = Cache.create config.l1i in
  let l1d = Cache.create config.l1d in
  let l2 = Cache.create config.l2 in
  let n_blocks = Array.length program.Program.blocks in
  let base_cost =
    Array.init n_blocks (fun i -> block_base_cost config.costs program.Program.blocks.(i))
  in
  (* Flattened static memory-op id list per block, so the hot loop walks an
     int array instead of re-matching instructions. *)
  let block_mem_ids =
    Array.init n_blocks (fun i ->
        let ids = ref [] in
        Array.iter
          (function Program.Mem m -> ids := m :: !ids | _ -> ())
          program.Program.blocks.(i).Program.instrs;
        Array.of_list (List.rev !ids))
  in
  let mem_overlap =
    Array.map
      (fun (m : Program.mem_op) -> pattern_overlap config.overlap m.pattern)
      program.Program.mem_ops
  in
  let line = config.l1d.Cache.line_bytes in
  let block_addr = code.Pi_layout.Code_layout.block_addr in
  let block_bytes = code.Pi_layout.Code_layout.block_bytes in
  let branch_pc = code.Pi_layout.Code_layout.branch_pc in
  let ibr_pc = code.Pi_layout.Code_layout.ibr_pc in
  let line_shift =
    let rec log2 k v = if v = 1 then k else log2 (k + 1) (v lsr 1) in
    log2 0 config.l1i.Cache.line_bytes
  in
  let block_instrs =
    Array.init n_blocks (fun i -> Program.block_instr_count program i)
  in
  let cycles = ref 0.0 in
  let cond_mispredicts = ref 0 in
  let indirect_mispredicts = ref 0 in
  let btb_misses = ref 0 in
  let cond_branches = ref 0 in
  let indirect_branches = ref 0 in
  let instructions = ref 0 in
  (* Cache counter snapshots taken at the warmup boundary. *)
  let l1i_base = ref (0, 0) and l1d_base = ref (0, 0) and l2_base = ref (0, 0) in
  let pen = config.penalties in
  (* Fetch the lines of a block through L1I (missing into L2), charging
     penalties; [charge] is false for wrong-path fetches. *)
  let fetch ~charge addr bytes =
    let first = addr lsr line_shift in
    let last = (addr + bytes - 1) lsr line_shift in
    for l = first to last do
      let line_addr = l lsl line_shift in
      if not (Cache.access l1i line_addr) then
        if Cache.access l2 line_addr then begin
          if charge then cycles := !cycles +. pen.l1i_miss
        end
        else if charge then cycles := !cycles +. pen.l2_miss *. 0.7
      (* Instruction misses to memory overlap poorly but the stream is
         prefetch-friendly; 0.7 reflects partial hiding. *)
    done
  in
  let mem_events = trace.Trace.mem_events in
  let n_events = Array.length mem_events in
  let mem_cursor = ref 0 in
  (* Resolve and access one data reference, charging penalties. *)
  let data_access mem_id event =
    let addr = Pi_layout.Data_layout.address data event in
    let is_store = Trace.mem_is_store event in
    if not (Cache.access l1d addr) then begin
      let factor =
        (if is_store then pen.store_miss_factor else 1.0) *. mem_overlap.(mem_id)
      in
      if Cache.access l2 addr then cycles := !cycles +. (pen.l1d_miss *. factor)
      else cycles := !cycles +. (pen.l2_miss *. factor)
    end;
    match prefetcher with
    | Some pf -> (
        match Prefetcher.observe pf ~mem_id ~addr with
        | Some (first, count) ->
            (* Prefetches fill L1D and L2 ahead of demand, off the critical
               path (no cycle charge). *)
            for k = 0 to count - 1 do
              let line_addr = first + (k * 64) in
              Cache.fill l2 line_addr;
              Cache.fill l1d line_addr
            done
        | None -> ())
    | None -> ()
  in
  let wrong_path_runs = ref 0 in
  let last_prefetch_cursor = ref (-1) in
  let wrong_path_effects ~alternate_block =
    if config.wrong_path then begin
      (* The front end runs ahead down the wrong path: the alternate
         target's first line may be installed in L1I, but only if it is
         already L2-resident — a memory-latency fetch never completes
         before the pipeline redirects. The L2 is not disturbed. *)
      let alt_line =
        block_addr.(alternate_block) land lnot (config.l1i.Cache.line_bytes - 1)
      in
      if (not (Cache.probe l1i alt_line)) && Cache.probe l2 alt_line then
        Cache.touch l1i alt_line;
      (* ...and occasionally runs far enough ahead to issue the next load
         speculatively, pulling its line into L2 early (prefetch) or
         displacing useful data (pollution). The redirect usually arrives
         first, so only a fraction of mispredictions get this far — and
         back-to-back mispredictions can only prefetch the same upcoming
         line once, so the benefit SATURATES as mispredictions get denser.
         That saturation is the mechanical source of the mild non-linearity
         the paper observes on benchmarks that combine frequent
         mispredictions with last-level-cache pressure (252.eon,
         178.galgel). *)
      incr wrong_path_runs;
      if
        !wrong_path_runs land 7 = 0
        && !last_prefetch_cursor <> !mem_cursor
        && !mem_cursor < n_events
      then begin
        let next_event = mem_events.(!mem_cursor) in
        let addr = Pi_layout.Data_layout.address data next_event in
        Cache.touch l2 (addr land lnot (line - 1));
        last_prefetch_cursor := !mem_cursor
      end
    end
  in
  let seq = trace.Trace.block_seq in
  let n = Array.length seq in
  let warmup = min warmup_blocks (max 0 (n - 1)) in
  for i = 0 to n - 1 do
    if i = warmup then begin
      (* Structures stay warm; measurement starts here, modelling the
         steady state a multi-minute run reaches. *)
      cycles := 0.0;
      cond_mispredicts := 0;
      indirect_mispredicts := 0;
      btb_misses := 0;
      cond_branches := 0;
      indirect_branches := 0;
      instructions := 0;
      l1i_base := (Cache.accesses l1i, Cache.misses l1i);
      l1d_base := (Cache.accesses l1d, Cache.misses l1d);
      l2_base := (Cache.accesses l2, Cache.misses l2)
    end;
    let b = seq.(i) in
    instructions := !instructions + block_instrs.(b);
    cycles := !cycles +. base_cost.(b);
    let trace_cache_hit =
      match trace_cache with
      | Some tc -> Trace_cache.access tc ~block_id:b
      | None -> false
    in
    if not trace_cache_hit then fetch ~charge:true block_addr.(b) block_bytes.(b);
    let ids = block_mem_ids.(b) in
    for k = 0 to Array.length ids - 1 do
      data_access ids.(k) mem_events.(!mem_cursor + k)
    done;
    mem_cursor := !mem_cursor + Array.length ids;
    if i + 1 < n then begin
      let next = seq.(i + 1) in
      match program.Program.blocks.(b).Program.term with
      | Program.Branch { branch; taken; not_taken } ->
          incr cond_branches;
          let outcome = next = taken in
          let correct = predictor.Predictor.on_branch ~pc:branch_pc.(branch) ~taken:outcome in
          if not correct then begin
            incr cond_mispredicts;
            cycles := !cycles +. pen.mispredict;
            wrong_path_effects ~alternate_block:(if outcome then not_taken else taken)
          end
      | Program.Switch { ibr; targets } ->
          incr indirect_branches;
          let target_addr = block_addr.(next) in
          let hit =
            config.perfect_btb
            || indirect_predictor.Indirect.on_indirect ~pc:ibr_pc.(ibr) ~target:target_addr
          in
          if not hit then begin
            incr indirect_mispredicts;
            incr btb_misses;
            cycles := !cycles +. pen.btb_miss;
            if Array.length targets > 0 then wrong_path_effects ~alternate_block:targets.(0)
          end
      | Program.Indirect_call { ibr; callees; return_to = _ } ->
          incr indirect_branches;
          let target_addr = block_addr.(next) in
          let hit =
            config.perfect_btb
            || indirect_predictor.Indirect.on_indirect ~pc:ibr_pc.(ibr) ~target:target_addr
          in
          if not hit then begin
            incr indirect_mispredicts;
            incr btb_misses;
            cycles := !cycles +. pen.btb_miss;
            if Array.length callees > 0 then
              wrong_path_effects
                ~alternate_block:program.Program.procs.(callees.(0)).Program.entry
          end
      | Program.Jump _ | Program.Call _ | Program.Return | Program.Halt -> ()
    end
  done;
  let delta (a0, m0) cache = (Cache.accesses cache - a0, Cache.misses cache - m0) in
  let l1i_acc, l1i_miss = delta !l1i_base l1i in
  let l1d_acc, l1d_miss = delta !l1d_base l1d in
  let l2_acc, l2_miss = delta !l2_base l2 in
  {
    cycles = !cycles;
    instructions = !instructions;
    cond_branches = !cond_branches;
    cond_mispredicts = !cond_mispredicts;
    indirect_branches = !indirect_branches;
    indirect_mispredicts = !indirect_mispredicts;
    btb_misses = !btb_misses;
    l1i_accesses = l1i_acc;
    l1i_misses = l1i_miss;
    l1d_accesses = l1d_acc;
    l1d_misses = l1d_miss;
    l2_accesses = l2_acc;
    l2_misses = l2_miss;
  }

(* ------------------------------------------------------------------ *)
(* Compiled replay plans.

   Interferometry runs one trace under hundreds of placements, so the
   per-placement cost of [run_unoptimized] — rebuilding the static cost
   tables, re-walking instruction arrays to find memory ops, and
   re-pattern-matching every dynamic block's terminator — is pure waste
   after the first run. [compile] performs all of that work once, producing
   flat arrays indexed by dynamic-block ordinal; [replay] then walks those
   arrays with no per-event allocation or variant matching. Replay output is
   bit-identical to [run_unoptimized]: the same floats are accumulated in
   the same order and the same cache/predictor state transitions happen in
   the same sequence.

   A plan is immutable after [compile] and holds no simulation state
   (caches and predictors are created per [replay] call), so one plan can be
   replayed concurrently from many domains. *)

type plan = {
  plan_config : config;
  plan_trace : Trace.t;
  (* Per dynamic block, indexed by execution ordinal: *)
  step_block : int array;  (** static block id *)
  step_instrs : int array;  (** retired instructions of the block *)
  step_cost : float array;  (** static issue cost of the block, cycles *)
  step_mem_start : int array;  (** first index of the block's span in [mem_events] *)
  step_mem_count : int array;  (** memory events issued by the block *)
  step_kind : int array;  (** 0 none, 1 cond not-taken, 2 cond taken, 3 indirect *)
  step_id : int array;  (** branch id (kind 1/2) or ibr id (kind 3) *)
  step_next : int array;  (** kind 3: dynamic successor block id *)
  step_alt : int array;  (** wrong-path alternate block id; -1 when none *)
  (* Per dynamic memory event, aligned with [trace.mem_events]: *)
  ev_factor : float array;  (** (store ? store_miss_factor : 1) x overlap *)
  ev_mem_id : int array;  (** static memory-op id (prefetcher key) *)
}

let plan_config plan = plan.plan_config
let plan_trace plan = plan.plan_trace
let plan_blocks plan = Array.length plan.step_block
let plan_mem_events plan = Array.length plan.ev_mem_id

let plan_words plan =
  (* Rough heap footprint in machine words, for reporting. *)
  (7 * Array.length plan.step_block)
  + (2 * Array.length plan.step_cost)
  + Array.length plan.ev_mem_id
  + (2 * Array.length plan.ev_factor)

(* Observability instruments for the replay path. Bumped once per
   compile / replay call — from the final aggregate counters, never inside
   the per-event loop — so metering costs nothing against the hot loop. *)
let m_plan_compiles =
  Pi_obs.Metrics.counter ~help:"replay plans compiled from a trace" "pi_obs_plan_compiles_total"

let m_plan_reuses =
  Pi_obs.Metrics.counter ~help:"plan_with_config calls that reused the compiled arrays"
    "pi_obs_plan_reuses_total"

let m_replay_runs =
  Pi_obs.Metrics.counter ~help:"compiled-plan replays executed" "pi_obs_replay_runs_total"

let m_replay_blocks =
  Pi_obs.Metrics.counter ~help:"dynamic blocks replayed" "pi_obs_replay_blocks_total"

let m_branches =
  Pi_obs.Metrics.counter ~help:"conditional + indirect branches replayed" "pi_obs_branches_total"

let m_mispredicts =
  Pi_obs.Metrics.counter ~help:"conditional + indirect mispredictions replayed"
    "pi_obs_mispredicts_total"

let m_cache_probes =
  Pi_obs.Metrics.counter ~help:"L1I + L1D + L2 cache probes replayed" "pi_obs_cache_probes_total"

let compile config (trace : Trace.t) =
  Pi_obs.Metrics.inc m_plan_compiles;
  let program = trace.Trace.program in
  let n_blocks = Array.length program.Program.blocks in
  let base_cost =
    Array.init n_blocks (fun i -> block_base_cost config.costs program.Program.blocks.(i))
  in
  let block_mem_ids =
    Array.init n_blocks (fun i ->
        let ids = ref [] in
        Array.iter
          (function Program.Mem m -> ids := m :: !ids | _ -> ())
          program.Program.blocks.(i).Program.instrs;
        Array.of_list (List.rev !ids))
  in
  let mem_overlap =
    Array.map
      (fun (m : Program.mem_op) -> pattern_overlap config.overlap m.pattern)
      program.Program.mem_ops
  in
  let block_instrs = Array.init n_blocks (fun i -> Program.block_instr_count program i) in
  let seq = trace.Trace.block_seq in
  let mem_events = trace.Trace.mem_events in
  let n = Array.length seq in
  let n_events = Array.length mem_events in
  let step_block = Array.make n 0 in
  let step_instrs = Array.make n 0 in
  let step_cost = Array.make n 0.0 in
  let step_mem_start = Array.make n 0 in
  let step_mem_count = Array.make n 0 in
  let step_kind = Array.make n 0 in
  let step_id = Array.make n 0 in
  let step_next = Array.make n 0 in
  let step_alt = Array.make n (-1) in
  let ev_factor = Array.make n_events 0.0 in
  let ev_mem_id = Array.make n_events 0 in
  let smf = config.penalties.store_miss_factor in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    let b = seq.(i) in
    step_block.(i) <- b;
    step_instrs.(i) <- block_instrs.(b);
    step_cost.(i) <- base_cost.(b);
    let ids = block_mem_ids.(b) in
    let count = Array.length ids in
    step_mem_start.(i) <- !cursor;
    step_mem_count.(i) <- count;
    for k = 0 to count - 1 do
      let id = ids.(k) in
      let e = mem_events.(!cursor + k) in
      ev_mem_id.(!cursor + k) <- id;
      ev_factor.(!cursor + k) <-
        (if Trace.mem_is_store e then smf else 1.0) *. mem_overlap.(id)
    done;
    cursor := !cursor + count;
    if i + 1 < n then begin
      let next = seq.(i + 1) in
      match program.Program.blocks.(b).Program.term with
      | Program.Branch { branch; taken; not_taken } ->
          let outcome = next = taken in
          step_kind.(i) <- (if outcome then 2 else 1);
          step_id.(i) <- branch;
          step_alt.(i) <- (if outcome then not_taken else taken)
      | Program.Switch { ibr; targets } ->
          step_kind.(i) <- 3;
          step_id.(i) <- ibr;
          step_next.(i) <- next;
          step_alt.(i) <- (if Array.length targets > 0 then targets.(0) else -1)
      | Program.Indirect_call { ibr; callees; return_to = _ } ->
          step_kind.(i) <- 3;
          step_id.(i) <- ibr;
          step_next.(i) <- next;
          step_alt.(i) <-
            (if Array.length callees > 0 then
               program.Program.procs.(callees.(0)).Program.entry
             else -1)
      | Program.Jump _ | Program.Call _ | Program.Return | Program.Halt -> ()
    end
  done;
  {
    plan_config = config;
    plan_trace = trace;
    step_block;
    step_instrs;
    step_cost;
    step_mem_start;
    step_mem_count;
    step_kind;
    step_id;
    step_next;
    step_alt;
    ev_factor;
    ev_mem_id;
  }

(* The plan depends on [config] only through the instruction costs, the
   overlap factors and the store-miss factor; everything else (geometries,
   penalties, predictors) is consumed at replay time. Reuse the compiled
   arrays when those parameters are unchanged — swapping predictors across a
   sweep costs nothing — and recompile otherwise. *)
let plan_with_config plan config =
  let old = plan.plan_config in
  if
    old.costs = config.costs && old.overlap = config.overlap
    && old.penalties.store_miss_factor = config.penalties.store_miss_factor
  then begin
    Pi_obs.Metrics.inc m_plan_reuses;
    { plan with plan_config = config }
  end
  else compile config plan.plan_trace

(* Unboxed cycle accumulator: a [float ref] would box a fresh float on every
   update, several allocations per simulated block. *)
type cycle_acc = { mutable cycles : float }

(* Branchless saturating two-bit counter update: exactly
   [if taken then min 3 (c + 1) else max 0 (c - 1)] for [c] in [0,3] and
   [taken_int] in {0,1}. Data-dependent branches on the simulated outcome
   are unpredictable to the host CPU, so the predictor kernels avoid them. *)
let[@inline] sat2_update c taken_int =
  let c1 = c + (taken_int lsl 1) - 1 in
  let c2 = c1 land lnot (c1 asr 62) in
  c2 - (c2 lsr 2)

let log2_exact v =
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  go 0 v

let replay ?(warmup_blocks = 0) plan (placement : Pi_layout.Placement.t) =
  let config = plan.plan_config in
  let trace = plan.plan_trace in
  let code = placement.Pi_layout.Placement.code in
  let data = placement.Pi_layout.Placement.data in
  let predictor = config.make_predictor () in
  let indirect_predictor = config.make_indirect () in
  let prefetcher = if config.data_prefetcher then Some (Prefetcher.create ()) else None in
  let trace_cache = Option.map Trace_cache.create config.trace_cache in
  let l1i = Cache.create config.l1i in
  let l1d = Cache.create config.l1d in
  let l2 = Cache.create config.l2 in
  let block_addr = code.Pi_layout.Code_layout.block_addr in
  let block_bytes = code.Pi_layout.Code_layout.block_bytes in
  let branch_pc = code.Pi_layout.Code_layout.branch_pc in
  let ibr_pc = code.Pi_layout.Code_layout.ibr_pc in
  let global_base = data.Pi_layout.Data_layout.global_base in
  let heap_base = data.Pi_layout.Data_layout.heap_base in
  let line_shift = log2_exact config.l1i.Cache.line_bytes in
  let l1i_tags, l1i_set_mask, l1i_assoc, _ = Cache.hot l1i in
  let l1i_line_mask = lnot (config.l1i.Cache.line_bytes - 1) in
  let data_line_mask = lnot (config.l1d.Cache.line_bytes - 1) in
  let pen = config.penalties in
  (* Hoisted penalty constants; [l2_fetch_penalty] matches the legacy
     [pen.l2_miss *. 0.7] computed inline (same operands, same product). *)
  let l1i_miss_penalty = pen.l1i_miss in
  let l2_fetch_penalty = pen.l2_miss *. 0.7 in
  let l1d_miss_penalty = pen.l1d_miss in
  let l2_miss_penalty = pen.l2_miss in
  let mispredict_penalty = pen.mispredict in
  let btb_miss_penalty = pen.btb_miss in
  let pkernel = predictor.Predictor.kernel in
  let step_block = plan.step_block in
  let step_instrs = plan.step_instrs in
  let step_cost = plan.step_cost in
  let step_mem_start = plan.step_mem_start in
  let step_mem_count = plan.step_mem_count in
  let step_kind = plan.step_kind in
  let step_id = plan.step_id in
  let step_next = plan.step_next in
  let step_alt = plan.step_alt in
  let ev_factor = plan.ev_factor in
  let ev_mem_id = plan.ev_mem_id in
  let mem_events = trace.Trace.mem_events in
  let n_events = Array.length mem_events in
  let acc = { cycles = 0.0 } in
  let cond_mispredicts = ref 0 in
  let indirect_mispredicts = ref 0 in
  let btb_misses = ref 0 in
  let cond_branches = ref 0 in
  let indirect_branches = ref 0 in
  let instructions = ref 0 in
  let l1i_base = ref (0, 0) and l1d_base = ref (0, 0) and l2_base = ref (0, 0) in
  let wrong_path_runs = ref 0 in
  let last_prefetch_cursor = ref (-1) in
  let wrong_path = config.wrong_path in
  (* [cursor] is the index of the first memory event of the *next* block,
     exactly the legacy [mem_cursor] at wrong-path time. *)
  let wrong_path_effects alternate_block cursor =
    if wrong_path then begin
      let alt_line = Array.unsafe_get block_addr alternate_block land l1i_line_mask in
      if (not (Cache.probe l1i alt_line)) && Cache.probe l2 alt_line then
        Cache.touch l1i alt_line;
      incr wrong_path_runs;
      if !wrong_path_runs land 7 = 0 && !last_prefetch_cursor <> cursor && cursor < n_events
      then begin
        let next_event = Array.unsafe_get mem_events cursor in
        let addr = Pi_layout.Data_layout.address data next_event in
        Cache.touch l2 (addr land data_line_mask);
        last_prefetch_cursor := cursor
      end
    end
  in
  let n = Array.length step_block in
  let warmup = min warmup_blocks (max 0 (n - 1)) in
  for i = 0 to n - 1 do
    if i = warmup then begin
      acc.cycles <- 0.0;
      cond_mispredicts := 0;
      indirect_mispredicts := 0;
      btb_misses := 0;
      cond_branches := 0;
      indirect_branches := 0;
      instructions := 0;
      l1i_base := (Cache.accesses l1i, Cache.misses l1i);
      l1d_base := (Cache.accesses l1d, Cache.misses l1d);
      l2_base := (Cache.accesses l2, Cache.misses l2)
    end;
    let b = Array.unsafe_get step_block i in
    instructions := !instructions + Array.unsafe_get step_instrs i;
    acc.cycles <- acc.cycles +. Array.unsafe_get step_cost i;
    let trace_cache_hit =
      match trace_cache with
      | Some tc -> Trace_cache.access tc ~block_id:b
      | None -> false
    in
    if not trace_cache_hit then begin
      let addr = Array.unsafe_get block_addr b in
      let first = addr lsr line_shift in
      let last = (addr + Array.unsafe_get block_bytes b - 1) lsr line_shift in
      for l = first to last do
        (* Fetches overwhelmingly hit the L1I MRU way (straight-line code
           re-reads the same line); that case is inlined and the full
           [Cache.access] path only runs when the MRU check fails. *)
        if Array.unsafe_get l1i_tags ((l land l1i_set_mask) * l1i_assoc) = l then
          Cache.count_hit l1i
        else begin
          let line_addr = l lsl line_shift in
          if not (Cache.access l1i line_addr) then
            if Cache.access l2 line_addr then acc.cycles <- acc.cycles +. l1i_miss_penalty
            else acc.cycles <- acc.cycles +. l2_fetch_penalty
        end
      done
    end;
    let mstart = Array.unsafe_get step_mem_start i in
    let mcount = Array.unsafe_get step_mem_count i in
    if mcount > 0 then begin
      for k = mstart to mstart + mcount - 1 do
        let e = Array.unsafe_get mem_events k in
        let addr =
          let offset = Trace.mem_offset e in
          match Trace.mem_space e with
          | Program.Global -> global_base.(Trace.mem_target e) + offset
          | Program.Heap -> heap_base.(Trace.mem_target e).(Trace.mem_obj e) + offset
        in
        if not (Cache.access l1d addr) then begin
          let factor = Array.unsafe_get ev_factor k in
          if Cache.access l2 addr then acc.cycles <- acc.cycles +. (l1d_miss_penalty *. factor)
          else acc.cycles <- acc.cycles +. (l2_miss_penalty *. factor)
        end;
        match prefetcher with
        | Some pf -> (
            match Prefetcher.observe pf ~mem_id:(Array.unsafe_get ev_mem_id k) ~addr with
            | Some (first, count) ->
                for p = 0 to count - 1 do
                  let line_addr = first + (p * 64) in
                  Cache.fill l2 line_addr;
                  Cache.fill l1d line_addr
                done
            | None -> ())
        | None -> ()
      done
    end;
    let kind = Array.unsafe_get step_kind i in
    if kind <> 0 then
      if kind < 3 then begin
        incr cond_branches;
        let taken_int = kind - 1 in
        let pc = Array.unsafe_get branch_pc (Array.unsafe_get step_id i) in
        (* Predictor kernels: the table-indexed predictors are advanced
           inline, with branchless counter updates, instead of paying a
           closure call whose saturating-counter branches the host CPU
           cannot predict. Each arm reproduces the matching [on_branch]
           closure decision-for-decision on the shared live state. *)
        let correct =
          match pkernel with
          | Some (Predictor.Hybrid_k k) ->
              let hashed = pc lsr 1 in
              let h = !(k.history) in
              let gidx = (hashed lxor h) land k.gas_index_mask land k.gas_mask in
              let bidx = hashed land k.bim_mask in
              let cidx = hashed land k.cho_mask in
              let gc = Char.code (Bytes.unsafe_get k.gas gidx) in
              let bc = Char.code (Bytes.unsafe_get k.bim bidx) in
              let cc = Char.code (Bytes.unsafe_get k.cho cidx) in
              let gp = (gc lsr 1) land 1 in
              let bp = (bc lsr 1) land 1 in
              let sel = -((cc lsr 1) land 1) in
              let p = (gp land sel) lor (bp land lnot sel) in
              Bytes.unsafe_set k.gas gidx (Char.unsafe_chr (sat2_update gc taken_int));
              Bytes.unsafe_set k.bim bidx (Char.unsafe_chr (sat2_update bc taken_int));
              (* Chooser trains toward whichever component was right, and
                 only when they disagree; expressed as an always-write with
                 a disagreement mask so there is no data-dependent branch. *)
              let nsel = -(gp lxor bp) in
              let cc' = sat2_update cc (1 - (gp lxor taken_int)) in
              Bytes.unsafe_set k.cho cidx
                (Char.unsafe_chr ((cc' land nsel) lor (cc land lnot nsel)));
              k.history := ((h lsl 1) lor taken_int) land k.history_mask;
              p = taken_int
          | Some (Predictor.Bimodal_k k) ->
              let idx = (pc lsr 1) land k.mask in
              let c = Char.code (Bytes.unsafe_get k.counters idx) in
              Bytes.unsafe_set k.counters idx (Char.unsafe_chr (sat2_update c taken_int));
              (c lsr 1) land 1 = taken_int
          | Some (Predictor.Gshare_k k) ->
              let h = !(k.history) in
              let idx = ((pc lsr 1) lxor h) land k.mask in
              let c = Char.code (Bytes.unsafe_get k.counters idx) in
              Bytes.unsafe_set k.counters idx (Char.unsafe_chr (sat2_update c taken_int));
              k.history := ((h lsl 1) lor taken_int) land k.history_mask;
              (c lsr 1) land 1 = taken_int
          | Some (Predictor.Gas_k k) ->
              let h = !(k.history) in
              let idx =
                ((((pc lsr 1) land k.addr_mask) lsl k.history_bits) lor h) land k.mask
              in
              let c = Char.code (Bytes.unsafe_get k.counters idx) in
              Bytes.unsafe_set k.counters idx (Char.unsafe_chr (sat2_update c taken_int));
              k.history := ((h lsl 1) lor taken_int) land k.history_mask;
              (c lsr 1) land 1 = taken_int
          | None -> predictor.Predictor.on_branch ~pc ~taken:(taken_int <> 0)
        in
        if not correct then begin
          incr cond_mispredicts;
          acc.cycles <- acc.cycles +. mispredict_penalty;
          wrong_path_effects (Array.unsafe_get step_alt i) (mstart + mcount)
        end
      end
      else begin
        incr indirect_branches;
        let target_addr = Array.unsafe_get block_addr (Array.unsafe_get step_next i) in
        let pc = Array.unsafe_get ibr_pc (Array.unsafe_get step_id i) in
        let hit =
          config.perfect_btb || indirect_predictor.Indirect.on_indirect ~pc ~target:target_addr
        in
        if not hit then begin
          incr indirect_mispredicts;
          incr btb_misses;
          acc.cycles <- acc.cycles +. btb_miss_penalty;
          let alt = Array.unsafe_get step_alt i in
          if alt >= 0 then wrong_path_effects alt (mstart + mcount)
        end
      end
  done;
  let delta (a0, m0) cache = (Cache.accesses cache - a0, Cache.misses cache - m0) in
  let l1i_acc, l1i_miss = delta !l1i_base l1i in
  let l1d_acc, l1d_miss = delta !l1d_base l1d in
  let l2_acc, l2_miss = delta !l2_base l2 in
  Pi_obs.Metrics.inc m_replay_runs;
  Pi_obs.Metrics.add m_replay_blocks (Array.length step_block);
  Pi_obs.Metrics.add m_branches (!cond_branches + !indirect_branches);
  Pi_obs.Metrics.add m_mispredicts (!cond_mispredicts + !indirect_mispredicts);
  Pi_obs.Metrics.add m_cache_probes (l1i_acc + l1d_acc + l2_acc);
  {
    cycles = acc.cycles;
    instructions = !instructions;
    cond_branches = !cond_branches;
    cond_mispredicts = !cond_mispredicts;
    indirect_branches = !indirect_branches;
    indirect_mispredicts = !indirect_mispredicts;
    btb_misses = !btb_misses;
    l1i_accesses = l1i_acc;
    l1i_misses = l1i_miss;
    l1d_accesses = l1d_acc;
    l1d_misses = l1d_miss;
    l2_accesses = l2_acc;
    l2_misses = l2_miss;
  }

let run ?warmup_blocks config trace placement =
  replay ?warmup_blocks (compile config trace) placement

let cpi c =
  if c.instructions = 0 then 0.0 else c.cycles /. float_of_int c.instructions

let mispredicts c = c.cond_mispredicts + c.indirect_mispredicts

let per_kilo_instr count c =
  if c.instructions = 0 then 0.0
  else 1000.0 *. float_of_int count /. float_of_int c.instructions

let mpki c = per_kilo_instr (mispredicts c) c
let l1i_mpki c = per_kilo_instr c.l1i_misses c
let l1d_mpki c = per_kilo_instr c.l1d_misses c
let l2_mpki c = per_kilo_instr c.l2_misses c
