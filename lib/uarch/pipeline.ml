module Program = Pi_isa.Program
module Trace = Pi_isa.Trace

type penalties = {
  mispredict : float;
  btb_miss : float;
  l1i_miss : float;
  l1d_miss : float;
  l2_miss : float;
  store_miss_factor : float;
}

type instr_costs = {
  plain : float;
  fp : float;
  mul : float;
  div : float;
  mem : float;
  term : float;
}

type overlap = { chase : float; random : float; sequential : float; fixed : float }

type config = {
  name : string;
  make_predictor : unit -> Predictor.t;
  make_indirect : unit -> Indirect.t;
  data_prefetcher : bool;
  trace_cache : Trace_cache.geometry option;
  l1i : Cache.geometry;
  l1d : Cache.geometry;
  l2 : Cache.geometry;
  costs : instr_costs;
  penalties : penalties;
  overlap : overlap;
  wrong_path : bool;
  perfect_btb : bool;  (* oracle indirect-target prediction *)
}

type counts = {
  cycles : float;
  instructions : int;
  cond_branches : int;
  cond_mispredicts : int;
  indirect_branches : int;
  indirect_mispredicts : int;
  btb_misses : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  l2_accesses : int;
  l2_misses : int;
}

(* Static per-block cost of the instruction mix, cycles. *)
let block_base_cost costs (b : Program.block) =
  let acc = ref costs.term in
  Array.iter
    (fun instr ->
      acc :=
        !acc
        +.
        match instr with
        | Program.Plain n -> costs.plain *. float_of_int n
        | Program.Fp n -> costs.fp *. float_of_int n
        | Program.Mul n -> costs.mul *. float_of_int n
        | Program.Div n -> costs.div *. float_of_int n
        | Program.Mem _ -> costs.mem)
    b.instrs;
  !acc

let pattern_overlap overlap = function
  | Program.Chase _ -> overlap.chase
  | Program.Random_uniform -> overlap.random
  | Program.Sequential _ -> overlap.sequential
  | Program.Fixed_offset _ -> overlap.fixed

let run_unoptimized ?(warmup_blocks = 0) config (trace : Trace.t) (placement : Pi_layout.Placement.t) =
  let program = trace.Trace.program in
  let code = placement.Pi_layout.Placement.code in
  let data = placement.Pi_layout.Placement.data in
  let predictor = config.make_predictor () in
  let indirect_predictor = config.make_indirect () in
  let prefetcher = if config.data_prefetcher then Some (Prefetcher.create ()) else None in
  let trace_cache = Option.map Trace_cache.create config.trace_cache in
  let l1i = Cache.create config.l1i in
  let l1d = Cache.create config.l1d in
  let l2 = Cache.create config.l2 in
  let n_blocks = Array.length program.Program.blocks in
  let base_cost =
    Array.init n_blocks (fun i -> block_base_cost config.costs program.Program.blocks.(i))
  in
  (* Flattened static memory-op id list per block, so the hot loop walks an
     int array instead of re-matching instructions. *)
  let block_mem_ids =
    Array.init n_blocks (fun i ->
        let ids = ref [] in
        Array.iter
          (function Program.Mem m -> ids := m :: !ids | _ -> ())
          program.Program.blocks.(i).Program.instrs;
        Array.of_list (List.rev !ids))
  in
  let mem_overlap =
    Array.map
      (fun (m : Program.mem_op) -> pattern_overlap config.overlap m.pattern)
      program.Program.mem_ops
  in
  let line = config.l1d.Cache.line_bytes in
  let block_addr = code.Pi_layout.Code_layout.block_addr in
  let block_bytes = code.Pi_layout.Code_layout.block_bytes in
  let branch_pc = code.Pi_layout.Code_layout.branch_pc in
  let ibr_pc = code.Pi_layout.Code_layout.ibr_pc in
  let line_shift =
    let rec log2 k v = if v = 1 then k else log2 (k + 1) (v lsr 1) in
    log2 0 config.l1i.Cache.line_bytes
  in
  let block_instrs =
    Array.init n_blocks (fun i -> Program.block_instr_count program i)
  in
  let cycles = ref 0.0 in
  let cond_mispredicts = ref 0 in
  let indirect_mispredicts = ref 0 in
  let btb_misses = ref 0 in
  let cond_branches = ref 0 in
  let indirect_branches = ref 0 in
  let instructions = ref 0 in
  (* Cache counter snapshots taken at the warmup boundary. *)
  let l1i_base = ref (0, 0) and l1d_base = ref (0, 0) and l2_base = ref (0, 0) in
  let pen = config.penalties in
  (* Fetch the lines of a block through L1I (missing into L2), charging
     penalties; [charge] is false for wrong-path fetches. *)
  let fetch ~charge addr bytes =
    let first = addr lsr line_shift in
    let last = (addr + bytes - 1) lsr line_shift in
    for l = first to last do
      let line_addr = l lsl line_shift in
      if not (Cache.access l1i line_addr) then
        if Cache.access l2 line_addr then begin
          if charge then cycles := !cycles +. pen.l1i_miss
        end
        else if charge then cycles := !cycles +. pen.l2_miss *. 0.7
      (* Instruction misses to memory overlap poorly but the stream is
         prefetch-friendly; 0.7 reflects partial hiding. *)
    done
  in
  let mem_events = trace.Trace.mem_events in
  let n_events = Array.length mem_events in
  let mem_cursor = ref 0 in
  (* Resolve and access one data reference, charging penalties. *)
  let data_access mem_id event =
    let addr = Pi_layout.Data_layout.address data event in
    let is_store = Trace.mem_is_store event in
    if not (Cache.access l1d addr) then begin
      let factor =
        (if is_store then pen.store_miss_factor else 1.0) *. mem_overlap.(mem_id)
      in
      if Cache.access l2 addr then cycles := !cycles +. (pen.l1d_miss *. factor)
      else cycles := !cycles +. (pen.l2_miss *. factor)
    end;
    match prefetcher with
    | Some pf -> (
        match Prefetcher.observe pf ~mem_id ~addr with
        | Some (first, count) ->
            (* Prefetches fill L1D and L2 ahead of demand, off the critical
               path (no cycle charge). *)
            for k = 0 to count - 1 do
              let line_addr = first + (k * 64) in
              Cache.fill l2 line_addr;
              Cache.fill l1d line_addr
            done
        | None -> ())
    | None -> ()
  in
  let wrong_path_runs = ref 0 in
  let last_prefetch_cursor = ref (-1) in
  let wrong_path_effects ~alternate_block =
    if config.wrong_path then begin
      (* The front end runs ahead down the wrong path: the alternate
         target's first line may be installed in L1I, but only if it is
         already L2-resident — a memory-latency fetch never completes
         before the pipeline redirects. The L2 is not disturbed. *)
      let alt_line =
        block_addr.(alternate_block) land lnot (config.l1i.Cache.line_bytes - 1)
      in
      if (not (Cache.probe l1i alt_line)) && Cache.probe l2 alt_line then
        Cache.touch l1i alt_line;
      (* ...and occasionally runs far enough ahead to issue the next load
         speculatively, pulling its line into L2 early (prefetch) or
         displacing useful data (pollution). The redirect usually arrives
         first, so only a fraction of mispredictions get this far — and
         back-to-back mispredictions can only prefetch the same upcoming
         line once, so the benefit SATURATES as mispredictions get denser.
         That saturation is the mechanical source of the mild non-linearity
         the paper observes on benchmarks that combine frequent
         mispredictions with last-level-cache pressure (252.eon,
         178.galgel). *)
      incr wrong_path_runs;
      if
        !wrong_path_runs land 7 = 0
        && !last_prefetch_cursor <> !mem_cursor
        && !mem_cursor < n_events
      then begin
        let next_event = mem_events.(!mem_cursor) in
        let addr = Pi_layout.Data_layout.address data next_event in
        Cache.touch l2 (addr land lnot (line - 1));
        last_prefetch_cursor := !mem_cursor
      end
    end
  in
  let seq = trace.Trace.block_seq in
  let n = Array.length seq in
  let warmup = min warmup_blocks (max 0 (n - 1)) in
  for i = 0 to n - 1 do
    if i = warmup then begin
      (* Structures stay warm; measurement starts here, modelling the
         steady state a multi-minute run reaches. *)
      cycles := 0.0;
      cond_mispredicts := 0;
      indirect_mispredicts := 0;
      btb_misses := 0;
      cond_branches := 0;
      indirect_branches := 0;
      instructions := 0;
      l1i_base := (Cache.accesses l1i, Cache.misses l1i);
      l1d_base := (Cache.accesses l1d, Cache.misses l1d);
      l2_base := (Cache.accesses l2, Cache.misses l2)
    end;
    let b = seq.(i) in
    instructions := !instructions + block_instrs.(b);
    cycles := !cycles +. base_cost.(b);
    let trace_cache_hit =
      match trace_cache with
      | Some tc -> Trace_cache.access tc ~block_id:b
      | None -> false
    in
    if not trace_cache_hit then fetch ~charge:true block_addr.(b) block_bytes.(b);
    let ids = block_mem_ids.(b) in
    for k = 0 to Array.length ids - 1 do
      data_access ids.(k) mem_events.(!mem_cursor + k)
    done;
    mem_cursor := !mem_cursor + Array.length ids;
    if i + 1 < n then begin
      let next = seq.(i + 1) in
      match program.Program.blocks.(b).Program.term with
      | Program.Branch { branch; taken; not_taken } ->
          incr cond_branches;
          let outcome = next = taken in
          let correct = predictor.Predictor.on_branch ~pc:branch_pc.(branch) ~taken:outcome in
          if not correct then begin
            incr cond_mispredicts;
            cycles := !cycles +. pen.mispredict;
            wrong_path_effects ~alternate_block:(if outcome then not_taken else taken)
          end
      | Program.Switch { ibr; targets } ->
          incr indirect_branches;
          let target_addr = block_addr.(next) in
          let hit =
            config.perfect_btb
            || indirect_predictor.Indirect.on_indirect ~pc:ibr_pc.(ibr) ~target:target_addr
          in
          if not hit then begin
            incr indirect_mispredicts;
            incr btb_misses;
            cycles := !cycles +. pen.btb_miss;
            if Array.length targets > 0 then wrong_path_effects ~alternate_block:targets.(0)
          end
      | Program.Indirect_call { ibr; callees; return_to = _ } ->
          incr indirect_branches;
          let target_addr = block_addr.(next) in
          let hit =
            config.perfect_btb
            || indirect_predictor.Indirect.on_indirect ~pc:ibr_pc.(ibr) ~target:target_addr
          in
          if not hit then begin
            incr indirect_mispredicts;
            incr btb_misses;
            cycles := !cycles +. pen.btb_miss;
            if Array.length callees > 0 then
              wrong_path_effects
                ~alternate_block:program.Program.procs.(callees.(0)).Program.entry
          end
      | Program.Jump _ | Program.Call _ | Program.Return | Program.Halt -> ()
    end
  done;
  let delta (a0, m0) cache = (Cache.accesses cache - a0, Cache.misses cache - m0) in
  let l1i_acc, l1i_miss = delta !l1i_base l1i in
  let l1d_acc, l1d_miss = delta !l1d_base l1d in
  let l2_acc, l2_miss = delta !l2_base l2 in
  {
    cycles = !cycles;
    instructions = !instructions;
    cond_branches = !cond_branches;
    cond_mispredicts = !cond_mispredicts;
    indirect_branches = !indirect_branches;
    indirect_mispredicts = !indirect_mispredicts;
    btb_misses = !btb_misses;
    l1i_accesses = l1i_acc;
    l1i_misses = l1i_miss;
    l1d_accesses = l1d_acc;
    l1d_misses = l1d_miss;
    l2_accesses = l2_acc;
    l2_misses = l2_miss;
  }

(* ------------------------------------------------------------------ *)
(* Compiled replay plans.

   Interferometry runs one trace under hundreds of placements, so the
   per-placement cost of [run_unoptimized] — rebuilding the static cost
   tables, re-walking instruction arrays to find memory ops, and
   re-pattern-matching every dynamic block's terminator — is pure waste
   after the first run. [compile] performs all of that work once, producing
   flat arrays indexed by dynamic-block ordinal; [replay] then walks those
   arrays with no per-event allocation or variant matching. Replay output is
   bit-identical to [run_unoptimized]: the same floats are accumulated in
   the same order and the same cache/predictor state transitions happen in
   the same sequence.

   A plan is immutable after [compile] and holds no simulation state
   (caches and predictors are created per [replay] call), so one plan can be
   replayed concurrently from many domains. *)

type plan = {
  plan_config : config;
  plan_trace : Trace.t;
  (* Per dynamic block, indexed by execution ordinal: *)
  step_block : int array;  (** static block id *)
  step_instrs : int array;  (** retired instructions of the block *)
  step_cost : float array;  (** static issue cost of the block, cycles *)
  step_mem_start : int array;  (** first index of the block's span in [mem_events] *)
  step_mem_count : int array;  (** memory events issued by the block *)
  step_kind : int array;  (** 0 none, 1 cond not-taken, 2 cond taken, 3 indirect *)
  step_id : int array;  (** branch id (kind 1/2) or ibr id (kind 3) *)
  step_next : int array;  (** kind 3: dynamic successor block id *)
  step_alt : int array;  (** wrong-path alternate block id; -1 when none *)
  (* Per dynamic memory event, aligned with [trace.mem_events]: *)
  ev_factor : float array;  (** (store ? store_miss_factor : 1) x overlap *)
  ev_mem_id : int array;  (** static memory-op id (prefetcher key) *)
}

let plan_config plan = plan.plan_config
let plan_trace plan = plan.plan_trace
let plan_blocks plan = Array.length plan.step_block
let plan_mem_events plan = Array.length plan.ev_mem_id

let plan_words plan =
  (* Rough heap footprint in machine words, for reporting. *)
  (7 * Array.length plan.step_block)
  + (2 * Array.length plan.step_cost)
  + Array.length plan.ev_mem_id
  + (2 * Array.length plan.ev_factor)

(* Observability instruments for the replay path. Bumped once per
   compile / replay call — from the final aggregate counters, never inside
   the per-event loop — so metering costs nothing against the hot loop. *)
let m_plan_compiles =
  Pi_obs.Metrics.counter ~help:"replay plans compiled from a trace" "pi_obs_plan_compiles_total"

let m_plan_reuses =
  Pi_obs.Metrics.counter ~help:"plan_with_config calls that reused the compiled arrays"
    "pi_obs_plan_reuses_total"

let m_replay_runs =
  Pi_obs.Metrics.counter ~help:"compiled-plan replays executed" "pi_obs_replay_runs_total"

let m_replay_blocks =
  Pi_obs.Metrics.counter ~help:"dynamic blocks replayed" "pi_obs_replay_blocks_total"

let m_branches =
  Pi_obs.Metrics.counter ~help:"conditional + indirect branches replayed" "pi_obs_branches_total"

let m_mispredicts =
  Pi_obs.Metrics.counter ~help:"conditional + indirect mispredictions replayed"
    "pi_obs_mispredicts_total"

let m_cache_probes =
  Pi_obs.Metrics.counter ~help:"L1I + L1D + L2 cache probes replayed" "pi_obs_cache_probes_total"

let compile config (trace : Trace.t) =
  Pi_obs.Metrics.inc m_plan_compiles;
  let program = trace.Trace.program in
  let n_blocks = Array.length program.Program.blocks in
  let base_cost =
    Array.init n_blocks (fun i -> block_base_cost config.costs program.Program.blocks.(i))
  in
  let block_mem_ids =
    Array.init n_blocks (fun i ->
        let ids = ref [] in
        Array.iter
          (function Program.Mem m -> ids := m :: !ids | _ -> ())
          program.Program.blocks.(i).Program.instrs;
        Array.of_list (List.rev !ids))
  in
  let mem_overlap =
    Array.map
      (fun (m : Program.mem_op) -> pattern_overlap config.overlap m.pattern)
      program.Program.mem_ops
  in
  let block_instrs = Array.init n_blocks (fun i -> Program.block_instr_count program i) in
  let seq = trace.Trace.block_seq in
  let mem_events = trace.Trace.mem_events in
  let n = Array.length seq in
  let n_events = Array.length mem_events in
  let step_block = Array.make n 0 in
  let step_instrs = Array.make n 0 in
  let step_cost = Array.make n 0.0 in
  let step_mem_start = Array.make n 0 in
  let step_mem_count = Array.make n 0 in
  let step_kind = Array.make n 0 in
  let step_id = Array.make n 0 in
  let step_next = Array.make n 0 in
  let step_alt = Array.make n (-1) in
  let ev_factor = Array.make n_events 0.0 in
  let ev_mem_id = Array.make n_events 0 in
  let smf = config.penalties.store_miss_factor in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    let b = seq.(i) in
    step_block.(i) <- b;
    step_instrs.(i) <- block_instrs.(b);
    step_cost.(i) <- base_cost.(b);
    let ids = block_mem_ids.(b) in
    let count = Array.length ids in
    step_mem_start.(i) <- !cursor;
    step_mem_count.(i) <- count;
    for k = 0 to count - 1 do
      let id = ids.(k) in
      let e = mem_events.(!cursor + k) in
      ev_mem_id.(!cursor + k) <- id;
      ev_factor.(!cursor + k) <-
        (if Trace.mem_is_store e then smf else 1.0) *. mem_overlap.(id)
    done;
    cursor := !cursor + count;
    if i + 1 < n then begin
      let next = seq.(i + 1) in
      match program.Program.blocks.(b).Program.term with
      | Program.Branch { branch; taken; not_taken } ->
          let outcome = next = taken in
          step_kind.(i) <- (if outcome then 2 else 1);
          step_id.(i) <- branch;
          step_alt.(i) <- (if outcome then not_taken else taken)
      | Program.Switch { ibr; targets } ->
          step_kind.(i) <- 3;
          step_id.(i) <- ibr;
          step_next.(i) <- next;
          step_alt.(i) <- (if Array.length targets > 0 then targets.(0) else -1)
      | Program.Indirect_call { ibr; callees; return_to = _ } ->
          step_kind.(i) <- 3;
          step_id.(i) <- ibr;
          step_next.(i) <- next;
          step_alt.(i) <-
            (if Array.length callees > 0 then
               program.Program.procs.(callees.(0)).Program.entry
             else -1)
      | Program.Jump _ | Program.Call _ | Program.Return | Program.Halt -> ()
    end
  done;
  {
    plan_config = config;
    plan_trace = trace;
    step_block;
    step_instrs;
    step_cost;
    step_mem_start;
    step_mem_count;
    step_kind;
    step_id;
    step_next;
    step_alt;
    ev_factor;
    ev_mem_id;
  }

(* The plan depends on [config] only through the instruction costs, the
   overlap factors and the store-miss factor; everything else (geometries,
   penalties, predictors) is consumed at replay time. Reuse the compiled
   arrays when those parameters are unchanged — swapping predictors across a
   sweep costs nothing — and recompile otherwise. *)
let plan_with_config plan config =
  let old = plan.plan_config in
  if
    old.costs = config.costs && old.overlap = config.overlap
    && old.penalties.store_miss_factor = config.penalties.store_miss_factor
  then begin
    Pi_obs.Metrics.inc m_plan_reuses;
    { plan with plan_config = config }
  end
  else compile config plan.plan_trace

(* Unboxed cycle accumulator: a [float ref] would box a fresh float on every
   update, several allocations per simulated block. *)
type cycle_acc = { mutable cycles : float }

(* Branchless saturating two-bit counter update: exactly
   [if taken then min 3 (c + 1) else max 0 (c - 1)] for [c] in [0,3] and
   [taken_int] in {0,1}. Data-dependent branches on the simulated outcome
   are unpredictable to the host CPU, so the predictor kernels avoid them. *)
let[@inline] sat2_update c taken_int =
  let c1 = c + (taken_int lsl 1) - 1 in
  let c2 = c1 land lnot (c1 asr 62) in
  c2 - (c2 lsr 2)

let log2_exact v =
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  go 0 v

let replay ?(warmup_blocks = 0) plan (placement : Pi_layout.Placement.t) =
  let config = plan.plan_config in
  let trace = plan.plan_trace in
  let code = placement.Pi_layout.Placement.code in
  let data = placement.Pi_layout.Placement.data in
  let predictor = config.make_predictor () in
  let indirect_predictor = config.make_indirect () in
  let prefetcher = if config.data_prefetcher then Some (Prefetcher.create ()) else None in
  let trace_cache = Option.map Trace_cache.create config.trace_cache in
  let l1i = Cache.create config.l1i in
  let l1d = Cache.create config.l1d in
  let l2 = Cache.create config.l2 in
  let block_addr = code.Pi_layout.Code_layout.block_addr in
  let block_bytes = code.Pi_layout.Code_layout.block_bytes in
  let branch_pc = code.Pi_layout.Code_layout.branch_pc in
  let ibr_pc = code.Pi_layout.Code_layout.ibr_pc in
  let global_base = data.Pi_layout.Data_layout.global_base in
  let heap_base = data.Pi_layout.Data_layout.heap_base in
  let line_shift = log2_exact config.l1i.Cache.line_bytes in
  let l1i_tags, l1i_set_mask, l1i_assoc, _ = Cache.hot l1i in
  let l1i_line_mask = lnot (config.l1i.Cache.line_bytes - 1) in
  let data_line_mask = lnot (config.l1d.Cache.line_bytes - 1) in
  let pen = config.penalties in
  (* Hoisted penalty constants; [l2_fetch_penalty] matches the legacy
     [pen.l2_miss *. 0.7] computed inline (same operands, same product). *)
  let l1i_miss_penalty = pen.l1i_miss in
  let l2_fetch_penalty = pen.l2_miss *. 0.7 in
  let l1d_miss_penalty = pen.l1d_miss in
  let l2_miss_penalty = pen.l2_miss in
  let mispredict_penalty = pen.mispredict in
  let btb_miss_penalty = pen.btb_miss in
  let pkernel = predictor.Predictor.kernel in
  let step_block = plan.step_block in
  let step_instrs = plan.step_instrs in
  let step_cost = plan.step_cost in
  let step_mem_start = plan.step_mem_start in
  let step_mem_count = plan.step_mem_count in
  let step_kind = plan.step_kind in
  let step_id = plan.step_id in
  let step_next = plan.step_next in
  let step_alt = plan.step_alt in
  let ev_factor = plan.ev_factor in
  let ev_mem_id = plan.ev_mem_id in
  let mem_events = trace.Trace.mem_events in
  let n_events = Array.length mem_events in
  let acc = { cycles = 0.0 } in
  let cond_mispredicts = ref 0 in
  let indirect_mispredicts = ref 0 in
  let btb_misses = ref 0 in
  let cond_branches = ref 0 in
  let indirect_branches = ref 0 in
  let instructions = ref 0 in
  let l1i_base = ref (0, 0) and l1d_base = ref (0, 0) and l2_base = ref (0, 0) in
  let wrong_path_runs = ref 0 in
  let last_prefetch_cursor = ref (-1) in
  let wrong_path = config.wrong_path in
  (* [cursor] is the index of the first memory event of the *next* block,
     exactly the legacy [mem_cursor] at wrong-path time. *)
  let wrong_path_effects alternate_block cursor =
    if wrong_path then begin
      let alt_line = Array.unsafe_get block_addr alternate_block land l1i_line_mask in
      if (not (Cache.probe l1i alt_line)) && Cache.probe l2 alt_line then
        Cache.touch l1i alt_line;
      incr wrong_path_runs;
      if !wrong_path_runs land 7 = 0 && !last_prefetch_cursor <> cursor && cursor < n_events
      then begin
        let next_event = Array.unsafe_get mem_events cursor in
        let addr = Pi_layout.Data_layout.address data next_event in
        Cache.touch l2 (addr land data_line_mask);
        last_prefetch_cursor := cursor
      end
    end
  in
  let n = Array.length step_block in
  let warmup = min warmup_blocks (max 0 (n - 1)) in
  for i = 0 to n - 1 do
    if i = warmup then begin
      acc.cycles <- 0.0;
      cond_mispredicts := 0;
      indirect_mispredicts := 0;
      btb_misses := 0;
      cond_branches := 0;
      indirect_branches := 0;
      instructions := 0;
      l1i_base := (Cache.accesses l1i, Cache.misses l1i);
      l1d_base := (Cache.accesses l1d, Cache.misses l1d);
      l2_base := (Cache.accesses l2, Cache.misses l2)
    end;
    let b = Array.unsafe_get step_block i in
    instructions := !instructions + Array.unsafe_get step_instrs i;
    acc.cycles <- acc.cycles +. Array.unsafe_get step_cost i;
    let trace_cache_hit =
      match trace_cache with
      | Some tc -> Trace_cache.access tc ~block_id:b
      | None -> false
    in
    if not trace_cache_hit then begin
      let addr = Array.unsafe_get block_addr b in
      let first = addr lsr line_shift in
      let last = (addr + Array.unsafe_get block_bytes b - 1) lsr line_shift in
      for l = first to last do
        (* Fetches overwhelmingly hit the L1I MRU way (straight-line code
           re-reads the same line); that case is inlined and the full
           [Cache.access] path only runs when the MRU check fails. *)
        if Array.unsafe_get l1i_tags ((l land l1i_set_mask) * l1i_assoc) = l then
          Cache.count_hit l1i
        else begin
          let line_addr = l lsl line_shift in
          if not (Cache.access l1i line_addr) then
            if Cache.access l2 line_addr then acc.cycles <- acc.cycles +. l1i_miss_penalty
            else acc.cycles <- acc.cycles +. l2_fetch_penalty
        end
      done
    end;
    let mstart = Array.unsafe_get step_mem_start i in
    let mcount = Array.unsafe_get step_mem_count i in
    if mcount > 0 then begin
      for k = mstart to mstart + mcount - 1 do
        let e = Array.unsafe_get mem_events k in
        let addr =
          let offset = Trace.mem_offset e in
          match Trace.mem_space e with
          | Program.Global -> global_base.(Trace.mem_target e) + offset
          | Program.Heap -> heap_base.(Trace.mem_target e).(Trace.mem_obj e) + offset
        in
        if not (Cache.access l1d addr) then begin
          let factor = Array.unsafe_get ev_factor k in
          if Cache.access l2 addr then acc.cycles <- acc.cycles +. (l1d_miss_penalty *. factor)
          else acc.cycles <- acc.cycles +. (l2_miss_penalty *. factor)
        end;
        match prefetcher with
        | Some pf -> (
            match Prefetcher.observe pf ~mem_id:(Array.unsafe_get ev_mem_id k) ~addr with
            | Some (first, count) ->
                for p = 0 to count - 1 do
                  let line_addr = first + (p * 64) in
                  Cache.fill l2 line_addr;
                  Cache.fill l1d line_addr
                done
            | None -> ())
        | None -> ()
      done
    end;
    let kind = Array.unsafe_get step_kind i in
    if kind <> 0 then
      if kind < 3 then begin
        incr cond_branches;
        let taken_int = kind - 1 in
        let pc = Array.unsafe_get branch_pc (Array.unsafe_get step_id i) in
        (* Predictor kernels: the table-indexed predictors are advanced
           inline, with branchless counter updates, instead of paying a
           closure call whose saturating-counter branches the host CPU
           cannot predict. Each arm reproduces the matching [on_branch]
           closure decision-for-decision on the shared live state. *)
        let correct =
          match pkernel with
          | Some (Predictor.Hybrid_k k) ->
              let hashed = pc lsr 1 in
              let h = !(k.history) in
              let gidx = (hashed lxor h) land k.gas_index_mask land k.gas_mask in
              let bidx = hashed land k.bim_mask in
              let cidx = hashed land k.cho_mask in
              let gc = Char.code (Bytes.unsafe_get k.gas gidx) in
              let bc = Char.code (Bytes.unsafe_get k.bim bidx) in
              let cc = Char.code (Bytes.unsafe_get k.cho cidx) in
              let gp = (gc lsr 1) land 1 in
              let bp = (bc lsr 1) land 1 in
              let sel = -((cc lsr 1) land 1) in
              let p = (gp land sel) lor (bp land lnot sel) in
              Bytes.unsafe_set k.gas gidx (Char.unsafe_chr (sat2_update gc taken_int));
              Bytes.unsafe_set k.bim bidx (Char.unsafe_chr (sat2_update bc taken_int));
              (* Chooser trains toward whichever component was right, and
                 only when they disagree; expressed as an always-write with
                 a disagreement mask so there is no data-dependent branch. *)
              let nsel = -(gp lxor bp) in
              let cc' = sat2_update cc (1 - (gp lxor taken_int)) in
              Bytes.unsafe_set k.cho cidx
                (Char.unsafe_chr ((cc' land nsel) lor (cc land lnot nsel)));
              k.history := ((h lsl 1) lor taken_int) land k.history_mask;
              p = taken_int
          | Some (Predictor.Bimodal_k k) ->
              let idx = (pc lsr 1) land k.mask in
              let c = Char.code (Bytes.unsafe_get k.counters idx) in
              Bytes.unsafe_set k.counters idx (Char.unsafe_chr (sat2_update c taken_int));
              (c lsr 1) land 1 = taken_int
          | Some (Predictor.Gshare_k k) ->
              let h = !(k.history) in
              let idx = ((pc lsr 1) lxor h) land k.mask in
              let c = Char.code (Bytes.unsafe_get k.counters idx) in
              Bytes.unsafe_set k.counters idx (Char.unsafe_chr (sat2_update c taken_int));
              k.history := ((h lsl 1) lor taken_int) land k.history_mask;
              (c lsr 1) land 1 = taken_int
          | Some (Predictor.Gas_k k) ->
              let h = !(k.history) in
              let idx =
                ((((pc lsr 1) land k.addr_mask) lsl k.history_bits) lor h) land k.mask
              in
              let c = Char.code (Bytes.unsafe_get k.counters idx) in
              Bytes.unsafe_set k.counters idx (Char.unsafe_chr (sat2_update c taken_int));
              k.history := ((h lsl 1) lor taken_int) land k.history_mask;
              (c lsr 1) land 1 = taken_int
          | None -> predictor.Predictor.on_branch ~pc ~taken:(taken_int <> 0)
        in
        if not correct then begin
          incr cond_mispredicts;
          acc.cycles <- acc.cycles +. mispredict_penalty;
          wrong_path_effects (Array.unsafe_get step_alt i) (mstart + mcount)
        end
      end
      else begin
        incr indirect_branches;
        let target_addr = Array.unsafe_get block_addr (Array.unsafe_get step_next i) in
        let pc = Array.unsafe_get ibr_pc (Array.unsafe_get step_id i) in
        let hit =
          config.perfect_btb || indirect_predictor.Indirect.on_indirect ~pc ~target:target_addr
        in
        if not hit then begin
          incr indirect_mispredicts;
          incr btb_misses;
          acc.cycles <- acc.cycles +. btb_miss_penalty;
          let alt = Array.unsafe_get step_alt i in
          if alt >= 0 then wrong_path_effects alt (mstart + mcount)
        end
      end
  done;
  let delta (a0, m0) cache = (Cache.accesses cache - a0, Cache.misses cache - m0) in
  let l1i_acc, l1i_miss = delta !l1i_base l1i in
  let l1d_acc, l1d_miss = delta !l1d_base l1d in
  let l2_acc, l2_miss = delta !l2_base l2 in
  Pi_obs.Metrics.inc m_replay_runs;
  Pi_obs.Metrics.add m_replay_blocks (Array.length step_block);
  Pi_obs.Metrics.add m_branches (!cond_branches + !indirect_branches);
  Pi_obs.Metrics.add m_mispredicts (!cond_mispredicts + !indirect_mispredicts);
  Pi_obs.Metrics.add m_cache_probes (l1i_acc + l1d_acc + l2_acc);
  {
    cycles = acc.cycles;
    instructions = !instructions;
    cond_branches = !cond_branches;
    cond_mispredicts = !cond_mispredicts;
    indirect_branches = !indirect_branches;
    indirect_mispredicts = !indirect_mispredicts;
    btb_misses = !btb_misses;
    l1i_accesses = l1i_acc;
    l1i_misses = l1i_miss;
    l1d_accesses = l1d_acc;
    l1d_misses = l1d_miss;
    l2_accesses = l2_acc;
    l2_misses = l2_miss;
  }

let run ?warmup_blocks config trace placement =
  replay ?warmup_blocks (compile config trace) placement

(* ------------------------------------------------------------------ *)
(* Fused multi-predictor sweeps.

   A predictor sweep replays the *same* plan under the *same* placement once
   per configuration, yet the trace walk, the data-side memory hierarchy and
   the indirect-target predictor never depend on the direction predictor.
   [replay_many] walks the plan once for a whole batch of predictor lanes,
   sharing everything that is predictor-invariant and keeping per-lane
   copies of exactly the state a lane's own mispredictions can perturb:

   - shared: block sequence and decoded steps, trace cache, L1D, the data
     prefetcher, the indirect predictor/BTB, and the instruction/branch
     event counters — their inputs are placement- and trace-derived only;
   - per lane: cycles, conditional mispredicts, and the L1I and L2 images.
     The caches must be replicated because wrong-path effects (fetching the
     alternate target into L1I, speculatively touching the next data line in
     L2) fire per mispredict, and mispredicts differ per lane.

   Lane predictor state is a structure of arrays: every lane's saturating
   counter tables are packed into one byte image ([tab], copied fresh from
   [tab_init] per pass) addressed through per-lane offset/mask arrays, and
   lanes are sorted by kernel kind so the per-branch inner loops are
   branch-free dispatches over contiguous ranges. All history-based lanes
   share one global history register: a lane's history is the shared
   register masked to the lane's length, which holds because every kernel
   starts at zero history and shifts in the same outcome bit.

   Per-lane cache images use a set-major layout ([set][lane][way]) so the
   lane loop of one fetch or data reference scans contiguous memory.

   The correctness bar is the repo's standing invariant: each lane's counts
   are bit-identical to a sequential [replay] of that configuration — the
   same floats accumulated in the same order, the same state transitions in
   the same sequence. *)

type pred_lanes = {
  batch_n : int;  (** fused lanes *)
  batch_names : string array;  (** lane names, internal (kind-sorted) order *)
  batch_src : int array;  (** internal lane -> index into the caller's config array *)
  batch_fallback : int array;  (** caller indices with no kernel: per-config path *)
  (* Kind ranges over internal lanes: [0,bim_hi) bimodal, [bim_hi,gsh_hi)
     gshare, [gsh_hi,gas_hi) GAs, [gas_hi,batch_n) hybrid. *)
  bim_hi : int;
  gsh_hi : int;
  gas_hi : int;
  tab_init : Bytes.t;  (** fresh counter-table image; blitted into scratch per pass *)
  (* Per-lane kernel parameters, internal lane order. [off1]/[mask1] is the
     main counter table (hybrid: the GAs table); [off2]/[off3] are the
     hybrid bimodal and chooser tables (unused otherwise). *)
  off1 : int array;
  mask1 : int array;
  off2 : int array;
  mask2 : int array;
  off3 : int array;
  mask3 : int array;
  hmask : int array;  (** history mask; 0 for historyless lanes *)
  amask : int array;  (** GAs address mask *)
  hbits : int array;  (** GAs history bits *)
  gimask : int array;  (** hybrid gas_index_mask *)
  hist_keep : int;  (** OR of all [hmask]: shared-history retention mask *)
  mutable scratch : batch_scratch option;
      (** reusable per-pass bulk state (counter tables, L1I/L2 images),
          kept across passes so repeated [replay_many] calls on one batch
          skip tens of MB of allocation and the GC marking it costs;
          concurrent passes must use distinct batches (shards are) *)
}

(* Bulk per-pass state that outlives a pass. [bs_tab] receives a blit of
   [tab_init]; [bs_l1i]/[bs_set_mru] are refilled. The per-lane L2 image is
   lazier still: strips (one [nl * assoc] tag block per L2 set, set-major)
   are allocated on first touch ever and invalidated per pass through the
   [seen] bitmap, so a pass only clears the sets it actually references.
   Keyed on the plan's cache geometry — a batch replayed on a different
   machine reallocates. *)
and batch_scratch = {
  bs_sets : int;
  bs_assoc : int;
  bs_strips : int array array;
  bs_seen : Bytes.t;
  bs_tab : Bytes.t;
  bs_l1i : int array;
  bs_set_mru : int array;
  bs_lane_mru : int array;
}

(* Cache-geometry lanes: the second sweep axis. Every lane simulates the
   same machine except for its L1I and L2 geometries (line size is shared —
   it is baked into the fetch and data line masks the whole pass shares).
   The direction predictor, indirect predictor, trace cache, prefetcher and
   L1D are geometry-invariant, so one shared instance serves all lanes and
   branch outcomes are lane-invariant; per lane remain cycles and the
   L1I/L2 tag images plus their counters. Tag images are lane-major slices
   ([lane][set][way]) of one flat arena per cache level — the cache-axis
   analogue of the packed counter image — because lanes disagree on set
   count and associativity, so there is no common set to interleave on. *)
type cache_lanes = {
  cb_n : int;  (** fused lanes *)
  cb_names : string array;
  cb_src : int array;  (** lane -> index into the caller's config array *)
  cb_geoms : (Cache.geometry * Cache.geometry) array;  (** (l1i, l2) per lane *)
  cb_i_line : int;  (** shared L1I line size; must equal the plan's *)
  cb_d_line : int;  (** shared L2 line size; must equal the plan's *)
  (* Per-lane L1I image slice: [off + (line land mask) * assoc] is way 0. *)
  cb_i_off : int array;
  cb_i_mask : int array;
  cb_i_assoc : int array;
  cb_i_words : int;  (** total L1I arena words *)
  (* Per-lane L2 image slice, same addressing. *)
  cb_d_off : int array;
  cb_d_mask : int array;
  cb_d_assoc : int array;
  cb_d_words : int;  (** total L2 arena words *)
  mutable cache_scratch : cache_scratch option;
      (** reusable tag arenas, reset (not reallocated) across passes;
          concurrent passes must use distinct batches (shards are) *)
}

and cache_scratch = { cs_l1i : int array; cs_l2 : int array }

(* A fused batch is a set of lanes varying along exactly one axis; every
   batch operation ({!batch_shard}, {!replay_many}, the accessors) is
   axis-generic and dispatches here. *)
type batch = Predictor_lanes of pred_lanes | Cache_lanes of cache_lanes

let batch_lanes = function
  | Predictor_lanes b -> b.batch_n
  | Cache_lanes c -> c.cb_n

let batch_names = function
  | Predictor_lanes b -> b.batch_names
  | Cache_lanes c -> c.cb_names

let batch_src = function
  | Predictor_lanes b -> b.batch_src
  | Cache_lanes c -> c.cb_src

let batch_fallback = function
  | Predictor_lanes b -> b.batch_fallback
  | Cache_lanes _ -> [||]

let batch_table_bytes = function
  | Predictor_lanes b -> Bytes.length b.tab_init
  | Cache_lanes c -> 8 * (c.cb_i_words + c.cb_d_words)

let batch_axis = function Predictor_lanes _ -> "predictor" | Cache_lanes _ -> "cache"

let batch_of (configs : (string * (unit -> Predictor.t)) array) =
  let n = Array.length configs in
  let preds = Array.map (fun (_, make) -> make ()) configs in
  (* The shared-history trick requires every history register to start at
     zero (all Counter_table predictors do); anything else falls back. *)
  let kind_of (p : Predictor.t) =
    match p.Predictor.kernel with
    | Some (Predictor.Bimodal_k _) -> 0
    | Some (Predictor.Gshare_k k) -> if !(k.history) = 0 then 1 else -1
    | Some (Predictor.Gas_k k) -> if !(k.history) = 0 then 2 else -1
    | Some (Predictor.Hybrid_k k) -> if !(k.history) = 0 then 3 else -1
    | None -> -1
  in
  let kinds = Array.map kind_of preds in
  let indices_of k =
    List.filter (fun i -> kinds.(i) = k) (List.init n (fun i -> i))
  in
  let order = Array.of_list (List.concat_map indices_of [ 0; 1; 2; 3 ]) in
  let fallback = Array.of_list (indices_of (-1)) in
  let nl = Array.length order in
  let count k = Array.fold_left (fun a x -> if x = k then a + 1 else a) 0 kinds in
  let bim_hi = count 0 in
  let gsh_hi = bim_hi + count 1 in
  let gas_hi = gsh_hi + count 2 in
  let off1 = Array.make nl 0 and mask1 = Array.make nl 0 in
  let off2 = Array.make nl 0 and mask2 = Array.make nl 0 in
  let off3 = Array.make nl 0 and mask3 = Array.make nl 0 in
  let hmask = Array.make nl 0 in
  let amask = Array.make nl 0 in
  let hbits = Array.make nl 0 in
  let gimask = Array.make nl 0 in
  let total = ref 0 in
  (* Counters are packed four per byte in the fused image (each is a 2-bit
     saturator): the whole 145-config grid then fits in well under 1 MiB,
     where the one-per-byte layout of the sequential predictors would keep
     3+ MiB hot and kernel updates cache-miss-bound. Offsets are in counter
     units; every table is padded to a 4-counter boundary so a byte never
     spans two tables. *)
  let blits = ref [] in
  let alloc bytes =
    let o = !total in
    total := o + ((Bytes.length bytes + 3) land lnot 3);
    blits := (o, bytes) :: !blits;
    o
  in
  Array.iteri
    (fun j i ->
      match preds.(i).Predictor.kernel with
      | Some (Predictor.Bimodal_k k) ->
          off1.(j) <- alloc k.counters;
          mask1.(j) <- k.mask
      | Some (Predictor.Gshare_k k) ->
          off1.(j) <- alloc k.counters;
          mask1.(j) <- k.mask;
          hmask.(j) <- k.history_mask
      | Some (Predictor.Gas_k k) ->
          off1.(j) <- alloc k.counters;
          mask1.(j) <- k.mask;
          hmask.(j) <- k.history_mask;
          amask.(j) <- k.addr_mask;
          hbits.(j) <- k.history_bits
      | Some (Predictor.Hybrid_k k) ->
          off1.(j) <- alloc k.gas;
          mask1.(j) <- k.gas_mask;
          gimask.(j) <- k.gas_index_mask;
          off2.(j) <- alloc k.bim;
          mask2.(j) <- k.bim_mask;
          off3.(j) <- alloc k.cho;
          mask3.(j) <- k.cho_mask;
          hmask.(j) <- k.history_mask
      | None -> assert false)
    order;
  let tab_init = Bytes.make ((!total + 3) / 4) '\000' in
  List.iter
    (fun (o, b) ->
      for k = 0 to Bytes.length b - 1 do
        let pos = o + k in
        let byte = Char.code (Bytes.get tab_init (pos lsr 2)) in
        let sh = (pos land 3) lsl 1 in
        Bytes.set tab_init (pos lsr 2)
          (Char.chr (byte lor (Char.code (Bytes.get b k) lsl sh)))
      done)
    !blits;
  Predictor_lanes
    {
      batch_n = nl;
      batch_names = Array.map (fun i -> fst configs.(i)) order;
      batch_src = order;
      batch_fallback = fallback;
      bim_hi;
      gsh_hi;
      gas_hi;
      tab_init;
      off1;
      mask1;
      off2;
      mask2;
      off3;
      mask3;
      hmask;
      amask;
      hbits;
      gimask;
      hist_keep = Array.fold_left ( lor ) 0 hmask;
      scratch = None;
    }

(* Pack cache-geometry variants into lanes. Validation is eager and loud:
   every geometry must construct (power-of-two line and set count — the
   checks {!Cache.create} performs), share the seed's line sizes (the pass
   shares one line decomposition of each fetch and data address across all
   lanes), and be distinct as an (l1i, l2) pair — a duplicate pair would
   silently burn a lane re-measuring the same machine, so it is rejected by
   name rather than asserted. *)
let cache_batch_of ~(l1i : Cache.geometry) ~(l2 : Cache.geometry)
    (configs : (string * Cache.geometry * Cache.geometry) array) =
  let n = Array.length configs in
  let seen = Hashtbl.create (2 * n) in
  Array.iter
    (fun (name, gi, gd) ->
      ignore (Cache.geometry_sets gi);
      ignore (Cache.geometry_sets gd);
      if gi.Cache.line_bytes <> l1i.Cache.line_bytes then
        invalid_arg
          (Printf.sprintf
             "Pipeline.cache_batch_of: lane %S L1I line %dB differs from the machine's %dB (line \
              size is shared across a fused pass)"
             name gi.Cache.line_bytes l1i.Cache.line_bytes);
      if gd.Cache.line_bytes <> l2.Cache.line_bytes then
        invalid_arg
          (Printf.sprintf
             "Pipeline.cache_batch_of: lane %S L2 line %dB differs from the machine's %dB (line \
              size is shared across a fused pass)"
             name gd.Cache.line_bytes l2.Cache.line_bytes);
      match Hashtbl.find_opt seen (gi, gd) with
      | Some other ->
          invalid_arg
            (Printf.sprintf
               "Pipeline.cache_batch_of: lanes %S and %S share the same (L1I, L2) geometry pair — \
                duplicate configurations are rejected, not fused"
               other name)
      | None -> Hashtbl.add seen (gi, gd) name)
    configs;
  let off_of words_of =
    let off = Array.make n 0 in
    let total = ref 0 in
    Array.iteri
      (fun i (_, gi, gd) ->
        off.(i) <- !total;
        total := !total + words_of gi gd)
      configs;
    (off, !total)
  in
  let i_off, i_words = off_of (fun gi _ -> Cache.geometry_sets gi * gi.Cache.assoc) in
  let d_off, d_words = off_of (fun _ gd -> Cache.geometry_sets gd * gd.Cache.assoc) in
  Cache_lanes
    {
      cb_n = n;
      cb_names = Array.map (fun (name, _, _) -> name) configs;
      cb_src = Array.init n (fun i -> i);
      cb_geoms = Array.map (fun (_, gi, gd) -> (gi, gd)) configs;
      cb_i_line = l1i.Cache.line_bytes;
      cb_d_line = l2.Cache.line_bytes;
      cb_i_off = i_off;
      cb_i_mask = Array.map (fun (_, gi, _) -> Cache.geometry_sets gi - 1) configs;
      cb_i_assoc = Array.map (fun (_, gi, _) -> gi.Cache.assoc) configs;
      cb_i_words = i_words;
      cb_d_off = d_off;
      cb_d_mask = Array.map (fun (_, _, gd) -> Cache.geometry_sets gd - 1) configs;
      cb_d_assoc = Array.map (fun (_, _, gd) -> gd.Cache.assoc) configs;
      cb_d_words = d_words;
      cache_scratch = None;
    }

(* Split a batch into [shards] contiguous sub-batches of near-equal lane
   count. Lane tables are allocated in internal-lane order, so a shard's
   tables occupy one contiguous slice of [tab_init]; offsets are rebased to
   the slice (offsets of tables a shard's kinds never read may go negative —
   they are never dereferenced). Sub-batches carry no fallback lanes: the
   fallback set belongs to the whole batch, not to any shard. *)
let pred_shard (b : pred_lanes) ~shards =
  let nl = b.batch_n in
  let k = if nl = 0 then 1 else max 1 (min shards nl) in
  (* The 1-shard "split" is the batch itself: no copies, and — more to the
     point — the batch keeps its [scratch], so back-to-back passes over a
     memoized batch skip the per-set strip reallocation entirely. *)
  if k = 1 then [| b |]
  else begin
    Array.init k (fun s ->
        let lo = s * nl / k and hi = (s + 1) * nl / k in
        let m = hi - lo in
        let sub a = Array.sub a lo m in
        let clamp x = max 0 (min m (x - lo)) in
        (* Offsets are counter units, all 4-aligned, so the byte slice
           boundaries below are exact. *)
        let start = b.off1.(lo) in
        let stop = if hi < nl then b.off1.(hi) else 4 * Bytes.length b.tab_init in
        let rebase a = Array.map (fun o -> o - start) (sub a) in
        let hmask = sub b.hmask in
        {
          batch_n = m;
          batch_names = sub b.batch_names;
          batch_src = sub b.batch_src;
          batch_fallback = [||];
          bim_hi = clamp b.bim_hi;
          gsh_hi = clamp b.gsh_hi;
          gas_hi = clamp b.gas_hi;
          tab_init = Bytes.sub b.tab_init (start lsr 2) ((stop - start) lsr 2);
          off1 = rebase b.off1;
          mask1 = sub b.mask1;
          off2 = rebase b.off2;
          mask2 = sub b.mask2;
          off3 = rebase b.off3;
          mask3 = sub b.mask3;
          hmask;
          amask = sub b.amask;
          hbits = sub b.hbits;
          gimask = sub b.gimask;
          hist_keep = Array.fold_left ( lor ) 0 hmask;
          scratch = None;
        })
  end

(* Cache-lane sharding: lanes' arena slices are allocated in lane order, so
   a contiguous lane range owns one contiguous slice of each arena; offsets
   are rebased to the slice. As with predictor lanes, the 1-shard "split" is
   the batch itself, keeping its warm scratch. *)
let cache_shard (c : cache_lanes) ~shards =
  let nl = c.cb_n in
  let k = if nl = 0 then 1 else max 1 (min shards nl) in
  if k = 1 then [| c |]
  else
    Array.init k (fun s ->
        let lo = s * nl / k and hi = (s + 1) * nl / k in
        let m = hi - lo in
        let sub a = Array.sub a lo m in
        let i_start = c.cb_i_off.(lo) in
        let d_start = c.cb_d_off.(lo) in
        let i_stop = if hi < nl then c.cb_i_off.(hi) else c.cb_i_words in
        let d_stop = if hi < nl then c.cb_d_off.(hi) else c.cb_d_words in
        let rebase start a = Array.map (fun o -> o - start) (sub a) in
        {
          cb_n = m;
          cb_names = sub c.cb_names;
          cb_src = sub c.cb_src;
          cb_geoms = sub c.cb_geoms;
          cb_i_line = c.cb_i_line;
          cb_d_line = c.cb_d_line;
          cb_i_off = rebase i_start c.cb_i_off;
          cb_i_mask = sub c.cb_i_mask;
          cb_i_assoc = sub c.cb_i_assoc;
          cb_i_words = i_stop - i_start;
          cb_d_off = rebase d_start c.cb_d_off;
          cb_d_mask = sub c.cb_d_mask;
          cb_d_assoc = sub c.cb_d_assoc;
          cb_d_words = d_stop - d_start;
          cache_scratch = None;
        })

let batch_shard b ~shards =
  match b with
  | Predictor_lanes p -> Array.map (fun s -> Predictor_lanes s) (pred_shard p ~shards)
  | Cache_lanes c -> Array.map (fun s -> Cache_lanes s) (cache_shard c ~shards)

(* Fused-pass instruments carry the sweep axis as a label: one series per
   axis under the same metric names. *)
let fused_metrics axis =
  let labels = [ ("axis", axis) ] in
  ( Pi_obs.Metrics.counter ~help:"fused sweep passes executed" ~labels
      "pi_obs_sweep_fused_passes_total",
    Pi_obs.Metrics.counter ~help:"lane x dynamic-block work units swept by fused passes" ~labels
      "pi_obs_sweep_lane_blocks_total",
    Pi_obs.Metrics.gauge ~help:"lanes carried by the most recent fused pass of this axis" ~labels
      "pi_obs_sweep_lanes_per_pass" )

let pred_metrics = fused_metrics "predictor"
let cache_metrics = fused_metrics "cache"

(* [find_way]/[promote] over a flat multi-lane tag image; identical scans to
   {!Cache.find_way}/{!Cache.promote} so lane cache transitions replicate
   the sequential path exactly. *)
let[@inline] lane_find_way (tags : int array) base assoc (tag : int) =
  let limit = base + assoc in
  let i = ref base in
  while !i < limit && Array.unsafe_get tags !i <> tag do incr i done;
  if !i < limit then !i - base else -1

let[@inline] lane_promote (tags : int array) base way (tag : int) =
  for w = base + way downto base + 1 do
    Array.unsafe_set tags w (Array.unsafe_get tags (w - 1))
  done;
  Array.unsafe_set tags base tag

let replay_many_body ~warmup_blocks plan (batch : pred_lanes) (placement : Pi_layout.Placement.t) =
  let config = plan.plan_config in
  let nl = batch.batch_n in
  let trace = plan.plan_trace in
  let code = placement.Pi_layout.Placement.code in
  let data = placement.Pi_layout.Placement.data in
  let indirect_predictor = config.make_indirect () in
  let prefetcher = if config.data_prefetcher then Some (Prefetcher.create ()) else None in
  let trace_cache = Option.map Trace_cache.create config.trace_cache in
  let l1d = Cache.create config.l1d in
  let block_addr = code.Pi_layout.Code_layout.block_addr in
  let block_bytes = code.Pi_layout.Code_layout.block_bytes in
  let branch_pc = code.Pi_layout.Code_layout.branch_pc in
  let ibr_pc = code.Pi_layout.Code_layout.ibr_pc in
  let global_base = data.Pi_layout.Data_layout.global_base in
  let heap_base = data.Pi_layout.Data_layout.heap_base in
  let l1i_shift = log2_exact config.l1i.Cache.line_bytes in
  let l1i_sets = Cache.geometry_sets config.l1i in
  let l1i_set_mask = l1i_sets - 1 in
  let l1i_assoc = config.l1i.Cache.assoc in
  let l2_shift = log2_exact config.l2.Cache.line_bytes in
  let l2_sets = Cache.geometry_sets config.l2 in
  let l2_set_mask = l2_sets - 1 in
  let l2_assoc = config.l2.Cache.assoc in
  (* Per-lane cache images, set-major ([set][lane][way]): the lane loop of a
     single reference walks [nl * assoc] adjacent words. The L1I image is
     small and eager; the L2 image would be [sets * nl * assoc] words
     (tens of MB for a 4 MiB cache), most of it for sets the trace never
     references, so L2 strips are allocated per set on first touch. All of
     it lives in the batch's scratch and is reset (not reallocated) when
     geometry and table size still match. *)
  let l1i_words = l1i_sets * nl * l1i_assoc in
  let tab_len = Bytes.length batch.tab_init in
  let scratch =
    match batch.scratch with
    | Some s
      when s.bs_sets = l2_sets && s.bs_assoc = l2_assoc
           && Array.length s.bs_l1i = l1i_words
           && Bytes.length s.bs_tab = tab_len ->
        Bytes.fill s.bs_seen 0 l2_sets '\000';
        Array.fill s.bs_l1i 0 l1i_words (-1);
        Array.fill s.bs_set_mru 0 l1i_sets (-1);
        (* [bs_lane_mru] needs no reset: it is only read on sets already
           marked mixed, and the divergence that marks a set mixed fills
           its lane row first. *)
        s
    | _ ->
        let s =
          {
            bs_sets = l2_sets;
            bs_assoc = l2_assoc;
            bs_strips = Array.make l2_sets [||];
            bs_seen = Bytes.make l2_sets '\000';
            bs_tab = Bytes.create tab_len;
            bs_l1i = Array.make l1i_words (-1);
            bs_set_mru = Array.make l1i_sets (-1);
            bs_lane_mru = Array.make (l1i_sets * nl) (-1);
          }
        in
        batch.scratch <- Some s;
        s
  in
  let l1i_tags = scratch.bs_l1i in
  (* MRU summary of the L1I images. The committed fetch stream is
     lane-invariant, so lanes' way-0 tags for a set agree until a
     wrong-path touch diverges them: [set_mru.(s)] holds the common way-0
     line of a still-uniform set (every fetch of that line is a whole-batch
     fast-path hit, no per-lane work at all), or [mixed] once any lane
     diverged, after which [lane_mru] carries per-lane way-0 tags. Both are
     accelerators only — [l1i_tags] stays the source of truth. *)
  let mixed = -2 in
  let set_mru = scratch.bs_set_mru in
  let lane_mru = scratch.bs_lane_mru in
  let mru_diverge s j line =
    let m = Array.unsafe_get set_mru s in
    if m <> mixed then begin
      Array.fill lane_mru (s * nl) nl m;
      Array.unsafe_set set_mru s mixed
    end;
    Array.unsafe_set lane_mru ((s * nl) + j) line
  in
  let l2_strips = scratch.bs_strips in
  let l2_seen = scratch.bs_seen in
  let l2_strip set =
    if Bytes.unsafe_get l2_seen set <> '\000' then Array.unsafe_get l2_strips set
    else begin
      Bytes.unsafe_set l2_seen set '\001';
      let s = Array.unsafe_get l2_strips set in
      if Array.length s > 0 then begin
        Array.fill s 0 (nl * l2_assoc) (-1);
        s
      end
      else begin
        let s = Array.make (nl * l2_assoc) (-1) in
        Array.unsafe_set l2_strips set s;
        s
      end
    end
  in
  let l1i_line_mask = lnot (config.l1i.Cache.line_bytes - 1) in
  let data_line_mask = lnot (config.l1d.Cache.line_bytes - 1) in
  let pen = config.penalties in
  let l1i_miss_penalty = pen.l1i_miss in
  let l2_fetch_penalty = pen.l2_miss *. 0.7 in
  let l1d_miss_penalty = pen.l1d_miss in
  let l2_miss_penalty = pen.l2_miss in
  let mispredict_penalty = pen.mispredict in
  let btb_miss_penalty = pen.btb_miss in
  let step_block = plan.step_block in
  let step_instrs = plan.step_instrs in
  let step_cost = plan.step_cost in
  let step_mem_start = plan.step_mem_start in
  let step_mem_count = plan.step_mem_count in
  let step_kind = plan.step_kind in
  let step_id = plan.step_id in
  let step_next = plan.step_next in
  let step_alt = plan.step_alt in
  let ev_factor = plan.ev_factor in
  let ev_mem_id = plan.ev_mem_id in
  let mem_events = trace.Trace.mem_events in
  let n_events = Array.length mem_events in
  (* Lane predictor state: one byte image for every counter table plus the
     shared global history register. *)
  let tab = scratch.bs_tab in
  Bytes.blit batch.tab_init 0 tab 0 tab_len;
  let off1 = batch.off1 and mask1 = batch.mask1 in
  let off2 = batch.off2 and mask2 = batch.mask2 in
  let off3 = batch.off3 and mask3 = batch.mask3 in
  let hmask = batch.hmask and amask = batch.amask in
  let hbits = batch.hbits and gimask = batch.gimask in
  let hist_keep = batch.hist_keep in
  let history = ref 0 in
  let bim_hi = batch.bim_hi and gsh_hi = batch.gsh_hi and gas_hi = batch.gas_hi in
  (* Per-lane accumulators and cache counters (with warmup snapshots). *)
  let cyc = Array.make nl 0.0 in
  let cond_mis = Array.make nl 0 in
  let l1i_acc = Array.make nl 0 and l1i_mis = Array.make nl 0 in
  let l2_acc = Array.make nl 0 and l2_mis = Array.make nl 0 in
  let l1i_acc0 = Array.make nl 0 and l1i_mis0 = Array.make nl 0 in
  let l2_acc0 = Array.make nl 0 and l2_mis0 = Array.make nl 0 in
  let wrong_runs = Array.make nl 0 in
  let last_pf = Array.make nl (-1) in
  (* Shared (lane-invariant) counters. *)
  let cond_branches = ref 0 in
  let indirect_branches = ref 0 in
  let indirect_mispredicts = ref 0 in
  let btb_misses = ref 0 in
  let instructions = ref 0 in
  (* Committed fetch lines are lane-invariant: one shared access counter;
     [l1i_acc] holds only the lane-specific wrong-path touches. *)
  let fetch_lines = ref 0 in
  let fetch_lines0 = ref 0 in
  let l1d_base = ref (0, 0) in
  let wrong_path = config.wrong_path in
  (* Counted L2 reference for one lane; mirrors [Cache.access]. The way-0
     check is open-coded: [lane_find_way]/[lane_promote] contain loops, so
     the compiler never inlines them, and a way-0 hit (the common case)
     needs neither call. *)
  let l2_ref j addr =
    Array.unsafe_set l2_acc j (Array.unsafe_get l2_acc j + 1);
    let line = addr lsr l2_shift in
    let strip = l2_strip (line land l2_set_mask) in
    let base = j * l2_assoc in
    if Array.unsafe_get strip base = line then true
    else begin
      let way = lane_find_way strip base l2_assoc line in
      if way >= 0 then begin
        lane_promote strip base way line;
        true
      end
      else begin
        Array.unsafe_set l2_mis j (Array.unsafe_get l2_mis j + 1);
        lane_promote strip base (l2_assoc - 1) line;
        false
      end
    end
  in
  let l2_probe j addr =
    let line = addr lsr l2_shift in
    let strip = l2_strip (line land l2_set_mask) in
    let base = j * l2_assoc in
    Array.unsafe_get strip base = line || lane_find_way strip base l2_assoc line >= 0
  in
  (* Counted L1I reference (the wrong-path touch); the fetch loop inlines
     its own copy to keep the MRU fast path. Touching promotes [line] to
     way 0 of this lane only, so a uniform set diverges here. *)
  let l1i_touch j addr =
    Array.unsafe_set l1i_acc j (Array.unsafe_get l1i_acc j + 1);
    let line = addr lsr l1i_shift in
    let s = line land l1i_set_mask in
    let base = ((s * nl) + j) * l1i_assoc in
    (* Way-0 hit: promote is a no-op and the MRU summary already agrees
       (a uniform set's common line, or this lane's [lane_mru] entry). *)
    if Array.unsafe_get l1i_tags base <> line then begin
      let way = lane_find_way l1i_tags base l1i_assoc line in
      if way >= 0 then lane_promote l1i_tags base way line
      else begin
        Array.unsafe_set l1i_mis j (Array.unsafe_get l1i_mis j + 1);
        lane_promote l1i_tags base (l1i_assoc - 1) line
      end;
      if Array.unsafe_get set_mru s <> line then mru_diverge s j line
    end
  in
  let l1i_probe j addr =
    let line = addr lsr l1i_shift in
    let s = line land l1i_set_mask in
    let m = Array.unsafe_get set_mru s in
    m = line
    || (m = mixed && Array.unsafe_get lane_mru ((s * nl) + j) = line)
    || lane_find_way l1i_tags (((s * nl) + j) * l1i_assoc) l1i_assoc line >= 0
  in
  (* Per-lane wrong-path effects; [cursor] is the first memory event of the
     next block, as in [replay]. *)
  let wrong_path_effects j alternate_block cursor =
    let alt_line = Array.unsafe_get block_addr alternate_block land l1i_line_mask in
    if (not (l1i_probe j alt_line)) && l2_probe j alt_line then l1i_touch j alt_line;
    let r = Array.unsafe_get wrong_runs j + 1 in
    Array.unsafe_set wrong_runs j r;
    if r land 7 = 0 && Array.unsafe_get last_pf j <> cursor && cursor < n_events then begin
      let next_event = Array.unsafe_get mem_events cursor in
      let addr = Pi_layout.Data_layout.address data next_event in
      ignore (l2_ref j (addr land data_line_mask));
      Array.unsafe_set last_pf j cursor
    end
  in
  let n = Array.length step_block in
  let warmup = min warmup_blocks (max 0 (n - 1)) in
  for i = 0 to n - 1 do
    if i = warmup then begin
      Array.fill cyc 0 nl 0.0;
      Array.fill cond_mis 0 nl 0;
      indirect_mispredicts := 0;
      btb_misses := 0;
      cond_branches := 0;
      indirect_branches := 0;
      instructions := 0;
      fetch_lines0 := !fetch_lines;
      Array.blit l1i_acc 0 l1i_acc0 0 nl;
      Array.blit l1i_mis 0 l1i_mis0 0 nl;
      Array.blit l2_acc 0 l2_acc0 0 nl;
      Array.blit l2_mis 0 l2_mis0 0 nl;
      l1d_base := (Cache.accesses l1d, Cache.misses l1d)
    end;
    let b = Array.unsafe_get step_block i in
    instructions := !instructions + Array.unsafe_get step_instrs i;
    let cost = Array.unsafe_get step_cost i in
    for j = 0 to nl - 1 do
      Array.unsafe_set cyc j (Array.unsafe_get cyc j +. cost)
    done;
    let trace_cache_hit =
      match trace_cache with
      | Some tc -> Trace_cache.access tc ~block_id:b
      | None -> false
    in
    if not trace_cache_hit then begin
      let addr = Array.unsafe_get block_addr b in
      let first = addr lsr l1i_shift in
      let last = (addr + Array.unsafe_get block_bytes b - 1) lsr l1i_shift in
      for l = first to last do
        let s = l land l1i_set_mask in
        incr fetch_lines;
        (* Whole-batch MRU fast path: a uniform set whose common way-0 line
           is [l] hits in every lane with no per-lane work at all. *)
        if Array.unsafe_get set_mru s <> l then begin
          let set_base = s * nl * l1i_assoc in
          let line_addr = l lsl l1i_shift in
          if Array.unsafe_get set_mru s <> mixed then begin
            (* Uniform set, other way-0 line: every lane takes the slow
               path (its way 0 holds the same non-[l] line) and finishes
               with [l] at way 0, so the set stays uniform. *)
            for j = 0 to nl - 1 do
              let base = set_base + (j * l1i_assoc) in
              let way = lane_find_way l1i_tags base l1i_assoc l in
              if way >= 0 then lane_promote l1i_tags base way l
              else begin
                Array.unsafe_set l1i_mis j (Array.unsafe_get l1i_mis j + 1);
                lane_promote l1i_tags base (l1i_assoc - 1) l;
                if l2_ref j line_addr then
                  Array.unsafe_set cyc j (Array.unsafe_get cyc j +. l1i_miss_penalty)
                else Array.unsafe_set cyc j (Array.unsafe_get cyc j +. l2_fetch_penalty)
              end
            done;
            Array.unsafe_set set_mru s l
          end
          else begin
            let mru_base = s * nl in
            for j = 0 to nl - 1 do
              (* Per-lane MRU fast path, as in [replay]: promote would be a
                 no-op. *)
              if Array.unsafe_get lane_mru (mru_base + j) <> l then begin
                let base = set_base + (j * l1i_assoc) in
                let way = lane_find_way l1i_tags base l1i_assoc l in
                (if way >= 0 then lane_promote l1i_tags base way l
                 else begin
                   Array.unsafe_set l1i_mis j (Array.unsafe_get l1i_mis j + 1);
                   lane_promote l1i_tags base (l1i_assoc - 1) l;
                   if l2_ref j line_addr then
                     Array.unsafe_set cyc j (Array.unsafe_get cyc j +. l1i_miss_penalty)
                   else Array.unsafe_set cyc j (Array.unsafe_get cyc j +. l2_fetch_penalty)
                 end);
                Array.unsafe_set lane_mru (mru_base + j) l
              end
            done;
            (* Every lane now holds [l] at way 0: the set healed back to
               uniform, so wrong-path divergence is transient. *)
            Array.unsafe_set set_mru s l
          end
        end
      done
    end;
    let mstart = Array.unsafe_get step_mem_start i in
    let mcount = Array.unsafe_get step_mem_count i in
    if mcount > 0 then begin
      for k = mstart to mstart + mcount - 1 do
        let e = Array.unsafe_get mem_events k in
        let addr =
          let offset = Trace.mem_offset e in
          match Trace.mem_space e with
          | Program.Global -> global_base.(Trace.mem_target e) + offset
          | Program.Heap -> heap_base.(Trace.mem_target e).(Trace.mem_obj e) + offset
        in
        if not (Cache.access l1d addr) then begin
          let factor = Array.unsafe_get ev_factor k in
          let hit_pen = l1d_miss_penalty *. factor in
          let miss_pen = l2_miss_penalty *. factor in
          (* Inlined [l2_ref] with the set strip hoisted out of the lane
             loop: every lane references the same L2 set. *)
          let line = addr lsr l2_shift in
          let strip = l2_strip (line land l2_set_mask) in
          for j = 0 to nl - 1 do
            Array.unsafe_set l2_acc j (Array.unsafe_get l2_acc j + 1);
            let base = j * l2_assoc in
            if Array.unsafe_get strip base = line then
              Array.unsafe_set cyc j (Array.unsafe_get cyc j +. hit_pen)
            else begin
              let way = lane_find_way strip base l2_assoc line in
              if way >= 0 then begin
                lane_promote strip base way line;
                Array.unsafe_set cyc j (Array.unsafe_get cyc j +. hit_pen)
              end
              else begin
                Array.unsafe_set l2_mis j (Array.unsafe_get l2_mis j + 1);
                lane_promote strip base (l2_assoc - 1) line;
                Array.unsafe_set cyc j (Array.unsafe_get cyc j +. miss_pen)
              end
            end
          done
        end;
        match prefetcher with
        | Some pf -> (
            match Prefetcher.observe pf ~mem_id:(Array.unsafe_get ev_mem_id k) ~addr with
            | Some (first, count) ->
                for p = 0 to count - 1 do
                  let line_addr = first + (p * 64) in
                  let line = line_addr lsr l2_shift in
                  let strip = l2_strip (line land l2_set_mask) in
                  for j = 0 to nl - 1 do
                    let base = j * l2_assoc in
                    if Array.unsafe_get strip base <> line then begin
                      let way = lane_find_way strip base l2_assoc line in
                      lane_promote strip base (if way >= 0 then way else l2_assoc - 1) line
                    end
                  done;
                  Cache.fill l1d line_addr
                done
            | None -> ())
        | None -> ()
      done
    end;
    let kind = Array.unsafe_get step_kind i in
    if kind <> 0 then
      if kind < 3 then begin
        incr cond_branches;
        let taken_int = kind - 1 in
        let hashed = Array.unsafe_get branch_pc (Array.unsafe_get step_id i) lsr 1 in
        let h_all = !history in
        let cursor = mstart + mcount in
        let alt = Array.unsafe_get step_alt i in
        (* Per-kind lane loops, each reproducing the matching [replay]
           kernel arm decision-for-decision on the lane's packed tables. *)
        for j = 0 to bim_hi - 1 do
          let idx = hashed land Array.unsafe_get mask1 j in
          let pos = Array.unsafe_get off1 j + idx in
          let byte = Char.code (Bytes.unsafe_get tab (pos lsr 2)) in
          let sh = (pos land 3) lsl 1 in
          let c = (byte lsr sh) land 3 in
          Bytes.unsafe_set tab (pos lsr 2)
            (Char.unsafe_chr (byte lxor ((c lxor sat2_update c taken_int) lsl sh)));
          if (c lsr 1) land 1 <> taken_int then begin
            (* open-coded [mispredicted]: a closure call per lane-mispredict
               is measurable at ~1M events per pass *)
            Array.unsafe_set cond_mis j (Array.unsafe_get cond_mis j + 1);
            Array.unsafe_set cyc j (Array.unsafe_get cyc j +. mispredict_penalty);
            if wrong_path then wrong_path_effects j alt cursor
          end
        done;
        for j = bim_hi to gsh_hi - 1 do
          let h = h_all land Array.unsafe_get hmask j in
          let idx = (hashed lxor h) land Array.unsafe_get mask1 j in
          let pos = Array.unsafe_get off1 j + idx in
          let byte = Char.code (Bytes.unsafe_get tab (pos lsr 2)) in
          let sh = (pos land 3) lsl 1 in
          let c = (byte lsr sh) land 3 in
          Bytes.unsafe_set tab (pos lsr 2)
            (Char.unsafe_chr (byte lxor ((c lxor sat2_update c taken_int) lsl sh)));
          if (c lsr 1) land 1 <> taken_int then begin
            (* open-coded [mispredicted]: a closure call per lane-mispredict
               is measurable at ~1M events per pass *)
            Array.unsafe_set cond_mis j (Array.unsafe_get cond_mis j + 1);
            Array.unsafe_set cyc j (Array.unsafe_get cyc j +. mispredict_penalty);
            if wrong_path then wrong_path_effects j alt cursor
          end
        done;
        for j = gsh_hi to gas_hi - 1 do
          let h = h_all land Array.unsafe_get hmask j in
          let idx =
            (((hashed land Array.unsafe_get amask j) lsl Array.unsafe_get hbits j) lor h)
            land Array.unsafe_get mask1 j
          in
          let pos = Array.unsafe_get off1 j + idx in
          let byte = Char.code (Bytes.unsafe_get tab (pos lsr 2)) in
          let sh = (pos land 3) lsl 1 in
          let c = (byte lsr sh) land 3 in
          Bytes.unsafe_set tab (pos lsr 2)
            (Char.unsafe_chr (byte lxor ((c lxor sat2_update c taken_int) lsl sh)));
          if (c lsr 1) land 1 <> taken_int then begin
            (* open-coded [mispredicted]: a closure call per lane-mispredict
               is measurable at ~1M events per pass *)
            Array.unsafe_set cond_mis j (Array.unsafe_get cond_mis j + 1);
            Array.unsafe_set cyc j (Array.unsafe_get cyc j +. mispredict_penalty);
            if wrong_path then wrong_path_effects j alt cursor
          end
        done;
        for j = gas_hi to nl - 1 do
          let h = h_all land Array.unsafe_get hmask j in
          let gidx =
            (hashed lxor h) land Array.unsafe_get gimask j land Array.unsafe_get mask1 j
          in
          let gpos = Array.unsafe_get off1 j + gidx in
          let bpos = Array.unsafe_get off2 j + (hashed land Array.unsafe_get mask2 j) in
          let cpos = Array.unsafe_get off3 j + (hashed land Array.unsafe_get mask3 j) in
          let gbyte = Char.code (Bytes.unsafe_get tab (gpos lsr 2)) in
          let gsh = (gpos land 3) lsl 1 in
          let gc = (gbyte lsr gsh) land 3 in
          let bbyte = Char.code (Bytes.unsafe_get tab (bpos lsr 2)) in
          let bsh = (bpos land 3) lsl 1 in
          let bc = (bbyte lsr bsh) land 3 in
          let cbyte = Char.code (Bytes.unsafe_get tab (cpos lsr 2)) in
          let csh = (cpos land 3) lsl 1 in
          let cc = (cbyte lsr csh) land 3 in
          let gp = (gc lsr 1) land 1 in
          let bp = (bc lsr 1) land 1 in
          let sel = -((cc lsr 1) land 1) in
          let p = (gp land sel) lor (bp land lnot sel) in
          Bytes.unsafe_set tab (gpos lsr 2)
            (Char.unsafe_chr (gbyte lxor ((gc lxor sat2_update gc taken_int) lsl gsh)));
          (* 4-counter table padding keeps the three tables' byte ranges
             disjoint, so the [gpos] write cannot touch [bpos]/[cpos]'s
             bytes and the loads above stay valid. *)
          Bytes.unsafe_set tab (bpos lsr 2)
            (Char.unsafe_chr (bbyte lxor ((bc lxor sat2_update bc taken_int) lsl bsh)));
          let nsel = -(gp lxor bp) in
          let cc' = sat2_update cc (1 - (gp lxor taken_int)) in
          let cfin = (cc' land nsel) lor (cc land lnot nsel) in
          Bytes.unsafe_set tab (cpos lsr 2)
            (Char.unsafe_chr (cbyte lxor ((cc lxor cfin) lsl csh)));
          if p <> taken_int then begin
            (* open-coded [mispredicted]: a closure call per lane-mispredict
               is measurable at ~1M events per pass *)
            Array.unsafe_set cond_mis j (Array.unsafe_get cond_mis j + 1);
            Array.unsafe_set cyc j (Array.unsafe_get cyc j +. mispredict_penalty);
            if wrong_path then wrong_path_effects j alt cursor
          end
        done;
        history := ((h_all lsl 1) lor taken_int) land hist_keep
      end
      else begin
        incr indirect_branches;
        let target_addr = Array.unsafe_get block_addr (Array.unsafe_get step_next i) in
        let pc = Array.unsafe_get ibr_pc (Array.unsafe_get step_id i) in
        let hit =
          config.perfect_btb || indirect_predictor.Indirect.on_indirect ~pc ~target:target_addr
        in
        if not hit then begin
          incr indirect_mispredicts;
          incr btb_misses;
          let alt = Array.unsafe_get step_alt i in
          let cursor = mstart + mcount in
          for j = 0 to nl - 1 do
            Array.unsafe_set cyc j (Array.unsafe_get cyc j +. btb_miss_penalty);
            if alt >= 0 && wrong_path then wrong_path_effects j alt cursor
          done
        end
      end
  done;
  let l1d_a0, l1d_m0 = !l1d_base in
  let l1d_accesses = Cache.accesses l1d - l1d_a0 in
  let l1d_misses = Cache.misses l1d - l1d_m0 in
  (let m_passes, m_blocks, g_lanes = pred_metrics in
   Pi_obs.Metrics.inc m_passes;
   Pi_obs.Metrics.add m_blocks (nl * n);
   Pi_obs.Metrics.set g_lanes (float_of_int nl));
  Array.init nl (fun j ->
      {
        cycles = cyc.(j);
        instructions = !instructions;
        cond_branches = !cond_branches;
        cond_mispredicts = cond_mis.(j);
        indirect_branches = !indirect_branches;
        indirect_mispredicts = !indirect_mispredicts;
        btb_misses = !btb_misses;
        l1i_accesses = !fetch_lines - !fetch_lines0 + l1i_acc.(j) - l1i_acc0.(j);
        l1i_misses = l1i_mis.(j) - l1i_mis0.(j);
        l1d_accesses;
        l1d_misses;
        l2_accesses = l2_acc.(j) - l2_acc0.(j);
        l2_misses = l2_mis.(j) - l2_mis0.(j);
      })

(* The cache-axis fused pass. The direction predictor is shared (its inputs
   are the PC/outcome stream, never cache state), so branch decisions,
   mispredict counts, the indirect predictor, trace cache, prefetcher
   decisions and the whole L1D are lane-invariant; one instance of each
   serves every lane. Per lane remain cycles, the L1I and L2 tag images and
   their access/miss counters — exactly the state a lane's own geometry
   perturbs. Even the wrong-path run counter and its dedup cursor are
   shared: mispredicts fire at the same steps in every lane, so the
   every-8th-run gate opens lane-invariantly (only the touched cache state
   differs per lane).

   The L1I fast path is a single scalar: the committed fetch stream is
   lane-invariant, so after a full fetch of line [l] every lane holds [l]
   at way 0 of its own set for [l]; [mru] remembers that line and repeats
   of the same line (straight-line code) cost one compare for the whole
   batch. A wrong-path touch that promotes a different line invalidates it
   conservatively. *)
let replay_many_cache_body ~warmup_blocks plan (cb : cache_lanes) (placement : Pi_layout.Placement.t)
    =
  let config = plan.plan_config in
  let nl = cb.cb_n in
  if config.l1i.Cache.line_bytes <> cb.cb_i_line || config.l2.Cache.line_bytes <> cb.cb_d_line then
    invalid_arg
      (Printf.sprintf
         "Pipeline.replay_many: cache batch was built for %dB/%dB L1I/L2 lines but the plan's \
          machine has %dB/%dB"
         cb.cb_i_line cb.cb_d_line config.l1i.Cache.line_bytes config.l2.Cache.line_bytes);
  let trace = plan.plan_trace in
  let code = placement.Pi_layout.Placement.code in
  let data = placement.Pi_layout.Placement.data in
  let predictor = config.make_predictor () in
  let indirect_predictor = config.make_indirect () in
  let prefetcher = if config.data_prefetcher then Some (Prefetcher.create ()) else None in
  let trace_cache = Option.map Trace_cache.create config.trace_cache in
  let l1d = Cache.create config.l1d in
  let block_addr = code.Pi_layout.Code_layout.block_addr in
  let block_bytes = code.Pi_layout.Code_layout.block_bytes in
  let branch_pc = code.Pi_layout.Code_layout.branch_pc in
  let ibr_pc = code.Pi_layout.Code_layout.ibr_pc in
  let global_base = data.Pi_layout.Data_layout.global_base in
  let heap_base = data.Pi_layout.Data_layout.heap_base in
  let i_shift = log2_exact cb.cb_i_line in
  let d_shift = log2_exact cb.cb_d_line in
  let i_off = cb.cb_i_off and i_mask = cb.cb_i_mask and i_assoc = cb.cb_i_assoc in
  let d_off = cb.cb_d_off and d_mask = cb.cb_d_mask and d_assoc = cb.cb_d_assoc in
  let scratch =
    match cb.cache_scratch with
    | Some s
      when Array.length s.cs_l1i = cb.cb_i_words && Array.length s.cs_l2 = cb.cb_d_words ->
        Array.fill s.cs_l1i 0 cb.cb_i_words (-1);
        Array.fill s.cs_l2 0 cb.cb_d_words (-1);
        s
    | _ ->
        let s = { cs_l1i = Array.make (max 1 cb.cb_i_words) (-1);
                  cs_l2 = Array.make (max 1 cb.cb_d_words) (-1) }
        in
        cb.cache_scratch <- Some s;
        s
  in
  let l1i_img = scratch.cs_l1i in
  let l2_img = scratch.cs_l2 in
  let mru = ref (-1) in
  let l1i_line_mask = lnot (cb.cb_i_line - 1) in
  let data_line_mask = lnot (config.l1d.Cache.line_bytes - 1) in
  let pen = config.penalties in
  let l1i_miss_penalty = pen.l1i_miss in
  let l2_fetch_penalty = pen.l2_miss *. 0.7 in
  let l1d_miss_penalty = pen.l1d_miss in
  let l2_miss_penalty = pen.l2_miss in
  let mispredict_penalty = pen.mispredict in
  let btb_miss_penalty = pen.btb_miss in
  let step_block = plan.step_block in
  let step_instrs = plan.step_instrs in
  let step_cost = plan.step_cost in
  let step_mem_start = plan.step_mem_start in
  let step_mem_count = plan.step_mem_count in
  let step_kind = plan.step_kind in
  let step_id = plan.step_id in
  let step_next = plan.step_next in
  let step_alt = plan.step_alt in
  let ev_factor = plan.ev_factor in
  let mem_events = trace.Trace.mem_events in
  let n_events = Array.length mem_events in
  (* Per-lane accumulators and cache counters (with warmup snapshots). *)
  let cyc = Array.make nl 0.0 in
  let l1i_acc = Array.make nl 0 and l1i_mis = Array.make nl 0 in
  let l2_acc = Array.make nl 0 and l2_mis = Array.make nl 0 in
  let l1i_acc0 = Array.make nl 0 and l1i_mis0 = Array.make nl 0 in
  let l2_acc0 = Array.make nl 0 and l2_mis0 = Array.make nl 0 in
  (* Shared (lane-invariant) counters. *)
  let cond_branches = ref 0 in
  let cond_mispredicts = ref 0 in
  let indirect_branches = ref 0 in
  let indirect_mispredicts = ref 0 in
  let btb_misses = ref 0 in
  let instructions = ref 0 in
  let fetch_lines = ref 0 in
  let fetch_lines0 = ref 0 in
  let l1d_base = ref (0, 0) in
  let wrong_runs = ref 0 in
  let last_pf = ref (-1) in
  let wrong_path = config.wrong_path in
  (* Counted L2 reference for one lane (demand access or wrong-path touch);
     mirrors [Cache.access] on the lane's own geometry. *)
  let l2_ref j addr =
    Array.unsafe_set l2_acc j (Array.unsafe_get l2_acc j + 1);
    let line = addr lsr d_shift in
    let base =
      Array.unsafe_get d_off j
      + ((line land Array.unsafe_get d_mask j) * Array.unsafe_get d_assoc j)
    in
    let assoc = Array.unsafe_get d_assoc j in
    if Array.unsafe_get l2_img base = line then true
    else begin
      let way = lane_find_way l2_img base assoc line in
      if way >= 0 then begin
        lane_promote l2_img base way line;
        true
      end
      else begin
        Array.unsafe_set l2_mis j (Array.unsafe_get l2_mis j + 1);
        lane_promote l2_img base (assoc - 1) line;
        false
      end
    end
  in
  let l2_probe j addr =
    let line = addr lsr d_shift in
    let base =
      Array.unsafe_get d_off j
      + ((line land Array.unsafe_get d_mask j) * Array.unsafe_get d_assoc j)
    in
    lane_find_way l2_img base (Array.unsafe_get d_assoc j) line >= 0
  in
  let l2_fill j addr =
    let line = addr lsr d_shift in
    let base =
      Array.unsafe_get d_off j
      + ((line land Array.unsafe_get d_mask j) * Array.unsafe_get d_assoc j)
    in
    let assoc = Array.unsafe_get d_assoc j in
    if Array.unsafe_get l2_img base <> line then begin
      let way = lane_find_way l2_img base assoc line in
      lane_promote l2_img base (if way >= 0 then way else assoc - 1) line
    end
  in
  (* Counted L1I reference (the wrong-path touch). Promoting a line other
     than the scalar MRU may displace it from some lane's way 0, so the
     fast path is conservatively dropped. *)
  let l1i_touch j addr =
    Array.unsafe_set l1i_acc j (Array.unsafe_get l1i_acc j + 1);
    let line = addr lsr i_shift in
    let base =
      Array.unsafe_get i_off j
      + ((line land Array.unsafe_get i_mask j) * Array.unsafe_get i_assoc j)
    in
    let assoc = Array.unsafe_get i_assoc j in
    if Array.unsafe_get l1i_img base <> line then begin
      let way = lane_find_way l1i_img base assoc line in
      if way >= 0 then lane_promote l1i_img base way line
      else begin
        Array.unsafe_set l1i_mis j (Array.unsafe_get l1i_mis j + 1);
        lane_promote l1i_img base (assoc - 1) line
      end;
      if line <> !mru then mru := -1
    end
  in
  let l1i_probe j addr =
    let line = addr lsr i_shift in
    let base =
      Array.unsafe_get i_off j
      + ((line land Array.unsafe_get i_mask j) * Array.unsafe_get i_assoc j)
    in
    lane_find_way l1i_img base (Array.unsafe_get i_assoc j) line >= 0
  in
  (* Wrong-path effects for one mispredict event, all lanes. The probe and
     touch run per lane on the lane's own images; the run counter and the
     speculative-load dedup cursor advance once — their transitions are
     lane-invariant because every lane mispredicts at the same steps. *)
  let wrong_path_effects alternate_block cursor =
    let alt_line = Array.unsafe_get block_addr alternate_block land l1i_line_mask in
    for j = 0 to nl - 1 do
      if (not (l1i_probe j alt_line)) && l2_probe j alt_line then l1i_touch j alt_line
    done;
    incr wrong_runs;
    if !wrong_runs land 7 = 0 && !last_pf <> cursor && cursor < n_events then begin
      let next_event = Array.unsafe_get mem_events cursor in
      let addr = Pi_layout.Data_layout.address data next_event in
      let line_addr = addr land data_line_mask in
      for j = 0 to nl - 1 do
        ignore (l2_ref j line_addr)
      done;
      last_pf := cursor
    end
  in
  let n = Array.length step_block in
  let warmup = min warmup_blocks (max 0 (n - 1)) in
  for i = 0 to n - 1 do
    if i = warmup then begin
      Array.fill cyc 0 nl 0.0;
      cond_mispredicts := 0;
      indirect_mispredicts := 0;
      btb_misses := 0;
      cond_branches := 0;
      indirect_branches := 0;
      instructions := 0;
      fetch_lines0 := !fetch_lines;
      Array.blit l1i_acc 0 l1i_acc0 0 nl;
      Array.blit l1i_mis 0 l1i_mis0 0 nl;
      Array.blit l2_acc 0 l2_acc0 0 nl;
      Array.blit l2_mis 0 l2_mis0 0 nl;
      l1d_base := (Cache.accesses l1d, Cache.misses l1d)
    end;
    let b = Array.unsafe_get step_block i in
    instructions := !instructions + Array.unsafe_get step_instrs i;
    let cost = Array.unsafe_get step_cost i in
    for j = 0 to nl - 1 do
      Array.unsafe_set cyc j (Array.unsafe_get cyc j +. cost)
    done;
    let trace_cache_hit =
      match trace_cache with
      | Some tc -> Trace_cache.access tc ~block_id:b
      | None -> false
    in
    if not trace_cache_hit then begin
      let addr = Array.unsafe_get block_addr b in
      let first = addr lsr i_shift in
      let last = (addr + Array.unsafe_get block_bytes b - 1) lsr i_shift in
      for l = first to last do
        incr fetch_lines;
        (* Whole-batch MRU fast path: a repeat of the last fetched line hits
           at way 0 in every lane with no per-lane work at all. *)
        if !mru <> l then begin
          let line_addr = l lsl i_shift in
          for j = 0 to nl - 1 do
            let assoc = Array.unsafe_get i_assoc j in
            let base =
              Array.unsafe_get i_off j + ((l land Array.unsafe_get i_mask j) * assoc)
            in
            (* Way-0 hit: promote is a no-op, as in [replay]'s MRU check. *)
            if Array.unsafe_get l1i_img base <> l then begin
              let way = lane_find_way l1i_img base assoc l in
              if way >= 0 then lane_promote l1i_img base way l
              else begin
                Array.unsafe_set l1i_mis j (Array.unsafe_get l1i_mis j + 1);
                lane_promote l1i_img base (assoc - 1) l;
                if l2_ref j line_addr then
                  Array.unsafe_set cyc j (Array.unsafe_get cyc j +. l1i_miss_penalty)
                else Array.unsafe_set cyc j (Array.unsafe_get cyc j +. l2_fetch_penalty)
              end
            end
          done;
          (* Every lane now holds [l] at way 0 of its set for [l]. *)
          mru := l
        end
      done
    end;
    let mstart = Array.unsafe_get step_mem_start i in
    let mcount = Array.unsafe_get step_mem_count i in
    if mcount > 0 then begin
      for k = mstart to mstart + mcount - 1 do
        let e = Array.unsafe_get mem_events k in
        let addr =
          let offset = Trace.mem_offset e in
          match Trace.mem_space e with
          | Program.Global -> global_base.(Trace.mem_target e) + offset
          | Program.Heap -> heap_base.(Trace.mem_target e).(Trace.mem_obj e) + offset
        in
        if not (Cache.access l1d addr) then begin
          let factor = Array.unsafe_get ev_factor k in
          let hit_pen = l1d_miss_penalty *. factor in
          let miss_pen = l2_miss_penalty *. factor in
          for j = 0 to nl - 1 do
            if l2_ref j addr then Array.unsafe_set cyc j (Array.unsafe_get cyc j +. hit_pen)
            else Array.unsafe_set cyc j (Array.unsafe_get cyc j +. miss_pen)
          done
        end;
        match prefetcher with
        | Some pf -> (
            match Prefetcher.observe pf ~mem_id:(Array.unsafe_get plan.ev_mem_id k) ~addr with
            | Some (first, count) ->
                for p = 0 to count - 1 do
                  let line_addr = first + (p * 64) in
                  for j = 0 to nl - 1 do
                    l2_fill j line_addr
                  done;
                  Cache.fill l1d line_addr
                done
            | None -> ())
        | None -> ()
      done
    end;
    let kind = Array.unsafe_get step_kind i in
    if kind <> 0 then
      if kind < 3 then begin
        incr cond_branches;
        let taken_int = kind - 1 in
        let pc = Array.unsafe_get branch_pc (Array.unsafe_get step_id i) in
        (* One shared predictor: decisions are geometry-invariant, and the
           closure is decision-identical to the inlined kernels (the
           standing kernel-vs-closure invariant), so each lane's mispredict
           stream matches its sequential [replay] exactly. *)
        let correct = predictor.Predictor.on_branch ~pc ~taken:(taken_int <> 0) in
        if not correct then begin
          incr cond_mispredicts;
          for j = 0 to nl - 1 do
            Array.unsafe_set cyc j (Array.unsafe_get cyc j +. mispredict_penalty)
          done;
          if wrong_path then wrong_path_effects (Array.unsafe_get step_alt i) (mstart + mcount)
        end
      end
      else begin
        incr indirect_branches;
        let target_addr = Array.unsafe_get block_addr (Array.unsafe_get step_next i) in
        let pc = Array.unsafe_get ibr_pc (Array.unsafe_get step_id i) in
        let hit =
          config.perfect_btb || indirect_predictor.Indirect.on_indirect ~pc ~target:target_addr
        in
        if not hit then begin
          incr indirect_mispredicts;
          incr btb_misses;
          for j = 0 to nl - 1 do
            Array.unsafe_set cyc j (Array.unsafe_get cyc j +. btb_miss_penalty)
          done;
          let alt = Array.unsafe_get step_alt i in
          if alt >= 0 && wrong_path then wrong_path_effects alt (mstart + mcount)
        end
      end
  done;
  let l1d_a0, l1d_m0 = !l1d_base in
  let l1d_accesses = Cache.accesses l1d - l1d_a0 in
  let l1d_misses = Cache.misses l1d - l1d_m0 in
  (let m_passes, m_blocks, g_lanes = cache_metrics in
   Pi_obs.Metrics.inc m_passes;
   Pi_obs.Metrics.add m_blocks (nl * n);
   Pi_obs.Metrics.set g_lanes (float_of_int nl));
  Array.init nl (fun j ->
      {
        cycles = cyc.(j);
        instructions = !instructions;
        cond_branches = !cond_branches;
        cond_mispredicts = !cond_mispredicts;
        indirect_branches = !indirect_branches;
        indirect_mispredicts = !indirect_mispredicts;
        btb_misses = !btb_misses;
        l1i_accesses = !fetch_lines - !fetch_lines0 + l1i_acc.(j) - l1i_acc0.(j);
        l1i_misses = l1i_mis.(j) - l1i_mis0.(j);
        l1d_accesses;
        l1d_misses;
        l2_accesses = l2_acc.(j) - l2_acc0.(j);
        l2_misses = l2_mis.(j) - l2_mis0.(j);
      })

let replay_many ?(warmup_blocks = 0) plan batch placement =
  if batch_lanes batch = 0 then [||]
  else
    Pi_obs.Span.with_ ~name:"replay.fused"
      ~args:
        [
          ("axis", batch_axis batch);
          ("lanes", string_of_int (batch_lanes batch));
          ("blocks", string_of_int (Array.length plan.step_block));
        ]
      (fun () ->
        match batch with
        | Predictor_lanes b -> replay_many_body ~warmup_blocks plan b placement
        | Cache_lanes c -> replay_many_cache_body ~warmup_blocks plan c placement)

let cpi c =
  if c.instructions = 0 then 0.0 else c.cycles /. float_of_int c.instructions

let mispredicts c = c.cond_mispredicts + c.indirect_mispredicts

let per_kilo_instr count c =
  if c.instructions = 0 then 0.0
  else 1000.0 *. float_of_int count /. float_of_int c.instructions

let mpki c = per_kilo_instr (mispredicts c) c
let l1i_mpki c = per_kilo_instr c.l1i_misses c
let l1d_mpki c = per_kilo_instr c.l1d_misses c
let l2_mpki c = per_kilo_instr c.l2_misses c
