(* Facade over the compiled-plan machinery in {!Pipeline}; the
   implementation lives there because the plan bakes in Pipeline's config
   and counts types. *)

type plan = Pipeline.plan

let compile = Pipeline.compile
let run = Pipeline.replay
let with_config = Pipeline.plan_with_config
let config = Pipeline.plan_config
let trace = Pipeline.plan_trace
let blocks = Pipeline.plan_blocks
let mem_events = Pipeline.plan_mem_events
let words = Pipeline.plan_words
