(* Facade over the compiled-plan machinery in {!Pipeline}; the
   implementation lives there because the plan bakes in Pipeline's config
   and counts types. *)

type plan = Pipeline.plan

let compile = Pipeline.compile
let run = Pipeline.replay
let with_config = Pipeline.plan_with_config
let config = Pipeline.plan_config
let trace = Pipeline.plan_trace
let blocks = Pipeline.plan_blocks
let mem_events = Pipeline.plan_mem_events
let words = Pipeline.plan_words

type batch = Pipeline.batch

let batch_of = Pipeline.batch_of
let cache_batch_of = Pipeline.cache_batch_of
let batch_axis = Pipeline.batch_axis
let batch_lanes = Pipeline.batch_lanes
let batch_names = Pipeline.batch_names
let batch_src = Pipeline.batch_src
let batch_fallback = Pipeline.batch_fallback
let batch_table_bytes = Pipeline.batch_table_bytes
let shard = Pipeline.batch_shard
let run_many = Pipeline.replay_many
