(** Branch direction predictor interface.

    Simulators drive predictors through a uniform closure record: [on_branch]
    receives the branch's instruction address and its actual outcome,
    performs the prediction and the update, and reports whether the
    prediction was correct. Folding predict+update into one call lets the
    perfect predictor fit the interface and keeps the hot loop to a single
    dispatch.

    Concrete predictors also expose typed creation functions (and, for unit
    tests, their internals) in their own modules: {!Bimodal}, {!Gshare},
    {!Gas}, {!Hybrid}, {!Ltage}, {!Perfect}. *)

(** Flattened mirror of a table-indexed predictor for the replay hot loop:
    raw counter bytes, index masks and the (shared, live) history cell, so
    the simulator can advance the predictor inline instead of through a
    closure call per branch. A kernel aliases the predictor's state — it is
    an alternative view, not a copy — and its advance must reproduce
    [on_branch] decision-for-decision and state-for-state (the golden
    replay-equivalence tests enforce this). Predictors with no flat form
    (perfect, L-TAGE, perceptron, ...) simply provide no kernel and are
    driven through the closure. *)
type kernel =
  | Bimodal_k of { counters : Bytes.t; mask : int }
  | Gshare_k of {
      counters : Bytes.t;
      mask : int;
      history : int ref;
      history_mask : int;
    }
  | Gas_k of {
      counters : Bytes.t;
      mask : int;
      history : int ref;
      history_mask : int;
      addr_mask : int;
      history_bits : int;
    }
  | Hybrid_k of {
      gas : Bytes.t;
      gas_mask : int;
      gas_index_mask : int;
      bim : Bytes.t;
      bim_mask : int;
      cho : Bytes.t;
      cho_mask : int;
      history : int ref;
      history_mask : int;
    }

type t = {
  name : string;
  on_branch : pc:int -> taken:bool -> bool;  (** true = predicted correctly *)
  reset : unit -> unit;
  storage_bits : int;  (** hardware budget, for reporting *)
  kernel : kernel option;  (** flat fast-path view, when one exists *)
}

val storage_kb : t -> float

(** Saturating two-bit counter tables, the building block of most
    predictors. *)
module Counter_table : sig
  type table

  val create : entries:int -> table
  (** All counters initialized to weakly not-taken (1). [entries] must be a
      power of two. *)

  val entries : table -> int
  val predict : table -> int -> bool
  (** Taken iff the counter at the (masked) index is >= 2. *)

  val update : table -> int -> bool -> unit
  (** Saturating increment on taken, decrement on not-taken. *)

  val get : table -> int -> int
  val reset : table -> unit

  val raw : table -> Bytes.t * int
  (** [(counters, index_mask)] — the live storage, for building {!kernel}
      views. *)
end

val hash_pc : int -> int
(** Canonical PC pre-hash shared by the table-indexed predictors (drops the
    low bit of the byte address). *)
