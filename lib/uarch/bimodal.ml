let size_bytes ~entries_log2 = (1 lsl entries_log2) * 2 / 8

let create ~entries_log2 =
  if entries_log2 < 4 || entries_log2 > 24 then invalid_arg "Bimodal.create: entries_log2 out of [4,24]";
  let table = Predictor.Counter_table.create ~entries:(1 lsl entries_log2) in
  let on_branch ~pc ~taken =
    let index = Predictor.hash_pc pc in
    let prediction = Predictor.Counter_table.predict table index in
    Predictor.Counter_table.update table index taken;
    prediction = taken
  in
  {
    Predictor.name = Printf.sprintf "bimodal-%dKB" (size_bytes ~entries_log2 / 1024);
    on_branch;
    reset = (fun () -> Predictor.Counter_table.reset table);
    storage_bits = (1 lsl entries_log2) * 2;
    kernel =
      (let counters, mask = Predictor.Counter_table.raw table in
       Some (Predictor.Bimodal_k { counters; mask }));
  }
