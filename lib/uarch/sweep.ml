let build_configurations () =
  let configs = ref [] in
  let add name make = configs := (name, make) :: !configs in
  (* Bimodal: 9 sizes. *)
  List.iter
    (fun el -> add (Printf.sprintf "bimodal-%d" el) (fun () -> Bimodal.create ~entries_log2:el))
    [ 8; 9; 10; 11; 12; 13; 14; 15; 16 ];
  (* Gshare: sizes x even history lengths. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h <= el then
            add
              (Printf.sprintf "gshare-%d/%d" el h)
              (fun () -> Gshare.create ~entries_log2:el ~history_bits:h))
        [ 4; 6; 8; 10; 12 ])
    [ 10; 11; 12; 13; 14; 15; 16 ];
  (* Gshare: odd history lengths on a sparser size grid. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h <= el then
            add
              (Printf.sprintf "gshare-%d/%d" el h)
              (fun () -> Gshare.create ~entries_log2:el ~history_bits:h))
        [ 3; 5; 7; 9; 11; 13 ])
    [ 10; 12; 14; 16 ];
  (* GAs: sizes x even history lengths. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "gas-%d/%d" el h)
              (fun () -> Gas.create ~entries_log2:el ~history_bits:h))
        [ 2; 4; 6; 8; 10; 12 ])
    [ 10; 11; 12; 13; 14; 15; 16 ];
  (* GAs: odd history lengths on a sparser grid. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "gas-%d/%d" el h)
              (fun () -> Gas.create ~entries_log2:el ~history_bits:h))
        [ 3; 5; 7; 9; 11 ])
    [ 10; 12; 14; 16 ];
  (* Hybrids. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "hybrid-%d/%d" el h)
              (fun () ->
                Hybrid.create ~gas_entries_log2:el ~gas_history_bits:h
                  ~bimodal_entries_log2:(el - 1) ~chooser_entries_log2:(el - 1) ()))
        [ 6; 8; 10 ])
    [ 11; 12; 13; 14; 15; 16 ];
  (* Static predictors: the low end of the accuracy range. *)
  add "static-taken" Perfect.always_taken;
  add "static-not-taken" Perfect.always_not_taken;
  (* Fill to exactly 145 with corner-case geometries off the grids above. *)
  add "gshare-13/13" (fun () -> Gshare.create ~entries_log2:13 ~history_bits:13);
  add "gshare-11/11" (fun () -> Gshare.create ~entries_log2:11 ~history_bits:11);
  add "gas-11/9" (fun () -> Gas.create ~entries_log2:11 ~history_bits:9);
  add "gas-13/11" (fun () -> Gas.create ~entries_log2:13 ~history_bits:11);
  add "hybrid-16/12" (fun () ->
      Hybrid.create ~gas_entries_log2:16 ~gas_history_bits:12 ~bimodal_entries_log2:15
        ~chooser_entries_log2:15 ());
  let all = List.rev !configs in
  let count = List.length all in
  if count <> 145 then
    invalid_arg
      (Printf.sprintf
         "Sweep.configurations: the grid defines %d configurations, expected 145 (the paper's \
          Section 3 sweep); adjust the grid or the expected count together"
         count);
  all

(* The grid is immutable and each entry's [make] is a pure constructor, so
   one shared list serves every study (and every domain — it is forced once,
   before any shard workers start). *)
let configurations_memo = lazy (build_configurations ())
let configurations () = Lazy.force configurations_memo

(* The fused batch over the memoized grid is itself memoized: its packed
   table image and lane metadata depend only on [configurations ()], and
   [Replay.run_many] copies the table image per pass, so one batch serves
   every study. Reuse also keeps the batch's lazily-built L2 scratch warm
   across studies, which is worth ~30% of a pass at default scale. The
   scratch makes a batch single-domain; sharded runs are unaffected because
   every shard of 2+ is a fresh sub-batch with its own scratch. *)
let grid_batch_memo = lazy (Replay.batch_of (Array.of_list (configurations ())))
let grid_batch () = Lazy.force grid_batch_memo

type point = { config_name : string; mpki : float; cpi : float }

type study = {
  benchmark : string;
  points : point array;
  perfect_cpi : float;
  ltage_point : point;
  regression : Pi_stats.Linreg.t;
  predicted_perfect_cpi : float;
  perfect_error_percent : float;
  predicted_ltage_cpi : float;
  ltage_error_percent : float;
  warmup_blocks : int;
  fused_lanes : int;
  fallback_lanes : int;
  shards : int;
}

type shard_map = (int -> Pipeline.counts array) -> int -> Pipeline.counts array array

let simulate ~warmup_blocks base plan placement name make =
  let config = Machine.with_predictor base ~name make in
  let config = if name = "perfect" then { config with Pipeline.perfect_btb = true } else config in
  (* Swapping the predictor never invalidates the compiled arrays, so this
     rebind is free: one compile serves the whole ~150-config study. *)
  let counts = Replay.run ~warmup_blocks (Replay.with_config plan config) placement in
  { config_name = name; mpki = Pipeline.mpki counts; cpi = Pipeline.cpi counts }

(* The 145-configuration grid through either path; the timing target of
   BENCH_sweep.json. Returns (points, fused_lanes, fallback_lanes, shards). *)
let run_grid ?(base = Machine.xeon_e5440) ?plan ?(warmup_blocks = 0) ?(shards = 1) ?map_shards
    ?(fused = true) trace placement =
  let plan =
    match plan with Some p -> p | None -> Replay.compile base trace
  in
  let simulate = simulate ~warmup_blocks base plan placement in
  let configs = Array.of_list (configurations ()) in
  let n = Array.length configs in
  let points = Array.make n { config_name = ""; mpki = 0.0; cpi = 0.0 } in
  let point_of_counts name counts =
    { config_name = name; mpki = Pipeline.mpki counts; cpi = Pipeline.cpi counts }
  in
  if not fused then begin
    Array.iteri (fun i (name, make) -> points.(i) <- simulate name make) configs;
    (points, 0, n, 0)
  end
  else begin
    let batch = grid_batch () in
    let sub = Replay.shard batch ~shards in
    let n_shards = Array.length sub in
    let run_shard s = Replay.run_many ~warmup_blocks plan sub.(s) placement in
    let shard_counts =
      match map_shards with
      | Some m when n_shards > 1 -> m run_shard n_shards
      | _ -> Array.init n_shards run_shard
    in
    (* Deterministic merge: every lane lands in the slot its caller index
       names, independent of shard execution order. *)
    Array.iteri
      (fun s counts ->
        let src = Replay.batch_src sub.(s) in
        Array.iteri
          (fun j c -> points.(src.(j)) <- point_of_counts (fst configs.(src.(j))) c)
          counts)
      shard_counts;
    Array.iter
      (fun i ->
        let name, make = configs.(i) in
        points.(i) <- simulate name make)
      (Replay.batch_fallback batch);
    (points, Replay.batch_lanes batch, Array.length (Replay.batch_fallback batch), n_shards)
  end

let run_study ?(base = Machine.xeon_e5440) ?plan ?(warmup_blocks = 0) ?(shards = 1) ?map_shards
    ?(fused = true) ~benchmark trace placement =
  let plan =
    match plan with Some p -> p | None -> Replay.compile base trace
  in
  let points, fused_lanes, fallback_lanes, shards_used =
    run_grid ~base ~plan ~warmup_blocks ~shards ?map_shards ~fused trace placement
  in
  let simulate = simulate ~warmup_blocks base plan placement in
  let perfect = simulate "perfect" Perfect.perfect in
  let ltage_point = simulate "L-TAGE" (fun () -> Ltage.create ()) in
  let xs = Array.map (fun p -> p.mpki) points in
  let ys = Array.map (fun p -> p.cpi) points in
  let regression = Pi_stats.Linreg.fit xs ys in
  let predicted_perfect_cpi = Pi_stats.Linreg.predict regression 0.0 in
  let predicted_ltage_cpi = Pi_stats.Linreg.predict regression ltage_point.mpki in
  let error_percent predicted actual =
    if actual = 0.0 then 0.0 else Float.abs (predicted -. actual) /. actual *. 100.0
  in
  {
    benchmark;
    points;
    perfect_cpi = perfect.cpi;
    ltage_point;
    regression;
    predicted_perfect_cpi;
    perfect_error_percent = error_percent predicted_perfect_cpi perfect.cpi;
    predicted_ltage_cpi;
    ltage_error_percent = error_percent predicted_ltage_cpi ltage_point.cpi;
    warmup_blocks;
    fused_lanes;
    fallback_lanes;
    shards = shards_used;
  }
