let build_configurations () =
  let configs = ref [] in
  let add name make = configs := (name, make) :: !configs in
  (* Bimodal: 9 sizes. *)
  List.iter
    (fun el -> add (Printf.sprintf "bimodal-%d" el) (fun () -> Bimodal.create ~entries_log2:el))
    [ 8; 9; 10; 11; 12; 13; 14; 15; 16 ];
  (* Gshare: sizes x even history lengths. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h <= el then
            add
              (Printf.sprintf "gshare-%d/%d" el h)
              (fun () -> Gshare.create ~entries_log2:el ~history_bits:h))
        [ 4; 6; 8; 10; 12 ])
    [ 10; 11; 12; 13; 14; 15; 16 ];
  (* Gshare: odd history lengths on a sparser size grid. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h <= el then
            add
              (Printf.sprintf "gshare-%d/%d" el h)
              (fun () -> Gshare.create ~entries_log2:el ~history_bits:h))
        [ 3; 5; 7; 9; 11; 13 ])
    [ 10; 12; 14; 16 ];
  (* GAs: sizes x even history lengths. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "gas-%d/%d" el h)
              (fun () -> Gas.create ~entries_log2:el ~history_bits:h))
        [ 2; 4; 6; 8; 10; 12 ])
    [ 10; 11; 12; 13; 14; 15; 16 ];
  (* GAs: odd history lengths on a sparser grid. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "gas-%d/%d" el h)
              (fun () -> Gas.create ~entries_log2:el ~history_bits:h))
        [ 3; 5; 7; 9; 11 ])
    [ 10; 12; 14; 16 ];
  (* Hybrids. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "hybrid-%d/%d" el h)
              (fun () ->
                Hybrid.create ~gas_entries_log2:el ~gas_history_bits:h
                  ~bimodal_entries_log2:(el - 1) ~chooser_entries_log2:(el - 1) ()))
        [ 6; 8; 10 ])
    [ 11; 12; 13; 14; 15; 16 ];
  (* Static predictors: the low end of the accuracy range. *)
  add "static-taken" Perfect.always_taken;
  add "static-not-taken" Perfect.always_not_taken;
  (* Fill to exactly 145 with corner-case geometries off the grids above. *)
  add "gshare-13/13" (fun () -> Gshare.create ~entries_log2:13 ~history_bits:13);
  add "gshare-11/11" (fun () -> Gshare.create ~entries_log2:11 ~history_bits:11);
  add "gas-11/9" (fun () -> Gas.create ~entries_log2:11 ~history_bits:9);
  add "gas-13/11" (fun () -> Gas.create ~entries_log2:13 ~history_bits:11);
  add "hybrid-16/12" (fun () ->
      Hybrid.create ~gas_entries_log2:16 ~gas_history_bits:12 ~bimodal_entries_log2:15
        ~chooser_entries_log2:15 ());
  let all = List.rev !configs in
  let count = List.length all in
  if count <> 145 then
    invalid_arg
      (Printf.sprintf
         "Sweep.configurations: the grid defines %d configurations, expected 145 (the paper's \
          Section 3 sweep); adjust the grid or the expected count together"
         count);
  all

(* The grid is immutable and each entry's [make] is a pure constructor, so
   one shared list serves every study (and every domain — it is forced once,
   before any shard workers start). *)
let configurations_memo = lazy (build_configurations ())
let configurations () = Lazy.force configurations_memo

(* The fused batch over the memoized grid is itself memoized: its packed
   table image and lane metadata depend only on [configurations ()], and
   [Replay.run_many] copies the table image per pass, so one batch serves
   every study. Reuse also keeps the batch's lazily-built L2 scratch warm
   across studies, which is worth ~30% of a pass at default scale. The
   scratch makes a batch single-domain; sharded runs are unaffected because
   every shard of 2+ is a fresh sub-batch with its own scratch. *)
let grid_batch_memo = lazy (Replay.batch_of (Array.of_list (configurations ())))
let grid_batch () = Lazy.force grid_batch_memo

type point = { config_name : string; mpki : float; cpi : float }

type study = {
  benchmark : string;
  points : point array;
  perfect_cpi : float;
  ltage_point : point;
  regression : Pi_stats.Linreg.t;
  predicted_perfect_cpi : float;
  perfect_error_percent : float;
  predicted_ltage_cpi : float;
  ltage_error_percent : float;
  warmup_blocks : int;
  fused_lanes : int;
  fallback_lanes : int;
  shards : int;
}

type shard_map = (int -> Pipeline.counts array) -> int -> Pipeline.counts array array

let simulate ~warmup_blocks base plan placement name make =
  let config = Machine.with_predictor base ~name make in
  let config = if name = "perfect" then { config with Pipeline.perfect_btb = true } else config in
  (* Swapping the predictor never invalidates the compiled arrays, so this
     rebind is free: one compile serves the whole ~150-config study. *)
  let counts = Replay.run ~warmup_blocks (Replay.with_config plan config) placement in
  { config_name = name; mpki = Pipeline.mpki counts; cpi = Pipeline.cpi counts }

(* The 145-configuration grid through either path; the timing target of
   BENCH_sweep.json. Returns (points, fused_lanes, fallback_lanes, shards). *)
let run_grid ?(base = Machine.xeon_e5440) ?plan ?(warmup_blocks = 0) ?(shards = 1) ?map_shards
    ?(fused = true) trace placement =
  let plan =
    match plan with Some p -> p | None -> Replay.compile base trace
  in
  let simulate = simulate ~warmup_blocks base plan placement in
  let configs = Array.of_list (configurations ()) in
  let n = Array.length configs in
  let points = Array.make n { config_name = ""; mpki = 0.0; cpi = 0.0 } in
  let point_of_counts name counts =
    { config_name = name; mpki = Pipeline.mpki counts; cpi = Pipeline.cpi counts }
  in
  if not fused then begin
    Array.iteri (fun i (name, make) -> points.(i) <- simulate name make) configs;
    (points, 0, n, 0)
  end
  else begin
    let batch = grid_batch () in
    let sub = Replay.shard batch ~shards in
    let n_shards = Array.length sub in
    let run_shard s = Replay.run_many ~warmup_blocks plan sub.(s) placement in
    let shard_counts =
      match map_shards with
      | Some m when n_shards > 1 -> m run_shard n_shards
      | _ -> Array.init n_shards run_shard
    in
    (* Deterministic merge: every lane lands in the slot its caller index
       names, independent of shard execution order. *)
    Array.iteri
      (fun s counts ->
        let src = Replay.batch_src sub.(s) in
        Array.iteri
          (fun j c -> points.(src.(j)) <- point_of_counts (fst configs.(src.(j))) c)
          counts)
      shard_counts;
    Array.iter
      (fun i ->
        let name, make = configs.(i) in
        points.(i) <- simulate name make)
      (Replay.batch_fallback batch);
    (points, Replay.batch_lanes batch, Array.length (Replay.batch_fallback batch), n_shards)
  end

let run_study ?(base = Machine.xeon_e5440) ?plan ?(warmup_blocks = 0) ?(shards = 1) ?map_shards
    ?(fused = true) ~benchmark trace placement =
  let plan =
    match plan with Some p -> p | None -> Replay.compile base trace
  in
  let points, fused_lanes, fallback_lanes, shards_used =
    run_grid ~base ~plan ~warmup_blocks ~shards ?map_shards ~fused trace placement
  in
  let simulate = simulate ~warmup_blocks base plan placement in
  let perfect = simulate "perfect" Perfect.perfect in
  let ltage_point = simulate "L-TAGE" (fun () -> Ltage.create ()) in
  let xs = Array.map (fun p -> p.mpki) points in
  let ys = Array.map (fun p -> p.cpi) points in
  let regression = Pi_stats.Linreg.fit xs ys in
  let predicted_perfect_cpi = Pi_stats.Linreg.predict regression 0.0 in
  let predicted_ltage_cpi = Pi_stats.Linreg.predict regression ltage_point.mpki in
  let error_percent predicted actual =
    if actual = 0.0 then 0.0 else Float.abs (predicted -. actual) /. actual *. 100.0
  in
  {
    benchmark;
    points;
    perfect_cpi = perfect.cpi;
    ltage_point;
    regression;
    predicted_perfect_cpi;
    perfect_error_percent = error_percent predicted_perfect_cpi perfect.cpi;
    predicted_ltage_cpi;
    ltage_error_percent = error_percent predicted_ltage_cpi ltage_point.cpi;
    warmup_blocks;
    fused_lanes;
    fallback_lanes;
    shards = shards_used;
  }

(* ------------------------------------------------------------------ *)
(* The cache-geometry axis (INTERPLAY's question): sweep way-disabled and
   resized variants of the seed L1I/L2 and fit CPI against the two cache
   MPKIs, interferometry-style, instead of training a model. *)

type cache_variant = Ways of int | Half | Double

let variant_label = function
  | Ways k -> Printf.sprintf "w%d" k
  | Half -> "half"
  | Double -> "double"

(* 10 variants per cache (w1..w8 way-disabling keeps the set count and
   shrinks capacity; half/double resize at the seed associativity, moving
   the set count) x both caches = the 100-point grid. The descriptor grid
   is symbolic — it assumes 8-way seed caches (both machines) and is
   validated against the actual seed geometries at materialization. *)
let build_cache_configurations () =
  let variants = [ Ways 1; Ways 2; Ways 3; Ways 4; Ways 5; Ways 6; Ways 7; Ways 8; Half; Double ] in
  let all =
    List.concat_map
      (fun vi ->
        List.map
          (fun vd ->
            (Printf.sprintf "l1i-%s+l2-%s" (variant_label vi) (variant_label vd), vi, vd))
          variants)
      variants
  in
  let count = List.length all in
  if count <> 100 then
    invalid_arg
      (Printf.sprintf
         "Sweep.cache_configurations: the grid defines %d configurations, expected 100 (10 L1I x \
          10 L2 variants); adjust the grid or the expected count together"
         count);
  all

(* Memoized like [configurations ()]: the symbolic grid is immutable, so
   one shared list serves every study and machine. *)
let cache_configurations_memo = lazy (build_cache_configurations ())
let cache_configurations () = Lazy.force cache_configurations_memo

let apply_cache_variant (g : Cache.geometry) v =
  match v with
  | Ways k ->
      if k > g.Cache.assoc then
        invalid_arg
          (Printf.sprintf
             "Sweep.cache_configurations: variant w%d needs %d ways but the seed geometry has %d \
              (way-disabling only removes ways)"
             k k g.Cache.assoc);
      let sets = Cache.geometry_sets g in
      { g with Cache.assoc = k; size_bytes = sets * k * g.Cache.line_bytes }
  | Half -> { g with Cache.size_bytes = g.Cache.size_bytes / 2 }
  | Double -> { g with Cache.size_bytes = g.Cache.size_bytes * 2 }

let materialize_cache_configurations ~l1i ~l2 =
  Array.of_list
    (List.map
       (fun (name, vi, vd) -> (name, apply_cache_variant l1i vi, apply_cache_variant l2 vd))
       (cache_configurations ()))

(* One fused batch per seed (L1I, L2) pair, memoized for the same reason as
   [grid_batch]: lane metadata and arena offsets depend only on the seed
   geometries, and successive passes recycle the batch's tag-arena scratch.
   Populated on the caller's domain before any shard workers start (shards
   of 2+ are fresh sub-batches), so the table needs no locking. *)
let cache_batch_table : (Cache.geometry * Cache.geometry, Replay.batch) Hashtbl.t =
  Hashtbl.create 4

let cache_grid_batch ~l1i ~l2 =
  match Hashtbl.find_opt cache_batch_table (l1i, l2) with
  | Some batch -> batch
  | None ->
      let batch = Replay.cache_batch_of ~l1i ~l2 (materialize_cache_configurations ~l1i ~l2) in
      Hashtbl.add cache_batch_table (l1i, l2) batch;
      batch

type cache_point = {
  geometry_name : string;
  l1i_geometry : Cache.geometry;
  l2_geometry : Cache.geometry;
  l1i_mpki : float;
  l2_mpki : float;
  cache_cpi : float;
}

type cache_study = {
  cache_benchmark : string;
  cache_points : cache_point array;
  seed_point : cache_point;
  degradation : Pi_stats.Multireg.t;
  predicted_seed_cpi : float;
  seed_error_percent : float;
  cache_warmup_blocks : int;
  cache_fused_lanes : int;
  cache_fallback_lanes : int;
  cache_shards : int;
}

let cache_point_of name gi gd counts =
  {
    geometry_name = name;
    l1i_geometry = gi;
    l2_geometry = gd;
    l1i_mpki = Pipeline.l1i_mpki counts;
    l2_mpki = Pipeline.l2_mpki counts;
    cache_cpi = Pipeline.cpi counts;
  }

let simulate_cache ~warmup_blocks base plan placement name gi gd =
  (* Geometry changes never touch costs/overlap/store factors, so the
     rebind reuses the compiled arrays, like the predictor sweep's. *)
  let config = { base with Pipeline.l1i = gi; l2 = gd } in
  let counts = Replay.run ~warmup_blocks (Replay.with_config plan config) placement in
  cache_point_of name gi gd counts

(* The 100-geometry grid through either path; the timing target of
   BENCH_cache_sweep.json. Same contract as [run_grid]. *)
let run_cache_grid ?(base = Machine.xeon_e5440) ?plan ?(warmup_blocks = 0) ?(shards = 1)
    ?map_shards ?(fused = true) trace placement =
  let plan =
    match plan with Some p -> p | None -> Replay.compile base trace
  in
  let configs =
    materialize_cache_configurations ~l1i:base.Pipeline.l1i ~l2:base.Pipeline.l2
  in
  let n = Array.length configs in
  let dummy =
    {
      geometry_name = "";
      l1i_geometry = base.Pipeline.l1i;
      l2_geometry = base.Pipeline.l2;
      l1i_mpki = 0.0;
      l2_mpki = 0.0;
      cache_cpi = 0.0;
    }
  in
  let points = Array.make n dummy in
  if not fused then begin
    Array.iteri
      (fun i (name, gi, gd) ->
        points.(i) <- simulate_cache ~warmup_blocks base plan placement name gi gd)
      configs;
    (points, 0, n, 0)
  end
  else begin
    let batch = cache_grid_batch ~l1i:base.Pipeline.l1i ~l2:base.Pipeline.l2 in
    let sub = Replay.shard batch ~shards in
    let n_shards = Array.length sub in
    let run_shard s = Replay.run_many ~warmup_blocks plan sub.(s) placement in
    let shard_counts =
      match map_shards with
      | Some m when n_shards > 1 -> m run_shard n_shards
      | _ -> Array.init n_shards run_shard
    in
    Array.iteri
      (fun s counts ->
        let src = Replay.batch_src sub.(s) in
        Array.iteri
          (fun j c ->
            let name, gi, gd = configs.(src.(j)) in
            points.(src.(j)) <- cache_point_of name gi gd c)
          counts)
      shard_counts;
    (points, Replay.batch_lanes batch, 0, n_shards)
  end

let run_cache_study ?(base = Machine.xeon_e5440) ?plan ?(warmup_blocks = 0) ?(shards = 1)
    ?map_shards ?(fused = true) ~benchmark trace placement =
  let plan =
    match plan with Some p -> p | None -> Replay.compile base trace
  in
  let points, fused_lanes, fallback_lanes, shards_used =
    run_cache_grid ~base ~plan ~warmup_blocks ~shards ?map_shards ~fused trace placement
  in
  let is_seed p = p.l1i_geometry = base.Pipeline.l1i && p.l2_geometry = base.Pipeline.l2 in
  let seed_point =
    match Array.find_opt is_seed points with
    | Some p -> p
    | None ->
        invalid_arg
          "Sweep.run_cache_study: the grid does not contain the seed geometries (w8 variants \
           missing?)"
  in
  (* The INTERPLAY-style question: fit CPI against the two cache MPKIs over
     the degraded points only, then predict the seed point's CPI from its
     own miss rates and compare with the simulated truth. *)
  let degraded = Array.of_list (List.filter (fun p -> not (is_seed p)) (Array.to_list points)) in
  let xs = Array.map (fun p -> [| p.l1i_mpki; p.l2_mpki |]) degraded in
  let ys = Array.map (fun p -> p.cache_cpi) degraded in
  let degradation = Pi_stats.Multireg.fit xs ys in
  let predicted_seed_cpi =
    Pi_stats.Multireg.predict degradation [| seed_point.l1i_mpki; seed_point.l2_mpki |]
  in
  let seed_error_percent =
    if seed_point.cache_cpi = 0.0 then 0.0
    else Float.abs (predicted_seed_cpi -. seed_point.cache_cpi) /. seed_point.cache_cpi *. 100.0
  in
  {
    cache_benchmark = benchmark;
    cache_points = points;
    seed_point;
    degradation;
    predicted_seed_cpi;
    seed_error_percent;
    cache_warmup_blocks = warmup_blocks;
    cache_fused_lanes = fused_lanes;
    cache_fallback_lanes = fallback_lanes;
    cache_shards = shards_used;
  }
