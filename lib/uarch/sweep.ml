let build_configurations () =
  let configs = ref [] in
  let add name make = configs := (name, make) :: !configs in
  (* Bimodal: 9 sizes. *)
  List.iter
    (fun el -> add (Printf.sprintf "bimodal-%d" el) (fun () -> Bimodal.create ~entries_log2:el))
    [ 8; 9; 10; 11; 12; 13; 14; 15; 16 ];
  (* Gshare: sizes x even history lengths. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h <= el then
            add
              (Printf.sprintf "gshare-%d/%d" el h)
              (fun () -> Gshare.create ~entries_log2:el ~history_bits:h))
        [ 4; 6; 8; 10; 12 ])
    [ 10; 11; 12; 13; 14; 15; 16 ];
  (* Gshare: odd history lengths on a sparser size grid. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h <= el then
            add
              (Printf.sprintf "gshare-%d/%d" el h)
              (fun () -> Gshare.create ~entries_log2:el ~history_bits:h))
        [ 3; 5; 7; 9; 11; 13 ])
    [ 10; 12; 14; 16 ];
  (* GAs: sizes x even history lengths. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "gas-%d/%d" el h)
              (fun () -> Gas.create ~entries_log2:el ~history_bits:h))
        [ 2; 4; 6; 8; 10; 12 ])
    [ 10; 11; 12; 13; 14; 15; 16 ];
  (* GAs: odd history lengths on a sparser grid. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "gas-%d/%d" el h)
              (fun () -> Gas.create ~entries_log2:el ~history_bits:h))
        [ 3; 5; 7; 9; 11 ])
    [ 10; 12; 14; 16 ];
  (* Hybrids. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "hybrid-%d/%d" el h)
              (fun () ->
                Hybrid.create ~gas_entries_log2:el ~gas_history_bits:h
                  ~bimodal_entries_log2:(el - 1) ~chooser_entries_log2:(el - 1) ()))
        [ 6; 8; 10 ])
    [ 11; 12; 13; 14; 15; 16 ];
  (* Static predictors: the low end of the accuracy range. *)
  add "static-taken" Perfect.always_taken;
  add "static-not-taken" Perfect.always_not_taken;
  (* Fill to exactly 145 with corner-case geometries off the grids above. *)
  add "gshare-13/13" (fun () -> Gshare.create ~entries_log2:13 ~history_bits:13);
  add "gshare-11/11" (fun () -> Gshare.create ~entries_log2:11 ~history_bits:11);
  add "gas-11/9" (fun () -> Gas.create ~entries_log2:11 ~history_bits:9);
  add "gas-13/11" (fun () -> Gas.create ~entries_log2:13 ~history_bits:11);
  add "hybrid-16/12" (fun () ->
      Hybrid.create ~gas_entries_log2:16 ~gas_history_bits:12 ~bimodal_entries_log2:15
        ~chooser_entries_log2:15 ());
  let all = List.rev !configs in
  let count = List.length all in
  if count <> 145 then
    invalid_arg
      (Printf.sprintf
         "Sweep.configurations: the grid defines %d configurations, expected 145 (the paper's \
          Section 3 sweep); adjust the grid or the expected count together"
         count);
  all

(* The grid is immutable and each entry's [make] is a pure constructor, so
   one shared list serves every study (and every domain — it is forced once,
   before any shard workers start). *)
let configurations_memo = lazy (build_configurations ())
let configurations () = Lazy.force configurations_memo

(* The fused batch over the memoized grid is itself memoized: its packed
   table image and lane metadata depend only on [configurations ()], and
   [Replay.run_many] copies the table image per pass, so one batch serves
   every study. Reuse also keeps the batch's lazily-built L2 scratch warm
   across studies, which is worth ~30% of a pass at default scale. The
   scratch makes a batch single-domain; sharded runs are unaffected because
   every shard of 2+ is a fresh sub-batch with its own scratch. *)
let grid_batch_memo = lazy (Replay.batch_of (Array.of_list (configurations ())))
let grid_batch () = Lazy.force grid_batch_memo

type point = { config_name : string; mpki : float; cpi : float }
type source = Replayed | Predicted
type steering = Budget of int | Max_err of float

type study = {
  benchmark : string;
  points : point array;
  perfect_cpi : float;
  ltage_point : point;
  regression : Pi_stats.Linreg.t;
  predicted_perfect_cpi : float;
  perfect_error_percent : float;
  predicted_ltage_cpi : float;
  ltage_error_percent : float;
  warmup_blocks : int;
  fused_lanes : int;
  fallback_lanes : int;
  shards : int;
  sources : source array;
  replayed_lanes : int;
  surrogate_rounds : int;
  surrogate_max_abs_err : float;
  surrogate_mean_abs_err : float;
  grid_seconds : float;
  lane_seconds : float;
}

type shard_map = (int -> Pipeline.counts array) -> int -> Pipeline.counts array array

(* ------------------------------------------------------------------ *)
(* Surrogate steering: replay a deterministic space-filling seed, fit one
   model per target metric, then iteratively replay only the lanes where
   the model is still uncertain. Axis-agnostic — both grids reduce to
   (feature vector, replay-a-subset) pairs. *)

let m_surrogate_fits =
  Pi_obs.Metrics.counter ~help:"surrogate model fits during steered sweeps"
    "pi_obs_surrogate_fits_total"

let m_surrogate_pruned =
  Pi_obs.Metrics.counter ~help:"grid lanes answered by the surrogate instead of a replay"
    "pi_obs_surrogate_replays_pruned_total"

let m_surrogate_max_err =
  Pi_obs.Metrics.gauge
    ~help:"max abs CPI error (percent) vs replayed holdouts in the last steered sweep"
    "pi_obs_surrogate_max_abs_err"

(* Targets are fit in log space so the model's absolute uncertainty reads
   directly as a relative bound on the linear-space value — the units of
   [Max_err] (after /100). *)
let log_eps = 1e-6
let to_log v = log (v +. log_eps)
let of_log v = Float.max 0.0 (exp v -. log_eps)

type steered = {
  st_values : float array array;  (* n x targets, linear space *)
  st_sources : source array;
  st_replayed : int;
  st_rounds : int;
  st_max_err : float;  (* percent, CPI target, over replayed holdouts *)
  st_mean_err : float;
}

(* [replay idxs] replays the given (ascending) config indices and returns
   [(index, target values)] for each; [steer] never asks for an index
   twice. [cpi_target] names the CPI column; every other target is a
   miss-rate regressor of the linear CPI map below.

   The model is two-stage, mirroring the paper's thesis that CPI is linear
   in a handful of miss rates: one log-space surrogate per miss-rate
   target, a linear CPI-on-miss-rates map over the replayed lanes, and a
   surrogate on that map's residual. Predictions add an inverse-distance
   correction from the residuals at the nearest replayed lanes, so the
   model interpolates the truth it has already paid for.

   Uncertainty is built from *held-out* fold residuals
   ({!Pi_stats.Surrogate.oof_residuals}) — the in-sample residuals of a
   ridge fit with more features than points are near zero even when the
   model is wrong between samples — combined as: local held-out error of
   the nearest replayed lanes, plus the local residual gradient times the
   distance to the nearest replayed lane, floored by the global held-out
   spread saturating with that distance. Miss-rate uncertainties convert
   to absolute units against the largest nearby truth (an underpredicted
   miss rate must not shrink its own error bar) and propagate through the
   linear map's coefficients. *)

(* Constants validated against full-grid truth on a 10-benchmark panel:
   [safety]/[floor_c] trade pruning for bound validity; [knn] is the
   correction neighborhood; [chunk] lanes replay per round so the fused
   sub-batches stay worth their packing cost. *)
let steer_safety = 1.5
let steer_floor_c = 1.0
let steer_knn = 4
let steer_chunk = 5

let steer ~steering ~feats ~anchors ~n_targets ~cpi_target ~replay n =
  let module S = Pi_stats.Surrogate in
  let order = S.sample_order ~anchors feats in
  let sc = S.scaler_fit feats in
  let zs = Array.map (S.scaler_transform sc) feats in
  let dist2 a b =
    let d = ref 0.0 in
    Array.iteri
      (fun j v ->
        let dd = v -. b.(j) in
        d := !d +. (dd *. dd))
      a;
    !d
  in
  let values = Array.make n [||] in
  let replayed = Array.make n false in
  let replayed_count = ref 0 in
  let do_replay idxs =
    let idxs = Array.copy idxs in
    Array.sort compare idxs;
    List.iter
      (fun (i, v) ->
        values.(i) <- v;
        if not replayed.(i) then begin
          replayed.(i) <- true;
          incr replayed_count
        end)
      (replay idxs)
  in
  (* The model needs two points to exist at all, so even [Budget 1] seeds
     with two replays. *)
  let budget = match steering with Budget b -> max 2 (min b n) | Max_err _ -> n in
  let tol = match steering with Max_err e -> e /. 100.0 | Budget _ -> 0.0 in
  let seed_n = min budget (max (min n 8) (n / 10)) in
  do_replay (Array.sub order 0 seed_n);
  let known () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if replayed.(i) then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  let miss_targets =
    Array.of_list (List.filter (fun t -> t <> cpi_target) (List.init n_targets Fun.id))
  in
  (* One full model build over the replayed lanes; returns
     [(predict, uncertainty)] over grid indices. *)
  let build () =
    let ks = known () in
    let nrep = Array.length ks in
    let xs = Array.map (fun i -> feats.(i)) ks in
    let folds = min nrep 16 in
    Pi_obs.Metrics.inc m_surrogate_fits;
    (* Stage 1: log-space surrogate per miss-rate target. *)
    let t_miss =
      Array.map
        (fun t -> S.fit ~folds xs (Array.map (fun i -> to_log values.(i).(t)) ks))
        miss_targets
    in
    (* Stage 2: linear CPI map over the replayed miss rates. *)
    let miss_row i = Array.map (fun t -> values.(i).(t)) miss_targets in
    let cpi_of i = values.(i).(cpi_target) in
    let map_coefs, map_predict =
      let rows = Array.map miss_row ks in
      let cpis = Array.map cpi_of ks in
      match Array.length miss_targets with
      | 1 -> (
          match Pi_stats.Linreg.fit (Array.map (fun r -> r.(0)) rows) cpis with
          | lr -> ([| lr.Pi_stats.Linreg.slope |], fun r -> Pi_stats.Linreg.predict lr r.(0))
          | exception _ ->
              let m = Array.fold_left ( +. ) 0.0 cpis /. float_of_int (max 1 nrep) in
              ([| 0.0 |], fun _ -> m))
      | _ -> (
          match Pi_stats.Multireg.fit rows cpis with
          | mr -> (mr.Pi_stats.Multireg.coefficients, Pi_stats.Multireg.predict mr)
          | exception _ ->
              let m = Array.fold_left ( +. ) 0.0 cpis /. float_of_int (max 1 nrep) in
              (Array.map (fun _ -> 0.0) miss_targets, fun _ -> m))
    in
    (* Stage 3: surrogate on the map's residual. *)
    let resid_c i = cpi_of i -. map_predict (miss_row i) in
    let t_res = S.fit ~folds xs (Array.map resid_c ks) in
    (* In-sample residuals drive the inverse-distance correction; held-out
       residuals drive the uncertainty. Keyed by grid index. *)
    let n_miss = Array.length miss_targets in
    let ins_m = Array.init n_miss (fun _ -> Hashtbl.create 64) in
    let ins_r = Hashtbl.create 64 in
    let oof_m = Array.init n_miss (fun _ -> Hashtbl.create 64) in
    let oof_r = Hashtbl.create 64 in
    let oof_miss = Array.map S.oof_residuals t_miss in
    let oof_res = S.oof_residuals t_res in
    Array.iteri
      (fun row i ->
        for m = 0 to n_miss - 1 do
          Hashtbl.replace ins_m.(m) i
            (to_log values.(i).(miss_targets.(m)) -. S.predict t_miss.(m) feats.(i));
          Hashtbl.replace oof_m.(m) i
            (if Array.length oof_miss.(m) > row then oof_miss.(m).(row) else 0.0)
        done;
        Hashtbl.replace ins_r i (resid_c i -. S.predict t_res feats.(i));
        Hashtbl.replace oof_r i (if Array.length oof_res > row then oof_res.(row) else 0.0))
      ks;
    let get tbl i = try Hashtbl.find tbl i with Not_found -> 0.0 in
    let std_of tbl =
      let vs = Array.map (get tbl) ks in
      let mu = Array.fold_left ( +. ) 0.0 vs /. float_of_int (max 1 nrep) in
      sqrt
        (Array.fold_left (fun a v -> a +. ((v -. mu) *. (v -. mu))) 0.0 vs
        /. float_of_int (max 1 nrep))
    in
    let p90_of tbl =
      let vs = Array.map (fun i -> Float.abs (get tbl i)) ks in
      Array.sort compare vs;
      if nrep = 0 then 0.0 else vs.(min (nrep - 1) (int_of_float (0.9 *. float_of_int (nrep - 1))))
    in
    let gstd_m = Array.map std_of oof_m and p90_m = Array.map p90_of oof_m in
    let gstd_r = std_of oof_r and p90_r = p90_of oof_r in
    let rec take k = function [] -> [] | x :: tl -> if k = 0 then [] else x :: take (k - 1) tl in
    let nearest i =
      let ds = Array.to_list (Array.map (fun j -> (dist2 zs.(i) zs.(j), j)) ks) in
      take steer_knn (List.sort compare ds)
    in
    let idw near tbl =
      let ws = ref 0.0 and cs = ref 0.0 in
      List.iter
        (fun (d2, j) ->
          let w = 1.0 /. (d2 +. 1e-2) in
          ws := !ws +. w;
          cs := !cs +. (w *. get tbl j))
        near;
      if !ws > 0.0 then !cs /. !ws else 0.0
    in
    let local_grad near tbl =
      let g = ref 0.0 in
      List.iter
        (fun (_, a) ->
          List.iter
            (fun (_, b) ->
              if a < b then begin
                let d = sqrt (dist2 zs.(a) zs.(b)) in
                if d > 1e-9 then g := Float.max !g (Float.abs (get tbl a -. get tbl b) /. d)
              end)
            near)
        near;
      !g
    in
    let local_abs_max near tbl =
      List.fold_left (fun a (_, j) -> Float.max a (Float.abs (get tbl j))) 0.0 (take 3 near)
    in
    let predict i =
      if replayed.(i) then (Array.copy values.(i), 0.0)
      else begin
        let near = nearest i in
        let dnear = match near with (d2, _) :: _ -> sqrt d2 | [] -> infinity in
        let floor_sat = Float.min 1.0 (dnear /. 1.5) in
        let out = Array.make n_targets 0.0 in
        let unc_sum = ref 0.0 in
        let miss_pred = Array.make (Array.length miss_targets) 0.0 in
        Array.iteri
          (fun m t ->
            let mp = of_log (S.predict t_miss.(m) feats.(i) +. idw near ins_m.(m)) in
            miss_pred.(m) <- mp;
            out.(t) <- mp;
            let unc_log =
              Float.max
                (steer_floor_c *. Float.max gstd_m.(m) p90_m.(m) *. floor_sat)
                ((local_grad near oof_m.(m) *. dnear *. 0.5) +. local_abs_max near oof_m.(m))
            in
            let scale =
              List.fold_left
                (fun a (_, j) -> Float.max a values.(j).(t))
                mp
                (match near with a :: b :: _ -> [ a; b ] | l -> l)
            in
            let unc_abs = scale *. (exp (Float.min unc_log 2.0) -. 1.0) in
            unc_sum := !unc_sum +. (Float.abs map_coefs.(m) *. unc_abs))
          miss_targets;
        let cp =
          Float.max 0.0 (map_predict miss_pred +. S.predict t_res feats.(i) +. idw near ins_r)
        in
        out.(cpi_target) <- cp;
        let unc_r =
          Float.max
            (steer_floor_c *. Float.max gstd_r p90_r *. floor_sat)
            ((local_grad near oof_r *. dnear *. 0.5) +. local_abs_max near oof_r)
        in
        let unc = steer_safety *. (!unc_sum +. unc_r) /. Float.max 1e-9 cp in
        (out, unc)
      end
    in
    predict
  in
  let rounds = ref 0 in
  let err_sum = ref 0.0 and err_max = ref 0.0 and err_n = ref 0 in
  let finished = ref false in
  let predict = ref (build ()) in
  while (not !finished) && !replayed_count < budget && !rounds < 64 do
    let scored = ref [] in
    for i = n - 1 downto 0 do
      if not replayed.(i) then begin
        let _, unc = !predict i in
        scored := (i, unc) :: !scored
      end
    done;
    (* Descending uncertainty, ties to the lowest index — deterministic. *)
    let scored = Array.of_list !scored in
    Array.sort (fun (i, u) (j, v) -> if v <> u then compare v u else compare i j) scored;
    let cap = min (min steer_chunk (budget - !replayed_count)) (Array.length scored) in
    let chosen =
      match steering with
      | Budget _ -> Array.sub scored 0 cap
      | Max_err _ ->
          let above = Array.of_list (List.filter (fun (_, u) -> u > tol) (Array.to_list scored)) in
          if Array.length above > 0 then Array.sub above 0 (min cap (Array.length above))
          else if !rounds = 0 then
            (* Nothing exceeds the tolerance on the seed fit alone: replay a
               small validation batch anyway, so the reported holdout error
               is measured rather than assumed. *)
            Array.sub scored 0 (min 3 cap)
          else [||]
    in
    if Array.length chosen = 0 then finished := true
    else begin
      (* Holdout validation: predictions recorded before the replay reveals
         the truth, exactly what a trusted predicted point would have said. *)
      let predictions =
        Array.map
          (fun (i, _) ->
            let v, _ = !predict i in
            (i, v.(cpi_target)))
          chosen
      in
      do_replay (Array.map fst chosen);
      Array.iter
        (fun (i, pred) ->
          let actual = values.(i).(cpi_target) in
          if actual > 0.0 then begin
            let e = Float.abs (pred -. actual) /. actual *. 100.0 in
            err_sum := !err_sum +. e;
            err_max := Float.max !err_max e;
            incr err_n
          end)
        predictions;
      incr rounds;
      predict := build ()
    end
  done;
  let final = !predict in
  for i = 0 to n - 1 do
    if not replayed.(i) then values.(i) <- fst (final i)
  done;
  Pi_obs.Metrics.add m_surrogate_pruned (n - !replayed_count);
  Pi_obs.Metrics.set m_surrogate_max_err !err_max;
  {
    st_values = values;
    st_sources = Array.init n (fun i -> if replayed.(i) then Replayed else Predicted);
    st_replayed = !replayed_count;
    st_rounds = !rounds;
    st_max_err = !err_max;
    st_mean_err = (if !err_n = 0 then 0.0 else !err_sum /. float_of_int !err_n);
  }

let simulate ~warmup_blocks base plan placement name make =
  let config = Machine.with_predictor base ~name make in
  let config = if name = "perfect" then { config with Pipeline.perfect_btb = true } else config in
  (* Swapping the predictor never invalidates the compiled arrays, so this
     rebind is free: one compile serves the whole ~150-config study. *)
  let counts = Replay.run ~warmup_blocks (Replay.with_config plan config) placement in
  { config_name = name; mpki = Pipeline.mpki counts; cpi = Pipeline.cpi counts }

(* The 145-configuration grid through either path; the timing target of
   BENCH_sweep.json. Returns
   (points, fused_lanes, fallback_lanes, shards, grid_seconds). *)
let run_grid ?(base = Machine.xeon_e5440) ?plan ?(warmup_blocks = 0) ?(shards = 1) ?map_shards
    ?(fused = true) trace placement =
  let plan =
    match plan with Some p -> p | None -> Replay.compile base trace
  in
  let t0 = Pi_obs.Clock.now () in
  let simulate = simulate ~warmup_blocks base plan placement in
  let configs = Array.of_list (configurations ()) in
  let n = Array.length configs in
  let points = Array.make n { config_name = ""; mpki = 0.0; cpi = 0.0 } in
  let point_of_counts name counts =
    { config_name = name; mpki = Pipeline.mpki counts; cpi = Pipeline.cpi counts }
  in
  if not fused then begin
    Array.iteri (fun i (name, make) -> points.(i) <- simulate name make) configs;
    (points, 0, n, 0, Pi_obs.Clock.now () -. t0)
  end
  else begin
    let batch = grid_batch () in
    let sub = Replay.shard batch ~shards in
    let n_shards = Array.length sub in
    let run_shard s = Replay.run_many ~warmup_blocks plan sub.(s) placement in
    let shard_counts =
      match map_shards with
      | Some m when n_shards > 1 -> m run_shard n_shards
      | _ -> Array.init n_shards run_shard
    in
    (* Deterministic merge: every lane lands in the slot its caller index
       names, independent of shard execution order. *)
    Array.iteri
      (fun s counts ->
        let src = Replay.batch_src sub.(s) in
        Array.iteri
          (fun j c -> points.(src.(j)) <- point_of_counts (fst configs.(src.(j))) c)
          counts)
      shard_counts;
    Array.iter
      (fun i ->
        let name, make = configs.(i) in
        points.(i) <- simulate name make)
      (Replay.batch_fallback batch);
    ( points,
      Replay.batch_lanes batch,
      Array.length (Replay.batch_fallback batch),
      n_shards,
      Pi_obs.Clock.now () -. t0 )
  end

let run_study ?(base = Machine.xeon_e5440) ?plan ?(warmup_blocks = 0) ?(shards = 1) ?map_shards
    ?(fused = true) ?surrogate ~benchmark trace placement =
  let plan =
    match plan with Some p -> p | None -> Replay.compile base trace
  in
  let configs = Array.of_list (configurations ()) in
  let n = Array.length configs in
  (* A budget that covers the whole grid IS the fused path: shortcut to it
     so the result is bit-identical by construction. *)
  let surrogate =
    match surrogate with Some (Budget b) when b >= n -> None | s -> s
  in
  let simulate = simulate ~warmup_blocks base plan placement in
  let finish points ~fused_lanes ~fallback_lanes ~shards_used ~sources ~replayed_lanes
      ~surrogate_rounds ~surrogate_max_abs_err ~surrogate_mean_abs_err ~grid_seconds =
    let perfect = simulate "perfect" Perfect.perfect in
    let ltage_point = simulate "L-TAGE" (fun () -> Ltage.create ()) in
    let xs = Array.map (fun p -> p.mpki) points in
    let ys = Array.map (fun p -> p.cpi) points in
    let regression = Pi_stats.Linreg.fit xs ys in
    let predicted_perfect_cpi = Pi_stats.Linreg.predict regression 0.0 in
    let predicted_ltage_cpi = Pi_stats.Linreg.predict regression ltage_point.mpki in
    let error_percent predicted actual =
      if actual = 0.0 then 0.0 else Float.abs (predicted -. actual) /. actual *. 100.0
    in
    {
      benchmark;
      points;
      perfect_cpi = perfect.cpi;
      ltage_point;
      regression;
      predicted_perfect_cpi;
      perfect_error_percent = error_percent predicted_perfect_cpi perfect.cpi;
      predicted_ltage_cpi;
      ltage_error_percent = error_percent predicted_ltage_cpi ltage_point.cpi;
      warmup_blocks;
      fused_lanes;
      fallback_lanes;
      shards = shards_used;
      sources;
      replayed_lanes;
      surrogate_rounds;
      surrogate_max_abs_err;
      surrogate_mean_abs_err;
      grid_seconds;
      lane_seconds = grid_seconds /. float_of_int (max 1 replayed_lanes);
    }
  in
  match surrogate with
  | None ->
      let points, fused_lanes, fallback_lanes, shards_used, grid_seconds =
        run_grid ~base ~plan ~warmup_blocks ~shards ?map_shards ~fused trace placement
      in
      finish points ~fused_lanes ~fallback_lanes ~shards_used
        ~sources:(Array.make (Array.length points) Replayed)
        ~replayed_lanes:(Array.length points) ~surrogate_rounds:0 ~surrogate_max_abs_err:0.0
        ~surrogate_mean_abs_err:0.0 ~grid_seconds
  | Some steering ->
      let feats = Array.map (fun (name, _) -> Pi_stats.Surrogate.predictor_features name) configs in
      (* Anchor the seed on the static predictors: the extreme ends of the
         accuracy range, and the only fallback (kernel-less) lanes. *)
      let anchors = ref [] in
      Array.iteri
        (fun i (name, _) ->
          if name = "static-taken" || name = "static-not-taken" then anchors := i :: !anchors)
        configs;
      let seconds = ref 0.0 in
      let fused_total = ref 0 and fallback_total = ref 0 and shards_seen = ref 0 in
      let replay idxs =
        let t0 = Pi_obs.Clock.now () in
        let subset = Array.map (fun i -> configs.(i)) idxs in
        let out = ref [] in
        let emit i (p : point) = out := (i, [| p.mpki; p.cpi |]) :: !out in
        if not fused then begin
          Array.iteri (fun j (name, make) -> emit idxs.(j) (simulate name make)) subset;
          fallback_total := !fallback_total + Array.length subset
        end
        else begin
          (* The chosen lanes still run fused in one pass: a fresh sub-grid
             batch packed from the subset, sharded like the full path. *)
          let batch = Replay.batch_of subset in
          let sub = Replay.shard batch ~shards in
          let n_shards = Array.length sub in
          shards_seen := max !shards_seen n_shards;
          let run_shard s = Replay.run_many ~warmup_blocks plan sub.(s) placement in
          let shard_counts =
            match map_shards with
            | Some m when n_shards > 1 -> m run_shard n_shards
            | _ -> Array.init n_shards run_shard
          in
          Array.iteri
            (fun s counts ->
              let src = Replay.batch_src sub.(s) in
              Array.iteri
                (fun j c ->
                  let gi = idxs.(src.(j)) in
                  emit gi
                    {
                      config_name = fst configs.(gi);
                      mpki = Pipeline.mpki c;
                      cpi = Pipeline.cpi c;
                    })
                counts)
            shard_counts;
          Array.iter
            (fun k ->
              let gi = idxs.(k) in
              let name, make = configs.(gi) in
              emit gi (simulate name make))
            (Replay.batch_fallback batch);
          fused_total := !fused_total + Replay.batch_lanes batch;
          fallback_total := !fallback_total + Array.length (Replay.batch_fallback batch)
        end;
        seconds := !seconds +. (Pi_obs.Clock.now () -. t0);
        !out
      in
      let st =
        steer ~steering ~feats ~anchors:(List.rev !anchors) ~n_targets:2 ~cpi_target:1 ~replay n
      in
      let points =
        Array.init n (fun i ->
            {
              config_name = fst configs.(i);
              mpki = st.st_values.(i).(0);
              cpi = st.st_values.(i).(1);
            })
      in
      finish points ~fused_lanes:!fused_total ~fallback_lanes:!fallback_total
        ~shards_used:!shards_seen ~sources:st.st_sources ~replayed_lanes:st.st_replayed
        ~surrogate_rounds:st.st_rounds ~surrogate_max_abs_err:st.st_max_err
        ~surrogate_mean_abs_err:st.st_mean_err ~grid_seconds:!seconds

(* ------------------------------------------------------------------ *)
(* The cache-geometry axis (INTERPLAY's question): sweep way-disabled and
   resized variants of the seed L1I/L2 and fit CPI against the two cache
   MPKIs, interferometry-style, instead of training a model. *)

type cache_variant = Ways of int | Half | Double

let variant_label = function
  | Ways k -> Printf.sprintf "w%d" k
  | Half -> "half"
  | Double -> "double"

(* 10 variants per cache (w1..w8 way-disabling keeps the set count and
   shrinks capacity; half/double resize at the seed associativity, moving
   the set count) x both caches = the 100-point grid. The descriptor grid
   is symbolic — it assumes 8-way seed caches (both machines) and is
   validated against the actual seed geometries at materialization. *)
let build_cache_configurations () =
  let variants = [ Ways 1; Ways 2; Ways 3; Ways 4; Ways 5; Ways 6; Ways 7; Ways 8; Half; Double ] in
  let all =
    List.concat_map
      (fun vi ->
        List.map
          (fun vd ->
            (Printf.sprintf "l1i-%s+l2-%s" (variant_label vi) (variant_label vd), vi, vd))
          variants)
      variants
  in
  let count = List.length all in
  if count <> 100 then
    invalid_arg
      (Printf.sprintf
         "Sweep.cache_configurations: the grid defines %d configurations, expected 100 (10 L1I x \
          10 L2 variants); adjust the grid or the expected count together"
         count);
  all

(* Memoized like [configurations ()]: the symbolic grid is immutable, so
   one shared list serves every study and machine. *)
let cache_configurations_memo = lazy (build_cache_configurations ())
let cache_configurations () = Lazy.force cache_configurations_memo

let apply_cache_variant (g : Cache.geometry) v =
  match v with
  | Ways k ->
      if k > g.Cache.assoc then
        invalid_arg
          (Printf.sprintf
             "Sweep.cache_configurations: variant w%d needs %d ways but the seed geometry has %d \
              (way-disabling only removes ways)"
             k k g.Cache.assoc);
      let sets = Cache.geometry_sets g in
      { g with Cache.assoc = k; size_bytes = sets * k * g.Cache.line_bytes }
  | Half -> { g with Cache.size_bytes = g.Cache.size_bytes / 2 }
  | Double -> { g with Cache.size_bytes = g.Cache.size_bytes * 2 }

let materialize_cache_configurations ~l1i ~l2 =
  Array.of_list
    (List.map
       (fun (name, vi, vd) -> (name, apply_cache_variant l1i vi, apply_cache_variant l2 vd))
       (cache_configurations ()))

(* One fused batch per seed (L1I, L2) pair, memoized for the same reason as
   [grid_batch]: lane metadata and arena offsets depend only on the seed
   geometries, and successive passes recycle the batch's tag-arena scratch.
   Populated on the caller's domain before any shard workers start (shards
   of 2+ are fresh sub-batches), so the table needs no locking. *)
let cache_batch_table : (Cache.geometry * Cache.geometry, Replay.batch) Hashtbl.t =
  Hashtbl.create 4

let cache_grid_batch ~l1i ~l2 =
  match Hashtbl.find_opt cache_batch_table (l1i, l2) with
  | Some batch -> batch
  | None ->
      let batch = Replay.cache_batch_of ~l1i ~l2 (materialize_cache_configurations ~l1i ~l2) in
      Hashtbl.add cache_batch_table (l1i, l2) batch;
      batch

type cache_point = {
  geometry_name : string;
  l1i_geometry : Cache.geometry;
  l2_geometry : Cache.geometry;
  l1i_mpki : float;
  l2_mpki : float;
  cache_cpi : float;
}

type cache_study = {
  cache_benchmark : string;
  cache_points : cache_point array;
  seed_point : cache_point;
  degradation : Pi_stats.Multireg.t;
  predicted_seed_cpi : float;
  seed_error_percent : float;
  cache_warmup_blocks : int;
  cache_fused_lanes : int;
  cache_fallback_lanes : int;
  cache_shards : int;
  cache_sources : source array;
  cache_replayed_lanes : int;
  cache_surrogate_rounds : int;
  cache_surrogate_max_abs_err : float;
  cache_surrogate_mean_abs_err : float;
  cache_grid_seconds : float;
  cache_lane_seconds : float;
}

let cache_point_of name gi gd counts =
  {
    geometry_name = name;
    l1i_geometry = gi;
    l2_geometry = gd;
    l1i_mpki = Pipeline.l1i_mpki counts;
    l2_mpki = Pipeline.l2_mpki counts;
    cache_cpi = Pipeline.cpi counts;
  }

let simulate_cache ~warmup_blocks base plan placement name gi gd =
  (* Geometry changes never touch costs/overlap/store factors, so the
     rebind reuses the compiled arrays, like the predictor sweep's. *)
  let config = { base with Pipeline.l1i = gi; l2 = gd } in
  let counts = Replay.run ~warmup_blocks (Replay.with_config plan config) placement in
  cache_point_of name gi gd counts

(* The 100-geometry grid through either path; the timing target of
   BENCH_cache_sweep.json. Same contract as [run_grid]. *)
let run_cache_grid ?(base = Machine.xeon_e5440) ?plan ?(warmup_blocks = 0) ?(shards = 1)
    ?map_shards ?(fused = true) trace placement =
  let plan =
    match plan with Some p -> p | None -> Replay.compile base trace
  in
  let t0 = Pi_obs.Clock.now () in
  let configs =
    materialize_cache_configurations ~l1i:base.Pipeline.l1i ~l2:base.Pipeline.l2
  in
  let n = Array.length configs in
  let dummy =
    {
      geometry_name = "";
      l1i_geometry = base.Pipeline.l1i;
      l2_geometry = base.Pipeline.l2;
      l1i_mpki = 0.0;
      l2_mpki = 0.0;
      cache_cpi = 0.0;
    }
  in
  let points = Array.make n dummy in
  if not fused then begin
    Array.iteri
      (fun i (name, gi, gd) ->
        points.(i) <- simulate_cache ~warmup_blocks base plan placement name gi gd)
      configs;
    (points, 0, n, 0, Pi_obs.Clock.now () -. t0)
  end
  else begin
    let batch = cache_grid_batch ~l1i:base.Pipeline.l1i ~l2:base.Pipeline.l2 in
    let sub = Replay.shard batch ~shards in
    let n_shards = Array.length sub in
    let run_shard s = Replay.run_many ~warmup_blocks plan sub.(s) placement in
    let shard_counts =
      match map_shards with
      | Some m when n_shards > 1 -> m run_shard n_shards
      | _ -> Array.init n_shards run_shard
    in
    Array.iteri
      (fun s counts ->
        let src = Replay.batch_src sub.(s) in
        Array.iteri
          (fun j c ->
            let name, gi, gd = configs.(src.(j)) in
            points.(src.(j)) <- cache_point_of name gi gd c)
          counts)
      shard_counts;
    (points, Replay.batch_lanes batch, 0, n_shards, Pi_obs.Clock.now () -. t0)
  end

let geometry_feature_vector g =
  Pi_stats.Surrogate.geometry_features ~sets:(Cache.geometry_sets g) ~ways:g.Cache.assoc
    ~line_bytes:g.Cache.line_bytes ~size_bytes:g.Cache.size_bytes

let run_cache_study ?(base = Machine.xeon_e5440) ?plan ?(warmup_blocks = 0) ?(shards = 1)
    ?map_shards ?(fused = true) ?surrogate ~benchmark trace placement =
  let plan =
    match plan with Some p -> p | None -> Replay.compile base trace
  in
  let l1i = base.Pipeline.l1i and l2 = base.Pipeline.l2 in
  let configs = materialize_cache_configurations ~l1i ~l2 in
  let n = Array.length configs in
  let surrogate =
    match surrogate with Some (Budget b) when b >= n -> None | s -> s
  in
  let finish points ~fused_lanes ~fallback_lanes ~shards_used ~sources ~replayed_lanes
      ~surrogate_rounds ~surrogate_max_abs_err ~surrogate_mean_abs_err ~grid_seconds =
    let is_seed p = p.l1i_geometry = l1i && p.l2_geometry = l2 in
    let seed_point =
      match Array.find_opt is_seed points with
      | Some p -> p
      | None ->
          invalid_arg
            "Sweep.run_cache_study: the grid does not contain the seed geometries (w8 variants \
             missing?)"
    in
    (* The INTERPLAY-style question: fit CPI against the two cache MPKIs over
       the degraded points only, then predict the seed point's CPI from its
       own miss rates and compare with the simulated truth. *)
    let degraded = Array.of_list (List.filter (fun p -> not (is_seed p)) (Array.to_list points)) in
    let xs = Array.map (fun p -> [| p.l1i_mpki; p.l2_mpki |]) degraded in
    let ys = Array.map (fun p -> p.cache_cpi) degraded in
    let degradation = Pi_stats.Multireg.fit xs ys in
    let predicted_seed_cpi =
      Pi_stats.Multireg.predict degradation [| seed_point.l1i_mpki; seed_point.l2_mpki |]
    in
    let seed_error_percent =
      if seed_point.cache_cpi = 0.0 then 0.0
      else Float.abs (predicted_seed_cpi -. seed_point.cache_cpi) /. seed_point.cache_cpi *. 100.0
    in
    {
      cache_benchmark = benchmark;
      cache_points = points;
      seed_point;
      degradation;
      predicted_seed_cpi;
      seed_error_percent;
      cache_warmup_blocks = warmup_blocks;
      cache_fused_lanes = fused_lanes;
      cache_fallback_lanes = fallback_lanes;
      cache_shards = shards_used;
      cache_sources = sources;
      cache_replayed_lanes = replayed_lanes;
      cache_surrogate_rounds = surrogate_rounds;
      cache_surrogate_max_abs_err = surrogate_max_abs_err;
      cache_surrogate_mean_abs_err = surrogate_mean_abs_err;
      cache_grid_seconds = grid_seconds;
      cache_lane_seconds = grid_seconds /. float_of_int (max 1 replayed_lanes);
    }
  in
  match surrogate with
  | None ->
      let points, fused_lanes, fallback_lanes, shards_used, grid_seconds =
        run_cache_grid ~base ~plan ~warmup_blocks ~shards ?map_shards ~fused trace placement
      in
      finish points ~fused_lanes ~fallback_lanes ~shards_used
        ~sources:(Array.make (Array.length points) Replayed)
        ~replayed_lanes:(Array.length points) ~surrogate_rounds:0 ~surrogate_max_abs_err:0.0
        ~surrogate_mean_abs_err:0.0 ~grid_seconds
  | Some steering ->
      let feats =
        Array.map
          (fun (_, gi, gd) ->
            Array.append (geometry_feature_vector gi) (geometry_feature_vector gd))
          configs
      in
      (* Anchor on the seed machine (so it is always replayed truth, never a
         prediction) and the most-degraded corner. *)
      let seed_idx = ref 0 in
      Array.iteri (fun i (_, gi, gd) -> if gi = l1i && gd = l2 then seed_idx := i) configs;
      let anchors = [ !seed_idx; 0 ] in
      let seconds = ref 0.0 in
      let fused_total = ref 0 and fallback_total = ref 0 and shards_seen = ref 0 in
      let replay idxs =
        let t0 = Pi_obs.Clock.now () in
        let out = ref [] in
        let emit i (p : cache_point) = out := (i, [| p.l1i_mpki; p.l2_mpki; p.cache_cpi |]) :: !out in
        if not fused then begin
          Array.iter
            (fun gi_idx ->
              let name, gi, gd = configs.(gi_idx) in
              emit gi_idx (simulate_cache ~warmup_blocks base plan placement name gi gd))
            idxs;
          fallback_total := !fallback_total + Array.length idxs
        end
        else begin
          let subset = Array.map (fun i -> configs.(i)) idxs in
          let batch = Replay.cache_batch_of ~l1i ~l2 subset in
          let sub = Replay.shard batch ~shards in
          let n_shards = Array.length sub in
          shards_seen := max !shards_seen n_shards;
          let run_shard s = Replay.run_many ~warmup_blocks plan sub.(s) placement in
          let shard_counts =
            match map_shards with
            | Some m when n_shards > 1 -> m run_shard n_shards
            | _ -> Array.init n_shards run_shard
          in
          Array.iteri
            (fun s counts ->
              let src = Replay.batch_src sub.(s) in
              Array.iteri
                (fun j c ->
                  let gi_idx = idxs.(src.(j)) in
                  let name, gi, gd = configs.(gi_idx) in
                  emit gi_idx (cache_point_of name gi gd c))
                counts)
            shard_counts;
          fused_total := !fused_total + Replay.batch_lanes batch
        end;
        seconds := !seconds +. (Pi_obs.Clock.now () -. t0);
        !out
      in
      let st = steer ~steering ~feats ~anchors ~n_targets:3 ~cpi_target:2 ~replay n in
      let points =
        Array.init n (fun i ->
            let name, gi, gd = configs.(i) in
            {
              geometry_name = name;
              l1i_geometry = gi;
              l2_geometry = gd;
              l1i_mpki = st.st_values.(i).(0);
              l2_mpki = st.st_values.(i).(1);
              cache_cpi = st.st_values.(i).(2);
            })
      in
      finish points ~fused_lanes:!fused_total ~fallback_lanes:!fallback_total
        ~shards_used:!shards_seen ~sources:st.st_sources ~replayed_lanes:st.st_replayed
        ~surrogate_rounds:st.st_rounds ~surrogate_max_abs_err:st.st_max_err
        ~surrogate_mean_abs_err:st.st_mean_err ~grid_seconds:!seconds
