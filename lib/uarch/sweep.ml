let configurations () =
  let configs = ref [] in
  let add name make = configs := (name, make) :: !configs in
  (* Bimodal: 9 sizes. *)
  List.iter
    (fun el -> add (Printf.sprintf "bimodal-%d" el) (fun () -> Bimodal.create ~entries_log2:el))
    [ 8; 9; 10; 11; 12; 13; 14; 15; 16 ];
  (* Gshare: sizes x even history lengths. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h <= el then
            add
              (Printf.sprintf "gshare-%d/%d" el h)
              (fun () -> Gshare.create ~entries_log2:el ~history_bits:h))
        [ 4; 6; 8; 10; 12 ])
    [ 10; 11; 12; 13; 14; 15; 16 ];
  (* Gshare: odd history lengths on a sparser size grid. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h <= el then
            add
              (Printf.sprintf "gshare-%d/%d" el h)
              (fun () -> Gshare.create ~entries_log2:el ~history_bits:h))
        [ 3; 5; 7; 9; 11; 13 ])
    [ 10; 12; 14; 16 ];
  (* GAs: sizes x even history lengths. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "gas-%d/%d" el h)
              (fun () -> Gas.create ~entries_log2:el ~history_bits:h))
        [ 2; 4; 6; 8; 10; 12 ])
    [ 10; 11; 12; 13; 14; 15; 16 ];
  (* GAs: odd history lengths on a sparser grid. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "gas-%d/%d" el h)
              (fun () -> Gas.create ~entries_log2:el ~history_bits:h))
        [ 3; 5; 7; 9; 11 ])
    [ 10; 12; 14; 16 ];
  (* Hybrids. *)
  List.iter
    (fun el ->
      List.iter
        (fun h ->
          if h < el then
            add
              (Printf.sprintf "hybrid-%d/%d" el h)
              (fun () ->
                Hybrid.create ~gas_entries_log2:el ~gas_history_bits:h
                  ~bimodal_entries_log2:(el - 1) ~chooser_entries_log2:(el - 1) ()))
        [ 6; 8; 10 ])
    [ 11; 12; 13; 14; 15; 16 ];
  (* Static predictors: the low end of the accuracy range. *)
  add "static-taken" Perfect.always_taken;
  add "static-not-taken" Perfect.always_not_taken;
  (* Fill to exactly 145 with corner-case geometries off the grids above. *)
  add "gshare-13/13" (fun () -> Gshare.create ~entries_log2:13 ~history_bits:13);
  add "gshare-11/11" (fun () -> Gshare.create ~entries_log2:11 ~history_bits:11);
  add "gas-11/9" (fun () -> Gas.create ~entries_log2:11 ~history_bits:9);
  add "gas-13/11" (fun () -> Gas.create ~entries_log2:13 ~history_bits:11);
  add "hybrid-16/12" (fun () ->
      Hybrid.create ~gas_entries_log2:16 ~gas_history_bits:12 ~bimodal_entries_log2:15
        ~chooser_entries_log2:15 ());
  let all = List.rev !configs in
  assert (List.length all = 145);
  all

type point = { config_name : string; mpki : float; cpi : float }

type study = {
  benchmark : string;
  points : point array;
  perfect_cpi : float;
  ltage_point : point;
  regression : Pi_stats.Linreg.t;
  predicted_perfect_cpi : float;
  perfect_error_percent : float;
  predicted_ltage_cpi : float;
  ltage_error_percent : float;
}

let simulate ~warmup_blocks base plan placement name make =
  let config = Machine.with_predictor base ~name make in
  let config = if name = "perfect" then { config with Pipeline.perfect_btb = true } else config in
  (* Swapping the predictor never invalidates the compiled arrays, so this
     rebind is free: one compile serves the whole ~150-config study. *)
  let counts = Replay.run ~warmup_blocks (Replay.with_config plan config) placement in
  { config_name = name; mpki = Pipeline.mpki counts; cpi = Pipeline.cpi counts }

let run_study ?(base = Machine.xeon_e5440) ?(warmup_blocks = 0) ~benchmark trace placement =
  let plan = Replay.compile base trace in
  let simulate = simulate ~warmup_blocks base plan placement in
  let points =
    configurations ()
    |> List.map (fun (name, make) -> simulate name make)
    |> Array.of_list
  in
  let perfect = simulate "perfect" Perfect.perfect in
  let ltage_point = simulate "L-TAGE" (fun () -> Ltage.create ()) in
  let xs = Array.map (fun p -> p.mpki) points in
  let ys = Array.map (fun p -> p.cpi) points in
  let regression = Pi_stats.Linreg.fit xs ys in
  let predicted_perfect_cpi = Pi_stats.Linreg.predict regression 0.0 in
  let predicted_ltage_cpi = Pi_stats.Linreg.predict regression ltage_point.mpki in
  let error_percent predicted actual =
    if actual = 0.0 then 0.0 else Float.abs (predicted -. actual) /. actual *. 100.0
  in
  {
    benchmark;
    points;
    perfect_cpi = perfect.cpi;
    ltage_point;
    regression;
    predicted_perfect_cpi;
    perfect_error_percent = error_percent predicted_perfect_cpi perfect.cpi;
    predicted_ltage_cpi;
    ltage_error_percent = error_percent predicted_ltage_cpi ltage_point.cpi;
  }
