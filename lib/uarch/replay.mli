(** Compiled replay plans.

    Interferometry simulates one dynamic trace under hundreds of placements.
    {!compile} hoists every placement-invariant quantity — static block
    costs, memory-op spans with pre-resolved overlap factors, pre-decoded
    terminators — into flat arrays once; {!run} then replays the trace under
    a placement with no per-event allocation or variant matching, producing
    bit-identical {!Pipeline.counts} to {!Pipeline.run_unoptimized}.

    Plans are immutable and hold no simulation state, so a single plan can
    be shared across domains (e.g. `pi_campaign` workers). *)

type plan = Pipeline.plan

val compile : Pipeline.config -> Pi_isa.Trace.t -> plan
(** One-time O(trace) compilation of the placement-invariant work. *)

val run : ?warmup_blocks:int -> plan -> Pi_layout.Placement.t -> Pipeline.counts
(** Replay under one placement; bit-identical to the legacy interpreter. *)

val with_config : plan -> Pipeline.config -> plan
(** Rebind to a new machine config, reusing the compiled arrays when only
    replay-time parameters (predictors, cache geometries, most penalties)
    changed — the predictor-sweep fast path. Recompiles otherwise. *)

val config : plan -> Pipeline.config
val trace : plan -> Pi_isa.Trace.t

val blocks : plan -> int
(** Dynamic blocks replayed per {!run}. *)

val mem_events : plan -> int
(** Dynamic memory events replayed per {!run}. *)

val words : plan -> int
(** Approximate heap footprint of the plan arrays, in machine words. *)

(** {1 Fused multi-lane sweeps}

    A sweep replays one plan under one placement per configuration, but
    only one axis differs between runs — the direction predictor
    (predictor axis) or the L1I/L2 geometries (cache axis). {!run_many}
    walks the plan once for a whole batch of lanes, sharing the
    lane-invariant simulation and producing, for every lane, counts
    bit-identical to a sequential {!run} of that configuration. See
    {!Pipeline.replay_many} for the per-axis sharing contract. *)

type batch = Pipeline.batch

val batch_of : (string * (unit -> Predictor.t)) array -> batch
(** Pack the kernel-bearing configurations into fused predictor lanes;
    the rest are reported by {!batch_fallback} for the per-config path. *)

val cache_batch_of :
  l1i:Cache.geometry -> l2:Cache.geometry -> (string * Cache.geometry * Cache.geometry) array -> batch
(** Pack cache-geometry configurations into fused cache lanes over the
    seed geometries of the machine the batch will replay; validates every
    geometry eagerly and rejects mixed line sizes and duplicate pairs.
    See {!Pipeline.cache_batch_of}. *)

val batch_axis : batch -> string
(** ["predictor"] or ["cache"]; matches the metrics' [axis] label. *)

val batch_lanes : batch -> int
val batch_names : batch -> string array

val batch_src : batch -> int array
(** Internal lane order -> caller config index; aligned with {!run_many}'s
    result array. *)

val batch_fallback : batch -> int array
val batch_table_bytes : batch -> int

val shard : batch -> shards:int -> batch array
(** At most [shards] contiguous sub-batches; replaying them in any order
    (e.g. on {!Pi_campaign.Scheduler} domains) and merging by
    {!batch_src} equals replaying the whole batch. *)

val run_many : ?warmup_blocks:int -> plan -> batch -> Pi_layout.Placement.t -> Pipeline.counts array
(** One pass over the plan, all lanes at once; bit-identical per lane to
    the sequential path. *)
