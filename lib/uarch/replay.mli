(** Compiled replay plans.

    Interferometry simulates one dynamic trace under hundreds of placements.
    {!compile} hoists every placement-invariant quantity — static block
    costs, memory-op spans with pre-resolved overlap factors, pre-decoded
    terminators — into flat arrays once; {!run} then replays the trace under
    a placement with no per-event allocation or variant matching, producing
    bit-identical {!Pipeline.counts} to {!Pipeline.run_unoptimized}.

    Plans are immutable and hold no simulation state, so a single plan can
    be shared across domains (e.g. `pi_campaign` workers). *)

type plan = Pipeline.plan

val compile : Pipeline.config -> Pi_isa.Trace.t -> plan
(** One-time O(trace) compilation of the placement-invariant work. *)

val run : ?warmup_blocks:int -> plan -> Pi_layout.Placement.t -> Pipeline.counts
(** Replay under one placement; bit-identical to the legacy interpreter. *)

val with_config : plan -> Pipeline.config -> plan
(** Rebind to a new machine config, reusing the compiled arrays when only
    replay-time parameters (predictors, cache geometries, most penalties)
    changed — the predictor-sweep fast path. Recompiles otherwise. *)

val config : plan -> Pipeline.config
val trace : plan -> Pi_isa.Trace.t

val blocks : plan -> int
(** Dynamic blocks replayed per {!run}. *)

val mem_events : plan -> int
(** Dynamic memory events replayed per {!run}. *)

val words : plan -> int
(** Approximate heap footprint of the plan arrays, in machine words. *)
