module Ct = Predictor.Counter_table

let create ?name ~gas_entries_log2 ~gas_history_bits ~bimodal_entries_log2
    ~chooser_entries_log2 () =
  if gas_history_bits < 1 || gas_history_bits >= gas_entries_log2 then
    invalid_arg "Hybrid.create: bad GAs geometry";
  let gas_table = Ct.create ~entries:(1 lsl gas_entries_log2) in
  let bimodal_table = Ct.create ~entries:(1 lsl bimodal_entries_log2) in
  let chooser = Ct.create ~entries:(1 lsl chooser_entries_log2) in
  let history = ref 0 in
  let history_mask = (1 lsl gas_history_bits) - 1 in
  let gas_index_mask = (1 lsl gas_entries_log2) - 1 in
  let on_branch ~pc ~taken =
    let hashed = Predictor.hash_pc pc in
    (* Global-history component with XOR (gshare-style) indexing: every
       branch address bit participates, so code placement perturbs the
       aliasing pattern across the whole table. *)
    let gas_index = (hashed lxor !history) land gas_index_mask in
    let gas_prediction = Ct.predict gas_table gas_index in
    let bimodal_prediction = Ct.predict bimodal_table hashed in
    (* Chooser >= 2 selects the history-based component. *)
    let use_gas = Ct.predict chooser hashed in
    let prediction = if use_gas then gas_prediction else bimodal_prediction in
    Ct.update gas_table gas_index taken;
    Ct.update bimodal_table hashed taken;
    if gas_prediction <> bimodal_prediction then
      Ct.update chooser hashed (gas_prediction = taken);
    history := ((!history lsl 1) lor (if taken then 1 else 0)) land history_mask;
    prediction = taken
  in
  let storage_bits =
    ((1 lsl gas_entries_log2) * 2)
    + ((1 lsl bimodal_entries_log2) * 2)
    + ((1 lsl chooser_entries_log2) * 2)
    + gas_history_bits
  in
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "hybrid-gas%d/%d+bim%d" gas_entries_log2 gas_history_bits
          bimodal_entries_log2
  in
  {
    Predictor.name;
    on_branch;
    reset =
      (fun () ->
        Ct.reset gas_table;
        Ct.reset bimodal_table;
        Ct.reset chooser;
        history := 0);
    storage_bits;
    kernel =
      (let gas, gas_mask = Ct.raw gas_table in
       let bim, bim_mask = Ct.raw bimodal_table in
       let cho, cho_mask = Ct.raw chooser in
       Some
         (Predictor.Hybrid_k
            { gas; gas_mask; gas_index_mask; bim; bim_mask; cho; cho_mask; history; history_mask }));
  }

let xeon_like () =
  (* A mid-2000s-scale hybrid: 4K-entry global component with 9 history
     bits, 2K-entry bimodal, 2K-entry chooser (~2KB total). *)
  create ~name:"real (Xeon-like hybrid)" ~gas_entries_log2:12 ~gas_history_bits:9
    ~bimodal_entries_log2:11 ~chooser_entries_log2:11 ()
