module Ct = Predictor.Counter_table

let create ?(local_bht_log2 = 10) ?(local_history_bits = 10) ?(global_entries_log2 = 12)
    ?(global_history_bits = 12) ?(chooser_entries_log2 = 12) () =
  if global_history_bits < 1 || global_history_bits > global_entries_log2 then
    invalid_arg "Tournament.create: bad global geometry";
  let local_bht = Array.make (1 lsl local_bht_log2) 0 in
  let local_pht = Ct.create ~entries:(1 lsl local_history_bits) in
  let global_table = Ct.create ~entries:(1 lsl global_entries_log2) in
  let chooser = Ct.create ~entries:(1 lsl chooser_entries_log2) in
  let history = ref 0 in
  let history_mask = (1 lsl global_history_bits) - 1 in
  let local_mask = (1 lsl local_history_bits) - 1 in
  let bht_mask = (1 lsl local_bht_log2) - 1 in
  let on_branch ~pc ~taken =
    let bht_index = Predictor.hash_pc pc land bht_mask in
    let local_history = local_bht.(bht_index) in
    let local_prediction = Ct.predict local_pht local_history in
    let global_index = (Predictor.hash_pc pc lxor !history) land ((1 lsl global_entries_log2) - 1) in
    let global_prediction = Ct.predict global_table global_index in
    (* 21264: the chooser is indexed by global history alone. *)
    let use_global = Ct.predict chooser !history in
    let prediction = if use_global then global_prediction else local_prediction in
    Ct.update local_pht local_history taken;
    Ct.update global_table global_index taken;
    if local_prediction <> global_prediction then
      Ct.update chooser !history (global_prediction = taken);
    local_bht.(bht_index) <- ((local_history lsl 1) lor (if taken then 1 else 0)) land local_mask;
    history := ((!history lsl 1) lor (if taken then 1 else 0)) land history_mask;
    prediction = taken
  in
  let reset () =
    Array.fill local_bht 0 (Array.length local_bht) 0;
    Ct.reset local_pht;
    Ct.reset global_table;
    Ct.reset chooser;
    history := 0
  in
  {
    Predictor.name = "tournament-21264";
    on_branch;
    reset;
    storage_bits =
      ((1 lsl local_bht_log2) * local_history_bits)
      + ((1 lsl local_history_bits) * 2)
      + ((1 lsl global_entries_log2) * 2)
      + ((1 lsl chooser_entries_log2) * 2);
    kernel = None;
  }
