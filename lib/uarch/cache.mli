(** Set-associative cache with LRU replacement.

    Used for the L1 instruction cache, L1 data cache and the unified L2 of
    the machine model. Set index = address bits just above the line offset —
    the hash that makes cache conflicts sensitive to code and data
    placement, which is what heap randomization and code reordering
    perturb. *)

type geometry = { size_bytes : int; assoc : int; line_bytes : int }

val geometry_sets : geometry -> int

type t

val create : geometry -> t
val geometry : t -> geometry

val access : t -> int -> bool
(** [access t addr]: true on hit; allocates and updates LRU either way. *)

val probe : t -> int -> bool
(** Hit test without any state change. *)

val touch : t -> int -> unit
(** [access] ignoring the result (prefetch/pollution modelling). *)

val fill : t -> int -> unit
(** Install a line without touching the access/miss counters — for
    prefetch fills, which are not demand misses. *)

val access_range : t -> addr:int -> bytes:int -> int
(** Access every line overlapping [\[addr, addr+bytes)]; returns the number
    of misses (used for instruction fetch of a basic block). *)

val hot : t -> int array * int * int * int
(** [(tags, set_mask, assoc, line_shift)] — internals for hot loops that
    inline the MRU-hit check: with [line = addr lsr line_shift] and
    [base = (line land set_mask) * assoc], if [tags.(base) = line] the
    access is an MRU hit whose LRU promotion is a no-op, so the caller may
    record it with {!count_hit} and skip {!access}. Every other case must
    go through {!access}. The array is the live tag store — read-only for
    callers. *)

val count_hit : t -> unit
(** Count one hit access without touching cache state; only valid when the
    MRU-hit condition of {!hot} held. *)

val reset : t -> unit

val accesses : t -> int
val misses : t -> int
(** Cumulative counters since creation/[reset] (counting [access] and
    [access_range], not [probe]/[touch]... [touch] counts too since it is an
    access). *)
