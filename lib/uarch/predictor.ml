module Counter_table = struct
  type table = { counters : Bytes.t; mask : int }

  let is_pow2 n = n > 0 && n land (n - 1) = 0

  let create ~entries =
    if not (is_pow2 entries) then invalid_arg "Counter_table.create: entries not a power of two";
    { counters = Bytes.make entries '\001'; mask = entries - 1 }

  let entries t = t.mask + 1
  let get t i = Char.code (Bytes.unsafe_get t.counters (i land t.mask))
  let predict t i = get t i >= 2

  let update t i taken =
    let i = i land t.mask in
    let c = Char.code (Bytes.unsafe_get t.counters i) in
    let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
    Bytes.unsafe_set t.counters i (Char.unsafe_chr c')

  let reset t = Bytes.fill t.counters 0 (Bytes.length t.counters) '\001'
  let raw t = (t.counters, t.mask)
end

(* Flattened mirrors of the table-indexed predictors, advanced inline by the
   replay hot loop without a closure call per branch. A kernel aliases the
   predictor's live tables and history cell (not copies), so closure and
   kernel views always agree; the kernel advance must reproduce [on_branch]
   decision-for-decision and state-for-state. *)
type kernel =
  | Bimodal_k of { counters : Bytes.t; mask : int }
  | Gshare_k of {
      counters : Bytes.t;
      mask : int;
      history : int ref;
      history_mask : int;
    }
  | Gas_k of {
      counters : Bytes.t;
      mask : int;
      history : int ref;
      history_mask : int;
      addr_mask : int;
      history_bits : int;
    }
  | Hybrid_k of {
      gas : Bytes.t;
      gas_mask : int;
      gas_index_mask : int;
      bim : Bytes.t;
      bim_mask : int;
      cho : Bytes.t;
      cho_mask : int;
      history : int ref;
      history_mask : int;
    }

type t = {
  name : string;
  on_branch : pc:int -> taken:bool -> bool;
  reset : unit -> unit;
  storage_bits : int;
  kernel : kernel option;
}

let storage_kb t = float_of_int t.storage_bits /. 8192.0
let hash_pc pc = pc lsr 1
