let create ~entries_log2 ~history_bits =
  if entries_log2 < 4 || entries_log2 > 24 then invalid_arg "Gas.create: entries_log2 out of [4,24]";
  if history_bits < 1 || history_bits >= entries_log2 then
    invalid_arg "Gas.create: history_bits out of [1, entries_log2)";
  let table = Predictor.Counter_table.create ~entries:(1 lsl entries_log2) in
  let history = ref 0 in
  let history_mask = (1 lsl history_bits) - 1 in
  let addr_mask = (1 lsl (entries_log2 - history_bits)) - 1 in
  let on_branch ~pc ~taken =
    let index = ((Predictor.hash_pc pc land addr_mask) lsl history_bits) lor !history in
    let prediction = Predictor.Counter_table.predict table index in
    Predictor.Counter_table.update table index taken;
    history := ((!history lsl 1) lor (if taken then 1 else 0)) land history_mask;
    prediction = taken
  in
  {
    Predictor.name = Printf.sprintf "gas-%d/%d" entries_log2 history_bits;
    on_branch;
    reset =
      (fun () ->
        Predictor.Counter_table.reset table;
        history := 0);
    storage_bits = ((1 lsl entries_log2) * 2) + history_bits;
    kernel =
      (let counters, mask = Predictor.Counter_table.raw table in
       Some (Predictor.Gas_k { counters; mask; history; history_mask; addr_mask; history_bits }));
  }

let sized_kb ~kb =
  (* The paper's hardware-budget study scales "GAs-style" predictors from
     2KB to 16KB. We scale the same structure the real machine uses — a
     global-history component backed by a bimodal table and a chooser — so
     the family is monotone in budget and directly comparable to the real
     predictor. History grows with the budget, as contemporary designs'
     did. *)
  let gas_el, hist, bim_el =
    match kb with
    | 2 -> (13, 10, 12)
    | 4 -> (14, 11, 13)
    | 8 -> (15, 12, 14)
    | 16 -> (16, 13, 15)
    | _ -> invalid_arg "Gas.sized_kb: kb must be one of 2, 4, 8, 16"
  in
  Hybrid.create
    ~name:(Printf.sprintf "GAs-%dKB" kb)
    ~gas_entries_log2:gas_el ~gas_history_bits:hist ~bimodal_entries_log2:bim_el
    ~chooser_entries_log2:bim_el ()
