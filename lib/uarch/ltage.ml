type config = {
  n_tables : int;
  table_entries_log2 : int;
  tag_bits : int;
  min_history : int;
  max_history : int;
  base_entries_log2 : int;
  loop_entries_log2 : int;
  use_loop_predictor : bool;
}

let default_config =
  {
    n_tables = 8;
    table_entries_log2 = 11;
    tag_bits = 11;
    min_history = 4;
    max_history = 300;
    base_entries_log2 = 12;
    loop_entries_log2 = 6;
    use_loop_predictor = true;
  }

(* Geometric history lengths a la Seznec: L(i) = min * (max/min)^(i/(n-1)). *)
let history_lengths cfg =
  let n = cfg.n_tables in
  Array.init n (fun i ->
      if n = 1 then cfg.min_history
      else
        let ratio = float_of_int cfg.max_history /. float_of_int cfg.min_history in
        let len =
          float_of_int cfg.min_history
          *. (ratio ** (float_of_int i /. float_of_int (n - 1)))
        in
        int_of_float (Float.round len))

(* Folded (compressed) history register: XOR-folds the most recent
   [length] history bits down to [width] bits, updated incrementally. *)
module Folded = struct
  type t = { mutable comp : int; width : int; outpoint : int }

  let create ~length ~width = { comp = 0; width; outpoint = length mod width }

  let update t ~new_bit ~old_bit =
    t.comp <- (t.comp lsl 1) lor new_bit;
    t.comp <- t.comp lxor (old_bit lsl t.outpoint);
    t.comp <- t.comp lxor (t.comp lsr t.width);
    t.comp <- t.comp land ((1 lsl t.width) - 1)

  let reset t = t.comp <- 0
end

(* Global history as a circular bit buffer large enough for the longest
   component history. *)
module History = struct
  type t = { bits : Bytes.t; mutable head : int; size : int }

  let create size = { bits = Bytes.make size '\000'; head = 0; size }

  let push t bit =
    t.head <- (t.head + 1) mod t.size;
    Bytes.unsafe_set t.bits t.head (Char.unsafe_chr bit)

  (* Bit that occurred [age] branches ago (age 0 = most recent). *)
  let bit_at t age =
    Char.code (Bytes.unsafe_get t.bits ((t.head - age + (t.size * 2)) mod t.size))

  let reset t =
    Bytes.fill t.bits 0 t.size '\000';
    t.head <- 0
end

type tagged_entry = { mutable tag : int; mutable ctr : int; mutable u : int }

module Loop_predictor = struct
  type entry = {
    mutable ltag : int;
    mutable past_iter : int;
    mutable current_iter : int;
    mutable confidence : int;
    mutable age : int;
  }

  type t = { entries : entry array; mask : int }

  let create ~entries_log2 =
    {
      entries =
        Array.init (1 lsl entries_log2) (fun _ ->
            { ltag = -1; past_iter = 0; current_iter = 0; confidence = 0; age = 0 });
      mask = (1 lsl entries_log2) - 1;
    }

  let index t pc = Predictor.hash_pc pc land t.mask
  let tag_of pc = (Predictor.hash_pc pc lsr 6) land 0x3FF

  (* Returns Some predicted_direction when the entry is confident. *)
  let predict t pc =
    let e = t.entries.(index t pc) in
    if e.ltag = tag_of pc && e.confidence >= 3 && e.past_iter > 0 then
      Some (e.current_iter < e.past_iter)
    else None

  let update t pc taken =
    let e = t.entries.(index t pc) in
    if e.ltag = tag_of pc then begin
      if taken then begin
        e.current_iter <- e.current_iter + 1;
        if e.past_iter > 0 && e.current_iter > e.past_iter then begin
          (* Trip count changed: retrain. *)
          e.confidence <- 0;
          e.past_iter <- 0
        end
      end
      else begin
        if e.past_iter = e.current_iter && e.past_iter > 0 then
          e.confidence <- min 3 (e.confidence + 1)
        else begin
          e.past_iter <- e.current_iter;
          e.confidence <- 0
        end;
        e.current_iter <- 0
      end;
      e.age <- min 255 (e.age + 1)
    end
    else if not taken then begin
      (* Allocate on a not-taken branch (a loop exit candidate) if the
         current occupant has gone stale. *)
      if e.age = 0 || e.confidence = 0 then begin
        e.ltag <- tag_of pc;
        e.past_iter <- 0;
        e.current_iter <- 0;
        e.confidence <- 0;
        e.age <- 16
      end
      else e.age <- e.age - 1
    end

  let reset t =
    Array.iter
      (fun e ->
        e.ltag <- -1;
        e.past_iter <- 0;
        e.current_iter <- 0;
        e.confidence <- 0;
        e.age <- 0)
      t.entries

  let storage_bits t = Array.length t.entries * (10 + 14 + 14 + 2 + 8)
end

let create ?(config = default_config) () =
  let cfg = config in
  if cfg.n_tables < 1 then invalid_arg "Ltage.create: need >= 1 tagged table";
  let lengths = history_lengths cfg in
  let n = cfg.n_tables in
  let entries = 1 lsl cfg.table_entries_log2 in
  let index_mask = entries - 1 in
  let tag_mask = (1 lsl cfg.tag_bits) - 1 in
  let tables =
    Array.init n (fun _ -> Array.init entries (fun _ -> { tag = -1; ctr = 0; u = 0 }))
  in
  let base = Predictor.Counter_table.create ~entries:(1 lsl cfg.base_entries_log2) in
  let history = History.create 1024 in
  let folded_index =
    Array.init n (fun i -> Folded.create ~length:lengths.(i) ~width:cfg.table_entries_log2)
  in
  let folded_tag0 =
    Array.init n (fun i -> Folded.create ~length:lengths.(i) ~width:cfg.tag_bits)
  in
  let folded_tag1 =
    Array.init n (fun i -> Folded.create ~length:lengths.(i) ~width:(cfg.tag_bits - 1))
  in
  let loop_pred = Loop_predictor.create ~entries_log2:cfg.loop_entries_log2 in
  let use_alt_on_na = ref 8 in
  (* Counter deciding whether to trust newly allocated entries. *)
  let tick = ref 0 in
  let rng = Pi_stats.Rng.create 0x17A6E in
  let table_index i pc =
    (Predictor.hash_pc pc lxor (Predictor.hash_pc pc lsr (cfg.table_entries_log2 - i))
    lxor folded_index.(i).Folded.comp)
    land index_mask
  in
  let table_tag i pc =
    (Predictor.hash_pc pc lxor folded_tag0.(i).Folded.comp
    lxor (folded_tag1.(i).Folded.comp lsl 1))
    land tag_mask
  in
  let on_branch ~pc ~taken =
    (* Find the two longest matching tagged components. *)
    let provider = ref (-1) and alt = ref (-1) in
    let provider_idx = ref 0 and alt_idx = ref 0 in
    for i = n - 1 downto 0 do
      let idx = table_index i pc in
      if tables.(i).(idx).tag = table_tag i pc then
        if !provider = -1 then begin
          provider := i;
          provider_idx := idx
        end
        else if !alt = -1 then begin
          alt := i;
          alt_idx := idx
        end
    done;
    let base_index = Predictor.hash_pc pc in
    let base_prediction = Predictor.Counter_table.predict base base_index in
    let alt_prediction =
      if !alt >= 0 then tables.(!alt).(!alt_idx).ctr >= 0 else base_prediction
    in
    let tage_prediction, newly_allocated =
      if !provider >= 0 then begin
        let e = tables.(!provider).(!provider_idx) in
        let weak = e.ctr = 0 || e.ctr = -1 in
        let na = weak && e.u = 0 in
        let pred = if na && !use_alt_on_na >= 8 then alt_prediction else e.ctr >= 0 in
        (pred, na)
      end
      else (base_prediction, false)
    in
    let loop_prediction = if cfg.use_loop_predictor then Loop_predictor.predict loop_pred pc else None in
    let final_prediction =
      match loop_prediction with Some d -> d | None -> tage_prediction
    in
    (* --- update --- *)
    if cfg.use_loop_predictor then Loop_predictor.update loop_pred pc taken;
    (* use_alt_on_na bookkeeping. *)
    if !provider >= 0 && newly_allocated && tage_prediction <> alt_prediction then begin
      if alt_prediction = taken then use_alt_on_na := min 15 (!use_alt_on_na + 1)
      else use_alt_on_na := max 0 (!use_alt_on_na - 1)
    end;
    (* Update provider (or base). *)
    let update_signed e =
      if taken then e.ctr <- min 3 (e.ctr + 1) else e.ctr <- max (-4) (e.ctr - 1)
    in
    if !provider >= 0 then begin
      let e = tables.(!provider).(!provider_idx) in
      update_signed e;
      (* Usefulness: bump when the provider disagreed with the alternate
         and was right. *)
      if tage_prediction <> alt_prediction then begin
        if tage_prediction = taken then e.u <- min 3 (e.u + 1)
        else e.u <- max 0 (e.u - 1)
      end
    end
    else Predictor.Counter_table.update base base_index taken;
    (* Allocate on misprediction in a longer-history table. *)
    if tage_prediction <> taken && !provider < n - 1 then begin
      let start = !provider + 1 in
      (* Probabilistically skip one table to spread allocations. *)
      let start =
        if start < n - 1 && Pi_stats.Rng.bool rng then start + 1 else start
      in
      let allocated = ref false in
      let i = ref start in
      while (not !allocated) && !i < n do
        let idx = table_index !i pc in
        let e = tables.(!i).(idx) in
        if e.u = 0 then begin
          e.tag <- table_tag !i pc;
          e.ctr <- (if taken then 0 else -1);
          e.u <- 0;
          allocated := true
        end;
        incr i
      done;
      if not !allocated then
        (* Decay usefulness along the attempted path. *)
        for j = start to n - 1 do
          let e = tables.(j).(table_index j pc) in
          e.u <- max 0 (e.u - 1)
        done
    end;
    (* Periodic graceful reset of usefulness counters. *)
    incr tick;
    if !tick land 0x3FFFF = 0 then
      Array.iter (fun table -> Array.iter (fun e -> e.u <- e.u lsr 1) table) tables;
    (* Advance history and folded registers. *)
    let new_bit = if taken then 1 else 0 in
    for i = 0 to n - 1 do
      let old_bit = History.bit_at history (lengths.(i) - 1) in
      Folded.update folded_index.(i) ~new_bit ~old_bit;
      Folded.update folded_tag0.(i) ~new_bit ~old_bit;
      Folded.update folded_tag1.(i) ~new_bit ~old_bit
    done;
    History.push history new_bit;
    final_prediction = taken
  in
  let reset () =
    Array.iter
      (fun table ->
        Array.iter
          (fun e ->
            e.tag <- -1;
            e.ctr <- 0;
            e.u <- 0)
          table)
      tables;
    Predictor.Counter_table.reset base;
    History.reset history;
    Array.iter Folded.reset folded_index;
    Array.iter Folded.reset folded_tag0;
    Array.iter Folded.reset folded_tag1;
    Loop_predictor.reset loop_pred;
    use_alt_on_na := 8;
    tick := 0
  in
  let storage_bits =
    (n * entries * (cfg.tag_bits + 3 + 2))
    + ((1 lsl cfg.base_entries_log2) * 2)
    + (if cfg.use_loop_predictor then Loop_predictor.storage_bits loop_pred else 0)
  in
  {
    Predictor.name = (if cfg.use_loop_predictor then "L-TAGE" else "TAGE");
    on_branch;
    reset;
    storage_bits;
    kernel = None;
  }

let tage_only () = create ~config:{ default_config with use_loop_predictor = false } ()
