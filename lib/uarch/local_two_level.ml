let create ?(bht_entries_log2 = 10) ?(local_history_bits = 10) ?(pht_entries_log2 = 10) () =
  if local_history_bits < 1 || local_history_bits > pht_entries_log2 then
    invalid_arg "Local_two_level.create: local_history_bits out of [1, pht_entries_log2]";
  let bht = Array.make (1 lsl bht_entries_log2) 0 in
  let pht = Predictor.Counter_table.create ~entries:(1 lsl pht_entries_log2) in
  let bht_mask = (1 lsl bht_entries_log2) - 1 in
  let history_mask = (1 lsl local_history_bits) - 1 in
  let on_branch ~pc ~taken =
    let bht_index = Predictor.hash_pc pc land bht_mask in
    let local_history = bht.(bht_index) in
    let prediction = Predictor.Counter_table.predict pht local_history in
    Predictor.Counter_table.update pht local_history taken;
    bht.(bht_index) <- ((local_history lsl 1) lor (if taken then 1 else 0)) land history_mask;
    prediction = taken
  in
  let reset () =
    Array.fill bht 0 (Array.length bht) 0;
    Predictor.Counter_table.reset pht
  in
  {
    Predictor.name = Printf.sprintf "local-%d/%d" bht_entries_log2 local_history_bits;
    on_branch;
    reset;
    storage_bits = ((1 lsl bht_entries_log2) * local_history_bits) + ((1 lsl pht_entries_log2) * 2);
    kernel = None;
  }
