(** Timing model: executes a trace under a placement and produces cycle and
    event counts.

    This stands in for both the paper's physical Xeon E5440 (when wrapped in
    the noisy {!Counters} measurement protocol) and its MASE cycle simulator
    (when read exactly). The model is an issue-cost-plus-penalties machine:

    - every instruction pays a throughput cost by kind (plain/FP/multiply/
      divide/memory);
    - instruction fetch walks the L1I cache lines the block's *linked
      addresses* occupy; misses probe the unified L2;
    - memory instructions resolve their symbolic trace operands through the
      data layout, access L1D then L2, and pay latency scaled by a
      memory-level-parallelism factor derived from the access pattern
      (pointer chases serialize, streams overlap);
    - conditional branches consult the configured direction predictor at the
      branch's linked address; indirect jumps/calls consult the BTB; wrong
      predictions pay the front-end refill penalty;
    - optionally, mispredictions have wrong-path side effects: the
      not-taken-path lines are fetched into L1I and the next data line is
      pulled into L2 (sometimes prefetching useful data, sometimes
      polluting) — the mechanism behind the mild non-linearity the paper
      observes on 252.eon and 178.galgel.

    All structures hash physical addresses, so changing the code or data
    placement changes conflict patterns exactly as on hardware. *)

type penalties = {
  mispredict : float;
  btb_miss : float;
  l1i_miss : float;  (** L1I miss, L2 hit *)
  l1d_miss : float;  (** L1D miss, L2 hit *)
  l2_miss : float;  (** full memory latency *)
  store_miss_factor : float;  (** stores hide most of their miss latency *)
}

type instr_costs = {
  plain : float;
  fp : float;
  mul : float;
  div : float;
  mem : float;
  term : float;  (** control-transfer instruction *)
}

type overlap = {
  chase : float;  (** serialized pointer chase: full penalty *)
  random : float;
  sequential : float;  (** streaming: hardware prefetcher hides most *)
  fixed : float;
}

type config = {
  name : string;
  make_predictor : unit -> Predictor.t;
  make_indirect : unit -> Indirect.t;  (** indirect-target predictor (BTB or ITTAGE) *)
  data_prefetcher : bool;  (** stride prefetcher (default machine: off) *)
  trace_cache : Trace_cache.geometry option;  (** placement-immune fetch path *)
  l1i : Cache.geometry;
  l1d : Cache.geometry;
  l2 : Cache.geometry;
  costs : instr_costs;
  penalties : penalties;
  overlap : overlap;
  wrong_path : bool;
  perfect_btb : bool;  (** oracle indirect-target prediction (with the
      perfect direction predictor, makes total MPKI exactly 0) *)
}

type counts = {
  cycles : float;
  instructions : int;
  cond_branches : int;
  cond_mispredicts : int;
  indirect_branches : int;
  indirect_mispredicts : int;
  btb_misses : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  l2_accesses : int;
  l2_misses : int;
}

val run : ?warmup_blocks:int -> config -> Pi_isa.Trace.t -> Pi_layout.Placement.t -> counts
(** [warmup_blocks] (default 0) executes that many leading blocks with all
    structures live but discards their events and cycles, so short traces
    report the steady-state rates a minutes-long run on hardware would.

    Equivalent to [replay ?warmup_blocks (compile config trace) placement];
    callers simulating the same trace more than once should compile a plan
    and replay it. *)

val run_unoptimized :
  ?warmup_blocks:int -> config -> Pi_isa.Trace.t -> Pi_layout.Placement.t -> counts
(** The legacy interpreter: recomputes every trace-derived table per call and
    pattern-matches terminators per dynamic block. Kept as the reference
    implementation for the golden-equivalence tests and the perf baseline;
    produces bit-identical {!counts} to {!replay}. *)

type plan
(** A compiled, placement-invariant replay plan: flat per-dynamic-block and
    per-memory-event arrays carrying everything {!replay} needs that does not
    depend on the placement (static costs, mem-op spans with pre-resolved
    overlap factors, pre-decoded terminators). Immutable and free of
    simulation state, so one plan may be replayed from many domains
    concurrently. *)

val compile : config -> Pi_isa.Trace.t -> plan
(** One-time O(trace) compilation; see {!plan}. *)

val replay : ?warmup_blocks:int -> plan -> Pi_layout.Placement.t -> counts
(** Simulate the compiled trace under one placement. Bit-identical to
    {!run_unoptimized} with the plan's config and trace: the same floats are
    accumulated in the same order. *)

val plan_with_config : plan -> config -> plan
(** Rebind a plan to a new machine config. Reuses the compiled arrays when
    the plan-baked parameters (instruction costs, overlap factors,
    store-miss factor) are unchanged — e.g. across a predictor sweep — and
    recompiles from the plan's trace otherwise. *)

val plan_config : plan -> config
val plan_trace : plan -> Pi_isa.Trace.t

val plan_blocks : plan -> int
(** Dynamic blocks the plan replays. *)

val plan_mem_events : plan -> int
(** Dynamic memory events the plan replays. *)

val plan_words : plan -> int
(** Approximate heap footprint of the plan's arrays, in machine words. *)

type batch
(** A structure-of-arrays pack of lanes for one fused sweep pass. The
    batch is axis-generic: what the lanes vary is fixed at construction
    and everything else (trace walk, decoded terminators, base costs,
    mem-op spans) is shared by {!replay_many}.

    Predictor lanes ({!batch_of}) pack every lane's saturating-counter
    tables in one flat byte image addressed through per-lane offset/mask
    arrays, lanes sorted by kernel kind, with one shared global-history
    register serving all history-based lanes. Cache lanes
    ({!cache_batch_of}) pack every lane's L1I and L2 tag images as
    lane-major slices of one flat int arena, addressed through per-lane
    offset/set-mask/assoc arrays, while one shared direction predictor,
    indirect predictor, trace cache, prefetcher and L1D serve all lanes
    (their inputs are lane-invariant).

    Lane metadata is immutable and per-pass simulation state is rebuilt
    inside {!replay_many}, but the batch owns reusable scratch images
    that successive passes recycle — so a batch belongs to one domain at
    a time. Concurrent replay must use distinct batches; {!batch_shard}
    sub-batches (for 2+ shards) are distinct by construction. *)

val batch_of : (string * (unit -> Predictor.t)) array -> batch
(** Pack every configuration exposing a {!Predictor.kernel} into fused
    lanes; the rest (perfect, static, L-TAGE — anything closure-only) are
    recorded as fallback indices for the caller's per-config path. *)

val cache_batch_of :
  l1i:Cache.geometry -> l2:Cache.geometry -> (string * Cache.geometry * Cache.geometry) array -> batch
(** Pack cache-geometry configurations (name, L1I geometry, L2 geometry)
    into fused lanes over the seed geometries [~l1i]/[~l2] of the machine
    the batch will replay. Every geometry is validated eagerly
    ({!Cache.geometry_sets}); all lanes must share the seed's L1I and L2
    line sizes (line size is shared across a fused pass), and duplicate
    (L1I, L2) geometry pairs are rejected with [Invalid_argument] naming
    both lanes. Cache batches have no fallback lanes. *)

val batch_lanes : batch -> int
(** Fused lane count. *)

val batch_names : batch -> string array
(** Lane names, in the batch's internal (kind-sorted) order. *)

val batch_src : batch -> int array
(** Maps internal lane order back to indices into the configuration array
    given to {!batch_of}; aligned with {!replay_many}'s result. *)

val batch_fallback : batch -> int array
(** Indices (into the {!batch_of} argument) of configurations without a
    kernel, which must be simulated by the sequential per-config path. *)

val batch_table_bytes : batch -> int
(** Total packed lane-state bytes across all lanes (counter tables for
    predictor lanes, tag arenas for cache lanes), for reporting. *)

val batch_axis : batch -> string
(** The axis the lanes vary: ["predictor"] or ["cache"]. Matches the
    [axis] label on the fused-pass metrics. *)

val batch_shard : batch -> shards:int -> batch array
(** Split into at most [shards] contiguous sub-batches of near-equal lane
    count (at least one lane each), suitable for domain-parallel execution:
    replaying the sub-batches in any order and concatenating by
    {!batch_src} is deterministic and equal to replaying the whole batch.
    A 1-shard split returns the batch itself (preserving its warm scratch);
    every split of 2+ builds fresh single-domain sub-batches. *)

val replay_many : ?warmup_blocks:int -> plan -> batch -> Pi_layout.Placement.t -> counts array
(** Walk the compiled plan {e once} for every lane in the batch, sharing
    all lane-invariant work and keeping per-lane only what the axis
    varies: predictor lanes keep per-lane cycles, conditional mispredicts
    and L1I/L2 images (wrong-path effects depend on each lane's own
    mispredictions); cache lanes share one direction/indirect predictor,
    trace cache, prefetcher and L1D (their inputs never depend on cache
    geometry) and keep per-lane cycles and L1I/L2 tag images and
    counters. Result is indexed in the batch's internal lane order (see
    {!batch_src}); each element is bit-identical to {!replay} of the same
    configuration — same floats accumulated in the same order, same state
    transitions in the same sequence. For a cache batch the plan's
    machine must carry the seed geometries the batch was built for. *)

val cpi : counts -> float

val mispredicts : counts -> int
(** Retired mispredicted branches: conditional + indirect, as the paper's
    counter does. *)

val mpki : counts -> float
val l1i_mpki : counts -> float
val l1d_mpki : counts -> float
val l2_mpki : counts -> float
