let create ~entries_log2 ~history_bits =
  if entries_log2 < 4 || entries_log2 > 24 then invalid_arg "Gshare.create: entries_log2 out of [4,24]";
  if history_bits < 1 || history_bits > entries_log2 then
    invalid_arg "Gshare.create: history_bits out of [1, entries_log2]";
  let table = Predictor.Counter_table.create ~entries:(1 lsl entries_log2) in
  let history = ref 0 in
  let history_mask = (1 lsl history_bits) - 1 in
  let on_branch ~pc ~taken =
    let index = Predictor.hash_pc pc lxor !history in
    let prediction = Predictor.Counter_table.predict table index in
    Predictor.Counter_table.update table index taken;
    history := ((!history lsl 1) lor (if taken then 1 else 0)) land history_mask;
    prediction = taken
  in
  {
    Predictor.name = Printf.sprintf "gshare-%d/%d" entries_log2 history_bits;
    on_branch;
    reset =
      (fun () ->
        Predictor.Counter_table.reset table;
        history := 0);
    storage_bits = ((1 lsl entries_log2) * 2) + history_bits;
    kernel =
      (let counters, mask = Predictor.Counter_table.raw table in
       Some (Predictor.Gshare_k { counters; mask; history; history_mask }));
  }
