let constant ~name ~f =
  { Predictor.name; on_branch = f; reset = (fun () -> ()); storage_bits = 0; kernel = None }

let perfect () = constant ~name:"perfect" ~f:(fun ~pc:_ ~taken:_ -> true)
let always_taken () = constant ~name:"static-taken" ~f:(fun ~pc:_ ~taken -> taken)
let always_not_taken () = constant ~name:"static-not-taken" ~f:(fun ~pc:_ ~taken -> not taken)
