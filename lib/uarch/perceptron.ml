let create ?(table_entries_log2 = 8) ?(history_bits = 32) ?(threshold = -1) () =
  if history_bits < 1 || history_bits > 62 then
    invalid_arg "Perceptron.create: history_bits out of [1,62]";
  let entries = 1 lsl table_entries_log2 in
  let threshold =
    if threshold >= 0 then threshold
    else int_of_float ((1.93 *. float_of_int history_bits) +. 14.0)
  in
  (* weights.(i) holds history_bits + 1 signed weights (bias first). *)
  let weights = Array.make_matrix entries (history_bits + 1) 0 in
  let max_weight = 127 and min_weight = -128 in
  let history = ref 0 in
  (* bit i = outcome of the branch i steps ago *)
  let history_mask = (1 lsl history_bits) - 1 in
  let on_branch ~pc ~taken =
    let index = Predictor.hash_pc pc land (entries - 1) in
    let w = weights.(index) in
    let y = ref w.(0) in
    for i = 0 to history_bits - 1 do
      (* Bipolar history: taken = +1, not-taken = -1. *)
      if (!history lsr i) land 1 = 1 then y := !y + w.(i + 1) else y := !y - w.(i + 1)
    done;
    let prediction = !y >= 0 in
    (* Train on misprediction or weak output. *)
    if prediction <> taken || abs !y <= threshold then begin
      let t = if taken then 1 else -1 in
      w.(0) <- max min_weight (min max_weight (w.(0) + t));
      for i = 0 to history_bits - 1 do
        let x = if (!history lsr i) land 1 = 1 then 1 else -1 in
        w.(i + 1) <- max min_weight (min max_weight (w.(i + 1) + (t * x)))
      done
    end;
    history := ((!history lsl 1) lor (if taken then 1 else 0)) land history_mask;
    prediction = taken
  in
  let reset () =
    Array.iter (fun w -> Array.fill w 0 (Array.length w) 0) weights;
    history := 0
  in
  {
    Predictor.name = Printf.sprintf "perceptron-%d/%d" table_entries_log2 history_bits;
    on_branch;
    reset;
    storage_bits = entries * (history_bits + 1) * 8;
    kernel = None;
  }
