(** The 145-configuration predictor sweep of the paper's Section 3.

    The paper validates linearity of CPI in MPKI by simulating 145 branch
    predictor configurations of varying accuracy (plus a perfect predictor
    and L-TAGE) in MASE, regressing CPI on MPKI over the imperfect
    configurations, and checking the regression's prediction at MPKI = 0
    against true perfect-prediction CPI, and at L-TAGE's MPKI against true
    L-TAGE CPI. We run the same study on our pipeline model. *)

val configurations : unit -> (string * (unit -> Predictor.t)) list
(** Exactly 145 imperfect configurations: bimodal, gshare, GAs and hybrid
    predictors over a range of table sizes and history lengths, plus the
    static predictors. The list is memoized (the grid is immutable and each
    [make] is a pure constructor), so repeated calls return the same list;
    a grid edit that changes the count raises [Invalid_argument] with the
    observed count. *)

type point = { config_name : string; mpki : float; cpi : float }

type source = Replayed | Predicted
(** How a grid point's values were obtained: simulated truth, or filled in
    by the steering surrogate. *)

type steering =
  | Budget of int
      (** replay at most this many grid lanes (clamped to [2 .. n]; a
          budget covering the whole grid shortcuts to the plain fused
          path, bit-identically) *)
  | Max_err of float
      (** keep replaying until the surrogate's relative CPI uncertainty is
          below this percentage everywhere (reaching the whole grid in the
          worst case) *)

type study = {
  benchmark : string;
  points : point array;  (** the 145 imperfect configurations *)
  perfect_cpi : float;  (** simulated perfect-prediction CPI *)
  ltage_point : point;  (** simulated L-TAGE *)
  regression : Pi_stats.Linreg.t;  (** CPI ~ MPKI over [points] *)
  predicted_perfect_cpi : float;
  perfect_error_percent : float;  (** |predicted - actual| / actual * 100 *)
  predicted_ltage_cpi : float;
  ltage_error_percent : float;
  warmup_blocks : int;  (** leading blocks excluded from every count *)
  fused_lanes : int;  (** configurations swept by the fused one-pass engine *)
  fallback_lanes : int;  (** configurations on the sequential per-config path
      (all of them when [fused=false]) *)
  shards : int;  (** fused sub-batches executed (0 when [fused=false]) *)
  sources : source array;  (** aligned with [points]; all [Replayed] unless
      the study was surrogate-steered *)
  replayed_lanes : int;  (** grid points carrying simulated truth *)
  surrogate_rounds : int;  (** steering fit-replay rounds (0 when unsteered) *)
  surrogate_max_abs_err : float;
      (** max abs CPI error, percent, of the surrogate's pre-replay
          predictions against the replayed holdout lanes (0 when unsteered
          or when no steering round ran) *)
  surrogate_mean_abs_err : float;  (** mean of the same holdout errors *)
  grid_seconds : float;  (** wall seconds spent replaying the grid *)
  lane_seconds : float;  (** [grid_seconds / replayed_lanes] — the measured
      per-lane replay cost steering budgets against *)
}

type shard_map = (int -> Pipeline.counts array) -> int -> Pipeline.counts array array
(** [map f n] evaluates [f 0 .. f (n-1)] — sequentially or in parallel —
    and returns the results in index order. {!Pi_campaign.Campaign.sweep_shard_map}
    provides a domain-parallel implementation; the default is sequential. *)

val run_grid :
  ?base:Pipeline.config ->
  ?plan:Replay.plan ->
  ?warmup_blocks:int ->
  ?shards:int ->
  ?map_shards:shard_map ->
  ?fused:bool ->
  Pi_isa.Trace.t ->
  Pi_layout.Placement.t ->
  point array * int * int * int * float
(** Just the 145-configuration grid of {!run_study}, without the perfect
    and L-TAGE reference simulations or the regression: the unit the fused
    engine accelerates, and the timing target of the sweep benchmark
    ([BENCH_sweep.json]). Returns
    [(points, fused_lanes, fallback_lanes, shards, grid_seconds)]; all
    arguments behave as in {!run_study}. *)

val run_study :
  ?base:Pipeline.config ->
  ?plan:Replay.plan ->
  ?warmup_blocks:int ->
  ?shards:int ->
  ?map_shards:shard_map ->
  ?fused:bool ->
  ?surrogate:steering ->
  benchmark:string ->
  Pi_isa.Trace.t ->
  Pi_layout.Placement.t ->
  study
(** Simulate every configuration on the given trace/placement (noise-free,
    as a simulator would) and evaluate the linear extrapolations. [base]
    defaults to {!Machine.xeon_e5440}. [plan] supplies a precompiled plan
    for [base] and the trace (callers running several studies on one trace
    — a placement sweep, or benchmarking — compile once and pass it here);
    it must be [Replay.compile base trace] or the study is meaningless.

    By default ([fused], on) every kernel-bearing configuration is swept in
    one {!Replay.run_many} pass over the compiled plan — optionally split
    into [shards] lane shards (default 1) evaluated through [map_shards]
    (default sequential; pass a {!shard_map} backed by
    [Pi_campaign.Scheduler] for domain parallelism) — and only the
    kernel-less configurations (the static predictors), plus perfect and
    L-TAGE, take the sequential per-config path. [fused:false] forces the
    sequential loop for everything; results are bit-identical either way,
    and the merge order is deterministic regardless of [shards].

    [surrogate] switches on steering: the study seeds with a deterministic
    space-filling subset of the grid (anchored on the static predictors),
    fits a {!Pi_stats.Surrogate} per target metric in log space, and
    replays — fused, via {!Replay.batch_of} sub-batches — only the lanes
    whose predicted CPI uncertainty still exceeds the tolerance
    ([Max_err]) or ranks highest under the lane budget ([Budget]),
    filling the rest from the model. [sources] tags each point, and
    [surrogate_max_abs_err]/[surrogate_mean_abs_err] report the model's
    pre-replay predictions against every lane that was subsequently
    replayed. Steering is deterministic: no RNG anywhere, so two steered
    runs of the same study replay the same lanes. *)

(** {1 The cache-geometry axis}

    INTERPLAY (PAPERS.md) predicts performance degradation under
    multi-cache way-disabling with a trained model; interferometry answers
    the same question with a regression over simulated geometry variants.
    The grid sweeps 10 variants of each seed cache — way-disabling to
    1..8 ways (set count preserved, capacity shrunk) plus a half-size and
    a double-size geometry at the seed associativity — crossed over L1I
    and L2: 100 points, one of which ([l1i-w8+l2-w8] on the 8-way seed
    machines) is the seed machine itself. *)

type cache_variant =
  | Ways of int  (** way-disable to [k] ways; sets constant *)
  | Half  (** half capacity at seed associativity *)
  | Double  (** double capacity at seed associativity *)

val cache_configurations : unit -> (string * cache_variant * cache_variant) list
(** Exactly 100 symbolic (name, L1I variant, L2 variant) descriptors,
    memoized like {!configurations}; a grid edit that changes the count
    raises [Invalid_argument] with the observed count. Descriptors are
    materialized against a machine's seed geometries by the cache sweep,
    which validates every variant ([Ways k] with [k] above the seed
    associativity, or a half-size that breaks the set-count power of two,
    raises [Invalid_argument]); duplicate materialized geometry pairs are
    rejected by {!Replay.cache_batch_of}. *)

val apply_cache_variant : Cache.geometry -> cache_variant -> Cache.geometry
(** Materialize one variant against a seed geometry, validating it (see
    {!cache_configurations}). [Ways k] preserves the set count; [Half] and
    [Double] preserve the associativity. *)

type cache_point = {
  geometry_name : string;
  l1i_geometry : Cache.geometry;
  l2_geometry : Cache.geometry;
  l1i_mpki : float;  (** L1I misses per kilo-instruction *)
  l2_mpki : float;  (** L2 misses per kilo-instruction *)
  cache_cpi : float;
}

type cache_study = {
  cache_benchmark : string;
  cache_points : cache_point array;  (** all 100 geometries, grid order *)
  seed_point : cache_point;  (** the lane matching the seed geometries *)
  degradation : Pi_stats.Multireg.t;
      (** CPI ~ (L1I MPKI, L2 MPKI) over the 99 degraded points *)
  predicted_seed_cpi : float;  (** the model at the seed point's miss rates *)
  seed_error_percent : float;  (** |predicted - actual| / actual * 100 *)
  cache_warmup_blocks : int;
  cache_fused_lanes : int;
  cache_fallback_lanes : int;  (** all of them when [fused=false], else 0 *)
  cache_shards : int;  (** fused sub-batches executed (0 when [fused=false]) *)
  cache_sources : source array;  (** aligned with [cache_points] *)
  cache_replayed_lanes : int;
  cache_surrogate_rounds : int;
  cache_surrogate_max_abs_err : float;  (** percent CPI, replayed holdouts *)
  cache_surrogate_mean_abs_err : float;
  cache_grid_seconds : float;
  cache_lane_seconds : float;
}

val run_cache_grid :
  ?base:Pipeline.config ->
  ?plan:Replay.plan ->
  ?warmup_blocks:int ->
  ?shards:int ->
  ?map_shards:shard_map ->
  ?fused:bool ->
  Pi_isa.Trace.t ->
  Pi_layout.Placement.t ->
  cache_point array * int * int * int * float
(** Just the 100-geometry grid of {!run_cache_study}, without the
    regression: the unit the fused cache axis accelerates, and the timing
    target of [BENCH_cache_sweep.json]. Returns
    [(points, fused_lanes, fallback_lanes, shards, grid_seconds)]; all
    arguments behave as in {!run_study} (the fused batch is one
    {!Replay.cache_batch_of} pack, memoized per seed-geometry pair). *)

val run_cache_study :
  ?base:Pipeline.config ->
  ?plan:Replay.plan ->
  ?warmup_blocks:int ->
  ?shards:int ->
  ?map_shards:shard_map ->
  ?fused:bool ->
  ?surrogate:steering ->
  benchmark:string ->
  Pi_isa.Trace.t ->
  Pi_layout.Placement.t ->
  cache_study
(** Simulate every geometry on the given trace/placement, fit the
    degradation model over the 99 degraded points and evaluate its
    prediction at the seed point's miss rates against the simulated seed
    CPI. Sharding/fusion arguments behave exactly as in {!run_study};
    results are bit-identical across [fused] and [shards] settings.
    [surrogate] steers exactly as in {!run_study}, on
    {!Pi_stats.Surrogate.geometry_features} of the L1I/L2 pair, with the
    seed machine's lane anchored into the replayed set. *)
