(** The 145-configuration predictor sweep of the paper's Section 3.

    The paper validates linearity of CPI in MPKI by simulating 145 branch
    predictor configurations of varying accuracy (plus a perfect predictor
    and L-TAGE) in MASE, regressing CPI on MPKI over the imperfect
    configurations, and checking the regression's prediction at MPKI = 0
    against true perfect-prediction CPI, and at L-TAGE's MPKI against true
    L-TAGE CPI. We run the same study on our pipeline model. *)

val configurations : unit -> (string * (unit -> Predictor.t)) list
(** Exactly 145 imperfect configurations: bimodal, gshare, GAs and hybrid
    predictors over a range of table sizes and history lengths, plus the
    static predictors. The list is memoized (the grid is immutable and each
    [make] is a pure constructor), so repeated calls return the same list;
    a grid edit that changes the count raises [Invalid_argument] with the
    observed count. *)

type point = { config_name : string; mpki : float; cpi : float }

type study = {
  benchmark : string;
  points : point array;  (** the 145 imperfect configurations *)
  perfect_cpi : float;  (** simulated perfect-prediction CPI *)
  ltage_point : point;  (** simulated L-TAGE *)
  regression : Pi_stats.Linreg.t;  (** CPI ~ MPKI over [points] *)
  predicted_perfect_cpi : float;
  perfect_error_percent : float;  (** |predicted - actual| / actual * 100 *)
  predicted_ltage_cpi : float;
  ltage_error_percent : float;
  warmup_blocks : int;  (** leading blocks excluded from every count *)
  fused_lanes : int;  (** configurations swept by the fused one-pass engine *)
  fallback_lanes : int;  (** configurations on the sequential per-config path
      (all of them when [fused=false]) *)
  shards : int;  (** fused sub-batches executed (0 when [fused=false]) *)
}

type shard_map = (int -> Pipeline.counts array) -> int -> Pipeline.counts array array
(** [map f n] evaluates [f 0 .. f (n-1)] — sequentially or in parallel —
    and returns the results in index order. {!Pi_campaign.Campaign.sweep_shard_map}
    provides a domain-parallel implementation; the default is sequential. *)

val run_grid :
  ?base:Pipeline.config ->
  ?plan:Replay.plan ->
  ?warmup_blocks:int ->
  ?shards:int ->
  ?map_shards:shard_map ->
  ?fused:bool ->
  Pi_isa.Trace.t ->
  Pi_layout.Placement.t ->
  point array * int * int * int
(** Just the 145-configuration grid of {!run_study}, without the perfect
    and L-TAGE reference simulations or the regression: the unit the fused
    engine accelerates, and the timing target of the sweep benchmark
    ([BENCH_sweep.json]). Returns
    [(points, fused_lanes, fallback_lanes, shards)]; all arguments behave
    as in {!run_study}. *)

val run_study :
  ?base:Pipeline.config ->
  ?plan:Replay.plan ->
  ?warmup_blocks:int ->
  ?shards:int ->
  ?map_shards:shard_map ->
  ?fused:bool ->
  benchmark:string ->
  Pi_isa.Trace.t ->
  Pi_layout.Placement.t ->
  study
(** Simulate every configuration on the given trace/placement (noise-free,
    as a simulator would) and evaluate the linear extrapolations. [base]
    defaults to {!Machine.xeon_e5440}. [plan] supplies a precompiled plan
    for [base] and the trace (callers running several studies on one trace
    — a placement sweep, or benchmarking — compile once and pass it here);
    it must be [Replay.compile base trace] or the study is meaningless.

    By default ([fused], on) every kernel-bearing configuration is swept in
    one {!Replay.run_many} pass over the compiled plan — optionally split
    into [shards] lane shards (default 1) evaluated through [map_shards]
    (default sequential; pass a {!shard_map} backed by
    [Pi_campaign.Scheduler] for domain parallelism) — and only the
    kernel-less configurations (the static predictors), plus perfect and
    L-TAGE, take the sequential per-config path. [fused:false] forces the
    sequential loop for everything; results are bit-identical either way,
    and the merge order is deterministic regardless of [shards]. *)
