(** Shared clocks for the whole stack.

    Durations must come from a monotonic clock: the wall clock
    ([Unix.gettimeofday]) is stepped by NTP and can make an elapsed-time
    subtraction jump backwards mid-measurement. Every duration in the
    repository ({!Pi_campaign.Scheduler} job times, campaign wall time,
    {!Interferometry.Perf_bench} phases, {!Span} traces) goes through
    {!now}; the wall clock survives only as the human-readable [ts]
    timestamp on telemetry events and manifests. *)

val now : unit -> float
(** Seconds on [CLOCK_MONOTONIC] (arbitrary epoch, never steps backwards).
    Only differences between two {!now} values are meaningful. *)

val wall : unit -> float
(** [Unix.gettimeofday] — unix-epoch seconds, for timestamps only. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]. *)
