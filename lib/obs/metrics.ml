(* Sharded instruments: every domain updates its own Atomic.t slot, picked
   by domain id. Domain ids grow monotonically over the process lifetime,
   so they are folded into a fixed power-of-two shard array; a collision
   (two live domains masking to the same slot) only costs an occasionally
   contended fetch-and-add — updates stay atomic, nothing is lost. *)

let shard_count = 64 (* power of two; >> any realistic --jobs value *)
let[@inline] shard_index () = (Domain.self () :> int) land (shard_count - 1)

type counter = int Atomic.t array

type gauge = float Atomic.t

type histogram = {
  bounds : float array;
  (* shard -> bucket -> count; one extra overflow bucket past the last bound *)
  h_counts : int Atomic.t array array;
  h_sums : float Atomic.t array;
}

let inc (c : counter) = ignore (Atomic.fetch_and_add (Array.unsafe_get c (shard_index ())) 1)
let add (c : counter) n = ignore (Atomic.fetch_and_add (Array.unsafe_get c (shard_index ())) n)
let counter_value (c : counter) = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

let set (g : gauge) v = Atomic.set g v
let gauge_value (g : gauge) = Atomic.get g

(* CAS loop over the boxed float, same shape as the histogram sums: an
   in-flight gauge is bumped and dropped from many server threads, so the
   read-modify-write must be atomic end to end. *)
let rec gauge_add (g : gauge) v =
  let old = Atomic.get g in
  if not (Atomic.compare_and_set g old (old +. v)) then gauge_add g v

let default_buckets =
  [|
    1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0;
    2.5; 5.0; 10.0; 30.0; 60.0; 120.0; 300.0;
  |]

(* First bucket whose upper bound admits [v]; the overflow bucket is
   [Array.length bounds]. Binary search: bounds are tiny but this keeps
   observe O(log n) regardless of caller-supplied bucket counts. *)
let bucket_for bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= Array.unsafe_get bounds mid then hi := mid else lo := mid + 1
  done;
  !lo

(* CAS loop over the boxed float: [Atomic.compare_and_set] compares the
   box physically, so re-reading on failure is exactly the retry we want.
   Contention is already rare thanks to sharding. *)
let rec atomic_float_add a v =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. v)) then atomic_float_add a v

let observe (h : histogram) v =
  let s = shard_index () in
  let counts = Array.unsafe_get h.h_counts s in
  ignore (Atomic.fetch_and_add (Array.unsafe_get counts (bucket_for h.bounds v)) 1);
  atomic_float_add (Array.unsafe_get h.h_sums s) v

type hist_snapshot = {
  bounds : float array;
  bucket_counts : int array;
  count : int;
  sum : float;
}

let snapshot (h : histogram) =
  let n_buckets = Array.length h.bounds + 1 in
  let bucket_counts = Array.make n_buckets 0 in
  Array.iter
    (fun shard ->
      Array.iteri (fun b a -> bucket_counts.(b) <- bucket_counts.(b) + Atomic.get a) shard)
    h.h_counts;
  {
    bounds = h.bounds;
    bucket_counts;
    count = Array.fold_left ( + ) 0 bucket_counts;
    sum = Array.fold_left (fun acc a -> acc +. Atomic.get a) 0.0 h.h_sums;
  }

let quantile s q =
  if s.count = 0 then Float.nan
  else begin
    let rank = q *. float_of_int s.count in
    let n = Array.length s.bounds in
    let rec find b cum =
      if b >= n then s.bounds.(n - 1) (* overflow: clamp to the last bound *)
      else
        let cum' = cum + s.bucket_counts.(b) in
        if float_of_int cum' >= rank && s.bucket_counts.(b) > 0 then begin
          let lower = if b = 0 then 0.0 else s.bounds.(b - 1) in
          let upper = s.bounds.(b) in
          let within = (rank -. float_of_int cum) /. float_of_int s.bucket_counts.(b) in
          lower +. ((upper -. lower) *. Float.max 0.0 (Float.min 1.0 within))
        end
        else find (b + 1) cum'
    in
    if n = 0 then s.sum /. float_of_int s.count else find 0 0
  end

(* ---------------- Registry ---------------- *)

type metric = C of counter | G of gauge | H of histogram

type entry = { e_name : string; e_help : string; e_labels : (string * string) list; e_metric : metric }

let registry : (string * (string * string) list, entry) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register ~name ~help ~labels make check =
  Mutex.protect registry_mutex (fun () ->
      let key = (name, labels) in
      match Hashtbl.find_opt registry key with
      | Some e -> check e
      | None ->
          let e = { e_name = name; e_help = help; e_labels = labels; e_metric = make () } in
          Hashtbl.replace registry key e;
          check e)

let mismatch name wanted e =
  invalid_arg
    (Printf.sprintf "Pi_obs.Metrics: %s already registered as a %s, wanted a %s" name
       (kind_name e.e_metric) wanted)

let counter ?(help = "") ?(labels = []) name =
  register ~name ~help ~labels
    (fun () -> C (Array.init shard_count (fun _ -> Atomic.make 0)))
    (fun e -> match e.e_metric with C c -> c | _ -> mismatch name "counter" e)

let gauge ?(help = "") ?(labels = []) name =
  register ~name ~help ~labels
    (fun () -> G (Atomic.make 0.0))
    (fun e -> match e.e_metric with G g -> g | _ -> mismatch name "gauge" e)

let histogram ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg
          (Printf.sprintf "Pi_obs.Metrics: %s buckets must be strictly increasing" name))
    buckets;
  register ~name ~help ~labels
    (fun () ->
      H
        {
          bounds = Array.copy buckets;
          h_counts =
            Array.init shard_count (fun _ ->
                Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0));
          h_sums = Array.init shard_count (fun _ -> Atomic.make 0.0);
        })
    (fun e ->
      match e.e_metric with
      | H h ->
          if h.bounds <> buckets then
            invalid_arg
              (Printf.sprintf "Pi_obs.Metrics: %s re-registered with different buckets" name);
          h
      | _ -> mismatch name "histogram" e)

(* ---------------- Scraping ---------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

let scrape () =
  let entries = Mutex.protect registry_mutex (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) registry []) in
  entries
  |> List.map (fun e ->
         {
           name = e.e_name;
           help = e.e_help;
           labels = e.e_labels;
           value =
             (match e.e_metric with
             | C c -> Counter (counter_value c)
             | G g -> Gauge (gauge_value g)
             | H h -> Histogram (snapshot h));
         })
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

(* Prometheus text exposition. Floats use the shortest representation
   that round-trips, mirroring Telemetry's JSON rendering. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label_value v ^ "\"") labels)
      ^ "}"

let to_prometheus () =
  let buf = Buffer.create 4096 in
  let last_header = ref "" in
  List.iter
    (fun s ->
      let kind =
        match s.value with Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"
      in
      if !last_header <> s.name then begin
        last_header := s.name;
        if s.help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" s.name s.help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.name kind)
      end;
      match s.value with
      | Counter v ->
          Buffer.add_string buf (Printf.sprintf "%s%s %d\n" s.name (render_labels s.labels) v)
      | Gauge v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.name (render_labels s.labels) (float_repr v))
      | Histogram h ->
          let cumulative = ref 0 in
          Array.iteri
            (fun b count ->
              cumulative := !cumulative + count;
              let le =
                if b < Array.length h.bounds then float_repr h.bounds.(b) else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.name
                   (render_labels (s.labels @ [ ("le", le) ]))
                   !cumulative))
            h.bucket_counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.name (render_labels s.labels) (float_repr h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name (render_labels s.labels) h.count))
    (scrape ());
  Buffer.contents buf

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save_prometheus ~path =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_prometheus ()))
