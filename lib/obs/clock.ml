(* Monotonic_clock (bechamel's C stub) reads CLOCK_MONOTONIC in
   nanoseconds; 2^53 ns of float precision covers ~104 days of uptime,
   far beyond any campaign. *)

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9
let wall = Unix.gettimeofday
let elapsed t0 = now () -. t0
