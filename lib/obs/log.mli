(** Leveled structured logging for the whole stack.

    Replaces ad-hoc [Printf.eprintf]: every record has a level, a
    printf-formatted message and optional key-value fields, and the
    effective level is a process knob — [PI_LOG] in the environment
    ([quiet], [error], [warn] (default), [info], [debug]) or
    {!set_level} programmatically. [PI_LOG=quiet] silences everything,
    which is how CI mutes knob warnings and run headers.

    Writes are serialized by a mutex so scheduler domains may log
    concurrently; suppressed records cost one atomic load and are still
    counted in the [pi_obs_log_messages_total] metric, so a quiet run
    remains auditable from its metrics scrape. *)

type level = Debug | Info | Warn | Error

val set_level : level option -> unit
(** [Some l] shows records at [l] and above; [None] is quiet (shows
    nothing). Overrides the [PI_LOG] environment initialisation. *)

val level : unit -> level option

val level_of_string : string -> level option option
(** Parses [PI_LOG] values: ["debug"], ["info"], ["warn"], ["error"]
    to [Some (Some l)]; ["quiet"]/["off"]/["none"] to [Some None];
    anything else to [None] (unrecognized). *)

val debug : ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a
val info : ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a
val warn : ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a
val error : ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a
(** [warn ~fields:[("bench", b)] "fmt" ...] renders as
    ["[pi:warn] message (bench=b)"] on stderr (unless replaced by
    {!set_writer}). *)

val set_writer : (level -> string -> unit) option -> unit
(** Replace the stderr writer (e.g. to capture records in tests);
    [None] restores the default. The writer receives fully rendered
    lines for records that passed the level filter. *)
