type record = {
  ts : float;
  kind : string;
  label : string;
  config_digest : string;
  metrics : (string * float) list;
}

let make ?ts ~kind ~label ~config_digest metrics =
  let ts = match ts with Some ts -> ts | None -> Clock.wall () in
  let metrics =
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) metrics
  in
  { ts; kind; label; config_digest; metrics }

(* ---------------- Rendering ---------------- *)

let escape_json buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let json_number f = if Float.is_finite f then Metrics.float_repr f else "0"

let render r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"ts\":";
  Buffer.add_string buf (json_number r.ts);
  Buffer.add_string buf ",\"kind\":";
  escape_json buf r.kind;
  Buffer.add_string buf ",\"label\":";
  escape_json buf r.label;
  Buffer.add_string buf ",\"config_digest\":";
  escape_json buf r.config_digest;
  Buffer.add_string buf ",\"metrics\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape_json buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf (json_number v))
    r.metrics;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* ---------------- Parsing ----------------

   The payload grammar is the fixed shape [render] emits: one object of
   scalars plus one nested object of numbers. A minimal recursive
   scanner is enough — pi_obs cannot depend on pi_campaign's hardened
   Telemetry parser without inverting the dependency arrow. *)

exception Bad of string

type jv = S of string | N of float | O of (string * jv) list

let parse_payload_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad msg) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C at %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            (* Records only ever escape control characters; anything in
               the BMP below 0x80 round-trips, the rest degrades to '?'. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?'
        | _ -> fail "bad escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail (Printf.sprintf "expected number at %d" start);
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> S (parse_string ())
    | Some '{' -> O (parse_object ())
    | Some _ -> N (parse_number ())
    | None -> fail "unexpected end of input"
  and parse_object () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      []
    end
    else begin
      let rec fields acc =
        let key = (skip_ws (); parse_string ()) in
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
        | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
        | _ -> fail "expected ',' or '}'"
      in
      fields []
    end
  in
  let v = parse_object () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_payload payload =
  match parse_payload_exn payload with
  | exception Bad msg -> Error msg
  | fields ->
      let str key =
        match List.assoc_opt key fields with
        | Some (S s) -> Ok s
        | Some _ -> Error (Printf.sprintf "field %S is not a string" key)
        | None -> Error (Printf.sprintf "missing field %S" key)
      in
      let num key =
        match List.assoc_opt key fields with
        | Some (N f) -> Ok f
        | Some _ -> Error (Printf.sprintf "field %S is not a number" key)
        | None -> Error (Printf.sprintf "missing field %S" key)
      in
      let ( let* ) = Result.bind in
      let* ts = num "ts" in
      let* kind = str "kind" in
      let* label = str "label" in
      let* config_digest = str "config_digest" in
      let* metrics =
        match List.assoc_opt "metrics" fields with
        | Some (O ms) ->
            let rec collect acc = function
              | [] -> Ok (List.rev acc)
              | (k, N f) :: rest -> collect ((k, f) :: acc) rest
              | (k, _) :: _ -> Error (Printf.sprintf "metric %S is not a number" k)
            in
            collect [] ms
        | Some _ -> Error "field \"metrics\" is not an object"
        | None -> Error "missing field \"metrics\""
      in
      Ok { ts; kind; label; config_digest; metrics }

(* ---------------- Digest framing ----------------

   Same frame as the serve WAL: [md5_hex(payload) ^ " " ^ payload],
   one record per line. Unlike the WAL — whose records form a causal
   sequence, so everything after the first bad record is suspect —
   history records are independent observations: a bad line is skipped
   and counted, the rest still load. Only the torn (unterminated) tail
   is silently expected, from a crash mid-append. *)

let digest_len = 32 (* md5 hex *)

let digest_hex payload = Digest.to_hex (Digest.string payload)

let frame payload = digest_hex payload ^ " " ^ payload

let parse_record line =
  let len = String.length line in
  if len < digest_len + 2 then Error "line too short for digest frame"
  else if line.[digest_len] <> ' ' then Error "missing digest separator"
  else
    let digest = String.sub line 0 digest_len in
    let payload = String.sub line (digest_len + 1) (len - digest_len - 1) in
    let ok_hex =
      String.for_all
        (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
        digest
    in
    if not ok_hex then Error "digest is not lowercase hex"
    else if not (String.equal digest (digest_hex payload)) then
      Error "digest mismatch"
    else parse_payload payload

type replay = { records : record list; invalid_lines : int; torn_tail : bool }

let read ~path =
  if not (Sys.file_exists path) then
    { records = []; invalid_lines = 0; torn_tail = false }
  else begin
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let len = String.length content in
    let torn_tail = len > 0 && content.[len - 1] <> '\n' in
    let body =
      if not torn_tail then content
      else
        match String.rindex_opt content '\n' with
        | Some i -> String.sub content 0 (i + 1)
        | None -> ""
    in
    let lines = String.split_on_char '\n' body in
    let records, invalid =
      List.fold_left
        (fun (acc, bad) line ->
          if line = "" then (acc, bad)
          else
            match parse_record line with
            | Ok r -> (r :: acc, bad)
            | Error _ -> (acc, bad + 1))
        ([], 0) lines
    in
    { records = List.rev records; invalid_lines = invalid; torn_tail }
  end

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append ~path r =
  mkdir_p (Filename.dirname path);
  (* O_RDWR, not O_WRONLY: the torn-tail probe below reads the last byte
     back through this same descriptor. O_APPEND keeps every write at the
     end regardless of where the probe leaves the offset. *)
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      (* Self-heal a torn tail: if the previous append died mid-line,
         start this record on a fresh line so it frames cleanly; the
         torn fragment becomes one invalid line that [read] skips. *)
      let size = (Unix.fstat fd).Unix.st_size in
      let needs_newline =
        size > 0
        &&
        let buf = Bytes.create 1 in
        ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
        let n = Unix.read fd buf 0 1 in
        ignore (Unix.lseek fd 0 Unix.SEEK_END);
        n = 1 && Bytes.get buf 0 <> '\n'
      in
      let line =
        (if needs_newline then "\n" else "") ^ frame (render r) ^ "\n"
      in
      let bytes = Bytes.of_string line in
      let total = Bytes.length bytes in
      let written = ref 0 in
      while !written < total do
        written := !written + Unix.write fd bytes !written (total - !written)
      done;
      Unix.fsync fd)

(* ---------------- Regression comparison ---------------- *)

type direction = Higher_better | Lower_better

type rule = { suffix : string; direction : direction; tol_percent : float }

let default_rules =
  [
    { suffix = "_per_sec"; direction = Higher_better; tol_percent = 50.0 };
    { suffix = "speedup"; direction = Higher_better; tol_percent = 50.0 };
    { suffix = "r_squared"; direction = Higher_better; tol_percent = 5.0 };
    { suffix = "failed_jobs"; direction = Lower_better; tol_percent = 0.0 };
    (* Surrogate accuracy metrics (steered sweeps, PR-10): prediction
       errors are lower-better, and they live near zero, so relative
       jitter is large — only a doubling trips the gate. *)
    { suffix = "_abs_err"; direction = Lower_better; tol_percent = 100.0 };
    { suffix = "_max_err"; direction = Lower_better; tol_percent = 100.0 };
  ]

let rule_for rules metric =
  List.find_opt
    (fun r ->
      let ls = String.length r.suffix and lm = String.length metric in
      lm >= ls && String.equal (String.sub metric (lm - ls) ls) r.suffix)
    rules

type delta = {
  metric : string;
  before : float;
  after : float;
  delta_percent : float;
  rule : rule option;
  regression : bool;
}

let compare_metrics ?(rules = default_rules) ~before ~after () =
  List.filter_map
    (fun (name, b) ->
      match List.assoc_opt name after with
      | None -> None
      | Some a ->
          let delta_percent =
            if b = 0.0 then if a = 0.0 then 0.0 else Float.infinity *. (if a > 0.0 then 1.0 else -1.0)
            else (a -. b) /. Float.abs b *. 100.0
          in
          let rule = rule_for rules name in
          let regression =
            match rule with
            | None -> false
            | Some r -> (
                match r.direction with
                | Higher_better ->
                    (* A throughput gate needs both sides live: a zero
                       side means "didn't run" (e.g. a fully-cached
                       campaign computed nothing), not a regression. *)
                    b > 0.0 && a > 0.0 && delta_percent < -.r.tol_percent
                | Lower_better -> delta_percent > r.tol_percent)
          in
          Some { metric = name; before = b; after = a; delta_percent; rule; regression })
    before

let regressions deltas = List.filter (fun d -> d.regression) deltas
