(** Hierarchical stage tracing, exported as Chrome trace-event JSON.

    [Span.with_ ~name f] times [f] on the monotonic clock ({!Clock.now})
    and records the GC allocation delta observed by the recording domain.
    Spans nest naturally — each domain tracks its depth in domain-local
    storage — and the export is the Chrome trace-event format
    ([{"traceEvents":[...]}], complete events, [ph:"X"]), which Perfetto
    and [about:tracing] load directly: one track per domain, nested
    ranges per span.

    Collection is {e off} by default: a disabled [with_] is one atomic
    load plus the call. Enable with {!set_enabled} (the CLI [--trace-out]
    flag and the bench harness do). Completed spans append to a global
    mutex-protected buffer — spans mark stages (prepare, job, replay,
    fit), not inner-loop events, so the lock is nowhere hot. The buffer
    is bounded ({!set_buffer_capacity}); once full, further spans are
    counted in [pi_obs_spans_dropped_total] instead of accumulating, so
    a long-running daemon with [--trace-out] cannot grow without limit.

    Independent of the global buffer, a {!collector} captures the spans
    of one logical unit of work (a daemon job) on whichever thread runs
    it — see {!with_collector}. Collectors are keyed by thread id, not
    domain id, because server workers are threads sharing domain 0.

    Span hierarchy across the stack is documented in
    docs/OBSERVABILITY.md. *)

type event = {
  name : string;
  cat : string;  (** Chrome trace category, default ["pi"] *)
  ts : float;  (** monotonic seconds at span start *)
  dur : float;  (** seconds *)
  tid : int;  (** recording domain id *)
  depth : int;  (** nesting depth within the domain at start *)
  alloc_bytes : float;  (** GC allocation delta over the span *)
  args : (string * string) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_buffer_capacity : int -> unit
(** Cap on the global buffer (default 65536 spans). Spans completing
    against a full buffer are dropped and counted in
    [pi_obs_spans_dropped_total]. Raises [Invalid_argument] on [n < 1]. *)

val buffer_capacity : unit -> int

val with_ : ?cat:string -> ?args:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Runs [f], recording a completed span even when [f] raises. When
    disabled (and no collector is attached to this thread), just runs
    [f]. *)

val events : unit -> event list
(** Completed spans in completion order (children before parents). *)

val clear : unit -> unit

(** {1 Per-thread collectors} *)

type collector
(** A bounded, mutex-protected span sink for one unit of work. Spans
    past [capacity] are dropped and counted in
    [pi_obs_spans_dropped_total]. *)

val collector : ?capacity:int -> unit -> collector
(** Default capacity 4096 spans. *)

val with_collector : collector -> (unit -> 'a) -> 'a
(** [with_collector c f] attaches [c] to the calling thread for the
    duration of [f]: every span completed by this thread is also
    appended to [c] (the global buffer still receives it iff tracing is
    {!enabled}). Nests — the previous collector is restored on exit. *)

val collector_events : collector -> event list
(** Captured spans in completion order. *)

val add_event : collector -> event -> unit
(** Append a synthetic event (e.g. a queue-delay span reconstructed
    after the fact) subject to the collector's capacity. *)

val events_to_chrome_json : event list -> string
(** Render an explicit event list in Chrome trace-event format. *)

val to_chrome_json : unit -> string
(** [{"displayTimeUnit":"ms","traceEvents":[...]}] with timestamps and
    durations in microseconds, one complete ("ph":"X") event per span —
    the global buffer's contents. *)

val save : path:string -> unit
(** Write {!to_chrome_json} to [path], creating parent directories. *)
