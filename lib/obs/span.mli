(** Hierarchical stage tracing, exported as Chrome trace-event JSON.

    [Span.with_ ~name f] times [f] on the monotonic clock ({!Clock.now})
    and records the GC allocation delta observed by the recording domain.
    Spans nest naturally — each domain tracks its depth in domain-local
    storage — and the export is the Chrome trace-event format
    ([{"traceEvents":[...]}], complete events, [ph:"X"]), which Perfetto
    and [about:tracing] load directly: one track per domain, nested
    ranges per span.

    Collection is {e off} by default: a disabled [with_] is one atomic
    load plus the call. Enable with {!set_enabled} (the CLI [--trace-out]
    flag and the bench harness do). Completed spans append to a global
    mutex-protected buffer — spans mark stages (prepare, job, replay,
    fit), not inner-loop events, so the lock is nowhere hot.

    Span hierarchy across the stack is documented in
    docs/OBSERVABILITY.md. *)

type event = {
  name : string;
  cat : string;  (** Chrome trace category, default ["pi"] *)
  ts : float;  (** monotonic seconds at span start *)
  dur : float;  (** seconds *)
  tid : int;  (** recording domain id *)
  depth : int;  (** nesting depth within the domain at start *)
  alloc_bytes : float;  (** GC allocation delta over the span *)
  args : (string * string) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_ : ?cat:string -> ?args:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Runs [f], recording a completed span even when [f] raises. When
    disabled, just runs [f]. *)

val events : unit -> event list
(** Completed spans in completion order (children before parents). *)

val clear : unit -> unit

val to_chrome_json : unit -> string
(** [{"displayTimeUnit":"ms","traceEvents":[...]}] with timestamps and
    durations in microseconds, one complete ("ph":"X") event per span. *)

val save : path:string -> unit
(** Write {!to_chrome_json} to [path], creating parent directories. *)
