type level = Debug | Info | Warn | Error

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some (Some Debug)
  | "info" -> Some (Some Info)
  | "warn" | "warning" -> Some (Some Warn)
  | "error" -> Some (Some Error)
  | "quiet" | "off" | "none" -> Some None
  | _ -> None

(* The effective level: 0..3 show that rank and above, 4 shows nothing.
   An int Atomic keeps the hot "is this suppressed?" check a single load. *)
let quiet_rank = 4

let initial =
  match Sys.getenv_opt "PI_LOG" with
  | None -> rank Warn
  | Some raw -> (
      match level_of_string raw with
      | Some (Some l) -> rank l
      | Some None -> quiet_rank
      | None -> rank Warn (* unrecognized: keep the default, warned below *))

let current = Atomic.make initial

let set_level = function
  | Some l -> Atomic.set current (rank l)
  | None -> Atomic.set current quiet_rank

let level () =
  match Atomic.get current with
  | 0 -> Some Debug
  | 1 -> Some Info
  | 2 -> Some Warn
  | 3 -> Some Error
  | _ -> None

let write_mutex = Mutex.create ()
let custom_writer : (level -> string -> unit) option ref = ref None
let set_writer w = Mutex.protect write_mutex (fun () -> custom_writer := w)

(* Submitted records are counted per level whether or not they are shown:
   a silenced CI run can still see from its scrape that warnings fired. *)
let m_messages =
  let mk l =
    ( l,
      Metrics.counter ~help:"log records submitted, by level"
        ~labels:[ ("level", level_name l) ]
        "pi_obs_log_messages_total" )
  in
  [ mk Debug; mk Info; mk Warn; mk Error ]

let render level msg fields =
  let buf = Buffer.create (String.length msg + 32) in
  Buffer.add_string buf "[pi:";
  Buffer.add_string buf (level_name level);
  Buffer.add_string buf "] ";
  Buffer.add_string buf msg;
  (match fields with
  | [] -> ()
  | fields ->
      Buffer.add_string buf " (";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf k;
          Buffer.add_char buf '=';
          Buffer.add_string buf v)
        fields;
      Buffer.add_char buf ')');
  Buffer.contents buf

let submit level fields msg =
  Metrics.inc (List.assoc level m_messages);
  if rank level >= Atomic.get current then begin
    let line = render level msg fields in
    Mutex.protect write_mutex (fun () ->
        match !custom_writer with
        | Some w -> w level line
        | None -> Printf.eprintf "%s\n%!" line)
  end

let logf level ?(fields = []) fmt = Printf.ksprintf (submit level fields) fmt

let debug ?fields fmt = logf Debug ?fields fmt
let info ?fields fmt = logf Info ?fields fmt
let warn ?fields fmt = logf Warn ?fields fmt
let error ?fields fmt = logf Error ?fields fmt

(* An unrecognized PI_LOG value should not silently fall back. *)
let () =
  match Sys.getenv_opt "PI_LOG" with
  | Some raw when level_of_string raw = None ->
      warn "PI_LOG=%S is not a level (quiet|error|warn|info|debug); using warn" raw
  | _ -> ()
