(* Fixed-capacity ring-buffer time series over the metrics registry.

   Single-writer / many-reader: exactly one thread (the sampler loop, or
   whoever calls [record]) appends points; readers never block it. Each
   ring publishes its write position through one [Atomic.t] — a reader
   loads the position (acquire), then reads only slots strictly older
   than it, so the slots it touches were fully written before the
   position was published. A reader racing a wrap can observe a slot
   that was just overwritten, which yields a *newer* point in an *older*
   position — harmless for monitoring, and impossible in the tests,
   which never read concurrently with writes. *)

type point = { ts : float; value : float }

type ring = {
  ts_buf : float array;
  v_buf : float array;
  written : int Atomic.t; (* total points ever appended *)
}

let ring capacity =
  {
    ts_buf = Array.make capacity 0.0;
    v_buf = Array.make capacity 0.0;
    written = Atomic.make 0;
  }

let ring_push r ~capacity ~ts ~value =
  let n = Atomic.get r.written in
  let slot = n mod capacity in
  r.ts_buf.(slot) <- ts;
  r.v_buf.(slot) <- value;
  Atomic.set r.written (n + 1)

let ring_points r ~capacity =
  let n = Atomic.get r.written in
  let count = min n capacity in
  let start = n - count in
  List.init count (fun i ->
      let slot = (start + i) mod capacity in
      { ts = r.ts_buf.(slot); value = r.v_buf.(slot) })

type series = {
  s_name : string;
  s_labels : (string * string) list;
  raw : ring;
  coarse : ring;
  (* downsampling accumulator — touched only by the single writer *)
  mutable acc_sum : float;
  mutable acc_n : int;
  mutable acc_ts : float;
}

type t = {
  capacity : int;
  downsample : int;
  mutex : Mutex.t; (* guards the series table; rings are lock-free *)
  table : (string, series) Hashtbl.t;
  mutable series_list : series list; (* registration order, newest first *)
}

let m_points =
  Metrics.counter ~help:"time-series points recorded across all stores"
    "pi_obs_timeseries_points_total"

let m_scrapes =
  Metrics.counter ~help:"registry scrapes folded into a time-series store"
    "pi_obs_timeseries_scrapes_total"

let m_series =
  Metrics.gauge ~help:"live time series across all stores" "pi_obs_timeseries_series"

let create ?(capacity = 512) ?(downsample = 8) () =
  if capacity < 1 then invalid_arg "Timeseries.create: capacity must be >= 1";
  if downsample < 2 then invalid_arg "Timeseries.create: downsample must be >= 2";
  {
    capacity;
    downsample;
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    series_list = [];
  }

let capacity t = t.capacity
let downsample t = t.downsample

let series_key name labels =
  let buf = Buffer.create 64 in
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf k;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf v)
    labels;
  Buffer.contents buf

let find_or_create t name labels =
  let key = series_key name labels in
  match Hashtbl.find_opt t.table key with
  | Some s -> s
  | None ->
      Mutex.protect t.mutex (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some s -> s
          | None ->
              let s =
                {
                  s_name = name;
                  s_labels = labels;
                  raw = ring t.capacity;
                  coarse = ring t.capacity;
                  acc_sum = 0.0;
                  acc_n = 0;
                  acc_ts = 0.0;
                }
              in
              Hashtbl.replace t.table key s;
              t.series_list <- s :: t.series_list;
              Metrics.gauge_add m_series 1.0;
              s)

let push t s ~ts ~value =
  ring_push s.raw ~capacity:t.capacity ~ts ~value;
  Metrics.inc m_points;
  s.acc_sum <- s.acc_sum +. value;
  s.acc_n <- s.acc_n + 1;
  s.acc_ts <- ts;
  if s.acc_n >= t.downsample then begin
    (* One coarse point per [downsample] raw points: the mean, stamped
       with the last contributing timestamp. Deterministic — no clock
       reads, no data-dependent branching. *)
    ring_push s.coarse ~capacity:t.capacity ~ts:s.acc_ts
      ~value:(s.acc_sum /. float_of_int t.downsample);
    s.acc_sum <- 0.0;
    s.acc_n <- 0
  end

let observe t ?ts ~name ?(labels = []) value =
  let ts = match ts with Some ts -> ts | None -> Clock.now () in
  push t (find_or_create t name labels) ~ts ~value

(* Flatten a scrape sample into the numeric series it contributes.
   Histograms become two series so rates and means stay derivable. *)
let sample_values (s : Metrics.sample) =
  match s.Metrics.value with
  | Metrics.Counter n -> [ (s.Metrics.name, s.Metrics.labels, float_of_int n) ]
  | Metrics.Gauge v -> [ (s.Metrics.name, s.Metrics.labels, v) ]
  | Metrics.Histogram h ->
      [
        (s.Metrics.name ^ "_count", s.Metrics.labels, float_of_int h.Metrics.count);
        (s.Metrics.name ^ "_sum", s.Metrics.labels, h.Metrics.sum);
      ]

let record t ?ts samples =
  let ts = match ts with Some ts -> ts | None -> Clock.now () in
  List.iter
    (fun s ->
      List.iter
        (fun (name, labels, value) -> push t (find_or_create t name labels) ~ts ~value)
        (sample_values s))
    samples;
  Metrics.inc m_scrapes

let scrape_into t = record t (Metrics.scrape ())

type series_snapshot = {
  name : string;
  labels : (string * string) list;
  points : point list;
  downsampled : point list;
}

let snapshot t =
  let series = Mutex.protect t.mutex (fun () -> t.series_list) in
  List.map
    (fun s ->
      {
        name = s.s_name;
        labels = s.s_labels;
        points = ring_points s.raw ~capacity:t.capacity;
        downsampled = ring_points s.coarse ~capacity:t.capacity;
      })
    series
  |> List.sort (fun a b ->
         match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)

(* ---------------- JSON export ---------------- *)

let escape_json buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let json_number f =
  if Float.is_finite f then Metrics.float_repr f else "null"

let add_points buf pts =
  Buffer.add_char buf '[';
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      Buffer.add_string buf (json_number p.ts);
      Buffer.add_char buf ',';
      Buffer.add_string buf (json_number p.value);
      Buffer.add_char buf ']')
    pts;
  Buffer.add_char buf ']'

let to_json t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"capacity\":";
  Buffer.add_string buf (string_of_int t.capacity);
  Buffer.add_string buf ",\"downsample\":";
  Buffer.add_string buf (string_of_int t.downsample);
  Buffer.add_string buf ",\"series\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      escape_json buf s.name;
      Buffer.add_string buf ",\"labels\":{";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          escape_json buf k;
          Buffer.add_char buf ':';
          escape_json buf v)
        s.labels;
      Buffer.add_string buf "},\"points\":";
      add_points buf s.points;
      Buffer.add_string buf ",\"downsampled\":";
      add_points buf s.downsampled;
      Buffer.add_char buf '}')
    (snapshot t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ---------------- Background sampler ---------------- *)

let sampler ?(interval = 1.0) ?(on_tick = fun () -> ()) t =
  if interval <= 0.0 then invalid_arg "Timeseries.sampler: interval must be > 0";
  let stop = Atomic.make false in
  let tick () =
    (try on_tick () with _ -> ());
    scrape_into t
  in
  let thread =
    Thread.create
      (fun () ->
        (* Sleep in small slices so [stop] latency stays well under the
           scrape interval even for 1 s+ intervals. *)
        let slice = Float.min interval 0.05 in
        let rec loop elapsed =
          if not (Atomic.get stop) then
            if elapsed >= interval then begin
              tick ();
              loop 0.0
            end
            else begin
              Thread.delay slice;
              loop (elapsed +. slice)
            end
        in
        tick ();
        loop 0.0)
      ()
  in
  fun () ->
    if not (Atomic.get stop) then begin
      Atomic.set stop true;
      Thread.join thread
    end
