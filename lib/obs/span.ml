type event = {
  name : string;
  cat : string;
  ts : float;
  dur : float;
  tid : int;
  depth : int;
  alloc_bytes : float;
  args : (string * string) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let buffer_mutex = Mutex.create ()
let recorded : event list ref = ref [] (* reverse completion order *)

(* Per-domain nesting depth; domain-local so worker spans never race. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let m_spans = Metrics.counter ~help:"completed trace spans" "pi_obs_spans_total"

let record e =
  Metrics.inc m_spans;
  Mutex.protect buffer_mutex (fun () -> recorded := e :: !recorded)

let with_ ?(cat = "pi") ?(args = []) ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let a0 = Gc.allocated_bytes () in
    let t0 = Clock.now () in
    let finish () =
      let dur = Clock.now () -. t0 in
      let alloc = Gc.allocated_bytes () -. a0 in
      depth := d;
      record
        {
          name;
          cat;
          ts = t0;
          dur;
          tid = (Domain.self () :> int);
          depth = d;
          alloc_bytes = alloc;
          args;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception exn ->
        finish ();
        raise exn
  end

let events () = Mutex.protect buffer_mutex (fun () -> List.rev !recorded)
let clear () = Mutex.protect buffer_mutex (fun () -> recorded := [])

(* ---------------- Chrome trace-event export ---------------- *)

let escape_json buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_chrome_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      escape_json buf e.name;
      Buffer.add_string buf ",\"cat\":";
      escape_json buf e.cat;
      Buffer.add_string buf ",\"ph\":\"X\",\"pid\":1,\"tid\":";
      Buffer.add_string buf (string_of_int e.tid);
      (* Chrome trace timestamps are microseconds; the epoch is arbitrary
         (monotonic), only differences matter to the viewer. *)
      Buffer.add_string buf (Printf.sprintf ",\"ts\":%.3f,\"dur\":%.3f" (e.ts *. 1e6) (e.dur *. 1e6));
      Buffer.add_string buf ",\"args\":{";
      List.iter
        (fun (k, v) ->
          escape_json buf k;
          Buffer.add_char buf ':';
          escape_json buf v;
          Buffer.add_char buf ',')
        e.args;
      Buffer.add_string buf "\"alloc_bytes\":";
      Buffer.add_string buf (Printf.sprintf "%.0f" e.alloc_bytes);
      Buffer.add_string buf ",\"depth\":";
      Buffer.add_string buf (string_of_int e.depth);
      Buffer.add_string buf "}}")
    (events ());
  Buffer.add_string buf "]}";
  Buffer.contents buf

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~path =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_chrome_json ());
      output_char oc '\n')
