type event = {
  name : string;
  cat : string;
  ts : float;
  dur : float;
  tid : int;
  depth : int;
  alloc_bytes : float;
  args : (string * string) list;
}

(* [hot] is the single flag the disabled fast path loads: it is true iff
   global collection is enabled OR at least one per-thread collector is
   attached. [state_mutex] guards every transition that could change it. *)
let enabled_flag = Atomic.make false
let hot = Atomic.make false
let state_mutex = Mutex.create ()

let buffer_mutex = Mutex.create ()
let recorded : event list ref = ref [] (* reverse completion order *)
let buffer_count = ref 0
let default_buffer_capacity = 65_536
let buffer_cap = Atomic.make default_buffer_capacity

(* Per-domain nesting depth; domain-local so worker spans never race. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let m_spans = Metrics.counter ~help:"completed trace spans" "pi_obs_spans_total"

let m_dropped =
  Metrics.counter
    ~help:"spans discarded because a span buffer was at capacity"
    "pi_obs_spans_dropped_total"

(* ---------------- Per-thread collectors ---------------- *)

(* A collector captures the spans of one logical unit of work (a daemon
   job) without touching the global buffer. Server workers are threads,
   not domains — they all share domain 0 — so collectors are keyed by
   [Thread.id], never [Domain.self]. *)
type collector = {
  c_capacity : int;
  c_mutex : Mutex.t;
  mutable c_events : event list; (* reverse completion order *)
  mutable c_count : int;
}

let collectors : (int, collector) Hashtbl.t = Hashtbl.create 8
let active_collectors = Atomic.make 0

let refresh_hot () =
  Atomic.set hot (Atomic.get enabled_flag || Atomic.get active_collectors > 0)

let set_enabled b =
  Mutex.protect state_mutex (fun () ->
      Atomic.set enabled_flag b;
      refresh_hot ())

let enabled () = Atomic.get enabled_flag

let set_buffer_capacity n =
  if n < 1 then invalid_arg "Span.set_buffer_capacity: capacity must be >= 1";
  Atomic.set buffer_cap n

let buffer_capacity () = Atomic.get buffer_cap

let collector ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Span.collector: capacity must be >= 1";
  { c_capacity = capacity; c_mutex = Mutex.create (); c_events = []; c_count = 0 }

let collector_add c e =
  Mutex.protect c.c_mutex (fun () ->
      if c.c_count >= c.c_capacity then Metrics.inc m_dropped
      else begin
        c.c_events <- e :: c.c_events;
        c.c_count <- c.c_count + 1
      end)

let add_event c e = collector_add c e

let collector_events c =
  Mutex.protect c.c_mutex (fun () -> List.rev c.c_events)

let with_collector c f =
  let tid = Thread.id (Thread.self ()) in
  let prev =
    Mutex.protect state_mutex (fun () ->
        let prev = Hashtbl.find_opt collectors tid in
        Hashtbl.replace collectors tid c;
        if prev = None then Atomic.incr active_collectors;
        refresh_hot ();
        prev)
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect state_mutex (fun () ->
          (match prev with
          | Some p -> Hashtbl.replace collectors tid p
          | None ->
              Hashtbl.remove collectors tid;
              Atomic.decr active_collectors);
          refresh_hot ()))
    f

let current_collector () =
  if Atomic.get active_collectors = 0 then None
  else
    let tid = Thread.id (Thread.self ()) in
    Mutex.protect state_mutex (fun () -> Hashtbl.find_opt collectors tid)

let record e =
  Metrics.inc m_spans;
  (if Atomic.get enabled_flag then
     Mutex.protect buffer_mutex (fun () ->
         if !buffer_count >= Atomic.get buffer_cap then Metrics.inc m_dropped
         else begin
           recorded := e :: !recorded;
           incr buffer_count
         end));
  match current_collector () with
  | Some c -> collector_add c e
  | None -> ()

let with_ ?(cat = "pi") ?(args = []) ~name f =
  if not (Atomic.get hot) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let a0 = Gc.allocated_bytes () in
    let t0 = Clock.now () in
    let finish () =
      let dur = Clock.now () -. t0 in
      let alloc = Gc.allocated_bytes () -. a0 in
      depth := d;
      record
        {
          name;
          cat;
          ts = t0;
          dur;
          tid = (Domain.self () :> int);
          depth = d;
          alloc_bytes = alloc;
          args;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception exn ->
        finish ();
        raise exn
  end

let events () = Mutex.protect buffer_mutex (fun () -> List.rev !recorded)

let clear () =
  Mutex.protect buffer_mutex (fun () ->
      recorded := [];
      buffer_count := 0)

(* ---------------- Chrome trace-event export ---------------- *)

let escape_json buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let events_to_chrome_json evs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      escape_json buf e.name;
      Buffer.add_string buf ",\"cat\":";
      escape_json buf e.cat;
      Buffer.add_string buf ",\"ph\":\"X\",\"pid\":1,\"tid\":";
      Buffer.add_string buf (string_of_int e.tid);
      (* Chrome trace timestamps are microseconds; the epoch is arbitrary
         (monotonic), only differences matter to the viewer. *)
      Buffer.add_string buf (Printf.sprintf ",\"ts\":%.3f,\"dur\":%.3f" (e.ts *. 1e6) (e.dur *. 1e6));
      Buffer.add_string buf ",\"args\":{";
      List.iter
        (fun (k, v) ->
          escape_json buf k;
          Buffer.add_char buf ':';
          escape_json buf v;
          Buffer.add_char buf ',')
        e.args;
      Buffer.add_string buf "\"alloc_bytes\":";
      Buffer.add_string buf (Printf.sprintf "%.0f" e.alloc_bytes);
      Buffer.add_string buf ",\"depth\":";
      Buffer.add_string buf (string_of_int e.depth);
      Buffer.add_string buf "}}")
    evs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_chrome_json () = events_to_chrome_json (events ())

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~path =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_chrome_json ());
      output_char oc '\n')
