(** Fixed-capacity ring-buffer time series over the metrics registry —
    the daemon's flight recorder.

    A store holds one bounded series per metric identity seen in the
    scrapes folded into it ({!record} / {!scrape_into}): counters and
    gauges map to one series each, histograms split into
    [<name>_count] and [<name>_sum] so rates and means stay derivable.
    Each series keeps two tiers:

    - {e raw}: the last [capacity] points, one per scrape;
    - {e coarse}: every [downsample] raw points fold into one point
      (their mean, stamped with the last contributing timestamp), also
      ring-bounded at [capacity] — so the coarse tier remembers
      [capacity × downsample] scrapes after the raw tier has wrapped.

    Memory is fixed at creation: no allocation per point, ever.

    Concurrency: single writer, lock-free readers. Exactly one thread
    may append (the {!sampler} loop, or whoever calls {!record});
    readers ({!snapshot}, {!to_json}) never take a lock on the data
    path and never block the writer. Downsampling is deterministic —
    folding the same points in the same order yields the same coarse
    tier, which the tests pin.

    The store feeds [GET /api/timeseries] on the daemon (see
    docs/SERVING.md) and exports three metrics about itself:
    [pi_obs_timeseries_points_total], [pi_obs_timeseries_scrapes_total]
    and the [pi_obs_timeseries_series] gauge. *)

type t

val create : ?capacity:int -> ?downsample:int -> unit -> t
(** [capacity] points per tier per series (default 512);
    [downsample] raw points per coarse point (default 8, must be ≥ 2). *)

val capacity : t -> int
val downsample : t -> int

type point = { ts : float; value : float }

val observe : t -> ?ts:float -> name:string -> ?labels:(string * string) list -> float -> unit
(** Append one point to one series. [ts] defaults to {!Clock.now}. *)

val record : t -> ?ts:float -> Metrics.sample list -> unit
(** Fold a scrape into the store: one point per series the samples
    flatten to, all sharing [ts] (default {!Clock.now}). *)

val scrape_into : t -> unit
(** [record t (Metrics.scrape ())]. *)

type series_snapshot = {
  name : string;
  labels : (string * string) list;
  points : point list;  (** raw tier, oldest first *)
  downsampled : point list;  (** coarse tier, oldest first *)
}

val snapshot : t -> series_snapshot list
(** Every series, sorted by [(name, labels)]. *)

val to_json : t -> string
(** [{"capacity":..,"downsample":..,"series":[{"name","labels","points":
    [[ts,v],...],"downsampled":[[ts,v],...]},...]}] — points as
    [[ts, value]] pairs, series sorted by [(name, labels)]. *)

val sampler : ?interval:float -> ?on_tick:(unit -> unit) -> t -> unit -> unit
(** [sampler t] starts a background thread that calls [on_tick] then
    {!scrape_into} every [interval] seconds (default 1.0; first scrape
    immediately), and returns the stop function, which joins the thread
    (idempotent). [on_tick] exceptions are swallowed — a flaky gauge
    refresher must not kill the recorder. *)
