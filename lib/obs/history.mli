(** Append-only run-history ledger — the perf-regression sentinel's
    memory.

    Every campaign, sweep and perf run can append one {!record} to a
    [history.jsonl] file: a wall-clock timestamp, the run kind and
    label, the configuration digest, and a flat bag of numeric metrics
    (wall/cpu seconds, obs/sec, fused configs/s, cache hit ratio,
    per-bench R², …). Records are framed exactly like the serve WAL —
    [md5_hex(payload) ^ " " ^ payload], one per line, fsynced — so a
    torn tail from a crash mid-append is detected, not misparsed.

    Unlike the WAL, whose records form a causal sequence (everything
    after the first bad record is suspect), history records are
    independent observations: {!read} skips and counts bad lines and
    keeps the rest. {!append} self-heals a torn tail by starting on a
    fresh line.

    {!compare_metrics} diffs two metric bags against per-suffix
    threshold rules; [interferometry compare] exits non-zero when any
    gated metric regresses, and [make check] runs that sentinel. *)

type record = {
  ts : float;  (** unix wall-clock seconds ({!Clock.wall}) *)
  kind : string;  (** "campaign" | "sweep" | "perf" | ... *)
  label : string;
  config_digest : string;
  metrics : (string * float) list;  (** sorted by name, unique *)
}

val make :
  ?ts:float -> kind:string -> label:string -> config_digest:string ->
  (string * float) list -> record
(** Sorts and dedups metrics (first binding wins); [ts] defaults to
    {!Clock.wall}. *)

(** {1 Framing} *)

val render : record -> string
(** One-line canonical JSON payload (no newline). *)

val parse_payload : string -> (record, string) result

val frame : string -> string
(** [md5_hex payload ^ " " ^ payload]. *)

val parse_record : string -> (record, string) result
(** Validate one framed line: length, hex digest, separator, digest
    match, then payload JSON. *)

(** {1 Ledger I/O} *)

val append : path:string -> record -> unit
(** Append one framed record and fsync. Creates parent directories; if
    the file ends mid-line (torn tail), starts on a fresh line first. *)

type replay = {
  records : record list;  (** valid records, file order *)
  invalid_lines : int;  (** corrupt/garbled lines skipped *)
  torn_tail : bool;  (** file ended without a newline *)
}

val read : path:string -> replay
(** Missing file reads as empty. Never raises on corrupt content. *)

(** {1 Regression comparison} *)

type direction = Higher_better | Lower_better

type rule = { suffix : string; direction : direction; tol_percent : float }
(** Applies to every metric whose name ends in [suffix]; first matching
    rule wins. *)

val default_rules : rule list
(** [_per_sec] / [speedup]: higher better, 50% tolerance (timing noise
    on quick runs is real); [r_squared]: higher better, 5%;
    [failed_jobs]: lower better, 0% — any increase regresses;
    [_abs_err] / [_max_err] (surrogate prediction errors): lower
    better, 100% — they live near zero where relative jitter is large,
    so only a doubling regresses. *)

type delta = {
  metric : string;
  before : float;
  after : float;
  delta_percent : float;  (** (after - before) / |before| × 100 *)
  rule : rule option;  (** the gate applied, if any *)
  regression : bool;
}

val compare_metrics :
  ?rules:rule list ->
  before:(string * float) list ->
  after:(string * float) list ->
  unit ->
  delta list
(** One delta per metric present on both sides (before-side order).
    Higher-better gates require both sides non-zero: a zero throughput
    means "didn't run" (e.g. a fully-cached campaign), not a
    regression. *)

val regressions : delta list -> delta list
