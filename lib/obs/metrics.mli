(** Process-wide metrics registry: counters, gauges and histograms.

    Instruments live on hot paths shared by {!Pi_campaign.Scheduler}
    worker domains, so updates must never contend: counters and histograms
    are {e sharded} — each domain increments its own [Atomic.t] slot
    (selected by domain id) and the shards are only summed at scrape time.
    An increment is a single uncontended atomic fetch-and-add; there is no
    lock anywhere on the update path.

    Metrics are identified by [(name, labels)]. Registration is idempotent
    (the same identity returns the same instrument) and cheap enough for
    module initialisation, which is where instruments should be created —
    hot code holds the handle, it never looks anything up.

    Scrapes export in Prometheus text exposition format ({!to_prometheus})
    and as a neutral {!sample} list that
    {!Pi_campaign.Telemetry.metrics_json} renders as JSON. Metric names
    follow Prometheus conventions: [pi_obs_] prefix, [_total] suffix on
    counters, [_seconds] on time histograms. See docs/OBSERVABILITY.md for
    the full catalogue. *)

type counter
type gauge
type histogram

(** {1 Registration} *)

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
(** [counter name] registers (or retrieves) the counter with this
    [(name, labels)] identity. Raises [Invalid_argument] if the identity
    is already registered as a different metric kind. *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  ?help:string -> ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds (default
    {!default_buckets}, tuned for seconds); an implicit [+Inf] bucket
    catches the overflow. Re-registering with different buckets raises. *)

val default_buckets : float array
(** 100 µs .. 300 s, roughly logarithmic — job and phase latencies. *)

(** {1 Updates (hot path)} *)

val inc : counter -> unit
val add : counter -> int -> unit

val set : gauge -> float -> unit

val gauge_add : gauge -> float -> unit
(** Atomic read-modify-write add ([gauge_add g (-1.)] to decrement) — for
    level gauges like in-flight request counts that many threads move
    concurrently, where a racy [set (value + 1)] would lose updates. *)

val observe : histogram -> float -> unit
(** Bucket selection is a binary search over the bounds, then one atomic
    fetch-and-add on this domain's shard. *)

(** {1 Reading} *)

val counter_value : counter -> int
(** Sum over shards. Monotone, but not a consistent snapshot with respect
    to concurrent updates — fine for scrapes. *)

val gauge_value : gauge -> float

type hist_snapshot = {
  bounds : float array;  (** upper bounds, ascending *)
  bucket_counts : int array;  (** per bucket, length [bounds + 1] (overflow last) *)
  count : int;
  sum : float;
}

val snapshot : histogram -> hist_snapshot

val quantile : hist_snapshot -> float -> float
(** [quantile s q] for [q] in [0,1]: linear interpolation inside the
    bucket holding the [q]-th observation (Prometheus-style). Resolution
    is bucket width; observations past the last bound clamp to it.
    Returns [nan] on an empty histogram. *)

(** {1 Scraping} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

val scrape : unit -> sample list
(** Every registered metric, sorted by [(name, labels)] so output is
    deterministic. *)

val float_repr : float -> string
(** Shortest decimal string that round-trips through [float_of_string]
    (integers without an exponent) — the rendering used by the
    Prometheus exposition, shared by the flight-recorder JSON writers. *)

val to_prometheus : unit -> string
(** Prometheus text exposition format: [# HELP] / [# TYPE] per metric
    name, [name{label="v",...} value] per sample, histograms as
    cumulative [_bucket{le="..."}] plus [_sum] / [_count]. *)

val save_prometheus : path:string -> unit
(** Write {!to_prometheus} to [path], creating parent directories. *)
