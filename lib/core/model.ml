module Linreg = Pi_stats.Linreg

type t = {
  benchmark : string;
  regression : Linreg.t;
  n_layouts : int;
  mean_mpki : float;
  mean_cpi : float;
  perfect_prediction : Linreg.interval;
}

let fit (dataset : Experiment.dataset) =
  let benchmark = dataset.Experiment.prepared.Experiment.bench.Pi_workloads.Bench.name in
  Pi_obs.Span.with_ ~name:"fit" ~args:[ ("bench", benchmark) ] (fun () ->
      let xs = Experiment.mpkis dataset and ys = Experiment.cpis dataset in
      let regression = Linreg.fit xs ys in
      {
        benchmark;
        regression;
        n_layouts = Array.length xs;
        mean_mpki = Pi_stats.Descriptive.mean xs;
        mean_cpi = Pi_stats.Descriptive.mean ys;
        perfect_prediction = Linreg.prediction_interval regression 0.0;
      })

let predict_cpi ?(level = 0.95) t ~mpki = Linreg.prediction_interval ~level t.regression mpki

let confidence_cpi ?(level = 0.95) t ~mpki = Linreg.confidence_interval ~level t.regression mpki

let improvement_percent t ~from_mpki ~to_mpki =
  let base = Linreg.predict t.regression from_mpki in
  let target = Linreg.predict t.regression to_mpki in
  if base = 0.0 then 0.0 else 100.0 *. (base -. target) /. base

let mpki_reduction_for_cpi_gain t ~at_mpki ~gain_percent =
  let slope = t.regression.Linreg.slope in
  if slope <= 0.0 then None
  else begin
    let base = Linreg.predict t.regression at_mpki in
    let delta_cpi = gain_percent /. 100.0 *. base in
    let delta_mpki = delta_cpi /. slope in
    if at_mpki <= 0.0 then None else Some (100.0 *. delta_mpki /. at_mpki)
  end

let table1_header =
  Printf.sprintf "%-16s %8s %12s %8s %8s" "Benchmark" "Slope" "y-intercept" "Low" "High"

let table1_row t =
  Printf.sprintf "%-16s %8.3f %12.3f %8.3f %8.3f" t.benchmark t.regression.Linreg.slope
    t.regression.Linreg.intercept t.perfect_prediction.Linreg.lower
    t.perfect_prediction.Linreg.upper
