module Linreg = Pi_stats.Linreg
module Counters = Pi_uarch.Counters

type evaluation = {
  predictor : string;
  mean_mpki : float;
  cpi : Linreg.interval;
  observed : bool;
}

let standard_candidates () =
  [
    ("GAs-2KB", fun () -> Pi_uarch.Gas.sized_kb ~kb:2);
    ("GAs-4KB", fun () -> Pi_uarch.Gas.sized_kb ~kb:4);
    ("GAs-8KB", fun () -> Pi_uarch.Gas.sized_kb ~kb:8);
    ("GAs-16KB", fun () -> Pi_uarch.Gas.sized_kb ~kb:16);
    ("L-TAGE", fun () -> Pi_uarch.Ltage.create ());
  ]

let warmup_branches (prepared : Experiment.prepared) =
  let trace = prepared.Experiment.trace in
  let blocks = Pi_isa.Trace.blocks_executed trace in
  if blocks = 0 then 0
  else
    trace.Pi_isa.Trace.cond_branches * prepared.Experiment.warmup_blocks / blocks

(* Mean conditional-branch MPKI of a simulated predictor over the layouts,
   one deterministic Pin run per reordering. *)
let pin_cond_mpki (prepared : Experiment.prepared) ~n_layouts make =
  let warmup = warmup_branches prepared in
  (* The branch stream is placement-invariant: compile once, replay under
     every layout seed. *)
  let stream = Pi_pin.Bp_sim.compile_stream prepared.Experiment.trace in
  let total = ref 0.0 in
  for seed = 1 to n_layouts do
    let placement =
      Pi_layout.Placement.make ~heap_random:prepared.Experiment.config.Experiment.heap_random
        prepared.Experiment.program ~seed
    in
    let results =
      Pi_pin.Bp_sim.run ~warmup_branches:warmup ~stream prepared.Experiment.trace
        placement.Pi_layout.Placement.code [ make ]
    in
    match results with
    | [ r ] -> total := !total +. r.Pi_pin.Bp_sim.mpki
    | _ -> assert false
  done;
  !total /. float_of_int n_layouts

(* Indirect-branch misses are a property of the machine's BTB, unchanged by
   the direction predictor; estimate their MPKI as the gap between the
   counter-measured total and the Pin-simulated real direction predictor. *)
let indirect_mpki dataset prepared ~n_layouts =
  let measured_mean = Pi_stats.Descriptive.mean (Experiment.mpkis dataset) in
  let real_make = prepared.Experiment.config.Experiment.machine.Pi_uarch.Pipeline.make_predictor in
  let real_cond = pin_cond_mpki prepared ~n_layouts real_make in
  (Float.max 0.0 (measured_mean -. real_cond), real_cond)

let pin_mpki prepared ~n_layouts make =
  (* Total MPKI as the model's x-axis understands it: simulated direction
     misses; indirect misses are added by [evaluate]. *)
  pin_cond_mpki prepared ~n_layouts make

let evaluate_inner ~candidates (dataset : Experiment.dataset) model =
  let prepared = dataset.Experiment.prepared in
  let n_layouts = Array.length dataset.Experiment.observations in
  let indirect, _real_cond = indirect_mpki dataset prepared ~n_layouts in
  let measured_mean_mpki = Pi_stats.Descriptive.mean (Experiment.mpkis dataset) in
  let measured_mean_cpi = Pi_stats.Descriptive.mean (Experiment.cpis dataset) in
  let real_row =
    let ci = Model.confidence_cpi model ~mpki:measured_mean_mpki in
    {
      predictor = "real (measured)";
      mean_mpki = measured_mean_mpki;
      cpi = { ci with Linreg.estimate = measured_mean_cpi };
      observed = true;
    }
  in
  let candidate_rows =
    List.map
      (fun (name, make) ->
        let mpki = pin_cond_mpki prepared ~n_layouts make +. indirect in
        { predictor = name; mean_mpki = mpki; cpi = Model.predict_cpi model ~mpki; observed = false })
      candidates
  in
  let perfect_row =
    {
      predictor = "perfect";
      mean_mpki = 0.0;
      cpi = Model.predict_cpi model ~mpki:0.0;
      observed = false;
    }
  in
  (real_row :: candidate_rows) @ [ perfect_row ]

let evaluate ?(candidates = standard_candidates ()) (dataset : Experiment.dataset) model =
  Pi_obs.Span.with_ ~name:"predict"
    ~args:[ ("bench", model.Model.benchmark) ]
    (fun () -> evaluate_inner ~candidates dataset model)

type suite_summary = {
  real_cpi : float;
  real_cpi_half_width : float;
  real_mpki : float;
  rows : (string * float * float * float) list;
}

let summarize_suite per_benchmark =
  match per_benchmark with
  | [] -> invalid_arg "Predict.summarize_suite: empty"
  | (_, first_rows) :: _ ->
      let n = float_of_int (List.length per_benchmark) in
      let mean f = List.fold_left (fun acc (_, rows) -> acc +. f rows) 0.0 per_benchmark /. n in
      let find name rows =
        match List.find_opt (fun e -> e.predictor = name) rows with
        | Some e -> e
        | None -> invalid_arg ("Predict.summarize_suite: missing row " ^ name)
      in
      let half e = (e.cpi.Linreg.upper -. e.cpi.Linreg.lower) /. 2.0 in
      let names =
        List.filter_map
          (fun e -> if e.observed then None else Some e.predictor)
          first_rows
      in
      {
        real_cpi = mean (fun rows -> (find "real (measured)" rows).cpi.Linreg.estimate);
        real_cpi_half_width = mean (fun rows -> half (find "real (measured)" rows));
        real_mpki = mean (fun rows -> (find "real (measured)" rows).mean_mpki);
        rows =
          List.map
            (fun name ->
              ( name,
                mean (fun rows -> (find name rows).mean_mpki),
                mean (fun rows -> (find name rows).cpi.Linreg.estimate),
                mean (fun rows -> half (find name rows)) ))
            names;
      }

let header =
  Printf.sprintf "%-18s %10s %10s %22s" "Predictor" "MPKI" "CPI" "95% interval"

let row e =
  Printf.sprintf "%-18s %10.3f %10.3f %10.3f .. %-8.3f %s" e.predictor e.mean_mpki
    e.cpi.Linreg.estimate e.cpi.Linreg.lower e.cpi.Linreg.upper
    (if e.observed then "(observed, CI)" else "(predicted, PI)")
