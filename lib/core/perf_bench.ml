(* Microbenchmark for the compiled-replay path: times plan compilation, the
   legacy interpreter and plan replay over the same placements, checks that
   both produce identical counts, and renders the numbers as JSON for the
   perf trajectory (BENCH_pipeline.json). *)

module Pipeline = Pi_uarch.Pipeline
module Replay = Pi_uarch.Replay

type result = {
  bench : string;
  scale : int;
  layouts : int;
  blocks : int;  (* dynamic blocks per observation *)
  mem_events : int;
  plan_words : int;
  compile_seconds : float;
  legacy_seconds : float;  (* total wall time for [layouts] legacy observations *)
  replay_seconds : float;  (* same placements through the compiled plan *)
  legacy_obs_per_sec : float;
  replay_obs_per_sec : float;
  replay_blocks_per_sec : float;
  speedup : float;  (* replay_obs_per_sec / legacy_obs_per_sec *)
  identical : bool;  (* replay counts = legacy counts on every placement *)
}

(* Durations on the monotonic clock: an NTP step during a timed phase must
   not bend the perf trajectory. *)
let now () = Pi_obs.Clock.now ()

(* Grid timings are best-of-N; see [run_sweep]. *)
let grid_reps = 5

module Span = Pi_obs.Span

let run ?(bench = "400.perlbench") ?(scale = 4) ?(layouts = 12) () =
  if layouts < 1 then invalid_arg "Perf_bench.run: layouts < 1";
  let b = Pi_workloads.Spec.find bench in
  let config = { Experiment.default_config with scale } in
  let machine = config.Experiment.machine in
  let program = b.Pi_workloads.Bench.build ~scale in
  let trace =
    Pi_layout.Run_limiter.trace ~seed:config.Experiment.master_seed program
      ~budget_blocks:config.Experiment.budget_blocks
  in
  let warmup_blocks =
    int_of_float
      (config.Experiment.warmup_fraction
      *. float_of_int (Pi_isa.Trace.blocks_executed trace))
  in
  let placements =
    Array.init layouts (fun i -> Pi_layout.Placement.make program ~seed:(i + 1))
  in
  (* Warm both paths once outside the timed region (page faults, lazy
     initialization) using a placement that is not part of the measurement. *)
  let warm_placement = Pi_layout.Placement.make program ~seed:(layouts + 1) in
  ignore (Pipeline.run_unoptimized ~warmup_blocks machine trace warm_placement);
  ignore (Replay.run ~warmup_blocks (Replay.compile machine trace) warm_placement);
  let timed name f =
    Span.with_ ~name ~args:[ ("bench", bench) ] (fun () ->
        let t0 = now () in
        let result = f () in
        (result, now () -. t0))
  in
  let plan, compile_seconds = timed "perf.compile" (fun () -> Replay.compile machine trace) in
  let legacy, legacy_seconds =
    timed "perf.legacy" (fun () ->
        Array.map (fun p -> Pipeline.run_unoptimized ~warmup_blocks machine trace p) placements)
  in
  let replayed, replay_seconds =
    timed "perf.replay" (fun () -> Array.map (fun p -> Replay.run ~warmup_blocks plan p) placements)
  in
  let identical = legacy = replayed in
  let obs = float_of_int layouts in
  let blocks = Replay.blocks plan in
  {
    bench;
    scale;
    layouts;
    blocks;
    mem_events = Replay.mem_events plan;
    plan_words = Replay.words plan;
    compile_seconds;
    legacy_seconds;
    replay_seconds;
    legacy_obs_per_sec = (if legacy_seconds > 0.0 then obs /. legacy_seconds else 0.0);
    replay_obs_per_sec = (if replay_seconds > 0.0 then obs /. replay_seconds else 0.0);
    replay_blocks_per_sec =
      (if replay_seconds > 0.0 then obs *. float_of_int blocks /. replay_seconds else 0.0);
    speedup = (if replay_seconds > 0.0 then legacy_seconds /. replay_seconds else 0.0);
    identical;
  }

let to_json r =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"bench\": %S," r.bench;
      Printf.sprintf "  \"scale\": %d," r.scale;
      Printf.sprintf "  \"layouts\": %d," r.layouts;
      Printf.sprintf "  \"blocks_per_observation\": %d," r.blocks;
      Printf.sprintf "  \"mem_events_per_observation\": %d," r.mem_events;
      Printf.sprintf "  \"plan_words\": %d," r.plan_words;
      Printf.sprintf "  \"compile_seconds\": %.6f," r.compile_seconds;
      Printf.sprintf "  \"legacy_seconds\": %.6f," r.legacy_seconds;
      Printf.sprintf "  \"replay_seconds\": %.6f," r.replay_seconds;
      Printf.sprintf "  \"legacy_obs_per_sec\": %.2f," r.legacy_obs_per_sec;
      Printf.sprintf "  \"replay_obs_per_sec\": %.2f," r.replay_obs_per_sec;
      Printf.sprintf "  \"replay_blocks_per_sec\": %.0f," r.replay_blocks_per_sec;
      Printf.sprintf "  \"speedup\": %.3f," r.speedup;
      Printf.sprintf "  \"identical_counts\": %b" r.identical;
      "}";
    ]

let write_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json r);
      output_char oc '\n')

let summary r =
  Printf.sprintf
    "%s scale %d: %d blocks/obs, compile %.1fms (amortized over every placement)\n\
     legacy: %.2f obs/s (%.1fms/obs)   replay: %.2f obs/s (%.1fms/obs, %.2fM blocks/s)\n\
     speedup: %.2fx   counts identical: %b   plan: %.1f MiB"
    r.bench r.scale r.blocks (r.compile_seconds *. 1e3) r.legacy_obs_per_sec
    (1e3 *. r.legacy_seconds /. float_of_int r.layouts)
    r.replay_obs_per_sec
    (1e3 *. r.replay_seconds /. float_of_int r.layouts)
    (r.replay_blocks_per_sec /. 1e6) r.speedup r.identical
    (float_of_int (r.plan_words * 8) /. 1024.0 /. 1024.0)

(* Fused-sweep benchmark (BENCH_sweep.json): the full 145-configuration
   predictor study through the sequential per-config loop versus the fused
   one-pass engine, on one placement of the same traced benchmark. *)

module Sweep = Pi_uarch.Sweep

type sweep_result = {
  sweep_bench : string;
  sweep_scale : int;
  study_configs : int;
  fused_lanes : int;
  fallback_lanes : int;
  blocks_per_pass : int;
  baseline_seconds : float;
  fused_seconds : float;
  baseline_configs_per_sec : float;
  fused_configs_per_sec : float;
  lane_blocks_per_sec : float;
  sweep_speedup : float;
  sweep_identical : bool;
}

let studies_identical (a : Sweep.study) (b : Sweep.study) =
  a.Sweep.points = b.Sweep.points
  && a.Sweep.perfect_cpi = b.Sweep.perfect_cpi
  && a.Sweep.ltage_point = b.Sweep.ltage_point
  && a.Sweep.predicted_perfect_cpi = b.Sweep.predicted_perfect_cpi
  && a.Sweep.predicted_ltage_cpi = b.Sweep.predicted_ltage_cpi

let run_sweep ?(bench = "400.perlbench") ?(scale = 4) () =
  let b = Pi_workloads.Spec.find bench in
  let config = { Experiment.default_config with scale } in
  let program = b.Pi_workloads.Bench.build ~scale in
  let trace =
    Pi_layout.Run_limiter.trace ~seed:config.Experiment.master_seed program
      ~budget_blocks:config.Experiment.budget_blocks
  in
  let warmup_blocks =
    int_of_float
      (config.Experiment.warmup_fraction
      *. float_of_int (Pi_isa.Trace.blocks_executed trace))
  in
  let placement = Pi_layout.Placement.make program ~seed:1 in
  (* Compile once and hand the plan to every study: a caller sweeping one
     trace would do the same, and the timed studies should measure the
     sweep, not recompilation. *)
  let plan = Pi_uarch.Replay.compile config.Experiment.machine trace in
  (* One untimed fused study warms every code path the timed studies share
     (the fallback/perfect/L-TAGE lanes go through the same Replay.run the
     baseline uses), plus page faults, the memoized grid and its scratch. *)
  ignore (Sweep.run_study ~plan ~warmup_blocks ~benchmark:bench trace placement);
  let timed name f =
    Span.with_ ~name ~args:[ ("bench", bench) ] (fun () ->
        let t0 = now () in
        let result = f () in
        (result, now () -. t0))
  in
  (* Time the 145-configuration grid through each path — the unit the
     fused engine replaces. The perfect/L-TAGE reference simulations and
     the regression are identical sequential work on both paths, so timing
     them would only blur the configs/sec ratio; the full studies are
     still run (untimed) below for the bit-identical check. Each path is
     timed [grid_reps] times and the minimum kept: the grid is
     deterministic, so the spread between reps is scheduler/clock noise,
     not workload variance. *)
  let best_of name f =
    let result = ref None in
    let best = ref infinity in
    for _ = 1 to grid_reps do
      let r, dt = timed name f in
      if dt < !best then begin
        best := dt;
        result := Some r
      end
    done;
    (Option.get !result, !best)
  in
  let (baseline_points, _, _, _, _), baseline_seconds =
    best_of "perf.sweep_baseline" (fun () ->
        Sweep.run_grid ~plan ~warmup_blocks ~fused:false trace placement)
  in
  let (fused_points, fused_lanes, fallback_lanes, _, _), fused_seconds =
    best_of "perf.sweep_fused" (fun () ->
        Sweep.run_grid ~plan ~warmup_blocks trace placement)
  in
  let baseline =
    Sweep.run_study ~plan ~warmup_blocks ~fused:false ~benchmark:bench trace placement
  in
  let fused = Sweep.run_study ~plan ~warmup_blocks ~benchmark:bench trace placement in
  let study_configs = Array.length fused_points in
  let blocks = Pi_isa.Trace.blocks_executed trace in
  {
    sweep_bench = bench;
    sweep_scale = scale;
    study_configs;
    fused_lanes;
    fallback_lanes;
    blocks_per_pass = blocks;
    baseline_seconds;
    fused_seconds;
    baseline_configs_per_sec =
      (if baseline_seconds > 0.0 then float_of_int study_configs /. baseline_seconds else 0.0);
    fused_configs_per_sec =
      (if fused_seconds > 0.0 then float_of_int study_configs /. fused_seconds else 0.0);
    lane_blocks_per_sec =
      (if fused_seconds > 0.0 then
         float_of_int fused_lanes *. float_of_int blocks /. fused_seconds
       else 0.0);
    sweep_speedup = (if fused_seconds > 0.0 then baseline_seconds /. fused_seconds else 0.0);
    sweep_identical = baseline_points = fused_points && studies_identical fused baseline;
  }

let sweep_to_json r =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"bench\": %S," r.sweep_bench;
      Printf.sprintf "  \"scale\": %d," r.sweep_scale;
      Printf.sprintf "  \"study_configs\": %d," r.study_configs;
      Printf.sprintf "  \"fused_lanes\": %d," r.fused_lanes;
      Printf.sprintf "  \"fallback_lanes\": %d," r.fallback_lanes;
      Printf.sprintf "  \"blocks_per_pass\": %d," r.blocks_per_pass;
      Printf.sprintf "  \"baseline_seconds\": %.6f," r.baseline_seconds;
      Printf.sprintf "  \"fused_seconds\": %.6f," r.fused_seconds;
      Printf.sprintf "  \"baseline_configs_per_sec\": %.2f," r.baseline_configs_per_sec;
      Printf.sprintf "  \"fused_configs_per_sec\": %.2f," r.fused_configs_per_sec;
      Printf.sprintf "  \"lane_blocks_per_sec\": %.0f," r.lane_blocks_per_sec;
      Printf.sprintf "  \"speedup\": %.3f," r.sweep_speedup;
      Printf.sprintf "  \"identical_studies\": %b" r.sweep_identical;
      "}";
    ]

let write_sweep_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (sweep_to_json r);
      output_char oc '\n')

let sweep_summary r =
  Printf.sprintf
    "%s scale %d sweep: %d configs (%d fused lanes + %d fallback), %d blocks/pass\n\
     per-config: %.2f configs/s (%.2fs/grid)   fused: %.2f configs/s (%.2fs/grid, %.2fM \
     lane-blocks/s)\n\
     speedup: %.2fx   studies identical: %b"
    r.sweep_bench r.sweep_scale r.study_configs r.fused_lanes r.fallback_lanes r.blocks_per_pass
    r.baseline_configs_per_sec r.baseline_seconds r.fused_configs_per_sec r.fused_seconds
    (r.lane_blocks_per_sec /. 1e6) r.sweep_speedup r.sweep_identical

(* Cache-axis benchmark (BENCH_cache_sweep.json): the 100-geometry cache
   study through the sequential per-geometry loop versus the fused
   one-pass cache batch, on one placement of the same traced benchmark.
   Same protocol as [run_sweep]: compile once, one untimed warm study,
   best-of-[grid_reps] grid timings, untimed full studies for the
   bit-identical check. *)

type cache_sweep_result = {
  cache_bench : string;
  cache_scale : int;
  cache_study_configs : int;
  cache_fused_lanes : int;
  cache_blocks_per_pass : int;
  cache_baseline_seconds : float;
  cache_fused_seconds : float;
  cache_baseline_configs_per_sec : float;
  cache_fused_configs_per_sec : float;
  cache_lane_blocks_per_sec : float;
  cache_speedup : float;
  cache_identical : bool;
}

let cache_studies_identical (a : Sweep.cache_study) (b : Sweep.cache_study) =
  a.Sweep.cache_points = b.Sweep.cache_points
  && a.Sweep.seed_point = b.Sweep.seed_point
  && a.Sweep.degradation.Pi_stats.Multireg.coefficients
     = b.Sweep.degradation.Pi_stats.Multireg.coefficients
  && a.Sweep.degradation.Pi_stats.Multireg.intercept
     = b.Sweep.degradation.Pi_stats.Multireg.intercept
  && a.Sweep.predicted_seed_cpi = b.Sweep.predicted_seed_cpi

let run_cache_sweep ?(bench = "400.perlbench") ?(scale = 4) () =
  let b = Pi_workloads.Spec.find bench in
  let config = { Experiment.default_config with scale } in
  let program = b.Pi_workloads.Bench.build ~scale in
  let trace =
    Pi_layout.Run_limiter.trace ~seed:config.Experiment.master_seed program
      ~budget_blocks:config.Experiment.budget_blocks
  in
  let warmup_blocks =
    int_of_float
      (config.Experiment.warmup_fraction
      *. float_of_int (Pi_isa.Trace.blocks_executed trace))
  in
  let placement = Pi_layout.Placement.make program ~seed:1 in
  let plan = Pi_uarch.Replay.compile config.Experiment.machine trace in
  ignore (Sweep.run_cache_study ~plan ~warmup_blocks ~benchmark:bench trace placement);
  let timed name f =
    Span.with_ ~name ~args:[ ("bench", bench) ] (fun () ->
        let t0 = now () in
        let result = f () in
        (result, now () -. t0))
  in
  let best_of name f =
    let result = ref None in
    let best = ref infinity in
    for _ = 1 to grid_reps do
      let r, dt = timed name f in
      if dt < !best then begin
        best := dt;
        result := Some r
      end
    done;
    (Option.get !result, !best)
  in
  let (baseline_points, _, _, _, _), baseline_seconds =
    best_of "perf.cache_sweep_baseline" (fun () ->
        Sweep.run_cache_grid ~plan ~warmup_blocks ~fused:false trace placement)
  in
  let (fused_points, fused_lanes, _, _, _), fused_seconds =
    best_of "perf.cache_sweep_fused" (fun () ->
        Sweep.run_cache_grid ~plan ~warmup_blocks trace placement)
  in
  let baseline =
    Sweep.run_cache_study ~plan ~warmup_blocks ~fused:false ~benchmark:bench trace placement
  in
  let fused = Sweep.run_cache_study ~plan ~warmup_blocks ~benchmark:bench trace placement in
  let study_configs = Array.length fused_points in
  let blocks = Pi_isa.Trace.blocks_executed trace in
  {
    cache_bench = bench;
    cache_scale = scale;
    cache_study_configs = study_configs;
    cache_fused_lanes = fused_lanes;
    cache_blocks_per_pass = blocks;
    cache_baseline_seconds = baseline_seconds;
    cache_fused_seconds = fused_seconds;
    cache_baseline_configs_per_sec =
      (if baseline_seconds > 0.0 then float_of_int study_configs /. baseline_seconds else 0.0);
    cache_fused_configs_per_sec =
      (if fused_seconds > 0.0 then float_of_int study_configs /. fused_seconds else 0.0);
    cache_lane_blocks_per_sec =
      (if fused_seconds > 0.0 then
         float_of_int fused_lanes *. float_of_int blocks /. fused_seconds
       else 0.0);
    cache_speedup = (if fused_seconds > 0.0 then baseline_seconds /. fused_seconds else 0.0);
    cache_identical = baseline_points = fused_points && cache_studies_identical fused baseline;
  }

let cache_sweep_to_json r =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"bench\": %S," r.cache_bench;
      Printf.sprintf "  \"scale\": %d," r.cache_scale;
      Printf.sprintf "  \"study_configs\": %d," r.cache_study_configs;
      Printf.sprintf "  \"fused_lanes\": %d," r.cache_fused_lanes;
      Printf.sprintf "  \"blocks_per_pass\": %d," r.cache_blocks_per_pass;
      Printf.sprintf "  \"baseline_seconds\": %.6f," r.cache_baseline_seconds;
      Printf.sprintf "  \"fused_seconds\": %.6f," r.cache_fused_seconds;
      Printf.sprintf "  \"baseline_configs_per_sec\": %.2f," r.cache_baseline_configs_per_sec;
      Printf.sprintf "  \"fused_configs_per_sec\": %.2f," r.cache_fused_configs_per_sec;
      Printf.sprintf "  \"lane_blocks_per_sec\": %.0f," r.cache_lane_blocks_per_sec;
      Printf.sprintf "  \"speedup\": %.3f," r.cache_speedup;
      Printf.sprintf "  \"identical_studies\": %b" r.cache_identical;
      "}";
    ]

let write_cache_sweep_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (cache_sweep_to_json r);
      output_char oc '\n')

let cache_sweep_summary r =
  Printf.sprintf
    "%s scale %d cache sweep: %d geometries (all fused), %d blocks/pass\n\
     per-geometry: %.2f configs/s (%.2fs/grid)   fused: %.2f configs/s (%.2fs/grid, %.2fM \
     lane-blocks/s)\n\
     speedup: %.2fx   studies identical: %b"
    r.cache_bench r.cache_scale r.cache_study_configs r.cache_blocks_per_pass
    r.cache_baseline_configs_per_sec r.cache_baseline_seconds r.cache_fused_configs_per_sec
    r.cache_fused_seconds
    (r.cache_lane_blocks_per_sec /. 1e6)
    r.cache_speedup r.cache_identical

(* ------------------------------------------------------------------ *)
(* Flight-recorder overhead benchmark (BENCH_recorder.json): the fused
   sweep grid with the recorder fully on — background scrape loop
   folding the registry into a Timeseries store plus a per-job span
   collector, i.e. exactly what a daemon job pays — against the same
   grid with the recorder off. The 5% gate in `make perf` rides on
   [rec_overhead_percent]. *)

module Timeseries = Pi_obs.Timeseries

type recorder_result = {
  rec_bench : string;
  rec_scale : int;
  rec_configs : int;  (* grid configurations per timed rep *)
  rec_scrape_interval : float;  (* seconds between recorder scrapes *)
  rec_off_seconds : float;  (* best-of-N grid wall time, recorder off *)
  rec_on_seconds : float;  (* same grid with scrape loop + collector *)
  rec_off_configs_per_sec : float;
  rec_on_configs_per_sec : float;
  rec_overhead_percent : float;  (* (on - off) / off * 100 *)
  rec_points : int;  (* raw time-series points captured during the on pass *)
  rec_spans : int;  (* spans captured by the per-job collector *)
  rec_identical : bool;  (* grid points identical across recorder on/off *)
}

let run_recorder ?(bench = "400.perlbench") ?(scale = 4) () =
  let b = Pi_workloads.Spec.find bench in
  let config = { Experiment.default_config with scale } in
  let program = b.Pi_workloads.Bench.build ~scale in
  let trace =
    Pi_layout.Run_limiter.trace ~seed:config.Experiment.master_seed program
      ~budget_blocks:config.Experiment.budget_blocks
  in
  let warmup_blocks =
    int_of_float
      (config.Experiment.warmup_fraction
      *. float_of_int (Pi_isa.Trace.blocks_executed trace))
  in
  let placement = Pi_layout.Placement.make program ~seed:1 in
  let plan = Pi_uarch.Replay.compile config.Experiment.machine trace in
  ignore (Sweep.run_grid ~plan ~warmup_blocks trace placement);
  let best_of f =
    let result = ref None in
    let best = ref infinity in
    for _ = 1 to grid_reps do
      let t0 = now () in
      let r = f () in
      let dt = now () -. t0 in
      if dt < !best then begin
        best := dt;
        result := Some r
      end
    done;
    (Option.get !result, !best)
  in
  let was_enabled = Span.enabled () in
  (* Recorder off: no tracing, no scrape loop — the clean baseline. *)
  Span.set_enabled false;
  let (off_points, _, _, _, _), off_seconds =
    best_of (fun () -> Sweep.run_grid ~plan ~warmup_blocks trace placement)
  in
  (* Recorder on: global tracing enabled (the daemon's --trace-out
     state), a per-job collector attached to this thread, and the
     background sampler scraping the whole registry at a far harsher
     cadence than the daemon's 1 s default. *)
  Span.set_enabled true;
  let scrape_interval = 0.01 in
  let ts = Timeseries.create () in
  let stop = Timeseries.sampler ~interval:scrape_interval ts in
  let collector = Span.collector () in
  let (on_points, _, _, _, _), on_seconds =
    best_of (fun () ->
        Span.with_collector collector (fun () ->
            Sweep.run_grid ~plan ~warmup_blocks trace placement))
  in
  stop ();
  Span.set_enabled was_enabled;
  let rec_points =
    List.fold_left
      (fun acc s -> acc + List.length s.Timeseries.points)
      0 (Timeseries.snapshot ts)
  in
  let configs = Array.length off_points in
  {
    rec_bench = bench;
    rec_scale = scale;
    rec_configs = configs;
    rec_scrape_interval = scrape_interval;
    rec_off_seconds = off_seconds;
    rec_on_seconds = on_seconds;
    rec_off_configs_per_sec =
      (if off_seconds > 0.0 then float_of_int configs /. off_seconds else 0.0);
    rec_on_configs_per_sec =
      (if on_seconds > 0.0 then float_of_int configs /. on_seconds else 0.0);
    rec_overhead_percent =
      (if off_seconds > 0.0 then (on_seconds -. off_seconds) /. off_seconds *. 100.0
       else 0.0);
    rec_points;
    rec_spans = List.length (Span.collector_events collector);
    rec_identical = off_points = on_points;
  }

let recorder_to_json r =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"bench\": %S," r.rec_bench;
      Printf.sprintf "  \"scale\": %d," r.rec_scale;
      Printf.sprintf "  \"configs\": %d," r.rec_configs;
      Printf.sprintf "  \"scrape_interval\": %.3f," r.rec_scrape_interval;
      Printf.sprintf "  \"off_seconds\": %.6f," r.rec_off_seconds;
      Printf.sprintf "  \"on_seconds\": %.6f," r.rec_on_seconds;
      Printf.sprintf "  \"off_configs_per_sec\": %.2f," r.rec_off_configs_per_sec;
      Printf.sprintf "  \"on_configs_per_sec\": %.2f," r.rec_on_configs_per_sec;
      Printf.sprintf "  \"overhead_percent\": %.2f," r.rec_overhead_percent;
      Printf.sprintf "  \"timeseries_points\": %d," r.rec_points;
      Printf.sprintf "  \"collected_spans\": %d," r.rec_spans;
      Printf.sprintf "  \"identical_grids\": %b" r.rec_identical;
      "}";
    ]

let write_recorder_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (recorder_to_json r);
      output_char oc '\n')

let recorder_summary r =
  Printf.sprintf
    "%s scale %d recorder: %d configs/grid, %.0fms scrapes\n\
     recorder off: %.2f configs/s (%.2fs/grid)   on: %.2f configs/s (%.2fs/grid)\n\
     overhead: %.2f%%   points: %d   spans: %d   grids identical: %b"
    r.rec_bench r.rec_scale r.rec_configs
    (r.rec_scrape_interval *. 1000.0)
    r.rec_off_configs_per_sec r.rec_off_seconds r.rec_on_configs_per_sec r.rec_on_seconds
    r.rec_overhead_percent r.rec_points r.rec_spans r.rec_identical

(* Surrogate-steered sweep benchmark (BENCH_surrogate.json): the steered
   Max_err study against the golden full fused study on the same plan —
   the pruning claim (grid lanes replayed vs grid size) and the accuracy
   claim (every predicted lane within the tolerance of the golden study)
   in one artifact. The default benchmark is 183.equake: a smooth
   response surface the steering should prune hard, so the prune-factor
   gate has headroom on any box (the timing numbers are informational —
   steering is deterministic, so the lane counts never wobble). *)

type surrogate_result = {
  sur_bench : string;
  sur_scale : int;
  sur_grid_configs : int;  (* grid lanes in the full study (145) *)
  sur_max_err_percent : float;  (* the Max_err steering tolerance *)
  sur_replayed_lanes : int;  (* lanes carrying simulated truth *)
  sur_pruned_lanes : int;  (* lanes filled in by the surrogate *)
  sur_prune_factor : float;  (* grid_configs / replayed_lanes *)
  sur_rounds : int;  (* steering fit-replay rounds *)
  sur_holdout_max_err : float;  (* model's own pre-replay holdout, percent *)
  sur_holdout_mean_err : float;
  sur_predicted_max_err : float;  (* predicted lanes vs golden CPI, percent *)
  sur_full_seconds : float;  (* best-of-N full fused study *)
  sur_steered_seconds : float;  (* best-of-N steered study, fits included *)
  sur_speedup : float;  (* full_seconds / steered_seconds *)
  sur_replayed_identical : bool;  (* replayed lanes = golden lanes, bitwise *)
  sur_within_tolerance : bool;  (* predicted_max_err <= max_err_percent *)
}

let run_surrogate ?(bench = "183.equake") ?(scale = 2) ?(max_err = 1.0) () =
  let b = Pi_workloads.Spec.find bench in
  let config = { Experiment.default_config with scale } in
  let program = b.Pi_workloads.Bench.build ~scale in
  let trace =
    Pi_layout.Run_limiter.trace ~seed:config.Experiment.master_seed program
      ~budget_blocks:config.Experiment.budget_blocks
  in
  let warmup_blocks =
    int_of_float
      (config.Experiment.warmup_fraction
      *. float_of_int (Pi_isa.Trace.blocks_executed trace))
  in
  let placement = Pi_layout.Placement.make program ~seed:1 in
  let plan = Pi_uarch.Replay.compile config.Experiment.machine trace in
  ignore (Sweep.run_grid ~plan ~warmup_blocks trace placement);
  (* Best-of-3, not [grid_reps]: each rep here is a whole study (grid +
     perfect/L-TAGE references + fits), and the gated quantity — the lane
     counts — is deterministic across reps anyway. *)
  let best_of f =
    let result = ref None in
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = now () in
      let r = f () in
      let dt = now () -. t0 in
      if dt < !best then begin
        best := dt;
        result := Some r
      end
    done;
    (Option.get !result, !best)
  in
  let full, full_seconds =
    best_of (fun () ->
        Sweep.run_study ~plan ~warmup_blocks ~benchmark:bench trace placement)
  in
  let steered, steered_seconds =
    best_of (fun () ->
        Sweep.run_study ~plan ~warmup_blocks ~surrogate:(Sweep.Max_err max_err)
          ~benchmark:bench trace placement)
  in
  let grid_configs = Array.length full.Sweep.points in
  let replayed_identical = ref true in
  let predicted_max = ref 0.0 in
  Array.iteri
    (fun i source ->
      let p = steered.Sweep.points.(i) and f = full.Sweep.points.(i) in
      match source with
      | Sweep.Replayed -> if p <> f then replayed_identical := false
      | Sweep.Predicted ->
          let err = Float.abs (p.Sweep.cpi -. f.Sweep.cpi) /. f.Sweep.cpi *. 100.0 in
          if err > !predicted_max then predicted_max := err)
    steered.Sweep.sources;
  let replayed = steered.Sweep.replayed_lanes in
  {
    sur_bench = bench;
    sur_scale = scale;
    sur_grid_configs = grid_configs;
    sur_max_err_percent = max_err;
    sur_replayed_lanes = replayed;
    sur_pruned_lanes = grid_configs - replayed;
    sur_prune_factor =
      (if replayed > 0 then float_of_int grid_configs /. float_of_int replayed
       else 0.0);
    sur_rounds = steered.Sweep.surrogate_rounds;
    sur_holdout_max_err = steered.Sweep.surrogate_max_abs_err;
    sur_holdout_mean_err = steered.Sweep.surrogate_mean_abs_err;
    sur_predicted_max_err = !predicted_max;
    sur_full_seconds = full_seconds;
    sur_steered_seconds = steered_seconds;
    sur_speedup =
      (if steered_seconds > 0.0 then full_seconds /. steered_seconds else 0.0);
    sur_replayed_identical = !replayed_identical;
    sur_within_tolerance = !predicted_max <= max_err;
  }

let surrogate_to_json r =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"bench\": %S," r.sur_bench;
      Printf.sprintf "  \"scale\": %d," r.sur_scale;
      Printf.sprintf "  \"grid_configs\": %d," r.sur_grid_configs;
      Printf.sprintf "  \"max_err_percent\": %.3f," r.sur_max_err_percent;
      Printf.sprintf "  \"replayed_lanes\": %d," r.sur_replayed_lanes;
      Printf.sprintf "  \"pruned_lanes\": %d," r.sur_pruned_lanes;
      Printf.sprintf "  \"prune_factor\": %.2f," r.sur_prune_factor;
      Printf.sprintf "  \"rounds\": %d," r.sur_rounds;
      Printf.sprintf "  \"holdout_max_abs_err\": %.4f," r.sur_holdout_max_err;
      Printf.sprintf "  \"holdout_mean_abs_err\": %.4f," r.sur_holdout_mean_err;
      Printf.sprintf "  \"predicted_cpi_max_err\": %.4f," r.sur_predicted_max_err;
      Printf.sprintf "  \"full_seconds\": %.6f," r.sur_full_seconds;
      Printf.sprintf "  \"steered_seconds\": %.6f," r.sur_steered_seconds;
      Printf.sprintf "  \"speedup\": %.3f," r.sur_speedup;
      Printf.sprintf "  \"replayed_identical\": %b," r.sur_replayed_identical;
      Printf.sprintf "  \"within_tolerance\": %b" r.sur_within_tolerance;
      "}";
    ]

let write_surrogate_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (surrogate_to_json r);
      output_char oc '\n')

let surrogate_summary r =
  Printf.sprintf
    "%s scale %d steered sweep (max-err %.2f%%): %d/%d lanes replayed (%d pruned, \
     %.1fx), %d rounds\n\
     predicted CPI err vs golden: max %.3f%%   holdout: max %.3f%% mean %.3f%%\n\
     full study: %.2fs   steered: %.2fs (%.2fx)   replayed lanes identical: %b   \
     within tolerance: %b"
    r.sur_bench r.sur_scale r.sur_max_err_percent r.sur_replayed_lanes
    r.sur_grid_configs r.sur_pruned_lanes r.sur_prune_factor r.sur_rounds
    r.sur_predicted_max_err r.sur_holdout_max_err r.sur_holdout_mean_err
    r.sur_full_seconds r.sur_steered_seconds r.sur_speedup r.sur_replayed_identical
    r.sur_within_tolerance

let surrogate_failures ~gate r =
  List.filter_map
    (fun x -> x)
    [
      (if not r.sur_replayed_identical then
         Some "steered replayed lanes diverge from the full fused study"
       else None);
      (if not r.sur_within_tolerance then
         Some
           (Printf.sprintf "predicted CPI error %.3f%% above tolerance %.2f%%"
              r.sur_predicted_max_err r.sur_max_err_percent)
       else None);
      (if gate > 0.0 && r.sur_prune_factor < gate then
         Some
           (Printf.sprintf "prune factor %.2fx below gate %.2fx (%d/%d lanes replayed)"
              r.sur_prune_factor gate r.sur_replayed_lanes r.sur_grid_configs)
       else None);
    ]

(* ------------------------------------------------------------------ *)
(* History metric bags: the flat numbers each benchmark contributes to
   the run-history ledger (Pi_obs.History). Names reuse the JSON field
   names so `interferometry compare BENCH_x.json history.jsonl@n` lines
   up where the suffixes match. *)

let history_metrics r =
  [
    ("compile_seconds", r.compile_seconds);
    ("legacy_obs_per_sec", r.legacy_obs_per_sec);
    ("replay_obs_per_sec", r.replay_obs_per_sec);
    ("replay_blocks_per_sec", r.replay_blocks_per_sec);
    ("speedup", r.speedup);
  ]

let sweep_history_metrics r =
  [
    ("baseline_configs_per_sec", r.baseline_configs_per_sec);
    ("fused_configs_per_sec", r.fused_configs_per_sec);
    ("lane_blocks_per_sec", r.lane_blocks_per_sec);
    ("speedup", r.sweep_speedup);
  ]

let cache_sweep_history_metrics r =
  [
    ("cache_baseline_configs_per_sec", r.cache_baseline_configs_per_sec);
    ("cache_fused_configs_per_sec", r.cache_fused_configs_per_sec);
    ("cache_lane_blocks_per_sec", r.cache_lane_blocks_per_sec);
    ("cache_speedup", r.cache_speedup);
  ]

let recorder_history_metrics r =
  [
    ("recorder_off_configs_per_sec", r.rec_off_configs_per_sec);
    ("recorder_on_configs_per_sec", r.rec_on_configs_per_sec);
    ("recorder_overhead_percent", r.rec_overhead_percent);
  ]

let surrogate_history_metrics r =
  [
    ("surrogate_replayed_lanes", float_of_int r.sur_replayed_lanes);
    ("surrogate_prune_factor", r.sur_prune_factor);
    ("surrogate_predicted_cpi_max_err", r.sur_predicted_max_err);
    ("surrogate_holdout_max_abs_err", r.sur_holdout_max_err);
    ("surrogate_speedup", r.sur_speedup);
  ]
