(* Microbenchmark for the compiled-replay path: times plan compilation, the
   legacy interpreter and plan replay over the same placements, checks that
   both produce identical counts, and renders the numbers as JSON for the
   perf trajectory (BENCH_pipeline.json). *)

module Pipeline = Pi_uarch.Pipeline
module Replay = Pi_uarch.Replay

type result = {
  bench : string;
  scale : int;
  layouts : int;
  blocks : int;  (* dynamic blocks per observation *)
  mem_events : int;
  plan_words : int;
  compile_seconds : float;
  legacy_seconds : float;  (* total wall time for [layouts] legacy observations *)
  replay_seconds : float;  (* same placements through the compiled plan *)
  legacy_obs_per_sec : float;
  replay_obs_per_sec : float;
  replay_blocks_per_sec : float;
  speedup : float;  (* replay_obs_per_sec / legacy_obs_per_sec *)
  identical : bool;  (* replay counts = legacy counts on every placement *)
}

(* Durations on the monotonic clock: an NTP step during a timed phase must
   not bend the perf trajectory. *)
let now () = Pi_obs.Clock.now ()

module Span = Pi_obs.Span

let run ?(bench = "400.perlbench") ?(scale = 4) ?(layouts = 12) () =
  if layouts < 1 then invalid_arg "Perf_bench.run: layouts < 1";
  let b = Pi_workloads.Spec.find bench in
  let config = { Experiment.default_config with scale } in
  let machine = config.Experiment.machine in
  let program = b.Pi_workloads.Bench.build ~scale in
  let trace =
    Pi_layout.Run_limiter.trace ~seed:config.Experiment.master_seed program
      ~budget_blocks:config.Experiment.budget_blocks
  in
  let warmup_blocks =
    int_of_float
      (config.Experiment.warmup_fraction
      *. float_of_int (Pi_isa.Trace.blocks_executed trace))
  in
  let placements =
    Array.init layouts (fun i -> Pi_layout.Placement.make program ~seed:(i + 1))
  in
  (* Warm both paths once outside the timed region (page faults, lazy
     initialization) using a placement that is not part of the measurement. *)
  let warm_placement = Pi_layout.Placement.make program ~seed:(layouts + 1) in
  ignore (Pipeline.run_unoptimized ~warmup_blocks machine trace warm_placement);
  ignore (Replay.run ~warmup_blocks (Replay.compile machine trace) warm_placement);
  let timed name f =
    Span.with_ ~name ~args:[ ("bench", bench) ] (fun () ->
        let t0 = now () in
        let result = f () in
        (result, now () -. t0))
  in
  let plan, compile_seconds = timed "perf.compile" (fun () -> Replay.compile machine trace) in
  let legacy, legacy_seconds =
    timed "perf.legacy" (fun () ->
        Array.map (fun p -> Pipeline.run_unoptimized ~warmup_blocks machine trace p) placements)
  in
  let replayed, replay_seconds =
    timed "perf.replay" (fun () -> Array.map (fun p -> Replay.run ~warmup_blocks plan p) placements)
  in
  let identical = legacy = replayed in
  let obs = float_of_int layouts in
  let blocks = Replay.blocks plan in
  {
    bench;
    scale;
    layouts;
    blocks;
    mem_events = Replay.mem_events plan;
    plan_words = Replay.words plan;
    compile_seconds;
    legacy_seconds;
    replay_seconds;
    legacy_obs_per_sec = (if legacy_seconds > 0.0 then obs /. legacy_seconds else 0.0);
    replay_obs_per_sec = (if replay_seconds > 0.0 then obs /. replay_seconds else 0.0);
    replay_blocks_per_sec =
      (if replay_seconds > 0.0 then obs *. float_of_int blocks /. replay_seconds else 0.0);
    speedup = (if replay_seconds > 0.0 then legacy_seconds /. replay_seconds else 0.0);
    identical;
  }

let to_json r =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"bench\": %S," r.bench;
      Printf.sprintf "  \"scale\": %d," r.scale;
      Printf.sprintf "  \"layouts\": %d," r.layouts;
      Printf.sprintf "  \"blocks_per_observation\": %d," r.blocks;
      Printf.sprintf "  \"mem_events_per_observation\": %d," r.mem_events;
      Printf.sprintf "  \"plan_words\": %d," r.plan_words;
      Printf.sprintf "  \"compile_seconds\": %.6f," r.compile_seconds;
      Printf.sprintf "  \"legacy_seconds\": %.6f," r.legacy_seconds;
      Printf.sprintf "  \"replay_seconds\": %.6f," r.replay_seconds;
      Printf.sprintf "  \"legacy_obs_per_sec\": %.2f," r.legacy_obs_per_sec;
      Printf.sprintf "  \"replay_obs_per_sec\": %.2f," r.replay_obs_per_sec;
      Printf.sprintf "  \"replay_blocks_per_sec\": %.0f," r.replay_blocks_per_sec;
      Printf.sprintf "  \"speedup\": %.3f," r.speedup;
      Printf.sprintf "  \"identical_counts\": %b" r.identical;
      "}";
    ]

let write_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json r);
      output_char oc '\n')

let summary r =
  Printf.sprintf
    "%s scale %d: %d blocks/obs, compile %.1fms (amortized over every placement)\n\
     legacy: %.2f obs/s (%.1fms/obs)   replay: %.2f obs/s (%.1fms/obs, %.2fM blocks/s)\n\
     speedup: %.2fx   counts identical: %b   plan: %.1f MiB"
    r.bench r.scale r.blocks (r.compile_seconds *. 1e3) r.legacy_obs_per_sec
    (1e3 *. r.legacy_seconds /. float_of_int r.layouts)
    r.replay_obs_per_sec
    (1e3 *. r.replay_seconds /. float_of_int r.layouts)
    (r.replay_blocks_per_sec /. 1e6) r.speedup r.identical
    (float_of_int (r.plan_words * 8) /. 1024.0 /. 1024.0)
