let parse_int ~name ~default raw =
  match raw with
  | None -> (default, None)
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n > 0 -> (n, None)
      | Some n ->
          ( default,
            Some
              (Printf.sprintf "%s=%d is not positive; using default %d" name n
                 default) )
      | None ->
          ( default,
            Some
              (Printf.sprintf "%s=%S is not an integer; using default %d" name v
                 default) ))

let env_int ?(warn = fun msg -> Pi_obs.Log.warn "%s" msg) name default =
  let value, warning = parse_int ~name ~default (Sys.getenv_opt name) in
  Option.iter warn warning;
  value

let describe knobs =
  knobs
  |> List.map (fun (name, value) -> Printf.sprintf "%s=%d" name value)
  |> String.concat " "
