module Counters = Pi_uarch.Counters
module Pipeline = Pi_uarch.Pipeline
module Span = Pi_obs.Span

(* One tick per observation replayed (computed, not served from a cache);
   the acceptance metric for a cold campaign is
   pi_obs_observations_total = manifest total_jobs. *)
let m_observations =
  Pi_obs.Metrics.counter ~help:"interferometry observations replayed"
    "pi_obs_observations_total"

type config = {
  scale : int;
  budget_blocks : int;
  warmup_fraction : float;
  runs_per_group : int;
  noise : Counters.noise;
  heap_random : bool;
  aslr : bool;
  machine : Pipeline.config;
  master_seed : int;
}

let default_config =
  {
    scale = 8;
    budget_blocks = 220_000;
    warmup_fraction = 0.25;
    runs_per_group = 5;
    noise = Counters.default_noise;
    heap_random = false;
    aslr = false;
    machine = Pi_uarch.Machine.xeon_e5440;
    master_seed = 1;
  }

let quick_config =
  { default_config with scale = 2; budget_blocks = 60_000 }

type prepared = {
  bench : Pi_workloads.Bench.t;
  config : config;
  program : Pi_isa.Program.t;
  trace : Pi_isa.Trace.t;
  warmup_blocks : int;
  plan : Pi_uarch.Replay.plan;
      (* compiled once here; every observation replays it, and campaign
         workers share it read-only across domains *)
}

let prepare ?(config = default_config) (bench : Pi_workloads.Bench.t) =
  let name = bench.Pi_workloads.Bench.name in
  Span.with_ ~name:"prepare" ~args:[ ("bench", name) ] (fun () ->
      let program =
        Span.with_ ~name:"build" ~args:[ ("bench", name) ] (fun () ->
            bench.Pi_workloads.Bench.build ~scale:config.scale)
      in
      let trace =
        Span.with_ ~name:"trace" ~args:[ ("bench", name) ] (fun () ->
            Pi_layout.Run_limiter.trace ~seed:config.master_seed program
              ~budget_blocks:config.budget_blocks)
      in
      let warmup_blocks =
        int_of_float
          (config.warmup_fraction *. float_of_int (Pi_isa.Trace.blocks_executed trace))
      in
      let plan =
        Span.with_ ~name:"compile" ~args:[ ("bench", name) ] (fun () ->
            Pi_uarch.Replay.compile config.machine trace)
      in
      { bench; config; program; trace; warmup_blocks; plan })

type observation = {
  layout_seed : int;
  measurement : Counters.measurement;
}

type dataset = { prepared : prepared; observations : observation array }

(* Per-(benchmark, seed) noise stream so reruns reproduce measurements. *)
let measurement_seed prepared layout_seed =
  let h = Hashtbl.hash (prepared.bench.Pi_workloads.Bench.name, layout_seed) in
  (prepared.config.master_seed * 1_000_003) + h

let exact_counts prepared ~seed =
  let placement =
    Span.with_ ~name:"layout" (fun () ->
        Pi_layout.Placement.make ~heap_random:prepared.config.heap_random
          ~aslr:prepared.config.aslr prepared.program ~seed)
  in
  Span.with_ ~name:"replay" (fun () ->
      Pi_uarch.Replay.run ~warmup_blocks:prepared.warmup_blocks prepared.plan placement)

let observe_seed prepared layout_seed =
  Span.with_ ~name:"observe"
    ~args:
      [
        ("bench", prepared.bench.Pi_workloads.Bench.name);
        ("seed", string_of_int layout_seed);
      ]
    (fun () ->
      let counts = exact_counts prepared ~seed:layout_seed in
      let measurement =
        Counters.measure ~noise:prepared.config.noise
          ~runs_per_group:prepared.config.runs_per_group
          ~seed:(measurement_seed prepared layout_seed)
          counts
      in
      Pi_obs.Metrics.inc m_observations;
      { layout_seed; measurement })

let observe prepared ~n_layouts =
  if n_layouts < 1 then invalid_arg "Experiment.observe: n_layouts < 1";
  {
    prepared;
    observations = Array.init n_layouts (fun i -> observe_seed prepared (i + 1));
  }

let extend dataset ~n_layouts =
  let have = Array.length dataset.observations in
  if n_layouts <= have then dataset
  else
    let extra =
      Array.init (n_layouts - have) (fun i -> observe_seed dataset.prepared (have + i + 1))
    in
    { dataset with observations = Array.append dataset.observations extra }

let run ?config bench ~n_layouts = observe (prepare ?config bench) ~n_layouts

let column f dataset = Array.map (fun o -> f o.measurement) dataset.observations

let cpis = column (fun m -> m.Counters.cpi)
let mpkis = column (fun m -> m.Counters.mpki)
let l1i_mpkis = column (fun m -> m.Counters.l1i_mpki)
let l1d_mpkis = column (fun m -> m.Counters.l1d_mpki)
let l2_mpkis = column (fun m -> m.Counters.l2_mpki)
