module Counters = Pi_uarch.Counters

let header_line =
  "layout_seed,cpi,mpki,l1i_mpki,l1d_mpki,l2_mpki,cycles,instructions,mispredicts,l1i_misses,l1d_misses,l2_misses"

let observation_to_row (o : Experiment.observation) =
  let m = o.Experiment.measurement in
  (* %.17g round-trips every float exactly: the campaign observation cache
     replays these rows in place of simulation, so a refit from CSV must
     reproduce the in-memory coefficients bit for bit. *)
  Printf.sprintf "%d,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g"
    o.Experiment.layout_seed m.Counters.cpi m.Counters.mpki m.Counters.l1i_mpki
    m.Counters.l1d_mpki m.Counters.l2_mpki m.Counters.cycles m.Counters.instructions
    m.Counters.mispredicts m.Counters.l1i_misses m.Counters.l1d_misses m.Counters.l2_misses

let observation_of_row line =
  match String.split_on_char ',' (String.trim line) with
  | [ seed; cpi; mpki; l1i; l1d; l2; cycles; instructions; mispredicts; l1im; l1dm; l2m ]
    -> (
      let f name s =
        match float_of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "bad %s field: %S" name s)
      in
      let ( let* ) r k = Result.bind r k in
      match int_of_string_opt seed with
      | None -> Error (Printf.sprintf "bad layout_seed: %S" seed)
      | Some layout_seed ->
          let* cpi = f "cpi" cpi in
          let* mpki = f "mpki" mpki in
          let* l1i_mpki = f "l1i_mpki" l1i in
          let* l1d_mpki = f "l1d_mpki" l1d in
          let* l2_mpki = f "l2_mpki" l2 in
          let* cycles = f "cycles" cycles in
          let* instructions = f "instructions" instructions in
          let* mispredicts = f "mispredicts" mispredicts in
          let* l1i_misses = f "l1i_misses" l1im in
          let* l1d_misses = f "l1d_misses" l1dm in
          let* l2_misses = f "l2_misses" l2m in
          Ok
            {
              Experiment.layout_seed;
              measurement =
                {
                  Counters.cpi;
                  mpki;
                  l1i_mpki;
                  l1d_mpki;
                  l2_mpki;
                  cycles;
                  instructions;
                  mispredicts;
                  l1i_misses;
                  l1d_misses;
                  l2_misses;
                };
            })
  | _ -> Error (Printf.sprintf "expected 12 fields: %S" line)

let save path (dataset : Experiment.dataset) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header_line ^ "\n");
      Array.iter
        (fun o -> output_string oc (observation_to_row o ^ "\n"))
        dataset.Experiment.observations)

let load_observations path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      match List.rev !lines with
      | [] -> Error "empty file"
      | header :: rows when String.trim header = header_line ->
          let rec parse acc index = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | row :: rest when String.trim row = "" -> parse acc (index + 1) rest
            | row :: rest -> (
                match observation_of_row row with
                | Ok o -> parse (o :: acc) (index + 1) rest
                | Error e -> Error (Printf.sprintf "line %d: %s" index e))
          in
          parse [] 2 rows
      | _ -> Error "missing or unexpected header line")

let reattach prepared observations = { Experiment.prepared; observations }
