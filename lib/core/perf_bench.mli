(** Microbenchmark for the compiled-replay path ({!Pi_uarch.Replay}).

    Times plan compilation, the legacy interpreter
    ({!Pi_uarch.Pipeline.run_unoptimized}) and plan replay over the same
    placements, verifies both produce identical counts, and renders the
    numbers as JSON for the perf trajectory ([BENCH_pipeline.json]). *)

type result = {
  bench : string;
  scale : int;
  layouts : int;  (** placements timed per path *)
  blocks : int;  (** dynamic blocks per observation *)
  mem_events : int;
  plan_words : int;  (** plan footprint, machine words *)
  compile_seconds : float;
  legacy_seconds : float;  (** total for [layouts] legacy observations *)
  replay_seconds : float;  (** same placements through the compiled plan *)
  legacy_obs_per_sec : float;
  replay_obs_per_sec : float;
  replay_blocks_per_sec : float;
  speedup : float;  (** legacy_seconds / replay_seconds *)
  identical : bool;  (** replay counts = legacy counts on every placement *)
}

val run : ?bench:string -> ?scale:int -> ?layouts:int -> unit -> result
(** Build the benchmark (default 400.perlbench at scale 4), trace it once,
    then time [layouts] observations through each path. Both paths are
    warmed with an extra untimed placement first. *)

val to_json : result -> string
val write_json : path:string -> result -> unit

val summary : result -> string
(** Human-readable multi-line summary. *)

(** {1 Fused-sweep benchmark}

    Times the 145-configuration grid ({!Pi_uarch.Sweep.run_grid}) through the
    sequential per-config loop ([fused:false]) and the fused one-pass engine,
    verifies the full studies ({!Pi_uarch.Sweep.run_study}) are bit-identical
    across the two paths, and renders the throughput numbers as JSON
    ([BENCH_sweep.json]). *)

type sweep_result = {
  sweep_bench : string;
  sweep_scale : int;
  study_configs : int;  (** grid configurations timed per study (145) *)
  fused_lanes : int;  (** configurations swept by the one-pass engine *)
  fallback_lanes : int;  (** configurations on the per-config path *)
  blocks_per_pass : int;  (** dynamic blocks walked per study pass *)
  baseline_seconds : float;
      (** best-of-5 wall time of the 145-config grid, sequential path *)
  fused_seconds : float;  (** best-of-5 wall time of the grid, fused path *)
  baseline_configs_per_sec : float;
  fused_configs_per_sec : float;
  lane_blocks_per_sec : float;  (** fused_lanes x blocks / fused_seconds *)
  sweep_speedup : float;  (** baseline_seconds / fused_seconds *)
  sweep_identical : bool;  (** fused study = sequential study, bit for bit *)
}

val run_sweep : ?bench:string -> ?scale:int -> unit -> sweep_result
(** Build the benchmark (default 400.perlbench at scale 4), trace it once,
    then time {!Sweep.run_grid} through each path on the same placement —
    best of five reps per path, so a scheduler hiccup in one rep cannot
    fail the gate. The perfect/L-TAGE references and the regression are
    identical sequential work on both paths and are excluded from timing;
    [sweep_identical] still compares the two {e full} studies (and the two
    grids) bit for bit. Both paths are warmed by one untimed fused study
    first. *)

val sweep_to_json : sweep_result -> string
val write_sweep_json : path:string -> sweep_result -> unit

val sweep_summary : sweep_result -> string
(** Human-readable multi-line summary. *)

(** {1 Cache-axis sweep benchmark}

    Same protocol as {!run_sweep} for the cache axis: times the
    100-geometry grid ({!Pi_uarch.Sweep.run_cache_grid}) through the
    sequential per-geometry loop and the fused one-pass cache batch,
    verifies the full studies ({!Pi_uarch.Sweep.run_cache_study}) are
    bit-identical across the two paths, and renders the throughput
    numbers as JSON ([BENCH_cache_sweep.json]). *)

type cache_sweep_result = {
  cache_bench : string;
  cache_scale : int;
  cache_study_configs : int;  (** grid geometries timed per study (100) *)
  cache_fused_lanes : int;  (** always the whole grid — no fallback lanes *)
  cache_blocks_per_pass : int;
  cache_baseline_seconds : float;
      (** best-of-5 wall time of the 100-geometry grid, sequential path *)
  cache_fused_seconds : float;
  cache_baseline_configs_per_sec : float;
  cache_fused_configs_per_sec : float;
  cache_lane_blocks_per_sec : float;
  cache_speedup : float;  (** baseline_seconds / fused_seconds *)
  cache_identical : bool;  (** fused study = sequential study, bit for bit *)
}

val run_cache_sweep : ?bench:string -> ?scale:int -> unit -> cache_sweep_result
(** Build the benchmark (default 400.perlbench at scale 4), trace it once,
    then time {!Sweep.run_cache_grid} through each path on the same
    placement — best of five reps per path. The degradation-model fit is
    identical sequential work on both paths and is excluded from timing;
    [cache_identical] still compares the two full studies bit for bit. *)

val cache_sweep_to_json : cache_sweep_result -> string
val write_cache_sweep_json : path:string -> cache_sweep_result -> unit

val cache_sweep_summary : cache_sweep_result -> string
(** Human-readable multi-line summary. *)

(** {1 Flight-recorder overhead benchmark}

    Times the fused sweep grid with the recorder fully on — background
    {!Pi_obs.Timeseries} scrape loop at a 10 ms cadence (100× harsher
    than the daemon's 1 s default) plus a per-job {!Pi_obs.Span}
    collector, i.e. what a daemon job pays — against the same grid with
    the recorder off. [make perf] gates [rec_overhead_percent] at 5%
    ([PI_RECORDER_GATE]); the numbers land in [BENCH_recorder.json]. *)

type recorder_result = {
  rec_bench : string;
  rec_scale : int;
  rec_configs : int;  (** grid configurations per timed rep *)
  rec_scrape_interval : float;  (** seconds between recorder scrapes *)
  rec_off_seconds : float;  (** best-of-5 grid wall time, recorder off *)
  rec_on_seconds : float;  (** same grid, scrape loop + span collector on *)
  rec_off_configs_per_sec : float;
  rec_on_configs_per_sec : float;
  rec_overhead_percent : float;  (** (on − off) / off × 100 *)
  rec_points : int;  (** raw time-series points captured during the on pass *)
  rec_spans : int;  (** spans captured by the per-job collector *)
  rec_identical : bool;  (** grid points identical across recorder on/off *)
}

val run_recorder : ?bench:string -> ?scale:int -> unit -> recorder_result
(** Same protocol as {!run_sweep}: compile once, warm once, best-of-5
    timed grids per mode. Restores the global tracing flag on exit. *)

val recorder_to_json : recorder_result -> string
val write_recorder_json : path:string -> recorder_result -> unit

val recorder_summary : recorder_result -> string
(** Human-readable multi-line summary. *)

(** {1 Surrogate-steered sweep benchmark}

    Runs the steered [Max_err] predictor study
    ({!Pi_uarch.Sweep.run_study} with [surrogate]) against the golden
    full fused study on the same compiled plan, and records the pruning
    claim — how few grid lanes the steering replayed — next to the
    accuracy claim — every predicted lane within the tolerance of the
    golden CPI ([BENCH_surrogate.json]). [make perf] gates the prune
    factor at 5× ([PI_SURROGATE_GATE]); replayed-lane bit-identity and
    predicted-lane accuracy are enforced whenever the result is gated,
    including [make surrogate-smoke]. *)

type surrogate_result = {
  sur_bench : string;
  sur_scale : int;
  sur_grid_configs : int;  (** grid lanes in the full study (145) *)
  sur_max_err_percent : float;  (** the [Max_err] steering tolerance *)
  sur_replayed_lanes : int;  (** lanes carrying simulated truth *)
  sur_pruned_lanes : int;  (** lanes filled in by the surrogate *)
  sur_prune_factor : float;  (** [grid_configs / replayed_lanes] *)
  sur_rounds : int;  (** steering fit-replay rounds *)
  sur_holdout_max_err : float;
      (** the model's own pre-replay holdout error, percent CPI *)
  sur_holdout_mean_err : float;
  sur_predicted_max_err : float;
      (** max CPI error of the predicted lanes against the golden study,
          percent — the acceptance bound *)
  sur_full_seconds : float;  (** best-of-3 full fused study wall time *)
  sur_steered_seconds : float;  (** best-of-3 steered study, fits included *)
  sur_speedup : float;  (** [full_seconds / steered_seconds] *)
  sur_replayed_identical : bool;
      (** every replayed lane bit-identical to the golden study *)
  sur_within_tolerance : bool;
      (** [predicted_max_err <= max_err_percent] *)
}

val run_surrogate :
  ?bench:string -> ?scale:int -> ?max_err:float -> unit -> surrogate_result
(** Build the benchmark (default 183.equake at scale 2 — a smooth
    response surface the steering prunes hard), trace and compile once,
    warm with one untimed fused grid, then time the full fused study and
    the steered [Max_err max_err] study (default tolerance 1.0%), best of
    three each. Steering is deterministic, so the gated lane counts are
    identical across reps; only the wall times vary. *)

val surrogate_to_json : surrogate_result -> string
val write_surrogate_json : path:string -> surrogate_result -> unit

val surrogate_summary : surrogate_result -> string
(** Human-readable multi-line summary. *)

val surrogate_failures : gate:float -> surrogate_result -> string list
(** Gate verdicts, empty when the result passes: replayed-lane
    divergence and tolerance violations always fail; a positive [gate]
    additionally requires [sur_prune_factor >= gate]. Shared by
    [bench/perf.exe] and [bench/surrogate.exe] so [make perf] and
    [make surrogate-smoke] enforce identical rules. *)

(** {1 History metric bags}

    The flat numbers each benchmark contributes to the run-history
    ledger ({!Pi_obs.History}); names reuse the BENCH JSON field names
    so [interferometry compare] lines up across record sources. *)

val history_metrics : result -> (string * float) list
val sweep_history_metrics : sweep_result -> (string * float) list
val cache_sweep_history_metrics : cache_sweep_result -> (string * float) list
val recorder_history_metrics : recorder_result -> (string * float) list
val surrogate_history_metrics : surrogate_result -> (string * float) list
