(** Microbenchmark for the compiled-replay path ({!Pi_uarch.Replay}).

    Times plan compilation, the legacy interpreter
    ({!Pi_uarch.Pipeline.run_unoptimized}) and plan replay over the same
    placements, verifies both produce identical counts, and renders the
    numbers as JSON for the perf trajectory ([BENCH_pipeline.json]). *)

type result = {
  bench : string;
  scale : int;
  layouts : int;  (** placements timed per path *)
  blocks : int;  (** dynamic blocks per observation *)
  mem_events : int;
  plan_words : int;  (** plan footprint, machine words *)
  compile_seconds : float;
  legacy_seconds : float;  (** total for [layouts] legacy observations *)
  replay_seconds : float;  (** same placements through the compiled plan *)
  legacy_obs_per_sec : float;
  replay_obs_per_sec : float;
  replay_blocks_per_sec : float;
  speedup : float;  (** legacy_seconds / replay_seconds *)
  identical : bool;  (** replay counts = legacy counts on every placement *)
}

val run : ?bench:string -> ?scale:int -> ?layouts:int -> unit -> result
(** Build the benchmark (default 400.perlbench at scale 4), trace it once,
    then time [layouts] observations through each path. Both paths are
    warmed with an extra untimed placement first. *)

val to_json : result -> string
val write_json : path:string -> result -> unit

val summary : result -> string
(** Human-readable multi-line summary. *)
