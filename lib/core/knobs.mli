(** Environment-variable knobs for the harnesses ([PI_LAYOUTS], [PI_SCALE],
    ...). Invalid or nonpositive values warn and fall back to the default
    rather than being silently ignored. *)

val parse_int : name:string -> default:int -> string option -> int * string option
(** [parse_int ~name ~default raw] parses a raw environment value. Returns
    the effective value plus a warning message when [raw] was present but
    not a positive integer (in which case the default is used). Pure —
    this is the tested core of {!env_int}. *)

val env_int : ?warn:(string -> unit) -> string -> int -> int
(** [env_int name default] reads [name] from the environment via
    {!parse_int}. Warnings go to [warn] (default: {!Pi_obs.Log.warn},
    so [PI_LOG=quiet] silences them). *)

val describe : (string * int) list -> string
(** One-line ["NAME=value NAME=value ..."] rendering of effective knob
    values, for run headers. *)
