(** The interferometry experiment: many semantically equivalent placements
    of one benchmark, each measured through the noisy counter protocol.

    The pipeline mirrors the paper's methodology end to end: compile the
    benchmark once ({!prepare} interprets it once into a layout-independent
    trace, bounded by the two-pass run-length instrumentation), then for
    each PRNG seed link a reordered executable, run it on the modelled
    machine, and collect counter measurements (3 groups x 5 runs,
    median-by-cycles). Observations are reproducible from
    [(benchmark, config, seed)]. *)

type config = {
  scale : int;  (** workload trip-count multiplier *)
  budget_blocks : int;  (** run-length budget (the "two minutes") *)
  warmup_fraction : float;  (** leading fraction of the trace not measured *)
  runs_per_group : int;  (** counter-protocol repetitions (paper: 5) *)
  noise : Pi_uarch.Counters.noise;
  heap_random : bool;  (** DieHard-style heap randomization (Fig 3 mode) *)
  aslr : bool;  (** address-space randomization; off on the paper's systems *)
  machine : Pi_uarch.Pipeline.config;
  master_seed : int;
}

val default_config : config
(** Scale 8 (~200k-block traces), 25% warmup, 5 runs/group, default noise,
    bump heap, the Xeon-like machine, master seed 1. *)

val quick_config : config
(** Small traces for tests: scale 2, reduced budget. *)

type prepared = {
  bench : Pi_workloads.Bench.t;
  config : config;
  program : Pi_isa.Program.t;
  trace : Pi_isa.Trace.t;
  warmup_blocks : int;
  plan : Pi_uarch.Replay.plan;
      (** compiled replay plan for [machine]/[trace]; placement-invariant *)
}

val prepare : ?config:config -> Pi_workloads.Bench.t -> prepared
(** Build the program, its bounded trace, and the compiled replay plan once;
    reused by every layout. *)

type observation = {
  layout_seed : int;
  measurement : Pi_uarch.Counters.measurement;
}

type dataset = {
  prepared : prepared;
  observations : observation array;
}

val observe_seed : prepared -> int -> observation
(** Link the placement for one seed, run the machine, apply the
    measurement protocol. *)

val observe : prepared -> n_layouts:int -> dataset
(** Observations for seeds [1 .. n_layouts]. *)

val extend : dataset -> n_layouts:int -> dataset
(** Grow a dataset to [n_layouts] total, reusing existing observations —
    the paper's adaptive 100 -> 200 -> 300 sampling. *)

val run : ?config:config -> Pi_workloads.Bench.t -> n_layouts:int -> dataset
(** [prepare] + [observe]. *)

(** {2 Column accessors} *)

val cpis : dataset -> float array
val mpkis : dataset -> float array
val l1i_mpkis : dataset -> float array
val l1d_mpkis : dataset -> float array
val l2_mpkis : dataset -> float array

val exact_counts : prepared -> seed:int -> Pi_uarch.Pipeline.counts
(** Noise-free machine counts for one placement (simulator view). *)
