module J = Pi_campaign.Telemetry

type params = (string * string) list

type route = {
  meth : string;
  pattern : string;
  segments : string list;
  handler : params -> Http.request -> Http.response;
}

let segments_of path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let make meth pattern handler =
  { meth; pattern; segments = segments_of pattern; handler }

let get pattern handler = make "GET" pattern handler
let post pattern handler = make "POST" pattern handler

let json code value =
  { Http.code; content_type = "application/json"; body = J.to_string value ^ "\n" }

let text code body = { Http.code; content_type = "text/plain"; body }

let error code msg = json code (J.Obj [ ("error", J.String msg) ])

(* Match request segments against pattern segments; [":name"] binds. *)
let match_segments pattern_segs path_segs =
  let rec go bound = function
    | [], [] -> Some (List.rev bound)
    | p :: ps, s :: ss ->
        if String.length p > 0 && p.[0] = ':' then
          go ((String.sub p 1 (String.length p - 1), s) :: bound) (ps, ss)
        else if p = s then go bound (ps, ss)
        else None
    | _ -> None
  in
  go [] (pattern_segs, path_segs)

let dispatch routes req =
  let path_segs = segments_of req.Http.path in
  (* First pass: exact method+pattern match. Second: pattern matched but
     method did not — that is a 405, labelled with the pattern it hit. *)
  let rec find = function
    | [] -> None
    | r :: rest -> (
        match match_segments r.segments path_segs with
        | Some params when r.meth = req.Http.meth -> Some (`Hit (r, params))
        | Some _ -> (
            match find rest with
            | Some (`Hit _) as hit -> hit
            | _ -> Some (`Wrong_method r))
        | None -> find rest)
  in
  match find routes with
  | Some (`Hit (r, params)) -> (
      match r.handler params req with
      | resp -> (resp, r.pattern)
      | exception exn ->
          (error 500 (Printf.sprintf "internal error: %s" (Printexc.to_string exn)),
           r.pattern))
  | Some (`Wrong_method r) ->
      (error 405 (Printf.sprintf "%s not allowed on %s" req.Http.meth r.pattern),
       r.pattern)
  | None -> (error 404 (Printf.sprintf "no route for %s" req.Http.path), "*unmatched*")
