module J = Pi_campaign.Telemetry
module E = Interferometry.Experiment
module Model = Interferometry.Model
module Predict = Interferometry.Predict
module Obs_cache = Pi_campaign.Obs_cache
module Span = Pi_obs.Span
module Linreg = Pi_stats.Linreg
module C = Pi_uarch.Counters

type kind = Measure | Predict | Campaign | Cache_sweep | Bundle | Estimate

type params = {
  kind : kind;
  benches : string list;
  layouts : int;
  seed : int;
  scale : int;
  heap_random : bool;
  quick : bool;
  dir : string;
}

let kind_name = function
  | Measure -> "measure"
  | Predict -> "predict"
  | Campaign -> "campaign"
  | Cache_sweep -> "cache_sweep"
  | Bundle -> "bundle"
  | Estimate -> "estimate"

let kind_of_name = function
  | "measure" -> Some Measure
  | "predict" -> Some Predict
  | "campaign" -> Some Campaign
  | "cache_sweep" -> Some Cache_sweep
  | "bundle" -> Some Bundle
  | "estimate" -> Some Estimate
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Submission parsing                                                 *)

let known_fields =
  [ "kind"; "bench"; "benches"; "suite"; "layouts"; "seed"; "scale";
    "heap_random"; "quick"; "dir" ]

let suite_benches = function
  | "2006" -> Some (Pi_workloads.Spec.all_2006 ())
  | "2000" -> Some (Pi_workloads.Spec.extended_2000 ())
  | "table1" -> Some (Pi_workloads.Spec.table1_2006 ())
  | "sim" -> Some (Pi_workloads.Spec.simulation_suite ())
  | "all" -> Some (Pi_workloads.Spec.everything ())
  | _ -> None

let parse json =
  let ( let* ) = Result.bind in
  match json with
  | J.Obj fields ->
      let* () =
        match
          List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields
        with
        | Some (k, _) -> Error (Printf.sprintf "unknown field %S" k)
        | None -> Ok ()
      in
      let field name = List.assoc_opt name fields in
      let* kind =
        match field "kind" with
        | Some (J.String s) -> (
            match kind_of_name s with
            | Some k -> Ok k
            | None -> Error (Printf.sprintf "unknown kind %S" s))
        | Some _ -> Error "field \"kind\" must be a string"
        | None -> Error "missing field \"kind\""
      in
      let int_field name ~min ~max ~default =
        match field name with
        | None -> Ok default
        | Some (J.Int i) when i >= min && i <= max -> Ok i
        | Some (J.Int i) ->
            Error (Printf.sprintf "field %S out of range: %d not in %d..%d" name i min max)
        | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
      in
      let bool_field name ~default =
        match field name with
        | None -> Ok default
        | Some (J.Bool b) -> Ok b
        | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)
      in
      let* dir =
        match (kind, field "dir") with
        | Bundle, Some (J.String d) when d <> "" -> Ok d
        | Bundle, Some _ -> Error "field \"dir\" must be a non-empty string"
        | Bundle, None -> Error "kind \"bundle\" requires field \"dir\""
        | _, Some _ -> Error "field \"dir\" only applies to kind \"bundle\""
        | _, None -> Ok ""
      in
      (* A bundle job names no benchmarks — its subject is a directory. *)
      if kind = Bundle then begin
        let* () =
          match (field "bench", field "benches", field "suite") with
          | None, None, None -> Ok ()
          | _ -> Error "kind \"bundle\" takes no benchmarks"
        in
        let* quick = bool_field "quick" ~default:false in
        let base = if quick then E.quick_config else E.default_config in
        let* layouts = int_field "layouts" ~min:3 ~max:1000 ~default:10 in
        let* seed =
          int_field "seed" ~min:0 ~max:1_000_000_000 ~default:base.E.master_seed
        in
        let* scale = int_field "scale" ~min:1 ~max:64 ~default:base.E.scale in
        let* heap_random = bool_field "heap_random" ~default:false in
        Ok { kind; benches = []; layouts; seed; scale; heap_random; quick; dir }
      end
      else
      let* named =
        match (field "bench", field "benches", field "suite") with
        | Some (J.String b), None, None -> Ok [ b ]
        | None, Some (J.List l), None ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match item with
                | J.String b -> Ok (b :: acc)
                | _ -> Error "field \"benches\" must be a list of strings")
              (Ok []) l
            |> Result.map List.rev
        | None, None, Some (J.String s) -> (
            match suite_benches s with
            | Some benches -> Ok (Pi_workloads.Spec.names benches)
            | None -> Error (Printf.sprintf "unknown suite %S" s))
        | None, None, None ->
            Error "one of \"bench\", \"benches\" or \"suite\" is required"
        | _ -> Error "give exactly one of \"bench\", \"benches\" or \"suite\""
      in
      let* benches =
        List.fold_left
          (fun acc name ->
            let* acc = acc in
            match Pi_workloads.Spec.find name with
            | bench -> Ok (bench.Pi_workloads.Bench.name :: acc)
            | exception Not_found ->
                Error (Printf.sprintf "unknown benchmark %S" name))
          (Ok []) named
        |> Result.map (fun l -> List.sort_uniq compare l)
      in
      let* () = if benches = [] then Error "no benchmarks given" else Ok () in
      let* () =
        match kind with
        | Predict when List.length benches <> 1 ->
            Error "kind \"predict\" takes exactly one benchmark"
        | Cache_sweep when List.length benches <> 1 ->
            Error "kind \"cache_sweep\" takes exactly one benchmark"
        | Estimate when List.length benches <> 1 ->
            Error "kind \"estimate\" takes exactly one benchmark"
        | _ -> Ok ()
      in
      let* quick = bool_field "quick" ~default:false in
      let base = if quick then E.quick_config else E.default_config in
      let* layouts = int_field "layouts" ~min:3 ~max:1000 ~default:10 in
      let* seed = int_field "seed" ~min:0 ~max:1_000_000_000 ~default:base.E.master_seed in
      let* scale = int_field "scale" ~min:1 ~max:64 ~default:base.E.scale in
      let* heap_random = bool_field "heap_random" ~default:false in
      Ok { kind; benches; layouts; seed; scale; heap_random; quick; dir }
  | _ -> Error "submission body must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Identity                                                           *)

let canonical p =
  J.Obj
    ([
       ("kind", J.String (kind_name p.kind));
       ("benches", J.List (List.map (fun b -> J.String b) p.benches));
       ("layouts", J.Int p.layouts);
       ("seed", J.Int p.seed);
       ("scale", J.Int p.scale);
       ("heap_random", J.Bool p.heap_random);
       ("quick", J.Bool p.quick);
     ]
    (* Only bundle jobs carry a directory; keeping the field out of every
       other kind's canonical form preserves their pre-existing keys (and
       hence job ids across a daemon upgrade). *)
    @ if p.dir = "" then [] else [ ("dir", J.String p.dir) ])

let key p = Digest.to_hex (Digest.string (J.to_string (canonical p)))
let id_of_key key = "j-" ^ String.sub key 0 12

let config_of p =
  let base = if p.quick then E.quick_config else E.default_config in
  { base with E.master_seed = p.seed; scale = p.scale; heap_random = p.heap_random }

(* ------------------------------------------------------------------ *)
(* Result documents                                                   *)

let measurement_json (m : C.measurement) =
  J.Obj
    [
      ("cpi", J.Float m.C.cpi);
      ("mpki", J.Float m.C.mpki);
      ("l1i_mpki", J.Float m.C.l1i_mpki);
      ("l1d_mpki", J.Float m.C.l1d_mpki);
      ("l2_mpki", J.Float m.C.l2_mpki);
      ("cycles", J.Float m.C.cycles);
      ("instructions", J.Float m.C.instructions);
      ("mispredicts", J.Float m.C.mispredicts);
      ("l1i_misses", J.Float m.C.l1i_misses);
      ("l1d_misses", J.Float m.C.l1d_misses);
      ("l2_misses", J.Float m.C.l2_misses);
    ]

let observation_json (o : E.observation) =
  J.Obj
    [
      ("seed", J.Int o.E.layout_seed);
      ("measurement", measurement_json o.E.measurement);
    ]

let interval_json (i : Linreg.interval) =
  J.Obj
    [
      ("lower", J.Float i.Linreg.lower);
      ("estimate", J.Float i.Linreg.estimate);
      ("upper", J.Float i.Linreg.upper);
    ]

let fit_json (m : Model.t) =
  J.Obj
    [
      ("benchmark", J.String m.Model.benchmark);
      ("slope", J.Float m.Model.regression.Linreg.slope);
      ("intercept", J.Float m.Model.regression.Linreg.intercept);
      ("r", J.Float m.Model.regression.Linreg.r);
      ("r_squared", J.Float m.Model.regression.Linreg.r_squared);
      ("n_layouts", J.Int m.Model.n_layouts);
      ("mean_mpki", J.Float m.Model.mean_mpki);
      ("mean_cpi", J.Float m.Model.mean_cpi);
      ("perfect_prediction", interval_json m.Model.perfect_prediction);
    ]

(* The same fit [Model.fit] computes, but from bare observations — the
   cache fast path has no [prepared] (and must not pay for one). *)
let fit_of_observations ~bench (observations : E.observation array) =
  let xs = Array.map (fun o -> o.E.measurement.C.mpki) observations in
  let ys = Array.map (fun o -> o.E.measurement.C.cpi) observations in
  let regression = Linreg.fit xs ys in
  {
    Model.benchmark = bench;
    regression;
    n_layouts = Array.length xs;
    mean_mpki = Pi_stats.Descriptive.mean xs;
    mean_cpi = Pi_stats.Descriptive.mean ys;
    perfect_prediction = Linreg.prediction_interval regression 0.0;
  }

let bench_doc ~bench ~config (observations : E.observation array) =
  let fit =
    Span.with_ ~cat:"serve" ~name:"job.fit" ~args:[ ("bench", bench) ] (fun () ->
        fit_of_observations ~bench observations)
  in
  J.Obj
    [
      ("bench", J.String bench);
      ("layouts", J.Int (Array.length observations));
      ("config_digest", J.String (Obs_cache.config_digest config));
      ("fit", fit_json fit);
      ("observations", J.List (Array.to_list (Array.map observation_json observations)));
    ]

let evaluation_json (e : Predict.evaluation) =
  J.Obj
    [
      ("predictor", J.String e.Predict.predictor);
      ("mean_mpki", J.Float e.Predict.mean_mpki);
      ("cpi", interval_json e.Predict.cpi);
      ("observed", J.Bool e.Predict.observed);
    ]

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)

(* Observations for seeds [1..layouts], cache-first. Returns the sorted
   array plus whether anything had to be computed (prepare is only paid
   when a seed is missing). Fresh observations are stored one at a time:
   a crash mid-job loses at most the seed in flight, and the replayed job
   resumes from what already reached the cache. *)
let observations_for ~cache ~config ~layouts bench_name =
  let bench = Pi_workloads.Spec.find bench_name in
  let cached =
    Span.with_ ~cat:"serve" ~name:"job.cache" ~args:[ ("bench", bench_name) ]
      (fun () -> Obs_cache.load cache ~bench:bench_name ~config)
  in
  let by_seed = Hashtbl.create (Array.length cached) in
  Array.iter (fun o -> Hashtbl.replace by_seed o.E.layout_seed o) cached;
  let missing =
    List.filter
      (fun seed -> not (Hashtbl.mem by_seed seed))
      (List.init layouts (fun i -> i + 1))
  in
  if missing <> [] then
    Span.with_ ~cat:"serve" ~name:"job.replay"
      ~args:
        [ ("bench", bench_name); ("missing", string_of_int (List.length missing)) ]
      (fun () ->
        let prepared = E.prepare ~config bench in
        List.iter
          (fun seed ->
            let obs = E.observe_seed prepared seed in
            Obs_cache.store cache ~bench:bench_name ~config [| obs |];
            Hashtbl.replace by_seed seed obs)
          missing);
  Array.init layouts (fun i -> Hashtbl.find by_seed (i + 1))

let run_measure ~cache p =
  let config = config_of p in
  let docs =
    List.map
      (fun bench ->
        bench_doc ~bench ~config (observations_for ~cache ~config ~layouts:p.layouts bench))
      p.benches
  in
  J.Obj
    [
      ("kind", J.String (kind_name p.kind));
      ("params", canonical p);
      ("benches", J.List docs);
    ]

(* Predict always prepares — the Pin-style candidate runs need the trace —
   but the counter observations still come cache-first. *)
let run_predict ~cache p =
  let config = config_of p in
  let bench_name = List.hd p.benches in
  let bench = Pi_workloads.Spec.find bench_name in
  let observations = observations_for ~cache ~config ~layouts:p.layouts bench_name in
  let prepared = E.prepare ~config bench in
  let dataset = { E.prepared; observations } in
  let model = Model.fit dataset in
  let evaluations = Predict.evaluate dataset model in
  J.Obj
    [
      ("kind", J.String "predict");
      ("params", canonical p);
      ("bench", J.String bench_name);
      ("config_digest", J.String (Obs_cache.config_digest config));
      ("fit", fit_json model);
      ("evaluations", J.List (List.map evaluation_json evaluations));
    ]

(* The cache-geometry degradation study (INTERPLAY-style): one fused
   Replay pass over 100 L1I/L2 variants of the seed machine, plus the
   CPI ~ (L1I MPKI, L2 MPKI) fit. No per-seed observations, so nothing to
   cache — the study itself is deterministic in (bench, config). *)
module Sweep = Pi_uarch.Sweep

let cache_point_json (pt : Sweep.cache_point) =
  J.Obj
    [
      ("geometry", J.String pt.Sweep.geometry_name);
      ("l1i_mpki", J.Float pt.Sweep.l1i_mpki);
      ("l2_mpki", J.Float pt.Sweep.l2_mpki);
      ("cpi", J.Float pt.Sweep.cache_cpi);
    ]

let run_cache_sweep p =
  let config = config_of p in
  let bench_name = List.hd p.benches in
  let bench = Pi_workloads.Spec.find bench_name in
  let prepared = E.prepare ~config bench in
  let placement = Pi_layout.Placement.natural prepared.E.program in
  let s =
    Sweep.run_cache_study ~warmup_blocks:prepared.E.warmup_blocks ~benchmark:bench_name
      prepared.E.trace placement
  in
  let d = s.Sweep.degradation in
  J.Obj
    [
      ("kind", J.String "cache_sweep");
      ("params", canonical p);
      ("bench", J.String bench_name);
      ("config_digest", J.String (Obs_cache.config_digest config));
      ( "degradation",
        J.Obj
          [
            ("l1i_mpki_coefficient", J.Float d.Pi_stats.Multireg.coefficients.(0));
            ("l2_mpki_coefficient", J.Float d.Pi_stats.Multireg.coefficients.(1));
            ("intercept", J.Float d.Pi_stats.Multireg.intercept);
            ("r_squared", J.Float d.Pi_stats.Multireg.r_squared);
          ] );
      ("seed_point", cache_point_json s.Sweep.seed_point);
      ("predicted_seed_cpi", J.Float s.Sweep.predicted_seed_cpi);
      ("seed_error_percent", J.Float s.Sweep.seed_error_percent);
      ("fused_lanes", J.Int s.Sweep.cache_fused_lanes);
      ("warmup_blocks", J.Int s.Sweep.cache_warmup_blocks);
      ("points", J.List (Array.to_list (Array.map cache_point_json s.Sweep.cache_points)));
    ]

(* Estimate (PR-10 surrogate serving): answer instantly from whatever the
   observation cache already holds — no [prepare], no replay — and name
   the Measure twin the server enqueues in the background to refine it.
   The twin shares every parameter except [kind], so its id is derivable
   here without talking to the server, and once it completes the cache
   holds every seed and a resubmitted estimate converges bit-for-bit on
   the refined fit. Fewer than 3 cached observations is a {e negative
   estimate} — ok:false with the reason — not a job failure: there is
   simply nothing to estimate from yet. *)
module Surrogate = Pi_stats.Surrogate

let refined_job_id p = id_of_key (key { p with kind = Measure })

let run_estimate ~cache p =
  let config = config_of p in
  let bench_name = List.hd p.benches in
  let cached =
    Span.with_ ~cat:"serve" ~name:"job.cache" ~args:[ ("bench", bench_name) ]
      (fun () -> Obs_cache.load cache ~bench:bench_name ~config)
  in
  (* Only seeds the Measure twin will itself observe: the estimate is a
     prediction of that job's document, so extra cached seeds outside
     [1..layouts] must not leak into the fit. *)
  let obs =
    Array.of_list
      (List.filter
         (fun o -> o.E.layout_seed >= 1 && o.E.layout_seed <= p.layouts)
         (Array.to_list cached))
  in
  Array.sort (fun a b -> compare a.E.layout_seed b.E.layout_seed) obs;
  let doc ~ok fields =
    J.Obj
      ([
         ("kind", J.String "estimate");
         ("params", canonical p);
         ("bench", J.String bench_name);
         ("config_digest", J.String (Obs_cache.config_digest config));
         ("ok", J.Bool ok);
         ("cached_layouts", J.Int (Array.length obs));
         ("requested_layouts", J.Int p.layouts);
         ("refined_job", J.String (refined_job_id p));
       ]
      @ fields)
  in
  if Array.length obs < 3 then
    doc ~ok:false
      [
        ( "error",
          J.String
            (Printf.sprintf
               "only %d cached observation(s); the refined measure job will \
                populate the cache"
               (Array.length obs)) );
      ]
  else begin
    let fit = fit_of_observations ~bench:bench_name obs in
    (* Honest error bar on the CPI ~ MPKI map: held-out fold residuals of
       a one-feature surrogate, not the in-sample fit error (which is ~0
       whenever the fit near-interpolates a small cache). *)
    let xs = Array.map (fun o -> [| o.E.measurement.C.mpki |]) obs in
    let ys = Array.map (fun o -> o.E.measurement.C.cpi) obs in
    let s = Surrogate.fit xs ys in
    let oof = Surrogate.oof_residuals s in
    let max_oof =
      Array.fold_left (fun acc r -> Float.max acc (Float.abs r)) 0.0 oof
    in
    doc ~ok:true
      [
        ("fit", fit_json fit);
        ("cpi_oof_abs_err_max", J.Float max_oof);
        ("cpi_oof_abs_err_p90", J.Float (Surrogate.oof_p90 s));
        ("stale", J.Bool (Array.length obs < p.layouts));
      ]
  end

(* Bundle verification (PR-9 run bundles): re-hash every pinned artifact
   in a bundle directory against its manifest. The report is a pure
   function of the bundle's current bytes, so the result document is
   deterministic for a given on-disk state. An unreadable manifest is a
   {e negative verification result} — ok:false with the reason — not a
   job failure: the job did its work, the bundle just failed it. *)
module Bundle = Pi_campaign.Bundle

let run_bundle p =
  let doc ~ok fields =
    J.Obj
      ([
         ("kind", J.String "bundle");
         ("params", canonical p);
         ("dir", J.String p.dir);
         ("ok", J.Bool ok);
       ]
      @ fields)
  in
  match Bundle.verify ~dir:p.dir with
  | Error msg -> doc ~ok:false [ ("error", J.String msg) ]
  | Ok (m, report) ->
      doc ~ok:(Bundle.ok report)
        [
          ("checked", J.Int report.Bundle.checked);
          ( "problems",
            J.List
              (List.map
                 (fun (pr : Bundle.problem) ->
                   J.Obj
                     [
                       ("path", J.String pr.Bundle.path);
                       ("reason", J.String pr.Bundle.reason);
                     ])
                 report.Bundle.problems) );
          ( "bundle",
            J.Obj
              [
                ("kind", J.String m.Bundle.kind);
                ("label", J.String m.Bundle.label);
                ("config_digest", J.String m.Bundle.config_digest);
                ("benches", J.List (List.map (fun b -> J.String b) m.Bundle.benches));
                ("artifacts", J.Int (List.length m.Bundle.artifacts));
              ] );
        ]

let execute ~cache p =
  match
    match p.kind with
    | Measure | Campaign -> run_measure ~cache p
    | Predict -> run_predict ~cache p
    | Cache_sweep -> run_cache_sweep p
    | Bundle -> run_bundle p
    | Estimate -> run_estimate ~cache p
  with
  | doc -> Ok doc
  | exception exn -> Error (Printexc.to_string exn)
