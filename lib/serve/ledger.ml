module J = Pi_campaign.Telemetry
module Metrics = Pi_obs.Metrics

let m_appends =
  Metrics.counter ~help:"job-ledger records appended (each fsynced before ack)"
    "pi_serve_ledger_appends_total"

let m_replayed =
  Metrics.counter ~help:"job-ledger records recovered by replay at boot"
    "pi_serve_ledger_replayed_records_total"

let m_torn =
  Metrics.counter ~help:"torn job-ledger tails discarded by replay"
    "pi_serve_ledger_torn_tails_total"

type t = { fd : Unix.file_descr; mutex : Mutex.t; mutable open_ : bool }

type replay = {
  records : J.json list;
  valid_bytes : int;
  torn_bytes : int;
}

let digest_hex payload = Digest.to_hex (Digest.string payload)
let digest_len = 32 (* MD5 hex *)

let frame payload = digest_hex payload ^ " " ^ payload ^ "\n"

(* One record line, or None when the line fails any framing check: short,
   digest not hex, missing separator, digest mismatch, unparsable payload.
   A single check failing means the record (and by the prefix rule,
   everything after it) cannot be trusted. *)
let parse_record line =
  let n = String.length line in
  if n < digest_len + 2 then None
  else if line.[digest_len] <> ' ' then None
  else
    let digest = String.sub line 0 digest_len in
    let hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false in
    if not (String.for_all hex digest) then None
    else
      let payload = String.sub line (digest_len + 1) (n - digest_len - 1) in
      if digest_hex payload <> digest then None
      else match J.parse payload with Ok json -> Some json | Error _ -> None

let read ~path =
  let contents =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> s
    | exception Sys_error _ -> ""
  in
  let total = String.length contents in
  (* Walk complete lines from the front; the valid prefix ends at the
     first record that is torn (no terminating newline) or fails its
     digest — everything after it is untrusted, because a corrupt record
     means the writer died (or the file was damaged) at that point. *)
  let rec walk offset records =
    if offset >= total then (List.rev records, offset)
    else
      match String.index_from_opt contents offset '\n' with
      | None -> (List.rev records, offset) (* torn tail: no newline *)
      | Some nl -> (
          let line = String.sub contents offset (nl - offset) in
          match parse_record line with
          | Some json -> walk (nl + 1) (json :: records)
          | None -> (List.rev records, offset))
  in
  let records, valid_bytes = walk 0 [] in
  { records; valid_bytes; torn_bytes = total - valid_bytes }

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~path =
  mkdir_p (Filename.dirname path);
  let replay = read ~path in
  Metrics.add m_replayed (List.length replay.records);
  if replay.torn_bytes > 0 then Metrics.inc m_torn;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (* Self-heal: drop the torn tail so the next record starts on a clean
     boundary, and make the truncation durable before appending past it. *)
  if replay.torn_bytes > 0 then begin
    Unix.ftruncate fd replay.valid_bytes;
    Unix.fsync fd
  end;
  ignore (Unix.lseek fd replay.valid_bytes Unix.SEEK_SET : int);
  ({ fd; mutex = Mutex.create (); open_ = true }, replay)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then go (off + Unix.write fd bytes off (len - off))
  in
  go 0

let append t json =
  Mutex.protect t.mutex (fun () ->
      if not t.open_ then invalid_arg "Ledger.append: closed";
      let line = frame (J.to_string json) in
      write_all t.fd (Bytes.of_string line);
      Unix.fsync t.fd;
      Metrics.inc m_appends)

let close t =
  Mutex.protect t.mutex (fun () ->
      if t.open_ then begin
        t.open_ <- false;
        Unix.close t.fd
      end)
