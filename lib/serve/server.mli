(** The interferometry daemon.

    A long-running process serving measurement, prediction and campaign
    jobs over HTTP/1.1 on a TCP socket. Every accepted mutating request is
    appended to the WAL-journaled job {!Ledger} {e before} it is
    acknowledged or dispatched; on boot the ledger is replayed, completed
    jobs are recognized by their persisted result documents, and
    interrupted jobs are re-enqueued and resumed through the observation
    cache — so a SIGKILL at {e any} point yields exactly-once completion
    with results byte-identical to an uninterrupted run.

    Endpoints:
    - [GET /healthz] — liveness (200 once the listener is up)
    - [GET /readyz] — readiness (503 while draining)
    - [GET /metrics], [GET /metrics.json] — {!Pi_obs.Metrics} scrape
      (observation-cache gauges are refreshed on every scrape)
    - [GET /stats] — job-table and queue summary
    - [POST /api/jobs] — submit (body: {!Jobs.parse} form); [202] with the
      job id, [200] with [duplicate:true] when the same params were already
      submitted, [400] on invalid bodies, [429] when the queue is full,
      [503] while draining
    - [GET /api/jobs] — list jobs
    - [GET /api/jobs/:id] — one job's status
    - [GET /api/jobs/:id/result] — the result document ([409] until done)
    - [GET /api/jobs/:id/trace] — the job's Chrome trace-event JSON
      (queue delay + execution phases; [404] if tracing is off, the job
      has not executed this boot, or the trace was evicted from the
      bounded LRU)
    - [GET /api/timeseries] — the flight recorder's
      {!Pi_obs.Timeseries} store as JSON, fed by a background scrape
      loop every [scrape_interval] seconds

    Traces and time series are a post-hoc side-channel: result
    documents stay deterministic, timings never leak into them.

    Admission and fairness ride on {!Pi_campaign.Scheduler.Queue} — the
    same bounded-queue code path CLI campaigns drain through. Submissions
    are enqueued under the client name from the [X-Client] header, so one
    greedy client cannot starve the rest. *)

type options = {
  state_dir : string;
      (** holds [ledger.wal], [cache/], [jobs/] (result documents) and
          [serve.json] (the port file clients discover the daemon by) *)
  port : int;  (** 0 picks an ephemeral port (recorded in [serve.json]) *)
  queue_capacity : int;  (** admission bound; full queue answers 429 *)
  workers : int;  (** job worker threads *)
  scrape_interval : float;
      (** seconds between flight-recorder scrapes; [<= 0] disables the
          background scrape loop *)
  trace_jobs : bool;  (** capture a per-job span trace on every execution *)
  trace_capacity : int;  (** completed-job traces kept in the LRU *)
}

val default_options : state_dir:string -> options
(** Port 0, capacity 64, 1 worker; recorder on — 1 s scrapes, traces
    kept for the last 32 jobs. *)

type t

val start : options -> t
(** Bind, replay the ledger (re-enqueueing unfinished jobs), write
    [serve.json], and spawn the accept loop and workers. Returns once the
    daemon is serving. *)

val port : t -> int

val stop : t -> unit
(** Graceful drain: stop accepting connections and submissions (readyz
    goes 503), let the workers finish every queued job, then close the
    ledger. Idempotent. *)

val run : options -> unit
(** {!start}, then block until SIGTERM or SIGINT, then {!stop} — the
    [interferometry serve] entry point. *)
