(** Daemon job semantics: what a submission means, how it is keyed, and
    how it executes.

    A job is fully described by its {!params}; two submissions with equal
    params are {e the same job} — {!key} digests the canonical form, the
    server dedups on it, and WAL replay re-derives the same job id after a
    crash, which is what makes recovery exactly-once.

    Result documents are {e deterministic}: built only from
    [(benchmark, config, seed)]-reproducible observations and fits, with
    no timestamps or cached-vs-computed distinctions — so a job finished
    after a crash+replay is byte-identical to the same job finished in one
    uninterrupted run (the [serve-smoke] invariant). *)

module J = Pi_campaign.Telemetry

type kind =
  | Measure  (** observations + model fit for each benchmark *)
  | Predict  (** Figure 7/8 predictor evaluation for one benchmark *)
  | Campaign  (** {!Measure} over a whole suite *)
  | Cache_sweep
      (** fused 100-geometry cache degradation study for one benchmark
          ({!Pi_uarch.Sweep.run_cache_study}) *)
  | Bundle
      (** re-verify a content-addressed run bundle on disk
          ({!Pi_campaign.Bundle.verify}) *)
  | Estimate
      (** answer a one-benchmark measurement question {e instantly} from
          observations already in the cache — no replay — while the server
          enqueues the {!Measure} twin (same params, kind swapped) in the
          background to refine it. The predicted and refined documents are
          distinct artifacts under distinct job ids; the estimate names
          its twin in a ["refined_job"] field. An estimate document is a
          function of (params, cache contents): deterministic for a given
          cache state, and convergent — once the twin has run the cache
          holds every seed, so executing the estimate again reproduces
          the refined fit bit-for-bit. *)

type params = {
  kind : kind;
  benches : string list;  (** validated registry names, sorted, deduped *)
  layouts : int;
  seed : int;  (** master PRNG seed *)
  scale : int;
  heap_random : bool;
  quick : bool;  (** base the config on {!Interferometry.Experiment.quick_config} *)
  dir : string;  (** bundle directory — [""] for every other kind *)
}

val kind_name : kind -> string

val parse : J.json -> (params, string) result
(** Parse and validate a submission body, e.g.
    [{"kind":"measure","bench":"429.mcf","layouts":12,"quick":true}].
    Accepts ["bench"] (one), ["benches"] (list) or ["suite"]
    (["2006"|"2000"|"table1"|"sim"|"all"]); [Predict], [Cache_sweep] and
    [Estimate] require exactly one benchmark. [Bundle] instead requires a non-empty
    string ["dir"] (the bundle directory) and takes no benchmarks.
    Unknown benchmarks, unknown fields, and out-of-range values
    ([layouts] outside 3..1000, [scale] outside 1..64, negative [seed])
    are [Error]s — the network boundary validates before the ledger ever
    sees the request. *)

val canonical : params -> J.json
(** Canonical JSON form: fixed field order, benches sorted — equal params
    render identically. This is what the ledger records. *)

val key : params -> string
(** Hex digest of {!canonical} — the dedup identity. *)

val id_of_key : string -> string
(** The public job id derived from a key (short digest prefix), stable
    across restarts so clients can poll through a daemon crash. *)

val config_of : params -> Interferometry.Experiment.config
(** The experiment config this job measures under — same derivation as the
    CLI's [--seed]/[--scale]/[--heap-random]/[--quick] flags, so daemon
    jobs and single-shot CLI runs share cache entries bit-for-bit. *)

val execute : cache:Pi_campaign.Obs_cache.t -> params -> (J.json, string) result
(** Run the job and build its result document.

    Measurement jobs are cache-first: if every seed [1..layouts] of a
    benchmark is already in [cache], its observations are served straight
    from disk with {e no} [prepare] (the O(lookup) fast path). Missing
    seeds are computed and stored {e one at a time}, so a SIGKILL
    mid-job loses at most the observation in flight and the replayed job
    resumes from what the cache already holds. Exceptions become
    [Error]s.

    [Bundle] jobs re-hash the bundle at [params.dir] and report
    [{"ok":bool,"checked":N,"problems":[...]}]; an unreadable manifest is
    an ok:false result with an ["error"] field, not a job failure.

    [Estimate] jobs never replay: they fit over the cached observations
    whose seeds fall in [1..layouts] (fewer than 3 is an ok:false
    document, not a failure), report the fit plus held-out
    ({!Pi_stats.Surrogate.oof_residuals}) CPI error bars, flag
    ["stale":true] while seeds are missing, and name the measure twin in
    ["refined_job"]. *)
