type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

type response = { code : int; content_type : string; body : string }

let reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | code -> if code < 400 then Printf.sprintf "Status %d" code else "Error"

(* Find "\r\n\r\n" in [buf]; scanning resumes a few bytes before the old
   length so a terminator split across reads is still found. *)
let find_terminator buf ~from =
  let s = Buffer.contents buf in
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then
      Some i
    else go (i + 1)
  in
  go (max 0 (from - 3))

let split_lines s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let n = String.length line in
         if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
      let key = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      Some (key, value)

let parse_head head =
  match split_lines head with
  | [] -> Error "empty request head"
  | request_line :: header_lines -> (
      match String.split_on_char ' ' request_line with
      | [ meth; target; version ]
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
          let path =
            match String.index_opt target '?' with
            | Some q -> String.sub target 0 q
            | None -> target
          in
          if path = "" || path.[0] <> '/' then Error "bad request target"
          else
            let headers = List.filter_map parse_header_line header_lines in
            Ok (String.uppercase_ascii meth, path, headers)
      | _ -> Error "malformed request line")

let read_request ?(max_header_bytes = 16 * 1024) ?(max_body_bytes = 1024 * 1024) fd =
  let chunk = Bytes.create 4096 in
  let buf = Buffer.create 512 in
  (* Phase 1: accumulate until the blank line that ends the headers.
     [scanned] is the buffer length before the latest read — the scan
     resumes a few bytes before it so a terminator split across reads is
     still found. *)
  let rec read_head scanned =
    match find_terminator buf ~from:scanned with
    | Some i -> Ok i
    | None ->
        if Buffer.length buf > max_header_bytes then Error "request head too large"
        else begin
          let before = Buffer.length buf in
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error "connection closed before headers completed"
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              read_head before
          | exception Unix.Unix_error (e, _, _) ->
              Error (Printf.sprintf "read: %s" (Unix.error_message e))
        end
  in
  match read_head 0 with
  | Error _ as e -> e
  | Ok head_end -> (
      let all = Buffer.contents buf in
      let head = String.sub all 0 head_end in
      let rest = String.sub all (head_end + 4) (String.length all - head_end - 4) in
      match parse_head head with
      | Error _ as e -> e
      | Ok (meth, path, headers) -> (
          let content_length =
            match List.assoc_opt "content-length" headers with
            | None -> Ok 0
            | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n when n >= 0 -> Ok n
                | _ -> Error "bad Content-Length")
          in
          match content_length with
          | Error _ as e -> e
          | Ok len when len > max_body_bytes -> Error "request body too large"
          | Ok len ->
              let body = Buffer.create (min len 4096) in
              Buffer.add_string body rest;
              let rec read_body () =
                if Buffer.length body >= len then
                  Ok (String.sub (Buffer.contents body) 0 len)
                else begin
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> Error "connection closed before body completed"
                  | n ->
                      Buffer.add_subbytes body chunk 0 n;
                      read_body ()
                  | exception Unix.Unix_error (e, _, _) ->
                      Error (Printf.sprintf "read: %s" (Unix.error_message e))
                end
              in
              (match read_body () with
              | Error _ as e -> e
              | Ok body -> Ok { meth; path; headers; body })))

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then go (off + Unix.write fd bytes off (len - off))
  in
  try go 0 with Unix.Unix_error _ -> () (* peer gone: response is best-effort *)

let write_response fd { code; content_type; body } =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       code (reason code) content_type (String.length body) body)

let request ?(timeout = 30.0) ?(headers = []) ~host ~port ~meth ~path ?(body = "") () =
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> Error (Printf.sprintf "cannot resolve %s" host)
  | ai :: _ -> (
      let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      match
        Fun.protect ~finally (fun () ->
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
            Unix.connect fd ai.Unix.ai_addr;
            let extra =
              String.concat ""
                (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
              ^ if body = "" then "" else "Content-Type: application/json\r\n"
            in
            write_all fd
              (Printf.sprintf "%s %s HTTP/1.1\r\nHost: %s\r\n%sContent-Length: %d\r\nConnection: close\r\n\r\n%s"
                 meth path host extra (String.length body) body);
            let buf = Buffer.create 1024 in
            let chunk = Bytes.create 4096 in
            let rec drain () =
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> ()
              | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  drain ()
            in
            drain ();
            Buffer.contents buf)
      with
      | exception Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      | raw -> (
          (* Split the status line and the close-delimited body. *)
          match String.index_opt raw '\n' with
          | None -> Error "empty response"
          | Some _ -> (
              let code =
                match String.split_on_char ' ' raw with
                | _http :: code :: _ -> int_of_string_opt code
                | _ -> None
              in
              match code with
              | None -> Error "malformed status line"
              | Some code -> (
                  let rec find_sep i =
                    if i + 3 >= String.length raw then None
                    else if
                      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
                      && raw.[i + 3] = '\n'
                    then Some (i + 4)
                    else find_sep (i + 1)
                  in
                  match find_sep 0 with
                  | None -> Error "truncated response"
                  | Some start ->
                      Ok (code, String.sub raw start (String.length raw - start))))))
