(** Tiny path router: method + pattern -> handler.

    Patterns are ['/']-separated; a segment written [":name"] binds the
    request's segment under [name]. Dispatch picks the first route whose
    method and pattern both match; a path that matches some pattern with
    the wrong method is [405], anything else [404]. The matched pattern
    string labels the per-endpoint metrics, keeping label cardinality
    bounded no matter what clients request. *)

type params = (string * string) list

type route

val get : string -> (params -> Http.request -> Http.response) -> route
val post : string -> (params -> Http.request -> Http.response) -> route

val json : int -> Pi_campaign.Telemetry.json -> Http.response
(** ["application/json"] response from a rendered value. *)

val text : int -> string -> Http.response
(** ["text/plain; version=0.0.4"]-free plain text response. *)

val error : int -> string -> Http.response
(** [{"error": msg}] with the given status. *)

val dispatch : route list -> Http.request -> Http.response * string
(** The response plus the matched pattern (["*unmatched*"] for 404s,
    the pattern for 405s) — the endpoint label for metrics. *)
