(** The WAL-journaled job ledger.

    Every mutating request the daemon accepts is appended here {e before}
    it is acknowledged or dispatched — write-ahead logging. A record is
    one line:

    {v <md5-hex of payload> <payload JSON>\n v}

    The digest frames and checksums the record: replay verifies it before
    trusting the payload, so a torn tail — the half-written line a SIGKILL
    or power loss leaves behind — is detected and discarded rather than
    misread. {!append} flushes and [fsync]s before returning, so once the
    caller has acknowledged a request, the request survives any crash.

    Replay ({!open_}) folds the valid prefix of the file and returns its
    records oldest-first; the server reconstructs the job table from them
    and re-dispatches whatever was accepted but not completed. Replay is
    idempotent: reading the same file twice yields the same records, and
    {!open_} truncates a torn tail in place so the next append starts on a
    clean record boundary. *)

type t

type replay = {
  records : Pi_campaign.Telemetry.json list;  (** valid records, oldest first *)
  valid_bytes : int;  (** length of the verified prefix *)
  torn_bytes : int;
      (** bytes after the verified prefix that failed framing or digest
          checks — a crashed writer's tail, dropped on replay *)
}

val read : path:string -> replay
(** Replay without opening for append (a missing file is an empty
    ledger). Never raises on corrupt content: the first bad record ends
    the valid prefix and the remainder counts as [torn_bytes]. *)

val open_ : path:string -> t * replay
(** {!read}, then open the ledger for appending. A torn tail is truncated
    away first, so the file self-heals on boot. Creates missing parent
    directories. *)

val append : t -> Pi_campaign.Telemetry.json -> unit
(** Serialize, frame, write, flush and [fsync] one record. Returns only
    once the record is durable — the fsync-before-ack contract. Safe from
    concurrent threads (appends are serialized by a mutex). Raises
    [Invalid_argument] on a closed ledger. *)

val close : t -> unit
