(** Minimal HTTP/1.1 over [Unix] sockets — just enough protocol for the
    daemon and its client, hand-rolled so serving needs no new
    dependencies. One request per connection ([Connection: close]);
    responses are length-delimited. Hostile peers are bounded everywhere:
    header and body sizes are capped, reads carry a socket timeout, and
    every malformed input is an [Error], never an exception or a hang. *)

type request = {
  meth : string;  (** uppercase, e.g. ["GET"] *)
  path : string;  (** absolute path, query string stripped *)
  headers : (string * string) list;  (** keys lowercased *)
  body : string;
}

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

type response = {
  code : int;
  content_type : string;
  body : string;
}

val reason : int -> string
(** Canonical reason phrase, e.g. [200 -> "OK"], [429 -> "Too Many
    Requests"]. *)

val read_request :
  ?max_header_bytes:int ->
  ?max_body_bytes:int ->
  Unix.file_descr ->
  (request, string) result
(** Read one request. Headers are capped at [max_header_bytes] (default
    16 KiB) and the [Content-Length] body at [max_body_bytes] (default
    1 MiB); anything over, truncated, or syntactically invalid is an
    [Error]. *)

val write_response : Unix.file_descr -> response -> unit
(** Serialize with [Content-Length] and [Connection: close]. Write errors
    (peer went away) are swallowed — the response is best-effort. *)

val request :
  ?timeout:float ->
  ?headers:(string * string) list ->
  host:string ->
  port:int ->
  meth:string ->
  path:string ->
  ?body:string ->
  unit ->
  (int * string, string) result
(** Client side: one round trip — connect, send, read to EOF — returning
    [(status code, body)]. [timeout] (default 30s) bounds socket reads
    and writes; [headers] adds extra request headers. Connection failures
    are [Error]s. *)
