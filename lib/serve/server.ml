module J = Pi_campaign.Telemetry
module Metrics = Pi_obs.Metrics
module Span = Pi_obs.Span
module Timeseries = Pi_obs.Timeseries
module Obs_cache = Pi_campaign.Obs_cache
module Queue = Pi_campaign.Scheduler.Queue

(* ------------------------------------------------------------------ *)
(* Instruments                                                        *)

let m_requests =
  (* One counter per route pattern, created up front: dispatch labels by
     the *matched pattern*, never the raw path, so cardinality is bounded
     no matter what clients send. *)
  List.map
    (fun endpoint ->
      ( endpoint,
        Metrics.counter ~help:"HTTP requests served, by route"
          ~labels:[ ("endpoint", endpoint) ] "pi_serve_http_requests_total" ))
    [ "/healthz"; "/readyz"; "/metrics"; "/metrics.json"; "/stats"; "/api/jobs";
      "/api/jobs/:id"; "/api/jobs/:id/result"; "/api/jobs/:id/trace";
      "/api/timeseries"; "*unmatched*"; "*bad-request*" ]

let count_request endpoint =
  match List.assoc_opt endpoint m_requests with
  | Some c -> Metrics.inc c
  | None -> ()

let m_request_seconds =
  Metrics.histogram ~help:"HTTP request handling wall seconds"
    "pi_serve_request_seconds"

let m_submitted =
  Metrics.counter ~help:"jobs accepted and WAL-journaled" "pi_serve_jobs_submitted_total"

let m_deduped =
  Metrics.counter ~help:"submissions answered by an existing job"
    "pi_serve_jobs_deduped_total"

let m_rejected =
  Metrics.counter ~help:"submissions rejected by admission control (429)"
    "pi_serve_jobs_rejected_total"

let m_completed_ok =
  Metrics.counter ~help:"jobs finished, by status" ~labels:[ ("status", "ok") ]
    "pi_serve_jobs_completed_total"

let m_completed_error =
  Metrics.counter ~help:"jobs finished, by status" ~labels:[ ("status", "error") ]
    "pi_serve_jobs_completed_total"

let m_refinements =
  Metrics.counter ~help:"background measure twins enqueued by estimate jobs"
    "pi_serve_estimate_refinements_total"

let m_recovered =
  Metrics.counter ~help:"unfinished jobs re-enqueued by WAL replay at boot"
    "pi_serve_jobs_recovered_total"

let m_queue_depth =
  Metrics.gauge ~help:"submitted jobs not yet claimed by a worker"
    "pi_serve_queue_depth"

let m_inflight =
  Metrics.gauge ~help:"jobs currently executing" "pi_serve_jobs_inflight"

let m_traces =
  Metrics.counter ~help:"per-job traces captured by the flight recorder"
    "pi_serve_job_traces_total"

let m_traces_evicted =
  Metrics.counter ~help:"per-job traces evicted from the bounded LRU"
    "pi_serve_job_traces_evicted_total"

(* ------------------------------------------------------------------ *)
(* State                                                              *)

type options = {
  state_dir : string;
  port : int;
  queue_capacity : int;
  workers : int;
  scrape_interval : float;
  trace_jobs : bool;
  trace_capacity : int;
}

let default_options ~state_dir =
  {
    state_dir;
    port = 0;
    queue_capacity = 64;
    workers = 1;
    scrape_interval = 1.0;
    trace_jobs = true;
    trace_capacity = 32;
  }

type job_state = Queued | Running | Done | Failed of string

type job = {
  id : string;
  jkey : string;
  params : Jobs.params;
  client : string;
  mutable state : job_state;
  mutable enqueued_at : float; (* monotonic; queue-delay span in the trace *)
}

type t = {
  options : options;
  listen_fd : Unix.file_descr;
  actual_port : int;
  ledger : Ledger.t;
  cache : Obs_cache.t;
  table_mutex : Mutex.t;
  jobs : (string, job) Hashtbl.t;  (* key -> job *)
  mutable order : string list;  (* keys, newest first *)
  queue : job Queue.t;
  timeseries : Pi_obs.Timeseries.t;
  mutable stop_sampler : (unit -> unit) option;
  traces_mutex : Mutex.t;
  mutable traces : (string * string) list; (* job id -> Chrome JSON, newest first *)
  stopping : bool Atomic.t;
  mutable threads : Thread.t list;
  mutable stopped : bool;
}

let port t = t.actual_port

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let result_path t id = Filename.concat (Filename.concat t.options.state_dir "jobs") (id ^ ".json")
let port_file state_dir = Filename.concat state_dir "serve.json"

(* Atomic result persistence: unique temp, fsync, rename — after a crash
   the document is either absent or complete, which is exactly the
   distinction replay uses to decide whether to re-run the job. *)
let write_result t id doc =
  let path = result_path t id in
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let line = J.to_string doc ^ "\n" in
      let bytes = Bytes.of_string line in
      let len = Bytes.length bytes in
      let rec go off = if off < len then go (off + Unix.write fd bytes off (len - off)) in
      go 0;
      Unix.fsync fd);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Ledger records                                                     *)

let submit_record job =
  J.Obj
    [
      ("record", J.String "submit");
      ("key", J.String job.jkey);
      ("client", J.String job.client);
      ("params", Jobs.canonical job.params);
    ]

let done_record ~key = J.Obj [ ("record", J.String "done"); ("key", J.String key) ]

let failed_record ~key ~error =
  J.Obj
    [ ("record", J.String "failed"); ("key", J.String key); ("error", J.String error) ]

let record_field name = function
  | J.Obj fields -> (
      match List.assoc_opt name fields with Some (J.String s) -> Some s | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Job execution                                                      *)

let finish_job t job result =
  (match result with
  | Ok doc ->
      write_result t job.id doc;
      Ledger.append t.ledger (done_record ~key:job.jkey);
      Metrics.inc m_completed_ok;
      Mutex.protect t.table_mutex (fun () -> job.state <- Done)
  | Error msg ->
      Ledger.append t.ledger (failed_record ~key:job.jkey ~error:msg);
      Metrics.inc m_completed_error;
      Mutex.protect t.table_mutex (fun () -> job.state <- Failed msg));
  Metrics.gauge_add m_inflight (-1.0)

(* Bounded LRU of completed-job traces: an assoc list newest-first,
   truncated to [trace_capacity]. Traces are a post-hoc debugging
   side-channel — result documents stay deterministic, timings live only
   here. *)
let store_trace t id trace_json =
  Mutex.protect t.traces_mutex (fun () ->
      let rest = List.remove_assoc id t.traces in
      let rec take n = function
        | [] -> []
        | _ when n = 0 ->
            Metrics.inc m_traces_evicted;
            []
        | x :: tl -> x :: take (n - 1) tl
      in
      t.traces <- (id, trace_json) :: take (t.options.trace_capacity - 1) rest);
  Metrics.inc m_traces

let find_trace t id =
  Mutex.protect t.traces_mutex (fun () -> List.assoc_opt id t.traces)

let traced_execute t job =
  let collector = Span.collector () in
  let started = Pi_obs.Clock.now () in
  let queue_delay = Float.max 0.0 (started -. job.enqueued_at) in
  let result =
    Span.with_collector collector (fun () ->
        Span.with_ ~cat:"serve" ~name:"job"
          ~args:
            [ ("id", job.id); ("kind", Jobs.kind_name job.params.Jobs.kind);
              ("client", job.client) ]
          (fun () -> Jobs.execute ~cache:t.cache job.params))
  in
  (* The queue wait is reconstructed as a synthetic span preceding the
     execution — it happened on no worker thread, so no [with_] saw it. *)
  Span.add_event collector
    {
      Span.name = "job.queued";
      cat = "serve";
      ts = started -. queue_delay;
      dur = queue_delay;
      tid = (Domain.self () :> int);
      depth = 0;
      alloc_bytes = 0.0;
      args = [ ("id", job.id) ];
    };
  store_trace t job.id
    (Span.events_to_chrome_json (Span.collector_events collector));
  result

let worker t () =
  let rec loop () =
    match Queue.dequeue t.queue with
    | None -> ()
    | Some job ->
        Mutex.protect t.table_mutex (fun () -> job.state <- Running);
        Metrics.gauge_add m_inflight 1.0;
        let result =
          if t.options.trace_jobs then traced_execute t job
          else Jobs.execute ~cache:t.cache job.params
        in
        finish_job t job result;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Handlers                                                           *)

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"

let job_json job =
  J.Obj
    (List.concat
       [
         [
           ("id", J.String job.id);
           ("key", J.String job.jkey);
           ("kind", J.String (Jobs.kind_name job.params.Jobs.kind));
           ("benches", J.List (List.map (fun b -> J.String b) job.params.Jobs.benches));
           ("layouts", J.Int job.params.Jobs.layouts);
           ("client", J.String job.client);
           ("status", J.String (state_name job.state));
         ];
         (match job.state with
         | Failed msg -> [ ("error", J.String msg) ]
         | _ -> []);
       ])

let find_job t id =
  Mutex.protect t.table_mutex (fun () ->
      Hashtbl.fold (fun _ job acc -> if job.id = id then Some job else acc) t.jobs None)

(* The background half of an estimate: enqueue the Measure twin (same
   params, kind swapped) so a full replay refines the cached observations
   the estimate answered from. Best-effort and silent — an existing twin
   means the refinement is already underway (or done), and a full queue
   just means it waits for the next estimate resubmission. Caller holds
   [table_mutex]: twin admission rides the same atomic step as the
   estimate's own, so the WAL never sees an estimate without its twin
   decision. *)
let enqueue_refinement_locked t ~client (params : Jobs.params) =
  let params = { params with Jobs.kind = Jobs.Measure } in
  let key = Jobs.key params in
  if
    (not (Hashtbl.mem t.jobs key))
    && Queue.depth t.queue < t.options.queue_capacity
  then begin
    let job =
      { id = Jobs.id_of_key key; jkey = key; params; client;
        state = Queued; enqueued_at = Pi_obs.Clock.now () }
    in
    Ledger.append t.ledger (submit_record job);
    Hashtbl.replace t.jobs key job;
    t.order <- key :: t.order;
    if not (Queue.enqueue ~client ~force:true t.queue job) then
      job.state <- Failed "queue closed"
    else begin
      Metrics.inc m_submitted;
      Metrics.inc m_refinements
    end
  end

let handle_submit t (req : Http.request) =
  if Atomic.get t.stopping then Router.error 503 "draining"
  else
    match J.parse ~max_bytes:(256 * 1024) ~max_depth:32 req.Http.body with
    | Error msg -> Router.error 400 (Printf.sprintf "invalid JSON: %s" msg)
    | Ok body -> (
        match Jobs.parse body with
        | Error msg -> Router.error 400 msg
        | Ok params -> (
            let key = Jobs.key params in
            let client =
              match Http.header req "x-client" with Some c -> c | None -> "anon"
            in
            (* The whole accept path runs under the table mutex so the
               dedup check, the admission check, the WAL append and the
               enqueue are one atomic step: no interleaving can admit the
               same params twice or WAL a job the queue never sees. *)
            Mutex.protect t.table_mutex (fun () ->
                match Hashtbl.find_opt t.jobs key with
                | Some job ->
                    Metrics.inc m_deduped;
                    (* A resubmitted estimate re-offers its twin: the
                       first submission may have skipped it on a full
                       queue. *)
                    if params.Jobs.kind = Jobs.Estimate then
                      enqueue_refinement_locked t ~client params;
                    `Existing job
                | None ->
                    if
                      Queue.depth t.queue >= t.options.queue_capacity
                    then begin
                      Metrics.inc m_rejected;
                      `Full
                    end
                    else begin
                      let job =
                        { id = Jobs.id_of_key key; jkey = key; params; client;
                          state = Queued; enqueued_at = Pi_obs.Clock.now () }
                      in
                      (* WAL before dispatch: the record is fsync-durable
                         before the job is queued or the client answered. *)
                      Ledger.append t.ledger (submit_record job);
                      Hashtbl.replace t.jobs key job;
                      t.order <- key :: t.order;
                      (* [force]: capacity was checked above under this
                         same lock; a WAL-acked job must not be dropped. *)
                      if not (Queue.enqueue ~client ~force:true t.queue job) then
                        job.state <- Failed "queue closed"
                      else Metrics.inc m_submitted;
                      if params.Jobs.kind = Jobs.Estimate then
                        enqueue_refinement_locked t ~client params;
                      `Accepted job
                    end)
            |> function
            | `Existing job ->
                Router.json 200
                  (J.Obj
                     [
                       ("id", J.String job.id);
                       ("status", J.String (state_name job.state));
                       ("duplicate", J.Bool true);
                     ])
            | `Full -> Router.error 429 "job queue is full; retry later"
            | `Accepted job ->
                Router.json 202
                  (J.Obj
                     [
                       ("id", J.String job.id);
                       ("status", J.String (state_name job.state));
                       ("duplicate", J.Bool false);
                     ])))

let handle_stats t =
  let queued, running, done_, failed =
    Mutex.protect t.table_mutex (fun () ->
        Hashtbl.fold
          (fun _ job (q, r, d, f) ->
            match job.state with
            | Queued -> (q + 1, r, d, f)
            | Running -> (q, r + 1, d, f)
            | Done -> (q, r, d + 1, f)
            | Failed _ -> (q, r, d, f + 1))
          t.jobs (0, 0, 0, 0))
  in
  let cache_stats = Obs_cache.update_gauges t.cache in
  Router.json 200
    (J.Obj
       [
         ("jobs",
          J.Obj
            [
              ("queued", J.Int queued);
              ("running", J.Int running);
              ("done", J.Int done_);
              ("failed", J.Int failed);
            ]);
         ("queue",
          J.Obj
            [
              ("depth", J.Int (Queue.depth t.queue));
              ("capacity", J.Int t.options.queue_capacity);
            ]);
         ("cache",
          J.Obj
            [
              ("entries", J.Int cache_stats.Obs_cache.entries);
              ("bytes", J.Int cache_stats.Obs_cache.bytes);
            ]);
         ("draining", J.Bool (Atomic.get t.stopping));
       ])

let routes t =
  [
    Router.get "/healthz" (fun _ _ -> Router.text 200 "ok\n");
    Router.get "/readyz" (fun _ _ ->
        if Atomic.get t.stopping then Router.error 503 "draining"
        else Router.text 200 "ok\n");
    Router.get "/metrics" (fun _ _ ->
        ignore (Obs_cache.update_gauges t.cache : Obs_cache.stats);
        Router.text 200 (Metrics.to_prometheus ()));
    Router.get "/metrics.json" (fun _ _ ->
        ignore (Obs_cache.update_gauges t.cache : Obs_cache.stats);
        Router.json 200 (J.metrics_json (Metrics.scrape ())));
    Router.get "/stats" (fun _ _ -> handle_stats t);
    Router.post "/api/jobs" (fun _ req -> handle_submit t req);
    Router.get "/api/jobs" (fun _ _ ->
        let jobs =
          Mutex.protect t.table_mutex (fun () ->
              List.filter_map (Hashtbl.find_opt t.jobs) (List.rev t.order))
        in
        Router.json 200 (J.Obj [ ("jobs", J.List (List.map job_json jobs)) ]));
    Router.get "/api/jobs/:id" (fun params _ ->
        let id = List.assoc "id" params in
        match find_job t id with
        | Some job -> Router.json 200 (job_json job)
        | None -> Router.error 404 (Printf.sprintf "no job %s" id));
    Router.get "/api/timeseries" (fun _ _ ->
        {
          Http.code = 200;
          content_type = "application/json";
          body = Timeseries.to_json t.timeseries;
        });
    Router.get "/api/jobs/:id/trace" (fun params _ ->
        let id = List.assoc "id" params in
        match find_trace t id with
        | Some trace -> { Http.code = 200; content_type = "application/json"; body = trace }
        | None -> (
            match find_job t id with
            | None -> Router.error 404 (Printf.sprintf "no job %s" id)
            | Some _ ->
                Router.error 404
                  (Printf.sprintf
                     "no trace for job %s (tracing disabled, job not executed \
                      this boot, or trace evicted)"
                     id)));
    Router.get "/api/jobs/:id/result" (fun params _ ->
        let id = List.assoc "id" params in
        match find_job t id with
        | None -> Router.error 404 (Printf.sprintf "no job %s" id)
        | Some { state = Failed msg; _ } ->
            Router.error 409 (Printf.sprintf "job failed: %s" msg)
        | Some { state = Queued | Running; _ } -> Router.error 409 "job not finished"
        | Some { state = Done; id; _ } -> (
            match In_channel.with_open_bin (result_path t id) In_channel.input_all with
            | body -> { Http.code = 200; content_type = "application/json"; body }
            | exception Sys_error _ -> Router.error 500 "result document missing"));
  ]

(* ------------------------------------------------------------------ *)
(* Connection handling                                                *)

let handle_connection t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0;
      let t0 = Pi_obs.Clock.now () in
      let response, endpoint =
        match Http.read_request fd with
        | Error msg -> (Router.error 400 msg, "*bad-request*")
        | Ok req -> Router.dispatch (routes t) req
      in
      count_request endpoint;
      Metrics.observe m_request_seconds (Pi_obs.Clock.now () -. t0);
      Http.write_response fd response)

let accept_loop t () =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [ _ ], _, _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              let th = Thread.create (fun () -> handle_connection t fd) () in
              ignore (th : Thread.t)
          | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Boot: replay the ledger                                            *)

(* Rebuild the job table from the WAL's history. A submit without a
   matching done/failed is an accepted-but-unfinished job: if its result
   document survived (crash after rename, before the done append), the
   done record is re-appended and the job counts as done — otherwise it is
   re-enqueued, and the observation cache turns everything it had already
   measured into fast replays. Duplicate submits (crash between append
   and ack lets a client resubmit) collapse onto one job via the key. *)
let replay_ledger t (replay : Ledger.replay) =
  List.iter
    (fun record ->
      match record_field "record" record with
      | Some "submit" -> (
          match (record_field "key" record, record) with
          | Some key, J.Obj fields -> (
              let params_json =
                match List.assoc_opt "params" fields with Some p -> p | None -> J.Null
              in
              match Jobs.parse params_json with
              | Error _ -> () (* unparsable params: benchmark set changed; skip *)
              | Ok params when Jobs.key params <> key -> ()
              | Ok params ->
                  if not (Hashtbl.mem t.jobs key) then begin
                    let client =
                      match record_field "client" record with
                      | Some c -> c
                      | None -> "anon"
                    in
                    let job =
                      { id = Jobs.id_of_key key; jkey = key; params; client;
                        state = Queued; enqueued_at = Pi_obs.Clock.now () }
                    in
                    Hashtbl.replace t.jobs key job;
                    t.order <- key :: t.order
                  end)
          | _ -> ())
      | Some "done" -> (
          match record_field "key" record with
          | Some key -> (
              match Hashtbl.find_opt t.jobs key with
              | Some job -> job.state <- Done
              | None -> () (* done without submit: corrupt-but-framed noise *))
          | None -> ())
      | Some "failed" -> (
          match (record_field "key" record, record_field "error" record) with
          | Some key, error -> (
              match Hashtbl.find_opt t.jobs key with
              | Some job ->
                  job.state <- Failed (Option.value error ~default:"unknown error")
              | None -> ())
          | None, _ -> ())
      | _ -> ())
    replay.Ledger.records;
  (* Re-dispatch the unfinished jobs, oldest first. *)
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.jobs key with
      | Some ({ state = Queued; _ } as job) ->
          if Sys.file_exists (result_path t job.id) then begin
            Ledger.append t.ledger (done_record ~key:job.jkey);
            job.state <- Done
          end
          else begin
            Metrics.inc m_recovered;
            job.enqueued_at <- Pi_obs.Clock.now ();
            ignore (Queue.enqueue ~client:job.client ~force:true t.queue job : bool)
          end
      | _ -> ())
    (List.rev t.order)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)

let write_port_file t =
  let path = port_file t.options.state_dir in
  let doc =
    J.Obj [ ("port", J.Int t.actual_port); ("pid", J.Int (Unix.getpid ())) ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string doc ^ "\n"))

let start options =
  mkdir_p options.state_dir;
  mkdir_p (Filename.concat options.state_dir "jobs");
  if options.queue_capacity < 1 then invalid_arg "Server.start: queue_capacity < 1";
  if options.workers < 1 then invalid_arg "Server.start: workers < 1";
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, options.port));
  Unix.listen listen_fd 64;
  let actual_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> options.port
  in
  let ledger, replay = Ledger.open_ ~path:(Filename.concat options.state_dir "ledger.wal") in
  let t =
    {
      options;
      listen_fd;
      actual_port;
      ledger;
      cache = Obs_cache.create ~dir:(Filename.concat options.state_dir "cache");
      table_mutex = Mutex.create ();
      jobs = Hashtbl.create 64;
      order = [];
      queue =
        Queue.create ~capacity:options.queue_capacity
          ~on_depth:(fun d -> Metrics.set m_queue_depth (float_of_int d))
          ();
      timeseries = Timeseries.create ();
      stop_sampler = None;
      traces_mutex = Mutex.create ();
      traces = [];
      stopping = Atomic.make false;
      threads = [];
      stopped = false;
    }
  in
  replay_ledger t replay;
  write_port_file t;
  if options.scrape_interval > 0.0 then
    t.stop_sampler <-
      Some
        (Timeseries.sampler ~interval:options.scrape_interval
           ~on_tick:(fun () -> ignore (Obs_cache.update_gauges t.cache : Obs_cache.stats))
           t.timeseries);
  let workers = List.init options.workers (fun _ -> Thread.create (worker t) ()) in
  let acceptor = Thread.create (accept_loop t) () in
  t.threads <- acceptor :: workers;
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    (* Closing the queue lets the workers drain what was admitted and then
       exit; the acceptor notices [stopping] within its select timeout. *)
    Queue.close t.queue;
    List.iter Thread.join t.threads;
    Option.iter (fun stop -> stop ()) t.stop_sampler;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Ledger.close t.ledger
  end

let run options =
  let t = start options in
  Printf.printf "interferometry serve: listening on 127.0.0.1:%d (state: %s)\n%!"
    t.actual_port options.state_dir;
  let want_stop = Atomic.make false in
  let handler _ = Atomic.set want_stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  while not (Atomic.get want_stop) do
    Unix.sleepf 0.1
  done;
  print_endline "interferometry serve: draining";
  stop t;
  print_endline "interferometry serve: stopped"
