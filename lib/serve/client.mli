(** Thin client for the {!Server} daemon — powers
    [interferometry submit|status|result].

    The daemon is discovered through the [serve.json] port file in its
    state directory (written on boot), so scripts never have to thread a
    port number around. All calls are plain {!Http.request} round trips;
    [Error]s are messages ready to print. *)

type conn = { host : string; port : int }

val resolve : ?port:int -> state_dir:string -> unit -> (conn, string) result
(** [port] overrides discovery; otherwise read [serve.json] from
    [state_dir]. *)

val wait_ready : ?attempts:int -> conn -> (unit, string) result
(** Poll [GET /readyz] until 200 (0.1s between tries, default 50 attempts)
    — for scripts that just started the daemon. *)

val metrics : conn -> (Pi_campaign.Telemetry.json, string) result
(** [GET /metrics.json] — a live daemon's scrape, the feed for
    [interferometry stats --url]. *)

val timeseries : conn -> (Pi_campaign.Telemetry.json, string) result
(** [GET /api/timeseries] — the flight recorder's ring buffers. *)

val trace : conn -> id:string -> (string, string) result
(** [GET /api/jobs/:id/trace] — the job's Chrome trace-event JSON,
    byte-exact (load it straight into Perfetto). *)

val submit :
  ?client:string ->
  conn ->
  body:string ->
  (Pi_campaign.Telemetry.json, string) result
(** [POST /api/jobs]. [client] sets the [X-Client] fairness key. Returns
    the acknowledgement document ([id], [status], [duplicate]); HTTP
    4xx/5xx become [Error]s carrying the server's message. *)

val status : conn -> id:string -> (Pi_campaign.Telemetry.json, string) result
(** [GET /api/jobs/:id]. *)

val result : conn -> id:string -> (string, string) result
(** [GET /api/jobs/:id/result] — the raw result document, exactly the
    bytes the daemon persisted (so shell scripts can [cmp] them). *)

val wait_job :
  ?poll_interval:float ->
  ?timeout:float ->
  conn ->
  id:string ->
  (string, string) result
(** Poll {!status} until the job is done, then fetch {!result}; a job that
    ends [failed] (or a [timeout], default 300s) is an [Error]. *)
