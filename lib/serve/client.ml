module J = Pi_campaign.Telemetry

type conn = { host : string; port : int }

let resolve ?port ~state_dir () =
  match port with
  | Some port -> Ok { host = "127.0.0.1"; port }
  | None -> (
      let path = Filename.concat state_dir "serve.json" in
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error _ ->
          Error
            (Printf.sprintf "no daemon port file at %s (is the daemon running?)" path)
      | contents -> (
          match J.parse contents with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok (J.Obj fields) -> (
              match List.assoc_opt "port" fields with
              | Some (J.Int port) -> Ok { host = "127.0.0.1"; port }
              | _ -> Error (Printf.sprintf "%s: no \"port\" field" path))
          | Ok _ -> Error (Printf.sprintf "%s: not a JSON object" path)))

let get conn path = Http.request ~host:conn.host ~port:conn.port ~meth:"GET" ~path ()

let wait_ready ?(attempts = 50) conn =
  let rec go n =
    match get conn "/readyz" with
    | Ok (200, _) -> Ok ()
    | _ when n > 1 ->
        Unix.sleepf 0.1;
        go (n - 1)
    | Ok (code, _) -> Error (Printf.sprintf "daemon not ready: /readyz is %d" code)
    | Error msg -> Error (Printf.sprintf "daemon not reachable: %s" msg)
  in
  if attempts < 1 then invalid_arg "Client.wait_ready: attempts < 1" else go attempts

(* 2xx bodies parse into the acknowledgement document; anything else is an
   error carrying the server's message when one was sent. *)
let expect_json = function
  | Error msg -> Error msg
  | Ok (code, body) when code >= 200 && code < 300 -> (
      match J.parse body with
      | Ok json -> Ok json
      | Error msg -> Error (Printf.sprintf "malformed daemon response: %s" msg))
  | Ok (code, body) -> (
      let detail =
        match J.parse body with
        | Ok (J.Obj fields) -> (
            match List.assoc_opt "error" fields with
            | Some (J.String msg) -> msg
            | _ -> String.trim body)
        | _ -> String.trim body
      in
      match detail with
      | "" -> Error (Printf.sprintf "HTTP %d %s" code (Http.reason code))
      | detail -> Error (Printf.sprintf "HTTP %d: %s" code detail))

let metrics conn = expect_json (get conn "/metrics.json")

let timeseries conn = expect_json (get conn "/api/timeseries")

let trace conn ~id =
  match get conn (Printf.sprintf "/api/jobs/%s/trace" id) with
  | Error msg -> Error msg
  | Ok (200, body) -> Ok body
  | Ok (code, body) -> (
      match expect_json (Ok (code, body)) with
      | Error msg -> Error msg
      | Ok _ -> Error (Printf.sprintf "HTTP %d" code))

let submit ?client conn ~body =
  let headers = match client with None -> [] | Some c -> [ ("X-Client", c) ] in
  expect_json
    (Http.request ~headers ~host:conn.host ~port:conn.port ~meth:"POST"
       ~path:"/api/jobs" ~body ())

let status conn ~id = expect_json (get conn (Printf.sprintf "/api/jobs/%s" id))

let result conn ~id =
  match get conn (Printf.sprintf "/api/jobs/%s/result" id) with
  | Error msg -> Error msg
  | Ok (200, body) -> Ok body
  | Ok (code, body) -> (
      match expect_json (Ok (code, body)) with
      | Error msg -> Error msg
      | Ok _ -> Error (Printf.sprintf "HTTP %d" code))

let wait_job ?(poll_interval = 0.2) ?(timeout = 300.0) conn ~id =
  let deadline = Pi_obs.Clock.now () +. timeout in
  let rec go () =
    match status conn ~id with
    | Error msg -> Error msg
    | Ok json -> (
        let field name =
          match json with
          | J.Obj fields -> (
              match List.assoc_opt name fields with
              | Some (J.String s) -> Some s
              | _ -> None)
          | _ -> None
        in
        match field "status" with
        | Some "done" -> result conn ~id
        | Some "failed" ->
            Error
              (Printf.sprintf "job %s failed: %s" id
                 (Option.value (field "error") ~default:"unknown error"))
        | Some ("queued" | "running") ->
            if Pi_obs.Clock.now () > deadline then
              Error (Printf.sprintf "timed out waiting for job %s" id)
            else begin
              Unix.sleepf poll_interval;
              go ()
            end
        | _ -> Error (Printf.sprintf "job %s: unrecognized status document" id))
  in
  go ()
