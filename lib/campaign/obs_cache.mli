(** On-disk observation cache.

    Observations are reproducible from [(benchmark, config, seed)], so a
    completed measurement never needs to be recomputed: re-running a
    campaign, or growing it 100 -> 200 -> 300 layouts the way the paper's
    adaptive sampling does, should only pay for the seeds not yet on disk.

    One cache entry is one CSV file per [(benchmark, config)] pair, named
    [<bench>.<digest>.csv] where the digest — the {e full} hex digest, so
    distinct configs can never share a file — covers every field of the
    experiment config that can change a measurement (scale, trace budget,
    warmup, counter protocol, noise parameters, allocator/ASLR modes,
    the full machine geometry, master seed). Entries written by older
    versions under a 16-char truncated digest are still read (and retired
    the next time the entry is stored), so existing caches migrate
    transparently. Rows are
    {!Interferometry.Dataset_io} observation rows keyed by [layout_seed] —
    the same format as [interferometry export], so a cache entry doubles as
    an exported dataset. Any config change rotates the digest and the stale
    entries are simply never read again. *)

type t

val create : dir:string -> t
(** Use [dir] as the cache root, creating it (and missing parents) if
    needed. Orphaned temp files left by crashed writers ([*.tmp] older
    than ten minutes — young ones may belong to a live campaign sharing
    the directory) are removed. *)

val dir : t -> string

type stats = { entries : int  (** CSV entries on disk *); bytes : int }

val stats : t -> stats
(** One [readdir] + one [stat] per entry ([*.tmp] scratch excluded);
    an unreadable directory reads as empty. *)

val update_gauges : t -> stats
(** {!stats}, also published as the [pi_obs_obs_cache_entries] /
    [pi_obs_obs_cache_bytes] gauges — the [pi_serve] daemon calls this on
    every [/metrics] scrape. *)

val config_digest : Interferometry.Experiment.config -> string
(** Stable hex digest of the measurement-relevant config fields. Machines
    are distinguished by their [name] plus full numeric geometry (predictor
    closures cannot be hashed; all machines in {!Pi_uarch.Machine} carry
    distinct names). *)

val sanitize_bench_name : string -> string
(** Filename-safe form of a benchmark name: characters outside
    [[A-Za-z0-9_.-]] are percent-escaped (['%'] included, so the mapping
    is injective). Registry names pass through unchanged; a hostile name
    like ["../x"] can no longer address files outside the cache root. *)

val entry_path : t -> bench:string -> config:Interferometry.Experiment.config -> string
(** The CSV file that does/would hold this [(bench, config)] entry — the
    full-digest name; the bench component is {!sanitize_bench_name}d. *)

val legacy_entry_path :
  t -> bench:string -> config:Interferometry.Experiment.config -> string
(** The pre-fix truncated-digest (16 hex chars) name for the same entry.
    Read as a fallback by {!load} when the full-digest file is absent, and
    removed by {!store} once the entry has been rewritten under its full
    name. *)

val load :
  t ->
  bench:string ->
  config:Interferometry.Experiment.config ->
  Interferometry.Experiment.observation array
(** All cached observations for the pair, sorted by [layout_seed]; [[||]]
    when there is no (or a corrupt) entry. The file is opened directly —
    ENOENT at open time is a miss, so the probe cannot race the orphan
    reaper or a concurrent rename. A corrupt entry also reads as a miss,
    but loudly: a [pi:warn] log line and a bump of the
    [pi_obs_obs_cache_corrupt_total] counter record that the entry's
    previously cached seeds are about to be dropped by the next
    {!store}'s read-merge-write. *)

val store :
  t ->
  bench:string ->
  config:Interferometry.Experiment.config ->
  Interferometry.Experiment.observation array ->
  unit
(** Merge the observations into the entry (new rows win on seed collision)
    and atomically replace the file, so a reader never sees a torn write.
    The replacement goes through a unique temp name (pid + counter, safe
    under concurrent writers sharing the directory) and is fsynced before
    the rename, so after a crash the entry is either the old version or
    the complete new one — never a partial file. *)
