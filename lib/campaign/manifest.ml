module J = Telemetry

type fit = {
  r_squared : float;
  slope : float;
  intercept : float;
  mean_mpki : float;
  mean_cpi : float;
}

type job_failure = { seed : int; error : string }

type bench_entry = {
  bench : string;
  suite : string;
  requested : int;
  computed : int;
  cached : int;
  failures : job_failure list;
  prepare_seconds : float;
  observe_seconds : float;
  wall_seconds : float;
  cpu_seconds : float;
  prepare_error : string option;
  fit : fit option;
}

type t = {
  label : string;
  n_layouts : int;
  jobs : int;
  config_digest : string;
  cache_dir : string option;
  started_at : float;
  wall_seconds : float;
  total_jobs : int;
  computed_jobs : int;
  cached_jobs : int;
  failed_jobs : int;
  cache_hits : int;
  cache_misses : int;
  benches : bench_entry list;
}

let complete t = t.failed_jobs = 0

let fit_to_json (f : fit) =
  J.Obj
    [
      ("r_squared", J.Float f.r_squared);
      ("slope", J.Float f.slope);
      ("intercept", J.Float f.intercept);
      ("mean_mpki", J.Float f.mean_mpki);
      ("mean_cpi", J.Float f.mean_cpi);
    ]

let bench_to_json (b : bench_entry) =
  J.Obj
    [
      ("bench", J.String b.bench);
      ("suite", J.String b.suite);
      ("requested", J.Int b.requested);
      ("computed", J.Int b.computed);
      ("cached", J.Int b.cached);
      ("failed", J.Int (List.length b.failures));
      ( "failures",
        J.List
          (List.map
             (fun f -> J.Obj [ ("seed", J.Int f.seed); ("error", J.String f.error) ])
             b.failures) );
      ("prepare_seconds", J.Float b.prepare_seconds);
      ("observe_seconds", J.Float b.observe_seconds);
      ("wall_seconds", J.Float b.wall_seconds);
      ("cpu_seconds", J.Float b.cpu_seconds);
      ( "prepare_error",
        match b.prepare_error with None -> J.Null | Some e -> J.String e );
      ("fit", match b.fit with None -> J.Null | Some f -> fit_to_json f);
    ]

let to_json t =
  J.Obj
    [
      ("label", J.String t.label);
      ("n_layouts", J.Int t.n_layouts);
      ("jobs", J.Int t.jobs);
      ("config_digest", J.String t.config_digest);
      ("cache_dir", match t.cache_dir with None -> J.Null | Some d -> J.String d);
      ("started_at", J.Float t.started_at);
      ("wall_seconds", J.Float t.wall_seconds);
      ("total_jobs", J.Int t.total_jobs);
      ("computed_jobs", J.Int t.computed_jobs);
      ("cached_jobs", J.Int t.cached_jobs);
      ("failed_jobs", J.Int t.failed_jobs);
      ("cache_hits", J.Int t.cache_hits);
      ("cache_misses", J.Int t.cache_misses);
      ("complete", J.Bool (complete t));
      ("benches", J.List (List.map bench_to_json t.benches));
    ]

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (to_json t));
      output_char oc '\n')

let summary_table t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %5s %8s %6s %6s %8s %10s %10s %8s %8s\n" "benchmark" "n" "computed"
       "cached" "failed" "r^2" "slope" "intercept" "wall" "cpu");
  List.iter
    (fun b ->
      let fit_cols =
        match b.fit with
        | Some f -> Printf.sprintf "%8.3f %10.5f %10.4f" f.r_squared f.slope f.intercept
        | None -> Printf.sprintf "%8s %10s %10s" "-" "-" "-"
      in
      Buffer.add_string buf
        (Printf.sprintf "%-16s %5d %8d %6d %6d %s %8.2f %8.2f\n" b.bench b.requested
           b.computed b.cached (List.length b.failures) fit_cols b.wall_seconds
           b.cpu_seconds))
    t.benches;
  Buffer.add_string buf
    (Printf.sprintf
       "total: %d jobs (%d computed, %d cached, %d failed) on %d domain(s) in %.1fs\n"
       t.total_jobs t.computed_jobs t.cached_jobs t.failed_jobs t.jobs t.wall_seconds);
  Buffer.contents buf
