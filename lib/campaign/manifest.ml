module J = Telemetry

type fit = {
  r_squared : float;
  slope : float;
  intercept : float;
  mean_mpki : float;
  mean_cpi : float;
}

type job_failure = { seed : int; error : string }

type bench_entry = {
  bench : string;
  suite : string;
  requested : int;
  computed : int;
  cached : int;
  warmup_blocks : int;
  retries : int;
  failures : job_failure list;
  prepare_seconds : float;
  observe_seconds : float;
  wall_seconds : float;
  cpu_seconds : float;
  prepare_error : string option;
  fit : fit option;
}

type t = {
  label : string;
  n_layouts : int;
  jobs : int;
  config_digest : string;
  cache_dir : string option;
  config_args : (string * J.json) list;
  checkpoint : bool;
  started_at : float;
  wall_seconds : float;
  total_jobs : int;
  computed_jobs : int;
  cached_jobs : int;
  failed_jobs : int;
  retried_jobs : int;
  cache_hits : int;
  cache_misses : int;
  benches : bench_entry list;
}

let complete t = (not t.checkpoint) && t.failed_jobs = 0

let fit_to_json (f : fit) =
  J.Obj
    [
      ("r_squared", J.Float f.r_squared);
      ("slope", J.Float f.slope);
      ("intercept", J.Float f.intercept);
      ("mean_mpki", J.Float f.mean_mpki);
      ("mean_cpi", J.Float f.mean_cpi);
    ]

let bench_to_json (b : bench_entry) =
  J.Obj
    [
      ("bench", J.String b.bench);
      ("suite", J.String b.suite);
      ("requested", J.Int b.requested);
      ("computed", J.Int b.computed);
      ("cached", J.Int b.cached);
      ("warmup_blocks", J.Int b.warmup_blocks);
      ("retries", J.Int b.retries);
      ("failed", J.Int (List.length b.failures));
      ( "failures",
        J.List
          (List.map
             (fun f -> J.Obj [ ("seed", J.Int f.seed); ("error", J.String f.error) ])
             b.failures) );
      ("prepare_seconds", J.Float b.prepare_seconds);
      ("observe_seconds", J.Float b.observe_seconds);
      ("wall_seconds", J.Float b.wall_seconds);
      ("cpu_seconds", J.Float b.cpu_seconds);
      ( "prepare_error",
        match b.prepare_error with None -> J.Null | Some e -> J.String e );
      ("fit", match b.fit with None -> J.Null | Some f -> fit_to_json f);
    ]

let to_json t =
  J.Obj
    [
      ("label", J.String t.label);
      ("n_layouts", J.Int t.n_layouts);
      ("jobs", J.Int t.jobs);
      ("config_digest", J.String t.config_digest);
      ("cache_dir", match t.cache_dir with None -> J.Null | Some d -> J.String d);
      ("config_args", J.Obj t.config_args);
      ("checkpoint", J.Bool t.checkpoint);
      ("started_at", J.Float t.started_at);
      ("wall_seconds", J.Float t.wall_seconds);
      ("total_jobs", J.Int t.total_jobs);
      ("computed_jobs", J.Int t.computed_jobs);
      ("cached_jobs", J.Int t.cached_jobs);
      ("failed_jobs", J.Int t.failed_jobs);
      ("retried_jobs", J.Int t.retried_jobs);
      ("cache_hits", J.Int t.cache_hits);
      ("cache_misses", J.Int t.cache_misses);
      ("complete", J.Bool (complete t));
      ("benches", J.List (List.map bench_to_json t.benches));
    ]

(* ---- reading a manifest back (campaign --resume) ---- *)

exception Bad of string

let member name = function
  | J.Obj fields -> ( match List.assoc_opt name fields with Some v -> v | None -> J.Null)
  | _ -> raise (Bad (Printf.sprintf "%S: expected an object" name))

let get_int name j =
  match member name j with
  | J.Int i -> i
  | _ -> raise (Bad (Printf.sprintf "%S: expected an integer" name))

let get_int_default name ~default j =
  match member name j with J.Int i -> i | J.Null -> default | _ -> raise (Bad name)

(* Floats that happen to be integral render without a decimal point and
   parse back as Int — accept both. *)
let get_num name j =
  match member name j with
  | J.Float f -> f
  | J.Int i -> float_of_int i
  | _ -> raise (Bad (Printf.sprintf "%S: expected a number" name))

let get_string name j =
  match member name j with
  | J.String s -> s
  | _ -> raise (Bad (Printf.sprintf "%S: expected a string" name))

let get_string_opt name j =
  match member name j with
  | J.String s -> Some s
  | J.Null -> None
  | _ -> raise (Bad (Printf.sprintf "%S: expected a string or null" name))

let get_bool_default name ~default j =
  match member name j with
  | J.Bool b -> b
  | J.Null -> default
  | _ -> raise (Bad (Printf.sprintf "%S: expected a bool" name))

let get_list name j =
  match member name j with
  | J.List items -> items
  | _ -> raise (Bad (Printf.sprintf "%S: expected a list" name))

let fit_of_json j =
  match j with
  | J.Null -> None
  | j ->
      Some
        {
          r_squared = get_num "r_squared" j;
          slope = get_num "slope" j;
          intercept = get_num "intercept" j;
          mean_mpki = get_num "mean_mpki" j;
          mean_cpi = get_num "mean_cpi" j;
        }

let failure_of_json j = { seed = get_int "seed" j; error = get_string "error" j }

let bench_of_json j =
  {
    bench = get_string "bench" j;
    suite = get_string "suite" j;
    requested = get_int "requested" j;
    computed = get_int "computed" j;
    cached = get_int "cached" j;
    warmup_blocks = get_int_default "warmup_blocks" ~default:0 j;
    retries = get_int_default "retries" ~default:0 j;
    failures = List.map failure_of_json (get_list "failures" j);
    prepare_seconds = get_num "prepare_seconds" j;
    observe_seconds = get_num "observe_seconds" j;
    wall_seconds = get_num "wall_seconds" j;
    cpu_seconds = get_num "cpu_seconds" j;
    prepare_error = get_string_opt "prepare_error" j;
    fit = fit_of_json (member "fit" j);
  }

let of_json j =
  match
    {
      label = get_string "label" j;
      n_layouts = get_int "n_layouts" j;
      jobs = get_int "jobs" j;
      config_digest = get_string "config_digest" j;
      cache_dir = get_string_opt "cache_dir" j;
      config_args = (match member "config_args" j with J.Obj f -> f | _ -> []);
      checkpoint = get_bool_default "checkpoint" ~default:false j;
      started_at = get_num "started_at" j;
      wall_seconds = get_num "wall_seconds" j;
      total_jobs = get_int "total_jobs" j;
      computed_jobs = get_int "computed_jobs" j;
      cached_jobs = get_int "cached_jobs" j;
      failed_jobs = get_int "failed_jobs" j;
      retried_jobs = get_int_default "retried_jobs" ~default:0 j;
      cache_hits = get_int "cache_hits" j;
      cache_misses = get_int "cache_misses" j;
      benches = List.map bench_of_json (get_list "benches" j);
    }
  with
  | t -> Ok t
  | exception Bad msg -> Error (Printf.sprintf "not a manifest: bad field %s" msg)

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match J.parse contents with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok j -> (
          match of_json j with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok t -> Ok t))

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (to_json t));
      output_char oc '\n')

let summary_table t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %5s %8s %6s %6s %8s %10s %10s %8s %8s\n" "benchmark" "n" "computed"
       "cached" "failed" "r^2" "slope" "intercept" "wall" "cpu");
  List.iter
    (fun b ->
      let fit_cols =
        match b.fit with
        | Some f -> Printf.sprintf "%8.3f %10.5f %10.4f" f.r_squared f.slope f.intercept
        | None -> Printf.sprintf "%8s %10s %10s" "-" "-" "-"
      in
      Buffer.add_string buf
        (Printf.sprintf "%-16s %5d %8d %6d %6d %s %8.2f %8.2f\n" b.bench b.requested
           b.computed b.cached (List.length b.failures) fit_cols b.wall_seconds
           b.cpu_seconds))
    t.benches;
  Buffer.add_string buf
    (Printf.sprintf
       "total: %d jobs (%d computed, %d cached, %d failed%s) on %d domain(s) in %.1fs\n"
       t.total_jobs t.computed_jobs t.cached_jobs t.failed_jobs
       (if t.retried_jobs > 0 then Printf.sprintf ", %d retries" t.retried_jobs else "")
       t.jobs t.wall_seconds);
  Buffer.contents buf

let history_metrics t =
  let cpu_seconds = List.fold_left (fun acc b -> acc +. b.cpu_seconds) 0.0 t.benches in
  let obs_per_sec =
    if t.wall_seconds > 0.0 && t.computed_jobs > 0 then
      float_of_int t.computed_jobs /. t.wall_seconds
    else 0.0
  in
  let probes = t.cache_hits + t.cache_misses in
  let cache_hit_ratio =
    if probes = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int probes
  in
  [
    ("wall_seconds", t.wall_seconds);
    ("cpu_seconds", cpu_seconds);
    ("obs_per_sec", obs_per_sec);
    ("cache_hit_ratio", cache_hit_ratio);
    ("total_jobs", float_of_int t.total_jobs);
    ("computed_jobs", float_of_int t.computed_jobs);
    ("cached_jobs", float_of_int t.cached_jobs);
    ("failed_jobs", float_of_int t.failed_jobs);
  ]
  @ List.filter_map
      (fun b ->
        match b.fit with
        | Some f -> Some (b.bench ^ ".r_squared", f.r_squared)
        | None -> None)
      t.benches
