(** The run manifest: a machine-readable record of one campaign.

    Where the telemetry stream (one JSONL line per event) answers "what is
    it doing right now", the manifest answers "what happened": which
    benchmarks ran, which observation jobs were computed, served from cache
    or failed (with the error that killed them), how long everything took,
    and the per-benchmark regression fit — R^2, slope, intercept — that is
    the campaign's scientific product. It is written once, at the end,
    whether or not every job succeeded. *)

type fit = {
  r_squared : float;
  slope : float;
  intercept : float;
  mean_mpki : float;
  mean_cpi : float;
}

type job_failure = { seed : int; error : string }

type bench_entry = {
  bench : string;
  suite : string;
  requested : int;  (** layouts asked for *)
  computed : int;  (** observation jobs actually simulated *)
  cached : int;  (** jobs served from the observation cache *)
  warmup_blocks : int;
      (** leading trace blocks excluded from every observation's counts —
          recorded so downstream fits are auditable; 0 when the benchmark
          never prepared (or in pre-PR5 manifests) *)
  retries : int;
      (** extra attempts spent on this bench's tasks (prepare included);
          0 when every task succeeded first try *)
  failures : job_failure list;
  prepare_seconds : float;
  observe_seconds : float;  (** summed wall time of this bench's computed jobs *)
  wall_seconds : float;
      (** window from this bench's first task start to its last task finish
          (monotonic); under parallelism this is smaller than [cpu_seconds] *)
  cpu_seconds : float;
      (** prepare plus summed job seconds — jobs are single-domain
          CPU-bound, so per-task wall time approximates CPU time *)
  prepare_error : string option;
      (** when set, the benchmark never prepared and all its jobs failed *)
  fit : fit option;  (** [None] when too few observations survived to fit *)
}

type t = {
  label : string;  (** suite selector, e.g. "2006" *)
  n_layouts : int;
  jobs : int;
  config_digest : string;
  cache_dir : string option;
  config_args : (string * Telemetry.json) list;
      (** the caller-facing knobs (quick/seed/scale/heap_random for the
          CLI) that rebuilt [config]; [campaign --resume] reconstructs the
          config from these and verifies it against [config_digest] *)
  checkpoint : bool;
      (** true for the in-progress manifest written at campaign start —
          the resume anchor an interrupted run leaves behind; the final
          manifest overwrites it with [checkpoint = false] *)
  started_at : float;  (** unix seconds *)
  wall_seconds : float;
  total_jobs : int;
  computed_jobs : int;
  cached_jobs : int;
  failed_jobs : int;
  retried_jobs : int;  (** extra attempts spent across all benches *)
  cache_hits : int;  (** observation-cache probes answered from disk *)
  cache_misses : int;
      (** probes that missed and became compute jobs; 0 when no cache
          directory was configured (nothing was probed) *)
  benches : bench_entry list;
}

val complete : t -> bool
(** True when this is a final (non-checkpoint) manifest and every
    observation job of every benchmark succeeded. *)

val to_json : t -> Telemetry.json

val of_json : Telemetry.json -> (t, string) result
(** Inverse of {!to_json}. Fields added after v1 ([retries],
    [checkpoint], [config_args], [warmup_blocks]) default when absent, so
    older manifests still load. *)

val save : t -> path:string -> unit
(** Write the manifest as (indent-free) JSON. *)

val load : path:string -> (t, string) result
(** Read a manifest written by {!save} — the entry point of
    [campaign --resume]. *)

val summary_table : t -> string
(** Human-readable per-benchmark table for terminal output. *)

val history_metrics : t -> (string * float) list
(** The flat metric bag a campaign contributes to the run-history ledger
    ({!Pi_obs.History}): wall/cpu seconds, [obs_per_sec] (computed jobs
    per wall second; 0 when nothing was computed), [cache_hit_ratio],
    job counts, and one [<bench>.r_squared] per fitted benchmark. *)
