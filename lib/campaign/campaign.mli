(** Suite-wide interferometry campaigns.

    The paper's results are not single measurements but {e campaigns}:
    hundreds of perturbed placements per benchmark, across the whole SPEC
    suite, grown adaptively 100 -> 200 -> 300 until significance. This
    module runs such a campaign end to end:

    - benchmarks are {e prepared} (built + traced) in parallel, then every
      [(benchmark, seed)] observation job is drained from a shared work
      queue by {!Scheduler} domains;
    - completed observations are persisted in an {!Obs_cache}, so re-runs
      and layout-count growth only simulate seeds not yet on disk;
    - every state transition is emitted as a {!Telemetry} JSONL event, and
      the final {!Manifest} records per-benchmark fits and failures;
    - a job that raises (or overruns the cooperative deadline) is retried
      with exponential backoff up to [retries] times; a job still failing
      is marked failed with its error recorded; the campaign completes the
      remaining jobs and {!succeeded} reflects the partial failure;
    - the campaign is {e crash-safe}: each completed observation is
      persisted to the cache as it finishes, and a checkpoint manifest
      ([checkpoint_path]) is written before the first observation job, so
      an interrupted campaign resumes from exactly what it had finished
      (see docs/CAMPAIGN.md, "Resilience").

    Correctness invariant: a campaign is {e bit-identical} regardless of
    [jobs] and of cache state. Observations depend only on
    [(benchmark, config, seed)] — the per-seed PRNG derivation in
    {!Interferometry.Experiment} shares no random state across jobs — and
    results are assembled by seed, not by completion order. *)

type bench_outcome = {
  bench : Pi_workloads.Bench.t;
  dataset : Interferometry.Experiment.dataset option;
      (** successful observations sorted by seed; [None] when the
          benchmark failed to prepare *)
  entry : Manifest.bench_entry;
}

type result = { outcomes : bench_outcome list; manifest : Manifest.t }

val succeeded : result -> bool
(** No job failed and every benchmark prepared. *)

val run :
  ?config:Interferometry.Experiment.config ->
  ?jobs:int ->
  ?cache_dir:string ->
  ?events:Telemetry.sink ->
  ?deadline:float ->
  ?retries:int ->
  ?backoff:float ->
  ?fault:Fault.t ->
  ?checkpoint_path:string ->
  ?config_args:(string * Telemetry.json) list ->
  ?label:string ->
  ?observe:
    (bench:string ->
    prepared:Interferometry.Experiment.prepared ->
    seed:int ->
    Interferometry.Experiment.observation) ->
  n_layouts:int ->
  Pi_workloads.Bench.t list ->
  result
(** [run ~n_layouts benches] measures seeds [1 .. n_layouts] of every
    benchmark.

    [jobs] defaults to {!Scheduler.default_jobs}; [cache_dir] enables the
    observation cache; [events] (default {!Telemetry.null}) receives the
    JSONL progress stream; [deadline] is the cooperative per-job wall-time
    limit in seconds; [label] names the campaign in the manifest. The
    caller owns [events] and closes it.

    Resilience: [retries] (default 0) re-runs failed tasks with
    exponential backoff (base [backoff], default 0.05s) — attempt counts
    surface as [job_retried]/[prepare_retried] events and the manifest's
    [retries] fields. [checkpoint_path] writes an in-progress manifest
    before the first observation job (the resume anchor). [fault] turns on
    the {!Fault} injection harness; faults are deterministic in the fault
    seed and independent of the experiment PRNG, so a faulty-but-retried
    campaign still satisfies the bit-identical invariant. [config_args]
    is recorded verbatim in the manifest so [campaign --resume] can
    rebuild the config.

    [observe] replaces the in-process [E.observe_seed] for observation
    jobs — the hook through which {!Coordinator} runs jobs on worker
    processes. It must be a pure function of [(bench, config, seed)]
    (the default is), or the bit-identical invariant breaks. *)

val suite_label : Pi_workloads.Bench.t list -> string
(** "2006", "2000", "all" or "custom", from the benchmarks' suite tags. *)

val sweep_shard_map : ?jobs:int -> unit -> Pi_uarch.Sweep.shard_map
(** A {!Pi_uarch.Sweep.shard_map} backed by {!Scheduler.map}: evaluates the
    fused lane shards of a sweep study — either axis: predictor
    ({!Pi_uarch.Sweep.run_study}) or cache geometry
    ({!Pi_uarch.Sweep.run_cache_study}) — on [jobs] domains (default
    {!Scheduler.default_jobs}) and returns their counts in shard-index
    order, so [~map_shards:(sweep_shard_map ~jobs ())] is bit-identical to
    the sequential study for any [jobs]. *)
