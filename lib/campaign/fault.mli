(** Deterministic fault injection for campaign resilience testing.

    A resilience layer is only trustworthy if its failure paths run — in
    tests, in CI, and on demand against a live campaign. This module
    injects three fault kinds into the campaign's observation jobs and
    cache writes:

    - [Exn]: the job raises {!Injected} (exercises retry and failed-job
      accounting);
    - [Delay]: the job sleeps before computing (exercises the cooperative
      deadline and backoff paths);
    - [Corrupt_cache]: the just-written cache entry is overwritten with a
      torn, unparsable file (exercises the corrupt-entry-is-a-miss and
      resume paths).

    Injection is {e deterministic}: whether a fault fires at a given site
    is a pure function of [(spec seed, site key, attempt)], independent of
    scheduling, domain count and wall time. Rerunning a faulty campaign
    with the same spec reproduces exactly the same faults — and because a
    retry advances the attempt number, a fault with [rate < 1] is
    transient by construction, which is what the retry machinery needs to
    be testable. *)

type kind = Exn | Delay | Corrupt_cache

type t = {
  rate : float;  (** probability in [0, 1] that a site fires *)
  kinds : kind list;  (** kinds to draw from (uniformly, by site hash) *)
  seed : int;  (** fault-stream seed; independent of the experiment PRNG *)
  delay : float;
      (** sleep injected by [Delay] faults, seconds; [0.] means a small
          site-hashed duration in [1, 21] ms *)
}

exception Injected of string
(** Raised by [Exn] faults; carries the site and attempt for log/manifest
    readability. *)

val kind_name : kind -> string
(** ["exn"], ["delay"] or ["corrupt-cache"]. *)

val parse : string -> (t, string) result
(** Parse a spec like ["rate=0.3,kind=exn,seed=7"]. [rate] is required;
    [kind] (default [exn]) may be a [+]-separated list, e.g.
    ["kind=exn+delay"]; [seed] defaults to [0]; [delay=SECS] overrides the
    [Delay] sleep. *)

val describe : t -> string
(** Canonical spec string, parseable by {!parse}. *)

val of_env : ?warn:(string -> unit) -> unit -> t option
(** Read the [PI_FAULT] environment knob. An invalid spec warns (default
    {!Pi_obs.Log.warn}) and is ignored rather than killing the harness. *)

val hash_uniform : seed:int -> string -> float
(** Deterministic uniform draw in [\[0, 1)] from a seed and a site key
    (MD5-based). Also used by {!Scheduler} for backoff jitter, so retry
    sleep sequences are reproducible. *)

val draw : t -> site:string -> attempt:int -> kind option
(** The fault (if any) that fires at this [(site, attempt)]. Pure. *)

val inject : t -> site:string -> attempt:int -> unit
(** Act on {!draw}: raise {!Injected} for [Exn], sleep for [Delay], do
    nothing for [Corrupt_cache] (corruption happens at the cache-write
    site, see {!maybe_corrupt}). *)

val maybe_corrupt : t -> site:string -> string -> bool
(** [maybe_corrupt t ~site path]: when a [Corrupt_cache] fault fires at
    [site], overwrite [path] with a torn partial entry (returns [true]).
    The file is left exactly as a crashed writer would leave it — present
    but unparsable — so loaders must treat it as a miss. *)
