(** Structured campaign telemetry: JSONL progress events.

    A campaign over a whole suite runs for minutes and spans many domains;
    a human-readable log is useless to the dashboards and CI jobs that
    consume it. Every scheduler transition is therefore emitted as one
    self-contained JSON object per line ({e JSON Lines}), timestamped and
    tagged with an ["event"] discriminator, so progress can be tailed,
    grepped, or replayed after the fact. See docs/CAMPAIGN.md for the
    event schema. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact single-line rendering. Non-finite floats become [null] (JSON
    has no NaN/infinity). *)

val parse : ?max_bytes:int -> ?max_depth:int -> string -> (json, string) result
(** Parse one JSON value (the dialect {!to_string} emits, plus
    insignificant whitespace) — enough to read back a {!Manifest} for
    [campaign --resume] without an external JSON dependency. Numbers
    without a fraction or exponent parse as [Int], everything else as
    [Float]; trailing non-whitespace is an error.

    The parser is safe on hostile input (it also guards the [pi_serve]
    network boundary): any malformed, oversized ([max_bytes], default
    16 MiB), too-deeply-nested ([max_depth], default 256) or
    duplicate-keyed input returns [Error] — it never raises, overflows
    the stack, or goes super-linear. *)

val metrics_json : Pi_obs.Metrics.sample list -> json
(** Render a {!Pi_obs.Metrics.scrape} as
    [{"metrics":[{"name":...,"labels":{...},"type":...,...},...]}] — the
    JSON twin of the Prometheus text format, for consumers that already
    parse this module's output. Histograms carry non-cumulative per-bucket
    counts plus the [+Inf] overflow. *)

type sink
(** A destination for event lines. Writes are serialized by a mutex, so
    scheduler workers on different domains may emit concurrently. *)

val null : sink
(** Discards everything. *)

val to_file : string -> sink
(** Truncates/creates the file (and missing parent directories); lines are
    flushed as they are written so a concurrent [tail -f] sees live
    progress. *)

val to_channel : out_channel -> sink
(** Emit to an existing channel; {!close} will not close it. *)

val emit : sink -> event:string -> (string * json) list -> unit
(** [emit sink ~event fields] writes
    [{"event":<event>,"ts":<unix-seconds>,<fields>...}] as one line. *)

val close : sink -> unit
(** Flush and release the sink ([to_file] sinks close their channel). *)
