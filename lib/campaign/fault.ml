module Metrics = Pi_obs.Metrics

type kind = Exn | Delay | Corrupt_cache

type t = { rate : float; kinds : kind list; seed : int; delay : float }

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "injected fault (%s)" site)
    | _ -> None)

let kind_name = function
  | Exn -> "exn"
  | Delay -> "delay"
  | Corrupt_cache -> "corrupt-cache"

let kind_of_name = function
  | "exn" -> Ok Exn
  | "delay" -> Ok Delay
  | "corrupt-cache" -> Ok Corrupt_cache
  | other ->
      Error
        (Printf.sprintf "unknown fault kind %S (try exn, delay or corrupt-cache)"
           other)

let m_injections kind =
  Metrics.counter ~help:"faults injected by the Pi_campaign.Fault harness, by kind"
    ~labels:[ ("kind", kind_name kind) ]
    "pi_obs_fault_injections_total"

let m_exn = m_injections Exn
let m_delay = m_injections Delay
let m_corrupt = m_injections Corrupt_cache

let describe t =
  Printf.sprintf "rate=%g,kind=%s,seed=%d%s" t.rate
    (String.concat "+" (List.map kind_name t.kinds))
    t.seed
    (if t.delay > 0. then Printf.sprintf ",delay=%g" t.delay else "")

let parse spec =
  let rate = ref None and kinds = ref [ Exn ] and seed = ref 0 and delay = ref 0. in
  let field part =
    match String.index_opt part '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" part)
    | Some i ->
        let key = String.sub part 0 i
        and value = String.sub part (i + 1) (String.length part - i - 1) in
        (match (key, value) with
        | "rate", v -> (
            match float_of_string_opt v with
            | Some r when r >= 0.0 && r <= 1.0 ->
                rate := Some r;
                Ok ()
            | _ -> Error (Printf.sprintf "rate=%S is not a probability in [0, 1]" v))
        | "kind", v -> (
            let rec collect acc = function
              | [] -> Ok (List.rev acc)
              | name :: rest -> (
                  match kind_of_name name with
                  | Ok k -> collect (k :: acc) rest
                  | Error _ as e -> e)
            in
            match collect [] (String.split_on_char '+' v) with
            | Ok ks ->
                kinds := ks;
                Ok ()
            | Error e -> Error e)
        | "seed", v -> (
            match int_of_string_opt v with
            | Some s ->
                seed := s;
                Ok ()
            | None -> Error (Printf.sprintf "seed=%S is not an integer" v))
        | "delay", v -> (
            match float_of_string_opt v with
            | Some d when d >= 0.0 ->
                delay := d;
                Ok ()
            | _ -> Error (Printf.sprintf "delay=%S is not a nonnegative duration" v))
        | key, _ ->
            Error (Printf.sprintf "unknown fault field %S (try rate, kind, seed, delay)" key))
  in
  let parts =
    List.filter (fun p -> p <> "") (List.map String.trim (String.split_on_char ',' spec))
  in
  let rec go = function
    | [] -> (
        match !rate with
        | None -> Error "fault spec needs rate=R (e.g. rate=0.3,kind=exn,seed=7)"
        | Some rate -> Ok { rate; kinds = !kinds; seed = !seed; delay = !delay })
    | part :: rest -> ( match field part with Ok () -> go rest | Error _ as e -> e)
  in
  go parts

let of_env ?(warn = fun msg -> Pi_obs.Log.warn "%s" msg) () =
  match Sys.getenv_opt "PI_FAULT" with
  | None -> None
  | Some spec when String.trim spec = "" -> None (* PI_FAULT= disables *)
  | Some spec -> (
      match parse spec with
      | Ok t -> Some t
      | Error msg ->
          warn (Printf.sprintf "PI_FAULT=%S ignored: %s" spec msg);
          None)

(* 56 bits of an MD5 over (seed, key), scaled to [0, 1). Independent of
   any global PRNG state: two domains drawing the same site agree, and the
   experiment's own random streams are untouched. *)
let hash_uniform ~seed key =
  let d = Digest.string (Printf.sprintf "pi-fault|%d|%s" seed key) in
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  float_of_int !v /. 72057594037927936.0 (* 2^56 *)

let draw t ~site ~attempt =
  match t.kinds with
  | [] -> None
  | kinds ->
      let key = Printf.sprintf "%s|attempt=%d" site attempt in
      if hash_uniform ~seed:t.seed key >= t.rate then None
      else
        let pick = hash_uniform ~seed:t.seed (key ^ "|kind") in
        let n = List.length kinds in
        Some (List.nth kinds (min (n - 1) (int_of_float (pick *. float_of_int n))))

let delay_seconds t ~site ~attempt =
  if t.delay > 0. then t.delay
  else 0.001 +. (0.02 *. hash_uniform ~seed:t.seed (Printf.sprintf "%s|attempt=%d|delay" site attempt))

let inject t ~site ~attempt =
  match draw t ~site ~attempt with
  | Some Exn ->
      Metrics.inc m_exn;
      raise (Injected (Printf.sprintf "%s attempt=%d" site attempt))
  | Some Delay ->
      Metrics.inc m_delay;
      Unix.sleepf (delay_seconds t ~site ~attempt)
  | Some Corrupt_cache | None -> ()

let maybe_corrupt t ~site path =
  match draw t ~site ~attempt:1 with
  | Some Corrupt_cache when Sys.file_exists path ->
      Metrics.inc m_corrupt;
      (* A torn write: a valid-looking header followed by a truncated row,
         exactly what a crash mid-write would leave if renames were not
         atomic. Loaders must treat this entry as a miss. *)
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc "layout_seed,cpi,mpki\n1,0.93,");
      true
  | _ -> false
