type error = { message : string; backtrace : string }

type 'a completion = {
  index : int;
  result : ('a, error) result;
  elapsed : float;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let map ?jobs ?deadline ?on_start ?on_finish f n =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Scheduler.map: jobs < 1";
  if n < 0 then invalid_arg "Scheduler.map: negative task count";
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let callback_mutex = Mutex.create () in
  let pending () = max 0 (n - Atomic.get next) in
  let notify callback =
    Mutex.protect callback_mutex (fun () -> callback ~pending:(pending ()))
  in
  let run_task i =
    Option.iter (fun cb -> notify (cb i)) on_start;
    let t0 = Unix.gettimeofday () in
    let result =
      match f i with
      | value -> (
          match deadline with
          | Some limit when Unix.gettimeofday () -. t0 > limit ->
              Error
                {
                  message =
                    Printf.sprintf "deadline exceeded: %.3fs > %.3fs limit"
                      (Unix.gettimeofday () -. t0)
                      limit;
                  backtrace = "";
                }
          | _ -> Ok value)
      | exception exn ->
          Error
            {
              message = Printexc.to_string exn;
              backtrace = Printexc.get_backtrace ();
            }
    in
    let completion = { index = i; result; elapsed = Unix.gettimeofday () -. t0 } in
    (* Distinct indices: each slot is written by exactly one worker. *)
    results.(i) <- Some completion;
    Option.iter (fun cb -> notify (cb completion)) on_finish
  in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run_task i;
        loop ()
      end
    in
    loop ()
  in
  let spawned = min jobs n - 1 in
  if spawned <= 0 then worker ()
  else begin
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  Array.map
    (function
      | Some completion -> completion
      | None -> assert false (* every index < n was claimed exactly once *))
    results
