module Clock = Pi_obs.Clock
module Metrics = Pi_obs.Metrics

type error = { message : string; backtrace : string }

type 'a completion = {
  index : int;
  result : ('a, error) result;
  elapsed : float;
  started : float;
  finished : float;
  attempts : int;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* The one bounded-queue code path. [map] drains its task indices through
   it, and pi_serve's admission control enqueues daemon submissions into
   it — so queue-depth accounting, capacity rejection and fairness behave
   identically whether work arrives from the CLI or over the wire.

   Fairness: items are tagged with a client key and dequeued round-robin
   across clients (FIFO within one client), so one client with a deep
   backlog cannot starve the others. [map] uses a single client, which
   degenerates to plain FIFO — the order the old atomic-counter claim
   produced. *)
module Queue = struct
  module Fifo = Stdlib.Queue

  type 'a t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    per_client : (string, 'a Fifo.t) Hashtbl.t;
    ring : string Fifo.t;  (* clients with pending items, each exactly once *)
    mutable depth : int;
    mutable closed : bool;
    capacity : int option;
    on_depth : (int -> unit) option;
  }

  let create ?capacity ?on_depth () =
    (match capacity with
    | Some c when c < 1 -> invalid_arg "Scheduler.Queue.create: capacity < 1"
    | _ -> ());
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      per_client = Hashtbl.create 8;
      ring = Fifo.create ();
      depth = 0;
      closed = false;
      capacity;
      on_depth;
    }

  let depth t = Mutex.protect t.mutex (fun () -> t.depth)
  let capacity t = t.capacity
  let closed t = Mutex.protect t.mutex (fun () -> t.closed)

  let notify_depth t = Option.iter (fun f -> f t.depth) t.on_depth

  let enqueue ?(client = "") ?(force = false) t item =
    Mutex.protect t.mutex (fun () ->
        if t.closed then false
        else if
          (not force)
          && (match t.capacity with Some c -> t.depth >= c | None -> false)
        then false (* admission rejection: the caller turns this into a 429 *)
        else begin
          let fifo =
            match Hashtbl.find_opt t.per_client client with
            | Some fifo -> fifo
            | None ->
                let fifo = Fifo.create () in
                Hashtbl.replace t.per_client client fifo;
                fifo
          in
          if Fifo.is_empty fifo then Fifo.push client t.ring;
          Fifo.push item fifo;
          t.depth <- t.depth + 1;
          notify_depth t;
          Condition.signal t.nonempty;
          true
        end)

  let dequeue t =
    Mutex.protect t.mutex (fun () ->
        while t.depth = 0 && not t.closed do
          Condition.wait t.nonempty t.mutex
        done;
        if t.depth = 0 then None
        else begin
          let client = Fifo.pop t.ring in
          let fifo = Hashtbl.find t.per_client client in
          let item = Fifo.pop fifo in
          if Fifo.is_empty fifo then Hashtbl.remove t.per_client client
          else Fifo.push client t.ring;
          t.depth <- t.depth - 1;
          notify_depth t;
          Some item
        end)

  let close t =
    Mutex.protect t.mutex (fun () ->
        t.closed <- true;
        Condition.broadcast t.nonempty)
end

(* Scheduler instruments. Queue depth is a gauge sampled at every task
   transition; per-task latency feeds a histogram whose quantiles the
   `interferometry stats` scrape prints. *)
let m_jobs_ok =
  Metrics.counter ~help:"scheduler tasks completed, by status"
    ~labels:[ ("status", "ok") ] "pi_obs_scheduler_jobs_total"

let m_jobs_error =
  Metrics.counter ~help:"scheduler tasks completed, by status"
    ~labels:[ ("status", "error") ] "pi_obs_scheduler_jobs_total"

let m_queue_depth =
  Metrics.gauge ~help:"tasks not yet claimed by any worker" "pi_obs_scheduler_queue_depth"

let m_job_seconds =
  Metrics.histogram ~help:"per-task wall seconds (monotonic)" "pi_obs_scheduler_job_seconds"

let m_retries =
  Metrics.counter ~help:"task attempts that failed and were retried"
    "pi_obs_scheduler_retries_total"

let m_backoff_seconds =
  Metrics.histogram ~help:"backoff sleeps before task retries (seconds)"
    "pi_obs_scheduler_backoff_seconds"

let map ?jobs ?deadline ?(retries = 0) ?(backoff = 0.05) ?on_start ?on_retry ?on_finish f n
    =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Scheduler.map: jobs < 1";
  if retries < 0 then invalid_arg "Scheduler.map: retries < 0";
  if not (backoff >= 0.0) then invalid_arg "Scheduler.map: backoff < 0";
  if n < 0 then invalid_arg "Scheduler.map: negative task count";
  let results = Array.make n None in
  (* Task indices drain through the shared bounded queue — the same code
     path pi_serve admission uses — so the queue-depth gauge means the
     same thing for CLI campaigns and daemon submissions. One client, no
     capacity: plain FIFO, claims in ascending index order. *)
  let queue =
    Queue.create ~on_depth:(fun d -> Metrics.set m_queue_depth (float_of_int d)) ()
  in
  for i = 0 to n - 1 do
    ignore (Queue.enqueue queue i : bool)
  done;
  Queue.close queue;
  let callback_mutex = Mutex.create () in
  let pending () = Queue.depth queue in
  let notify callback =
    Mutex.protect callback_mutex (fun () -> callback ~pending:(pending ()))
  in
  let run_task i =
    Option.iter (fun cb -> notify (cb i)) on_start;
    (* Durations come from the monotonic clock: a wall-clock (NTP) step
       mid-task must not produce negative or inflated elapsed times. *)
    let started = Clock.now () in
    (* One attempt: the clock is read exactly once after [f] returns, so
       the deadline comparison, the reported overrun and the completion's
       window all agree on the same measurement. *)
    let run_attempt t0 =
      match f i with
      | value -> (
          let finished = Clock.now () in
          let elapsed = finished -. t0 in
          match deadline with
          | Some limit when elapsed > limit ->
              ( Error
                  {
                    message =
                      Printf.sprintf "deadline exceeded: %.3fs > %.3fs limit" elapsed
                        limit;
                    backtrace = "";
                  },
                finished )
          | _ -> (Ok value, finished))
      | exception exn ->
          ( Error
              {
                message = Printexc.to_string exn;
                backtrace = Printexc.get_backtrace ();
              },
            Clock.now () )
    in
    let rec attempt_loop attempt t0 =
      match run_attempt t0 with
      | (Error e, _) when attempt <= retries ->
          Metrics.inc m_retries;
          (* Exponential backoff with deterministic jitter: base * 2^k,
             scaled by [0.5, 1.5) from a hash of (index, attempt), so
             retry storms decorrelate without touching any PRNG state. *)
          let sleep =
            backoff
            *. (2.0 ** float_of_int (attempt - 1))
            *. (0.5 +. Fault.hash_uniform ~seed:0 (Printf.sprintf "backoff|%d|%d" i attempt))
          in
          Metrics.observe m_backoff_seconds sleep;
          Option.iter (fun cb -> notify (cb i ~attempt ~backoff:sleep e)) on_retry;
          if sleep > 0.0 then Unix.sleepf sleep;
          attempt_loop (attempt + 1) (Clock.now ())
      | (result, finished) -> (result, finished, attempt)
    in
    let result, finished, attempts = attempt_loop 1 started in
    let elapsed = finished -. started in
    Metrics.observe m_job_seconds elapsed;
    Metrics.inc (match result with Ok _ -> m_jobs_ok | Error _ -> m_jobs_error);
    let completion = { index = i; result; elapsed; started; finished; attempts } in
    (* Distinct indices: each slot is written by exactly one worker. *)
    results.(i) <- Some completion;
    Option.iter (fun cb -> notify (cb completion)) on_finish
  in
  let worker () =
    let rec loop () =
      match Queue.dequeue queue with
      | Some i ->
          run_task i;
          loop ()
      | None -> ()
    in
    loop ()
  in
  let spawned = min jobs n - 1 in
  if spawned <= 0 then worker ()
  else begin
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  Array.map
    (function
      | Some completion -> completion
      | None -> assert false (* every index < n was claimed exactly once *))
    results
