module Clock = Pi_obs.Clock
module Metrics = Pi_obs.Metrics

type error = { message : string; backtrace : string }

type 'a completion = {
  index : int;
  result : ('a, error) result;
  elapsed : float;
  started : float;
  finished : float;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Scheduler instruments. Queue depth is a gauge sampled at every task
   transition; per-task latency feeds a histogram whose quantiles the
   `interferometry stats` scrape prints. *)
let m_jobs_ok =
  Metrics.counter ~help:"scheduler tasks completed, by status"
    ~labels:[ ("status", "ok") ] "pi_obs_scheduler_jobs_total"

let m_jobs_error =
  Metrics.counter ~help:"scheduler tasks completed, by status"
    ~labels:[ ("status", "error") ] "pi_obs_scheduler_jobs_total"

let m_queue_depth =
  Metrics.gauge ~help:"tasks not yet claimed by any worker" "pi_obs_scheduler_queue_depth"

let m_job_seconds =
  Metrics.histogram ~help:"per-task wall seconds (monotonic)" "pi_obs_scheduler_job_seconds"

let map ?jobs ?deadline ?on_start ?on_finish f n =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Scheduler.map: jobs < 1";
  if n < 0 then invalid_arg "Scheduler.map: negative task count";
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let callback_mutex = Mutex.create () in
  let pending () = max 0 (n - Atomic.get next) in
  let notify callback =
    Mutex.protect callback_mutex (fun () -> callback ~pending:(pending ()))
  in
  let run_task i =
    Metrics.set m_queue_depth (float_of_int (pending ()));
    Option.iter (fun cb -> notify (cb i)) on_start;
    (* Durations come from the monotonic clock: a wall-clock (NTP) step
       mid-task must not produce negative or inflated elapsed times. *)
    let t0 = Clock.now () in
    let result =
      match f i with
      | value -> (
          match deadline with
          | Some limit when Clock.now () -. t0 > limit ->
              Error
                {
                  message =
                    Printf.sprintf "deadline exceeded: %.3fs > %.3fs limit"
                      (Clock.now () -. t0) limit;
                  backtrace = "";
                }
          | _ -> Ok value)
      | exception exn ->
          Error
            {
              message = Printexc.to_string exn;
              backtrace = Printexc.get_backtrace ();
            }
    in
    let finished = Clock.now () in
    let elapsed = finished -. t0 in
    Metrics.observe m_job_seconds elapsed;
    Metrics.inc (match result with Ok _ -> m_jobs_ok | Error _ -> m_jobs_error);
    Metrics.set m_queue_depth (float_of_int (pending ()));
    let completion = { index = i; result; elapsed; started = t0; finished } in
    (* Distinct indices: each slot is written by exactly one worker. *)
    results.(i) <- Some completion;
    Option.iter (fun cb -> notify (cb completion)) on_finish
  in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run_task i;
        loop ()
      end
    in
    loop ()
  in
  let spawned = min jobs n - 1 in
  if spawned <= 0 then worker ()
  else begin
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  Array.map
    (function
      | Some completion -> completion
      | None -> assert false (* every index < n was claimed exactly once *))
    results
