type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then begin
        (* Shortest representation that round-trips (timestamps need more
           than %g's default 6 significant digits). *)
        let s = Printf.sprintf "%.12g" f in
        let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
        Buffer.add_string buf s
      end
      else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          render buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf key;
          Buffer.add_char buf ':';
          render buf value)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 128 in
  render buf json;
  Buffer.contents buf

(* Recursive-descent parser for the same dialect [render] emits (plus
   insignificant whitespace): resuming a campaign means reading back the
   manifest this module wrote, without hauling in a JSON dependency.
   Numbers without '.', 'e' or 'E' parse as [Int]; everything else as
   [Float].

   The parser also guards the network boundary (pi_serve feeds it request
   bodies from untrusted clients), so hostility is bounded up front: input
   larger than [max_bytes] or nested deeper than [max_depth] is an [Error],
   never a stack overflow, and duplicate object keys are rejected rather
   than silently resolved — two values for one key means the sender and
   receiver would disagree about which one won. *)
exception Parse_error of string

let default_max_bytes = 16 * 1024 * 1024
let default_max_depth = 256

let parse ?(max_bytes = default_max_bytes) ?(max_depth = default_max_depth) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun msg -> raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)))
      fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> incr pos
    | Some d -> fail "expected %C, found %C" c d
    | None -> fail "expected %C, found end of input" c
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail "invalid literal"
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "invalid \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents buf
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code =
                (hex_digit s.[!pos + 1] lsl 12)
                lor (hex_digit s.[!pos + 2] lsl 8)
                lor (hex_digit s.[!pos + 3] lsl 4)
                lor hex_digit s.[!pos + 4]
              in
              Buffer.add_utf_8_uchar buf (Uchar.of_int code);
              pos := !pos + 5
          | c -> fail "invalid escape \\%C" c);
          go ()
      | c when Char.code c < 0x20 -> fail "unescaped control character"
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      incr pos
    done;
    let token = String.sub s start (!pos - start) in
    let looks_int =
      not (String.exists (function '.' | 'e' | 'E' -> true | _ -> false) token)
    in
    if looks_int then
      match int_of_string_opt token with
      | Some i -> Int i
      | None -> (
          (* out of int range: keep the value, lose the intness *)
          match float_of_string_opt token with
          | Some f -> Float f
          | None -> fail "invalid number %S" token)
    else
      match float_of_string_opt token with
      | Some f -> Float f
      | None -> fail "invalid number %S" token
  in
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        if depth >= max_depth then fail "nesting deeper than %d" max_depth;
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else
          let rec items acc =
            let item = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (item :: acc)
            | Some ']' ->
                incr pos;
                List (List.rev (item :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        if depth >= max_depth then fail "nesting deeper than %d" max_depth;
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          (* Key membership via a table, not a list scan: an object with a
             hundred thousand keys must stay linear, not quadratic. *)
          let seen = Hashtbl.create 8 in
          let field () =
            skip_ws ();
            let key = parse_string () in
            if Hashtbl.mem seen key then fail "duplicate key %S" key;
            Hashtbl.replace seen key ();
            skip_ws ();
            expect ':';
            (key, parse_value (depth + 1))
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields (f :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev (f :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some c -> fail "unexpected character %C" c
  in
  match
    if max_depth < 1 then fail "max_depth < 1";
    if n > max_bytes then fail "input larger than %d bytes (%d)" max_bytes n;
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let metrics_json samples =
  let sample_json (s : Pi_obs.Metrics.sample) =
    let labels = Obj (List.map (fun (k, v) -> (k, String v)) s.Pi_obs.Metrics.labels) in
    let common = [ ("name", String s.Pi_obs.Metrics.name); ("labels", labels) ] in
    let help =
      match s.Pi_obs.Metrics.help with "" -> [] | h -> [ ("help", String h) ]
    in
    Obj
      (common @ help
      @
      match s.Pi_obs.Metrics.value with
      | Pi_obs.Metrics.Counter n -> [ ("type", String "counter"); ("value", Int n) ]
      | Pi_obs.Metrics.Gauge v -> [ ("type", String "gauge"); ("value", Float v) ]
      | Pi_obs.Metrics.Histogram h ->
          [
            ("type", String "histogram");
            ("count", Int h.Pi_obs.Metrics.count);
            ("sum", Float h.Pi_obs.Metrics.sum);
            ( "buckets",
              List
                (List.map2
                   (fun le n -> Obj [ ("le", Float le); ("count", Int n) ])
                   (Array.to_list h.Pi_obs.Metrics.bounds)
                   (Array.to_list
                      (Array.sub h.Pi_obs.Metrics.bucket_counts 0
                         (Array.length h.Pi_obs.Metrics.bounds)))) );
            ( "overflow",
              Int
                h.Pi_obs.Metrics.bucket_counts.(Array.length h.Pi_obs.Metrics.bounds)
            );
          ])
  in
  Obj [ ("metrics", List (List.map sample_json samples)) ]

type sink = {
  mutable channel : out_channel option;
  owned : bool;  (* close the channel when the sink is closed *)
  mutex : Mutex.t;
}

let null = { channel = None; owned = false; mutex = Mutex.create () }

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let to_file path =
  mkdir_p (Filename.dirname path);
  { channel = Some (open_out path); owned = true; mutex = Mutex.create () }
let to_channel oc = { channel = Some oc; owned = false; mutex = Mutex.create () }

let emit sink ~event fields =
  match sink.channel with
  | None -> ()
  | Some oc ->
      let line =
        to_string
          (Obj (("event", String event) :: ("ts", Float (Unix.gettimeofday ())) :: fields))
      in
      Mutex.protect sink.mutex (fun () ->
          output_string oc line;
          output_char oc '\n';
          flush oc)

let close sink =
  Mutex.protect sink.mutex (fun () ->
      match sink.channel with
      | None -> ()
      | Some oc ->
          flush oc;
          if sink.owned then close_out oc;
          sink.channel <- None)
