type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then begin
        (* Shortest representation that round-trips (timestamps need more
           than %g's default 6 significant digits). *)
        let s = Printf.sprintf "%.12g" f in
        let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
        Buffer.add_string buf s
      end
      else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          render buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf key;
          Buffer.add_char buf ':';
          render buf value)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 128 in
  render buf json;
  Buffer.contents buf

let metrics_json samples =
  let sample_json (s : Pi_obs.Metrics.sample) =
    let labels = Obj (List.map (fun (k, v) -> (k, String v)) s.Pi_obs.Metrics.labels) in
    let common = [ ("name", String s.Pi_obs.Metrics.name); ("labels", labels) ] in
    let help =
      match s.Pi_obs.Metrics.help with "" -> [] | h -> [ ("help", String h) ]
    in
    Obj
      (common @ help
      @
      match s.Pi_obs.Metrics.value with
      | Pi_obs.Metrics.Counter n -> [ ("type", String "counter"); ("value", Int n) ]
      | Pi_obs.Metrics.Gauge v -> [ ("type", String "gauge"); ("value", Float v) ]
      | Pi_obs.Metrics.Histogram h ->
          [
            ("type", String "histogram");
            ("count", Int h.Pi_obs.Metrics.count);
            ("sum", Float h.Pi_obs.Metrics.sum);
            ( "buckets",
              List
                (List.map2
                   (fun le n -> Obj [ ("le", Float le); ("count", Int n) ])
                   (Array.to_list h.Pi_obs.Metrics.bounds)
                   (Array.to_list
                      (Array.sub h.Pi_obs.Metrics.bucket_counts 0
                         (Array.length h.Pi_obs.Metrics.bounds)))) );
            ( "overflow",
              Int
                h.Pi_obs.Metrics.bucket_counts.(Array.length h.Pi_obs.Metrics.bounds)
            );
          ])
  in
  Obj [ ("metrics", List (List.map sample_json samples)) ]

type sink = {
  mutable channel : out_channel option;
  owned : bool;  (* close the channel when the sink is closed *)
  mutex : Mutex.t;
}

let null = { channel = None; owned = false; mutex = Mutex.create () }

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let to_file path =
  mkdir_p (Filename.dirname path);
  { channel = Some (open_out path); owned = true; mutex = Mutex.create () }
let to_channel oc = { channel = Some oc; owned = false; mutex = Mutex.create () }

let emit sink ~event fields =
  match sink.channel with
  | None -> ()
  | Some oc ->
      let line =
        to_string
          (Obj (("event", String event) :: ("ts", Float (Unix.gettimeofday ())) :: fields))
      in
      Mutex.protect sink.mutex (fun () ->
          output_string oc line;
          output_char oc '\n';
          flush oc)

let close sink =
  Mutex.protect sink.mutex (fun () ->
      match sink.channel with
      | None -> ()
      | Some oc ->
          flush oc;
          if sink.owned then close_out oc;
          sink.channel <- None)
