(** Domain-based parallel work scheduler.

    Campaign jobs — one {!Interferometry.Experiment.observe_seed} per
    [(benchmark, seed)] — are pure given their inputs: the per-seed PRNG
    derivation means no random state is shared between observations, so
    they can run on any domain in any order and still produce bit-identical
    results. The scheduler exploits that: a fixed array of tasks is drained
    by [jobs] domains pulling indices from an atomic counter, and each
    result lands in the slot of its own index, so the output order is
    independent of the execution interleaving.

    Worker isolation: a task that raises is recorded as {!error} in its
    completion slot and the worker moves on to the next task — one bad job
    never takes the campaign down. A cooperative per-task [deadline] marks
    tasks that overran it as failed after the fact (OCaml domains cannot be
    killed preemptively, so the overrunning task still runs to completion;
    the deadline bounds what the campaign {e accepts}, not what it
    {e spends}). *)

type error = {
  message : string;  (** [Printexc.to_string] of the raised exception *)
  backtrace : string;
}

type 'a completion = {
  index : int;
  result : ('a, error) result;
  elapsed : float;  (** seconds spent inside the task ({!Pi_obs.Clock.now}) *)
  started : float;  (** monotonic timestamp at task start *)
  finished : float;  (** monotonic timestamp at task end *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1. *)

val map :
  ?jobs:int ->
  ?deadline:float ->
  ?on_start:(int -> pending:int -> unit) ->
  ?on_finish:('a completion -> pending:int -> unit) ->
  (int -> 'a) ->
  int ->
  'a completion array
(** [map f n] evaluates [f 0 .. f (n-1)] on up to [jobs] domains (default
    {!default_jobs}; [jobs = 1] runs everything on the calling domain with
    no spawns) and returns the completions in index order.

    [pending] is the number of tasks not yet claimed by any worker — the
    queue depth at the moment of the callback. Callbacks are serialized
    under a mutex, so they may write to shared telemetry without further
    locking; keep them cheap, they are on the workers' critical path. *)
