(** Domain-based parallel work scheduler.

    Campaign jobs — one {!Interferometry.Experiment.observe_seed} per
    [(benchmark, seed)] — are pure given their inputs: the per-seed PRNG
    derivation means no random state is shared between observations, so
    they can run on any domain in any order and still produce bit-identical
    results. The scheduler exploits that: a fixed array of tasks is drained
    by [jobs] domains pulling indices from an atomic counter, and each
    result lands in the slot of its own index, so the output order is
    independent of the execution interleaving.

    Worker isolation: a task that raises is recorded as {!error} in its
    completion slot and the worker moves on to the next task — one bad job
    never takes the campaign down. A cooperative per-task [deadline] marks
    tasks that overran it as failed after the fact (OCaml domains cannot be
    killed preemptively, so the overrunning task still runs to completion;
    the deadline bounds what the campaign {e accepts}, not what it
    {e spends}).

    Transient-failure resilience: with [retries > 0], a failed attempt
    (exception or deadline overrun) is re-run up to [retries] more times
    after an exponential-backoff sleep with deterministic jitter
    ([backoff * 2^k], scaled by [0.5, 1.5) from a hash of the task index
    and attempt — no PRNG state is touched, so retry schedules are
    reproducible). Only the final attempt's result lands in the
    completion; [attempts] records how many were spent. *)

type error = {
  message : string;  (** [Printexc.to_string] of the raised exception *)
  backtrace : string;
}

type 'a completion = {
  index : int;
  result : ('a, error) result;
  elapsed : float;
      (** seconds from first attempt start to last attempt end
          ({!Pi_obs.Clock.now}), backoff sleeps included *)
  started : float;  (** monotonic timestamp at first attempt start *)
  finished : float;  (** monotonic timestamp at last attempt end *)
  attempts : int;  (** attempts spent, [1] when the first try decided it *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1. *)

(** The shared bounded work queue. {!map} drains its task indices through
    one, and the [pi_serve] daemon's admission control enqueues client
    submissions into one — a single code path, so capacity limits,
    queue-depth accounting and fairness behave identically for CLI
    campaigns and daemon traffic.

    Items carry a client key and are dequeued {e round-robin across
    clients} (FIFO within a client), so a client with a deep backlog
    cannot starve the others. With one client this is plain FIFO.
    All operations are safe across domains and threads. *)
module Queue : sig
  type 'a t

  val create : ?capacity:int -> ?on_depth:(int -> unit) -> unit -> 'a t
  (** [capacity] bounds the queue: a full queue rejects instead of
      blocking (admission control). [on_depth] fires with the new depth
      after every enqueue/dequeue, under the queue lock — keep it cheap
      (a gauge set). Raises [Invalid_argument] if [capacity < 1]. *)

  val enqueue : ?client:string -> ?force:bool -> 'a t -> 'a -> bool
  (** [false] when the queue is full (the caller's 429) or closed; the
      item was not accepted. Never blocks. [client] defaults to [""].
      [force] bypasses the capacity check (not the closed check) — for
      WAL replay at boot, where every record was already admitted and
      fsync-acknowledged in a previous life and must not be dropped. *)

  val dequeue : 'a t -> 'a option
  (** Blocks until an item is available or the queue is closed and
      drained; [None] only after [close] with nothing left. *)

  val close : 'a t -> unit
  (** No further enqueues; blocked and future [dequeue]s return [None]
      once the remaining items are drained. *)

  val depth : 'a t -> int
  (** Items accepted and not yet dequeued. *)

  val capacity : 'a t -> int option
  val closed : 'a t -> bool
end

val map :
  ?jobs:int ->
  ?deadline:float ->
  ?retries:int ->
  ?backoff:float ->
  ?on_start:(int -> pending:int -> unit) ->
  ?on_retry:(int -> attempt:int -> backoff:float -> error -> pending:int -> unit) ->
  ?on_finish:('a completion -> pending:int -> unit) ->
  (int -> 'a) ->
  int ->
  'a completion array
(** [map f n] evaluates [f 0 .. f (n-1)] on up to [jobs] domains (default
    {!default_jobs}; [jobs = 1] runs everything on the calling domain with
    no spawns) and returns the completions in index order.

    [retries] (default 0) re-runs failed attempts after an exponential
    backoff sleep of [backoff * 2^k] seconds (default base 0.05s) with
    deterministic jitter; [on_retry] fires before each sleep with the
    attempt number (1-based), the chosen sleep and the error that caused
    the retry.

    [pending] is the number of tasks not yet claimed by any worker — the
    queue depth at the moment of the callback. Callbacks are serialized
    under a mutex, so they may write to shared telemetry without further
    locking; keep them cheap, they are on the workers' critical path. *)
