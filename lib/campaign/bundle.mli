(** Content-addressed run bundles.

    A bundle is a self-describing directory that pins one campaign or
    sweep run well enough to re-verify and byte-replay it later (the RGSR
    run-bundle discipline: {e replayable only if hashes match}):

    {v
    <dir>/
      MANIFEST.json      canonical JSON: run identity + artifact pins
      SHA256SUMS.txt     sha256sum-compatible; artifacts + MANIFEST.json
      inputs/            pinned run inputs (config, bench fingerprints)
      outputs/           pinned run products (per-bench observation CSVs)
      meta/              unpinned context (run manifest with wall times)
    v}

    Everything under [inputs/] and [outputs/] is an {e artifact}: its
    SHA-256 and byte count are recorded in the manifest, and the manifest
    itself is hashed into [SHA256SUMS.txt], so a single flipped byte
    anywhere in the pinned set is caught by {!verify}. [meta/] carries
    useful-but-nondeterministic context (wall-clock timings) and is
    deliberately outside the hash tree: a replay must reproduce the
    {e outputs} byte-for-byte, not the weather. *)

(** {1 Canonical JSON} *)

val canonical : Telemetry.json -> Telemetry.json
(** Recursively sort object keys bytewise (the RFC 8785 ordering for
    ASCII keys). Rendering the result with {!Telemetry.to_string} — whose
    float form is already canonical — makes serialization a function of
    content alone, so equal manifests hash equal. *)

val canonical_string : Telemetry.json -> string
(** [Telemetry.to_string (canonical j)]. *)

(** {1 Manifest} *)

type role = Input | Output

type artifact = {
  rel_path : string;  (** bundle-relative, e.g. ["outputs/429.mcf.csv"] *)
  sha256 : string;  (** 64 lowercase hex chars *)
  bytes : int;
  role : role;
}

type manifest = {
  version : int;
  kind : string;  (** ["campaign"] | ["sweep"] *)
  label : string;
  config_digest : string;  (** {!Obs_cache.config_digest} of the run config *)
  config_args : (string * Telemetry.json) list;
      (** the caller-facing knobs that rebuild the config — what [bundle
          replay] re-runs from *)
  benches : string list;
  n_layouts : int;
  workers : int;
  created_at : float;  (** unix seconds *)
  metrics : (string * float) list;
      (** the {!Pi_obs.History} metric bag; [bundle diff] gates on it *)
  artifacts : artifact list;  (** sorted by [rel_path] *)
}

val manifest_file : string
val sums_file : string

val manifest_to_json : manifest -> Telemetry.json
val manifest_of_json : Telemetry.json -> (manifest, string) result

(** {1 Writing} *)

val write :
  dir:string ->
  kind:string ->
  label:string ->
  config_digest:string ->
  config_args:(string * Telemetry.json) list ->
  benches:string list ->
  n_layouts:int ->
  workers:int ->
  created_at:float ->
  metrics:(string * float) list ->
  inputs:(string * string) list ->
  outputs:(string * string) list ->
  ?meta:(string * string) list ->
  unit ->
  manifest
(** Materialize a bundle under [dir] (created if needed). [inputs],
    [outputs] and [meta] are [(relative-name, contents)] pairs written
    under their respective subdirectories; inputs and outputs become
    pinned artifacts, meta files do not. Existing files are overwritten. *)

val of_campaign : dir:string -> workers:int -> Campaign.result -> manifest
(** Materialize a campaign's bundle: [inputs/config.json] (the pinned
    config_args + digest + bench list), one
    [inputs/<bench>.fingerprint.json] per prepared benchmark (SHA-256 of
    its deterministic program stats and trace summary — proof a replay
    ran from the same build products without shipping the trace bytes),
    one [outputs/<bench>.csv] of observations per benchmark, and the run
    manifest under [meta/]. *)

(** {1 Loading and verification} *)

val load : dir:string -> (manifest, string) result
(** Parse [MANIFEST.json]. [Error] on a missing, unparseable or
    wrong-version manifest. *)

type problem = { path : string; reason : string }

type report = { checked : int  (** files re-hashed *); problems : problem list }

val ok : report -> bool

val verify : dir:string -> (manifest * report, string) result
(** Re-hash every pinned artifact against the manifest (existence, size,
    SHA-256), then cross-check [SHA256SUMS.txt] against both the manifest
    entries and the manifest file's actual bytes. [Error] only when the
    manifest itself cannot be loaded; integrity failures come back as
    {!report} problems. *)

(** {1 Diff} *)

val diff :
  ?rules:Pi_obs.History.rule list ->
  before:manifest ->
  after:manifest ->
  unit ->
  Pi_obs.History.delta list
(** Compare two bundles' metric bags under the {!Pi_obs.History}
    threshold rules (default {!Pi_obs.History.default_rules}) — the same
    gate as [interferometry compare], applied bundle-to-bundle. *)
