(** Multi-process campaign coordinator.

    [interferometry campaign --workers N] spawns N worker processes (the
    hidden [campaign-worker] subcommand) and dispatches observation jobs
    to them over length-prefixed pipes. The coordinator keeps an idle
    pool: whichever worker finishes first takes the next job (work
    stealing), and the scheduler's deterministic by-seed assembly is
    untouched — observations are pure functions of
    [(benchmark, config, seed)], so {e any} worker count is bit-identical
    to [--workers 1] and to the in-process path.

    Failure model: a worker death (crash, OOM-kill, SIGKILL) surfaces as
    EOF/EPIPE on its pipes; the coordinator reaps it, respawns a
    replacement into the same pool slot, and re-dispatches the in-flight
    job — bounded per job, after which the job fails like any other and
    the campaign's retry accounting takes over. Workers never write
    shared state (the observation cache is written only by the
    coordinator's serialized on-finish hook), so re-dispatch cannot
    duplicate or tear anything.

    Protocol: 4-byte big-endian length + one {!Telemetry} JSON object per
    message. [hello] (config_args + expected digest — the worker rebuilds
    the config and refuses on mismatch, catching version skew) →
    [ready]; then [observe {bench, seed}] → [ok {row}] / [fail {error}];
    EOF on stdin is the shutdown signal. The worker re-points fd 1 at
    stderr at startup, so stray prints cannot corrupt frames. *)

val config_of_args :
  (string * Telemetry.json) list -> Interferometry.Experiment.config
(** Rebuild the experiment config from the caller-facing knobs recorded
    in manifests and bundles ([quick], [seed], [scale], [heap_random] —
    absent keys default). The {e single} decoder shared by
    [campaign --resume], the worker hello, and [bundle replay]: one copy,
    so "same config_args" always means "same digest". *)

type t

val create :
  ?exe:string ->
  ?subcommand:string ->
  workers:int ->
  config_args:(string * Telemetry.json) list ->
  unit ->
  t
(** Spawn and handshake [workers] processes ([exe] defaults to
    [Sys.executable_name], [subcommand] to ["campaign-worker"]).
    Ignores SIGPIPE for the calling process (worker death must surface
    as EPIPE, not kill the coordinator). Raises [Failure] if a worker
    fails its handshake. *)

val workers : t -> int

val pids : t -> int list
(** Current worker pids — test hooks for killing one mid-campaign. *)

exception Worker_died of string
(** A job's worker (and its respawned replacements) died too many times. *)

val observe : t -> bench:string -> seed:int -> Interferometry.Experiment.observation
(** Run one observation job on an idle worker (blocking until one is
    free). Raises [Failure] when the job itself failed on a healthy
    worker, {!Worker_died} when worker deaths exhausted the respawn
    budget. Safe to call from concurrent scheduler domains. *)

val observe_hook :
  t ->
  bench:string ->
  prepared:Interferometry.Experiment.prepared ->
  seed:int ->
  Interferometry.Experiment.observation
(** {!observe} in the shape of {!Campaign.run}'s [?observe] hook (the
    worker prepares its own benchmarks; [prepared] is unused). *)

val shutdown : t -> unit
(** Close every worker's request pipe (its EOF-is-shutdown signal) and
    reap. Call after the campaign completes; idempotent per worker. *)

val worker_main : unit -> 'a
(** The worker process body: serve frames on stdin/stdout until EOF.
    Never returns — exits 0 on clean shutdown, 1 on protocol errors. *)
