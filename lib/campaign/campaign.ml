module E = Interferometry.Experiment
module Bench = Pi_workloads.Bench
module Linreg = Pi_stats.Linreg
module J = Telemetry
module Span = Pi_obs.Span

let m_cache_hits =
  Pi_obs.Metrics.counter ~help:"observation-cache probes answered from disk"
    "pi_obs_obs_cache_hits_total"

let m_cache_misses =
  Pi_obs.Metrics.counter ~help:"observation-cache probes that became compute jobs"
    "pi_obs_obs_cache_misses_total"

type bench_outcome = {
  bench : Bench.t;
  dataset : E.dataset option;
  entry : Manifest.bench_entry;
}

type result = { outcomes : bench_outcome list; manifest : Manifest.t }

let succeeded r = Manifest.complete r.manifest

let suite_label benches =
  let has suite = List.exists (fun (b : Bench.t) -> b.Bench.suite = suite) benches in
  match (has Bench.Cpu2006, has Bench.Cpu2000) with
  | true, true -> "all"
  | true, false -> "2006"
  | false, true -> "2000"
  | false, false -> "custom"

(* Domain-parallel shard map for {!Pi_uarch.Sweep.run_study}: each fused
   lane shard becomes one Scheduler task. Shards are pure compute over
   shared immutable plan/batch structures (no I/O, no shared mutable
   state), so no deadline or retry policy applies; a shard failure is a
   programming error and is re-raised. Results land in shard-index order,
   preserving the study's deterministic merge. *)
let sweep_shard_map ?jobs () : Pi_uarch.Sweep.shard_map =
 fun f n ->
  Scheduler.map ?jobs f n
  |> Array.map (fun (c : _ Scheduler.completion) ->
         match c.Scheduler.result with
         | Ok counts -> counts
         | Error e -> failwith (Printf.sprintf "sweep shard failed: %s" e.Scheduler.message))

let fit_of dataset =
  let cpis = E.cpis dataset and mpkis = E.mpkis dataset in
  if Array.length cpis < 3 then None
  else
    match Linreg.fit mpkis cpis with
    | reg ->
        Some
          {
            Manifest.r_squared = reg.Linreg.r_squared;
            slope = reg.Linreg.slope;
            intercept = reg.Linreg.intercept;
            mean_mpki = Pi_stats.Descriptive.mean mpkis;
            mean_cpi = Pi_stats.Descriptive.mean cpis;
          }
    | exception _ -> None (* degenerate x range: no model for this benchmark *)

let run ?(config = E.default_config) ?jobs ?cache_dir ?(events = Telemetry.null) ?deadline
    ?(retries = 0) ?(backoff = 0.05) ?fault ?checkpoint_path ?(config_args = []) ?label
    ?observe ~n_layouts benches =
  if n_layouts < 1 then invalid_arg "Campaign.run: n_layouts < 1";
  let jobs =
    match jobs with
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Campaign.run: jobs < 1"
    | None -> Scheduler.default_jobs ()
  in
  let label = match label with Some l -> l | None -> suite_label benches in
  Span.with_ ~name:"campaign" ~args:[ ("label", label) ] @@ fun () ->
  (* started_at is a wall-clock timestamp (it names a moment for humans);
     wall_seconds is a duration and comes from the monotonic clock. *)
  let started_at = Unix.gettimeofday () in
  let t0 = Pi_obs.Clock.now () in
  let digest = Obs_cache.config_digest config in
  let cache = Option.map (fun dir -> Obs_cache.create ~dir) cache_dir in
  let bench_arr = Array.of_list benches in
  let n_benches = Array.length bench_arr in
  let name i = bench_arr.(i).Bench.name in
  J.emit events ~event:"campaign_started"
    [
      ("label", J.String label);
      ("benches", J.Int n_benches);
      ("n_layouts", J.Int n_layouts);
      ("jobs", J.Int jobs);
      ("config_digest", J.String digest);
      ("total_jobs", J.Int (n_benches * n_layouts));
    ];

  (* Phase 1: build + trace every benchmark, in parallel. *)
  let prepared =
    Span.with_ ~name:"campaign.prepare" ~args:[ ("label", label) ]
    @@ fun () ->
    Scheduler.map ~jobs ?deadline ~retries ~backoff
      ~on_start:(fun i ~pending:_ ->
        J.emit events ~event:"prepare_started" [ ("bench", J.String (name i)) ])
      ~on_retry:(fun i ~attempt ~backoff e ~pending:_ ->
        J.emit events ~event:"prepare_retried"
          [
            ("bench", J.String (name i));
            ("attempt", J.Int attempt);
            ("backoff_secs", J.Float backoff);
            ("error", J.String e.Scheduler.message);
          ])
      ~on_finish:(fun c ~pending:_ ->
        match c.Scheduler.result with
        | Ok _ ->
            J.emit events ~event:"prepare_finished"
              [ ("bench", J.String (name c.Scheduler.index)); ("secs", J.Float c.Scheduler.elapsed) ]
        | Error e ->
            J.emit events ~event:"prepare_failed"
              [
                ("bench", J.String (name c.Scheduler.index));
                ("error", J.String e.Scheduler.message);
                ("secs", J.Float c.Scheduler.elapsed);
              ])
      (fun i -> E.prepare ~config bench_arr.(i))
      n_benches
  in

  (* Phase 2: probe the observation cache; hits never reach the queue. *)
  let cached_obs =
    Span.with_ ~name:"campaign.cache" ~args:[ ("label", label) ]
    @@ fun () ->
    Array.init n_benches (fun i ->
        match (cache, prepared.(i).Scheduler.result) with
        | Some cache, Ok _ ->
            let hits =
              Array.to_list (Obs_cache.load cache ~bench:(name i) ~config)
              |> List.filter (fun (o : E.observation) ->
                     o.E.layout_seed >= 1 && o.E.layout_seed <= n_layouts)
            in
            Pi_obs.Metrics.add m_cache_hits (List.length hits);
            Pi_obs.Metrics.add m_cache_misses (n_layouts - List.length hits);
            List.iter
              (fun (o : E.observation) ->
                J.emit events ~event:"job_cached"
                  [ ("bench", J.String (name i)); ("seed", J.Int o.E.layout_seed) ])
              hits;
            hits
        | _ -> [])
  in
  let cache_hits = List.length (List.concat (Array.to_list cached_obs)) in
  let cache_misses =
    if Option.is_none cache then 0
    else
      Array.to_list prepared
      |> List.mapi (fun i (c : _ Scheduler.completion) ->
             match c.Scheduler.result with
             | Ok _ -> n_layouts - List.length cached_obs.(i)
             | Error _ -> 0)
      |> List.fold_left ( + ) 0
  in

  (* Phase 3: one observation job per (benchmark, seed) not yet on disk.
     The cached-seed membership test is a bool array, not a list scan —
     planning stays O(n_layouts) per benchmark — and seeds are enumerated
     in ascending order, so job order (and hence every downstream
     artifact) is identical to the list-based plan. *)
  let job_specs =
    Array.concat
      (List.init n_benches (fun i ->
           match prepared.(i).Scheduler.result with
           | Error _ -> [||]
           | Ok _ ->
               let have = Array.make (n_layouts + 1) false in
               List.iter
                 (fun (o : E.observation) ->
                   if o.E.layout_seed >= 1 && o.E.layout_seed <= n_layouts then
                     have.(o.E.layout_seed) <- true)
                 cached_obs.(i);
               Array.of_list
                 (List.filter_map
                    (fun seed -> if have.(seed) then None else Some (i, seed))
                    (List.init n_layouts (fun s -> s + 1)))))
  in
  (* Checkpoint: before any observation job runs, persist a resume anchor
     recording the campaign's identity (benches, layouts, config digest,
     the caller's config_args, cache location). An interrupt at any later
     point leaves this manifest plus the incrementally-written observation
     cache — everything `campaign --resume` needs; the final manifest
     overwrites it. *)
  let checkpoint_entry i =
    let failures, prepare_error =
      match prepared.(i).Scheduler.result with
      | Ok _ -> ([], None)
      | Error e ->
          ( List.init n_layouts (fun s ->
                {
                  Manifest.seed = s + 1;
                  error = Printf.sprintf "prepare failed: %s" e.Scheduler.message;
                }),
            Some e.Scheduler.message )
    in
    {
      Manifest.bench = name i;
      suite = Bench.suite_name bench_arr.(i).Bench.suite;
      requested = n_layouts;
      computed = 0;
      cached = List.length cached_obs.(i);
      warmup_blocks =
        (match prepared.(i).Scheduler.result with
        | Ok p -> p.E.warmup_blocks
        | Error _ -> 0);
      retries = prepared.(i).Scheduler.attempts - 1;
      failures;
      prepare_seconds = prepared.(i).Scheduler.elapsed;
      observe_seconds = 0.0;
      wall_seconds = 0.0;
      cpu_seconds = prepared.(i).Scheduler.elapsed;
      prepare_error;
      fit = None;
    }
  in
  (match checkpoint_path with
  | None -> ()
  | Some path ->
      let entries = List.init n_benches checkpoint_entry in
      let sum f = List.fold_left (fun acc e -> acc + f e) 0 entries in
      Manifest.save
        {
          Manifest.label;
          n_layouts;
          jobs;
          config_digest = digest;
          cache_dir;
          config_args;
          checkpoint = true;
          started_at;
          wall_seconds = Pi_obs.Clock.now () -. t0;
          total_jobs = n_benches * n_layouts;
          computed_jobs = 0;
          cached_jobs = sum (fun e -> e.Manifest.cached);
          failed_jobs = sum (fun e -> List.length e.Manifest.failures);
          retried_jobs = sum (fun e -> e.Manifest.retries);
          cache_hits;
          cache_misses;
          benches = entries;
        }
        ~path;
      J.emit events ~event:"checkpoint_saved"
        [ ("path", J.String path); ("pending_jobs", J.Int (Array.length job_specs)) ]);
  let job_field idx =
    let bench_idx, seed = job_specs.(idx) in
    [ ("bench", J.String (name bench_idx)); ("seed", J.Int seed) ]
  in
  (* Attempt numbers for the fault-injection sites: a job's attempts run
     sequentially on one domain, so a plain array indexed by job is safe,
     and keying the fault draw by attempt makes injected faults transient
     under retry — exactly the failure mode the retry path exists for. *)
  let attempts_so_far = Array.make (Array.length job_specs) 0 in
  let completions =
    Span.with_ ~name:"campaign.observe" ~args:[ ("label", label) ]
    @@ fun () ->
    Scheduler.map ~jobs ?deadline ~retries ~backoff
      ~on_start:(fun i ~pending ->
        J.emit events ~event:"job_started" (job_field i @ [ ("queue_depth", J.Int pending) ]))
      ~on_retry:(fun i ~attempt ~backoff e ~pending:_ ->
        J.emit events ~event:"job_retried"
          (job_field i
          @ [
              ("attempt", J.Int attempt);
              ("backoff_secs", J.Float backoff);
              ("error", J.String e.Scheduler.message);
            ]))
      ~on_finish:(fun c ~pending ->
        (match c.Scheduler.result with
        | Ok _ ->
            J.emit events ~event:"job_finished"
              (job_field c.Scheduler.index
              @ [ ("secs", J.Float c.Scheduler.elapsed); ("queue_depth", J.Int pending) ])
        | Error e ->
            J.emit events ~event:"job_failed"
              (job_field c.Scheduler.index
              @ [
                  ("error", J.String e.Scheduler.message);
                  ("secs", J.Float c.Scheduler.elapsed);
                  ("queue_depth", J.Int pending);
                ]));
        (* Incremental checkpointing: every completed observation reaches
           disk immediately (on_finish callbacks are serialized, so the
           merge-and-rename cannot race another store). A crash loses at
           most the in-flight job; everything already observed resumes as
           a cache hit. *)
        match (cache, c.Scheduler.result) with
        | Some cache, Ok obs ->
            let bench_idx, seed = job_specs.(c.Scheduler.index) in
            Obs_cache.store cache ~bench:(name bench_idx) ~config [| obs |];
            (match fault with
            | Some fault ->
                if
                  Fault.maybe_corrupt fault
                    ~site:(Printf.sprintf "store|%s|%d" (name bench_idx) seed)
                    (Obs_cache.entry_path cache ~bench:(name bench_idx) ~config)
                then
                  J.emit events ~event:"fault_corrupted_cache"
                    [ ("bench", J.String (name bench_idx)); ("seed", J.Int seed) ]
            | None -> ())
        | _ -> ())
      (fun i ->
        let bench_idx, seed = job_specs.(i) in
        match prepared.(bench_idx).Scheduler.result with
        | Ok prepared ->
            let attempt = attempts_so_far.(i) + 1 in
            attempts_so_far.(i) <- attempt;
            (match fault with
            | Some fault ->
                Fault.inject fault
                  ~site:(Printf.sprintf "job|%s|%d" (name bench_idx) seed)
                  ~attempt
            | None -> ());
            (* The observe hook is where --workers N plugs in: the
               coordinator runs the job on a worker process instead of
               this domain. Either path is a pure function of
               (benchmark, config, seed), so the assembly below cannot
               tell them apart — that is the bit-identity invariant. *)
            (match observe with
            | Some f -> f ~bench:(name bench_idx) ~prepared ~seed
            | None -> E.observe_seed prepared seed)
        | Error _ -> assert false (* unprepared benchmarks enqueue no jobs *))
      (Array.length job_specs)
  in

  (* Phase 4: assemble per-benchmark datasets by seed — completion order is
     irrelevant, which is what makes the parallel path bit-identical. *)
  let outcomes =
    Span.with_ ~name:"campaign.assemble" ~args:[ ("label", label) ]
    @@ fun () ->
    List.init n_benches (fun i ->
        let bench = bench_arr.(i) in
        let suite = Bench.suite_name bench.Bench.suite in
        match prepared.(i).Scheduler.result with
        | Error e ->
            let failures =
              List.init n_layouts (fun s ->
                  {
                    Manifest.seed = s + 1;
                    error = Printf.sprintf "prepare failed: %s" e.Scheduler.message;
                  })
            in
            {
              bench;
              dataset = None;
              entry =
                {
                  Manifest.bench = bench.Bench.name;
                  suite;
                  requested = n_layouts;
                  computed = 0;
                  cached = 0;
                  warmup_blocks = 0;
                  retries = prepared.(i).Scheduler.attempts - 1;
                  failures;
                  prepare_seconds = prepared.(i).Scheduler.elapsed;
                  observe_seconds = 0.0;
                  wall_seconds = prepared.(i).Scheduler.elapsed;
                  cpu_seconds = prepared.(i).Scheduler.elapsed;
                  prepare_error = Some e.Scheduler.message;
                  fit = None;
                };
            }
        | Ok prep ->
            let computed_ok = ref [] and failures = ref [] and observe_seconds = ref 0.0 in
            let bench_retries = ref (prepared.(i).Scheduler.attempts - 1) in
            (* This bench's activity window: from the start of its prepare
               task to the finish of its last observation job. Under
               parallelism the window (wall) is shorter than the summed
               task time (cpu); the ratio is this bench's effective
               parallelism in the manifest. *)
            let first_started = ref prepared.(i).Scheduler.started in
            let last_finished = ref prepared.(i).Scheduler.finished in
            Array.iter
              (fun (c : _ Scheduler.completion) ->
                let bench_idx, seed = job_specs.(c.Scheduler.index) in
                if bench_idx = i then begin
                  observe_seconds := !observe_seconds +. c.Scheduler.elapsed;
                  bench_retries := !bench_retries + c.Scheduler.attempts - 1;
                  first_started := Float.min !first_started c.Scheduler.started;
                  last_finished := Float.max !last_finished c.Scheduler.finished;
                  match c.Scheduler.result with
                  | Ok obs -> computed_ok := obs :: !computed_ok
                  | Error e ->
                      failures := { Manifest.seed; error = e.Scheduler.message } :: !failures
                end)
              completions;
            let observations =
              List.sort
                (fun (a : E.observation) b -> compare a.E.layout_seed b.E.layout_seed)
                (cached_obs.(i) @ !computed_ok)
              |> Array.of_list
            in
            (* Computed observations already reached the cache one by one
               from the observe phase's on_finish — crash-safe checkpointing
               made the end-of-campaign bulk store redundant. *)
            let dataset = Interferometry.Dataset_io.reattach prep observations in
            {
              bench;
              dataset = Some dataset;
              entry =
                {
                  Manifest.bench = bench.Bench.name;
                  suite;
                  requested = n_layouts;
                  computed = List.length !computed_ok;
                  cached = List.length cached_obs.(i);
                  warmup_blocks = prep.E.warmup_blocks;
                  retries = !bench_retries;
                  failures = List.sort compare !failures;
                  prepare_seconds = prepared.(i).Scheduler.elapsed;
                  observe_seconds = !observe_seconds;
                  wall_seconds = !last_finished -. !first_started;
                  cpu_seconds = prepared.(i).Scheduler.elapsed +. !observe_seconds;
                  prepare_error = None;
                  fit = fit_of dataset;
                };
            })
  in
  let sum f = List.fold_left (fun acc o -> acc + f o.entry) 0 outcomes in
  let manifest =
    {
      Manifest.label;
      n_layouts;
      jobs;
      config_digest = digest;
      cache_dir;
      config_args;
      checkpoint = false;
      started_at;
      wall_seconds = Pi_obs.Clock.now () -. t0;
      total_jobs = n_benches * n_layouts;
      computed_jobs = sum (fun e -> e.Manifest.computed);
      cached_jobs = sum (fun e -> e.Manifest.cached);
      failed_jobs = sum (fun e -> List.length e.Manifest.failures);
      retried_jobs = sum (fun e -> e.Manifest.retries);
      cache_hits;
      cache_misses;
      benches = List.map (fun o -> o.entry) outcomes;
    }
  in
  J.emit events ~event:"campaign_finished"
    [
      ("label", J.String label);
      ("computed", J.Int manifest.Manifest.computed_jobs);
      ("cached", J.Int manifest.Manifest.cached_jobs);
      ("failed", J.Int manifest.Manifest.failed_jobs);
      ("retries", J.Int manifest.Manifest.retried_jobs);
      ("wall_secs", J.Float manifest.Manifest.wall_seconds);
      ("complete", J.Bool (Manifest.complete manifest));
    ];
  { outcomes; manifest }
