module E = Interferometry.Experiment
module Bench = Pi_workloads.Bench
module Linreg = Pi_stats.Linreg
module J = Telemetry

type bench_outcome = {
  bench : Bench.t;
  dataset : E.dataset option;
  entry : Manifest.bench_entry;
}

type result = { outcomes : bench_outcome list; manifest : Manifest.t }

let succeeded r = Manifest.complete r.manifest

let suite_label benches =
  let has suite = List.exists (fun (b : Bench.t) -> b.Bench.suite = suite) benches in
  match (has Bench.Cpu2006, has Bench.Cpu2000) with
  | true, true -> "all"
  | true, false -> "2006"
  | false, true -> "2000"
  | false, false -> "custom"

let fit_of dataset =
  let cpis = E.cpis dataset and mpkis = E.mpkis dataset in
  if Array.length cpis < 3 then None
  else
    match Linreg.fit mpkis cpis with
    | reg ->
        Some
          {
            Manifest.r_squared = reg.Linreg.r_squared;
            slope = reg.Linreg.slope;
            intercept = reg.Linreg.intercept;
            mean_mpki = Pi_stats.Descriptive.mean mpkis;
            mean_cpi = Pi_stats.Descriptive.mean cpis;
          }
    | exception _ -> None (* degenerate x range: no model for this benchmark *)

let run ?(config = E.default_config) ?jobs ?cache_dir ?(events = Telemetry.null) ?deadline
    ?label ~n_layouts benches =
  if n_layouts < 1 then invalid_arg "Campaign.run: n_layouts < 1";
  let jobs =
    match jobs with
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Campaign.run: jobs < 1"
    | None -> Scheduler.default_jobs ()
  in
  let label = match label with Some l -> l | None -> suite_label benches in
  let started_at = Unix.gettimeofday () in
  let digest = Obs_cache.config_digest config in
  let cache = Option.map (fun dir -> Obs_cache.create ~dir) cache_dir in
  let bench_arr = Array.of_list benches in
  let n_benches = Array.length bench_arr in
  let name i = bench_arr.(i).Bench.name in
  J.emit events ~event:"campaign_started"
    [
      ("label", J.String label);
      ("benches", J.Int n_benches);
      ("n_layouts", J.Int n_layouts);
      ("jobs", J.Int jobs);
      ("config_digest", J.String digest);
      ("total_jobs", J.Int (n_benches * n_layouts));
    ];

  (* Phase 1: build + trace every benchmark, in parallel. *)
  let prepared =
    Scheduler.map ~jobs ?deadline
      ~on_start:(fun i ~pending:_ ->
        J.emit events ~event:"prepare_started" [ ("bench", J.String (name i)) ])
      ~on_finish:(fun c ~pending:_ ->
        match c.Scheduler.result with
        | Ok _ ->
            J.emit events ~event:"prepare_finished"
              [ ("bench", J.String (name c.Scheduler.index)); ("secs", J.Float c.Scheduler.elapsed) ]
        | Error e ->
            J.emit events ~event:"prepare_failed"
              [
                ("bench", J.String (name c.Scheduler.index));
                ("error", J.String e.Scheduler.message);
                ("secs", J.Float c.Scheduler.elapsed);
              ])
      (fun i -> E.prepare ~config bench_arr.(i))
      n_benches
  in

  (* Phase 2: probe the observation cache; hits never reach the queue. *)
  let cached_obs =
    Array.init n_benches (fun i ->
        match (cache, prepared.(i).Scheduler.result) with
        | Some cache, Ok _ ->
            let hits =
              Array.to_list (Obs_cache.load cache ~bench:(name i) ~config)
              |> List.filter (fun (o : E.observation) ->
                     o.E.layout_seed >= 1 && o.E.layout_seed <= n_layouts)
            in
            List.iter
              (fun (o : E.observation) ->
                J.emit events ~event:"job_cached"
                  [ ("bench", J.String (name i)); ("seed", J.Int o.E.layout_seed) ])
              hits;
            hits
        | _ -> [])
  in

  (* Phase 3: one observation job per (benchmark, seed) not yet on disk. *)
  let job_specs =
    Array.concat
      (List.init n_benches (fun i ->
           match prepared.(i).Scheduler.result with
           | Error _ -> [||]
           | Ok _ ->
               let have =
                 List.fold_left
                   (fun acc (o : E.observation) -> o.E.layout_seed :: acc)
                   [] cached_obs.(i)
               in
               Array.of_list
                 (List.filter_map
                    (fun seed -> if List.mem seed have then None else Some (i, seed))
                    (List.init n_layouts (fun s -> s + 1)))))
  in
  let job_field idx =
    let bench_idx, seed = job_specs.(idx) in
    [ ("bench", J.String (name bench_idx)); ("seed", J.Int seed) ]
  in
  let completions =
    Scheduler.map ~jobs ?deadline
      ~on_start:(fun i ~pending ->
        J.emit events ~event:"job_started" (job_field i @ [ ("queue_depth", J.Int pending) ]))
      ~on_finish:(fun c ~pending ->
        match c.Scheduler.result with
        | Ok _ ->
            J.emit events ~event:"job_finished"
              (job_field c.Scheduler.index
              @ [ ("secs", J.Float c.Scheduler.elapsed); ("queue_depth", J.Int pending) ])
        | Error e ->
            J.emit events ~event:"job_failed"
              (job_field c.Scheduler.index
              @ [
                  ("error", J.String e.Scheduler.message);
                  ("secs", J.Float c.Scheduler.elapsed);
                  ("queue_depth", J.Int pending);
                ]))
      (fun i ->
        let bench_idx, seed = job_specs.(i) in
        match prepared.(bench_idx).Scheduler.result with
        | Ok prepared -> E.observe_seed prepared seed
        | Error _ -> assert false (* unprepared benchmarks enqueue no jobs *))
      (Array.length job_specs)
  in

  (* Phase 4: assemble per-benchmark datasets by seed — completion order is
     irrelevant, which is what makes the parallel path bit-identical. *)
  let outcomes =
    List.init n_benches (fun i ->
        let bench = bench_arr.(i) in
        let suite = Bench.suite_name bench.Bench.suite in
        match prepared.(i).Scheduler.result with
        | Error e ->
            let failures =
              List.init n_layouts (fun s ->
                  {
                    Manifest.seed = s + 1;
                    error = Printf.sprintf "prepare failed: %s" e.Scheduler.message;
                  })
            in
            {
              bench;
              dataset = None;
              entry =
                {
                  Manifest.bench = bench.Bench.name;
                  suite;
                  requested = n_layouts;
                  computed = 0;
                  cached = 0;
                  failures;
                  prepare_seconds = prepared.(i).Scheduler.elapsed;
                  observe_seconds = 0.0;
                  prepare_error = Some e.Scheduler.message;
                  fit = None;
                };
            }
        | Ok prep ->
            let computed_ok = ref [] and failures = ref [] and observe_seconds = ref 0.0 in
            Array.iter
              (fun (c : _ Scheduler.completion) ->
                let bench_idx, seed = job_specs.(c.Scheduler.index) in
                if bench_idx = i then begin
                  observe_seconds := !observe_seconds +. c.Scheduler.elapsed;
                  match c.Scheduler.result with
                  | Ok obs -> computed_ok := obs :: !computed_ok
                  | Error e ->
                      failures := { Manifest.seed; error = e.Scheduler.message } :: !failures
                end)
              completions;
            let observations =
              List.sort
                (fun (a : E.observation) b -> compare a.E.layout_seed b.E.layout_seed)
                (cached_obs.(i) @ !computed_ok)
              |> Array.of_list
            in
            (match (cache, !computed_ok) with
            | Some cache, _ :: _ ->
                Obs_cache.store cache ~bench:(name i) ~config (Array.of_list !computed_ok)
            | _ -> ());
            let dataset = Interferometry.Dataset_io.reattach prep observations in
            {
              bench;
              dataset = Some dataset;
              entry =
                {
                  Manifest.bench = bench.Bench.name;
                  suite;
                  requested = n_layouts;
                  computed = List.length !computed_ok;
                  cached = List.length cached_obs.(i);
                  failures = List.sort compare !failures;
                  prepare_seconds = prepared.(i).Scheduler.elapsed;
                  observe_seconds = !observe_seconds;
                  prepare_error = None;
                  fit = fit_of dataset;
                };
            })
  in
  let sum f = List.fold_left (fun acc o -> acc + f o.entry) 0 outcomes in
  let manifest =
    {
      Manifest.label;
      n_layouts;
      jobs;
      config_digest = digest;
      cache_dir;
      started_at;
      wall_seconds = Unix.gettimeofday () -. started_at;
      total_jobs = n_benches * n_layouts;
      computed_jobs = sum (fun e -> e.Manifest.computed);
      cached_jobs = sum (fun e -> e.Manifest.cached);
      failed_jobs = sum (fun e -> List.length e.Manifest.failures);
      benches = List.map (fun o -> o.entry) outcomes;
    }
  in
  J.emit events ~event:"campaign_finished"
    [
      ("label", J.String label);
      ("computed", J.Int manifest.Manifest.computed_jobs);
      ("cached", J.Int manifest.Manifest.cached_jobs);
      ("failed", J.Int manifest.Manifest.failed_jobs);
      ("wall_secs", J.Float manifest.Manifest.wall_seconds);
      ("complete", J.Bool (Manifest.complete manifest));
    ];
  { outcomes; manifest }
