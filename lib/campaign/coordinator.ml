module E = Interferometry.Experiment
module Dataset_io = Interferometry.Dataset_io
module J = Telemetry

let m_workers =
  Pi_obs.Metrics.gauge ~help:"live campaign worker processes" "pi_obs_coordinator_workers"

let m_jobs =
  Pi_obs.Metrics.counter ~help:"observation jobs dispatched to worker processes"
    "pi_obs_coordinator_jobs_total"

let m_deaths =
  Pi_obs.Metrics.counter ~help:"worker processes that died mid-campaign"
    "pi_obs_coordinator_worker_deaths_total"

let m_redispatches =
  Pi_obs.Metrics.counter ~help:"observation jobs re-dispatched after a worker death"
    "pi_obs_coordinator_redispatches_total"

(* ------------------------------------------------------------------ *)
(* Config reconstruction                                               *)
(* ------------------------------------------------------------------ *)

(* The single decoder for the caller-facing config knobs recorded in
   manifests and bundles. [campaign --resume], the worker hello, and
   [bundle replay] all rebuild the experiment config through this one
   function — any skew between them would silently break the "same
   digest = same measurement" contract, so there is exactly one copy. *)
let config_of_args args =
  let geti name default =
    match List.assoc_opt name args with Some (J.Int i) -> i | _ -> default
  in
  let getb name = match List.assoc_opt name args with Some (J.Bool b) -> b | _ -> false in
  let base = if getb "quick" then E.quick_config else E.default_config in
  {
    base with
    E.master_seed = geti "seed" base.E.master_seed;
    scale = geti "scale" base.E.scale;
    heap_random = getb "heap_random";
  }

(* ------------------------------------------------------------------ *)
(* Frame protocol                                                      *)
(* ------------------------------------------------------------------ *)

(* One message = 4-byte big-endian payload length + a Telemetry JSON
   object. Length-prefix framing (rather than line framing) keeps the
   protocol self-delimiting even if a payload ever contains a newline,
   and makes truncation — the signature of a dead worker — unambiguous:
   any short read is EOF, never a parse of half a message. *)

let max_frame = 16 * 1024 * 1024

let rec retry_eintr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let write_all fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    let n = retry_eintr (fun () -> Unix.write fd buf !off (len - !off)) in
    off := !off + n
  done

let write_frame fd json =
  let payload = J.to_string json in
  let n = String.length payload in
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  write_all fd buf

(* [false] = EOF before [len] bytes arrived. *)
let read_exact fd buf len =
  let off = ref 0 and eof = ref false in
  while (not !eof) && !off < len do
    match retry_eintr (fun () -> Unix.read fd buf !off (len - !off)) with
    | 0 -> eof := true
    | n -> off := !off + n
  done;
  not !eof

let read_frame fd =
  let hdr = Bytes.create 4 in
  if not (read_exact fd hdr 4) then Error `Eof
  else
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_frame then Error (`Garbage (Printf.sprintf "frame length %d" n))
    else
      let payload = Bytes.create n in
      if not (read_exact fd payload n) then Error `Eof
      else
        match J.parse (Bytes.to_string payload) with
        | Ok json -> Ok json
        | Error e -> Error (`Garbage e)

(* Message field access; a malformed message from the peer is a protocol
   error, not a crash. *)
exception Bad of string

let member name = function
  | J.Obj fields -> ( match List.assoc_opt name fields with Some v -> v | None -> J.Null)
  | _ -> J.Null

let get_string name j =
  match member name j with
  | J.String s -> s
  | _ -> raise (Bad ("missing string field " ^ name))

let get_int name j =
  match member name j with J.Int i -> i | _ -> raise (Bad ("missing int field " ^ name))

let op j = match member "op" j with J.String s -> s | _ -> ""

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

let worker_main () =
  (* The protocol rides the original stdout; anything else that prints —
     a stray [Printf.printf] in library code, a runtime warning — must
     not be able to corrupt a frame, so fd 1 is re-pointed at stderr and
     only this function holds the real pipe. *)
  let proto_out = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  let reply json = write_frame proto_out json in
  let config = ref None in
  let prepared : (string, E.prepared) Hashtbl.t = Hashtbl.create 8 in
  let fail_protocol msg =
    (try reply (J.Obj [ ("op", J.String "error"); ("message", J.String msg) ])
     with Unix.Unix_error _ -> ());
    exit 1
  in
  let rec loop () =
    match read_frame Unix.stdin with
    | Error `Eof -> exit 0 (* coordinator closed the pipe: clean shutdown *)
    | Error (`Garbage msg) -> fail_protocol ("bad request frame: " ^ msg)
    | Ok msg -> (
        match op msg with
        | "hello" -> (
            match
              let args = match member "config_args" msg with J.Obj f -> f | _ -> [] in
              let cfg = config_of_args args in
              let digest = Obs_cache.config_digest cfg in
              let want = get_string "config_digest" msg in
              if digest <> want then
                Error
                  (Printf.sprintf
                     "config digest mismatch: coordinator wants %s, worker rebuilt %s \
                      (version skew between coordinator and worker binaries?)"
                     want digest)
              else begin
                config := Some cfg;
                Ok digest
              end
            with
            | Ok digest ->
                reply (J.Obj [ ("op", J.String "ready"); ("config_digest", J.String digest) ]);
                loop ()
            | Error msg | (exception Bad msg) ->
                reply (J.Obj [ ("op", J.String "error"); ("message", J.String msg) ]);
                exit 1)
        | "observe" -> (
            let bench = get_string "bench" msg and seed = get_int "seed" msg in
            let respond = function
              | Ok row ->
                  reply
                    (J.Obj
                       [
                         ("op", J.String "ok");
                         ("bench", J.String bench);
                         ("seed", J.Int seed);
                         ("row", J.String row);
                       ])
              | Error err ->
                  reply
                    (J.Obj
                       [
                         ("op", J.String "fail");
                         ("bench", J.String bench);
                         ("seed", J.Int seed);
                         ("error", J.String err);
                       ])
            in
            match !config with
            | None -> fail_protocol "observe before hello"
            | Some cfg ->
                (match
                   let prep =
                     match Hashtbl.find_opt prepared bench with
                     | Some p -> p
                     | None ->
                         let p = E.prepare ~config:cfg (Pi_workloads.Spec.find bench) in
                         Hashtbl.add prepared bench p;
                         p
                   in
                   E.observe_seed prep seed
                 with
                | obs -> respond (Ok (Dataset_io.observation_to_row obs))
                | exception e -> respond (Error (Printexc.to_string e)));
                loop ())
        | "exit" -> exit 0
        | other -> fail_protocol ("unknown op " ^ other))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Coordinator side                                                    *)
(* ------------------------------------------------------------------ *)

type worker = {
  mutable pid : int;
  mutable req : Unix.file_descr;  (* coordinator -> worker stdin *)
  mutable resp : Unix.file_descr;  (* worker stdout -> coordinator *)
}

type t = {
  exe : string;
  argv : string array;
  hello : J.json;
  workers : worker array;
  idle : worker Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let reap w =
  close_quietly w.req;
  close_quietly w.resp;
  try ignore (retry_eintr (fun () -> Unix.waitpid [] w.pid))
  with Unix.Unix_error _ -> ()

let spawn ~exe ~argv ~hello =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  (* The coordinator-side ends must not leak into workers: an inherited
     write end would keep a dead worker's request pipe readable and mask
     the EOF that *is* the death signal. *)
  Unix.set_close_on_exec req_w;
  Unix.set_close_on_exec resp_r;
  let pid = Unix.create_process exe argv req_r resp_w Unix.stderr in
  Unix.close req_r;
  Unix.close resp_w;
  let w = { pid; req = req_w; resp = resp_r } in
  let fail msg =
    reap w;
    failwith ("campaign worker failed to start: " ^ msg)
  in
  (try write_frame w.req hello with Unix.Unix_error (e, _, _) -> fail (Unix.error_message e));
  match read_frame w.resp with
  | Ok reply when op reply = "ready" -> w
  | Ok reply -> (
      match member "message" reply with
      | J.String m -> fail m
      | _ -> fail ("unexpected reply op " ^ op reply))
  | Error `Eof -> fail "worker exited during handshake"
  | Error (`Garbage msg) -> fail ("bad handshake frame: " ^ msg)

let create ?exe ?(subcommand = "campaign-worker") ~workers:n ~config_args () =
  if n < 1 then invalid_arg "Coordinator.create: workers < 1";
  (* A worker dying mid-write must surface as EPIPE on our write(2), not
     kill the whole coordinator with SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let exe = match exe with Some e -> e | None -> Sys.executable_name in
  let argv = [| exe; subcommand |] in
  let digest = Obs_cache.config_digest (config_of_args config_args) in
  let hello =
    J.Obj
      [
        ("op", J.String "hello");
        ("config_args", J.Obj config_args);
        ("config_digest", J.String digest);
      ]
  in
  let workers = Array.init n (fun _ -> spawn ~exe ~argv ~hello) in
  let idle = Queue.create () in
  Array.iter (fun w -> Queue.push w idle) workers;
  Pi_obs.Metrics.set m_workers (float_of_int n);
  { exe; argv; hello; workers; idle; mutex = Mutex.create (); nonempty = Condition.create () }

let workers t = Array.length t.workers
let pids t = Array.to_list (Array.map (fun w -> w.pid) t.workers)

let lease t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.idle do
    Condition.wait t.nonempty t.mutex
  done;
  let w = Queue.pop t.idle in
  Mutex.unlock t.mutex;
  w

let release t w =
  Mutex.lock t.mutex;
  Queue.push w t.idle;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let max_respawns_per_job = 3

exception Worker_died of string

let observe t ~bench ~seed =
  let request =
    J.Obj [ ("op", J.String "observe"); ("bench", J.String bench); ("seed", J.Int seed) ]
  in
  let w = lease t in
  (* The worker (possibly respawned in place) always returns to the pool:
     job-level failures go to the scheduler as ordinary job errors, and a
     slot whose respawn failed will simply re-attempt the respawn on its
     next lease. *)
  Fun.protect ~finally:(fun () -> release t w)
  @@ fun () ->
  let rec dispatch ~respawns =
    let exchange () =
      try
        write_frame w.req request;
        read_frame w.resp
      with Unix.Unix_error (e, _, _) -> Error (`Died (Unix.error_message e))
    in
    let died reason =
      (* EOF/EPIPE/garbage on the pipe all mean the worker process is
         unusable: reap it, respawn into the same pool slot, and
         re-dispatch the job. The observation is deterministic in
         (bench, config, seed) and the worker never touches shared
         state, so a re-run is exactly equivalent — this is what makes
         SIGKILL-during-job invisible in the output. *)
      Pi_obs.Metrics.inc m_deaths;
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap w;
      if respawns >= max_respawns_per_job then
        raise
          (Worker_died
             (Printf.sprintf "worker for %s seed %d died %d times (%s); giving up" bench
                seed (respawns + 1) reason))
      else begin
        let fresh = spawn ~exe:t.exe ~argv:t.argv ~hello:t.hello in
        w.pid <- fresh.pid;
        w.req <- fresh.req;
        w.resp <- fresh.resp;
        Pi_obs.Metrics.inc m_redispatches;
        dispatch ~respawns:(respawns + 1)
      end
    in
    match exchange () with
    | Error (`Died reason) | Error (`Garbage reason) -> died reason
    | Error `Eof -> died "eof"
    | Ok reply -> (
        match op reply with
        | "ok" -> (
            match
              (get_string "bench" reply, get_int "seed" reply, get_string "row" reply)
            with
            | b, s, _ when b <> bench || s <> seed ->
                died (Printf.sprintf "reply for wrong job %s/%d" b s)
            | _, _, row -> (
                match Dataset_io.observation_of_row row with
                | Ok obs ->
                    Pi_obs.Metrics.inc m_jobs;
                    obs
                | Error e -> died ("unparseable observation row: " ^ e))
            | exception Bad msg -> died msg)
        | "fail" ->
            (* The worker is healthy; the job itself raised. Propagate as
               an ordinary job error so the scheduler's retry/failure
               accounting treats process-pool campaigns exactly like
               in-process ones. *)
            let msg = try get_string "error" reply with Bad _ -> "unknown worker error" in
            Pi_obs.Metrics.inc m_jobs;
            failwith msg
        | other -> died ("unexpected reply op " ^ other))
  in
  dispatch ~respawns:0

let observe_hook t ~bench ~prepared:_ ~seed = observe t ~bench ~seed

let shutdown t =
  Array.iter
    (fun w ->
      (* Closing the request pipe is the shutdown signal: the worker's
         next read sees EOF and exits 0. Then reap. *)
      reap w)
    t.workers;
  Pi_obs.Metrics.set m_workers 0.0
