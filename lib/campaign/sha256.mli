(** FIPS 180-4 SHA-256, pure OCaml — no dependencies.

    Run bundles ({!Bundle}) pin input and output artifacts by SHA-256, per
    the run-bundle replay rule ("replayable only if hashes match
    SHA256SUMS.txt"); the stdlib [Digest] is MD5 and stays confined to the
    cheap non-adversarial framing uses (WAL/history record framing, cache
    keys within one digest-versioned directory). Verified against the FIPS
    vectors in test/test_bundle.ml. *)

val string : string -> string
(** Lowercase 64-char hex digest of a string. *)

val file : string -> string
(** Lowercase 64-char hex digest of a file's bytes, streamed in 64 KiB
    chunks. Raises [Sys_error] if the file cannot be opened. *)
