module E = Interferometry.Experiment
module Dataset_io = Interferometry.Dataset_io
module Pipeline = Pi_uarch.Pipeline
module Counters = Pi_uarch.Counters
module Cache = Pi_uarch.Cache

type t = { dir : string }

(* Distinguishes concurrent writers within one process (scheduler domains
   or parallel campaigns in tests); the pid distinguishes processes. *)
let tmp_counter = Atomic.make 0

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A crashed (or killed) writer leaves its unique temp file behind; the
   entry itself is intact, so the orphan is pure garbage. Reap it on the
   next [create] — but only once it is old enough that it cannot belong to
   a still-running campaign sharing this directory. *)
let orphan_tmp_age = 600.0

let cleanup_orphan_tmps dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      let now = Unix.time () in
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".tmp" then
            let path = Filename.concat dir name in
            match Unix.stat path with
            | { Unix.st_kind = Unix.S_REG; st_mtime; _ }
              when now -. st_mtime > orphan_tmp_age -> (
                try Sys.remove path with Sys_error _ -> ())
            | _ | (exception Unix.Unix_error _) -> ())
        entries

let create ~dir =
  mkdir_p dir;
  cleanup_orphan_tmps dir;
  { dir }

let dir t = t.dir

type stats = { entries : int; bytes : int }

let m_entries =
  Pi_obs.Metrics.gauge ~help:"observation-cache entries (CSV files) on disk"
    "pi_obs_obs_cache_entries"

let m_bytes =
  Pi_obs.Metrics.gauge ~help:"observation-cache bytes on disk"
    "pi_obs_obs_cache_bytes"

(* One readdir + one stat per entry: cheap enough for a /metrics scrape.
   In-flight [*.tmp] files are a writer's scratch, not cache content. *)
let stats t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> { entries = 0; bytes = 0 }
  | names ->
      Array.fold_left
        (fun acc name ->
          if not (Filename.check_suffix name ".csv") then acc
          else
            match Unix.stat (Filename.concat t.dir name) with
            | { Unix.st_kind = Unix.S_REG; st_size; _ } ->
                { entries = acc.entries + 1; bytes = acc.bytes + st_size }
            | _ | (exception Unix.Unix_error _) -> acc)
        { entries = 0; bytes = 0 } names

let update_gauges t =
  let s = stats t in
  Pi_obs.Metrics.set m_entries (float_of_int s.entries);
  Pi_obs.Metrics.set m_bytes (float_of_int s.bytes);
  s

(* The digest must cover every config field that can change a measurement,
   and must not depend on closure identity: predictors are represented by
   the machine's name. A "v1|" prefix versions the key so a future format
   change invalidates old entries instead of misreading them. *)
let config_key (c : E.config) =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  add "v1|scale=%d|budget=%d|warmup=%.9g|runs=%d|master=%d|heap=%b|aslr=%b" c.E.scale
    c.E.budget_blocks c.E.warmup_fraction c.E.runs_per_group c.E.master_seed c.E.heap_random
    c.E.aslr;
  let n = c.E.noise in
  add "|noise=%.9g,%.9g,%.9g,%.9g,%.9g" n.Counters.cycle_sigma n.Counters.spike_probability
    n.Counters.spike_scale n.Counters.event_sigma n.Counters.os_events_per_run;
  let m = c.E.machine in
  add "|machine=%s" m.Pipeline.name;
  let geometry (g : Cache.geometry) = add ",%d/%d/%d" g.size_bytes g.assoc g.line_bytes in
  geometry m.Pipeline.l1i;
  geometry m.Pipeline.l1d;
  geometry m.Pipeline.l2;
  (match m.Pipeline.trace_cache with
  | None -> add "|tc=none"
  | Some g -> add "|tc=%d/%d" g.Pi_uarch.Trace_cache.entries_log2 g.Pi_uarch.Trace_cache.assoc);
  let p = m.Pipeline.penalties in
  add "|pen=%.9g,%.9g,%.9g,%.9g,%.9g,%.9g" p.Pipeline.mispredict p.Pipeline.btb_miss
    p.Pipeline.l1i_miss p.Pipeline.l1d_miss p.Pipeline.l2_miss p.Pipeline.store_miss_factor;
  let ic = m.Pipeline.costs in
  add "|cost=%.9g,%.9g,%.9g,%.9g,%.9g,%.9g" ic.Pipeline.plain ic.Pipeline.fp ic.Pipeline.mul
    ic.Pipeline.div ic.Pipeline.mem ic.Pipeline.term;
  let o = m.Pipeline.overlap in
  add "|ovl=%.9g,%.9g,%.9g,%.9g" o.Pipeline.chase o.Pipeline.random o.Pipeline.sequential
    o.Pipeline.fixed;
  add "|flags=%b,%b,%b" m.Pipeline.data_prefetcher m.Pipeline.wrong_path m.Pipeline.perfect_btb;
  Buffer.contents buf

let config_digest config = Digest.to_hex (Digest.string (config_key config))

(* Benchmark names come from the registry, but custom benches are
   arbitrary strings; a name containing '/' (or a path escape like "..")
   must not address files outside the cache root. Percent-escaping is
   injective — '%' itself is escaped, so distinct names never collide —
   and keeps registry names (all [A-Za-z0-9_.-]) byte-identical. *)
let sanitize_bench_name bench =
  let plain = function
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
    | _ -> false
  in
  if bench <> "" && String.for_all plain bench then bench
  else begin
    let buf = Buffer.create (String.length bench + 8) in
    String.iter
      (fun c ->
        if plain c then Buffer.add_char buf c
        else Printf.bprintf buf "%%%02X" (Char.code c))
      bench;
    Buffer.contents buf
  end

(* Entries are addressed by the FULL config digest. Earlier versions
   truncated it to 16 hex chars (64 bits), which is exactly the silent
   collision a content-addressed store exists to rule out: two distinct
   configs sharing a cache directory could map to one file and
   cross-contaminate observations through the read-merge-write in [store].
   Old-style names are still accepted on read (see [load]) so existing
   caches migrate transparently; [store] always writes the full name and
   retires the truncated one. *)
let entry_path t ~bench ~config =
  Filename.concat t.dir
    (Printf.sprintf "%s.%s.csv" (sanitize_bench_name bench) (config_digest config))

let legacy_entry_path t ~bench ~config =
  let digest = String.sub (config_digest config) 0 16 in
  Filename.concat t.dir (Printf.sprintf "%s.%s.csv" (sanitize_bench_name bench) digest)

let m_corrupt =
  Pi_obs.Metrics.counter
    ~help:"observation-cache entries that failed to parse and were treated as misses"
    "pi_obs_obs_cache_corrupt_total"

(* One read attempt, opening the file directly: a [Sys.file_exists]
   pre-check would race the orphan reaper or a concurrent [rename]
   (TOCTOU) — absence is only decided at [open] time, where ENOENT simply
   means a miss. [None] = no entry; [Some (Error _)] = an entry that
   exists but does not parse. *)
let read_entry path =
  match Dataset_io.load_observations path with
  | result -> Some result
  | exception Sys_error _ -> None

let load t ~bench ~config =
  let entry =
    let full = entry_path t ~bench ~config in
    match read_entry full with
    | Some result -> Some (full, result)
    | None ->
        (* Migration read: a cache written before full-digest addressing
           holds this entry under the truncated name. Only consulted when
           the full-digest file is absent — once [store] migrates the
           entry, the ambiguous legacy file is never read again. *)
        let legacy = legacy_entry_path t ~bench ~config in
        Option.map (fun result -> (legacy, result)) (read_entry legacy)
  in
  match entry with
  | None -> [||]
  | Some (path, Error reason) ->
      (* A corrupt entry behaves as a miss and is rewritten — but never
         silently: the next [store]'s read-merge-write starts from this
         empty load, dropping every previously cached seed of the entry,
         and that loss must be visible. *)
      Pi_obs.Metrics.inc m_corrupt;
      Pi_obs.Log.warn
        ~fields:[ ("path", path); ("bench", bench) ]
        "corrupt observation-cache entry treated as a miss: %s" reason;
      [||]
  | Some (_, Ok observations) ->
      let sorted = Array.copy observations in
      Array.sort
        (fun (a : E.observation) (b : E.observation) ->
          compare a.E.layout_seed b.E.layout_seed)
        sorted;
      sorted

let store t ~bench ~config observations =
  let path = entry_path t ~bench ~config in
  let by_seed = Hashtbl.create 64 in
  Array.iter (fun (o : E.observation) -> Hashtbl.replace by_seed o.E.layout_seed o) (load t ~bench ~config);
  Array.iter (fun (o : E.observation) -> Hashtbl.replace by_seed o.E.layout_seed o) observations;
  let merged = Hashtbl.fold (fun _ o acc -> o :: acc) by_seed [] in
  let merged =
    List.sort
      (fun (a : E.observation) b -> compare a.E.layout_seed b.E.layout_seed)
      merged
  in
  (* Unique temp name per writer: two campaigns sharing a cache directory
     must never clobber each other's in-flight write, and a crash must
     leave an identifiable orphan (reaped by [create]) rather than a stale
     fixed-name ".tmp" blocking the next writer. fsync before the rename
     makes the entry durable before it becomes visible: after a power
     loss the path holds either the old entry or the complete new one. *)
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (Dataset_io.header_line ^ "\n");
         List.iter
           (fun o -> output_string oc (Dataset_io.observation_to_row o ^ "\n"))
           merged;
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  (* Migration write: the entry now lives under its full-digest name, so a
     leftover truncated-digest file (pre-fix caches) is retired — it is
     ambiguous by construction (any config sharing the 64-bit prefix maps
     to it) and must not shadow future reads. *)
  let legacy = legacy_entry_path t ~bench ~config in
  if legacy <> path then try Sys.remove legacy with Sys_error _ -> ()
