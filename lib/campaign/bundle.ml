module J = Telemetry

(* ------------------------------------------------------------------ *)
(* Canonical JSON                                                      *)
(* ------------------------------------------------------------------ *)

(* Bundles are compared by hash, so the manifest rendering must be a
   function of its *content*, not of field-insertion order: objects are
   rendered with keys sorted bytewise (the RFC 8785 JCS ordering for
   ASCII keys, which all of ours are) and then serialized by
   [Telemetry.to_string], whose float rendering is already canonical
   (shortest %.12g form that round-trips, else %.17g). Two manifests with
   equal content therefore hash equal, byte for byte. *)
let rec canonical (j : J.json) =
  match j with
  | J.Obj fields ->
      J.Obj
        (List.sort
           (fun (a, _) (b, _) -> String.compare a b)
           (List.map (fun (k, v) -> (k, canonical v)) fields))
  | J.List items -> J.List (List.map canonical items)
  | (J.Null | J.Bool _ | J.Int _ | J.Float _ | J.String _) as atom -> atom

let canonical_string j = J.to_string (canonical j)

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)
(* ------------------------------------------------------------------ *)

type role = Input | Output

type artifact = { rel_path : string; sha256 : string; bytes : int; role : role }

type manifest = {
  version : int;
  kind : string;
  label : string;
  config_digest : string;
  config_args : (string * J.json) list;
  benches : string list;
  n_layouts : int;
  workers : int;
  created_at : float;
  metrics : (string * float) list;
  artifacts : artifact list;
}

let manifest_file = "MANIFEST.json"
let sums_file = "SHA256SUMS.txt"
let version = 1

let role_to_string = function Input -> "input" | Output -> "output"

let role_of_string = function
  | "input" -> Ok Input
  | "output" -> Ok Output
  | other -> Error (Printf.sprintf "unknown artifact role %S" other)

let artifact_to_json a =
  J.Obj
    [
      ("path", J.String a.rel_path);
      ("sha256", J.String a.sha256);
      ("bytes", J.Int a.bytes);
      ("role", J.String (role_to_string a.role));
    ]

let manifest_to_json m =
  J.Obj
    [
      ("version", J.Int m.version);
      ("kind", J.String m.kind);
      ("label", J.String m.label);
      ("config_digest", J.String m.config_digest);
      ("config_args", J.Obj m.config_args);
      ("benches", J.List (List.map (fun b -> J.String b) m.benches));
      ("n_layouts", J.Int m.n_layouts);
      ("workers", J.Int m.workers);
      ("created_at", J.Float m.created_at);
      ("metrics", J.Obj (List.map (fun (k, v) -> (k, J.Float v)) m.metrics));
      ("artifacts", J.List (List.map artifact_to_json m.artifacts));
    ]

exception Bad of string

let member name = function
  | J.Obj fields -> ( match List.assoc_opt name fields with Some v -> v | None -> J.Null)
  | _ -> J.Null

let get_int name j =
  match member name j with J.Int i -> i | _ -> raise (Bad ("missing int field " ^ name))

let get_string name j =
  match member name j with
  | J.String s -> s
  | _ -> raise (Bad ("missing string field " ^ name))

(* Canonical float rendering turns 100.0 into "100", which parses back
   as Int — numeric fields must accept both shapes. *)
let get_number name j =
  match member name j with
  | J.Float f -> f
  | J.Int i -> float_of_int i
  | _ -> raise (Bad ("missing numeric field " ^ name))

let get_obj name j =
  match member name j with
  | J.Obj fields -> fields
  | J.Null -> []
  | _ -> raise (Bad ("field " ^ name ^ " is not an object"))

let get_list name j =
  match member name j with
  | J.List items -> items
  | J.Null -> []
  | _ -> raise (Bad ("field " ^ name ^ " is not a list"))

let artifact_of_json j =
  {
    rel_path = get_string "path" j;
    sha256 = get_string "sha256" j;
    bytes = get_int "bytes" j;
    role =
      (match role_of_string (get_string "role" j) with
      | Ok r -> r
      | Error e -> raise (Bad e));
  }

let manifest_of_json j =
  try
    let v = get_int "version" j in
    if v <> version then Error (Printf.sprintf "unsupported bundle version %d" v)
    else
      Ok
        {
          version = v;
          kind = get_string "kind" j;
          label = get_string "label" j;
          config_digest = get_string "config_digest" j;
          config_args = get_obj "config_args" j;
          benches =
            List.map
              (function
                | J.String s -> s | _ -> raise (Bad "benches must be strings"))
              (get_list "benches" j);
          n_layouts = get_int "n_layouts" j;
          workers = get_int "workers" j;
          created_at = get_number "created_at" j;
          metrics =
            List.map
              (fun (k, v) ->
                match v with
                | J.Float f -> (k, f)
                | J.Int i -> (k, float_of_int i)
                | _ -> raise (Bad ("metric " ^ k ^ " is not numeric")))
              (get_obj "metrics" j);
          artifacts = List.map artifact_of_json (get_list "artifacts" j);
        }
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path contents =
  mkdir_p (Filename.dirname path);
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* sha256sum(1)-compatible line: digest, two spaces, relative path. *)
let sums_line ~sha256 ~rel_path = Printf.sprintf "%s  %s" sha256 rel_path

let render_sums entries =
  String.concat "" (List.map (fun (sha, rel) -> sums_line ~sha256:sha ~rel_path:rel ^ "\n") entries)

let parse_sums text =
  let problems = ref [] in
  let entries =
    String.split_on_char '\n' text
    |> List.filter (fun l -> l <> "")
    |> List.filter_map (fun line ->
           let is_hex c = match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false in
           if
             String.length line > 66
             && String.for_all is_hex (String.sub line 0 64)
             && String.sub line 64 2 = "  "
           then Some (String.sub line 66 (String.length line - 66), String.sub line 0 64)
           else begin
             problems := line :: !problems;
             None
           end)
  in
  (entries, List.rev !problems)

let write ~dir ~kind ~label ~config_digest ~config_args ~benches ~n_layouts ~workers
    ~created_at ~metrics ~inputs ~outputs ?(meta = []) () =
  mkdir_p dir;
  let emit role prefix (rel, contents) =
    let rel_path = prefix ^ "/" ^ rel in
    write_file (Filename.concat dir rel_path) contents;
    {
      rel_path;
      sha256 = Sha256.string contents;
      bytes = String.length contents;
      role;
    }
  in
  let artifacts =
    List.map (emit Input "inputs") inputs @ List.map (emit Output "outputs") outputs
  in
  let artifacts =
    List.sort (fun a b -> String.compare a.rel_path b.rel_path) artifacts
  in
  (* Meta files travel with the bundle but are NOT pinned: the campaign
     run-manifest carries wall-clock timings that legitimately differ
     between a run and its byte-identical replay. *)
  List.iter
    (fun (rel, contents) -> write_file (Filename.concat dir ("meta/" ^ rel)) contents)
    meta;
  let manifest =
    {
      version;
      kind;
      label;
      config_digest;
      config_args;
      benches;
      n_layouts;
      workers;
      created_at;
      metrics;
      artifacts;
    }
  in
  let manifest_text = canonical_string (manifest_to_json manifest) ^ "\n" in
  write_file (Filename.concat dir manifest_file) manifest_text;
  (* The sums file covers every pinned artifact plus the manifest itself,
     so no hash-bearing byte of the bundle is outside the hash tree
     (SHA256SUMS.txt is the root). *)
  let sums =
    List.map (fun a -> (a.sha256, a.rel_path)) artifacts
    @ [ (Sha256.string manifest_text, manifest_file) ]
  in
  write_file (Filename.concat dir sums_file) (render_sums sums);
  manifest

(* ------------------------------------------------------------------ *)
(* Loading + verification                                              *)
(* ------------------------------------------------------------------ *)

let load ~dir =
  let path = Filename.concat dir manifest_file in
  match read_file path with
  | exception Sys_error e -> Error (Printf.sprintf "cannot read %s: %s" manifest_file e)
  | text -> (
      match J.parse text with
      | Error e -> Error (Printf.sprintf "%s: %s" manifest_file e)
      | Ok json -> manifest_of_json json)

type problem = { path : string; reason : string }
type report = { checked : int; problems : problem list }

let ok report = report.problems = []

let verify ~dir =
  match load ~dir with
  | Error e -> Error e
  | Ok manifest ->
      let problems = ref [] in
      let checked = ref 0 in
      let flag path reason = problems := { path; reason } :: !problems in
      (* 1. Every pinned artifact re-hashes to its manifest entry. *)
      List.iter
        (fun a ->
          incr checked;
          let abs = Filename.concat dir a.rel_path in
          match Unix.stat abs with
          | exception Unix.Unix_error (e, _, _) ->
              flag a.rel_path ("missing: " ^ Unix.error_message e)
          | st ->
              if st.Unix.st_size <> a.bytes then
                flag a.rel_path
                  (Printf.sprintf "size mismatch: manifest says %d bytes, file has %d"
                     a.bytes st.Unix.st_size)
              else
                let got = Sha256.file abs in
                if got <> a.sha256 then
                  flag a.rel_path
                    (Printf.sprintf "sha256 mismatch: manifest pins %s, file hashes %s"
                       a.sha256 got))
        manifest.artifacts;
      (* 2. SHA256SUMS.txt agrees with the manifest and with the manifest
         file's actual bytes — a flipped byte in either file shows up as a
         disagreement here. *)
      (match read_file (Filename.concat dir sums_file) with
      | exception Sys_error _ -> flag sums_file "missing"
      | text ->
          incr checked;
          let entries, garbled = parse_sums text in
          List.iter (fun line -> flag sums_file ("unparseable line: " ^ line)) garbled;
          let expected =
            List.map (fun a -> (a.rel_path, a.sha256)) manifest.artifacts
            @ [ (manifest_file, Sha256.file (Filename.concat dir manifest_file)) ]
          in
          List.iter
            (fun (rel, sha) ->
              match List.assoc_opt rel entries with
              | None -> flag sums_file ("no entry for " ^ rel)
              | Some listed when listed <> sha ->
                  flag rel
                    (Printf.sprintf "sha256 disagreement: SHA256SUMS.txt says %s, expected %s"
                       listed sha)
              | Some _ -> ())
            expected;
          List.iter
            (fun (rel, _) ->
              if not (List.mem_assoc rel expected) then
                flag sums_file ("entry for unknown file " ^ rel))
            entries);
      Ok (manifest, { checked = !checked; problems = List.rev !problems })

(* ------------------------------------------------------------------ *)
(* Campaign bundles                                                    *)
(* ------------------------------------------------------------------ *)

let of_campaign ~dir ~workers (result : Campaign.result) =
  let module E = Interferometry.Experiment in
  let module D = Interferometry.Dataset_io in
  let m = result.Campaign.manifest in
  let bench_names =
    List.map
      (fun (o : Campaign.bench_outcome) -> o.Campaign.entry.Manifest.bench)
      result.Campaign.outcomes
  in
  let config_json =
    canonical_string
      (J.Obj
         [
           ("config_args", J.Obj m.Manifest.config_args);
           ("config_digest", J.String m.Manifest.config_digest);
           ("n_layouts", J.Int m.Manifest.n_layouts);
           ("benches", J.List (List.map (fun b -> J.String b) bench_names));
         ])
    ^ "\n"
  in
  (* The pinned input for each benchmark: not the trace bytes (hundreds
     of MB re-derivable from config alone) but a fingerprint of the
     deterministic build products — enough for [verify] to prove the
     replay ran from the same program and trace, at a few hundred bytes. *)
  let fingerprint (o : Campaign.bench_outcome) (ds : E.dataset) =
    let p = ds.E.prepared in
    ( Obs_cache.sanitize_bench_name o.Campaign.entry.Manifest.bench ^ ".fingerprint.json",
      canonical_string
        (J.Obj
           [
             ("bench", J.String o.Campaign.entry.Manifest.bench);
             ("suite", J.String o.Campaign.entry.Manifest.suite);
             ("warmup_blocks", J.Int p.E.warmup_blocks);
             ("blocks_executed", J.Int (Pi_isa.Trace.blocks_executed p.E.trace));
             ( "program_sha256",
               J.String (Sha256.string (Pi_isa.Program.static_stats p.E.program)) );
             ("trace_sha256", J.String (Sha256.string (Pi_isa.Trace.summary p.E.trace)));
           ])
      ^ "\n" )
  in
  let observations_csv (ds : E.dataset) =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (D.header_line ^ "\n");
    Array.iter
      (fun obs -> Buffer.add_string buf (D.observation_to_row obs ^ "\n"))
      ds.E.observations;
    Buffer.contents buf
  in
  let with_dataset f =
    List.filter_map
      (fun (o : Campaign.bench_outcome) -> Option.map (f o) o.Campaign.dataset)
      result.Campaign.outcomes
  in
  write ~dir ~kind:"campaign" ~label:m.Manifest.label
    ~config_digest:m.Manifest.config_digest ~config_args:m.Manifest.config_args
    ~benches:bench_names ~n_layouts:m.Manifest.n_layouts ~workers
    ~created_at:m.Manifest.started_at
    ~metrics:(Manifest.history_metrics m)
    ~inputs:(("config.json", config_json) :: with_dataset fingerprint)
    ~outputs:
      (with_dataset (fun o ds ->
           ( Obs_cache.sanitize_bench_name o.Campaign.entry.Manifest.bench ^ ".csv",
             observations_csv ds )))
    ~meta:[ ("run_manifest.json", canonical_string (Manifest.to_json m) ^ "\n") ]
    ()

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let diff ?rules ~(before : manifest) ~(after : manifest) () =
  Pi_obs.History.compare_metrics ?rules ~before:before.metrics ~after:after.metrics ()
