(* FIPS 180-4 SHA-256, pure OCaml.

   Run bundles pin their artifacts by SHA-256 (the RGSR replay rule:
   "replayable only if hashes match SHA256SUMS.txt"), and the stdlib
   [Digest] is MD5 — 128 truncatable bits of exactly the kind the
   obs-cache addressing bug grew out of. The block transform works on
   [int] (63-bit native ints hold unsigned 32-bit words without boxing);
   every word is masked back to 32 bits after the operations that can
   carry out. Throughput is irrelevant here — bundles hash a handful of
   small CSV/JSON artifacts — correctness is pinned by the FIPS vectors
   in test_bundle.ml. *)

let mask = 0xFFFFFFFF

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array;  (* 8 running hash words *)
  block : Bytes.t;  (* 64-byte input block being filled *)
  mutable fill : int;  (* bytes of [block] in use *)
  mutable total : int;  (* message bytes absorbed so far *)
  w : int array;  (* 64-entry message schedule, reused per block *)
}

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
        0x1f83d9ab; 0x5be0cd19;
      |];
    block = Bytes.create 64;
    fill = 0;
    total = 0;
    w = Array.make 64 0;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress ctx =
  let w = ctx.w in
  for t = 0 to 15 do
    w.(t) <- Int32.to_int (Bytes.get_int32_be ctx.block (t * 4)) land mask
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
    let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask
  done;
  let a = ref ctx.h.(0) and b = ref ctx.h.(1) and c = ref ctx.h.(2) in
  let d = ref ctx.h.(3) and e = ref ctx.h.(4) and f = ref ctx.h.(5) in
  let g = ref ctx.h.(6) and hh = ref ctx.h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  ctx.h.(0) <- (ctx.h.(0) + !a) land mask;
  ctx.h.(1) <- (ctx.h.(1) + !b) land mask;
  ctx.h.(2) <- (ctx.h.(2) + !c) land mask;
  ctx.h.(3) <- (ctx.h.(3) + !d) land mask;
  ctx.h.(4) <- (ctx.h.(4) + !e) land mask;
  ctx.h.(5) <- (ctx.h.(5) + !f) land mask;
  ctx.h.(6) <- (ctx.h.(6) + !g) land mask;
  ctx.h.(7) <- (ctx.h.(7) + !hh) land mask

let feed_bytes ctx src ~pos ~len =
  ctx.total <- ctx.total + len;
  let pos = ref pos and remaining = ref len in
  while !remaining > 0 do
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit src !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  done

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finish ctx =
  let bit_length = ctx.total * 8 in
  (* Padding: 0x80, zeros to 56 mod 64, then the 64-bit big-endian bit
     count. [total] is far below 2^59, so the count fits an int. *)
  let pad_len =
    let rem = (ctx.total + 1) mod 64 in
    1 + (if rem <= 56 then 56 - rem else 120 - rem)
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  Bytes.set_int64_be pad pad_len (Int64.of_int bit_length);
  feed_bytes ctx pad ~pos:0 ~len:(Bytes.length pad);
  let out = Buffer.create 64 in
  Array.iter (fun word -> Printf.bprintf out "%08x" word) ctx.h;
  Buffer.contents out

let string s =
  let ctx = init () in
  feed ctx s;
  finish ctx

let file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let ctx = init () in
      let chunk = Bytes.create 65536 in
      let rec loop () =
        let n = input ic chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          feed_bytes ctx chunk ~pos:0 ~len:n;
          loop ()
        end
      in
      loop ();
      finish ctx)
