module Program = Pi_isa.Program
module Trace = Pi_isa.Trace

type result = {
  predictor_name : string;
  branches : int;
  mispredicted : int;
  instructions : int;
  mpki : float;
}

(* The dynamic conditional-branch stream of a trace, packed one int per
   branch as [(branch_id lsl 1) lor taken]. Placement-invariant (branch ids
   and outcomes come from the trace alone; the code layout only fixes PCs),
   so one stream serves every layout seed and every predictor sweep. *)
type stream = int array

let compile_stream trace =
  let program = trace.Trace.program in
  let seq = trace.Trace.block_seq in
  let n = Array.length seq in
  let count = ref 0 in
  for i = 0 to n - 2 do
    match program.Program.blocks.(seq.(i)).Program.term with
    | Program.Branch _ -> incr count
    | Program.Jump _ | Program.Call _ | Program.Indirect_call _ | Program.Switch _
    | Program.Return | Program.Halt ->
        ()
  done;
  let out = Array.make !count 0 in
  let cursor = ref 0 in
  for i = 0 to n - 2 do
    match program.Program.blocks.(seq.(i)).Program.term with
    | Program.Branch { branch; taken; not_taken = _ } ->
        out.(!cursor) <- (branch lsl 1) lor (if seq.(i + 1) = taken then 1 else 0);
        incr cursor
    | Program.Jump _ | Program.Call _ | Program.Indirect_call _ | Program.Switch _
    | Program.Return | Program.Halt ->
        ()
  done;
  out

let stream_length (s : stream) = Array.length s

let measured_instructions ?(warmup_branches = 0) trace =
  (* Approximate post-warmup instruction count by scaling: the Pin tool
     reports MPKI over the measured window. *)
  let total_branches = trace.Trace.cond_branches in
  if total_branches = 0 then trace.Trace.instructions
  else
    let fraction =
      float_of_int (max 0 (total_branches - warmup_branches)) /. float_of_int total_branches
    in
    int_of_float (fraction *. float_of_int trace.Trace.instructions)

let run ?(warmup_branches = 0) ?stream ?(batched = false) trace code makes =
  let stream = match stream with Some s -> s | None -> compile_stream trace in
  let branch_pc = code.Pi_layout.Code_layout.branch_pc in
  let predictors = Array.of_list (List.map (fun make -> make ()) makes) in
  let np = Array.length predictors in
  let branch_counts = Array.make np 0 in
  let mispredict_counts = Array.make np 0 in
  let n = Array.length stream in
  if batched then
    (* One pass over the stream, advancing every predictor per branch: best
       when the stream is long and the predictor set small. *)
    for i = 0 to n - 1 do
      let packed = Array.unsafe_get stream i in
      let pc = Array.unsafe_get branch_pc (packed lsr 1) in
      let taken = packed land 1 = 1 in
      let measured = i >= warmup_branches in
      for j = 0 to np - 1 do
        let p = Array.unsafe_get predictors j in
        let correct = p.Pi_uarch.Predictor.on_branch ~pc ~taken in
        if measured then begin
          branch_counts.(j) <- branch_counts.(j) + 1;
          if not correct then mispredict_counts.(j) <- mispredict_counts.(j) + 1
        end
      done
    done
  else
    (* One pass per predictor: its tables stay hot in cache for the whole
       stream. Predictors are independent, so both orders count the same. *)
    for j = 0 to np - 1 do
      let p = predictors.(j) in
      let on_branch = p.Pi_uarch.Predictor.on_branch in
      let measured_branches = ref 0 in
      let mispredicted = ref 0 in
      for i = 0 to n - 1 do
        let packed = Array.unsafe_get stream i in
        let pc = Array.unsafe_get branch_pc (packed lsr 1) in
        let taken = packed land 1 = 1 in
        let correct = on_branch ~pc ~taken in
        if i >= warmup_branches then begin
          incr measured_branches;
          if not correct then incr mispredicted
        end
      done;
      branch_counts.(j) <- !measured_branches;
      mispredict_counts.(j) <- !mispredicted
    done;
  let instructions = measured_instructions ~warmup_branches trace in
  Array.to_list
    (Array.mapi
       (fun j p ->
         {
           predictor_name = p.Pi_uarch.Predictor.name;
           branches = branch_counts.(j);
           mispredicted = mispredict_counts.(j);
           instructions;
           mpki =
             (if instructions = 0 then 0.0
              else 1000.0 *. float_of_int mispredict_counts.(j) /. float_of_int instructions);
         })
       predictors)

let per_branch_mispredicts ?(warmup_branches = 0) ?stream trace code make =
  let stream = match stream with Some s -> s | None -> compile_stream trace in
  let branch_pc = code.Pi_layout.Code_layout.branch_pc in
  let p = make () in
  let on_branch = p.Pi_uarch.Predictor.on_branch in
  let n = Array.length trace.Trace.program.Program.branches in
  let executions = Array.make n 0 in
  let mispredicts = Array.make n 0 in
  for i = 0 to Array.length stream - 1 do
    let packed = Array.unsafe_get stream i in
    let branch = packed lsr 1 in
    let taken = packed land 1 = 1 in
    let correct = on_branch ~pc:(Array.unsafe_get branch_pc branch) ~taken in
    if i >= warmup_branches then begin
      executions.(branch) <- executions.(branch) + 1;
      if not correct then mispredicts.(branch) <- mispredicts.(branch) + 1
    end
  done;
  Array.init n (fun i -> (executions.(i), mispredicts.(i)))
