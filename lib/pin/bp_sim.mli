(** Pin-style functional branch-predictor simulation.

    The paper instruments every branch of the *native executable* with a
    callback that drives a set of simulated predictors, counting executed
    and mispredicted branches per predictor — no timing, no noise, one run
    per code reordering. Here the "instrumented executable" is a trace plus
    the code layout that fixes its branch addresses; the callback drives any
    number of predictors in one pass. *)

type result = {
  predictor_name : string;
  branches : int;  (** dynamic conditional branches *)
  mispredicted : int;
  instructions : int;
  mpki : float;
}

type stream
(** The dynamic conditional-branch stream, packed one int per branch as
    [(branch_id lsl 1) lor taken]. Placement-invariant: compile it once per
    trace and reuse it across layout seeds and predictor sweeps. *)

val compile_stream : Pi_isa.Trace.t -> stream
(** Extract the packed branch stream from a trace (one pass over
    [block_seq]). *)

val stream_length : stream -> int
(** Dynamic conditional branches in the stream. *)

val run :
  ?warmup_branches:int ->
  ?stream:stream ->
  ?batched:bool ->
  Pi_isa.Trace.t ->
  Pi_layout.Code_layout.t ->
  (unit -> Pi_uarch.Predictor.t) list ->
  result list
(** Simulate all predictors over the conditional-branch stream. Every
    predictor sees the identical stream (fresh instances, deterministic).
    [warmup_branches] excludes the leading branches from the counts while
    still training the predictors. [stream] supplies a precompiled branch
    stream (must come from [trace]); otherwise one is compiled per call.
    [batched] (default false) advances all predictor states in a single
    pass over the stream instead of one pass per predictor; results are
    identical either way. *)

val per_branch_mispredicts :
  ?warmup_branches:int ->
  ?stream:stream ->
  Pi_isa.Trace.t ->
  Pi_layout.Code_layout.t ->
  (unit -> Pi_uarch.Predictor.t) ->
  (int * int) array
(** Per static branch id: (executions, mispredictions) — the profile a Pin
    tool would emit per instrumentation site. *)
