(** Learned response-surface surrogates for configuration sweeps.

    A sweep replays one compiled trace under hundreds of configurations,
    but the (config, placement) → (MPKI, CPI) surface is close to
    low-dimensional: CPI is (mostly) linear in a handful of miss/mispredict
    event rates — the paper's own thesis — and those rates vary smoothly
    with predictor table geometry and cache shape. This module learns that
    surface from a handful of replayed points so {!Pi_uarch.Sweep} can
    prune the rest of the grid, replaying only where the model is
    uncertain.

    Pure OCaml on top of {!Matrix}; no external dependencies. Everything
    here is deterministic: no RNG, ties broken by lowest index, so a
    steered sweep is reproducible run to run. *)

(** {1 Standardization} *)

type scaler
(** Per-column z-score parameters (mean, standard deviation). *)

val scaler_fit : float array array -> scaler
(** Column means and population standard deviations. Constant columns
    (std below 1e-12) standardize to 0 and invert back exactly. *)

val scaler_transform : scaler -> float array -> float array
val scaler_inverse : scaler -> float array -> float array
(** [scaler_inverse s (scaler_transform s x) = x] up to rounding, constant
    columns exactly. *)

(** {1 Ridge regression} *)

type ridge = {
  weights : float array;
  bias : float;
  lambda_used : float;
      (** the regularizer the condition-number guard settled on — the
          requested [lambda] unless the normal equations were too
          ill-conditioned, in which case it was escalated ×10 until the
          Cholesky diagonal spread fell under 1e10 *)
}

val ridge_fit : ?lambda:float -> float array array -> float array -> ridge
(** [ridge_fit xs ys] solves the regularized normal equations
    [(Xᶜ'Xᶜ + λ n I) w = Xᶜ'yᶜ] on mean-centered data (the intercept is
    not penalized), with a condition-number guard: if the Cholesky factor
    reports a diagonal spread above 1e10 — or fails outright — [lambda]
    is escalated ×10 and the solve retried, so a rank-deficient design
    (collinear or constant features) degrades to a shrunk fit instead of
    raising. Default [lambda] 1e-4. *)

val ridge_predict : ridge -> float array -> float

(** {1 Gradient-boosted stumps}

    A small additive ensemble of depth-1 regression trees fit to the
    residual of the ridge fit — the nonlinear correction for kinks the
    linear model cannot express (family switches, capacity cliffs).
    Deterministic: splits are chosen by exact SSE over midpoint
    thresholds, ties to the lowest feature/threshold. *)

type stump = { feat : int; thresh : float; left : float; right : float }

val boost_fit :
  ?rounds:int -> ?rate:float -> float array array -> float array -> stump array
(** Fit [rounds] (default 24) stumps to [ys] by gradient boosting with
    shrinkage [rate] (default 0.5); stops early when the best split's SSE
    gain vanishes. *)

val boost_predict : stump array -> float array -> float

(** {1 The surrogate model}

    Ridge + boosted-stump residual on standardized features, with
    uncertainty from a leave-out ensemble: [folds] sub-models are each
    trained with a deterministic slice of the data held out, and a
    prediction's uncertainty combines the ensemble's spread at that point
    with the 90th-percentile out-of-fold training error — so uncertainty
    is calibrated against errors the model actually made on points it had
    not seen. *)

type t

val fit :
  ?lambda:float ->
  ?boost_rounds:int ->
  ?folds:int ->
  float array array ->
  float array ->
  t
(** [fit xs ys] with at least 2 points. [folds] defaults to 5 (clamped to
    [n]); with fewer than 4 points the ensemble degenerates and
    uncertainty falls back to the full-fit residual RMS. *)

val predict : t -> float array -> float

val uncertainty : t -> float array -> float
(** Absolute-scale uncertainty at a point: leave-out ensemble spread plus
    the out-of-fold p90 error. Conservative by construction — it can only
    understate the error where every fold model agrees on a surface the
    training data never contradicted. *)

val oof_p90 : t -> float
(** The 90th-percentile absolute out-of-fold error on the training set
    (0 when the ensemble degenerated). *)

val oof_residuals : t -> float array
(** Signed held-out residuals [y_i - fold_prediction_i], aligned with the
    training rows: each row is predicted by the fold member whose training
    slice excluded it, so these are honest out-of-sample errors even when
    the full fit interpolates the data. Empty when the ensemble
    degenerated ([n < 4] or fewer than 2 folds). *)

(** {1 Deterministic space-filling sampling} *)

val sample_order : ?anchors:int list -> float array array -> int array
(** Greedy farthest-point traversal of the (standardized) feature rows: a
    permutation of [0 .. n-1] whose every prefix is a space-filling
    design. Starts from [anchors] (default [[0]]; out-of-range anchors
    ignored), then repeatedly appends the point farthest from everything
    chosen so far, ties to the lowest index. Deterministic — the seeded
    subset of a steered sweep is the same on every run. *)

(** {1 Feature extraction} *)

val predictor_features : string -> float array
(** Features of a predictor-sweep configuration {e name} as generated by
    {!Pi_uarch.Sweep.configurations} — ["bimodal-12"], ["gshare-14/10"],
    ["gas-11/9"], ["hybrid-13/8"], ["static-taken"], ["static-not-taken"]:
    family one-hot (6), global log2 table entries and history length, and
    a per-family quadratic block in (entries, history) — [el], [h], [el^2],
    [h^2], [el*h] gated by the family indicator — so a single ridge fit
    decouples into per-family response surfaces (25 total). Raises
    [Invalid_argument] on names outside the grid grammar. *)

val predictor_feature_dim : int

val geometry_features :
  sets:int -> ways:int -> line_bytes:int -> size_bytes:int -> float array
(** Features of one cache geometry: log2 sets, ways, line and total size
    (4 per cache; a cache-axis lane concatenates the L1I and L2 vectors).
    All arguments must be positive. *)

val geometry_feature_dim : int
