(* Learned response-surface surrogates: ridge + boosted stumps on
   standardized features, leave-out ensemble uncertainty, deterministic
   farthest-point sampling. See surrogate.mli for the contracts. *)

(* ---------------- Standardization ---------------- *)

type scaler = { means : float array; stds : float array }

let scaler_fit xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Surrogate.scaler_fit: empty";
  let d = Array.length xs.(0) in
  let means = Array.make d 0.0 in
  Array.iter
    (fun row ->
      if Array.length row <> d then invalid_arg "Surrogate.scaler_fit: ragged rows";
      Array.iteri (fun j v -> means.(j) <- means.(j) +. v) row)
    xs;
  let nf = float_of_int n in
  Array.iteri (fun j s -> means.(j) <- s /. nf) means;
  let stds = Array.make d 0.0 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun j v ->
          let dv = v -. means.(j) in
          stds.(j) <- stds.(j) +. (dv *. dv))
        row)
    xs;
  Array.iteri (fun j s -> stds.(j) <- sqrt (s /. nf)) stds;
  { means; stds }

let constant_eps = 1e-12

let scaler_transform s x =
  if Array.length x <> Array.length s.means then
    invalid_arg "Surrogate.scaler_transform: wrong arity";
  Array.mapi
    (fun j v ->
      if s.stds.(j) <= constant_eps then 0.0 else (v -. s.means.(j)) /. s.stds.(j))
    x

let scaler_inverse s z =
  if Array.length z <> Array.length s.means then
    invalid_arg "Surrogate.scaler_inverse: wrong arity";
  Array.mapi
    (fun j v ->
      if s.stds.(j) <= constant_eps then s.means.(j) else (v *. s.stds.(j)) +. s.means.(j))
    z

(* ---------------- Ridge ---------------- *)

type ridge = { weights : float array; bias : float; lambda_used : float }

(* Condition estimate from the Cholesky factor: diag(L) are the square
   roots of the pivots, so (max/min)^2 tracks the spectral condition
   number closely enough to decide when to shrink harder. *)
let cholesky_condition l p =
  let mx = ref 0.0 and mn = ref infinity in
  for i = 0 to p - 1 do
    let d = Matrix.get l i i in
    if d > !mx then mx := d;
    if d < !mn then mn := d
  done;
  if !mn <= 0.0 then infinity else (!mx /. !mn) ** 2.0

let ridge_fit ?(lambda = 1e-4) xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Surrogate.ridge_fit: length mismatch";
  if n = 0 then invalid_arg "Surrogate.ridge_fit: empty";
  let d = Array.length xs.(0) in
  if d = 0 then invalid_arg "Surrogate.ridge_fit: no features";
  let nf = float_of_int n in
  (* Center so the intercept is not penalized. *)
  let x_mean = Array.make d 0.0 in
  Array.iter
    (fun row ->
      if Array.length row <> d then invalid_arg "Surrogate.ridge_fit: ragged rows";
      Array.iteri (fun j v -> x_mean.(j) <- x_mean.(j) +. v) row)
    xs;
  Array.iteri (fun j s -> x_mean.(j) <- s /. nf) x_mean;
  let y_mean = Array.fold_left ( +. ) 0.0 ys /. nf in
  (* Normal equations on centered data. *)
  let a0 = Matrix.create ~rows:d ~cols:d in
  let b = Array.make d 0.0 in
  for i = 0 to n - 1 do
    let row = xs.(i) in
    let yc = ys.(i) -. y_mean in
    for j = 0 to d - 1 do
      let xj = row.(j) -. x_mean.(j) in
      b.(j) <- b.(j) +. (xj *. yc);
      for k = j to d - 1 do
        let v = Matrix.get a0 j k +. (xj *. (row.(k) -. x_mean.(k))) in
        Matrix.set a0 j k v;
        if k <> j then Matrix.set a0 k j v
      done
    done
  done;
  (* Scale-aware ridge floor: lambda multiplies the mean diagonal so the
     shrinkage is invariant to feature scale. *)
  let trace = ref 0.0 in
  for j = 0 to d - 1 do
    trace := !trace +. Matrix.get a0 j j
  done;
  let diag_unit = Float.max (!trace /. float_of_int d) 1e-30 in
  let rec solve lam attempt =
    let a = Matrix.create ~rows:d ~cols:d in
    for j = 0 to d - 1 do
      for k = 0 to d - 1 do
        Matrix.set a j k (Matrix.get a0 j k)
      done;
      Matrix.set a j j (Matrix.get a0 j j +. (lam *. diag_unit))
    done;
    let escalate () =
      if attempt >= 8 then
        invalid_arg "Surrogate.ridge_fit: normal equations unsolvable (escalation cap)"
      else solve (Float.max (lam *. 10.0) 1e-10) (attempt + 1)
    in
    match Matrix.cholesky a with
    | exception Failure _ -> escalate ()
    | l ->
        if cholesky_condition l d > 1e10 then escalate ()
        else (Matrix.solve_cholesky l b, lam)
  in
  let weights, lambda_used = solve lambda 0 in
  let bias =
    y_mean -. Array.fold_left ( +. ) 0.0 (Array.mapi (fun j w -> w *. x_mean.(j)) weights)
  in
  { weights; bias; lambda_used }

let ridge_predict r x =
  if Array.length x <> Array.length r.weights then
    invalid_arg "Surrogate.ridge_predict: wrong arity";
  let acc = ref r.bias in
  Array.iteri (fun j w -> acc := !acc +. (w *. x.(j))) r.weights;
  !acc

(* ---------------- Boosted stumps ---------------- *)

type stump = { feat : int; thresh : float; left : float; right : float }

(* Best single stump for the current residual, by exact SSE over midpoint
   thresholds of every feature. O(d n log n); n is tens here. *)
let best_stump xs res =
  let n = Array.length xs in
  let d = Array.length xs.(0) in
  let total = Array.fold_left ( +. ) 0.0 res in
  let best = ref None in
  let best_gain = ref 1e-12 in
  for j = 0 to d - 1 do
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = compare xs.(a).(j) xs.(b).(j) in
        if c <> 0 then c else compare a b)
      order;
    (* Prefix sums over the sorted order: left = first k points. *)
    let sum = ref 0.0 in
    for k = 0 to n - 2 do
      let i = order.(k) in
      sum := !sum +. res.(i);
      let xa = xs.(i).(j) and xb = xs.(order.(k + 1)).(j) in
      if xb > xa then begin
        let nl = float_of_int (k + 1) and nr = float_of_int (n - k - 1) in
        let sl = !sum and sr = total -. !sum in
        (* SSE reduction of replacing one mean with two. *)
        let gain =
          (sl *. sl /. nl) +. (sr *. sr /. nr) -. (total *. total /. float_of_int n)
        in
        if gain > !best_gain +. 1e-15 then begin
          best_gain := gain;
          best :=
            Some { feat = j; thresh = (xa +. xb) /. 2.0; left = sl /. nl; right = sr /. nr }
        end
      end
    done
  done;
  !best

let stump_eval s x = if x.(s.feat) <= s.thresh then s.left else s.right

let boost_fit ?(rounds = 24) ?(rate = 0.5) xs ys =
  let n = Array.length ys in
  if n = 0 || Array.length xs <> n then invalid_arg "Surrogate.boost_fit: bad input";
  let res = Array.copy ys in
  let acc = ref [] in
  (try
     for _ = 1 to rounds do
       match best_stump xs res with
       | None -> raise Exit
       | Some s ->
           let s = { s with left = s.left *. rate; right = s.right *. rate } in
           acc := s :: !acc;
           for i = 0 to n - 1 do
             res.(i) <- res.(i) -. stump_eval s xs.(i)
           done
     done
   with Exit -> ());
  Array.of_list (List.rev !acc)

let boost_predict stumps x =
  Array.fold_left (fun acc s -> acc +. stump_eval s x) 0.0 stumps

(* ---------------- The ensemble model ---------------- *)

type member = { m_ridge : ridge; m_stumps : stump array }

let member_fit ~lambda ~boost_rounds zs ys =
  let r = ridge_fit ~lambda zs ys in
  let res = Array.mapi (fun i z -> ys.(i) -. ridge_predict r z) zs in
  let stumps =
    if boost_rounds > 0 && Array.length ys >= 4 then boost_fit ~rounds:boost_rounds zs res
    else [||]
  in
  { m_ridge = r; m_stumps = stumps }

let member_predict m z = ridge_predict m.m_ridge z +. boost_predict m.m_stumps z

type t = {
  t_scaler : scaler;
  full : member;
  fold_members : member array;
  t_oof : float array;  (* signed held-out residuals, aligned with training rows *)
  t_oof_p90 : float;
  fallback_sigma : float;  (* full-fit residual RMS; the degenerate-ensemble floor *)
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let fit ?(lambda = 1e-4) ?(boost_rounds = 24) ?(folds = 5) xs ys =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Surrogate.fit: need at least 2 points";
  if Array.length ys <> n then invalid_arg "Surrogate.fit: length mismatch";
  let sc = scaler_fit xs in
  let zs = Array.map (scaler_transform sc) xs in
  let full = member_fit ~lambda ~boost_rounds zs ys in
  let fallback_sigma =
    let ss =
      Array.fold_left ( +. ) 0.0
        (Array.mapi
           (fun i z ->
             let e = ys.(i) -. member_predict full z in
             e *. e)
           zs)
    in
    sqrt (ss /. float_of_int n)
  in
  let nfolds = min folds n in
  if n < 4 || nfolds < 2 then
    {
      t_scaler = sc;
      full;
      fold_members = [||];
      t_oof = [||];
      t_oof_p90 = fallback_sigma;
      fallback_sigma;
    }
  else begin
    (* Deterministic round-robin folds: point i belongs to fold (i mod k),
       so the held-out slices interleave any ordering the caller used. *)
    let oof = Array.make n 0.0 in
    let members =
      Array.init nfolds (fun k ->
          let keep = ref [] and keep_y = ref [] in
          for i = n - 1 downto 0 do
            if i mod nfolds <> k then begin
              keep := zs.(i) :: !keep;
              keep_y := ys.(i) :: !keep_y
            end
          done;
          let m =
            member_fit ~lambda ~boost_rounds (Array.of_list !keep) (Array.of_list !keep_y)
          in
          for i = 0 to n - 1 do
            if i mod nfolds = k then oof.(i) <- ys.(i) -. member_predict m zs.(i)
          done;
          m)
    in
    let abs_sorted = Array.map Float.abs oof in
    Array.sort compare abs_sorted;
    {
      t_scaler = sc;
      full;
      fold_members = members;
      t_oof = oof;
      t_oof_p90 = percentile abs_sorted 0.9;
      fallback_sigma;
    }
  end

let predict t x = member_predict t.full (scaler_transform t.t_scaler x)

let uncertainty t x =
  let z = scaler_transform t.t_scaler x in
  let center = member_predict t.full z in
  let spread =
    Array.fold_left
      (fun acc m -> Float.max acc (Float.abs (member_predict m z -. center)))
      0.0 t.fold_members
  in
  if Array.length t.fold_members = 0 then t.fallback_sigma +. spread
  else spread +. t.t_oof_p90

let oof_p90 t = if Array.length t.fold_members = 0 then 0.0 else t.t_oof_p90
let oof_residuals t = Array.copy t.t_oof

(* ---------------- Deterministic space-filling sampling ---------------- *)

let sample_order ?(anchors = [ 0 ]) xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let sc = scaler_fit xs in
    let zs = Array.map (scaler_transform sc) xs in
    let d = Array.length zs.(0) in
    let dist2 a b =
      let acc = ref 0.0 in
      for j = 0 to d - 1 do
        let dv = a.(j) -. b.(j) in
        acc := !acc +. (dv *. dv)
      done;
      !acc
    in
    let chosen = Array.make n false in
    let mind = Array.make n infinity in
    let order = ref [] in
    let count = ref 0 in
    let add i =
      if not chosen.(i) then begin
        chosen.(i) <- true;
        order := i :: !order;
        incr count;
        for k = 0 to n - 1 do
          if not chosen.(k) then mind.(k) <- Float.min mind.(k) (dist2 zs.(k) zs.(i))
        done
      end
    in
    List.iter (fun a -> if a >= 0 && a < n then add a) anchors;
    if !count = 0 then add 0;
    while !count < n do
      (* Farthest point from the chosen set; ties to the lowest index. *)
      let best = ref (-1) and best_d = ref neg_infinity in
      for k = 0 to n - 1 do
        if (not chosen.(k)) && mind.(k) > !best_d then begin
          best := k;
          best_d := mind.(k)
        end
      done;
      add !best
    done;
    Array.of_list (List.rev !order)
  end

(* ---------------- Feature extraction ---------------- *)

let predictor_feature_dim = 25

(* Families in the order of the one-hot block. *)
let family_bimodal = 0
let family_gshare = 1
let family_gas = 2
let family_hybrid = 3
let family_static_taken = 4
let family_static_not_taken = 5

let predictor_features name =
  let fail () =
    invalid_arg
      (Printf.sprintf "Surrogate.predictor_features: %S is not a sweep-grid name" name)
  in
  let parse_el_h prefix =
    let rest =
      String.sub name (String.length prefix) (String.length name - String.length prefix)
    in
    match String.index_opt rest '/' with
    | Some i -> (
        match
          ( int_of_string_opt (String.sub rest 0 i),
            int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) )
        with
        | Some el, Some h when el > 0 && h >= 0 -> (float_of_int el, float_of_int h)
        | _ -> fail ())
    | None -> fail ()
  in
  let family, el, h =
    if name = "static-taken" then (family_static_taken, 0.0, 0.0)
    else if name = "static-not-taken" then (family_static_not_taken, 0.0, 0.0)
    else if String.length name > 8 && String.sub name 0 8 = "bimodal-" then
      match int_of_string_opt (String.sub name 8 (String.length name - 8)) with
      | Some el when el > 0 -> (family_bimodal, float_of_int el, 0.0)
      | _ -> fail ()
    else if String.length name > 7 && String.sub name 0 7 = "gshare-" then
      let el, h = parse_el_h "gshare-" in
      (family_gshare, el, h)
    else if String.length name > 4 && String.sub name 0 4 = "gas-" then
      let el, h = parse_el_h "gas-" in
      (family_gas, el, h)
    else if String.length name > 7 && String.sub name 0 7 = "hybrid-" then
      let el, h = parse_el_h "hybrid-" in
      (family_hybrid, el, h)
    else fail ()
  in
  let f = Array.make predictor_feature_dim 0.0 in
  f.(family) <- 1.0;
  f.(6) <- el;
  f.(7) <- h;
  (* Per-family response blocks: the one-hots partition the rows, so with
     an unpenalized intercept the ridge solves what amounts to a separate
     quadratic surface in (log2 entries, history bits) for every family —
     the classic shape of a predictor's accuracy-vs-geometry curve — while
     the shared el/h columns let sparsely-sampled families borrow the
     global trend. *)
  if family = family_bimodal then begin
    f.(8) <- el;
    f.(9) <- el *. el
  end;
  let quad base family' =
    if family = family' then begin
      f.(base) <- el;
      f.(base + 1) <- h;
      f.(base + 2) <- el *. el;
      f.(base + 3) <- h *. h;
      f.(base + 4) <- el *. h
    end
  in
  quad 10 family_gshare;
  quad 15 family_gas;
  quad 20 family_hybrid;
  f

let geometry_feature_dim = 4

let log2f v = log (float_of_int v) /. log 2.0

let geometry_features ~sets ~ways ~line_bytes ~size_bytes =
  if sets <= 0 || ways <= 0 || line_bytes <= 0 || size_bytes <= 0 then
    invalid_arg "Surrogate.geometry_features: nonpositive geometry";
  [| log2f sets; log2f ways; log2f line_bytes; log2f size_bytes |]
