(* Blind layout optimization (Knights et al., CC'09 — cited by the paper):
   instead of treating layout-induced variance as noise, *search* the layout
   space for a fast placement, and compare against profile-guided
   (Pettis-Hansen) ordering.

     dune exec examples/layout_search.exe

   The same machinery that powers interferometry — reproducible seeded
   placements and exact machine counts — makes layout search trivial: each
   candidate is a seed, and the best seed IS the optimized binary. *)

module E = Interferometry.Experiment

let () =
  let bench = Pi_workloads.Spec.find "403.gcc" in
  Printf.printf "benchmark: %s\n\n" bench.Pi_workloads.Bench.name;
  let prepared = E.prepare bench in
  let cpi_of placement =
    Pi_uarch.Pipeline.cpi
      (Pi_uarch.Pipeline.run ~warmup_blocks:prepared.E.warmup_blocks
         Pi_uarch.Machine.xeon_e5440 prepared.E.trace placement)
  in
  (* 1. Blind search: evaluate 40 random placements, keep the best. *)
  let candidates =
    Array.init 40 (fun i ->
        let seed = i + 1 in
        (seed, cpi_of (Pi_layout.Placement.make prepared.E.program ~seed)))
  in
  let sorted = Array.copy candidates in
  Array.sort (fun (_, a) (_, b) -> compare a b) sorted;
  let best_seed, best_cpi = sorted.(0) in
  let _, worst_cpi = sorted.(Array.length sorted - 1) in
  let mean_cpi = Pi_stats.Descriptive.mean (Array.map snd candidates) in
  Printf.printf "blind search over 40 layouts:\n";
  Printf.printf "  best  seed %2d: CPI %.4f\n" best_seed best_cpi;
  Printf.printf "  mean          CPI %.4f\n" mean_cpi;
  Printf.printf "  worst         CPI %.4f  (spread %.1f%%)\n\n" worst_cpi
    (100.0 *. (worst_cpi -. best_cpi) /. mean_cpi);
  (* 2. Profile-guided (Pettis-Hansen) ordering from the same trace. *)
  let optimized =
    {
      Pi_layout.Placement.seed = -1;
      code = Pi_layout.Profile_layout.layout prepared.E.trace;
      data = Pi_layout.Data_layout.bump prepared.E.program;
    }
  in
  let ph_cpi = cpi_of optimized in
  Printf.printf "profile-guided (Pettis-Hansen) layout: CPI %.4f\n\n" ph_cpi;
  (* 3. Where does each land in the distribution? *)
  let percentile cpi =
    let below = Array.length (Array.of_list (List.filter (fun (_, c) -> c < cpi) (Array.to_list candidates))) in
    100.0 *. float_of_int below /. float_of_int (Array.length candidates)
  in
  Printf.printf "percentile of profile-guided layout among random ones: %.0f%%\n" (percentile ph_cpi);
  Printf.printf "speedup of best-found over the average layout: %.2f%%\n"
    (100.0 *. (mean_cpi -. Float.min best_cpi ph_cpi) /. mean_cpi);
  print_newline ();
  print_endline
    "Takeaway: the variance interferometry measures is also free performance —";
  print_endline
    "either search it blindly (Knights et al.) or construct a good layout from";
  print_endline "a profile (Pettis-Hansen). Both reuse this library's placement machinery."
