(* Cache interferometry (the paper's Section 1.3 / Figure 3): use a
   DieHard-style randomizing allocator on top of code reordering to elicit
   cache-miss variance, then model CPI against L1D and L2 miss rates.

     dune exec examples/cache_blame.exe

   The same benchmark measured twice — once with the deterministic bump
   allocator, once with randomized heap placement — shows where the
   cache-miss variance comes from. *)

module E = Interferometry.Experiment
module Linreg = Pi_stats.Linreg

let analyze ~heap_random bench =
  (* Long runs: steady-state cache behaviour needs several sweeps over the
     solver's working set. *)
  let config =
    { E.default_config with E.heap_random; scale = 24; budget_blocks = 700_000 }
  in
  let dataset = E.run ~config bench ~n_layouts:30 in
  let cpis = E.cpis dataset in
  let l1d = E.l1d_mpkis dataset in
  let l2 = E.l2_mpkis dataset in
  Printf.printf "%s heap:\n" (if heap_random then "randomized" else "bump");
  Printf.printf "  L1D misses/k-instr: %s\n"
    (Format.asprintf "%a" Pi_stats.Descriptive.pp_summary (Pi_stats.Descriptive.summarize l1d));
  Printf.printf "  r^2(CPI, L1D) = %.3f   r^2(CPI, L2) = %.3f\n\n"
    (Pi_stats.Correlation.r_squared l1d cpis)
    (Pi_stats.Correlation.r_squared l2 cpis);
  (dataset, l1d, l2, cpis)

let () =
  let bench = Pi_workloads.Spec.find "454.calculix" in
  Printf.printf "benchmark: %s\n\n" bench.Pi_workloads.Bench.name;
  let _ = analyze ~heap_random:false bench in
  let _, l1d, l2, cpis = analyze ~heap_random:true bench in
  (* Figure-3 style plots under heap randomization. *)
  let plot name xs =
    let reg = Linreg.fit xs cpis in
    print_endline
      (Pi_plot.Scatter.render ~width:80 ~height:18
         ~title:(Printf.sprintf "CPI vs %s: %s" name (Format.asprintf "%a" Linreg.pp reg))
         ~x_label:(name ^ " per kilo-instruction") ~y_label:"CPI"
         ~line:(Pi_plot.Scatter.regression_line reg)
         ~bands:[ Pi_plot.Scatter.confidence_band reg; Pi_plot.Scatter.prediction_band reg ]
         (Array.map2 (fun x y -> (x, y)) xs cpis))
  in
  plot "L1D misses" l1d;
  plot "L2 misses" l2;
  print_endline
    "The randomizing allocator turns heap placement into a controllable";
  print_endline
    "experimental variable: cache-conflict variance appears, and CPI tracks";
  print_endline "it linearly — interferometry for the memory hierarchy."
