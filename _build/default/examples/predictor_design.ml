(* Predictor design study (the paper's Section 7 use case): evaluate a
   *hypothetical* branch predictor on the modelled machine without a
   cycle-accurate simulation of the whole pipeline.

     dune exec examples/predictor_design.exe

   We design a custom predictor — a gshare variant with an unusually long
   history — implement it against the Predictor interface, measure its MPKI
   with the Pin-style tool on the same reorderings used for the hardware
   measurements, and let each benchmark's regression model translate MPKI
   into a CPI prediction interval. *)

module E = Interferometry.Experiment
module Linreg = Pi_stats.Linreg

(* A custom predictor: gshare with 16-bit history plus a 3-bit-counter
   variant, built from this library's components. Swap in anything that
   satisfies Pi_uarch.Predictor.t. *)
let my_predictor () = Pi_uarch.Gshare.create ~entries_log2:16 ~history_bits:16

let candidates =
  [
    ("my-gshare-16/16", my_predictor);
    ("GAs-8KB", fun () -> Pi_uarch.Gas.sized_kb ~kb:8);
    ("L-TAGE", fun () -> Pi_uarch.Ltage.create ());
    ("TAGE (no loop)", fun () -> Pi_uarch.Ltage.tage_only ());
  ]

let () =
  let benchmarks = [ "400.perlbench"; "445.gobmk"; "462.libquantum"; "473.astar" ] in
  let per_bench =
    List.map
      (fun name ->
        let bench = Pi_workloads.Spec.find name in
        let dataset = E.run bench ~n_layouts:25 in
        let model = Interferometry.Model.fit dataset in
        (name, Interferometry.Predict.evaluate ~candidates dataset model))
      benchmarks
  in
  List.iter
    (fun (name, rows) ->
      Printf.printf "== %s ==\n" name;
      print_endline Interferometry.Predict.header;
      List.iter (fun e -> print_endline (Interferometry.Predict.row e)) rows;
      print_newline ())
    per_bench;
  let summary = Interferometry.Predict.summarize_suite per_bench in
  Printf.printf "across these benchmarks: real CPI %.3f at %.2f MPKI\n"
    summary.Interferometry.Predict.real_cpi summary.Interferometry.Predict.real_mpki;
  List.iter
    (fun (name, mpki, cpi, half) ->
      Printf.printf "  %-18s MPKI %6.2f  ->  CPI %.3f +- %.3f (%.1f%% vs real)\n" name mpki
        cpi half
        (100.0
        *. (summary.Interferometry.Predict.real_cpi -. cpi)
        /. summary.Interferometry.Predict.real_cpi))
    summary.Interferometry.Predict.rows;
  print_newline ();
  print_endline
    "Interpretation: positive % = estimated speedup from swapping only the";
  print_endline
    "branch predictor, with the rest of the machine measured, not simulated."
