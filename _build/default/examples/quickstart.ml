(* Quickstart: build a performance model for one benchmark and read
   predictions off it.

     dune exec examples/quickstart.exe

   Steps: pick a benchmark stand-in, run the interferometry experiment
   (30 code reorderings, each measured with the noisy counter protocol),
   fit CPI ~ MPKI, test significance, and ask the model what a perfect
   branch predictor would be worth. *)

module E = Interferometry.Experiment
module Linreg = Pi_stats.Linreg

let () =
  let bench = Pi_workloads.Spec.find "400.perlbench" in
  Printf.printf "benchmark: %s (%s)\n\n" bench.Pi_workloads.Bench.name
    bench.Pi_workloads.Bench.description;

  (* 1. Run the experiment: one trace, 30 placements, 30 measurements. *)
  let dataset = E.run bench ~n_layouts:30 in
  Printf.printf "collected %d observations\n" (Array.length dataset.E.observations);
  Printf.printf "  CPI : %s\n"
    (Format.asprintf "%a" Pi_stats.Descriptive.pp_summary
       (Pi_stats.Descriptive.summarize (E.cpis dataset)));
  Printf.printf "  MPKI: %s\n\n"
    (Format.asprintf "%a" Pi_stats.Descriptive.pp_summary
       (Pi_stats.Descriptive.summarize (E.mpkis dataset)));

  (* 2. Is the CPI~MPKI correlation statistically significant? *)
  let verdict = Interferometry.Significance.test dataset in
  Printf.printf "t-test: r = %.3f, p = %.2g -> %s\n\n"
    verdict.Interferometry.Significance.mpki_test.Pi_stats.Correlation.r
    verdict.Interferometry.Significance.mpki_test.Pi_stats.Correlation.p_value
    (if verdict.Interferometry.Significance.significant then
       "significant: interferometry applies"
     else "not significant: this benchmark resists interferometry");

  (* 3. Fit the performance model. *)
  let model = Interferometry.Model.fit dataset in
  Printf.printf "model: %s\n\n"
    (Format.asprintf "%a" Linreg.pp model.Interferometry.Model.regression);

  (* 4. Ask it questions. *)
  let perfect = model.Interferometry.Model.perfect_prediction in
  Printf.printf "perfect branch prediction: CPI %.3f, 95%% PI [%.3f, %.3f]\n"
    perfect.Linreg.estimate perfect.Linreg.lower perfect.Linreg.upper;
  let mean_mpki = model.Interferometry.Model.mean_mpki in
  Printf.printf "improvement over today's predictor: %.1f%%\n"
    (Interferometry.Model.improvement_percent model ~from_mpki:mean_mpki ~to_mpki:0.0);
  (match
     Interferometry.Model.mpki_reduction_for_cpi_gain model ~at_mpki:mean_mpki
       ~gain_percent:10.0
   with
  | Some r -> Printf.printf "a 10%% CPI gain needs a %.0f%% misprediction reduction\n" r
  | None -> ());

  (* 5. Draw the Figure-2-style scatter. *)
  let points = Array.map2 (fun x y -> (x, y)) (E.mpkis dataset) (E.cpis dataset) in
  print_newline ();
  print_endline
    (Pi_plot.Scatter.render ~width:80 ~height:20 ~title:"CPI vs MPKI"
       ~x_label:"MPKI" ~y_label:"CPI"
       ~line:(Pi_plot.Scatter.regression_line model.Interferometry.Model.regression)
       ~bands:
         [
           Pi_plot.Scatter.confidence_band model.Interferometry.Model.regression;
           Pi_plot.Scatter.prediction_band model.Interferometry.Model.regression;
         ]
       points)
