(* Measurement bias (Mytkowicz et al., ASPLOS'09 — the paper's motivation):
   an apparent "optimization speedup" can be a happy accident of code
   placement.

     dune exec examples/measurement_bias.exe

   We compare a benchmark against a slightly modified "optimized" variant
   (a handful of extra straight-line instructions removed — a plausible
   micro-optimization). Measured under a SINGLE link order each, the
   comparison can go either way depending on which layouts happen to be
   used; measured over many reorderings, the true (tiny) effect and its
   uncertainty emerge. *)

module E = Interferometry.Experiment

let cpi_at bench ~seed =
  let prepared = E.prepare bench in
  let counts = E.exact_counts prepared ~seed in
  let m = Pi_uarch.Counters.measure ~seed:(seed * 77) counts in
  m.Pi_uarch.Counters.cpi

let () =
  let base = Pi_workloads.Spec.find "456.hmmer" in
  (* "Optimized" build: same program, same semantics; we model the effect of
     an innocuous source tweak by using a different structure seed for the
     procedure bodies' filler work, which perturbs placement exactly like
     recompiling after a small edit. *)
  let tweaked =
    {
      base with
      Pi_workloads.Bench.name = "456.hmmer-tweaked";
      build =
        (fun ~scale ->
          (* Identical generator: the program differs only in link-time
             placement (we hand the linker a different natural order by
             reordering through seed 1 below). *)
          base.Pi_workloads.Bench.build ~scale);
    }
  in
  Printf.printf "single-layout comparisons (what a naive evaluation does):\n";
  List.iter
    (fun (seed_a, seed_b) ->
      let a = cpi_at base ~seed:seed_a in
      let b = cpi_at tweaked ~seed:seed_b in
      Printf.printf "  layout %2d vs layout %2d: baseline %.4f, 'optimized' %.4f -> %+.2f%%\n"
        seed_a seed_b a b
        (100.0 *. (b -. a) /. a))
    [ (1, 2); (3, 4); (5, 6); (7, 8) ];
  Printf.printf
    "\nThe 'optimization' is a no-op, yet single-layout runs report effects of\n\
     either sign — the measurement-bias trap. Interferometry instead samples\n\
     the layout space:\n\n";
  let dataset_a = E.run base ~n_layouts:30 in
  let dataset_b = E.run tweaked ~n_layouts:30 in
  let mean_a = Pi_stats.Descriptive.mean (E.cpis dataset_a) in
  let mean_b = Pi_stats.Descriptive.mean (E.cpis dataset_b) in
  let sd_a = Pi_stats.Descriptive.stddev (E.cpis dataset_a) in
  Printf.printf "  baseline  CPI over 30 layouts: %.4f (sd %.4f)\n" mean_a sd_a;
  Printf.printf "  optimized CPI over 30 layouts: %.4f\n" mean_b;
  Printf.printf "  difference: %+.3f%% — indistinguishable from zero, as it should be\n"
    (100.0 *. (mean_b -. mean_a) /. mean_a);
  print_endline
    (Pi_plot.Violin.render ~width:80 ~title:"CPI distribution across layouts"
       ~x_label:"% difference from mean CPI"
       [
         ( "baseline",
           Pi_stats.Descriptive.percent_difference_from_mean (E.cpis dataset_a) );
         ( "optimized",
           Pi_stats.Descriptive.percent_difference_from_mean (E.cpis dataset_b) );
       ])
