examples/measurement_bias.mli:
