examples/measurement_bias.ml: Interferometry List Pi_plot Pi_stats Pi_uarch Pi_workloads Printf
