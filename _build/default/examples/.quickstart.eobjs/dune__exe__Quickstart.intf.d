examples/quickstart.mli:
