examples/layout_search.ml: Array Float Interferometry List Pi_layout Pi_stats Pi_uarch Pi_workloads Printf
