examples/cache_blame.mli:
