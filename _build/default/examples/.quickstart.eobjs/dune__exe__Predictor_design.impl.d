examples/predictor_design.ml: Interferometry List Pi_stats Pi_uarch Pi_workloads Printf
