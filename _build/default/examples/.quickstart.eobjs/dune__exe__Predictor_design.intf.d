examples/predictor_design.mli:
