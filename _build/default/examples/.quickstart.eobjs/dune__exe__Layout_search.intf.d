examples/layout_search.mli:
