examples/quickstart.ml: Array Format Interferometry Pi_plot Pi_stats Pi_workloads Printf
