(* Tests for the extension components: the wider predictor zoo, indirect
   predictors, stride prefetcher, trace cache, cache interferometry,
   dataset persistence, bootstrap statistics and profile-guided layout. *)

module P = Pi_uarch.Predictor
module Indirect = Pi_uarch.Indirect
module Prefetcher = Pi_uarch.Prefetcher
module Trace_cache = Pi_uarch.Trace_cache
module Cache = Pi_uarch.Cache
module E = Interferometry.Experiment
module Bootstrap = Pi_stats.Bootstrap

(* reuse the driver idiom from test_predictors *)
let drive predictor ~rounds ~measure branches =
  let states = List.map (fun (pc, gen) -> (pc, gen, ref 0)) branches in
  let mispredicts = ref 0 and measured = ref 0 in
  for round = 0 to rounds - 1 do
    List.iter
      (fun (pc, gen, counter) ->
        let taken = gen !counter in
        incr counter;
        let correct = predictor.P.on_branch ~pc ~taken in
        if round >= rounds - measure then begin
          incr measured;
          if not correct then incr mispredicts
        end)
      states
  done;
  float_of_int !mispredicts /. float_of_int !measured

let alternating i = i mod 2 = 0
let periodic pattern i = pattern.(i mod Array.length pattern)

(* ---------------- Perceptron ---------------- *)

let test_perceptron_learns_bias () =
  let p = Pi_uarch.Perceptron.create () in
  let rate = drive p ~rounds:400 ~measure:200 [ (0x100, fun _ -> true) ] in
  Alcotest.(check (float 0.0)) "bias learned" 0.0 rate

let test_perceptron_long_linear_pattern () =
  (* Period-24 alternation-with-phase is linearly separable over history
     bits; a 10-bit-history counter scheme cannot see the whole period. *)
  let pattern = Array.init 24 (fun i -> i mod 3 <> 0) in
  let p = Pi_uarch.Perceptron.create ~history_bits:32 () in
  let rate = drive p ~rounds:4000 ~measure:1000 [ (0x100, periodic pattern) ] in
  Alcotest.(check bool) (Printf.sprintf "learns long pattern (%.3f)" rate) true (rate < 0.05)

let test_perceptron_bounds () =
  Alcotest.check_raises "history bound"
    (Invalid_argument "Perceptron.create: history_bits out of [1,62]") (fun () ->
      ignore (Pi_uarch.Perceptron.create ~history_bits:64 ()))

(* ---------------- Local / tournament ---------------- *)

let test_local_learns_self_pattern_under_interference () =
  (* Local history isolates each branch: branch A's noise cannot disturb
     branch B's loop pattern. Global gshare with short history struggles
     when a noisy branch interleaves. *)
  let rng = Pi_stats.Rng.create 11 in
  let noisy _ = Pi_stats.Rng.bool rng in
  let loopy i = i mod 5 <> 4 in
  let stream = [ (0x100, noisy); (0x208, loopy) ] in
  let local = Pi_uarch.Local_two_level.create () in
  let _ = drive local ~rounds:2000 ~measure:1 stream in
  (* Measure only the loopy branch with a fresh predictor. *)
  let measure_loopy predictor =
    let mis = ref 0 in
    let counters = [| 0; 0 |] in
    for round = 0 to 2999 do
      let noise_taken = Pi_stats.Rng.bool rng in
      ignore (predictor.P.on_branch ~pc:0x100 ~taken:noise_taken);
      let taken = loopy counters.(1) in
      counters.(1) <- counters.(1) + 1;
      let correct = predictor.P.on_branch ~pc:0x208 ~taken in
      if round > 1000 && not correct then incr mis
    done;
    float_of_int !mis /. 2000.0
  in
  let local_rate = measure_loopy (Pi_uarch.Local_two_level.create ()) in
  Alcotest.(check bool)
    (Printf.sprintf "local isolates the loop (%.3f)" local_rate)
    true (local_rate < 0.05)

let test_tournament_handles_both () =
  let stream =
    [ (0x100, fun i -> i mod 7 <> 6) (* loop: local food *); (0x208, alternating) ]
  in
  let rate = drive (Pi_uarch.Tournament.create ()) ~rounds:2000 ~measure:600 stream in
  Alcotest.(check bool) (Printf.sprintf "tournament (%.3f)" rate) true (rate < 0.03)

(* ---------------- Indirect predictors ---------------- *)

let test_indirect_btb_single_target () =
  let p = Indirect.btb () in
  ignore (p.Indirect.on_indirect ~pc:0x100 ~target:0x5000);
  Alcotest.(check bool) "repeats predicted" true (p.Indirect.on_indirect ~pc:0x100 ~target:0x5000)

let test_indirect_ittage_beats_btb_on_sequence () =
  (* A repeating target sequence of period 6: a BTB (last-target) predicts
     only immediate repeats; ITTAGE follows the sequence. *)
  let targets = [| 0x10; 0x20; 0x30; 0x10; 0x40; 0x50 |] in
  let run (p : Indirect.t) =
    let wrong = ref 0 in
    for i = 0 to 5999 do
      let target = targets.(i mod 6) in
      if not (p.Indirect.on_indirect ~pc:0x100 ~target) then incr wrong
    done;
    (* measure the tail only *)
    let tail_wrong = ref 0 in
    for i = 0 to 1199 do
      let target = targets.(i mod 6) in
      if not (p.Indirect.on_indirect ~pc:0x100 ~target) then incr tail_wrong
    done;
    ignore !wrong;
    float_of_int !tail_wrong /. 1200.0
  in
  let btb_rate = run (Indirect.btb ()) in
  let ittage_rate = run (Indirect.ittage ()) in
  Alcotest.(check bool)
    (Printf.sprintf "ittage %.3f << btb %.3f" ittage_rate btb_rate)
    true
    (ittage_rate < btb_rate /. 2.0)

let test_indirect_oracle () =
  let p = Indirect.oracle () in
  Alcotest.(check bool) "always right" true (p.Indirect.on_indirect ~pc:1 ~target:2)

(* ---------------- Prefetcher ---------------- *)

let test_prefetcher_detects_stride () =
  let pf = Prefetcher.create ~confidence_threshold:2 () in
  let issued = ref 0 in
  for i = 0 to 19 do
    match Prefetcher.observe pf ~mem_id:3 ~addr:(0x1000 + (i * 64)) with
    | Some (first, count) ->
        incr issued;
        Alcotest.(check bool) "prefetch ahead of demand" true (first > 0x1000 + (i * 64) - 64);
        Alcotest.(check bool) "positive degree" true (count > 0)
    | None -> ()
  done;
  Alcotest.(check bool) "stride stream triggers prefetches" true (!issued > 10);
  Alcotest.(check int) "issue counter" !issued (Prefetcher.prefetches_issued pf)

let test_prefetcher_ignores_random () =
  let pf = Prefetcher.create () in
  let rng = Pi_stats.Rng.create 5 in
  let issued = ref 0 in
  for _ = 0 to 199 do
    match Prefetcher.observe pf ~mem_id:1 ~addr:(Pi_stats.Rng.int rng 1_000_000) with
    | Some _ -> incr issued
    | None -> ()
  done;
  Alcotest.(check bool) "random stream mostly quiet" true (!issued < 5)

let test_prefetcher_reset () =
  let pf = Prefetcher.create () in
  for i = 0 to 9 do
    ignore (Prefetcher.observe pf ~mem_id:0 ~addr:(i * 64))
  done;
  Prefetcher.reset pf;
  Alcotest.(check int) "counter cleared" 0 (Prefetcher.prefetches_issued pf)

(* ---------------- Trace cache ---------------- *)

let test_trace_cache_hit_after_install () =
  let tc = Trace_cache.create Trace_cache.default_geometry in
  Alcotest.(check bool) "cold" false (Trace_cache.access tc ~block_id:42);
  Alcotest.(check bool) "warm" true (Trace_cache.access tc ~block_id:42);
  Alcotest.(check int) "accesses" 2 (Trace_cache.accesses tc);
  Alcotest.(check int) "hits" 1 (Trace_cache.hits tc)

let test_trace_cache_eviction () =
  let tc = Trace_cache.create { Trace_cache.entries_log2 = 2; assoc = 2 } in
  (* 2 sets x 2 ways; blocks 0,2,4 all map to set 0. *)
  ignore (Trace_cache.access tc ~block_id:0);
  ignore (Trace_cache.access tc ~block_id:2);
  ignore (Trace_cache.access tc ~block_id:4);
  Alcotest.(check bool) "LRU evicted" false (Trace_cache.access tc ~block_id:0)

let test_cache_fill_quiet () =
  let c = Cache.create { Cache.size_bytes = 1024; assoc = 2; line_bytes = 64 } in
  Cache.fill c 0x80;
  Alcotest.(check int) "no accesses counted" 0 (Cache.accesses c);
  Alcotest.(check int) "no misses counted" 0 (Cache.misses c);
  Alcotest.(check bool) "but line resident" true (Cache.probe c 0x80)

(* ---------------- Cache interferometry ---------------- *)

let calculix_heap_dataset =
  lazy
    (let cfg =
       { E.quick_config with E.heap_random = true; scale = 6; budget_blocks = 180_000 }
     in
     E.run ~config:cfg (Pi_workloads.Spec.find "454.calculix") ~n_layouts:15)

let test_cache_model_fit () =
  let d = Lazy.force calculix_heap_dataset in
  let m = Interferometry.Cache_model.fit d in
  Alcotest.(check bool) "positive mean cpi" true (m.Interferometry.Cache_model.mean_cpi > 0.0);
  Alcotest.(check bool) "r2 in range" true
    (m.Interferometry.Cache_model.regression.Pi_stats.Multireg.r_squared >= 0.0)

let test_cache_model_miss_rates_monotone () =
  let d = Lazy.force calculix_heap_dataset in
  let prepared = d.E.prepared in
  let l2 = { Cache.size_bytes = 4 * 1024 * 1024; assoc = 8; line_bytes = 64 } in
  let big, _ = Interferometry.Cache_model.miss_rates prepared ~seed:1
      ~l1d:{ Cache.size_bytes = 64 * 1024; assoc = 8; line_bytes = 64 } ~l2 in
  let small, _ = Interferometry.Cache_model.miss_rates prepared ~seed:1
      ~l1d:{ Cache.size_bytes = 16 * 1024; assoc = 8; line_bytes = 64 } ~l2 in
  Alcotest.(check bool)
    (Printf.sprintf "smaller L1D misses more (%.1f vs %.1f)" small big)
    true (small > big)

let test_cache_model_evaluate () =
  let d = Lazy.force calculix_heap_dataset in
  let m = Interferometry.Cache_model.fit d in
  let evals = Interferometry.Cache_model.evaluate d m in
  Alcotest.(check int) "six candidates" 6 (List.length evals);
  let find label =
    List.find (fun e -> e.Interferometry.Cache_model.label = label) evals
  in
  let big = find "L1D 64KB" and small = find "L1D 16KB" in
  Alcotest.(check bool) "bigger L1D predicts lower CPI" true
    (big.Interferometry.Cache_model.predicted_cpi
    < small.Interferometry.Cache_model.predicted_cpi)

(* ---------------- Dataset I/O ---------------- *)

let test_dataset_io_roundtrip () =
  let d = E.run ~config:E.quick_config (Pi_workloads.Spec.find "456.hmmer") ~n_layouts:8 in
  let path = Filename.temp_file "pi_dataset" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Interferometry.Dataset_io.save path d;
      match Interferometry.Dataset_io.load_observations path with
      | Error e -> Alcotest.fail e
      | Ok observations ->
          Alcotest.(check int) "count" 8 (Array.length observations);
          Array.iteri
            (fun i o ->
              Alcotest.(check (float 1e-6)) "cpi preserved"
                d.E.observations.(i).E.measurement.Pi_uarch.Counters.cpi
                o.E.measurement.Pi_uarch.Counters.cpi)
            observations;
          let reattached = Interferometry.Dataset_io.reattach d.E.prepared observations in
          let m1 = Interferometry.Model.fit d in
          let m2 = Interferometry.Model.fit reattached in
          Alcotest.(check (float 1e-6)) "model survives roundtrip"
            m1.Interferometry.Model.regression.Pi_stats.Linreg.slope
            m2.Interferometry.Model.regression.Pi_stats.Linreg.slope)

let test_dataset_io_rejects_garbage () =
  (match Interferometry.Dataset_io.observation_of_row "1,2,3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short row accepted");
  match Interferometry.Dataset_io.observation_of_row "x,1,1,1,1,1,1,1,1,1,1,1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad seed accepted"

(* ---------------- Bootstrap ---------------- *)

let test_bootstrap_mean_contains_truth () =
  let rng = Pi_stats.Rng.create 3 in
  let xs = Array.init 80 (fun _ -> 5.0 +. Pi_stats.Rng.gaussian rng) in
  let i = Bootstrap.mean_interval ~seed:1 xs in
  Alcotest.(check bool) "contains sample mean" true
    (i.Bootstrap.lower <= i.Bootstrap.estimate && i.Bootstrap.estimate <= i.Bootstrap.upper);
  Alcotest.(check bool) "roughly around 5" true
    (i.Bootstrap.lower < 5.3 && i.Bootstrap.upper > 4.7)

let test_bootstrap_regression_matches_parametric () =
  let rng = Pi_stats.Rng.create 9 in
  let xs = Array.init 60 (fun i -> float_of_int i /. 2.0) in
  let ys = Array.map (fun x -> (1.2 *. x) +. 4.0 +. (0.5 *. Pi_stats.Rng.gaussian rng)) xs in
  let slope, intercept = Bootstrap.regression_intervals ~seed:2 xs ys in
  (* Intervals are narrow; any single draw can just miss the truth, so
     check the neighbourhood rather than strict coverage. *)
  Alcotest.(check bool) "slope interval near truth" true
    (slope.Bootstrap.lower < 1.25 && slope.Bootstrap.upper > 1.15);
  Alcotest.(check bool) "intercept interval near truth" true
    (intercept.Bootstrap.lower < 4.5 && intercept.Bootstrap.upper > 3.5);
  Alcotest.(check bool) "interval brackets its estimate" true
    (slope.Bootstrap.lower <= slope.Bootstrap.estimate
    && slope.Bootstrap.estimate <= slope.Bootstrap.upper)

(* ---------------- Profile-guided layout ---------------- *)

let test_profile_layout_valid_order () =
  let bench = Pi_workloads.Spec.find "403.gcc" in
  let p = bench.Pi_workloads.Bench.build ~scale:1 in
  let trace = Pi_layout.Run_limiter.trace p ~budget_blocks:20_000 in
  let order = Pi_layout.Profile_layout.order trace in
  (* object order is a permutation *)
  let sorted = Array.copy order.Pi_layout.Code_layout.object_order in
  Array.sort compare sorted;
  Array.iteri (fun i v -> Alcotest.(check int) "perm" i v) sorted;
  let layout = Pi_layout.Code_layout.link p order in
  Alcotest.(check bool) "no overlaps" false (Pi_layout.Code_layout.overlaps layout)

let test_profile_layout_chains_cover_all_procs () =
  let bench = Pi_workloads.Spec.find "400.perlbench" in
  let p = bench.Pi_workloads.Bench.build ~scale:1 in
  let trace = Pi_layout.Run_limiter.trace p ~budget_blocks:20_000 in
  let chains = Pi_layout.Profile_layout.procedure_chains trace in
  Alcotest.(check int) "every procedure appears once"
    (Array.length p.Pi_isa.Program.procs)
    (List.length (List.sort_uniq compare chains))

let test_profile_layout_improves_gcc () =
  let bench = Pi_workloads.Spec.find "403.gcc" in
  let prepared = E.prepare ~config:E.quick_config bench in
  let optimized =
    {
      Pi_layout.Placement.seed = -1;
      code = Pi_layout.Profile_layout.layout prepared.E.trace;
      data = Pi_layout.Data_layout.bump prepared.E.program;
    }
  in
  let cpi placement =
    Pi_uarch.Pipeline.cpi
      (Pi_uarch.Pipeline.run ~warmup_blocks:prepared.E.warmup_blocks
         Pi_uarch.Machine.xeon_e5440 prepared.E.trace placement)
  in
  let random_mean =
    Pi_stats.Descriptive.mean
      (Array.init 8 (fun i -> cpi (Pi_layout.Placement.make prepared.E.program ~seed:(i + 1))))
  in
  Alcotest.(check bool) "optimized beats the random average" true
    (cpi optimized < random_mean)

let suite =
  [
    ( "ext.predictors",
      [
        Alcotest.test_case "perceptron bias" `Quick test_perceptron_learns_bias;
        Alcotest.test_case "perceptron long pattern" `Quick test_perceptron_long_linear_pattern;
        Alcotest.test_case "perceptron bounds" `Quick test_perceptron_bounds;
        Alcotest.test_case "local isolation" `Quick test_local_learns_self_pattern_under_interference;
        Alcotest.test_case "tournament" `Quick test_tournament_handles_both;
      ] );
    ( "ext.indirect",
      [
        Alcotest.test_case "btb repeat" `Quick test_indirect_btb_single_target;
        Alcotest.test_case "ittage sequence" `Quick test_indirect_ittage_beats_btb_on_sequence;
        Alcotest.test_case "oracle" `Quick test_indirect_oracle;
      ] );
    ( "ext.prefetcher",
      [
        Alcotest.test_case "detects stride" `Quick test_prefetcher_detects_stride;
        Alcotest.test_case "ignores random" `Quick test_prefetcher_ignores_random;
        Alcotest.test_case "reset" `Quick test_prefetcher_reset;
      ] );
    ( "ext.trace_cache",
      [
        Alcotest.test_case "hit after install" `Quick test_trace_cache_hit_after_install;
        Alcotest.test_case "eviction" `Quick test_trace_cache_eviction;
        Alcotest.test_case "cache fill quiet" `Quick test_cache_fill_quiet;
      ] );
    ( "ext.cache_model",
      [
        Alcotest.test_case "fit" `Quick test_cache_model_fit;
        Alcotest.test_case "miss rates monotone" `Quick test_cache_model_miss_rates_monotone;
        Alcotest.test_case "evaluate" `Quick test_cache_model_evaluate;
      ] );
    ( "ext.dataset_io",
      [
        Alcotest.test_case "roundtrip" `Quick test_dataset_io_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_dataset_io_rejects_garbage;
      ] );
    ( "ext.bootstrap",
      [
        Alcotest.test_case "mean interval" `Quick test_bootstrap_mean_contains_truth;
        Alcotest.test_case "regression intervals" `Quick test_bootstrap_regression_matches_parametric;
      ] );
    ( "ext.profile_layout",
      [
        Alcotest.test_case "valid order" `Quick test_profile_layout_valid_order;
        Alcotest.test_case "chains cover procs" `Quick test_profile_layout_chains_cover_all_procs;
        Alcotest.test_case "improves gcc" `Quick test_profile_layout_improves_gcc;
      ] );
  ]

(* ---------------- Sweep internals ---------------- *)

let test_sweep_study_consistency () =
  let bench = Pi_workloads.Spec.find "456.hmmer" in
  let prepared = E.prepare ~config:E.quick_config bench in
  let placement = Pi_layout.Placement.natural prepared.E.program in
  let s =
    Pi_uarch.Sweep.run_study ~warmup_blocks:prepared.E.warmup_blocks ~benchmark:"456.hmmer"
      prepared.E.trace placement
  in
  Alcotest.(check int) "145 points" 145 (Array.length s.Pi_uarch.Sweep.points);
  Alcotest.(check string) "benchmark" "456.hmmer" s.Pi_uarch.Sweep.benchmark;
  (* The regression must reproduce its own diagnostics. *)
  let predicted = Pi_stats.Linreg.predict s.Pi_uarch.Sweep.regression 0.0 in
  Alcotest.(check (float 1e-9)) "predicted perfect from regression" predicted
    s.Pi_uarch.Sweep.predicted_perfect_cpi;
  Alcotest.(check bool) "perfect CPI below every imperfect point" true
    (Array.for_all
       (fun (p : Pi_uarch.Sweep.point) -> p.Pi_uarch.Sweep.cpi >= s.Pi_uarch.Sweep.perfect_cpi)
       s.Pi_uarch.Sweep.points);
  Alcotest.(check bool) "L-TAGE among the best" true
    (s.Pi_uarch.Sweep.ltage_point.Pi_uarch.Sweep.mpki
    < Pi_stats.Descriptive.mean (Array.map (fun p -> p.Pi_uarch.Sweep.mpki) s.Pi_uarch.Sweep.points))

(* ---------------- Profile layout affinity ---------------- *)

let test_affinity_edges_weights () =
  (* main calls a then b in a loop: edges (main,a) and (main,b) must carry
     similar weight, and (a,b) must not dominate. *)
  let bld = Pi_isa.Builder.create ~name:"affinity" in
  let o = Pi_isa.Builder.add_object bld "x.o" in
  let a = Pi_isa.Builder.proc bld ~obj:o ~name:"a" [ Pi_isa.Builder.work 2 ] in
  let b = Pi_isa.Builder.proc bld ~obj:o ~name:"b" [ Pi_isa.Builder.work 2 ] in
  let main =
    Pi_isa.Builder.proc bld ~obj:o ~name:"main"
      [ Pi_isa.Builder.for_ ~trips:50 [ Pi_isa.Builder.call a; Pi_isa.Builder.call b ] ]
  in
  Pi_isa.Builder.entry bld main;
  let p = Pi_isa.Builder.finish bld in
  let trace = Pi_isa.Interp.run p in
  let edges = Pi_layout.Profile_layout.affinity_edges trace in
  Alcotest.(check bool) "has edges" true (List.length edges >= 2);
  List.iter
    (fun (x, y, w) ->
      Alcotest.(check bool) "ordered pair" true (x < y);
      Alcotest.(check bool) "positive weight" true (w > 0))
    edges

(* ---------------- Geometry validation ---------------- *)

let test_geometry_validation_errors () =
  Alcotest.check_raises "gshare history > table"
    (Invalid_argument "Gshare.create: history_bits out of [1, entries_log2]") (fun () ->
      ignore (Pi_uarch.Gshare.create ~entries_log2:8 ~history_bits:9));
  Alcotest.check_raises "gas history = table"
    (Invalid_argument "Gas.create: history_bits out of [1, entries_log2)") (fun () ->
      ignore (Pi_uarch.Gas.create ~entries_log2:8 ~history_bits:8));
  Alcotest.check_raises "local history too long"
    (Invalid_argument "Local_two_level.create: local_history_bits out of [1, pht_entries_log2]")
    (fun () -> ignore (Pi_uarch.Local_two_level.create ~local_history_bits:12 ~pht_entries_log2:10 ()));
  Alcotest.check_raises "btb sets"
    (Invalid_argument "Btb.create: sets not a power of two") (fun () ->
      ignore (Pi_uarch.Btb.create ~sets:12 ~ways:2));
  Alcotest.check_raises "trace cache geometry"
    (Invalid_argument "Trace_cache.create: geometry must divide into power-of-two sets")
    (fun () -> ignore (Pi_uarch.Trace_cache.create { Pi_uarch.Trace_cache.entries_log2 = 4; assoc = 3 }))

let extra_cases =
  ( "ext.internals",
    [
      Alcotest.test_case "sweep study consistency" `Quick test_sweep_study_consistency;
      Alcotest.test_case "affinity edges" `Quick test_affinity_edges_weights;
      Alcotest.test_case "geometry validation" `Quick test_geometry_validation_errors;
    ] )

let suite = suite @ [ extra_cases ]
