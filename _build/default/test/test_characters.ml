(* Data-driven per-benchmark character tests: each stand-in must keep the
   microarchitectural profile its SPEC counterpart is known for, otherwise
   the reproduction's figures drift. One table row per benchmark; a single
   exact-counts run per benchmark at test scale. *)

module E = Interferometry.Experiment
module Pipeline = Pi_uarch.Pipeline

type expectation = {
  bench : string;
  cpi_min : float;
  cpi_max : float;
  mpki_min : float;
  mpki_max : float;
  l2_mpki_max : float;  (** memory-boundedness ceiling *)
}

(* Wide bands: these guard against gross regressions (a benchmark becoming
   memory-bound or branch-free), not exact levels. Measured at scale 2 with
   a 60k-block budget, which shifts levels slightly vs the full runs. *)
let expectations =
  [
    { bench = "400.perlbench"; cpi_min = 0.4; cpi_max = 1.4; mpki_min = 5.0; mpki_max = 30.0; l2_mpki_max = 15.0 };
    { bench = "401.bzip2"; cpi_min = 0.5; cpi_max = 1.6; mpki_min = 3.0; mpki_max = 25.0; l2_mpki_max = 30.0 };
    { bench = "403.gcc"; cpi_min = 1.5; cpi_max = 6.0; mpki_min = 4.0; mpki_max = 30.0; l2_mpki_max = 60.0 };
    { bench = "416.gamess"; cpi_min = 0.4; cpi_max = 1.5; mpki_min = 0.3; mpki_max = 8.0; l2_mpki_max = 25.0 };
    { bench = "429.mcf"; cpi_min = 3.0; cpi_max = 9.0; mpki_min = 0.5; mpki_max = 12.0; l2_mpki_max = 80.0 };
    { bench = "434.zeusmp"; cpi_min = 0.6; cpi_max = 2.0; mpki_min = 0.1; mpki_max = 4.0; l2_mpki_max = 80.0 };
    { bench = "435.gromacs"; cpi_min = 0.5; cpi_max = 1.8; mpki_min = 2.0; mpki_max = 20.0; l2_mpki_max = 30.0 };
    { bench = "444.namd"; cpi_min = 0.5; cpi_max = 1.6; mpki_min = 0.2; mpki_max = 6.0; l2_mpki_max = 15.0 };
    { bench = "445.gobmk"; cpi_min = 0.7; cpi_max = 2.5; mpki_min = 8.0; mpki_max = 40.0; l2_mpki_max = 25.0 };
    { bench = "450.soplex"; cpi_min = 1.5; cpi_max = 6.0; mpki_min = 0.5; mpki_max = 10.0; l2_mpki_max = 80.0 };
    { bench = "454.calculix"; cpi_min = 0.6; cpi_max = 2.2; mpki_min = 0.5; mpki_max = 10.0; l2_mpki_max = 60.0 };
    { bench = "456.hmmer"; cpi_min = 0.4; cpi_max = 1.5; mpki_min = 6.0; mpki_max = 30.0; l2_mpki_max = 25.0 };
    { bench = "459.GemsFDTD"; cpi_min = 1.0; cpi_max = 3.0; mpki_min = 0.3; mpki_max = 6.0; l2_mpki_max = 130.0 };
    { bench = "462.libquantum"; cpi_min = 0.4; cpi_max = 1.3; mpki_min = 5.0; mpki_max = 25.0; l2_mpki_max = 15.0 };
    { bench = "464.h264ref"; cpi_min = 0.5; cpi_max = 1.6; mpki_min = 0.8; mpki_max = 10.0; l2_mpki_max = 40.0 };
    { bench = "465.tonto"; cpi_min = 0.4; cpi_max = 1.4; mpki_min = 1.0; mpki_max = 12.0; l2_mpki_max = 25.0 };
    { bench = "471.omnetpp"; cpi_min = 1.5; cpi_max = 6.0; mpki_min = 5.0; mpki_max = 30.0; l2_mpki_max = 60.0 };
    { bench = "473.astar"; cpi_min = 2.0; cpi_max = 9.0; mpki_min = 8.0; mpki_max = 45.0; l2_mpki_max = 90.0 };
    { bench = "482.sphinx3"; cpi_min = 0.8; cpi_max = 3.0; mpki_min = 0.3; mpki_max = 8.0; l2_mpki_max = 90.0 };
    { bench = "483.xalancbmk"; cpi_min = 1.5; cpi_max = 6.0; mpki_min = 8.0; mpki_max = 40.0; l2_mpki_max = 60.0 };
    { bench = "410.bwaves"; cpi_min = 1.0; cpi_max = 3.0; mpki_min = 0.0; mpki_max = 3.0; l2_mpki_max = 110.0 };
    { bench = "433.milc"; cpi_min = 1.0; cpi_max = 3.0; mpki_min = 0.0; mpki_max = 3.0; l2_mpki_max = 130.0 };
    { bench = "470.lbm"; cpi_min = 1.0; cpi_max = 3.2; mpki_min = 0.0; mpki_max = 4.0; l2_mpki_max = 160.0 };
  ]

let counts_for =
  let cache = Hashtbl.create 24 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some c -> c
    | None ->
        let prepared = E.prepare ~config:E.quick_config (Pi_workloads.Spec.find name) in
        let c = E.exact_counts prepared ~seed:1 in
        Hashtbl.replace cache name c;
        c

let check_band name lo hi v =
  Alcotest.(check bool) (Printf.sprintf "%s in [%.2f, %.2f] (got %.3f)" name lo hi v) true
    (v >= lo && v <= hi)

let case e =
  Alcotest.test_case e.bench `Quick (fun () ->
      let c = counts_for e.bench in
      check_band (e.bench ^ " CPI") e.cpi_min e.cpi_max (Pipeline.cpi c);
      check_band (e.bench ^ " MPKI") e.mpki_min e.mpki_max (Pipeline.mpki c);
      Alcotest.(check bool)
        (Printf.sprintf "%s L2 MPKI <= %.1f (got %.2f)" e.bench e.l2_mpki_max
           (Pipeline.l2_mpki c))
        true
        (Pipeline.l2_mpki c <= e.l2_mpki_max))

let test_relative_shapes () =
  (* Cross-benchmark orderings the paper's narrative depends on. *)
  let cpi name = Pipeline.cpi (counts_for name) in
  let mpki name = Pipeline.mpki (counts_for name) in
  Alcotest.(check bool) "mcf is the most memory-bound of the int codes" true
    (cpi "429.mcf" > cpi "400.perlbench" && cpi "429.mcf" > cpi "445.gobmk");
  Alcotest.(check bool) "gobmk out-mispredicts the FP codes" true
    (mpki "445.gobmk" > mpki "434.zeusmp" && mpki "445.gobmk" > mpki "416.gamess");
  Alcotest.(check bool) "stream codes barely mispredict" true
    (mpki "470.lbm" < 4.0 && mpki "410.bwaves" < 3.0)

let suite =
  [
    ("workloads.character", List.map case expectations);
    ( "workloads.relative",
      [ Alcotest.test_case "orderings" `Quick test_relative_shapes ] );
  ]
