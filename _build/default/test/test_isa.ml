(* Tests for pi_isa: behaviours, builder lowering, interpreter semantics and
   trace representation. *)

module Behavior = Pi_isa.Behavior
module Program = Pi_isa.Program
module B = Pi_isa.Builder
module Interp = Pi_isa.Interp
module Trace = Pi_isa.Trace
module Int_vec = Pi_isa.Int_vec
module Rng = Pi_stats.Rng

(* ---------------- Behaviours ---------------- *)

let run_behavior ?(resolved_src = [| -1 |]) behavior n =
  let state = Behavior.State.create ~rng:(Rng.create 1) ~resolved_src [| behavior |] in
  List.init n (fun _ -> Behavior.State.next_outcome state 0)

let test_behavior_always_never () =
  Alcotest.(check (list bool)) "always" [ true; true; true ]
    (run_behavior Behavior.Always_taken 3);
  Alcotest.(check (list bool)) "never" [ false; false; false ]
    (run_behavior Behavior.Never_taken 3)

let test_behavior_loop_trip () =
  Alcotest.(check (list bool)) "loop 3 = T T N repeating"
    [ true; true; false; true; true; false ]
    (run_behavior (Behavior.Loop_trip { trips = 3 }) 6)

let test_behavior_periodic () =
  let pattern = [| true; false; false |] in
  Alcotest.(check (list bool)) "periodic"
    [ true; false; false; true; false; false ]
    (run_behavior (Behavior.Periodic { pattern }) 6)

let test_behavior_alternating () =
  Alcotest.(check (list bool)) "alternating" [ true; false; true; false ]
    (run_behavior Behavior.Alternating 4)

let test_behavior_correlated_follows_source () =
  let behaviors =
    [|
      Behavior.Alternating;
      Behavior.Correlated { src = "a"; invert = false; noise = 0.0 };
      Behavior.Correlated { src = "a"; invert = true; noise = 0.0 };
    |]
  in
  let state =
    Behavior.State.create ~rng:(Rng.create 1) ~resolved_src:[| -1; 0; 0 |] behaviors
  in
  for _ = 1 to 5 do
    let src = Behavior.State.next_outcome state 0 in
    let follower = Behavior.State.next_outcome state 1 in
    let inverter = Behavior.State.next_outcome state 2 in
    Alcotest.(check bool) "follows" src follower;
    Alcotest.(check bool) "inverts" (not src) inverter
  done

let test_behavior_bernoulli_frequency () =
  let outcomes = run_behavior (Behavior.Bernoulli { p_taken = 0.8 }) 5000 in
  let taken = List.length (List.filter (fun x -> x) outcomes) in
  Alcotest.(check bool) "near 0.8" true (Float.abs ((float_of_int taken /. 5000.0) -. 0.8) < 0.03)

let test_behavior_validate () =
  Alcotest.(check bool) "bad probability" true
    (Result.is_error (Behavior.validate (Behavior.Bernoulli { p_taken = 1.5 })));
  Alcotest.(check bool) "empty pattern" true
    (Result.is_error (Behavior.validate (Behavior.Periodic { pattern = [||] })));
  Alcotest.(check bool) "zero trips" true
    (Result.is_error (Behavior.validate (Behavior.Loop_trip { trips = 0 })));
  Alcotest.(check bool) "ok" true (Result.is_ok (Behavior.validate Behavior.Always_taken))

let test_loop_pattern () =
  Alcotest.(check (array bool)) "pattern" [| true; true; false |] (Behavior.loop_pattern ~trips:3)

let test_selector_round_robin () =
  let state =
    Behavior.Selector.State.create ~rng:(Rng.create 1) [| (Behavior.Selector.Round_robin, 3) |]
  in
  let picks = List.init 6 (fun _ -> Behavior.Selector.State.next_target state 0) in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 0; 1; 2 ] picks

let test_selector_periodic () =
  let state =
    Behavior.Selector.State.create ~rng:(Rng.create 1)
      [| (Behavior.Selector.Periodic_targets [| 2; 0; 2 |], 3) |]
  in
  let picks = List.init 5 (fun _ -> Behavior.Selector.State.next_target state 0) in
  Alcotest.(check (list int)) "follows sequence" [ 2; 0; 2; 2; 0 ] picks

let test_selector_validate () =
  Alcotest.(check bool) "bad index" true
    (Result.is_error
       (Behavior.Selector.validate ~n_targets:2 (Behavior.Selector.Periodic_targets [| 0; 5 |])));
  Alcotest.(check bool) "no targets" true
    (Result.is_error (Behavior.Selector.validate ~n_targets:0 Behavior.Selector.Round_robin))

(* ---------------- Builder ---------------- *)

let tiny_program ?(trips = 10) () =
  let b = B.create ~name:"tiny" in
  let o = B.add_object b "main.o" in
  let g = B.global b ~name:"data" ~size:4096 in
  let leaf = B.proc b ~obj:o ~name:"leaf" [ B.work 3; B.load_global g (B.seq ~stride:8) ] in
  let main =
    B.proc b ~obj:o ~name:"main"
      [
        B.for_ ~trips
          [
            B.work 2;
            B.if_ Behavior.Alternating [ B.work 1 ] [ B.work 4 ];
            B.call leaf;
          ];
      ]
  in
  B.entry b main;
  B.finish b

let test_builder_structure () =
  let p = tiny_program () in
  Alcotest.(check int) "objects" 1 (Array.length p.Program.objects);
  Alcotest.(check int) "procs" 2 (Array.length p.Program.procs);
  Alcotest.(check int) "branches: loop + if" 2 (Array.length p.Program.branches);
  Alcotest.(check int) "mem ops" 1 (Array.length p.Program.mem_ops);
  Alcotest.(check bool) "validates" true (Result.is_ok (Program.validate p))

let test_builder_requires_entry () =
  let b = B.create ~name:"noentry" in
  let o = B.add_object b "a.o" in
  let _ = B.proc b ~obj:o ~name:"f" [ B.work 1 ] in
  Alcotest.check_raises "no entry" (Invalid_argument "Builder.finish: no entry procedure set")
    (fun () -> ignore (B.finish b))

let test_builder_undefined_proc () =
  let b = B.create ~name:"undef" in
  let o = B.add_object b "a.o" in
  let h = B.declare_proc b ~obj:o ~name:"later" in
  let main = B.proc b ~obj:o ~name:"main" [ B.call h ] in
  B.entry b main;
  Alcotest.check_raises "undefined"
    (Invalid_argument "Builder.finish: procedure 0 declared but not defined") (fun () ->
      ignore (B.finish b))

let test_builder_duplicate_label () =
  let b = B.create ~name:"dup" in
  let o = B.add_object b "a.o" in
  Alcotest.check_raises "duplicate label" (Invalid_argument "Builder: duplicate branch label x")
    (fun () ->
      ignore
        (B.proc b ~obj:o ~name:"main"
           [
             B.if_ ~label:"x" Behavior.Always_taken [ B.work 1 ] [ B.work 1 ];
             B.if_ ~label:"x" Behavior.Always_taken [ B.work 1 ] [ B.work 1 ];
           ]))

let test_builder_unresolved_correlation () =
  let b = B.create ~name:"unres" in
  let o = B.add_object b "a.o" in
  let main =
    B.proc b ~obj:o ~name:"main"
      [
        B.if_
          (Behavior.Correlated { src = "ghost"; invert = false; noise = 0.0 })
          [ B.work 1 ] [ B.work 1 ];
      ]
  in
  B.entry b main;
  Alcotest.check_raises "unresolved"
    (Invalid_argument "Builder.finish: unresolved correlation source ghost") (fun () ->
      ignore (B.finish b))

let test_builder_mutual_recursion_declared () =
  let b = B.create ~name:"mutual" in
  let o = B.add_object b "a.o" in
  let f = B.declare_proc b ~obj:o ~name:"f" in
  let g =
    B.proc b ~obj:o ~name:"g"
      [ B.if_ (Behavior.Loop_trip { trips = 2 }) [ B.call f ] [ B.work 1 ] ]
  in
  B.define_proc b f [ B.work 2 ];
  let main = B.proc b ~obj:o ~name:"main" [ B.call g ] in
  B.entry b main;
  let p = B.finish b in
  Alcotest.(check bool) "validates" true (Result.is_ok (Program.validate p))

let test_block_sizes_positive () =
  let p = tiny_program () in
  Array.iter
    (fun (blk : Program.block) ->
      Alcotest.(check bool) "positive size" true (Program.block_bytes p blk.Program.block_id > 0))
    p.Program.blocks

(* ---------------- Interpreter ---------------- *)

let test_interp_determinism () =
  let p = tiny_program () in
  let t1 = Interp.run ~seed:3 p in
  let t2 = Interp.run ~seed:3 p in
  Alcotest.(check (array int)) "same block sequence" t1.Trace.block_seq t2.Trace.block_seq;
  Alcotest.(check (array int)) "same memory events" t1.Trace.mem_events t2.Trace.mem_events

let test_interp_loop_count () =
  let p = tiny_program ~trips:25 () in
  let trace = Interp.run p in
  Alcotest.(check int) "leaf invoked per iteration" 25 trace.Trace.proc_invocations.(0);
  Alcotest.(check int) "main once" 1 trace.Trace.proc_invocations.(1);
  Alcotest.(check int) "mem ref per iteration" 25 trace.Trace.mem_refs

let test_interp_alternating_split () =
  let p = tiny_program ~trips:20 () in
  let trace = Interp.run p in
  (* 20 loop back-edges (19 taken) + 20 alternating (10 taken). *)
  Alcotest.(check int) "cond branches" 40 trace.Trace.cond_branches;
  Alcotest.(check int) "taken" 29 trace.Trace.taken_branches

let test_interp_instruction_accounting () =
  let p = tiny_program ~trips:7 () in
  let trace = Interp.run p in
  let by_blocks =
    Array.fold_left
      (fun acc b -> acc + Program.block_instr_count p b)
      0 trace.Trace.block_seq
  in
  Alcotest.(check int) "instructions = sum of block counts" by_blocks trace.Trace.instructions

let test_interp_max_blocks () =
  let p = tiny_program ~trips:1000 () in
  let trace = Interp.run ~limits:{ Interp.max_blocks = 50; stop_proc = None } p in
  Alcotest.(check int) "exactly the budget" 50 (Trace.blocks_executed trace)

let test_interp_stop_proc () =
  let p = tiny_program ~trips:1000 () in
  (* leaf is proc 0; stop at its 5th invocation. *)
  let trace =
    Interp.run ~limits:{ Interp.max_blocks = 1_000_000; stop_proc = Some (0, 5) } p
  in
  Alcotest.(check int) "stopped at 5 invocations" 5 trace.Trace.proc_invocations.(0)

let test_branch_outcomes_derivation () =
  let p = tiny_program ~trips:4 () in
  let trace = Interp.run p in
  let outcomes = Trace.branch_outcomes trace in
  Alcotest.(check int) "one record per dynamic branch" trace.Trace.cond_branches
    (Array.length outcomes);
  let taken = Array.fold_left (fun acc (_, t) -> if t then acc + 1 else acc) 0 outcomes in
  Alcotest.(check int) "taken counts agree" trace.Trace.taken_branches taken

let test_trace_pack_roundtrip () =
  let check ~is_store ~space ~target ~obj ~offset =
    let e = Trace.pack_mem ~is_store ~space ~target ~obj ~offset in
    Alcotest.(check bool) "store" is_store (Trace.mem_is_store e);
    Alcotest.(check bool) "space" true (Trace.mem_space e = space);
    Alcotest.(check int) "target" target (Trace.mem_target e);
    Alcotest.(check int) "obj" obj (Trace.mem_obj e);
    Alcotest.(check int) "offset" offset (Trace.mem_offset e)
  in
  check ~is_store:false ~space:Program.Global ~target:0 ~obj:0 ~offset:0;
  check ~is_store:true ~space:Program.Heap ~target:4095 ~obj:(1 lsl 19) ~offset:((1 lsl 28) - 1);
  check ~is_store:false ~space:Program.Heap ~target:7 ~obj:123 ~offset:4096

let prop_pack_roundtrip =
  QCheck.Test.make ~name:"mem event pack roundtrip" ~count:500
    QCheck.(
      quad bool (int_bound 4095) (int_bound ((1 lsl 20) - 1)) (int_bound ((1 lsl 28) - 1)))
    (fun (is_store, target, obj, offset) ->
      let space = if target mod 2 = 0 then Program.Global else Program.Heap in
      let e = Trace.pack_mem ~is_store ~space ~target ~obj ~offset in
      Trace.mem_is_store e = is_store
      && Trace.mem_space e = space
      && Trace.mem_target e = target
      && Trace.mem_obj e = obj
      && Trace.mem_offset e = offset)

let test_chase_is_full_cycle () =
  (* A chase over a heap site must visit every object before repeating. *)
  let b = B.create ~name:"chase" in
  let o = B.add_object b "a.o" in
  let site = B.heap_site b ~name:"nodes" ~obj_size:64 ~count:32 in
  let main = B.proc b ~obj:o ~name:"main" [ B.for_ ~trips:32 [ B.load_heap site (B.chase ~seed:5) ] ] in
  B.entry b main;
  let p = B.finish b in
  let trace = Interp.run p in
  let visited = Array.make 32 false in
  Array.iter (fun e -> visited.(Trace.mem_obj e) <- true) trace.Trace.mem_events;
  Alcotest.(check bool) "all nodes visited in one lap" true (Array.for_all (fun x -> x) visited)

let test_sequential_wraps () =
  let b = B.create ~name:"seqwrap" in
  let o = B.add_object b "a.o" in
  let g = B.global b ~name:"buf" ~size:64 in
  let main = B.proc b ~obj:o ~name:"main" [ B.for_ ~trips:20 [ B.load_global g (B.seq ~stride:16) ] ] in
  B.entry b main;
  let p = B.finish b in
  let trace = Interp.run p in
  Array.iter
    (fun e -> Alcotest.(check bool) "offset within object" true (Trace.mem_offset e < 64))
    trace.Trace.mem_events

let test_int_vec () =
  let v = Int_vec.create ~capacity:2 () in
  for i = 0 to 99 do
    Int_vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Int_vec.length v);
  Alcotest.(check int) "get" 57 (Int_vec.get v 57);
  Alcotest.(check int) "to_array" 99 (Int_vec.to_array v).(99);
  Alcotest.check_raises "bounds" (Invalid_argument "Int_vec.get: out of bounds") (fun () ->
      ignore (Int_vec.get v 100))

let test_validate_catches_bad_branch_target () =
  let p = tiny_program () in
  (* Corrupt a branch target to point into the other procedure. *)
  let victim =
    Array.to_list (Array.to_seq p.Program.blocks |> Array.of_seq)
    |> List.find_map (fun (blk : Program.block) ->
           match blk.Program.term with
           | Program.Branch { branch; taken = _; not_taken } ->
               Some (blk, branch, not_taken)
           | _ -> None)
  in
  match victim with
  | None -> Alcotest.fail "expected a branch"
  | Some (blk, branch, not_taken) ->
      let foreign =
        let other_proc = if blk.Program.proc = 0 then 1 else 0 in
        p.Program.procs.(other_proc).Program.entry
      in
      let blocks = Array.copy p.Program.blocks in
      blocks.(blk.Program.block_id) <-
        { blk with Program.term = Program.Branch { branch; taken = foreign; not_taken } };
      let corrupted = { p with Program.blocks } in
      Alcotest.(check bool) "rejected" true (Result.is_error (Program.validate corrupted))

let qcheck t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "isa.behavior",
      [
        Alcotest.test_case "always / never" `Quick test_behavior_always_never;
        Alcotest.test_case "loop trip" `Quick test_behavior_loop_trip;
        Alcotest.test_case "periodic" `Quick test_behavior_periodic;
        Alcotest.test_case "alternating" `Quick test_behavior_alternating;
        Alcotest.test_case "correlated" `Quick test_behavior_correlated_follows_source;
        Alcotest.test_case "bernoulli frequency" `Quick test_behavior_bernoulli_frequency;
        Alcotest.test_case "validate" `Quick test_behavior_validate;
        Alcotest.test_case "loop pattern" `Quick test_loop_pattern;
        Alcotest.test_case "selector round robin" `Quick test_selector_round_robin;
        Alcotest.test_case "selector periodic" `Quick test_selector_periodic;
        Alcotest.test_case "selector validate" `Quick test_selector_validate;
      ] );
    ( "isa.builder",
      [
        Alcotest.test_case "structure" `Quick test_builder_structure;
        Alcotest.test_case "requires entry" `Quick test_builder_requires_entry;
        Alcotest.test_case "undefined proc" `Quick test_builder_undefined_proc;
        Alcotest.test_case "duplicate label" `Quick test_builder_duplicate_label;
        Alcotest.test_case "unresolved correlation" `Quick test_builder_unresolved_correlation;
        Alcotest.test_case "forward declaration" `Quick test_builder_mutual_recursion_declared;
        Alcotest.test_case "block sizes positive" `Quick test_block_sizes_positive;
        Alcotest.test_case "validate catches bad target" `Quick test_validate_catches_bad_branch_target;
      ] );
    ( "isa.interp",
      [
        Alcotest.test_case "determinism" `Quick test_interp_determinism;
        Alcotest.test_case "loop count" `Quick test_interp_loop_count;
        Alcotest.test_case "alternating split" `Quick test_interp_alternating_split;
        Alcotest.test_case "instruction accounting" `Quick test_interp_instruction_accounting;
        Alcotest.test_case "max blocks" `Quick test_interp_max_blocks;
        Alcotest.test_case "stop proc" `Quick test_interp_stop_proc;
        Alcotest.test_case "branch outcomes" `Quick test_branch_outcomes_derivation;
        Alcotest.test_case "chase full cycle" `Quick test_chase_is_full_cycle;
        Alcotest.test_case "sequential wraps" `Quick test_sequential_wraps;
      ] );
    ( "isa.trace",
      [
        Alcotest.test_case "pack roundtrip" `Quick test_trace_pack_roundtrip;
        qcheck prop_pack_roundtrip;
        Alcotest.test_case "int vec" `Quick test_int_vec;
      ] );
  ]

(* ---------------- Phases / SimPoint ---------------- *)

module Phases = Pi_isa.Phases

let phase_trace () =
  let b = B.create ~name:"phasey" in
  let o = B.add_object b "a.o" in
  let g = B.global b ~name:"buf" ~size:(16 * 1024) in
  (* Two very different phases, alternating at coarse granularity. *)
  let compute = B.proc b ~obj:o ~name:"compute" [ B.for_ ~trips:400 [ B.work 8 ] ] in
  let memory =
    B.proc b ~obj:o ~name:"memory"
      [ B.for_ ~trips:400 [ B.load_global g (B.seq ~stride:64); B.work 1 ] ]
  in
  let main =
    B.proc b ~obj:o ~name:"main"
      [ B.for_ ~trips:30 [ B.call compute; B.call memory ] ]
  in
  B.entry b main;
  Interp.run (B.finish b)

let test_phases_intervals_cover_trace () =
  let trace = phase_trace () in
  let ivs = Phases.intervals trace ~interval_blocks:1000 in
  let total = Array.fold_left (fun acc iv -> acc + iv.Phases.length) 0 ivs in
  Alcotest.(check int) "intervals cover every block" (Trace.blocks_executed trace) total;
  Array.iter
    (fun iv ->
      let norm =
        sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 iv.Phases.signature)
      in
      Alcotest.(check bool) "signature normalized" true (Float.abs (norm -. 1.0) < 1e-9))
    ivs

let test_phases_choose_weights () =
  let trace = phase_trace () in
  let ivs = Phases.intervals trace ~interval_blocks:800 in
  let sp = Phases.choose ~k:3 ~seed:5 ivs in
  let weight_sum = Array.fold_left ( +. ) 0.0 sp.Phases.weights in
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 weight_sum;
  Alcotest.(check bool) "representatives are interval indices" true
    (Array.for_all (fun r -> r >= 0 && r < Array.length ivs) sp.Phases.representatives);
  Alcotest.(check int) "every interval assigned" (Array.length ivs)
    (Array.length sp.Phases.assignment)

let test_phases_slice_consistency () =
  let trace = phase_trace () in
  let sub = Phases.slice trace ~start_block:500 ~length:700 in
  Alcotest.(check int) "length" 700 (Trace.blocks_executed sub);
  (* Instructions of the slice equal the static sum over its blocks. *)
  let by_blocks =
    Array.fold_left
      (fun acc b -> acc + Program.block_instr_count trace.Trace.program b)
      0 sub.Trace.block_seq
  in
  Alcotest.(check int) "instructions re-derived" by_blocks sub.Trace.instructions;
  (* Slices partition memory events: adjacent slices share no events and
     concatenate to the original stream. *)
  let a = Phases.slice trace ~start_block:0 ~length:500 in
  let b = Phases.slice trace ~start_block:500 ~length:(Trace.blocks_executed trace - 500) in
  Alcotest.(check int) "mem events partition"
    (Array.length trace.Trace.mem_events)
    (Array.length a.Trace.mem_events + Array.length b.Trace.mem_events)

let test_phases_estimate_accuracy () =
  (* On a fast-warming workload the simpoint estimate must track the full
     simulation closely. *)
  let trace = phase_trace () in
  let placement = Pi_layout.Placement.natural trace.Trace.program in
  let metric t ~warmup_blocks =
    Pi_uarch.Pipeline.cpi
      (Pi_uarch.Pipeline.run ~warmup_blocks Pi_uarch.Machine.xeon_e5440 t placement)
  in
  (* Compare steady states: warm the full run past its cold transient, and
     give each representative slice enough prepended warmup to cover a full
     sweep of the buffer. *)
  let full = metric trace ~warmup_blocks:6_000 in
  let estimate =
    Phases.estimate metric trace ~interval_blocks:2_000 ~warmup_blocks:8_000 ~k:4 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "simpoint %.4f within 12%% of full %.4f" estimate full)
    true
    (Float.abs (estimate -. full) /. full < 0.12)

let phases_cases =
  ( "isa.phases",
    [
      Alcotest.test_case "intervals cover trace" `Quick test_phases_intervals_cover_trace;
      Alcotest.test_case "choose weights" `Quick test_phases_choose_weights;
      Alcotest.test_case "slice consistency" `Quick test_phases_slice_consistency;
      Alcotest.test_case "estimate accuracy" `Quick test_phases_estimate_accuracy;
    ] )

let suite = suite @ [ phases_cases ]
