test/test_extensions.ml: Alcotest Array Filename Fun Interferometry Lazy List Pi_isa Pi_layout Pi_stats Pi_uarch Pi_workloads Printf Sys
