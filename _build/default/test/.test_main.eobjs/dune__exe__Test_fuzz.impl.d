test/test_fuzz.ml: Array List Pi_isa Pi_layout Pi_stats Pi_uarch Printf QCheck QCheck_alcotest Result
