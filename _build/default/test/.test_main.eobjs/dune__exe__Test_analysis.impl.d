test/test_analysis.ml: Alcotest Array Filename Float Fun Interferometry List Option Pi_stats Pi_workloads Printf String Sys
