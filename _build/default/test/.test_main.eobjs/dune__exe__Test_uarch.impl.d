test/test_uarch.ml: Alcotest Array Float Interferometry List Pi_isa Pi_layout Pi_stats Pi_uarch Pi_workloads Printf QCheck QCheck_alcotest
