test/test_plot.ml: Alcotest Array List Pi_plot Pi_stats String
