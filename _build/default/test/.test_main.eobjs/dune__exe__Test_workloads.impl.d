test/test_workloads.ml: Alcotest Array Interferometry List Pi_isa Pi_uarch Pi_workloads Result
