test/test_predictors.ml: Alcotest Array List Pi_uarch Printf
