test/test_core.ml: Alcotest Array Float Hashtbl Interferometry List Pi_isa Pi_stats Pi_uarch Pi_workloads Printf String
