test/test_isa.ml: Alcotest Array Float List Pi_isa Pi_layout Pi_stats Pi_uarch Printf QCheck QCheck_alcotest Result
