test/test_layout.ml: Alcotest Array Float List Option Pi_isa Pi_layout QCheck QCheck_alcotest
