test/test_pin.ml: Alcotest Array List Pi_layout Pi_pin Pi_uarch Pi_workloads
