test/test_reproduction.ml: Alcotest Hashtbl Interferometry List Pi_layout Pi_stats Pi_uarch Pi_workloads Printf
