test/test_stats.ml: Alcotest Array Float List Pi_stats QCheck QCheck_alcotest
