test/test_characters.ml: Alcotest Hashtbl Interferometry List Pi_uarch Pi_workloads Printf
