(* Tests for pi_stats: RNG, descriptive statistics, distributions,
   correlation, regression, matrices, KDE. Reference values for the
   distribution quantiles come from standard statistical tables. *)

module Rng = Pi_stats.Rng
module D = Pi_stats.Descriptive
module Dist = Pi_stats.Distributions
module Corr = Pi_stats.Correlation
module Linreg = Pi_stats.Linreg
module Matrix = Pi_stats.Matrix
module Multireg = Pi_stats.Multireg
module Density = Pi_stats.Density

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* ---------------- RNG ---------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_named_stream_stable () =
  let a = Rng.named_stream (Rng.create 5) "alpha" in
  let b = Rng.named_stream (Rng.create 5) "alpha" in
  let c = Rng.named_stream (Rng.create 5) "beta" in
  Alcotest.(check int64) "same name same stream" (Rng.bits64 a) (Rng.bits64 b);
  Alcotest.(check bool) "different name differs" true (Rng.bits64 (Rng.copy c) <> Rng.bits64 b)

let test_rng_named_stream_does_not_advance () =
  let base = Rng.create 9 in
  let _ = Rng.named_stream base "x" in
  let after = Rng.bits64 base in
  let fresh = Rng.create 9 in
  Alcotest.(check int64) "base unperturbed" (Rng.bits64 fresh) after

let test_rng_split_decorrelates () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs from parent" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create 11 in
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  Alcotest.(check int64) "copy replays" va vb

let test_rng_bernoulli_frequency () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "freq near 0.3" true (Float.abs (freq -. 0.3) < 0.02)

let test_rng_gaussian_moments () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (Float.abs (D.mean xs) < 0.03);
  Alcotest.(check bool) "sd near 1" true (Float.abs (D.stddev xs -. 1.0) < 0.03)

let test_rng_exponential_mean () =
  let rng = Rng.create 19 in
  let xs = Array.init 20_000 (fun _ -> Rng.exponential rng ~mean:5.0) in
  Alcotest.(check bool) "mean near 5" true (Float.abs (D.mean xs -. 5.0) < 0.2)

let test_rng_permutation_is_bijection () =
  let rng = Rng.create 23 in
  let p = Rng.permutation rng 50 in
  let seen = Array.make 50 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "all elements present" true (Array.for_all (fun b -> b) seen)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      let b = Array.copy a in
      Rng.shuffle_in_place (Rng.create seed) b;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

(* ---------------- Descriptive ---------------- *)

let test_mean_median () =
  check_float "mean" 3.0 (D.mean [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "median odd" 3.0 (D.median [| 5.0; 1.0; 3.0; 2.0; 4.0 |]);
  check_float "median even" 2.5 (D.median [| 4.0; 1.0; 3.0; 2.0 |])

let test_variance () =
  check_float "sample variance" 2.5 (D.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "stddev" (sqrt 2.5) (D.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_quantile_interpolation () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "q0" 10.0 (D.quantile xs 0.0);
  check_float "q1" 40.0 (D.quantile xs 1.0);
  check_float "q50" 25.0 (D.quantile xs 0.5);
  check_float "q25" 17.5 (D.quantile xs 0.25)

let test_min_max () =
  let lo, hi = D.min_max [| 3.0; -1.0; 7.0; 2.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

let test_percent_difference () =
  let ds = D.percent_difference_from_mean [| 90.0; 110.0 |] in
  check_float "below" (-10.0) ds.(0);
  check_float "above" 10.0 ds.(1)

let test_empty_raises () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Descriptive.mean: empty sample")
    (fun () -> ignore (D.mean [||]));
  Alcotest.check_raises "variance needs 2"
    (Invalid_argument "Descriptive.variance: need >= 2 points") (fun () ->
      ignore (D.variance [| 1.0 |]))

let test_summarize () =
  let s = D.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "n" 4 s.D.n;
  check_float "mean" 2.5 s.D.mean;
  check_float "min" 1.0 s.D.min;
  check_float "max" 4.0 s.D.max

(* ---------------- Distributions ---------------- *)

let test_log_gamma () =
  check_close 1e-10 "ln(gamma(5)) = ln 24" (log 24.0) (Dist.log_gamma 5.0);
  check_close 1e-10 "ln(gamma(1)) = 0" 0.0 (Dist.log_gamma 1.0);
  check_close 1e-8 "gamma(0.5) = sqrt(pi)" (log (sqrt Float.pi)) (Dist.log_gamma 0.5)

let test_incomplete_beta () =
  check_close 1e-10 "I_0 = 0" 0.0 (Dist.regularized_incomplete_beta ~a:2.0 ~b:3.0 ~x:0.0);
  check_close 1e-10 "I_1 = 1" 1.0 (Dist.regularized_incomplete_beta ~a:2.0 ~b:3.0 ~x:1.0);
  (* I_x(1,1) = x *)
  check_close 1e-10 "uniform case" 0.37 (Dist.regularized_incomplete_beta ~a:1.0 ~b:1.0 ~x:0.37);
  (* symmetry: I_x(a,b) = 1 - I_{1-x}(b,a) *)
  let v = Dist.regularized_incomplete_beta ~a:2.5 ~b:4.0 ~x:0.3 in
  let w = Dist.regularized_incomplete_beta ~a:4.0 ~b:2.5 ~x:0.7 in
  check_close 1e-10 "symmetry" 1.0 (v +. w)

let test_lower_gamma () =
  (* P(1, x) = 1 - e^-x *)
  check_close 1e-10 "P(1,1)" (1.0 -. exp (-1.0)) (Dist.regularized_lower_gamma ~a:1.0 ~x:1.0);
  check_close 1e-10 "P(1,2)" (1.0 -. exp (-2.0)) (Dist.regularized_lower_gamma ~a:1.0 ~x:2.0)

let test_normal () =
  check_close 1e-10 "cdf(0)" 0.5 (Dist.Normal.cdf 0.0);
  check_close 1e-5 "cdf(1.96)" 0.9750021 (Dist.Normal.cdf 1.959964);
  check_close 1e-6 "quantile(0.975)" 1.959964 (Dist.Normal.quantile 0.975);
  check_close 1e-6 "quantile(0.5)" 0.0 (Dist.Normal.quantile 0.5);
  check_close 1e-9 "pdf(0)" (1.0 /. sqrt (2.0 *. Float.pi)) (Dist.Normal.pdf 0.0)

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p -> check_close 1e-8 "roundtrip" p (Dist.Normal.cdf (Dist.Normal.quantile p)))
    [ 0.001; 0.025; 0.2; 0.5; 0.8; 0.975; 0.999 ]

let test_student_t_table () =
  (* Classic two-tailed 5% critical values. *)
  check_close 1e-3 "t(0.975, 1)" 12.7062 (Dist.Student_t.quantile ~df:1.0 0.975);
  check_close 1e-4 "t(0.975, 10)" 2.2281 (Dist.Student_t.quantile ~df:10.0 0.975);
  check_close 1e-4 "t(0.975, 30)" 2.0423 (Dist.Student_t.quantile ~df:30.0 0.975);
  check_close 1e-4 "t(0.95, 5)" 2.0150 (Dist.Student_t.quantile ~df:5.0 0.95);
  check_close 1e-4 "t(0.975, 98)" 1.9845 (Dist.Student_t.quantile ~df:98.0 0.975)

let test_student_t_symmetry () =
  check_close 1e-10 "cdf(0) = 0.5" 0.5 (Dist.Student_t.cdf ~df:7.0 0.0);
  let p = Dist.Student_t.cdf ~df:7.0 1.3 in
  let q = Dist.Student_t.cdf ~df:7.0 (-1.3) in
  check_close 1e-10 "symmetric" 1.0 (p +. q)

let test_student_t_two_sided () =
  (* p-value of |t|=2.2281 at df=10 should be 0.05. *)
  check_close 1e-4 "two sided p" 0.05 (Dist.Student_t.two_sided_p ~df:10.0 2.2281)

let test_f_distribution () =
  (* F(0.95; 1, 10) = 4.9646 -> survival at that point = 0.05. *)
  check_close 1e-3 "F crit 1,10" 0.05 (Dist.F_dist.survival ~df1:1.0 ~df2:10.0 4.9646);
  check_close 1e-3 "F crit 3,96" 0.05 (Dist.F_dist.survival ~df1:3.0 ~df2:96.0 2.699);
  check_close 1e-10 "cdf(0) = 0" 0.0 (Dist.F_dist.cdf ~df1:2.0 ~df2:5.0 0.0)

let test_chi2 () =
  (* Chi2 with df=2 is exponential(2): cdf(x) = 1 - e^{-x/2}. *)
  check_close 1e-9 "chi2 df2" (1.0 -. exp (-1.0)) (Dist.Chi2.cdf ~df:2.0 2.0)

(* ---------------- Correlation ---------------- *)

let test_pearson_perfect () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  check_close 1e-12 "perfect positive" 1.0 (Corr.pearson_r xs ys);
  let zs = Array.map (fun x -> 5.0 -. x) xs in
  check_close 1e-12 "perfect negative" (-1.0) (Corr.pearson_r xs zs)

let test_pearson_constant_is_zero () =
  check_float "constant" 0.0 (Corr.pearson_r [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |])

let test_correlation_t_test_strong () =
  let xs = Array.init 30 (fun i -> float_of_int i) in
  let rng = Rng.create 3 in
  let ys = Array.map (fun x -> x +. (0.5 *. Rng.gaussian rng)) xs in
  let r = Corr.correlation_t_test xs ys in
  Alcotest.(check bool) "significant" true r.Corr.significant;
  Alcotest.(check int) "df" 28 r.Corr.degrees_of_freedom

let test_correlation_t_test_noise () =
  let rng = Rng.create 4 in
  let xs = Array.init 30 (fun _ -> Rng.gaussian rng) in
  let ys = Array.init 30 (fun _ -> Rng.gaussian rng) in
  let r = Corr.correlation_t_test xs ys in
  Alcotest.(check bool) "p reasonably large" true (r.Corr.p_value > 0.01)

let test_r_squared_known () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  let ys = [| 2.0; 4.0; 6.0 |] in
  check_close 1e-12 "r2 of exact line" 1.0 (Corr.r_squared xs ys)

(* ---------------- Linear regression ---------------- *)

let test_linreg_exact () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> (3.0 *. x) +. 7.0) xs in
  let m = Linreg.fit xs ys in
  check_close 1e-10 "slope" 3.0 m.Linreg.slope;
  check_close 1e-10 "intercept" 7.0 m.Linreg.intercept;
  check_close 1e-10 "r2" 1.0 m.Linreg.r_squared;
  check_close 1e-10 "predict" 22.0 (Linreg.predict m 5.0)

let test_linreg_known_se () =
  (* Textbook example: x = 1..5, y = (2,4,5,4,5): slope 0.6, intercept 2.2. *)
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let ys = [| 2.0; 4.0; 5.0; 4.0; 5.0 |] in
  let m = Linreg.fit xs ys in
  check_close 1e-10 "slope" 0.6 m.Linreg.slope;
  check_close 1e-10 "intercept" 2.2 m.Linreg.intercept;
  (* residuals (-0.8, 0.6, 1.0, -0.6, -0.2): SS = 2.4, s^2 = 2.4/3 *)
  check_close 1e-9 "residual s" (sqrt (2.4 /. 3.0)) m.Linreg.residual_standard_error

let test_linreg_intervals_nested () =
  let rng = Rng.create 5 in
  let xs = Array.init 40 (fun i -> float_of_int i /. 4.0) in
  let ys = Array.map (fun x -> (1.5 *. x) +. 2.0 +. Rng.gaussian rng) xs in
  let m = Linreg.fit xs ys in
  List.iter
    (fun x0 ->
      let ci = Linreg.confidence_interval m x0 in
      let pi = Linreg.prediction_interval m x0 in
      Alcotest.(check bool) "PI wider than CI" true
        (pi.Linreg.upper -. pi.Linreg.lower > ci.Linreg.upper -. ci.Linreg.lower);
      Alcotest.(check bool) "CI contains estimate" true
        (ci.Linreg.lower <= ci.Linreg.estimate && ci.Linreg.estimate <= ci.Linreg.upper))
    [ 0.0; 5.0; 10.0 ]

let test_linreg_interval_widens_away_from_mean () =
  let rng = Rng.create 6 in
  let xs = Array.init 40 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> x +. Rng.gaussian rng) xs in
  let m = Linreg.fit xs ys in
  let at_mean = Linreg.confidence_interval m m.Linreg.x_mean in
  let far = Linreg.confidence_interval m (m.Linreg.x_mean +. 30.0) in
  Alcotest.(check bool) "wider far from mean" true
    (far.Linreg.upper -. far.Linreg.lower > at_mean.Linreg.upper -. at_mean.Linreg.lower)

let test_linreg_degenerate_x () =
  Alcotest.check_raises "constant x" (Invalid_argument "Linreg.fit: degenerate x (zero variance)")
    (fun () -> ignore (Linreg.fit [| 2.0; 2.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_linreg_slope_test () =
  let rng = Rng.create 7 in
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> (0.5 *. x) +. Rng.gaussian rng) xs in
  let _, significant = Linreg.slope_t_test (Linreg.fit xs ys) in
  Alcotest.(check bool) "clear slope significant" true significant

let prop_linreg_recovers_slope =
  QCheck.Test.make ~name:"linreg recovers slope within noise" ~count:50
    QCheck.(pair (int_range 1 10_000) (float_range (-5.0) 5.0))
    (fun (seed, slope) ->
      let rng = Rng.create seed in
      let xs = Array.init 60 (fun i -> float_of_int i /. 3.0) in
      let ys = Array.map (fun x -> (slope *. x) +. 1.0 +. (0.1 *. Rng.gaussian rng)) xs in
      let m = Linreg.fit xs ys in
      Float.abs (m.Linreg.slope -. slope) < 0.05)

let prop_prediction_interval_coverage =
  (* With gaussian noise, ~95% of fresh observations fall inside the 95% PI.
     Over 40 trials x 20 points, the hit rate should be at least 85%. *)
  QCheck.Test.make ~name:"95% prediction interval covers ~95%" ~count:10
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let inside = ref 0 and total = ref 0 in
      for _ = 1 to 40 do
        let xs = Array.init 30 (fun i -> float_of_int i) in
        let noise () = Rng.gaussian rng in
        let ys = Array.map (fun x -> (0.7 *. x) +. 3.0 +. noise ()) xs in
        let m = Linreg.fit xs ys in
        for k = 0 to 19 do
          let x0 = float_of_int k +. 0.5 in
          let y0 = (0.7 *. x0) +. 3.0 +. noise () in
          let pi = Linreg.prediction_interval m x0 in
          incr total;
          if y0 >= pi.Linreg.lower && y0 <= pi.Linreg.upper then incr inside
        done
      done;
      float_of_int !inside /. float_of_int !total > 0.85)

(* ---------------- Matrix & multiple regression ---------------- *)

let test_matrix_solve () =
  let a = Matrix.of_rows [| [| 4.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Matrix.solve_spd a [| 1.0; 2.0 |] in
  check_close 1e-10 "x0" (1.0 /. 11.0) x.(0);
  check_close 1e-10 "x1" (7.0 /. 11.0) x.(1)

let test_matrix_inverse () =
  let a = Matrix.of_rows [| [| 5.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  let inv = Matrix.inverse_spd a in
  let prod = Matrix.mul a inv in
  for i = 0 to 1 do
    for j = 0 to 1 do
      check_close 1e-10 "identity" (if i = j then 1.0 else 0.0) (Matrix.get prod i j)
    done
  done

let test_matrix_not_pd () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "not PD" (Failure "Matrix.cholesky: not positive definite") (fun () ->
      ignore (Matrix.cholesky a))

let test_matrix_transpose_mul () =
  let a = Matrix.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let at = Matrix.transpose a in
  Alcotest.(check int) "rows" 3 (Matrix.rows at);
  Alcotest.(check int) "cols" 2 (Matrix.cols at);
  let v = Matrix.mul_vec a [| 1.0; 1.0; 1.0 |] in
  check_close 1e-12 "mul_vec" 6.0 v.(0);
  check_close 1e-12 "mul_vec" 15.0 v.(1)

let test_multireg_exact () =
  let rng = Rng.create 8 in
  let xs =
    Array.init 40 (fun _ -> [| Rng.float rng 10.0; Rng.float rng 5.0 |])
  in
  let ys = Array.map (fun row -> 1.0 +. (2.0 *. row.(0)) +. (3.0 *. row.(1))) xs in
  let m = Multireg.fit xs ys in
  check_close 1e-6 "intercept" 1.0 m.Multireg.intercept;
  check_close 1e-6 "b1" 2.0 m.Multireg.coefficients.(0);
  check_close 1e-6 "b2" 3.0 m.Multireg.coefficients.(1);
  Alcotest.(check bool) "r2 ~ 1" true (m.Multireg.r_squared > 0.999999);
  Alcotest.(check bool) "F significant" true (Multireg.significant m)

let test_multireg_noise_not_significant () =
  let rng = Rng.create 9 in
  let xs = Array.init 30 (fun _ -> [| Rng.gaussian rng; Rng.gaussian rng |]) in
  let ys = Array.init 30 (fun _ -> Rng.gaussian rng) in
  let m = Multireg.fit xs ys in
  Alcotest.(check bool) "pure noise mostly not significant" true (m.Multireg.f_p_value > 0.001)

let test_multireg_predict () =
  let xs = Array.init 20 (fun i -> [| float_of_int i; float_of_int (i * i) |]) in
  let ys = Array.map (fun row -> 4.0 +. row.(0) -. (0.5 *. row.(1))) xs in
  let m = Multireg.fit xs ys in
  check_close 1e-6 "predict" (4.0 +. 3.0 -. 4.5) (Multireg.predict m [| 3.0; 9.0 |])

let test_multireg_arity_errors () =
  Alcotest.check_raises "need n > k+1" (Invalid_argument "Multireg.fit: need n > k + 1")
    (fun () -> ignore (Multireg.fit [| [| 1.0 |]; [| 2.0 |] |] [| 1.0; 2.0 |]))

(* ---------------- Density ---------------- *)

let test_density_integrates_to_one () =
  let rng = Rng.create 10 in
  let xs = Array.init 200 (fun _ -> Rng.gaussian rng) in
  let kde = Density.fit xs in
  let curve = Density.curve kde ~points:400 ~lo:(-6.0) ~hi:6.0 () in
  let integral = ref 0.0 in
  for i = 0 to Array.length curve - 2 do
    let x0, y0 = curve.(i) and x1, y1 = curve.(i + 1) in
    integral := !integral +. ((x1 -. x0) *. (y0 +. y1) /. 2.0)
  done;
  Alcotest.(check bool) "integral near 1" true (Float.abs (!integral -. 1.0) < 0.02)

let test_density_peak_near_mode () =
  let xs = Array.init 100 (fun i -> if i < 50 then 0.0 else 0.2) in
  let kde = Density.fit xs in
  Alcotest.(check bool) "density at mode > density far away" true
    (Density.evaluate kde 0.1 > Density.evaluate kde 3.0)

let test_density_constant_sample () =
  let kde = Density.fit [| 5.0; 5.0; 5.0; 5.0 |] in
  Alcotest.(check bool) "bandwidth positive" true (Density.bandwidth kde > 0.0);
  Alcotest.(check bool) "evaluates" true (Density.evaluate kde 5.0 > 0.0)

let test_density_bandwidth_override () =
  let kde = Density.fit ~bandwidth:0.5 [| 0.0; 1.0 |] in
  check_float "explicit bandwidth" 0.5 (Density.bandwidth kde)

let qcheck t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "stats.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "named stream stable" `Quick test_rng_named_stream_stable;
        Alcotest.test_case "named stream pure" `Quick test_rng_named_stream_does_not_advance;
        Alcotest.test_case "split decorrelates" `Quick test_rng_split_decorrelates;
        Alcotest.test_case "copy replays" `Quick test_rng_copy_independent;
        Alcotest.test_case "bernoulli frequency" `Quick test_rng_bernoulli_frequency;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "permutation bijection" `Quick test_rng_permutation_is_bijection;
        qcheck prop_shuffle_preserves_multiset;
      ] );
    ( "stats.descriptive",
      [
        Alcotest.test_case "mean median" `Quick test_mean_median;
        Alcotest.test_case "variance" `Quick test_variance;
        Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
        Alcotest.test_case "min max" `Quick test_min_max;
        Alcotest.test_case "percent difference" `Quick test_percent_difference;
        Alcotest.test_case "empty raises" `Quick test_empty_raises;
        Alcotest.test_case "summarize" `Quick test_summarize;
      ] );
    ( "stats.distributions",
      [
        Alcotest.test_case "log gamma" `Quick test_log_gamma;
        Alcotest.test_case "incomplete beta" `Quick test_incomplete_beta;
        Alcotest.test_case "lower gamma" `Quick test_lower_gamma;
        Alcotest.test_case "normal" `Quick test_normal;
        Alcotest.test_case "normal quantile roundtrip" `Quick test_normal_quantile_roundtrip;
        Alcotest.test_case "student t table" `Quick test_student_t_table;
        Alcotest.test_case "student t symmetry" `Quick test_student_t_symmetry;
        Alcotest.test_case "student t two-sided" `Quick test_student_t_two_sided;
        Alcotest.test_case "F distribution" `Quick test_f_distribution;
        Alcotest.test_case "chi2" `Quick test_chi2;
      ] );
    ( "stats.correlation",
      [
        Alcotest.test_case "perfect correlation" `Quick test_pearson_perfect;
        Alcotest.test_case "constant is zero" `Quick test_pearson_constant_is_zero;
        Alcotest.test_case "t-test strong signal" `Quick test_correlation_t_test_strong;
        Alcotest.test_case "t-test noise" `Quick test_correlation_t_test_noise;
        Alcotest.test_case "r squared" `Quick test_r_squared_known;
      ] );
    ( "stats.linreg",
      [
        Alcotest.test_case "exact fit" `Quick test_linreg_exact;
        Alcotest.test_case "textbook standard errors" `Quick test_linreg_known_se;
        Alcotest.test_case "intervals nested" `Quick test_linreg_intervals_nested;
        Alcotest.test_case "interval widens from mean" `Quick test_linreg_interval_widens_away_from_mean;
        Alcotest.test_case "degenerate x" `Quick test_linreg_degenerate_x;
        Alcotest.test_case "slope t-test" `Quick test_linreg_slope_test;
        qcheck prop_linreg_recovers_slope;
        qcheck prop_prediction_interval_coverage;
      ] );
    ( "stats.matrix",
      [
        Alcotest.test_case "solve SPD" `Quick test_matrix_solve;
        Alcotest.test_case "inverse SPD" `Quick test_matrix_inverse;
        Alcotest.test_case "not PD rejected" `Quick test_matrix_not_pd;
        Alcotest.test_case "transpose / mul_vec" `Quick test_matrix_transpose_mul;
      ] );
    ( "stats.multireg",
      [
        Alcotest.test_case "exact recovery" `Quick test_multireg_exact;
        Alcotest.test_case "noise not significant" `Quick test_multireg_noise_not_significant;
        Alcotest.test_case "predict" `Quick test_multireg_predict;
        Alcotest.test_case "arity errors" `Quick test_multireg_arity_errors;
      ] );
    ( "stats.density",
      [
        Alcotest.test_case "integrates to one" `Quick test_density_integrates_to_one;
        Alcotest.test_case "peak near mode" `Quick test_density_peak_near_mode;
        Alcotest.test_case "constant sample" `Quick test_density_constant_sample;
        Alcotest.test_case "bandwidth override" `Quick test_density_bandwidth_override;
      ] );
  ]
