(* Tests for the benchmark stand-ins: every generator builds a valid
   program, runs, and has the character its paper counterpart needs. *)

module Spec = Pi_workloads.Spec
module Bench = Pi_workloads.Bench
module Program = Pi_isa.Program
module Trace = Pi_isa.Trace
module Interp = Pi_isa.Interp

let all = Spec.everything ()

let test_registry_sizes () =
  Alcotest.(check int) "23 CPU2006 benchmarks" 23 (List.length (Spec.all_2006 ()));
  Alcotest.(check int) "20 Table-1 benchmarks" 20 (List.length (Spec.table1_2006 ()));
  Alcotest.(check int) "31 in the simulator study" 31 (List.length (Spec.simulation_suite ()));
  Alcotest.(check int) "6 extended stand-ins" 6 (List.length (Spec.extended_2000 ()));
  Alcotest.(check int) "37 total" 37 (List.length all)

let test_registry_names_unique () =
  let names = Spec.names all in
  Alcotest.(check int) "unique" (List.length names) (List.length (List.sort_uniq compare names))

let test_registry_find () =
  let b = Spec.find "429.mcf" in
  Alcotest.(check string) "found" "429.mcf" b.Bench.name;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Spec.find "999.nope"))

let test_expected_significance_population () =
  let insignificant =
    List.filter (fun (b : Bench.t) -> not b.Bench.expect_significant) (Spec.all_2006 ())
  in
  Alcotest.(check (list string)) "exactly the three stream codes"
    [ "410.bwaves"; "433.milc"; "470.lbm" ]
    (List.sort compare (Spec.names insignificant))

let test_table1_all_expected_significant () =
  List.iter
    (fun (b : Bench.t) ->
      Alcotest.(check bool) (b.Bench.name ^ " expected significant") true
        b.Bench.expect_significant)
    (Spec.table1_2006 ())

(* Every benchmark builds a valid program. Generation is cheap; validation
   runs inside Builder.finish, and we re-check explicitly. *)
let test_all_build_and_validate () =
  List.iter
    (fun (b : Bench.t) ->
      let p = b.Bench.build ~scale:1 in
      Alcotest.(check bool) (b.Bench.name ^ " validates") true
        (Result.is_ok (Program.validate p));
      Alcotest.(check bool)
        (b.Bench.name ^ " has multiple objects to reorder")
        true
        (Array.length p.Program.objects >= 2);
      Alcotest.(check bool)
        (b.Bench.name ^ " has static branches")
        true
        (Program.static_branch_count p >= 3))
    all

let test_build_deterministic () =
  List.iter
    (fun (b : Bench.t) ->
      let p1 = b.Bench.build ~scale:1 in
      let p2 = b.Bench.build ~scale:1 in
      Alcotest.(check int)
        (b.Bench.name ^ " same static shape")
        (Array.length p1.Program.blocks)
        (Array.length p2.Program.blocks);
      let t1 = Interp.run ~limits:{ Interp.max_blocks = 5_000; stop_proc = None } p1 in
      let t2 = Interp.run ~limits:{ Interp.max_blocks = 5_000; stop_proc = None } p2 in
      Alcotest.(check int)
        (b.Bench.name ^ " same dynamic instructions")
        t1.Trace.instructions t2.Trace.instructions)
    all

let test_all_run_smoke () =
  List.iter
    (fun (b : Bench.t) ->
      let p = b.Bench.build ~scale:1 in
      let trace = Interp.run ~limits:{ Interp.max_blocks = 8_000; stop_proc = None } p in
      Alcotest.(check bool) (b.Bench.name ^ " executes blocks") true
        (Trace.blocks_executed trace > 1_000);
      Alcotest.(check bool) (b.Bench.name ^ " executes branches") true
        (trace.Trace.cond_branches > 50))
    all

let test_scale_grows_run () =
  let b = Spec.find "401.bzip2" in
  let run scale =
    let p = b.Bench.build ~scale in
    (Interp.run ~limits:{ Interp.max_blocks = 10_000_000; stop_proc = None } p)
      .Trace.instructions
  in
  Alcotest.(check bool) "scale 2 runs roughly twice scale 1" true
    (let one = run 1 and two = run 2 in
     two > one * 3 / 2)

let test_character_memory_bound () =
  (* mcf must be far more memory-bound than hmmer. *)
  let cpi name =
    let prepared = Interferometry.Experiment.prepare ~config:Interferometry.Experiment.quick_config (Spec.find name) in
    Pi_uarch.Pipeline.cpi (Interferometry.Experiment.exact_counts prepared ~seed:1)
  in
  Alcotest.(check bool) "mcf >> hmmer CPI" true (cpi "429.mcf" > 2.0 *. cpi "456.hmmer")

let test_character_branchy () =
  (* gobmk must mispredict far more than zeusmp. *)
  let mpki name =
    let prepared = Interferometry.Experiment.prepare ~config:Interferometry.Experiment.quick_config (Spec.find name) in
    Pi_uarch.Pipeline.mpki (Interferometry.Experiment.exact_counts prepared ~seed:1)
  in
  Alcotest.(check bool) "gobmk >> zeusmp MPKI" true
    (mpki "445.gobmk" > 4.0 *. mpki "434.zeusmp")

let test_gcc_big_code () =
  let gcc = (Spec.find "403.gcc").Bench.build ~scale:1 in
  let lbm = (Spec.find "470.lbm").Bench.build ~scale:1 in
  Alcotest.(check bool) "gcc code footprint over 64KB" true
    (Program.total_code_bytes gcc > 40 * 1024);
  Alcotest.(check bool) "gcc much larger than lbm" true
    (Program.total_code_bytes gcc > 5 * Program.total_code_bytes lbm)

let test_calculix_heap_sites () =
  (* The Figure-3 benchmark needs same-size heap allocation sites for the
     randomizing allocator to shuffle. *)
  let p = (Spec.find "454.calculix").Bench.build ~scale:1 in
  Alcotest.(check bool) "has heap sites" true (Array.length p.Program.heap_sites >= 2)

let suite =
  [
    ( "workloads.registry",
      [
        Alcotest.test_case "sizes" `Quick test_registry_sizes;
        Alcotest.test_case "unique names" `Quick test_registry_names_unique;
        Alcotest.test_case "find" `Quick test_registry_find;
        Alcotest.test_case "insignificant population" `Quick test_expected_significance_population;
        Alcotest.test_case "table1 expectations" `Quick test_table1_all_expected_significant;
      ] );
    ( "workloads.generators",
      [
        Alcotest.test_case "all build and validate" `Quick test_all_build_and_validate;
        Alcotest.test_case "deterministic" `Quick test_build_deterministic;
        Alcotest.test_case "all run" `Quick test_all_run_smoke;
        Alcotest.test_case "scale grows run" `Quick test_scale_grows_run;
        Alcotest.test_case "mcf memory-bound" `Quick test_character_memory_bound;
        Alcotest.test_case "gobmk branchy" `Quick test_character_branchy;
        Alcotest.test_case "gcc big code" `Quick test_gcc_big_code;
        Alcotest.test_case "calculix heap sites" `Quick test_calculix_heap_sites;
      ] );
  ]
