(* Tests for the branch predictors: learning behaviour, relative strengths,
   storage accounting, determinism. *)

module P = Pi_uarch.Predictor

(* Drive a predictor with a synthetic stream: [branches] is a list of
   (pc, outcome generator); interleaved round-robin for [rounds] rounds.
   Returns the misprediction rate over the last [measure] rounds. *)
let drive predictor ~rounds ~measure branches =
  let states = List.map (fun (pc, gen) -> (pc, gen, ref 0)) branches in
  let mispredicts = ref 0 and measured = ref 0 in
  for round = 0 to rounds - 1 do
    List.iter
      (fun (pc, gen, counter) ->
        let taken = gen !counter in
        incr counter;
        let correct = predictor.P.on_branch ~pc ~taken in
        if round >= rounds - measure then begin
          incr measured;
          if not correct then incr mispredicts
        end)
      states
  done;
  float_of_int !mispredicts /. float_of_int !measured

let constant_taken _ = true
let constant_not_taken _ = false
let alternating i = i mod 2 = 0
let periodic pattern i = pattern.(i mod Array.length pattern)
let loop trips i = i mod trips < trips - 1

(* ---------------- Counter table ---------------- *)

let test_counter_table_basics () =
  let t = P.Counter_table.create ~entries:16 in
  Alcotest.(check int) "entries" 16 (P.Counter_table.entries t);
  Alcotest.(check bool) "weakly not taken initially" false (P.Counter_table.predict t 3);
  P.Counter_table.update t 3 true;
  Alcotest.(check bool) "one update flips weak counter" true (P.Counter_table.predict t 3);
  P.Counter_table.update t 3 true;
  P.Counter_table.update t 3 true;
  Alcotest.(check int) "saturates at 3" 3 (P.Counter_table.get t 3);
  P.Counter_table.update t 3 false;
  Alcotest.(check bool) "hysteresis" true (P.Counter_table.predict t 3);
  P.Counter_table.reset t;
  Alcotest.(check int) "reset to weakly not-taken" 1 (P.Counter_table.get t 3)

let test_counter_table_pow2 () =
  Alcotest.check_raises "power of two"
    (Invalid_argument "Counter_table.create: entries not a power of two") (fun () ->
      ignore (P.Counter_table.create ~entries:12))

(* ---------------- Individual predictors ---------------- *)

let test_bimodal_learns_bias () =
  let p = Pi_uarch.Bimodal.create ~entries_log2:10 in
  let rate =
    drive p ~rounds:200 ~measure:100
      [ (0x100, constant_taken); (0x204, constant_not_taken) ]
  in
  Alcotest.(check (float 0.0)) "perfect on constant branches" 0.0 rate

let test_bimodal_cannot_learn_alternating () =
  let p = Pi_uarch.Bimodal.create ~entries_log2:10 in
  let rate = drive p ~rounds:400 ~measure:200 [ (0x1000, alternating) ] in
  Alcotest.(check bool) "bad on alternating" true (rate > 0.45)

let test_gshare_learns_alternating () =
  let p = Pi_uarch.Gshare.create ~entries_log2:12 ~history_bits:8 in
  let rate = drive p ~rounds:400 ~measure:200 [ (0x1000, alternating) ] in
  Alcotest.(check (float 0.0)) "history captures period 2" 0.0 rate

let test_gshare_learns_short_period () =
  let p = Pi_uarch.Gshare.create ~entries_log2:12 ~history_bits:8 in
  let pattern = [| true; true; false; true; false |] in
  let rate = drive p ~rounds:600 ~measure:200 [ (0x1000, periodic pattern) ] in
  Alcotest.(check bool) "learns period 5" true (rate < 0.02)

let test_gas_learns_pattern () =
  let p = Pi_uarch.Gas.create ~entries_log2:12 ~history_bits:6 in
  let pattern = [| true; false; false; true |] in
  let rate = drive p ~rounds:600 ~measure:200 [ (0x1000, periodic pattern) ] in
  Alcotest.(check bool) "gselect learns period 4" true (rate < 0.02)

let test_destructive_aliasing_bimodal () =
  (* Two opposite-bias branches forced onto the same bimodal entry. *)
  let p = Pi_uarch.Bimodal.create ~entries_log2:6 in
  let pc_a = 0x1000 in
  let pc_b = 0x1000 + (64 * 2) (* same index after hash_pc and masking *) in
  let rate = drive p ~rounds:300 ~measure:150 [ (pc_a, constant_taken); (pc_b, constant_not_taken) ] in
  Alcotest.(check bool) "collision destroys accuracy" true (rate > 0.4)

let test_hybrid_beats_components () =
  (* A workload with both a biased branch and an alternating branch: the
     hybrid should match gshare on the pattern and bimodal on the bias. *)
  let stream = [ (0x1000, constant_taken); (0x2040, alternating); (0x30a0, periodic [| true; true; false |]) ] in
  let hybrid_rate = drive (Pi_uarch.Hybrid.xeon_like ()) ~rounds:600 ~measure:200 stream in
  Alcotest.(check bool) "hybrid handles the mix" true (hybrid_rate < 0.02)

let test_ltage_learns_long_period () =
  (* Period-40 pattern: beyond the hybrid's 9-bit history, within L-TAGE's
     geometric histories. *)
  let pattern = Array.init 40 (fun i -> i mod 7 < 4) in
  let stream = [ (0x1000, periodic pattern) ] in
  let ltage_rate = drive (Pi_uarch.Ltage.create ()) ~rounds:3000 ~measure:500 stream in
  let hybrid_rate = drive (Pi_uarch.Hybrid.xeon_like ()) ~rounds:3000 ~measure:500 stream in
  Alcotest.(check bool)
    (Printf.sprintf "ltage (%.3f) clearly beats hybrid (%.3f)" ltage_rate hybrid_rate)
    true
    (ltage_rate < 0.05 && ltage_rate < hybrid_rate /. 2.0)

let test_ltage_loop_predictor () =
  (* Constant trip count 50: the loop predictor should nail the exits. *)
  let stream = [ (0x1000, loop 50) ] in
  let ltage_rate = drive (Pi_uarch.Ltage.create ()) ~rounds:4000 ~measure:1000 stream in
  Alcotest.(check bool)
    (Printf.sprintf "loop exits predicted (%.4f)" ltage_rate)
    true (ltage_rate < 0.005)

let test_tage_only_worse_on_loops () =
  let stream = [ (0x1000, loop 75) ] in
  let with_loop = drive (Pi_uarch.Ltage.create ()) ~rounds:4000 ~measure:1000 stream in
  let without = drive (Pi_uarch.Ltage.tage_only ()) ~rounds:4000 ~measure:1000 stream in
  Alcotest.(check bool)
    (Printf.sprintf "loop predictor helps (%.4f vs %.4f)" with_loop without)
    true (with_loop <= without)

let test_perfect_predictor () =
  let p = Pi_uarch.Perfect.perfect () in
  let rate = drive p ~rounds:100 ~measure:100 [ (0x1000, alternating) ] in
  Alcotest.(check (float 0.0)) "never wrong" 0.0 rate

let test_static_predictors () =
  let taken = Pi_uarch.Perfect.always_taken () in
  Alcotest.(check bool) "taken correct on taken" true (taken.P.on_branch ~pc:0 ~taken:true);
  Alcotest.(check bool) "taken wrong on not-taken" false (taken.P.on_branch ~pc:0 ~taken:false);
  let nt = Pi_uarch.Perfect.always_not_taken () in
  Alcotest.(check bool) "not-taken correct" true (nt.P.on_branch ~pc:0 ~taken:false)

let test_reset_restores_initial_state () =
  let p = Pi_uarch.Gshare.create ~entries_log2:10 ~history_bits:6 in
  let before = drive p ~rounds:50 ~measure:50 [ (0x1000, alternating) ] in
  p.P.reset ();
  let after = drive p ~rounds:50 ~measure:50 [ (0x1000, alternating) ] in
  Alcotest.(check (float 1e-9)) "identical after reset" before after

let test_storage_accounting () =
  Alcotest.(check int) "bimodal 2^12 entries = 1KB"
    (4096 * 2)
    (Pi_uarch.Bimodal.create ~entries_log2:12).P.storage_bits;
  let gas8 = Pi_uarch.Gas.sized_kb ~kb:8 in
  Alcotest.(check bool) "GAs-8KB is several KB" true (P.storage_kb gas8 > 8.0);
  let ltage = Pi_uarch.Ltage.create () in
  Alcotest.(check bool) "L-TAGE tens of KB" true
    (P.storage_kb ltage > 20.0 && P.storage_kb ltage < 64.0)

let test_sized_family_named () =
  List.iter
    (fun kb ->
      let p = Pi_uarch.Gas.sized_kb ~kb in
      Alcotest.(check string) "name" (Printf.sprintf "GAs-%dKB" kb) p.P.name)
    [ 2; 4; 8; 16 ];
  Alcotest.check_raises "bad size" (Invalid_argument "Gas.sized_kb: kb must be one of 2, 4, 8, 16")
    (fun () -> ignore (Pi_uarch.Gas.sized_kb ~kb:3))

let test_sweep_has_145_configurations () =
  let configs = Pi_uarch.Sweep.configurations () in
  Alcotest.(check int) "exactly 145" 145 (List.length configs);
  let names = List.map fst configs in
  let unique = List.sort_uniq compare names in
  Alcotest.(check int) "names unique" 145 (List.length unique)

let test_sweep_configs_instantiate () =
  List.iter
    (fun (name, make) ->
      let p = make () in
      ignore (p.P.on_branch ~pc:0x4000 ~taken:true);
      Alcotest.(check bool) (name ^ " has storage") true (p.P.storage_bits >= 0))
    (Pi_uarch.Sweep.configurations ())

let suite =
  [
    ( "uarch.counter_table",
      [
        Alcotest.test_case "basics" `Quick test_counter_table_basics;
        Alcotest.test_case "power of two" `Quick test_counter_table_pow2;
      ] );
    ( "uarch.predictors",
      [
        Alcotest.test_case "bimodal learns bias" `Quick test_bimodal_learns_bias;
        Alcotest.test_case "bimodal vs alternating" `Quick test_bimodal_cannot_learn_alternating;
        Alcotest.test_case "gshare learns alternating" `Quick test_gshare_learns_alternating;
        Alcotest.test_case "gshare learns period 5" `Quick test_gshare_learns_short_period;
        Alcotest.test_case "gas learns period 4" `Quick test_gas_learns_pattern;
        Alcotest.test_case "destructive aliasing" `Quick test_destructive_aliasing_bimodal;
        Alcotest.test_case "hybrid handles mix" `Quick test_hybrid_beats_components;
        Alcotest.test_case "ltage long period" `Quick test_ltage_learns_long_period;
        Alcotest.test_case "ltage loop predictor" `Quick test_ltage_loop_predictor;
        Alcotest.test_case "tage-only vs loops" `Quick test_tage_only_worse_on_loops;
        Alcotest.test_case "perfect" `Quick test_perfect_predictor;
        Alcotest.test_case "static" `Quick test_static_predictors;
        Alcotest.test_case "reset" `Quick test_reset_restores_initial_state;
        Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
        Alcotest.test_case "sized family" `Quick test_sized_family_named;
      ] );
    ( "uarch.sweep",
      [
        Alcotest.test_case "145 configurations" `Quick test_sweep_has_145_configurations;
        Alcotest.test_case "all instantiate" `Quick test_sweep_configs_instantiate;
      ] );
  ]
