(* Tests for the ASCII plotting layer. *)

module Canvas = Pi_plot.Canvas
module Axes = Pi_plot.Axes
module Scatter = Pi_plot.Scatter
module Violin = Pi_plot.Violin
module Bars = Pi_plot.Bars

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_canvas_set_render () =
  let c = Canvas.create ~width:10 ~height:3 in
  Canvas.set c ~x:2 ~y:1 '*';
  let out = Canvas.render c in
  Alcotest.(check string) "rendered" "\n  *\n" out

let test_canvas_clipping () =
  let c = Canvas.create ~width:5 ~height:2 in
  Canvas.set c ~x:99 ~y:0 'x';
  Canvas.set c ~x:(-1) ~y:0 'x';
  Canvas.set c ~x:0 ~y:99 'x';
  Alcotest.(check string) "nothing written" "\n" (Canvas.render c)

let test_canvas_text_and_lines () =
  let c = Canvas.create ~width:12 ~height:4 in
  Canvas.text c ~x:1 ~y:0 "hi";
  Canvas.hline c ~y:2 ~x0:0 ~x1:4 '-';
  Canvas.vline c ~x:6 ~y0:0 ~y1:3 '|';
  let out = Canvas.render c in
  Alcotest.(check bool) "text present" true (contains out "hi");
  Alcotest.(check bool) "hline present" true (contains out "-----")

let test_canvas_set_if_empty () =
  let c = Canvas.create ~width:4 ~height:1 in
  Canvas.set c ~x:0 ~y:0 'a';
  Canvas.set_if_empty c ~x:0 ~y:0 'b';
  Canvas.set_if_empty c ~x:1 ~y:0 'c';
  Alcotest.(check string) "priority respected" "ac" (Canvas.render c)

let test_axes_mapping_monotone () =
  let axes =
    Axes.create ~x_min:0.0 ~x_max:10.0 ~y_min:0.0 ~y_max:5.0 ~left:5 ~right:50 ~top:1
      ~bottom:20
  in
  Alcotest.(check int) "x min" 5 (Axes.x_of axes 0.0);
  Alcotest.(check int) "x max" 50 (Axes.x_of axes 10.0);
  Alcotest.(check int) "y min at bottom" 20 (Axes.y_of axes 0.0);
  Alcotest.(check int) "y max at top" 1 (Axes.y_of axes 5.0);
  Alcotest.(check bool) "monotone" true (Axes.x_of axes 3.0 < Axes.x_of axes 7.0)

let test_axes_ticks_cover () =
  let ticks = Axes.nice_ticks ~lo:0.13 ~hi:0.87 ~max_ticks:6 in
  Alcotest.(check bool) "some ticks" true (List.length ticks >= 2);
  List.iter
    (fun t -> Alcotest.(check bool) "within range" true (t >= 0.0 && t <= 1.0))
    ticks

let test_axes_degenerate_range () =
  let axes =
    Axes.create ~x_min:2.0 ~x_max:2.0 ~y_min:1.0 ~y_max:1.0 ~left:0 ~right:10 ~top:0
      ~bottom:10
  in
  (* Must not divide by zero. *)
  Alcotest.(check bool) "maps" true (Axes.x_of axes 2.0 >= 0)

let test_scatter_renders_points_and_fit () =
  let points = Array.init 20 (fun i -> (float_of_int i, (2.0 *. float_of_int i) +. 1.0)) in
  let reg = Pi_stats.Linreg.fit (Array.map fst points) (Array.map snd points) in
  let out =
    Scatter.render ~width:60 ~height:15 ~title:"T" ~line:(Scatter.regression_line reg)
      ~bands:[ Scatter.confidence_band reg; Scatter.prediction_band reg ]
      points
  in
  Alcotest.(check bool) "has data glyphs" true (contains out "o");
  Alcotest.(check bool) "has fit glyphs" true (contains out "*");
  Alcotest.(check bool) "has title" true (contains out "T")

let test_scatter_empty_rejected () =
  Alcotest.check_raises "no points" (Invalid_argument "Scatter.render: no points") (fun () ->
      ignore (Scatter.render [||]))

let test_violin_renders () =
  let rng = Pi_stats.Rng.create 3 in
  let sample () = Array.init 60 (fun _ -> Pi_stats.Rng.gaussian rng) in
  let out = Violin.render ~width:70 [ ("aaa", sample ()); ("bbb", sample ()) ] in
  Alcotest.(check bool) "labels" true (contains out "aaa" && contains out "bbb");
  Alcotest.(check bool) "median marker" true (contains out "+");
  Alcotest.(check bool) "body" true (contains out "=")

let test_violin_small_sample_rejected () =
  Alcotest.check_raises "too small" (Invalid_argument "Violin.render: sample too small")
    (fun () -> ignore (Violin.render [ ("x", [| 1.0 |]) ]))

let test_bars_simple () =
  let out = Bars.render ~width:50 [ ("one", 1.0); ("two", 2.0) ] in
  Alcotest.(check bool) "labels" true (contains out "one" && contains out "two");
  Alcotest.(check bool) "bars" true (contains out "#")

let test_bars_stacked () =
  let out =
    Bars.render_stacked ~width:60 ~segment_glyphs:[ 'A'; 'B' ] ~legend:[ "first"; "second" ]
      [ ("row", [ 0.4; 0.3 ]) ]
  in
  Alcotest.(check bool) "legend" true (contains out "A=first");
  Alcotest.(check bool) "segments" true (contains out "A" && contains out "B")

let test_bars_stacked_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Bars.render_stacked: negative segment")
    (fun () ->
      ignore
        (Bars.render_stacked ~segment_glyphs:[ 'A' ] ~legend:[ "x" ] [ ("r", [ -1.0 ]) ]))

let test_bars_intervals () =
  let out =
    Bars.render_intervals ~width:70
      [ ("alpha", 1.0, 1.5, 2.0); ("beta", 0.5, 0.6, 0.7) ]
  in
  Alcotest.(check bool) "estimate marker" true (contains out "*");
  Alcotest.(check bool) "bounds markers" true (contains out "[" && contains out "]");
  Alcotest.(check bool) "numeric summary" true (contains out "1.500")

let suite =
  [
    ( "plot.canvas",
      [
        Alcotest.test_case "set / render" `Quick test_canvas_set_render;
        Alcotest.test_case "clipping" `Quick test_canvas_clipping;
        Alcotest.test_case "text and lines" `Quick test_canvas_text_and_lines;
        Alcotest.test_case "set_if_empty" `Quick test_canvas_set_if_empty;
      ] );
    ( "plot.axes",
      [
        Alcotest.test_case "mapping monotone" `Quick test_axes_mapping_monotone;
        Alcotest.test_case "ticks cover" `Quick test_axes_ticks_cover;
        Alcotest.test_case "degenerate range" `Quick test_axes_degenerate_range;
      ] );
    ( "plot.figures",
      [
        Alcotest.test_case "scatter" `Quick test_scatter_renders_points_and_fit;
        Alcotest.test_case "scatter empty" `Quick test_scatter_empty_rejected;
        Alcotest.test_case "violin" `Quick test_violin_renders;
        Alcotest.test_case "violin small sample" `Quick test_violin_small_sample_rejected;
        Alcotest.test_case "bars" `Quick test_bars_simple;
        Alcotest.test_case "stacked bars" `Quick test_bars_stacked;
        Alcotest.test_case "stacked negative" `Quick test_bars_stacked_negative_rejected;
        Alcotest.test_case "interval bars" `Quick test_bars_intervals;
      ] );
  ]
