(* Tests for the analysis extensions: rank statistics, ANOVA, power
   analysis and the Markdown report generator. *)

module Rank = Pi_stats.Rank
module Power = Interferometry.Power
module Report = Interferometry.Report
module E = Interferometry.Experiment

let check_close eps = Alcotest.(check (float eps))

(* ---------------- Ranks / Spearman ---------------- *)

let test_ranks_basic () =
  Alcotest.(check (array (float 1e-12))) "simple" [| 2.0; 1.0; 3.0 |]
    (Rank.ranks [| 5.0; 1.0; 9.0 |])

let test_ranks_ties () =
  (* 4.0 appears twice at rank positions 2 and 3 -> both get 2.5. *)
  Alcotest.(check (array (float 1e-12))) "ties" [| 2.5; 1.0; 2.5; 4.0 |]
    (Rank.ranks [| 4.0; 1.0; 4.0; 7.0 |])

let test_spearman_monotone () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let ys = Array.map (fun x -> exp x) xs in
  (* Nonlinear but monotone: Spearman 1, Pearson < 1. *)
  check_close 1e-12 "rho = 1" 1.0 (Rank.spearman_rho xs ys);
  Alcotest.(check bool) "pearson below rho" true (Pi_stats.Correlation.pearson_r xs ys < 1.0)

let test_spearman_anti () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 9.0; 6.0; 4.0; 1.0 |] in
  check_close 1e-12 "rho = -1" (-1.0) (Rank.spearman_rho xs ys)

let test_spearman_test_significance () =
  let rng = Pi_stats.Rng.create 7 in
  let xs = Array.init 40 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> (x *. x) +. Pi_stats.Rng.gaussian rng) xs in
  let r = Rank.spearman_test xs ys in
  Alcotest.(check bool) "monotone signal detected" true r.Pi_stats.Correlation.significant

(* ---------------- ANOVA ---------------- *)

let test_anova_distinguishes_groups () =
  let rng = Pi_stats.Rng.create 5 in
  let group mean = Array.init 20 (fun _ -> mean +. (0.5 *. Pi_stats.Rng.gaussian rng)) in
  let separated = Rank.one_way_anova [| group 0.0; group 3.0; group 6.0 |] in
  Alcotest.(check bool) "separated groups significant" true (separated.Rank.p_value < 0.001);
  let same = Rank.one_way_anova [| group 1.0; group 1.0; group 1.0 |] in
  Alcotest.(check bool) "identical means usually not significant" true
    (same.Rank.p_value > 0.01)

let test_anova_dfs () =
  let a = Rank.one_way_anova [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  Alcotest.(check int) "df between" 2 a.Rank.df_between;
  Alcotest.(check int) "df within" 3 a.Rank.df_within

let test_anova_arity () =
  Alcotest.check_raises "one group rejected"
    (Invalid_argument "Rank.one_way_anova: need >= 2 groups") (fun () ->
      ignore (Rank.one_way_anova [| [| 1.0; 2.0 |] |]))

(* ---------------- Power analysis ---------------- *)

let test_power_required_samples_monotone () =
  let n r = Option.get (Power.required_samples r) in
  Alcotest.(check bool) "weaker r needs more samples" true (n 0.2 > n 0.5 && n 0.5 > n 0.8);
  Alcotest.(check bool) "r=0.2 needs roughly 200 samples" true (n 0.2 > 150 && n 0.2 < 260);
  Alcotest.(check bool) "zero r unbounded" true (Power.required_samples 0.0 = None)

let test_power_roundtrip () =
  (* detectable_r at the sample size required for r should be ~r. *)
  List.iter
    (fun r ->
      let n = Option.get (Power.required_samples r) in
      let detectable = Power.detectable_r n in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip at r=%.2f (n=%d, detectable %.3f)" r n detectable)
        true
        (Float.abs (detectable -. r) < 0.05))
    [ 0.2; 0.4; 0.6 ]

let test_power_detectable_shrinks_with_n () =
  Alcotest.(check bool) "more samples detect weaker correlations" true
    (Power.detectable_r 300 < Power.detectable_r 100)

(* ---------------- Report ---------------- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_report_significant_benchmark () =
  let d = E.run ~config:E.quick_config (Pi_workloads.Spec.find "462.libquantum") ~n_layouts:12 in
  let report = Report.generate d in
  Alcotest.(check string) "benchmark recorded" "462.libquantum" report.Report.benchmark;
  Alcotest.(check int) "layouts recorded" 12 report.Report.n_layouts;
  let md = report.Report.markdown in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains md needle))
    [
      "# Program interferometry report: 462.libquantum";
      "## Measurements";
      "**significant**";
      "## Performance model";
      "Perfect branch prediction";
      "L-TAGE";
    ]

let test_report_insignificant_benchmark () =
  let d = E.run ~config:E.quick_config (Pi_workloads.Spec.find "470.lbm") ~n_layouts:10 in
  let report = Report.generate d in
  Alcotest.(check bool) "explains the failure" true
    (contains report.Report.markdown "cannot model")

let test_report_save () =
  let d = E.run ~config:E.quick_config (Pi_workloads.Spec.find "456.hmmer") ~n_layouts:8 in
  let report = Report.generate d in
  let path = Filename.temp_file "pi_report" ".md" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.save report ~path;
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check bool) "non-trivial file" true (len > 500))

let suite =
  [
    ( "stats.rank",
      [
        Alcotest.test_case "ranks" `Quick test_ranks_basic;
        Alcotest.test_case "ties" `Quick test_ranks_ties;
        Alcotest.test_case "spearman monotone" `Quick test_spearman_monotone;
        Alcotest.test_case "spearman anti" `Quick test_spearman_anti;
        Alcotest.test_case "spearman test" `Quick test_spearman_test_significance;
        Alcotest.test_case "anova groups" `Quick test_anova_distinguishes_groups;
        Alcotest.test_case "anova dfs" `Quick test_anova_dfs;
        Alcotest.test_case "anova arity" `Quick test_anova_arity;
      ] );
    ( "core.power",
      [
        Alcotest.test_case "required samples" `Quick test_power_required_samples_monotone;
        Alcotest.test_case "roundtrip" `Quick test_power_roundtrip;
        Alcotest.test_case "detectable r" `Quick test_power_detectable_shrinks_with_n;
      ] );
    ( "core.report",
      [
        Alcotest.test_case "significant benchmark" `Quick test_report_significant_benchmark;
        Alcotest.test_case "insignificant benchmark" `Quick test_report_insignificant_benchmark;
        Alcotest.test_case "save" `Quick test_report_save;
      ] );
  ]
