(* Reproduction-shape tests: the paper's qualitative claims, encoded as
   assertions at reduced scale so the suite stays fast. These are the
   regression net for the numbers EXPERIMENTS.md reports. *)

module E = Interferometry.Experiment
module Model = Interferometry.Model
module Significance = Interferometry.Significance
module Predict = Interferometry.Predict
module Sweep = Pi_uarch.Sweep
module Linreg = Pi_stats.Linreg

let n_layouts = 20

let dataset =
  let cache = Hashtbl.create 8 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some d -> d
    | None ->
        let d = E.run (Pi_workloads.Spec.find name) ~n_layouts in
        Hashtbl.replace cache name d;
        d

(* Section 4.6 / 6.4: branchy codes correlate, stream codes do not. *)
let test_significance_split () =
  List.iter
    (fun name ->
      let v = Significance.test (dataset name) in
      Alcotest.(check bool) (name ^ " significant") true v.Significance.significant)
    [ "400.perlbench"; "401.bzip2"; "462.libquantum"; "445.gobmk" ];
  List.iter
    (fun name ->
      let v = Significance.test (dataset name) in
      Alcotest.(check bool) (name ^ " not significant") false v.Significance.significant)
    [ "470.lbm"; "433.milc" ]

(* Table 1: positive slopes of plausible magnitude for branchy codes. *)
let test_table1_slopes () =
  List.iter
    (fun name ->
      let m = Model.fit (dataset name) in
      let slope = m.Model.regression.Linreg.slope in
      Alcotest.(check bool)
        (Printf.sprintf "%s slope %.4f in (0.004, 0.08)" name slope)
        true
        (slope > 0.004 && slope < 0.08))
    [ "400.perlbench"; "401.bzip2"; "456.hmmer"; "462.libquantum" ]

(* Section 7.2 / Figure 7: the predictor ranking. *)
let test_predictor_ranking () =
  let d = dataset "400.perlbench" in
  let m = Model.fit d in
  let rows = Predict.evaluate d m in
  let mpki name = (List.find (fun e -> e.Predict.predictor = name) rows).Predict.mean_mpki in
  Alcotest.(check bool) "GAs grows monotone with budget" true
    (mpki "GAs-2KB" >= mpki "GAs-8KB" && mpki "GAs-8KB" >= mpki "GAs-16KB");
  Alcotest.(check bool) "real predictor worse than GAs-8KB" true
    (mpki "real (measured)" > mpki "GAs-8KB");
  Alcotest.(check bool) "L-TAGE clearly best imperfect predictor" true
    (mpki "L-TAGE" < mpki "GAs-16KB");
  Alcotest.(check bool) "L-TAGE reduction is paper-sized (20-60%)" true
    (let reduction = 1.0 -. (mpki "L-TAGE" /. mpki "real (measured)") in
     reduction > 0.2 && reduction < 0.6)

(* Section 1.4: perfect prediction is worth a large, bounded improvement on
   perlbench. *)
let test_perlbench_headline () =
  let d = dataset "400.perlbench" in
  let m = Model.fit d in
  let gain = Model.improvement_percent m ~from_mpki:m.Model.mean_mpki ~to_mpki:0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "perfect-prediction gain %.1f%% in 15-40%%" gain)
    true
    (gain > 15.0 && gain < 40.0)

(* Section 3 / Figure 4: the linearity study. Run the 145-config sweep on
   two contrasting benchmarks: hmmer must extrapolate almost perfectly,
   galgel visibly worse (the wrong-path mechanism). *)
let study name =
  let prepared = E.prepare (Pi_workloads.Spec.find name) in
  let placement = Pi_layout.Placement.natural prepared.E.program in
  Sweep.run_study ~warmup_blocks:prepared.E.warmup_blocks ~benchmark:name prepared.E.trace
    placement

let test_linearity_contrast () =
  let hmmer = study "456.hmmer" in
  let galgel = study "178.galgel" in
  Alcotest.(check bool)
    (Printf.sprintf "hmmer extrapolates cleanly (%.2f%%)" hmmer.Sweep.perfect_error_percent)
    true
    (hmmer.Sweep.perfect_error_percent < 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "galgel visibly non-linear (%.2f%%)" galgel.Sweep.perfect_error_percent)
    true
    (galgel.Sweep.perfect_error_percent > 3.0);
  Alcotest.(check bool) "L-TAGE interpolation easier than perfect extrapolation" true
    (hmmer.Sweep.ltage_error_percent <= hmmer.Sweep.perfect_error_percent +. 0.1)

(* Figure 3 mechanism: heap randomization creates the cache-miss variance
   that code reordering alone does not. *)
let test_heap_randomization_enables_cache_signal () =
  let ccx = Pi_workloads.Spec.find "454.calculix" in
  let run heap_random =
    let config =
      { E.default_config with E.heap_random; scale = 12; budget_blocks = 400_000 }
    in
    E.run ~config ccx ~n_layouts:15
  in
  let with_rand = run true and without = run false in
  let r2 d = Pi_stats.Correlation.r_squared (E.l1d_mpkis d) (E.cpis d) in
  Alcotest.(check bool)
    (Printf.sprintf "randomized heap r2 %.3f >> bump r2 %.3f" (r2 with_rand) (r2 without))
    true
    (r2 with_rand > 0.3 && r2 with_rand > 4.0 *. r2 without)

(* The violin-plot source data: branchy codes show visibly wider relative
   CPI spread than stream codes (Figure 1's point). *)
let test_variation_spread () =
  let spread name =
    let d = dataset name in
    let cpis = E.cpis d in
    Pi_stats.Descriptive.stddev cpis /. Pi_stats.Descriptive.mean cpis
  in
  Alcotest.(check bool) "libquantum spreads much more than lbm" true
    (spread "462.libquantum" > 2.0 *. spread "470.lbm")

let suite =
  [
    ( "reproduction.shapes",
      [
        Alcotest.test_case "significance split" `Slow test_significance_split;
        Alcotest.test_case "table1 slopes" `Slow test_table1_slopes;
        Alcotest.test_case "predictor ranking" `Slow test_predictor_ranking;
        Alcotest.test_case "perlbench headline" `Slow test_perlbench_headline;
        Alcotest.test_case "linearity contrast" `Slow test_linearity_contrast;
        Alcotest.test_case "heap randomization" `Slow test_heap_randomization_enables_cache_signal;
        Alcotest.test_case "variation spread" `Slow test_variation_spread;
      ] );
  ]
