(* Tests for pi_layout: linker, reordering, heap layouts, run limiter. *)

module Program = Pi_isa.Program
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior
module Code = Pi_layout.Code_layout
module Data = Pi_layout.Data_layout
module Placement = Pi_layout.Placement
module Run_limiter = Pi_layout.Run_limiter
module Trace = Pi_isa.Trace

let sample_program () =
  let b = B.create ~name:"layout-sample" in
  let o1 = B.add_object b "a.o" in
  let o2 = B.add_object b "b.o" in
  let g1 = B.global b ~name:"g1" ~size:1000 in
  let g2 = B.global b ~name:"g2" ~size:512 in
  let site = B.heap_site b ~name:"objs" ~obj_size:48 ~count:20 in
  let p1 =
    B.proc b ~obj:o1 ~name:"p1"
      [ B.work 4; B.load_global g1 (B.seq ~stride:8); B.load_heap site B.rand_access ]
  in
  let p2 = B.proc b ~obj:o1 ~name:"p2" [ B.work 2; B.store_global g2 (B.fixed 16) ] in
  let p3 = B.proc b ~obj:o2 ~name:"p3" [ B.work 6 ] in
  let main =
    B.proc b ~obj:o2 ~name:"main"
      [ B.for_ ~trips:50 [ B.call p1; B.call p2; B.call p3 ] ]
  in
  B.entry b main;
  B.finish b

(* ---------------- Code layout ---------------- *)

let test_natural_layout_ordered () =
  let p = sample_program () in
  let layout = Code.natural p in
  (* In the natural order, each procedure's entry block address increases in
     declaration order within its object. *)
  Alcotest.(check bool) "no overlaps" false (Code.overlaps layout);
  Alcotest.(check bool) "base respected" true (layout.Code.block_addr.(0) >= 0x400000)

let test_layout_reproducible () =
  let p = sample_program () in
  let a = Code.randomized p ~seed:9 in
  let b = Code.randomized p ~seed:9 in
  Alcotest.(check (array int)) "same seed same addresses" a.Code.block_addr b.Code.block_addr

let test_layout_seed_changes_addresses () =
  let p = sample_program () in
  let a = Code.randomized p ~seed:1 in
  let b = Code.randomized p ~seed:2 in
  Alcotest.(check bool) "addresses differ" true (a.Code.block_addr <> b.Code.block_addr)

let test_layout_alignment () =
  let p = sample_program () in
  let layout = Code.randomized p ~seed:3 in
  Array.iter
    (fun (proc : Program.procedure) ->
      let entry_addr = layout.Code.block_addr.(proc.Program.entry) in
      Alcotest.(check int) "procedure 16-byte aligned" 0 (entry_addr mod 16))
    p.Program.procs

let test_layout_block_contiguity () =
  let p = sample_program () in
  let layout = Code.natural p in
  (* Blocks of a procedure are laid out contiguously in order. *)
  Array.iter
    (fun (proc : Program.procedure) ->
      let blocks = proc.Program.blocks in
      for i = 0 to Array.length blocks - 2 do
        let here = blocks.(i) and next = blocks.(i + 1) in
        Alcotest.(check int) "contiguous"
          (layout.Code.block_addr.(here) + layout.Code.block_bytes.(here))
          layout.Code.block_addr.(next)
      done)
    p.Program.procs

let test_branch_pc_inside_block () =
  let p = sample_program () in
  let layout = Code.randomized p ~seed:5 in
  Array.iter
    (fun (br : Program.branch_info) ->
      let owner = br.Program.owner in
      let pc = layout.Code.branch_pc.(br.Program.branch_id) in
      let lo = layout.Code.block_addr.(owner) in
      let hi = lo + layout.Code.block_bytes.(owner) in
      Alcotest.(check bool) "pc within owner block" true (pc >= lo && pc < hi))
    p.Program.branches

let prop_no_overlap_any_seed =
  QCheck.Test.make ~name:"linker never overlaps blocks" ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = sample_program () in
      let layout =
        if seed = 0 then Code.natural p else Code.randomized p ~seed
      in
      not (Code.overlaps layout))

let test_order_is_permutation () =
  let p = sample_program () in
  let order = Code.random_order p ~seed:11 in
  let sorted = Array.copy order.Code.object_order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "object order is a permutation" [| 0; 1 |] sorted

(* ---------------- Data layout ---------------- *)

let test_bump_deterministic () =
  let p = sample_program () in
  let a = Data.bump p and b = Data.bump p in
  Alcotest.(check (array int)) "same globals" a.Data.global_base b.Data.global_base

let test_randomized_heap_varies () =
  let p = sample_program () in
  let a = Data.randomized p ~seed:1 in
  let b = Data.randomized p ~seed:2 in
  Alcotest.(check bool) "heap placements differ" true (a.Data.heap_base <> b.Data.heap_base)

let test_randomized_reproducible () =
  let p = sample_program () in
  let a = Data.randomized p ~seed:7 in
  let b = Data.randomized p ~seed:7 in
  Alcotest.(check bool) "reproducible" true (a.Data.heap_base = b.Data.heap_base)

let prop_data_no_overlap =
  QCheck.Test.make ~name:"data placements never overlap" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let p = sample_program () in
      Data.no_overlap (Data.randomized p ~seed) && Data.no_overlap (Data.bump p))

let test_address_resolution () =
  let p = sample_program () in
  let d = Data.bump p in
  let e = Trace.pack_mem ~is_store:false ~space:Program.Global ~target:0 ~obj:0 ~offset:24 in
  Alcotest.(check int) "global address" (d.Data.global_base.(0) + 24) (Data.address d e);
  let e2 = Trace.pack_mem ~is_store:true ~space:Program.Heap ~target:0 ~obj:3 ~offset:8 in
  Alcotest.(check int) "heap address" (d.Data.heap_base.(0).(3) + 8) (Data.address d e2)

let test_footprint_positive () =
  let p = sample_program () in
  Alcotest.(check bool) "bump footprint sane" true (Data.footprint_bytes (Data.bump p) > 1500)

(* ---------------- Placement ---------------- *)

let test_placement_seed_zero_natural () =
  let p = sample_program () in
  let natural = Placement.natural p in
  let layout = Code.natural p in
  Alcotest.(check (array int)) "natural code layout"
    layout.Code.block_addr natural.Placement.code.Code.block_addr

let test_placement_batch () =
  let p = sample_program () in
  let batch = Placement.batch p ~seeds:[| 1; 2; 3 |] in
  Alcotest.(check int) "three placements" 3 (List.length batch)

(* ---------------- Run limiter ---------------- *)

let test_limiter_short_program_no_instrumentation () =
  let p = sample_program () in
  (* 50 iterations is far below the budget: no instrumentation needed. *)
  Alcotest.(check bool) "none" true
    (Option.is_none (Run_limiter.choose p ~budget_blocks:1_000_000))

let long_program () =
  let b = B.create ~name:"long" in
  let o = B.add_object b "a.o" in
  let rare = B.proc b ~obj:o ~name:"rare" [ B.work 5 ] in
  let common = B.proc b ~obj:o ~name:"common" [ B.work 2 ] in
  let main =
    B.proc b ~obj:o ~name:"main"
      [
        B.for_ ~trips:1_000_000
          [
            B.call common;
            B.if_
              (Behavior.Periodic { pattern = Behavior.loop_pattern ~trips:16 })
              [ B.work 1 ] [ B.call rare ];
          ];
      ]
  in
  B.entry b main;
  B.finish b

let test_limiter_picks_low_frequency_proc () =
  let p = long_program () in
  match Run_limiter.choose p ~budget_blocks:20_000 with
  | None -> Alcotest.fail "expected instrumentation"
  | Some t ->
      (* rare (proc 0) runs 16x less often than common (proc 1). *)
      Alcotest.(check int) "chose the rare procedure" 0 t.Run_limiter.stop_proc;
      Alcotest.(check bool) "count positive" true (t.Run_limiter.stop_count > 0)

let test_limiter_trace_bounded_and_stable () =
  let p = long_program () in
  let t1 = Run_limiter.trace p ~budget_blocks:20_000 in
  let t2 = Run_limiter.trace p ~budget_blocks:20_000 in
  Alcotest.(check bool) "bounded" true (Trace.blocks_executed t1 <= 40_000);
  Alcotest.(check int) "reproducible length" (Trace.blocks_executed t1)
    (Trace.blocks_executed t2);
  Alcotest.(check int) "same instructions" t1.Trace.instructions t2.Trace.instructions

let test_limiter_near_end_criterion () =
  let p = long_program () in
  match Run_limiter.choose p ~budget_blocks:20_000 with
  | None -> Alcotest.fail "expected instrumentation"
  | Some t ->
      (* Rerunning with the instrumentation should stop near the profile
         point: within 15% of the profiled block count. *)
      let trace = Pi_isa.Interp.run ~limits:(Run_limiter.limits t) p in
      let delta =
        Float.abs
          (float_of_int (Trace.blocks_executed trace)
          -. float_of_int t.Run_limiter.profiled_blocks)
        /. float_of_int t.Run_limiter.profiled_blocks
      in
      Alcotest.(check bool) "stops near the profile point" true (delta < 0.15)

let qcheck t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "layout.code",
      [
        Alcotest.test_case "natural ordered" `Quick test_natural_layout_ordered;
        Alcotest.test_case "reproducible" `Quick test_layout_reproducible;
        Alcotest.test_case "seed changes addresses" `Quick test_layout_seed_changes_addresses;
        Alcotest.test_case "alignment" `Quick test_layout_alignment;
        Alcotest.test_case "block contiguity" `Quick test_layout_block_contiguity;
        Alcotest.test_case "branch pc placement" `Quick test_branch_pc_inside_block;
        Alcotest.test_case "order is permutation" `Quick test_order_is_permutation;
        qcheck prop_no_overlap_any_seed;
      ] );
    ( "layout.data",
      [
        Alcotest.test_case "bump deterministic" `Quick test_bump_deterministic;
        Alcotest.test_case "randomized varies" `Quick test_randomized_heap_varies;
        Alcotest.test_case "randomized reproducible" `Quick test_randomized_reproducible;
        Alcotest.test_case "address resolution" `Quick test_address_resolution;
        Alcotest.test_case "footprint" `Quick test_footprint_positive;
        qcheck prop_data_no_overlap;
      ] );
    ( "layout.placement",
      [
        Alcotest.test_case "seed zero natural" `Quick test_placement_seed_zero_natural;
        Alcotest.test_case "batch" `Quick test_placement_batch;
      ] );
    ( "layout.run_limiter",
      [
        Alcotest.test_case "short program untouched" `Quick
          test_limiter_short_program_no_instrumentation;
        Alcotest.test_case "picks rare procedure" `Quick test_limiter_picks_low_frequency_proc;
        Alcotest.test_case "bounded and stable" `Quick test_limiter_trace_bounded_and_stable;
        Alcotest.test_case "near-end criterion" `Quick test_limiter_near_end_criterion;
      ] );
  ]

(* ---------------- ASLR ---------------- *)

let test_aslr_shifts_pages () =
  let p = sample_program () in
  let base = Data.bump p in
  let shifted = Data.bump ~aslr_seed:42 p in
  let delta = shifted.Data.global_base.(0) - base.Data.global_base.(0) in
  Alcotest.(check bool) "shifted" true (delta <> 0 || shifted.Data.heap_base.(0).(0) <> base.Data.heap_base.(0).(0));
  Alcotest.(check int) "page aligned shift" 0 (delta mod 4096)

let test_aslr_reproducible () =
  let p = sample_program () in
  let a = Data.bump ~aslr_seed:9 p and b = Data.bump ~aslr_seed:9 p in
  Alcotest.(check (array int)) "same seed same shift" a.Data.global_base b.Data.global_base;
  let c = Data.bump ~aslr_seed:10 p in
  Alcotest.(check bool) "different seed differs" true (c.Data.global_base <> a.Data.global_base)

let test_placement_aslr_flag () =
  let p = sample_program () in
  let off = Placement.make p ~seed:3 in
  let on = Placement.make ~aslr:true p ~seed:3 in
  Alcotest.(check (array int)) "code layout unaffected"
    off.Placement.code.Code.block_addr on.Placement.code.Code.block_addr;
  Alcotest.(check bool) "data layout shifted" true
    (off.Placement.data.Data.global_base <> on.Placement.data.Data.global_base)

let aslr_cases =
  ( "layout.aslr",
    [
      Alcotest.test_case "page shifts" `Quick test_aslr_shifts_pages;
      Alcotest.test_case "reproducible" `Quick test_aslr_reproducible;
      Alcotest.test_case "placement flag" `Quick test_placement_aslr_flag;
    ] )

let suite = suite @ [ aslr_cases ]
