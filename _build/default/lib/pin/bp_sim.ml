module Program = Pi_isa.Program
module Trace = Pi_isa.Trace

type result = {
  predictor_name : string;
  branches : int;
  mispredicted : int;
  instructions : int;
  mpki : float;
}

(* Iterate the dynamic conditional-branch stream of a trace: calls
   [f ~branch ~pc ~taken ~index] for each, where [index] is the dynamic
   branch ordinal. *)
let iter_branches trace code f =
  let program = trace.Trace.program in
  let branch_pc = code.Pi_layout.Code_layout.branch_pc in
  let seq = trace.Trace.block_seq in
  let n = Array.length seq in
  let ordinal = ref 0 in
  for i = 0 to n - 2 do
    match program.Program.blocks.(seq.(i)).Program.term with
    | Program.Branch { branch; taken; not_taken = _ } ->
        f ~branch ~pc:branch_pc.(branch) ~taken:(seq.(i + 1) = taken) ~index:!ordinal;
        incr ordinal
    | Program.Jump _ | Program.Call _ | Program.Indirect_call _ | Program.Switch _
    | Program.Return | Program.Halt ->
        ()
  done

let measured_instructions ?(warmup_branches = 0) trace =
  (* Approximate post-warmup instruction count by scaling: the Pin tool
     reports MPKI over the measured window. *)
  let total_branches = trace.Trace.cond_branches in
  if total_branches = 0 then trace.Trace.instructions
  else
    let fraction =
      float_of_int (max 0 (total_branches - warmup_branches)) /. float_of_int total_branches
    in
    int_of_float (fraction *. float_of_int trace.Trace.instructions)

let run ?(warmup_branches = 0) trace code makes =
  let predictors = List.map (fun make -> make ()) makes in
  let states =
    List.map (fun p -> (p, ref 0, ref 0)) predictors (* predictor, branches, mispredicts *)
  in
  iter_branches trace code (fun ~branch:_ ~pc ~taken ~index ->
      List.iter
        (fun (p, branches, mispredicted) ->
          let correct = p.Pi_uarch.Predictor.on_branch ~pc ~taken in
          if index >= warmup_branches then begin
            incr branches;
            if not correct then incr mispredicted
          end)
        states);
  let instructions = measured_instructions ~warmup_branches trace in
  List.map
    (fun (p, branches, mispredicted) ->
      {
        predictor_name = p.Pi_uarch.Predictor.name;
        branches = !branches;
        mispredicted = !mispredicted;
        instructions;
        mpki =
          (if instructions = 0 then 0.0
           else 1000.0 *. float_of_int !mispredicted /. float_of_int instructions);
      })
    states

let per_branch_mispredicts ?(warmup_branches = 0) trace code make =
  let p = make () in
  let n = Array.length trace.Trace.program.Program.branches in
  let executions = Array.make n 0 in
  let mispredicts = Array.make n 0 in
  iter_branches trace code (fun ~branch ~pc ~taken ~index ->
      let correct = p.Pi_uarch.Predictor.on_branch ~pc ~taken in
      if index >= warmup_branches then begin
        executions.(branch) <- executions.(branch) + 1;
        if not correct then mispredicts.(branch) <- mispredicts.(branch) + 1
      end);
  Array.init n (fun i -> (executions.(i), mispredicts.(i)))
