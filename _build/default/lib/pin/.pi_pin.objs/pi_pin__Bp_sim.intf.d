lib/pin/bp_sim.mli: Pi_isa Pi_layout Pi_uarch
