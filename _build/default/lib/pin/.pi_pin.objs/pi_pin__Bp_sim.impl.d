lib/pin/bp_sim.ml: Array List Pi_isa Pi_layout Pi_uarch
