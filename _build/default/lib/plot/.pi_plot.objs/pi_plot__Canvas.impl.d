lib/plot/canvas.ml: Buffer Bytes String
