lib/plot/scatter.ml: Array Axes Canvas Float List Pi_stats
