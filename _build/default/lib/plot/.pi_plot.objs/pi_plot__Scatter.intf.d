lib/plot/scatter.mli: Pi_stats
