lib/plot/bars.ml: Axes Buffer Bytes Float List Printf String
