lib/plot/canvas.mli:
