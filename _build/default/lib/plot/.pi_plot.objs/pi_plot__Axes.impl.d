lib/plot/axes.ml: Canvas Float List Printf String
