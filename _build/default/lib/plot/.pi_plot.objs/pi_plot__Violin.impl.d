lib/plot/violin.ml: Array Axes Canvas Float List Pi_stats String
