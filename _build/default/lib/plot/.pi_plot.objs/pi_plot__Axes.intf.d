lib/plot/axes.mli: Canvas
