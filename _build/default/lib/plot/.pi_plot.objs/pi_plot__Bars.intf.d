lib/plot/bars.mli:
