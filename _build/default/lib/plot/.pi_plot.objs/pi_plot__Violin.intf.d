lib/plot/violin.mli:
