type t = { width : int; height : int; cells : Bytes.t }

let create ~width ~height =
  if width < 1 || height < 1 then invalid_arg "Canvas.create: nonpositive size";
  { width; height; cells = Bytes.make (width * height) ' ' }

let width t = t.width
let height t = t.height

let in_bounds t x y = x >= 0 && x < t.width && y >= 0 && y < t.height

let set t ~x ~y c = if in_bounds t x y then Bytes.set t.cells ((y * t.width) + x) c

let get t x y = Bytes.get t.cells ((y * t.width) + x)

let set_if_empty t ~x ~y c =
  if in_bounds t x y && get t x y = ' ' then Bytes.set t.cells ((y * t.width) + x) c

let text t ~x ~y s = String.iteri (fun i c -> set t ~x:(x + i) ~y c) s

let hline t ~y ~x0 ~x1 c =
  for x = min x0 x1 to max x0 x1 do
    set t ~x ~y c
  done

let vline t ~x ~y0 ~y1 c =
  for y = min y0 y1 to max y0 y1 do
    set t ~x ~y c
  done

let render t =
  let buffer = Buffer.create (t.width * t.height) in
  for y = 0 to t.height - 1 do
    let row = Bytes.sub_string t.cells (y * t.width) t.width in
    (* Trim trailing blanks per row. *)
    let len = ref (String.length row) in
    while !len > 0 && row.[!len - 1] = ' ' do
      decr len
    done;
    Buffer.add_string buffer (String.sub row 0 !len);
    if y < t.height - 1 then Buffer.add_char buffer '\n'
  done;
  Buffer.contents buffer
