(** Violin plots (the paper's Figure 1): one horizontal violin per
    benchmark whose width at each value is proportional to the kernel
    density estimate of the sample there; '+' marks the median. *)

val render :
  ?width:int ->
  ?rows_per_violin:int ->
  ?title:string ->
  ?x_label:string ->
  (string * float array) list ->
  string
(** [render series] with [series = (label, sample) list]; all violins share
    one x axis. Samples need at least 2 points. *)
