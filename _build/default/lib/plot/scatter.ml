module Linreg = Pi_stats.Linreg

type band = { at : float -> float * float; glyph : char }

let regression_line model x = Linreg.predict model x

let confidence_band ?(level = 0.95) model =
  {
    at =
      (fun x ->
        let i = Linreg.confidence_interval ~level model x in
        (i.Linreg.lower, i.Linreg.upper));
    glyph = ':';
  }

let prediction_band ?(level = 0.95) model =
  {
    at =
      (fun x ->
        let i = Linreg.prediction_interval ~level model x in
        (i.Linreg.lower, i.Linreg.upper));
    glyph = '.';
  }

let render ?(width = 78) ?(height = 24) ?title ?(x_label = "x") ?(y_label = "y")
    ?line ?(bands = []) ?(extra_points = []) points =
  if Array.length points = 0 then invalid_arg "Scatter.render: no points";
  let xs = Array.map fst points and ys = Array.map snd points in
  let x_lo, x_hi = Pi_stats.Descriptive.min_max xs in
  (* The y range must cover points and any bands over the x range. *)
  let y_lo = ref (fst (Pi_stats.Descriptive.min_max ys)) in
  let y_hi = ref (snd (Pi_stats.Descriptive.min_max ys)) in
  let consider y =
    if y < !y_lo then y_lo := y;
    if y > !y_hi then y_hi := y
  in
  List.iter (fun (x, y, _) -> consider y; ignore x) extra_points;
  let x_lo = List.fold_left (fun acc (x, _, _) -> Float.min acc x) x_lo extra_points in
  let x_hi = List.fold_left (fun acc (x, _, _) -> Float.max acc x) x_hi extra_points in
  List.iter
    (fun band ->
      let steps = 32 in
      for i = 0 to steps do
        let x = x_lo +. ((x_hi -. x_lo) *. float_of_int i /. float_of_int steps) in
        let lo, hi = band.at x in
        consider lo;
        consider hi
      done)
    bands;
  let top = if title = None then 1 else 2 in
  let canvas = Canvas.create ~width ~height in
  let axes =
    Axes.create ~x_min:x_lo ~x_max:x_hi ~y_min:!y_lo ~y_max:!y_hi ~left:9
      ~right:(width - 2) ~top ~bottom:(height - 3)
  in
  (match title with Some t -> Canvas.text canvas ~x:2 ~y:0 t | None -> ());
  Axes.draw_frame canvas axes ~x_label ~y_label;
  (* Bands first (lowest priority), then line, then data points. *)
  List.iter
    (fun band ->
      for cx = 9 to width - 2 do
        let frac = float_of_int (cx - 9) /. float_of_int (width - 11) in
        let x = x_lo +. (frac *. (x_hi -. x_lo)) in
        let lo, hi = band.at x in
        Canvas.set_if_empty canvas ~x:cx ~y:(Axes.y_of axes lo) band.glyph;
        Canvas.set_if_empty canvas ~x:cx ~y:(Axes.y_of axes hi) band.glyph
      done)
    bands;
  (match line with
  | Some f ->
      for cx = 9 to width - 2 do
        let frac = float_of_int (cx - 9) /. float_of_int (width - 11) in
        let x = x_lo +. (frac *. (x_hi -. x_lo)) in
        Canvas.set canvas ~x:cx ~y:(Axes.y_of axes (f x)) '*'
      done
  | None -> ());
  Array.iter
    (fun (x, y) -> Canvas.set canvas ~x:(Axes.x_of axes x) ~y:(Axes.y_of axes y) 'o')
    points;
  List.iter
    (fun (x, y, glyph) -> Canvas.set canvas ~x:(Axes.x_of axes x) ~y:(Axes.y_of axes y) glyph)
    extra_points;
  Canvas.render canvas
