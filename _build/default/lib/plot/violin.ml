let render ?(width = 78) ?(rows_per_violin = 3) ?title ?(x_label = "") series =
  if series = [] then invalid_arg "Violin.render: empty";
  List.iter
    (fun (_, s) -> if Array.length s < 2 then invalid_arg "Violin.render: sample too small")
    series;
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 series + 1
  in
  let x_lo, x_hi =
    List.fold_left
      (fun (lo, hi) (_, s) ->
        let slo, shi = Pi_stats.Descriptive.min_max s in
        (Float.min lo slo, Float.max hi shi))
      (infinity, neg_infinity) series
  in
  let x_lo, x_hi = if x_hi > x_lo then (x_lo, x_hi) else (x_lo -. 0.5, x_hi +. 0.5) in
  let plot_left = label_width + 1 in
  let plot_right = width - 2 in
  let plot_cols = plot_right - plot_left + 1 in
  let title_rows = match title with Some _ -> 2 | None -> 0 in
  let height = title_rows + (List.length series * (rows_per_violin + 1)) + 3 in
  let canvas = Canvas.create ~width ~height in
  (match title with Some t -> Canvas.text canvas ~x:2 ~y:0 t | None -> ());
  let half = rows_per_violin / 2 in
  List.iteri
    (fun idx (label, sample) ->
      let center_row = title_rows + (idx * (rows_per_violin + 1)) + half in
      Canvas.text canvas ~x:0 ~y:center_row label;
      let kde = Pi_stats.Density.fit sample in
      let densities =
        Array.init plot_cols (fun i ->
            let x =
              x_lo +. ((x_hi -. x_lo) *. float_of_int i /. float_of_int (max 1 (plot_cols - 1)))
            in
            Pi_stats.Density.evaluate kde x)
      in
      let peak = Array.fold_left Float.max 1e-300 densities in
      Array.iteri
        (fun i d ->
          let thickness =
            int_of_float (Float.round (d /. peak *. float_of_int half))
          in
          let col = plot_left + i in
          if d /. peak > 0.02 then begin
            Canvas.set canvas ~x:col ~y:center_row '=';
            for k = 1 to thickness do
              Canvas.set canvas ~x:col ~y:(center_row - k) '#';
              Canvas.set canvas ~x:col ~y:(center_row + k) '#'
            done
          end)
        densities;
      let median = Pi_stats.Descriptive.median sample in
      let mcol =
        plot_left
        + int_of_float
            (Float.round ((median -. x_lo) /. (x_hi -. x_lo) *. float_of_int (plot_cols - 1)))
      in
      Canvas.set canvas ~x:mcol ~y:center_row '+')
    series;
  (* Shared x axis. *)
  let axis_row = height - 2 in
  Canvas.hline canvas ~y:axis_row ~x0:plot_left ~x1:plot_right '-';
  List.iter
    (fun v ->
      let col =
        plot_left
        + int_of_float
            (Float.round ((v -. x_lo) /. (x_hi -. x_lo) *. float_of_int (plot_cols - 1)))
      in
      Canvas.set canvas ~x:col ~y:axis_row '+';
      let label = Axes.format_tick v in
      Canvas.text canvas ~x:(col - (String.length label / 2)) ~y:(axis_row + 1) label)
    (Axes.nice_ticks ~lo:x_lo ~hi:x_hi ~max_ticks:7);
  Canvas.text canvas
    ~x:(plot_left + (plot_cols / 2) - (String.length x_label / 2))
    ~y:(height - 1) x_label;
  Canvas.render canvas
