(** Horizontal bar charts, including the stacked form used for the paper's
    Figure 6 (cumulative r^2 per event) and the error-bar form used for
    Figures 7 and 8. *)

val render :
  ?width:int ->
  ?max_value:float ->
  ?title:string ->
  (string * float) list ->
  string
(** Simple horizontal bars with numeric suffixes. *)

val render_stacked :
  ?width:int ->
  ?title:string ->
  segment_glyphs:char list ->
  legend:string list ->
  (string * float list) list ->
  string
(** Each row stacks its segments left to right; a shared legend line maps
    glyphs to series names. All values must be >= 0. *)

val render_intervals :
  ?width:int ->
  ?title:string ->
  (string * float * float * float) list ->
  string
(** [(label, lower, estimate, upper)] rows as 'lo ---|*|--- hi' spans on a
    shared scale. *)
