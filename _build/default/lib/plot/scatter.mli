(** Scatter plots with an optional regression line and 95% confidence /
    prediction bands — the paper's Figure 2/3/5 style. *)

type band = { at : float -> float * float; glyph : char }
(** [at x] returns the (lower, upper) bounds of the band at [x]. *)

val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  ?line:(float -> float) ->
  ?bands:band list ->
  ?extra_points:(float * float * char) list ->
  (float * float) array ->
  string
(** [render points] draws the points ('o'), then [line] ('*'), then each
    band edge with its glyph. [extra_points] are highlighted markers. *)

val regression_line : Pi_stats.Linreg.t -> float -> float

val confidence_band : ?level:float -> Pi_stats.Linreg.t -> band
val prediction_band : ?level:float -> Pi_stats.Linreg.t -> band
