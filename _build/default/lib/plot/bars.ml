let label_width rows = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows

let render ?(width = 78) ?max_value ?title rows =
  if rows = [] then invalid_arg "Bars.render: empty";
  let lw = label_width rows + 1 in
  let peak =
    match max_value with
    | Some v -> v
    | None -> List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-300 rows
  in
  let bar_cols = max 8 (width - lw - 12) in
  let buffer = Buffer.create 256 in
  (match title with Some t -> Buffer.add_string buffer (t ^ "\n") | None -> ());
  List.iter
    (fun (label, v) ->
      let n = int_of_float (Float.round (v /. peak *. float_of_int bar_cols)) in
      Buffer.add_string buffer
        (Printf.sprintf "%-*s %s %.3f\n" lw label (String.make (max 0 n) '#') v))
    rows;
  Buffer.contents buffer

let render_stacked ?(width = 78) ?title ~segment_glyphs ~legend rows =
  if rows = [] then invalid_arg "Bars.render_stacked: empty";
  if List.length segment_glyphs < List.length legend then
    invalid_arg "Bars.render_stacked: not enough glyphs";
  let lw = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows + 1 in
  let peak =
    List.fold_left
      (fun acc (_, segments) ->
        if List.exists (fun s -> s < 0.0) segments then
          invalid_arg "Bars.render_stacked: negative segment";
        Float.max acc (List.fold_left ( +. ) 0.0 segments))
      1e-300 rows
  in
  let bar_cols = max 8 (width - lw - 10) in
  let buffer = Buffer.create 512 in
  (match title with Some t -> Buffer.add_string buffer (t ^ "\n") | None -> ());
  Buffer.add_string buffer
    (Printf.sprintf "%-*s legend: %s\n" lw ""
       (String.concat "  "
          (List.map2 (fun glyph name -> Printf.sprintf "%c=%s" glyph name)
             (List.filteri (fun i _ -> i < List.length legend) segment_glyphs)
             legend)));
  List.iter
    (fun (label, segments) ->
      let total = List.fold_left ( +. ) 0.0 segments in
      let bar = Buffer.create bar_cols in
      List.iteri
        (fun i v ->
          let n = int_of_float (Float.round (v /. peak *. float_of_int bar_cols)) in
          Buffer.add_string bar (String.make (max 0 n) (List.nth segment_glyphs i)))
        segments;
      Buffer.add_string buffer (Printf.sprintf "%-*s %s %.3f\n" lw label (Buffer.contents bar) total))
    rows;
  Buffer.contents buffer

let render_intervals ?(width = 78) ?title rows =
  if rows = [] then invalid_arg "Bars.render_intervals: empty";
  let lw = List.fold_left (fun acc (l, _, _, _) -> max acc (String.length l)) 0 rows + 1 in
  let lo, hi =
    List.fold_left
      (fun (lo, hi) (_, l, _, u) -> (Float.min lo l, Float.max hi u))
      (infinity, neg_infinity) rows
  in
  let lo, hi = if hi > lo then (lo, hi) else (lo -. 0.5, hi +. 0.5) in
  let span_cols = max 10 (width - lw - 26) in
  let col_of v =
    int_of_float (Float.round ((v -. lo) /. (hi -. lo) *. float_of_int (span_cols - 1)))
  in
  let buffer = Buffer.create 512 in
  (match title with Some t -> Buffer.add_string buffer (t ^ "\n") | None -> ());
  List.iter
    (fun (label, l, e, u) ->
      let line = Bytes.make span_cols ' ' in
      let cl = col_of l and ce = col_of e and cu = col_of u in
      for c = cl to cu do
        Bytes.set line c '-'
      done;
      Bytes.set line cl '[';
      Bytes.set line cu ']';
      Bytes.set line ce '*';
      Buffer.add_string buffer
        (Printf.sprintf "%-*s %s  %.3f [%.3f, %.3f]\n" lw label (Bytes.to_string line) e l u))
    rows;
  Buffer.add_string buffer
    (Printf.sprintf "%-*s %s\n" lw ""
       (Printf.sprintf "%-*s%s" (span_cols - String.length (Axes.format_tick hi))
          (Axes.format_tick lo) (Axes.format_tick hi)));
  Buffer.contents buffer
