(** Linear data-to-canvas coordinate mapping with nice tick labels. *)

type t

val create :
  x_min:float -> x_max:float -> y_min:float -> y_max:float ->
  left:int -> right:int -> top:int -> bottom:int -> t
(** Maps data rectangle to the canvas region [\[left, right\]] x
    [\[top, bottom\]] (canvas rows grow downward, data y grows upward).
    Degenerate ranges are padded automatically. *)

val x_of : t -> float -> int
val y_of : t -> float -> int

val nice_ticks : lo:float -> hi:float -> max_ticks:int -> float list
(** Round tick positions covering [\[lo, hi\]]. *)

val draw_frame :
  Canvas.t -> t -> x_label:string -> y_label:string -> unit
(** Axis lines, ticks and numeric labels around the plot region. *)

val format_tick : float -> string
