(** Character canvas for terminal figures. Coordinates are (column, row)
    with row 0 at the top; data-space mapping is the caller's business
    (see {!Axes}). *)

type t

val create : width:int -> height:int -> t
val width : t -> int
val height : t -> int

val set : t -> x:int -> y:int -> char -> unit
(** Out-of-bounds writes are ignored (clipping). *)

val set_if_empty : t -> x:int -> y:int -> char -> unit
(** Write only over blank cells, so bands do not erase points. *)

val text : t -> x:int -> y:int -> string -> unit

val hline : t -> y:int -> x0:int -> x1:int -> char -> unit
val vline : t -> x:int -> y0:int -> y1:int -> char -> unit

val render : t -> string
(** Rows joined with newlines, trailing blanks trimmed. *)
