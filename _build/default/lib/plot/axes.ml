type t = {
  x_min : float;
  x_max : float;
  y_min : float;
  y_max : float;
  left : int;
  right : int;
  top : int;
  bottom : int;
}

let pad_degenerate lo hi =
  if hi > lo then (lo, hi)
  else
    let pad = if Float.abs lo > 1e-12 then Float.abs lo *. 0.05 else 0.5 in
    (lo -. pad, hi +. pad)

let create ~x_min ~x_max ~y_min ~y_max ~left ~right ~top ~bottom =
  if right <= left || bottom <= top then invalid_arg "Axes.create: empty region";
  let x_min, x_max = pad_degenerate x_min x_max in
  let y_min, y_max = pad_degenerate y_min y_max in
  { x_min; x_max; y_min; y_max; left; right; top; bottom }

let x_of t v =
  let frac = (v -. t.x_min) /. (t.x_max -. t.x_min) in
  t.left + int_of_float (Float.round (frac *. float_of_int (t.right - t.left)))

let y_of t v =
  let frac = (v -. t.y_min) /. (t.y_max -. t.y_min) in
  t.bottom - int_of_float (Float.round (frac *. float_of_int (t.bottom - t.top)))

let nice_step rough =
  let magnitude = 10.0 ** Float.of_int (int_of_float (Float.floor (log10 rough))) in
  let residual = rough /. magnitude in
  let nice = if residual <= 1.0 then 1.0 else if residual <= 2.0 then 2.0 else if residual <= 5.0 then 5.0 else 10.0 in
  nice *. magnitude

let nice_ticks ~lo ~hi ~max_ticks =
  if hi <= lo || max_ticks < 2 then [ lo; hi ]
  else begin
    let step = nice_step ((hi -. lo) /. float_of_int (max_ticks - 1)) in
    let first = Float.round (lo /. step) *. step in
    let first = if first < lo -. (step /. 2.0) then first +. step else first in
    let rec collect acc v =
      if v > hi +. (step /. 2.0) then List.rev acc else collect (v :: acc) (v +. step)
    in
    collect [] first
  end

let format_tick v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else if Float.abs (v -. Float.round v) < 1e-9 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let draw_frame canvas t ~x_label ~y_label =
  Canvas.vline canvas ~x:t.left ~y0:t.top ~y1:t.bottom '|';
  Canvas.hline canvas ~y:t.bottom ~x0:t.left ~x1:t.right '-';
  Canvas.set canvas ~x:t.left ~y:t.bottom '+';
  List.iter
    (fun v ->
      let x = x_of t v in
      Canvas.set canvas ~x ~y:t.bottom '+';
      let label = format_tick v in
      Canvas.text canvas ~x:(x - (String.length label / 2)) ~y:(t.bottom + 1) label)
    (nice_ticks ~lo:t.x_min ~hi:t.x_max ~max_ticks:7);
  List.iter
    (fun v ->
      let y = y_of t v in
      Canvas.set canvas ~x:t.left ~y '+';
      let label = format_tick v in
      Canvas.text canvas ~x:(t.left - String.length label - 1) ~y label)
    (nice_ticks ~lo:t.y_min ~hi:t.y_max ~max_ticks:6);
  Canvas.text canvas
    ~x:((t.left + t.right) / 2 - (String.length x_label / 2))
    ~y:(t.bottom + 2) x_label;
  Canvas.text canvas ~x:1 ~y:(max 0 (t.top - 1)) y_label
