type t = { seed : int; code : Code_layout.t; data : Data_layout.t }

let make ?(heap_random = false) ?(aslr = false) program ~seed =
  let code =
    if seed = 0 then Code_layout.natural program else Code_layout.randomized program ~seed
  in
  let aslr_seed = if aslr then Some (seed * 31 + 17) else None in
  let data =
    if heap_random then Data_layout.randomized ?aslr_seed program ~seed
    else Data_layout.bump ?aslr_seed program
  in
  { seed; code; data }

let natural program = make program ~seed:0

let batch ?heap_random ?aslr program ~seeds =
  Array.to_list (Array.map (fun seed -> make ?heap_random ?aslr program ~seed) seeds)
