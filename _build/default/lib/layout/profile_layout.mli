(** Profile-guided code placement (Pettis & Hansen, PLDI'90 style).

    The paper notes (Section 2.2) that thoughtful placement optimizations
    would shrink the very variance interferometry exploits — "nevertheless,
    most production code is not optimized with code placement in mind".
    This module implements the classic counterexample: procedure ordering
    by call affinity. A profiling trace yields caller/callee transition
    weights; greedy cluster merging produces a procedure order that puts
    hot call chains adjacent, and the linker lays them out consecutively.

    The ablation harness uses it to show that an optimized layout sits at
    the favourable edge of the random-layout CPI distribution. *)

val affinity_edges : Pi_isa.Trace.t -> (int * int * int) list
(** Undirected (proc_a, proc_b, weight) edges with [proc_a < proc_b],
    weighted by dynamic transitions between the two procedures. *)

val procedure_chains : Pi_isa.Trace.t -> int list
(** Global procedure order from greedy heaviest-edge cluster merging;
    includes every procedure (cold ones last, in id order). *)

val order : Pi_isa.Trace.t -> Code_layout.order
(** The global chain order expressed under the linker's constraints (object
    files are reordered by their hottest member; procedures within each
    object follow the chain order). *)

val layout : Pi_isa.Trace.t -> Code_layout.t
(** [link] of {!order} — the optimized executable's code placement. *)
