(** Code placement: the linker model.

    Following the paper's Camino methodology, an executable's code layout is
    determined by (a) the order of procedures within each object file and
    (b) the order of object files on the linker command line; the linker
    lays code out in the order encountered. Both orders are derived from a
    PRNG seed so any placement can be regenerated exactly. Blocks within a
    procedure stay in program order (the compiler fixed them); procedures
    are aligned to 16 bytes as real linkers do. *)

type order = {
  object_order : int array;  (** permutation of object-file ids *)
  proc_orders : int array array;
      (** [proc_orders.(obj_id)] permutes that object's procedure list *)
}

type t = {
  program : Pi_isa.Program.t;
  order : order;
  base : int;
  block_addr : int array;  (** start address of every block *)
  block_bytes : int array;
  branch_pc : int array;  (** instruction address of each conditional branch *)
  ibr_pc : int array;  (** instruction address of each indirect branch *)
  block_term_pc : int array;  (** address of each block's terminator *)
  total_bytes : int;
}

val natural_order : Pi_isa.Program.t -> order
(** Object files and procedures in declaration order — the "as compiled"
    baseline layout. *)

val random_order : Pi_isa.Program.t -> seed:int -> order
(** Seeded pseudo-random procedure and object reordering; equal seeds give
    equal orders. *)

val link : ?base:int -> ?proc_align:int -> Pi_isa.Program.t -> order -> t
(** Assign addresses. [base] defaults to 0x400000 (the conventional x86-64
    text start); [proc_align] defaults to 16. *)

val natural : Pi_isa.Program.t -> t
val randomized : Pi_isa.Program.t -> seed:int -> t

val block_address : t -> int -> int
val branch_address : t -> int -> int

val overlaps : t -> bool
(** True if any two blocks overlap — always false for a correct linker;
    exposed for tests. *)
