lib/layout/run_limiter.mli: Pi_isa
