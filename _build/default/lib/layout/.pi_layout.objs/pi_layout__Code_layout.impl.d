lib/layout/code_layout.ml: Array Pi_isa Pi_stats
