lib/layout/data_layout.ml: Array List Pi_isa Pi_stats
