lib/layout/placement.ml: Array Code_layout Data_layout
