lib/layout/data_layout.mli: Pi_isa
