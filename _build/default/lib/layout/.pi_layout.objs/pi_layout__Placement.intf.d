lib/layout/placement.mli: Code_layout Data_layout Pi_isa
