lib/layout/code_layout.mli: Pi_isa
