lib/layout/profile_layout.mli: Code_layout Pi_isa
