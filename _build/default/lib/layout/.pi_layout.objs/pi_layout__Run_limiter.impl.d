lib/layout/run_limiter.ml: Array Hashtbl Pi_isa
