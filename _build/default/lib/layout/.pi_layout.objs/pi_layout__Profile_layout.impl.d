lib/layout/profile_layout.ml: Array Code_layout Hashtbl List Option Pi_isa
