module Program = Pi_isa.Program
module Trace = Pi_isa.Trace
module Rng = Pi_stats.Rng

type t = {
  program : Program.t;
  global_base : int array;
  heap_base : int array array;
}

let default_data_base = 0x600000
let default_heap_base = 0x2000000

let align_up addr alignment = (addr + alignment - 1) / alignment * alignment

(* Randomized slots are rounded to cache-line multiples, not powers of two:
   power-of-two slot sizes would make every object base alias onto a handful
   of cache sets, destroying exactly the placement diversity the randomizing
   allocator exists to create. *)
let slot_size_of n = (n + 63) / 64 * 64

let page = 4096

(* ASLR: the OS shifts segment bases by a random number of pages per
   execution. Page-aligned shifts leave the (page-sized) L1 set mapping
   intact but move lines across L2 sets. *)
let aslr_shift seed stream =
  match seed with
  | None -> 0
  | Some s -> page * Rng.int (Rng.named_stream (Rng.create s) stream) 512

let bump ?(data_base = default_data_base) ?(heap_base_addr = default_heap_base) ?aslr_seed
    (p : Program.t) =
  let data_base = data_base + aslr_shift aslr_seed "data" in
  let heap_base_addr = heap_base_addr + aslr_shift aslr_seed "heap" in
  let cursor = ref data_base in
  let global_base =
    Array.map
      (fun (g : Program.global_def) ->
        cursor := align_up !cursor 16;
        let here = !cursor in
        cursor := !cursor + g.size;
        here)
      p.globals
  in
  let hcursor = ref heap_base_addr in
  let heap_base =
    Array.map
      (fun (s : Program.heap_site) ->
        let slot = align_up s.obj_size 16 in
        Array.init s.obj_count (fun _ ->
            let here = !hcursor in
            hcursor := !hcursor + slot;
            here))
      p.heap_sites
  in
  { program = p; global_base; heap_base }

let randomized ?(data_base = default_data_base) ?(heap_base_addr = default_heap_base)
    ?(overprovision = 2) ?aslr_seed (p : Program.t) ~seed =
  if overprovision < 1 then invalid_arg "Data_layout.randomized: overprovision < 1";
  let data_base = data_base + aslr_shift aslr_seed "data" in
  let heap_base_addr = heap_base_addr + aslr_shift aslr_seed "heap" in
  let rng = Rng.create seed in
  let global_rng = Rng.named_stream rng "globals" in
  let heap_rng = Rng.named_stream rng "heap" in
  (* Globals: random placement order and random 0-15 line gaps, so global
     bases land on varying cache sets without wasting much space. *)
  let n_globals = Array.length p.globals in
  let global_base = Array.make n_globals 0 in
  let order = Rng.permutation global_rng (max 1 n_globals) in
  let cursor = ref data_base in
  if n_globals > 0 then
    Array.iter
      (fun gi ->
        let g = p.globals.(gi) in
        cursor := align_up !cursor 16 + (64 * Rng.int global_rng 16);
        global_base.(gi) <- !cursor;
        cursor := !cursor + g.size)
      order;
  (* Heap: DieHard-style size-class arenas. Each site gets an arena of
     [overprovision * count] power-of-two slots; objects are assigned
     distinct random slots. *)
  let hcursor = ref heap_base_addr in
  let heap_base =
    Array.map
      (fun (s : Program.heap_site) ->
        let slot_size = max 64 (slot_size_of s.obj_size) in
        let slots = overprovision * s.obj_count in
        let arena = align_up !hcursor slot_size in
        hcursor := arena + (slots * slot_size);
        let slot_of_obj = Array.sub (Rng.permutation heap_rng slots) 0 s.obj_count in
        Array.map (fun slot -> arena + (slot * slot_size)) slot_of_obj)
      p.heap_sites
  in
  { program = p; global_base; heap_base }

let address t event =
  let offset = Trace.mem_offset event in
  match Trace.mem_space event with
  | Program.Global -> t.global_base.(Trace.mem_target event) + offset
  | Program.Heap -> t.heap_base.(Trace.mem_target event).(Trace.mem_obj event) + offset

let footprint_bytes t =
  let hi = ref 0 and lo = ref max_int in
  let touch base size =
    if base < !lo then lo := base;
    if base + size > !hi then hi := base + size
  in
  Array.iteri (fun i base -> touch base t.program.globals.(i).size) t.global_base;
  Array.iteri
    (fun site bases ->
      let size = t.program.heap_sites.(site).obj_size in
      Array.iter (fun base -> touch base size) bases)
    t.heap_base;
  if !hi = 0 then 0 else !hi - !lo

let no_overlap t =
  let spans = ref [] in
  Array.iteri
    (fun i base -> spans := (base, base + t.program.globals.(i).size) :: !spans)
    t.global_base;
  Array.iteri
    (fun site bases ->
      let size = t.program.heap_sites.(site).obj_size in
      Array.iter (fun base -> spans := (base, base + size) :: !spans) bases)
    t.heap_base;
  let sorted = List.sort compare !spans in
  let rec scan = function
    | (_, fin) :: ((start, _) :: _ as rest) -> if fin > start then false else scan rest
    | [ _ ] | [] -> true
  in
  scan sorted
