module Program = Pi_isa.Program
module Trace = Pi_isa.Trace

let affinity_edges (trace : Trace.t) =
  let program = trace.Trace.program in
  let weights = Hashtbl.create 64 in
  let add a b =
    if a <> b then begin
      let key = (min a b, max a b) in
      Hashtbl.replace weights key (1 + Option.value ~default:0 (Hashtbl.find_opt weights key))
    end
  in
  let seq = trace.Trace.block_seq in
  for i = 0 to Array.length seq - 2 do
    let here = program.Program.blocks.(seq.(i)).Program.proc in
    let next = program.Program.blocks.(seq.(i + 1)).Program.proc in
    add here next
  done;
  Hashtbl.fold (fun (a, b) w acc -> (a, b, w) :: acc) weights []

(* Greedy Pettis-Hansen clustering: merge the two chains joined by the
   heaviest remaining edge until no edges remain. *)
let procedure_chains (trace : Trace.t) =
  let program = trace.Trace.program in
  let n = Array.length program.Program.procs in
  let edges =
    List.sort (fun (_, _, w1) (_, _, w2) -> compare w2 w1) (affinity_edges trace)
  in
  let chain_of = Array.init n (fun i -> i) in
  (* representative chain id per proc *)
  let chains = Array.init n (fun i -> [ i ]) in
  (* representative -> member list in order *)
  let merged = Array.make n false in
  List.iter
    (fun (a, b, _) ->
      let ca = chain_of.(a) and cb = chain_of.(b) in
      if ca <> cb then begin
        (* Append chain cb after chain ca. *)
        chains.(ca) <- chains.(ca) @ chains.(cb);
        List.iter (fun p -> chain_of.(p) <- ca) chains.(cb);
        chains.(cb) <- [];
        merged.(cb) <- true
      end)
    edges;
  (* Hot chains first (by total dynamic transitions), then cold singletons. *)
  let chain_heat = Array.make n 0 in
  List.iter
    (fun (a, _, w) -> chain_heat.(chain_of.(a)) <- chain_heat.(chain_of.(a)) + w)
    (affinity_edges trace);
  let live =
    List.filter (fun i -> chains.(i) <> []) (List.init n (fun i -> i))
    |> List.sort (fun i j -> compare chain_heat.(j) chain_heat.(i))
  in
  List.concat_map (fun i -> chains.(i)) live

let order (trace : Trace.t) =
  let program = trace.Trace.program in
  let global = procedure_chains trace in
  let position = Hashtbl.create 64 in
  List.iteri (fun i p -> Hashtbl.replace position p i) global;
  let pos p = Option.value ~default:max_int (Hashtbl.find_opt position p) in
  (* Procedures within each object file follow the global chain order. *)
  let proc_orders =
    Array.map
      (fun (o : Program.object_file) ->
        let indexed = Array.mapi (fun slot proc -> (slot, pos proc)) o.Program.procs in
        Array.sort (fun (_, a) (_, b) -> compare a b) indexed;
        Array.map fst indexed)
      program.Program.objects
  in
  (* Object files ordered by their hottest member procedure. *)
  let object_rank (o : Program.object_file) =
    Array.fold_left (fun acc p -> min acc (pos p)) max_int o.Program.procs
  in
  let object_order =
    Array.init (Array.length program.Program.objects) (fun i -> i)
  in
  Array.sort
    (fun i j ->
      compare (object_rank program.Program.objects.(i)) (object_rank program.Program.objects.(j)))
    object_order;
  { Code_layout.object_order; proc_orders }

let layout (trace : Trace.t) = Code_layout.link trace.Trace.program (order trace)
