(** The paper's two-pass run-length instrumentation.

    SPEC benchmarks run far too long for 100+ measured executions, so the
    paper profiles each benchmark once, finds a procedure with a low dynamic
    invocation count that is reached near the end of a fixed time budget,
    and instruments the benchmark to stop when that procedure has executed
    the same number of times. Counting procedure invocations rather than
    elapsed time guarantees every perturbed executable retires the same
    number of instructions.

    Here the "time budget" is an executed-block budget and the
    instrumentation is an interpreter stop condition — same mechanism,
    simulated substrate. *)

type t = {
  stop_proc : int;  (** procedure id *)
  stop_count : int;  (** invocation count at which execution ends *)
  profiled_blocks : int;  (** blocks executed by the profiling pass *)
}

val choose : ?seed:int -> Pi_isa.Program.t -> budget_blocks:int -> t option
(** Profile the program for [budget_blocks] and select the cut-off
    procedure: the lowest-frequency procedure invoked at least once (ties
    broken toward later ids). Returns [None] when the program halts on its
    own within the budget — then no instrumentation is needed, mirroring the
    paper's benchmarks that "naturally run for less than two minutes". *)

val limits : t -> Pi_isa.Interp.limits
(** Interpreter limits enforcing the instrumentation (with a generous
    block-count safety net). *)

val trace : ?seed:int -> Pi_isa.Program.t -> budget_blocks:int -> Pi_isa.Trace.t
(** Convenience: profile, instrument, and produce the bounded trace in one
    step — the trace every layout of this benchmark will replay. *)
