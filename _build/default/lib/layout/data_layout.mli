(** Data placement: globals and the heap.

    The paper perturbs data addresses with a DieHard-style randomizing
    allocator: each allocation is placed in a pseudo-random slot of an
    over-provisioned size-class arena, so heap addresses — and therefore
    data-cache set indices — differ run to run while the access sequence is
    unchanged. We provide that allocator plus a deterministic bump allocator
    baseline (the "normal malloc" behaviour), both reproducible from a
    seed. *)

type t = {
  program : Pi_isa.Program.t;
  global_base : int array;  (** base address of every global *)
  heap_base : int array array;  (** [heap_base.(site).(obj)] *)
}

val bump : ?data_base:int -> ?heap_base_addr:int -> ?aslr_seed:int -> Pi_isa.Program.t -> t
(** Deterministic layout: globals packed in declaration order (16-byte
    aligned), heap objects of each site allocated contiguously in
    allocation order — what a simple malloc gives a well-behaved program.

    [aslr_seed] models address-space layout randomization: the data and
    heap segments shift by a random page count per run. The paper disables
    ASLR on its machines (Section 5.5) to keep variance attributable to the
    controlled placements; the ablation harness shows why. *)

val randomized :
  ?data_base:int -> ?heap_base_addr:int -> ?overprovision:int -> ?aslr_seed:int ->
  Pi_isa.Program.t -> seed:int -> t
(** DieHard-like: every heap site's objects are scattered over
    [overprovision] (default 2) times as many cache-line-granular slots as
    objects, slot assignment drawn from [seed]; globals also get a random
    permutation and random inter-object gaps. (Slots are line-multiples
    rather than powers of two so object bases cover the full range of cache
    set indices.) *)

val address : t -> int -> int
(** [address t packed_event] resolves a packed trace memory event (see
    {!Pi_isa.Trace}) to a concrete byte address. *)

val footprint_bytes : t -> int
(** Total bytes spanned by data placements (for reporting). *)

val no_overlap : t -> bool
(** All placed objects are pairwise disjoint; exposed for tests. *)
