(** A complete placement: one "executable" in interferometry terms.

    Bundles a code layout (procedure/object reordering + link) with a data
    layout (bump or randomized heap), both derived from one seed, so a
    placement is regenerated exactly from [(program, seed, heap_random)] —
    the paper's reproducible PRNG-keyed executables. *)

type t = {
  seed : int;
  code : Code_layout.t;
  data : Data_layout.t;
}

val make : ?heap_random:bool -> ?aslr:bool -> Pi_isa.Program.t -> seed:int -> t
(** Seed 0 with [heap_random = false] is the natural (unperturbed) layout;
    any other seed applies random procedure/object reordering, plus heap
    randomization when [heap_random] is set. [aslr] (default false, as on
    the paper's quiesced systems) additionally shifts the data/heap segment
    bases by a per-run random page count. *)

val natural : Pi_isa.Program.t -> t

val batch : ?heap_random:bool -> ?aslr:bool -> Pi_isa.Program.t -> seeds:int array -> t list
