module Interp = Pi_isa.Interp
module Trace = Pi_isa.Trace

type t = { stop_proc : int; stop_count : int; profiled_blocks : int }

let choose ?(seed = 42) program ~budget_blocks =
  if budget_blocks < 1 then invalid_arg "Run_limiter.choose: budget_blocks < 1";
  let profile =
    Interp.run ~seed ~limits:{ Interp.max_blocks = budget_blocks; stop_proc = None } program
  in
  if Trace.blocks_executed profile < budget_blocks then
    (* The program ended on its own inside the budget. *)
    None
  else begin
    (* Find each procedure's invocation count and the position of its last
       invocation by scanning the block sequence for procedure entries. *)
    let program = profile.Trace.program in
    let n_procs = Array.length program.Pi_isa.Program.procs in
    let entry_of = Hashtbl.create n_procs in
    Array.iter
      (fun (p : Pi_isa.Program.procedure) -> Hashtbl.replace entry_of p.entry p.proc_id)
      program.Pi_isa.Program.procs;
    let counts = Array.make n_procs 0 in
    let last_seen = Array.make n_procs (-1) in
    let seq = profile.Trace.block_seq in
    Array.iteri
      (fun i block ->
        match Hashtbl.find_opt entry_of block with
        | Some proc ->
            counts.(proc) <- counts.(proc) + 1;
            last_seen.(proc) <- i
        | None -> ())
      seq;
    (* The paper's criterion: low dynamic count AND executed near the end of
       the budget, so stopping at the same invocation count ends the run at
       nearly the same point. *)
    let near_end = Array.length seq * 9 / 10 in
    let best = ref None in
    for proc = 0 to n_procs - 1 do
      if counts.(proc) > 0 && last_seen.(proc) >= near_end then
        match !best with
        | None -> best := Some (proc, counts.(proc))
        | Some (_, best_count) ->
            if counts.(proc) < best_count then best := Some (proc, counts.(proc))
    done;
    match !best with
    | None -> None
    | Some (stop_proc, stop_count) ->
        Some { stop_proc; stop_count; profiled_blocks = Trace.blocks_executed profile }
  end

let limits t =
  {
    Interp.max_blocks = t.profiled_blocks * 2;
    stop_proc = Some (t.stop_proc, t.stop_count);
  }

let trace ?(seed = 42) program ~budget_blocks =
  match choose ~seed program ~budget_blocks with
  | None -> Interp.run ~seed ~limits:{ Interp.max_blocks = budget_blocks; stop_proc = None } program
  | Some t -> Interp.run ~seed ~limits:(limits t) program
