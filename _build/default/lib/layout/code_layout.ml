module Program = Pi_isa.Program
module Rng = Pi_stats.Rng

type order = { object_order : int array; proc_orders : int array array }

type t = {
  program : Program.t;
  order : order;
  base : int;
  block_addr : int array;
  block_bytes : int array;
  branch_pc : int array;
  ibr_pc : int array;
  block_term_pc : int array;
  total_bytes : int;
}

let natural_order (p : Program.t) =
  {
    object_order = Array.init (Array.length p.objects) (fun i -> i);
    proc_orders =
      Array.map (fun (o : Program.object_file) -> Array.init (Array.length o.procs) (fun i -> i)) p.objects;
  }

let random_order (p : Program.t) ~seed =
  let rng = Rng.create seed in
  let object_rng = Rng.named_stream rng "objects" in
  let proc_rng = Rng.named_stream rng "procs" in
  {
    object_order = Rng.permutation object_rng (Array.length p.objects);
    proc_orders =
      Array.map
        (fun (o : Program.object_file) -> Rng.permutation proc_rng (Array.length o.procs))
        p.objects;
  }

let align_up addr alignment = (addr + alignment - 1) / alignment * alignment

let link ?(base = 0x400000) ?(proc_align = 16) (p : Program.t) order =
  let n_objects = Array.length p.objects in
  if Array.length order.object_order <> n_objects then
    invalid_arg "Code_layout.link: object order arity mismatch";
  let n_blocks = Array.length p.blocks in
  let block_addr = Array.make n_blocks 0 in
  let block_bytes = Array.init n_blocks (fun i -> Program.block_bytes p i) in
  let cursor = ref base in
  Array.iter
    (fun obj_pos ->
      let obj = p.objects.(obj_pos) in
      let proc_order = order.proc_orders.(obj_pos) in
      if Array.length proc_order <> Array.length obj.procs then
        invalid_arg "Code_layout.link: procedure order arity mismatch";
      Array.iter
        (fun proc_pos ->
          let proc = p.procs.(obj.procs.(proc_pos)) in
          cursor := align_up !cursor proc_align;
          Array.iter
            (fun block_id ->
              block_addr.(block_id) <- !cursor;
              cursor := !cursor + block_bytes.(block_id))
            proc.blocks)
        proc_order)
    order.object_order;
  let block_term_pc =
    Array.init n_blocks (fun i ->
        block_addr.(i) + block_bytes.(i) - Program.terminator_bytes p.blocks.(i).term)
  in
  let branch_pc =
    Array.map (fun (b : Program.branch_info) -> block_term_pc.(b.owner)) p.branches
  in
  let ibr_pc = Array.map (fun (i : Program.ibr_info) -> block_term_pc.(i.ibr_owner)) p.ibrs in
  {
    program = p;
    order;
    base;
    block_addr;
    block_bytes;
    branch_pc;
    ibr_pc;
    block_term_pc;
    total_bytes = !cursor - base;
  }

let natural p = link p (natural_order p)
let randomized p ~seed = link p (random_order p ~seed)

let block_address t id = t.block_addr.(id)
let branch_address t id = t.branch_pc.(id)

let overlaps t =
  let n = Array.length t.block_addr in
  let spans = Array.init n (fun i -> (t.block_addr.(i), t.block_addr.(i) + t.block_bytes.(i))) in
  Array.sort compare spans;
  let rec scan i =
    if i + 1 >= n then false
    else
      let _, fin = spans.(i) and start, _ = spans.(i + 1) in
      if fin > start then true else scan (i + 1)
  in
  scan 0
