(** Branch direction behaviours.

    Each static conditional branch in a program carries a behaviour that
    decides its direction at every dynamic execution. Behaviours are chosen
    to span the predictability spectrum the paper's benchmarks exhibit:

    - [Always_taken]/[Never_taken]/strongly biased [Bernoulli]: easy for a
      bimodal predictor;
    - short [Periodic] patterns and small [Loop_trip] counts: captured by a
      two-level (GAs/gshare) predictor whose history register covers the
      period;
    - long [Periodic] patterns and large [Loop_trip] counts: beyond GAs
      history but captured by L-TAGE's long geometric histories and loop
      predictor;
    - [Correlated]: direction follows an earlier branch's latest outcome
      (optionally inverted, with flip noise) — predictable from global
      history;
    - [Bernoulli ~p:0.5]: irreducibly hard.

    Behaviour evaluation is deterministic given the interpreter seed, so the
    dynamic branch-outcome stream is identical across code layouts — the
    property program interferometry depends on. *)

type t =
  | Always_taken
  | Never_taken
  | Bernoulli of { p_taken : float }
  | Periodic of { pattern : bool array }  (** repeats forever; non-empty *)
  | Loop_trip of { trips : int }
      (** taken [trips - 1] times then not-taken once, repeating; [trips >= 1] *)
  | Alternating
  | Correlated of { src : string; invert : bool; noise : float }
      (** follows the labelled branch [src]'s most recent outcome *)

val validate : t -> (unit, string) result

val loop_pattern : trips:int -> bool array
(** The explicit pattern equivalent of [Loop_trip]. *)

val pp : Format.formatter -> t -> unit

(** Runtime evaluation state for a program's branches. *)
module State : sig
  type behavior = t
  type t

  val create : rng:Pi_stats.Rng.t -> resolved_src:int array -> behavior array -> t
  (** [resolved_src.(i)] is the branch id [Correlated] branch [i] follows
      (or [-1] for other behaviours). *)

  val next_outcome : t -> int -> bool
  (** [next_outcome state branch_id] produces the branch's next direction and
      advances its state. *)
end

(** Target selectors for indirect branches. *)
module Selector : sig
  type t =
    | Round_robin
    | Random_target
    | Periodic_targets of int array  (** indices into the target array *)

  val validate : n_targets:int -> t -> (unit, string) result

  module State : sig
    type selector = t
    type t

    val create : rng:Pi_stats.Rng.t -> (selector * int) array -> t
    (** One [(selector, n_targets)] pair per indirect branch. *)

    val next_target : t -> int -> int
    (** Index of the chosen target; advances the state. *)
  end
end
