(** Growable int array used by the interpreter to accumulate traces. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val to_array : t -> int array
