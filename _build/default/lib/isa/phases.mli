(** SimPoint-style phase analysis (Sherwood et al., ASPLOS'02).

    The paper's Section 3 simulations run "one billion instructions from
    the single simpoint that best characterizes" each benchmark. This module
    provides that machinery over our traces: split a trace into fixed-size
    intervals, summarize each by its basic-block vector (BBV, projected to a
    small dimension), cluster the vectors with k-means, and pick one
    representative interval per cluster with a weight proportional to the
    cluster's share of execution. Simulating only the representatives and
    combining results by weight approximates the full-trace behaviour at a
    fraction of the cost. *)

type interval = {
  index : int;
  start_block : int;  (** offset into the trace's block sequence *)
  length : int;  (** in executed blocks *)
  signature : float array;  (** projected, normalized basic-block vector *)
}

val intervals : ?signature_dims:int -> Trace.t -> interval_blocks:int -> interval array
(** Cut the trace into intervals of [interval_blocks] executed blocks (the
    final partial interval is kept); [signature_dims] (default 32) is the
    random-projection dimension. *)

type simpoints = {
  representatives : int array;  (** interval indices, one per cluster *)
  weights : float array;  (** cluster execution shares; sums to 1 *)
  assignment : int array;  (** cluster id of every interval *)
}

val choose : ?k:int -> ?seed:int -> interval array -> simpoints
(** K-means (k-means++-seeded, default k = min 6 (n/2)) over the interval
    signatures; the representative of each cluster is the interval closest
    to its centroid. *)

val slice : Trace.t -> start_block:int -> length:int -> Trace.t
(** The sub-trace covering [length] executed blocks from [start_block],
    with its memory-event stream and counts re-derived. Interpreter state
    (predictor/cache warmth) is the simulator's concern, exactly as with
    real SimPoint checkpoints. *)

val estimate :
  (Trace.t -> warmup_blocks:int -> float) ->
  Trace.t -> interval_blocks:int -> ?warmup_blocks:int -> ?k:int -> ?seed:int -> unit -> float
(** [estimate metric trace ~interval_blocks ()] runs [metric] only on the
    representative slices and returns the weighted combination — the
    SimPoint estimate of [metric trace ~warmup_blocks:0]. Each slice is
    extended backwards by [warmup_blocks] (default [interval_blocks]) of
    architectural warmup that [metric] must exclude from its counts, the
    standard fix for SimPoint's cold-start bias. *)
