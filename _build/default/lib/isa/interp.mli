(** Program interpreter: executes a program's CFG and records a
    layout-independent {!Trace}.

    Execution is deterministic given [seed]: branch behaviours, indirect
    selectors and randomized memory patterns all draw from streams derived
    from it. Interferometry relies on running the interpreter once per
    benchmark and reusing the trace for every layout.

    Execution stops at the first of: the entry procedure returning, a [Halt]
    terminator, [max_blocks] executed blocks, or — mirroring the paper's
    run-length instrumentation — a designated procedure reaching its target
    invocation count ([stop_proc]). *)

type limits = {
  max_blocks : int;
  stop_proc : (int * int) option;  (** procedure id, invocation count *)
}

val default_limits : limits
(** [{ max_blocks = 2_000_000; stop_proc = None }]. *)

exception Stack_overflow_in_program of string
(** Raised when call depth exceeds the interpreter's safety bound,
    indicating runaway recursion in a workload definition. *)

val run : ?seed:int -> ?limits:limits -> Program.t -> Trace.t
