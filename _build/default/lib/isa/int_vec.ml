type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Int_vec.create: capacity < 1";
  { data = Array.make capacity 0; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let grown = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Int_vec.get: out of bounds";
  t.data.(i)

let to_array t = Array.sub t.data 0 t.len
