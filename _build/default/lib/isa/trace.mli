(** Layout-independent dynamic traces.

    A trace records one execution of a program as the sequence of executed
    basic blocks plus the stream of memory references in symbolic form
    (allocation site / global id, object index, byte offset). Because the
    trace mentions only static identifiers, it is *identical for every code
    and data placement* of the program — the simulator analogue of the
    paper's semantically equivalent executables that retire the same
    instructions. Simulators combine a trace with an address map from the
    layout library to obtain concrete instruction and data addresses. *)

type t = {
  program : Program.t;
  block_seq : int array;  (** executed block ids, in order *)
  mem_events : int array;  (** packed; aligned with [Mem] instrs of [block_seq] *)
  instructions : int;  (** total retired instructions *)
  cond_branches : int;  (** dynamic conditional branches *)
  taken_branches : int;
  indirect_branches : int;
  calls : int;
  mem_refs : int;
  proc_invocations : int array;  (** per procedure id *)
}

(** {2 Packed memory events}

    A memory event packs [is_store], address space, target (global id or
    heap site id, < 4096), object index (< 2^20) and byte offset (< 2^28)
    into one OCaml int. *)

val pack_mem : is_store:bool -> space:Program.space -> target:int -> obj:int -> offset:int -> int
val mem_is_store : int -> bool
val mem_space : int -> Program.space
val mem_target : int -> int
val mem_obj : int -> int
val mem_offset : int -> int

val branch_outcomes : t -> (int * bool) array
(** [(branch_id, taken)] for every dynamic conditional branch, derived from
    the block sequence; mainly for tests and the Pin tool's convenience. *)

val blocks_executed : t -> int

val cpi_floor_hint : t -> float
(** Rough lower bound on achievable CPI from the instruction mix alone
    (issue-width limited); used by sanity checks. *)

val summary : t -> string
