(** Structured construction of programs.

    Workload generators describe procedures as statement lists (straight-line
    work, loads/stores, if/else, loops, calls, switches); the builder lowers
    them to the basic-block CFG of {!Program}, interning branch ids, indirect
    branch ids and memory-operation ids, and resolving [Correlated] branch
    labels. [finish] validates the result and raises [Failure] on a
    malformed program. *)

type t
type proc_handle
type obj_handle
type global_handle
type site_handle
type stmt

val create : name:string -> t

val add_object : t -> string -> obj_handle
(** A new object file (link unit). *)

val global : t -> name:string -> size:int -> global_handle
(** A global data object of [size] bytes (8 <= size < 2^28). *)

val heap_site : t -> name:string -> obj_size:int -> count:int -> site_handle
(** A heap allocation site producing [count] objects of [obj_size] bytes. *)

val declare_proc : t -> obj:obj_handle -> name:string -> proc_handle
val define_proc : t -> proc_handle -> stmt list -> unit

val proc : t -> obj:obj_handle -> name:string -> stmt list -> proc_handle
(** [declare_proc] + [define_proc]. *)

val entry : t -> proc_handle -> unit
val finish : t -> Program.t

(** {2 Statements} *)

val work : int -> stmt
(** [n] single-cycle integer instructions. *)

val fp_work : int -> stmt
val mul_work : int -> stmt
val div_work : int -> stmt

val load_global : global_handle -> Program.mem_pattern -> stmt
val store_global : global_handle -> Program.mem_pattern -> stmt
val load_heap : site_handle -> Program.mem_pattern -> stmt
val store_heap : site_handle -> Program.mem_pattern -> stmt

val if_ : ?label:string -> Behavior.t -> stmt list -> stmt list -> stmt
(** [if_ behavior then_ else_]; taken executes [then_]. *)

val while_ : ?label:string -> Behavior.t -> stmt list -> stmt
(** Top-test loop: taken executes the body and re-tests. *)

val do_while : ?label:string -> Behavior.t -> stmt list -> stmt
(** Bottom-test loop: the body always executes at least once. *)

val for_ : ?label:string -> trips:int -> stmt list -> stmt
(** Bottom-test loop whose body runs exactly [trips] times per entry. *)

val call : proc_handle -> stmt

val switch : Behavior.Selector.t -> stmt list array -> stmt
(** Intra-procedure indirect jump over the case bodies. *)

val icall : Behavior.Selector.t -> proc_handle array -> stmt
(** Indirect call through a function pointer table. *)

(** {2 Memory pattern helpers} *)

val seq : stride:int -> Program.mem_pattern
val rand_access : Program.mem_pattern
val chase : seed:int -> Program.mem_pattern
val fixed : int -> Program.mem_pattern
