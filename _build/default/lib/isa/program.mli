(** Static program representation.

    A program is a set of object files, each containing procedures, each a
    control-flow graph of basic blocks. Blocks contain abstract instructions
    whose byte sizes model x86-64 encodings, so a linker can assign concrete
    instruction addresses — the quantity program interferometry perturbs.
    Data lives in named global objects and heap allocation sites; memory
    instructions reference data symbolically (object + evolving offset), so
    the access *sequence* is placement independent while the *addresses* are
    controlled by the layout library. *)

type space = Global | Heap

type mem_pattern =
  | Fixed_offset of int
  | Sequential of { stride : int }  (** advances by [stride], wraps at size *)
  | Random_uniform  (** fresh uniform offset each access *)
  | Chase of { perm_seed : int }
      (** pointer chase: walks a seeded permutation of the site's objects
          (Heap) or of the object's cache lines (Global) *)

type mem_op = {
  mem_id : int;
  space : space;
  target : int;  (** global id or heap site id *)
  pattern : mem_pattern;
  is_store : bool;
}

type instr =
  | Plain of int  (** [n] single-uop integer ops *)
  | Fp of int  (** [n] floating-point ops *)
  | Mul of int
  | Div of int
  | Mem of int  (** index into [mem_ops] *)

type terminator =
  | Jump of int  (** unconditional, target block *)
  | Branch of { branch : int; taken : int; not_taken : int }
  | Call of { callee : int; return_to : int }
  | Indirect_call of { ibr : int; callees : int array; return_to : int }
  | Switch of { ibr : int; targets : int array }  (** intra-procedure indirect jump *)
  | Return
  | Halt

type block = { block_id : int; proc : int; instrs : instr array; term : terminator }

type branch_info = {
  branch_id : int;
  owner : int;  (** block id *)
  behavior : Behavior.t;
  label : string option;
  resolved_src : int;  (** branch id a [Correlated] behaviour follows; -1 otherwise *)
}

type ibr_info = {
  ibr_id : int;
  ibr_owner : int;
  selector : Behavior.Selector.t;
  n_targets : int;
}

type procedure = { proc_id : int; proc_name : string; entry : int; blocks : int array }

type object_file = { obj_id : int; obj_name : string; procs : int array }

type global_def = { global_id : int; global_name : string; size : int }

type heap_site = {
  site_id : int;
  site_name : string;
  obj_size : int;
  obj_count : int;
}

type t = {
  name : string;
  objects : object_file array;
  procs : procedure array;
  blocks : block array;
  branches : branch_info array;
  ibrs : ibr_info array;
  mem_ops : mem_op array;
  globals : global_def array;
  heap_sites : heap_site array;
  entry_proc : int;
}

val validate : t -> (unit, string) result
(** Structural well-formedness: ids are dense and consistent, branch targets
    stay within the owning procedure, calls reference real procedures,
    behaviours validate, memory targets exist. *)

val instr_bytes : instr -> int
(** Modelled x86-64 encoding size. *)

val terminator_bytes : terminator -> int

val block_bytes : t -> int -> int
(** Total byte size of a block, terminator included. *)

val block_instr_count : t -> int -> int
(** Retired-instruction count of one execution of the block (terminator
    counts as one instruction; [Plain n] counts as [n]). *)

val block_uops : t -> int -> int

val proc_bytes : t -> int -> int

val total_code_bytes : t -> int

val static_branch_count : t -> int

val static_stats : t -> string
(** One-line human summary (blocks, branches, procedures, code bytes). *)

val pp_instr : Format.formatter -> instr -> unit
