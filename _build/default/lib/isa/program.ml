type space = Global | Heap

type mem_pattern =
  | Fixed_offset of int
  | Sequential of { stride : int }
  | Random_uniform
  | Chase of { perm_seed : int }

type mem_op = {
  mem_id : int;
  space : space;
  target : int;
  pattern : mem_pattern;
  is_store : bool;
}

type instr = Plain of int | Fp of int | Mul of int | Div of int | Mem of int

type terminator =
  | Jump of int
  | Branch of { branch : int; taken : int; not_taken : int }
  | Call of { callee : int; return_to : int }
  | Indirect_call of { ibr : int; callees : int array; return_to : int }
  | Switch of { ibr : int; targets : int array }
  | Return
  | Halt

type block = { block_id : int; proc : int; instrs : instr array; term : terminator }

type branch_info = {
  branch_id : int;
  owner : int;
  behavior : Behavior.t;
  label : string option;
  resolved_src : int;
}

type ibr_info = {
  ibr_id : int;
  ibr_owner : int;
  selector : Behavior.Selector.t;
  n_targets : int;
}

type procedure = { proc_id : int; proc_name : string; entry : int; blocks : int array }
type object_file = { obj_id : int; obj_name : string; procs : int array }
type global_def = { global_id : int; global_name : string; size : int }

type heap_site = {
  site_id : int;
  site_name : string;
  obj_size : int;
  obj_count : int;
}

type t = {
  name : string;
  objects : object_file array;
  procs : procedure array;
  blocks : block array;
  branches : branch_info array;
  ibrs : ibr_info array;
  mem_ops : mem_op array;
  globals : global_def array;
  heap_sites : heap_site array;
  entry_proc : int;
}

let instr_bytes = function
  | Plain n -> 4 * n
  | Fp n -> 5 * n
  | Mul n -> 4 * n
  | Div n -> 3 * n
  | Mem _ -> 5

let terminator_bytes = function
  | Jump _ -> 5
  | Branch _ -> 6
  | Call _ -> 5
  | Indirect_call _ -> 7
  | Switch _ -> 7
  | Return -> 1
  | Halt -> 2

let block_bytes t id =
  let b = t.blocks.(id) in
  Array.fold_left (fun acc i -> acc + instr_bytes i) (terminator_bytes b.term) b.instrs

let instr_count = function
  | Plain n | Fp n | Mul n | Div n -> n
  | Mem _ -> 1

let block_instr_count t id =
  let b = t.blocks.(id) in
  Array.fold_left (fun acc i -> acc + instr_count i) 1 b.instrs

let instr_uops = function
  | Plain n | Fp n | Mul n | Div n -> n
  | Mem _ -> 1

let block_uops t id =
  let b = t.blocks.(id) in
  Array.fold_left (fun acc i -> acc + instr_uops i) 1 b.instrs

let proc_bytes t proc_id =
  Array.fold_left (fun acc b -> acc + block_bytes t b) 0 t.procs.(proc_id).blocks

let total_code_bytes t =
  Array.fold_left (fun acc (p : procedure) -> acc + proc_bytes t p.proc_id) 0 t.procs

let static_branch_count t = Array.length t.branches

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let check cond msg = if cond then Ok () else Error msg

let iter_result f a =
  Array.fold_left (fun acc x -> match acc with Error _ -> acc | Ok () -> f x) (Ok ()) a

let validate t =
  let n_blocks = Array.length t.blocks in
  let n_procs = Array.length t.procs in
  let valid_block id = id >= 0 && id < n_blocks in
  let valid_proc id = id >= 0 && id < n_procs in
  let* () = check (n_blocks > 0) "program has no blocks" in
  let* () = check (valid_proc t.entry_proc) "entry procedure out of range" in
  let* () =
    iter_result
      (fun (b : block) ->
        let* () = check (valid_proc b.proc) "block with bad procedure id" in
        let same_proc id = valid_block id && t.blocks.(id).proc = b.proc in
        let* () =
          iter_result
            (function
              | Plain n | Fp n | Mul n | Div n ->
                  check (n >= 1) "instruction with nonpositive repeat"
              | Mem m -> check (m >= 0 && m < Array.length t.mem_ops) "bad mem op id")
            b.instrs
        in
        match b.term with
        | Jump target -> check (same_proc target) "jump leaves procedure"
        | Branch { branch; taken; not_taken } ->
            let* () = check (branch >= 0 && branch < Array.length t.branches) "bad branch id" in
            let* () = check (t.branches.(branch).owner = b.block_id) "branch owner mismatch" in
            let* () = check (same_proc taken) "branch taken target leaves procedure" in
            check (same_proc not_taken) "branch fall-through leaves procedure"
        | Call { callee; return_to } ->
            let* () = check (valid_proc callee) "call to unknown procedure" in
            check (same_proc return_to) "call return target leaves procedure"
        | Indirect_call { ibr; callees; return_to } ->
            let* () = check (ibr >= 0 && ibr < Array.length t.ibrs) "bad ibr id" in
            let* () = check (Array.length callees > 0) "indirect call with no callees" in
            let* () =
              iter_result (fun c -> check (valid_proc c) "indirect call to unknown procedure") callees
            in
            check (same_proc return_to) "indirect call return target leaves procedure"
        | Switch { ibr; targets } ->
            let* () = check (ibr >= 0 && ibr < Array.length t.ibrs) "bad ibr id" in
            let* () = check (Array.length targets > 0) "switch with no targets" in
            iter_result (fun target -> check (same_proc target) "switch target leaves procedure") targets
        | Return | Halt -> Ok ())
      t.blocks
  in
  let* () =
    iter_result
      (fun (br : branch_info) ->
        let* () = Behavior.validate br.behavior in
        match br.behavior with
        | Behavior.Correlated _ ->
            check
              (br.resolved_src >= 0 && br.resolved_src < Array.length t.branches)
              "correlated branch with unresolved source"
        | _ -> Ok ())
      t.branches
  in
  let* () =
    iter_result
      (fun (ib : ibr_info) -> Behavior.Selector.validate ~n_targets:ib.n_targets ib.selector)
      t.ibrs
  in
  let* () =
    iter_result
      (fun (m : mem_op) ->
        match m.space with
        | Global ->
            let* () =
              check (m.target >= 0 && m.target < Array.length t.globals) "mem op: bad global id"
            in
            check (t.globals.(m.target).size > 0) "global with nonpositive size"
        | Heap ->
            let* () =
              check
                (m.target >= 0 && m.target < Array.length t.heap_sites)
                "mem op: bad heap site id"
            in
            let s = t.heap_sites.(m.target) in
            check (s.obj_size > 0 && s.obj_count > 0) "heap site with nonpositive geometry")
      t.mem_ops
  in
  let* () =
    iter_result
      (fun (p : procedure) ->
        let* () = check (valid_block p.entry) "procedure entry out of range" in
        let* () = check (t.blocks.(p.entry).proc = p.proc_id) "procedure entry in other procedure" in
        iter_result
          (fun b ->
            check (valid_block b && t.blocks.(b).proc = p.proc_id) "procedure lists foreign block")
          p.blocks)
      t.procs
  in
  iter_result
    (fun (o : object_file) ->
      iter_result (fun p -> check (valid_proc p) "object file lists unknown procedure") o.procs)
    t.objects

let static_stats t =
  Printf.sprintf "%s: %d objects, %d procs, %d blocks, %d branches, %d ibrs, %d mem ops, %d code bytes"
    t.name (Array.length t.objects) (Array.length t.procs) (Array.length t.blocks)
    (Array.length t.branches) (Array.length t.ibrs) (Array.length t.mem_ops)
    (total_code_bytes t)

let pp_instr ppf = function
  | Plain n -> Format.fprintf ppf "plain(%d)" n
  | Fp n -> Format.fprintf ppf "fp(%d)" n
  | Mul n -> Format.fprintf ppf "mul(%d)" n
  | Div n -> Format.fprintf ppf "div(%d)" n
  | Mem m -> Format.fprintf ppf "mem(%d)" m
