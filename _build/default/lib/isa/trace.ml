type t = {
  program : Program.t;
  block_seq : int array;
  mem_events : int array;
  instructions : int;
  cond_branches : int;
  taken_branches : int;
  indirect_branches : int;
  calls : int;
  mem_refs : int;
  proc_invocations : int array;
}

(* Packing layout, LSB first: offset:28 | obj:20 | target:12 | space:1 | store:1 *)

let offset_bits = 28
let obj_bits = 20
let target_bits = 12
let obj_shift = offset_bits
let target_shift = offset_bits + obj_bits
let space_shift = target_shift + target_bits
let store_shift = space_shift + 1

let pack_mem ~is_store ~space ~target ~obj ~offset =
  if offset < 0 || offset >= 1 lsl offset_bits then invalid_arg "Trace.pack_mem: offset out of range";
  if obj < 0 || obj >= 1 lsl obj_bits then invalid_arg "Trace.pack_mem: object index out of range";
  if target < 0 || target >= 1 lsl target_bits then invalid_arg "Trace.pack_mem: target out of range";
  let space_bit = match space with Program.Global -> 0 | Program.Heap -> 1 in
  let store_bit = if is_store then 1 else 0 in
  offset
  lor (obj lsl obj_shift)
  lor (target lsl target_shift)
  lor (space_bit lsl space_shift)
  lor (store_bit lsl store_shift)

let mem_is_store e = (e lsr store_shift) land 1 = 1
let mem_space e = if (e lsr space_shift) land 1 = 1 then Program.Heap else Program.Global
let mem_target e = (e lsr target_shift) land ((1 lsl target_bits) - 1)
let mem_obj e = (e lsr obj_shift) land ((1 lsl obj_bits) - 1)
let mem_offset e = e land ((1 lsl offset_bits) - 1)

let blocks_executed t = Array.length t.block_seq

let branch_outcomes t =
  let out = ref [] in
  let n = Array.length t.block_seq in
  for i = n - 1 downto 0 do
    let b = t.program.blocks.(t.block_seq.(i)) in
    match b.term with
    | Program.Branch { branch; taken; not_taken = _ } ->
        if i + 1 < n then out := (branch, t.block_seq.(i + 1) = taken) :: !out
    | Program.Jump _ | Program.Call _ | Program.Indirect_call _ | Program.Switch _
    | Program.Return | Program.Halt ->
        ()
  done;
  Array.of_list !out

let cpi_floor_hint (_ : t) =
  (* 4-wide issue: at best a quarter cycle per instruction. *)
  0.25

let summary t =
  Printf.sprintf
    "%s: %d blocks, %d instrs, %d cond branches (%.1f%% taken), %d indirect, %d calls, %d mem refs"
    t.program.Program.name (Array.length t.block_seq) t.instructions t.cond_branches
    (if t.cond_branches = 0 then 0.0
     else 100.0 *. float_of_int t.taken_branches /. float_of_int t.cond_branches)
    t.indirect_branches t.calls t.mem_refs
