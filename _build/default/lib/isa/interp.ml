module Rng = Pi_stats.Rng

type limits = { max_blocks : int; stop_proc : (int * int) option }

let default_limits = { max_blocks = 2_000_000; stop_proc = None }

exception Stack_overflow_in_program of string

let max_call_depth = 4096

(* Per-static-memory-op dynamic state. *)
type mem_state = {
  mutable position : int;  (** cumulative step count for Sequential *)
  mutable chase_at : int;  (** current node for Chase *)
  mutable chase_perm : int array;  (** lazily built permutation *)
}

let cache_line = 64

let build_chase_perm ~seed ~nodes =
  (* A single cycle visiting every node, so a pointer chase never
     short-circuits into a small loop: Sattolo's algorithm. *)
  let rng = Rng.create seed in
  let a = Array.init nodes (fun i -> i) in
  for i = nodes - 1 downto 1 do
    let j = Rng.int rng i in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  let next = Array.make nodes 0 in
  for i = 0 to nodes - 1 do
    next.(a.(i)) <- a.((i + 1) mod nodes)
  done;
  next

let run ?(seed = 42) ?(limits = default_limits) (program : Program.t) =
  let rng = Rng.create seed in
  let behavior_rng = Rng.named_stream rng "behaviors" in
  let selector_rng = Rng.named_stream rng "selectors" in
  let memory_rng = Rng.named_stream rng "memory" in
  let branch_state =
    Behavior.State.create ~rng:behavior_rng
      ~resolved_src:(Array.map (fun (b : Program.branch_info) -> b.resolved_src) program.branches)
      (Array.map (fun (b : Program.branch_info) -> b.behavior) program.branches)
  in
  let selector_state =
    Behavior.Selector.State.create ~rng:selector_rng
      (Array.map (fun (i : Program.ibr_info) -> (i.selector, i.n_targets)) program.ibrs)
  in
  let mem_states =
    Array.map (fun (_ : Program.mem_op) -> { position = 0; chase_at = 0; chase_perm = [||] }) program.mem_ops
  in
  let block_seq = Int_vec.create ~capacity:65536 () in
  let mem_events = Int_vec.create ~capacity:65536 () in
  let instructions = ref 0 in
  let cond_branches = ref 0 in
  let taken_branches = ref 0 in
  let indirect_branches = ref 0 in
  let calls = ref 0 in
  let mem_refs = ref 0 in
  let proc_invocations = Array.make (Array.length program.procs) 0 in
  let call_stack = Array.make max_call_depth 0 in
  let stack_depth = ref 0 in
  let halted = ref false in
  let invoke proc_id =
    proc_invocations.(proc_id) <- proc_invocations.(proc_id) + 1;
    (match limits.stop_proc with
    | Some (p, count) when p = proc_id && proc_invocations.(proc_id) >= count -> halted := true
    | Some _ | None -> ());
    program.procs.(proc_id).entry
  in
  let mem_footprint (op : Program.mem_op) =
    match op.space with
    | Program.Global -> (program.globals.(op.target).size, 1)
    | Program.Heap ->
        let s = program.heap_sites.(op.target) in
        (s.obj_size, s.obj_count)
  in
  let emit_mem mem_id =
    let op = program.mem_ops.(mem_id) in
    let state = mem_states.(mem_id) in
    let obj_size, obj_count = mem_footprint op in
    let obj, offset =
      match op.pattern with
      | Program.Fixed_offset off -> (0, off mod obj_size)
      | Program.Sequential { stride } ->
          let footprint = obj_size * obj_count in
          let byte = state.position * stride mod footprint in
          state.position <- state.position + 1;
          (byte / obj_size, byte mod obj_size)
      | Program.Random_uniform ->
          let obj = if obj_count = 1 then 0 else Rng.int memory_rng obj_count in
          let offset = Rng.int memory_rng (max 1 (obj_size - 7)) land lnot 7 in
          (obj, offset)
      | Program.Chase { perm_seed } ->
          if op.space = Program.Heap then begin
            if Array.length state.chase_perm = 0 then
              state.chase_perm <- build_chase_perm ~seed:perm_seed ~nodes:obj_count;
            let here = state.chase_at in
            state.chase_at <- state.chase_perm.(here);
            (here, 0)
          end
          else begin
            let nodes = max 1 (obj_size / cache_line) in
            if Array.length state.chase_perm = 0 then
              state.chase_perm <- build_chase_perm ~seed:perm_seed ~nodes;
            let here = state.chase_at in
            state.chase_at <- state.chase_perm.(here);
            (0, here * cache_line)
          end
    in
    incr mem_refs;
    Int_vec.push mem_events
      (Trace.pack_mem ~is_store:op.is_store ~space:op.space ~target:op.target ~obj ~offset)
  in
  let execute_body (b : Program.block) =
    Array.iter
      (fun instr ->
        match instr with
        | Program.Plain n | Program.Fp n | Program.Mul n | Program.Div n ->
            instructions := !instructions + n
        | Program.Mem mem_id ->
            incr instructions;
            emit_mem mem_id)
      b.instrs;
    incr instructions (* terminator *)
  in
  let pc = ref (invoke program.entry_proc) in
  while (not !halted) && Int_vec.length block_seq < limits.max_blocks do
    let b = program.blocks.(!pc) in
    Int_vec.push block_seq b.block_id;
    execute_body b;
    if not !halted then
      match b.term with
      | Program.Jump target -> pc := target
      | Program.Branch { branch; taken; not_taken } ->
          incr cond_branches;
          let outcome = Behavior.State.next_outcome branch_state branch in
          if outcome then begin
            incr taken_branches;
            pc := taken
          end
          else pc := not_taken
      | Program.Call { callee; return_to } ->
          incr calls;
          if !stack_depth >= max_call_depth then
            raise (Stack_overflow_in_program program.name);
          call_stack.(!stack_depth) <- return_to;
          incr stack_depth;
          pc := invoke callee
      | Program.Indirect_call { ibr; callees; return_to } ->
          incr calls;
          incr indirect_branches;
          let idx = Behavior.Selector.State.next_target selector_state ibr in
          if !stack_depth >= max_call_depth then
            raise (Stack_overflow_in_program program.name);
          call_stack.(!stack_depth) <- return_to;
          incr stack_depth;
          pc := invoke callees.(idx)
      | Program.Switch { ibr; targets } ->
          incr indirect_branches;
          let idx = Behavior.Selector.State.next_target selector_state ibr in
          pc := targets.(idx)
      | Program.Return ->
          if !stack_depth = 0 then halted := true
          else begin
            decr stack_depth;
            pc := call_stack.(!stack_depth)
          end
      | Program.Halt -> halted := true
  done;
  {
    Trace.program;
    block_seq = Int_vec.to_array block_seq;
    mem_events = Int_vec.to_array mem_events;
    instructions = !instructions;
    cond_branches = !cond_branches;
    taken_branches = !taken_branches;
    indirect_branches = !indirect_branches;
    calls = !calls;
    mem_refs = !mem_refs;
    proc_invocations;
  }
