module Rng = Pi_stats.Rng

type t =
  | Always_taken
  | Never_taken
  | Bernoulli of { p_taken : float }
  | Periodic of { pattern : bool array }
  | Loop_trip of { trips : int }
  | Alternating
  | Correlated of { src : string; invert : bool; noise : float }

let validate = function
  | Always_taken | Never_taken | Alternating -> Ok ()
  | Bernoulli { p_taken } ->
      if p_taken >= 0.0 && p_taken <= 1.0 then Ok ()
      else Error "Bernoulli probability out of [0,1]"
  | Periodic { pattern } ->
      if Array.length pattern > 0 then Ok () else Error "empty periodic pattern"
  | Loop_trip { trips } -> if trips >= 1 then Ok () else Error "loop trips < 1"
  | Correlated { noise; src; _ } ->
      if noise < 0.0 || noise > 1.0 then Error "correlation noise out of [0,1]"
      else if String.length src = 0 then Error "empty correlation source label"
      else Ok ()

let loop_pattern ~trips =
  if trips < 1 then invalid_arg "Behavior.loop_pattern: trips < 1";
  Array.init trips (fun i -> i < trips - 1)

let pp ppf = function
  | Always_taken -> Format.fprintf ppf "always-taken"
  | Never_taken -> Format.fprintf ppf "never-taken"
  | Bernoulli { p_taken } -> Format.fprintf ppf "bernoulli(%.2f)" p_taken
  | Periodic { pattern } -> Format.fprintf ppf "periodic(%d)" (Array.length pattern)
  | Loop_trip { trips } -> Format.fprintf ppf "loop(%d)" trips
  | Alternating -> Format.fprintf ppf "alternating"
  | Correlated { src; invert; noise } ->
      Format.fprintf ppf "correlated(%s%s, noise=%.2f)" src
        (if invert then ", inverted" else "")
        noise

module State = struct
  type behavior = t

  type t = {
    behaviors : behavior array;
    resolved_src : int array;
    counters : int array;  (** position for periodic / loop / alternating *)
    last_outcome : bool array;  (** most recent outcome of every branch *)
    rng : Rng.t;
  }

  let create ~rng ~resolved_src behaviors =
    let n = Array.length behaviors in
    if Array.length resolved_src <> n then
      invalid_arg "Behavior.State.create: resolved_src length mismatch";
    {
      behaviors;
      resolved_src;
      counters = Array.make n 0;
      last_outcome = Array.make n false;
      rng;
    }

  let next_outcome t id =
    let outcome =
      match t.behaviors.(id) with
      | Always_taken -> true
      | Never_taken -> false
      | Bernoulli { p_taken } -> Rng.bernoulli t.rng p_taken
      | Periodic { pattern } ->
          let pos = t.counters.(id) in
          t.counters.(id) <- (pos + 1) mod Array.length pattern;
          pattern.(pos)
      | Loop_trip { trips } ->
          let pos = t.counters.(id) in
          t.counters.(id) <- (pos + 1) mod trips;
          pos < trips - 1
      | Alternating ->
          let pos = t.counters.(id) in
          t.counters.(id) <- pos lxor 1;
          pos = 0
      | Correlated { invert; noise; _ } ->
          let src = t.resolved_src.(id) in
          let base = t.last_outcome.(src) in
          let base = if invert then not base else base in
          if noise > 0.0 && Rng.bernoulli t.rng noise then not base else base
    in
    t.last_outcome.(id) <- outcome;
    outcome
end

module Selector = struct
  type t = Round_robin | Random_target | Periodic_targets of int array

  let validate ~n_targets = function
    | Round_robin | Random_target ->
        if n_targets >= 1 then Ok () else Error "indirect branch with no targets"
    | Periodic_targets seq ->
        if Array.length seq = 0 then Error "empty periodic target sequence"
        else if Array.exists (fun i -> i < 0 || i >= n_targets) seq then
          Error "periodic target index out of range"
        else Ok ()

  module State = struct
    type selector = t

    type t = {
      selectors : (selector * int) array;
      counters : int array;
      rng : Rng.t;
    }

    let create ~rng selectors =
      { selectors; counters = Array.make (Array.length selectors) 0; rng }

    let next_target t id =
      let selector, n_targets = t.selectors.(id) in
      match selector with
      | Round_robin ->
          let pos = t.counters.(id) in
          t.counters.(id) <- (pos + 1) mod n_targets;
          pos
      | Random_target -> Rng.int t.rng n_targets
      | Periodic_targets seq ->
          let pos = t.counters.(id) in
          t.counters.(id) <- (pos + 1) mod Array.length seq;
          seq.(pos)
  end
end
