module Rng = Pi_stats.Rng

type interval = {
  index : int;
  start_block : int;
  length : int;
  signature : float array;
}

(* Basic-block vectors projected to a small dimension with a seeded random
   sign projection: block b contributes +-1 per execution to dimension
   hash(b, d). Cheap, stable, and preserves distances well enough for
   clustering. *)
let project_block ~dims block dim =
  let h = Hashtbl.hash (block * 31, dim) in
  ignore dims;
  if h land 1 = 0 then 1.0 else -1.0

let normalize v =
  let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v) in
  if norm > 0.0 then Array.map (fun x -> x /. norm) v else v

let intervals ?(signature_dims = 32) (trace : Trace.t) ~interval_blocks =
  if interval_blocks < 1 then invalid_arg "Phases.intervals: interval_blocks < 1";
  let seq = trace.Trace.block_seq in
  let n = Array.length seq in
  let n_intervals = (n + interval_blocks - 1) / interval_blocks in
  Array.init n_intervals (fun i ->
      let start_block = i * interval_blocks in
      let length = min interval_blocks (n - start_block) in
      let signature = Array.make signature_dims 0.0 in
      for j = start_block to start_block + length - 1 do
        let block = seq.(j) in
        (* Update a couple of projected dimensions per execution. *)
        for d = 0 to 3 do
          let dim = (Hashtbl.hash (block, d) land max_int) mod signature_dims in
          signature.(dim) <- signature.(dim) +. project_block ~dims:signature_dims block d
        done
      done;
      { index = i; start_block; length; signature = normalize signature })

type simpoints = {
  representatives : int array;
  weights : float array;
  assignment : int array;
}

let distance2 a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let choose ?k ?(seed = 7) (ivs : interval array) =
  let n = Array.length ivs in
  if n = 0 then invalid_arg "Phases.choose: no intervals";
  let k = match k with Some k -> max 1 (min k n) | None -> max 1 (min 6 (n / 2)) in
  let rng = Rng.create seed in
  (* k-means++ seeding. *)
  let centroids = Array.make k ivs.(Rng.int rng n).signature in
  for c = 1 to k - 1 do
    let d2 =
      Array.map
        (fun iv ->
          let best = ref infinity in
          for j = 0 to c - 1 do
            best := Float.min !best (distance2 iv.signature centroids.(j))
          done;
          !best)
        ivs
    in
    let total = Array.fold_left ( +. ) 0.0 d2 in
    let target = Rng.float rng (Float.max total 1e-12) in
    let pick = ref 0 in
    let acc = ref 0.0 in
    (try
       Array.iteri
         (fun i v ->
           acc := !acc +. v;
           if !acc >= target then begin
             pick := i;
             raise Exit
           end)
         d2
     with Exit -> ());
    centroids.(c) <- ivs.(!pick).signature
  done;
  let centroids = Array.map Array.copy centroids in
  let assignment = Array.make n 0 in
  let dims = Array.length ivs.(0).signature in
  for _iteration = 1 to 20 do
    (* Assign. *)
    Array.iteri
      (fun i iv ->
        let best = ref 0 and best_d = ref infinity in
        for c = 0 to k - 1 do
          let d = distance2 iv.signature centroids.(c) in
          if d < !best_d then begin
            best_d := d;
            best := c
          end
        done;
        assignment.(i) <- !best)
      ivs;
    (* Update. *)
    let sums = Array.make_matrix k dims 0.0 in
    let counts = Array.make k 0 in
    Array.iteri
      (fun i iv ->
        let c = assignment.(i) in
        counts.(c) <- counts.(c) + 1;
        Array.iteri (fun d v -> sums.(c).(d) <- sums.(c).(d) +. v) iv.signature)
      ivs;
    for c = 0 to k - 1 do
      if counts.(c) > 0 then
        centroids.(c) <- Array.map (fun s -> s /. float_of_int counts.(c)) sums.(c)
    done
  done;
  (* Representatives: closest interval to each non-empty centroid, weighted
     by executed blocks. *)
  let total_blocks =
    float_of_int (Array.fold_left (fun acc iv -> acc + iv.length) 0 ivs)
  in
  let reps = ref [] and weights = ref [] in
  for c = 0 to k - 1 do
    let members = Array.of_list (List.filter (fun i -> assignment.(i) = c) (List.init n Fun.id)) in
    if Array.length members > 0 then begin
      let best = ref members.(0) and best_d = ref infinity in
      Array.iter
        (fun i ->
          let d = distance2 ivs.(i).signature centroids.(c) in
          if d < !best_d then begin
            best_d := d;
            best := i
          end)
        members;
      (* Among near-equivalent members, prefer the latest interval: it has
         the longest warmup prefix available, which matters for
         slow-training structures (branch predictor tables). *)
      Array.iter
        (fun i ->
          let d = distance2 ivs.(i).signature centroids.(c) in
          if d <= !best_d +. 0.05 && ivs.(i).start_block > ivs.(!best).start_block
          then best := i)
        members;
      let cluster_blocks =
        Array.fold_left (fun acc i -> acc + ivs.(i).length) 0 members
      in
      reps := !best :: !reps;
      weights := (float_of_int cluster_blocks /. total_blocks) :: !weights
    end
  done;
  {
    representatives = Array.of_list (List.rev !reps);
    weights = Array.of_list (List.rev !weights);
    assignment;
  }

let slice (trace : Trace.t) ~start_block ~length =
  let program = trace.Trace.program in
  let seq = trace.Trace.block_seq in
  let n = Array.length seq in
  if start_block < 0 || start_block >= n then invalid_arg "Phases.slice: start out of range";
  let length = min length (n - start_block) in
  (* Memory events consumed before and within the slice. *)
  let mem_count_of_block =
    let counts = Array.make (Array.length program.Program.blocks) 0 in
    Array.iteri
      (fun i (b : Program.block) ->
        counts.(i) <-
          Array.fold_left
            (fun acc instr -> match instr with Program.Mem _ -> acc + 1 | _ -> acc)
            0 b.Program.instrs)
      program.Program.blocks;
    counts
  in
  let events_before = ref 0 in
  for i = 0 to start_block - 1 do
    events_before := !events_before + mem_count_of_block.(seq.(i))
  done;
  let events_within = ref 0 in
  for i = start_block to start_block + length - 1 do
    events_within := !events_within + mem_count_of_block.(seq.(i))
  done;
  let block_seq = Array.sub seq start_block length in
  let mem_events = Array.sub trace.Trace.mem_events !events_before !events_within in
  let instructions = ref 0 in
  let cond = ref 0 and taken = ref 0 and indirect = ref 0 and calls = ref 0 in
  let proc_invocations = Array.make (Array.length program.Program.procs) 0 in
  Array.iteri
    (fun i b ->
      instructions := !instructions + Program.block_instr_count program b;
      let blk = program.Program.blocks.(b) in
      match blk.Program.term with
      | Program.Branch { taken = t_target; _ } ->
          incr cond;
          if i + 1 < length && block_seq.(i + 1) = t_target then incr taken
      | Program.Switch _ -> incr indirect
      | Program.Indirect_call _ ->
          incr indirect;
          incr calls
      | Program.Call _ -> incr calls
      | Program.Jump _ | Program.Return | Program.Halt -> ())
    block_seq;
  {
    trace with
    Trace.block_seq;
    mem_events;
    instructions = !instructions;
    cond_branches = !cond;
    taken_branches = !taken;
    indirect_branches = !indirect;
    calls = !calls;
    mem_refs = !events_within;
    proc_invocations;
  }

let estimate metric trace ~interval_blocks ?warmup_blocks ?k ?seed () =
  let warmup_target = Option.value warmup_blocks ~default:interval_blocks in
  let ivs = intervals trace ~interval_blocks in
  let points = choose ?k ?seed ivs in
  let total = ref 0.0 in
  Array.iteri
    (fun i rep ->
      let iv = ivs.(rep) in
      (* Prepend up to [warmup_target] blocks of architectural warmup. *)
      let warmup = min warmup_target iv.start_block in
      let sub =
        slice trace ~start_block:(iv.start_block - warmup) ~length:(iv.length + warmup)
      in
      total := !total +. (points.weights.(i) *. metric sub ~warmup_blocks:warmup))
    points.representatives;
  !total
