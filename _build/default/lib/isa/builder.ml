type mem_spec = {
  spec_space : Program.space;
  spec_target : int;
  spec_pattern : Program.mem_pattern;
  spec_store : bool;
}

type stmt =
  | Work_stmt of Program.instr
  | Mem_stmt of mem_spec
  | If_stmt of { label : string option; behavior : Behavior.t; then_ : stmt list; else_ : stmt list }
  | While_stmt of { label : string option; behavior : Behavior.t; body : stmt list }
  | Do_while_stmt of { label : string option; behavior : Behavior.t; body : stmt list }
  | Call_stmt of int
  | Switch_stmt of { selector : Behavior.Selector.t; cases : stmt list array }
  | Icall_stmt of { selector : Behavior.Selector.t; callees : int array }

type proc_handle = int
type obj_handle = int
type global_handle = int
type site_handle = int

(* Block under construction: instructions in reverse, terminator patched as
   lowering discovers successors. *)
type building_block = {
  bid : int;
  bproc : int;
  mutable rev_instrs : Program.instr list;
  mutable bterm : Program.terminator option;
}

type pending_branch = {
  pbr_id : int;
  pbr_owner : int;
  pbr_behavior : Behavior.t;
  pbr_label : string option;
}

type t = {
  prog_name : string;
  mutable objects : (string * int list) list;  (** name, proc ids (reversed) *)
  mutable n_objects : int;
  mutable proc_table : (string * int * int list) list;  (** name, entry block, block ids; by id, reversed *)
  mutable n_procs : int;
  mutable defined : bool array;  (** grows with procs *)
  mutable blocks : building_block list;  (** reversed *)
  mutable n_blocks : int;
  mutable branches : pending_branch list;  (** reversed *)
  mutable n_branches : int;
  mutable ibrs : Program.ibr_info list;  (** reversed *)
  mutable n_ibrs : int;
  mutable mem_ops : Program.mem_op list;  (** reversed *)
  mutable n_mem_ops : int;
  mutable globals : Program.global_def list;  (** reversed *)
  mutable n_globals : int;
  mutable heap_sites : Program.heap_site list;  (** reversed *)
  mutable n_sites : int;
  mutable entry_proc : int option;
  mutable labels : (string * int) list;  (** branch label -> branch id *)
}

let create ~name =
  {
    prog_name = name;
    objects = [];
    n_objects = 0;
    proc_table = [];
    n_procs = 0;
    defined = [||];
    blocks = [];
    n_blocks = 0;
    branches = [];
    n_branches = 0;
    ibrs = [];
    n_ibrs = 0;
    mem_ops = [];
    n_mem_ops = 0;
    globals = [];
    n_globals = 0;
    heap_sites = [];
    n_sites = 0;
    entry_proc = None;
    labels = [];
  }

let add_object t name =
  let id = t.n_objects in
  t.objects <- (name, []) :: t.objects;
  t.n_objects <- id + 1;
  id

let global t ~name ~size =
  if size < 8 || size >= 1 lsl 28 then invalid_arg "Builder.global: size out of range";
  let id = t.n_globals in
  t.globals <- { Program.global_id = id; global_name = name; size } :: t.globals;
  t.n_globals <- id + 1;
  id

let heap_site t ~name ~obj_size ~count =
  if obj_size < 8 || obj_size >= 1 lsl 28 then invalid_arg "Builder.heap_site: obj_size out of range";
  if count < 1 || count >= 1 lsl 20 then invalid_arg "Builder.heap_site: count out of range";
  let id = t.n_sites in
  t.heap_sites <-
    { Program.site_id = id; site_name = name; obj_size; obj_count = count } :: t.heap_sites;
  t.n_sites <- id + 1;
  id

let attach_proc_to_object t obj proc_id =
  (* The objects list is kept reversed, so index from the back. *)
  let from_back = t.n_objects - 1 - obj in
  if obj < 0 || from_back < 0 then invalid_arg "Builder: unknown object handle";
  t.objects <-
    List.mapi
      (fun i (name, procs) -> if i = from_back then (name, proc_id :: procs) else (name, procs))
      t.objects

let declare_proc t ~obj ~name =
  let id = t.n_procs in
  t.proc_table <- (name, -1, []) :: t.proc_table;
  t.n_procs <- id + 1;
  let defined = Array.make t.n_procs false in
  Array.blit t.defined 0 defined 0 (Array.length t.defined);
  t.defined <- defined;
  attach_proc_to_object t obj id;
  id

let new_block t proc_id =
  let b = { bid = t.n_blocks; bproc = proc_id; rev_instrs = []; bterm = None } in
  t.blocks <- b :: t.blocks;
  t.n_blocks <- t.n_blocks + 1;
  b

let push_instr b i = b.rev_instrs <- i :: b.rev_instrs

let set_term b term =
  match b.bterm with
  | Some _ -> invalid_arg "Builder: block terminated twice"
  | None -> b.bterm <- Some term

let intern_branch t ~owner ~behavior ~label =
  let id = t.n_branches in
  t.branches <- { pbr_id = id; pbr_owner = owner; pbr_behavior = behavior; pbr_label = label } :: t.branches;
  t.n_branches <- id + 1;
  (match label with
  | Some l ->
      if List.mem_assoc l t.labels then invalid_arg ("Builder: duplicate branch label " ^ l);
      t.labels <- (l, id) :: t.labels
  | None -> ());
  id

let intern_ibr t ~owner ~selector ~n_targets =
  (match Behavior.Selector.validate ~n_targets selector with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Builder: " ^ msg));
  let id = t.n_ibrs in
  t.ibrs <- { Program.ibr_id = id; ibr_owner = owner; selector; n_targets } :: t.ibrs;
  t.n_ibrs <- id + 1;
  id

let intern_mem t spec =
  let id = t.n_mem_ops in
  t.mem_ops <-
    {
      Program.mem_id = id;
      space = spec.spec_space;
      target = spec.spec_target;
      pattern = spec.spec_pattern;
      is_store = spec.spec_store;
    }
    :: t.mem_ops;
  t.n_mem_ops <- id + 1;
  id

(* Lower a statement list into the open block [cur]; returns the open block
   at the end of the sequence. *)
let rec lower t proc_id cur stmts =
  match stmts with
  | [] -> cur
  | Work_stmt i :: rest ->
      push_instr cur i;
      lower t proc_id cur rest
  | Mem_stmt spec :: rest ->
      push_instr cur (Program.Mem (intern_mem t spec));
      lower t proc_id cur rest
  | If_stmt { label; behavior; then_; else_ } :: rest ->
      let then_entry = new_block t proc_id in
      let else_entry = new_block t proc_id in
      let join = new_block t proc_id in
      let branch = intern_branch t ~owner:cur.bid ~behavior ~label in
      set_term cur (Program.Branch { branch; taken = then_entry.bid; not_taken = else_entry.bid });
      let then_end = lower t proc_id then_entry then_ in
      set_term then_end (Program.Jump join.bid);
      let else_end = lower t proc_id else_entry else_ in
      set_term else_end (Program.Jump join.bid);
      lower t proc_id join rest
  | While_stmt { label; behavior; body } :: rest ->
      let header = new_block t proc_id in
      let body_entry = new_block t proc_id in
      let exit_block = new_block t proc_id in
      set_term cur (Program.Jump header.bid);
      let branch = intern_branch t ~owner:header.bid ~behavior ~label in
      set_term header
        (Program.Branch { branch; taken = body_entry.bid; not_taken = exit_block.bid });
      let body_end = lower t proc_id body_entry body in
      set_term body_end (Program.Jump header.bid);
      lower t proc_id exit_block rest
  | Do_while_stmt { label; behavior; body } :: rest ->
      let body_entry = new_block t proc_id in
      let exit_block = new_block t proc_id in
      set_term cur (Program.Jump body_entry.bid);
      let body_end = lower t proc_id body_entry body in
      let branch = intern_branch t ~owner:body_end.bid ~behavior ~label in
      set_term body_end
        (Program.Branch { branch; taken = body_entry.bid; not_taken = exit_block.bid });
      lower t proc_id exit_block rest
  | Call_stmt callee :: rest ->
      let return_block = new_block t proc_id in
      set_term cur (Program.Call { callee; return_to = return_block.bid });
      lower t proc_id return_block rest
  | Switch_stmt { selector; cases } :: rest ->
      if Array.length cases = 0 then invalid_arg "Builder.switch: no cases";
      let join = new_block t proc_id in
      let targets =
        Array.map
          (fun case ->
            let case_entry = new_block t proc_id in
            let case_end = lower t proc_id case_entry case in
            set_term case_end (Program.Jump join.bid);
            case_entry.bid)
          cases
      in
      let ibr = intern_ibr t ~owner:cur.bid ~selector ~n_targets:(Array.length cases) in
      set_term cur (Program.Switch { ibr; targets });
      lower t proc_id join rest
  | Icall_stmt { selector; callees } :: rest ->
      if Array.length callees = 0 then invalid_arg "Builder.icall: no callees";
      let return_block = new_block t proc_id in
      let ibr = intern_ibr t ~owner:cur.bid ~selector ~n_targets:(Array.length callees) in
      set_term cur (Program.Indirect_call { ibr; callees; return_to = return_block.bid });
      lower t proc_id return_block rest

let define_proc t proc_id body =
  if proc_id < 0 || proc_id >= t.n_procs then invalid_arg "Builder.define_proc: bad handle";
  if t.defined.(proc_id) then invalid_arg "Builder.define_proc: already defined";
  let first_block = t.n_blocks in
  let entry_block = new_block t proc_id in
  let last = lower t proc_id entry_block body in
  set_term last Program.Return;
  let block_ids = Array.init (t.n_blocks - first_block) (fun i -> first_block + i) in
  let from_back = t.n_procs - 1 - proc_id in
  t.proc_table <-
    List.mapi
      (fun i (name, entry, blocks) ->
        if i = from_back then (name, entry_block.bid, Array.to_list block_ids)
        else (name, entry, blocks))
      t.proc_table;
  t.defined.(proc_id) <- true

let proc t ~obj ~name body =
  let h = declare_proc t ~obj ~name in
  define_proc t h body;
  h

let entry t proc_id =
  if proc_id < 0 || proc_id >= t.n_procs then invalid_arg "Builder.entry: bad handle";
  t.entry_proc <- Some proc_id

let finish t =
  let entry_proc =
    match t.entry_proc with
    | Some p -> p
    | None -> invalid_arg "Builder.finish: no entry procedure set"
  in
  Array.iteri
    (fun i defined -> if not defined then invalid_arg (Printf.sprintf "Builder.finish: procedure %d declared but not defined" i))
    t.defined;
  let blocks =
    t.blocks |> List.rev_map (fun b ->
        match b.bterm with
        | None -> invalid_arg "Builder.finish: unterminated block"
        | Some term ->
            {
              Program.block_id = b.bid;
              proc = b.bproc;
              instrs = Array.of_list (List.rev b.rev_instrs);
              term;
            })
    |> Array.of_list
  in
  let resolve_src behavior =
    match behavior with
    | Behavior.Correlated { src; _ } -> (
        match List.assoc_opt src t.labels with
        | Some id -> id
        | None -> invalid_arg ("Builder.finish: unresolved correlation source " ^ src))
    | _ -> -1
  in
  let branches =
    t.branches |> List.rev_map (fun pb ->
        {
          Program.branch_id = pb.pbr_id;
          owner = pb.pbr_owner;
          behavior = pb.pbr_behavior;
          label = pb.pbr_label;
          resolved_src = resolve_src pb.pbr_behavior;
        })
    |> Array.of_list
  in
  let procs =
    t.proc_table |> List.rev |> List.mapi (fun i (name, entry, block_list) ->
        { Program.proc_id = i; proc_name = name; entry; blocks = Array.of_list block_list })
    |> Array.of_list
  in
  let objects =
    t.objects |> List.rev |> List.mapi (fun i (name, procs_rev) ->
        { Program.obj_id = i; obj_name = name; procs = Array.of_list (List.rev procs_rev) })
    |> Array.of_list
  in
  let program =
    {
      Program.name = t.prog_name;
      objects;
      procs;
      blocks;
      branches;
      ibrs = Array.of_list (List.rev t.ibrs);
      mem_ops = Array.of_list (List.rev t.mem_ops);
      globals = Array.of_list (List.rev t.globals);
      heap_sites = Array.of_list (List.rev t.heap_sites);
      entry_proc;
    }
  in
  match Program.validate program with
  | Ok () -> program
  | Error msg -> failwith ("Builder.finish: invalid program: " ^ msg)

(* Statement constructors. *)

let positive name n = if n < 1 then invalid_arg (name ^ ": count < 1")

let work n =
  positive "Builder.work" n;
  Work_stmt (Program.Plain n)

let fp_work n =
  positive "Builder.fp_work" n;
  Work_stmt (Program.Fp n)

let mul_work n =
  positive "Builder.mul_work" n;
  Work_stmt (Program.Mul n)

let div_work n =
  positive "Builder.div_work" n;
  Work_stmt (Program.Div n)

let mem_stmt space target pattern store =
  Mem_stmt { spec_space = space; spec_target = target; spec_pattern = pattern; spec_store = store }

let load_global g pattern = mem_stmt Program.Global g pattern false
let store_global g pattern = mem_stmt Program.Global g pattern true
let load_heap s pattern = mem_stmt Program.Heap s pattern false
let store_heap s pattern = mem_stmt Program.Heap s pattern true

let checked_behavior name behavior =
  match Behavior.validate behavior with
  | Ok () -> behavior
  | Error msg -> invalid_arg (name ^ ": " ^ msg)

let if_ ?label behavior then_ else_ =
  If_stmt { label; behavior = checked_behavior "Builder.if_" behavior; then_; else_ }

let while_ ?label behavior body =
  While_stmt { label; behavior = checked_behavior "Builder.while_" behavior; body }

let do_while ?label behavior body =
  Do_while_stmt { label; behavior = checked_behavior "Builder.do_while" behavior; body }

let for_ ?label ~trips body =
  if trips < 1 then invalid_arg "Builder.for_: trips < 1";
  do_while ?label (Behavior.Loop_trip { trips }) body

let call p = Call_stmt p
let switch selector cases = Switch_stmt { selector; cases }
let icall selector callees = Icall_stmt { selector; callees }

let seq ~stride =
  if stride < 1 then invalid_arg "Builder.seq: stride < 1";
  Program.Sequential { stride }

let rand_access = Program.Random_uniform
let chase ~seed = Program.Chase { perm_seed = seed }
let fixed off =
  if off < 0 then invalid_arg "Builder.fixed: negative offset";
  Program.Fixed_offset off
