lib/isa/program.mli: Behavior Format
