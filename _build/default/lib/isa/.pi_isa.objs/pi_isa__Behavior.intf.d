lib/isa/behavior.mli: Format Pi_stats
