lib/isa/interp.ml: Array Behavior Int_vec Pi_stats Program Trace
