lib/isa/trace.mli: Program
