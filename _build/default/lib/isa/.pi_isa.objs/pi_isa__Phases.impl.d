lib/isa/phases.ml: Array Float Fun Hashtbl List Option Pi_stats Program Trace
