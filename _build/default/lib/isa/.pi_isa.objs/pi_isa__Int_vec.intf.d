lib/isa/int_vec.mli:
