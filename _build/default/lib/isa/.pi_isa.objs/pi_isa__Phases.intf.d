lib/isa/phases.mli: Trace
