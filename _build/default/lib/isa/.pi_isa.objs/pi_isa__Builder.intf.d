lib/isa/builder.mli: Behavior Program
