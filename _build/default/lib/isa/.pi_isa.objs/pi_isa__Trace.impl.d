lib/isa/trace.ml: Array Printf Program
