lib/isa/builder.ml: Array Behavior List Printf Program
