lib/isa/program.ml: Array Behavior Format Printf
