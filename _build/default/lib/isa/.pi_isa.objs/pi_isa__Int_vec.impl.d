lib/isa/int_vec.ml: Array
