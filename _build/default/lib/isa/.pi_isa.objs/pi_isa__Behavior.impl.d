lib/isa/behavior.ml: Array Format Pi_stats String
