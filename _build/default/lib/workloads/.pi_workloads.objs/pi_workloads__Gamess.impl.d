lib/workloads/gamess.ml: Array Bench Pi_isa Toolkit
