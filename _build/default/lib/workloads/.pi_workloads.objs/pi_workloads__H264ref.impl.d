lib/workloads/h264ref.ml: Array Bench Pi_isa Toolkit
