lib/workloads/mcf.ml: Array Bench Pi_isa Toolkit
