lib/workloads/libquantum.ml: Array Bench Pi_isa Toolkit
