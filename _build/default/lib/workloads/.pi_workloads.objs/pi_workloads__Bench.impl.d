lib/workloads/bench.ml: Pi_isa
