lib/workloads/zeusmp.ml: Array Bench Pi_isa Toolkit
