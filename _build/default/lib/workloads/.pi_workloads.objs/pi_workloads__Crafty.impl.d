lib/workloads/crafty.ml: Array Bench Pi_isa Toolkit
