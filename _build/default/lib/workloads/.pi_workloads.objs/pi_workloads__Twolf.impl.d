lib/workloads/twolf.ml: Array Bench Pi_isa Toolkit
