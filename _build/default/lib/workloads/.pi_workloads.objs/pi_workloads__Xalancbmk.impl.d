lib/workloads/xalancbmk.ml: Array Bench Pi_isa Toolkit
