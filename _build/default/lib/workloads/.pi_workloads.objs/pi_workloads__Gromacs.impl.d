lib/workloads/gromacs.ml: Array Bench Pi_isa Toolkit
