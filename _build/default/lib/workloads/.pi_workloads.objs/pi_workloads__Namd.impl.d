lib/workloads/namd.ml: Array Bench Pi_isa Toolkit
