lib/workloads/sjeng.ml: Array Bench Pi_isa Toolkit
