lib/workloads/hmmer.ml: Array Bench Pi_isa Toolkit
