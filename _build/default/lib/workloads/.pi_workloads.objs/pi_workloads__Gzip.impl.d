lib/workloads/gzip.ml: Array Bench Pi_isa Toolkit
