lib/workloads/astar.ml: Array Bench Pi_isa Toolkit
