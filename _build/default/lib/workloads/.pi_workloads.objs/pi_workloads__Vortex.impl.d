lib/workloads/vortex.ml: Array Bench Pi_isa Toolkit
