lib/workloads/equake.ml: Array Bench Pi_isa Toolkit
