lib/workloads/bench.mli: Pi_isa
