lib/workloads/galgel.ml: Array Bench Pi_isa Toolkit
