lib/workloads/lbm.ml: Array Bench Pi_isa Toolkit
