lib/workloads/spec.mli: Bench
