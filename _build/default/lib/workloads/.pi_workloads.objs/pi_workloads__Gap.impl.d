lib/workloads/gap.ml: Array Bench Pi_isa Toolkit
