lib/workloads/gcc_bench.ml: Array Bench Pi_isa Printf Toolkit
