lib/workloads/vpr.ml: Array Bench Pi_isa Toolkit
