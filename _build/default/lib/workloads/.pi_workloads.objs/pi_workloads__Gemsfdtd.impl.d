lib/workloads/gemsfdtd.ml: Array Bench Pi_isa Toolkit
