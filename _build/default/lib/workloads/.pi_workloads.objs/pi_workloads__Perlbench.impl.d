lib/workloads/perlbench.ml: Array Bench Pi_isa Toolkit
