lib/workloads/ammp.ml: Array Bench Pi_isa Toolkit
