lib/workloads/art.ml: Array Bench Pi_isa Toolkit
