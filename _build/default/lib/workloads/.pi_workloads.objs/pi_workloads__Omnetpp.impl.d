lib/workloads/omnetpp.ml: Array Bench Pi_isa Toolkit
