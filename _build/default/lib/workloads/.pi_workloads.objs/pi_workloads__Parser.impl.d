lib/workloads/parser.ml: Array Bench Pi_isa Toolkit
