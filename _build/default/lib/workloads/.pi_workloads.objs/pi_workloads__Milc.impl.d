lib/workloads/milc.ml: Array Bench Pi_isa Toolkit
