lib/workloads/toolkit.ml: Array List Pi_isa Pi_stats Printf
