lib/workloads/soplex.ml: Array Bench Pi_isa Toolkit
