lib/workloads/sphinx3.ml: Array Bench Pi_isa Toolkit
