lib/workloads/bzip2.ml: Array Bench Pi_isa Toolkit
