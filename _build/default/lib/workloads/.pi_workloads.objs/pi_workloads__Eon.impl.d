lib/workloads/eon.ml: Array Bench Pi_isa Toolkit
