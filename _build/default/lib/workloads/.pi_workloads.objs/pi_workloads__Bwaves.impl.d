lib/workloads/bwaves.ml: Array Bench Pi_isa Toolkit
