lib/workloads/toolkit.mli: Pi_isa Pi_stats
