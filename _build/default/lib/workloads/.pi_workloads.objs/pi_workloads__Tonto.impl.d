lib/workloads/tonto.ml: Array Bench Pi_isa Toolkit
