lib/workloads/calculix.ml: Array Bench Pi_isa Toolkit
