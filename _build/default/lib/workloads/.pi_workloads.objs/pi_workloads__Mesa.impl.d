lib/workloads/mesa.ml: Array Bench Pi_isa Toolkit
