lib/workloads/gobmk.ml: Array Bench Pi_isa Toolkit
