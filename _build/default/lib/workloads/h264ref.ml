(* 464.h264ref stand-in: H.264 video encoder. Motion-estimation SAD loops
   over macroblock tiles with short periodic decisions (block-mode
   selection), L1-resident reference windows; low CPI with a clear branch
   component. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "464.h264ref"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"h264" ~n:6 in
  let ref_frame = B.global b ~name:"ref_frame" ~size:(1536 * 1024) in
  let cur_mb = B.global b ~name:"cur_mb" ~size:(16 * 1024) in
  let mv_costs = B.global b ~name:"mv_costs" ~size:(64 * 1024) in
  let sad_kernel =
    B.proc b ~obj:objs.(0) ~name:"setup_fast_me"
      [
        B.for_ ~trips:96
          ([
             B.load_global ref_frame (B.seq ~stride:32);
             B.load_global cur_mb (B.seq ~stride:16);
             B.work 6;
           ]
          @ branch_blob ctx ~mix:patterned_mix ~n:1 ~work:2);
      ]
  in
  let mode_decision =
    B.proc b ~obj:objs.(1) ~name:"mode_decision"
      (branch_blob ctx ~mix:patterned_mix ~n:6 ~work:4
      @ [ B.load_global mv_costs B.rand_access; B.work 5 ]
      @ branch_blob ctx ~mix:hard_mix ~n:1 ~work:3)
  in
  let transform_quant =
    B.proc b ~obj:objs.(2) ~name:"dct_quant"
      [
        B.for_ ~trips:32
          [ B.load_global cur_mb (B.seq ~stride:8); B.mul_work 3; B.work 4; B.store_global cur_mb (B.seq ~stride:8) ];
      ]
  in
  let deblock =
    B.proc b ~obj:objs.(3) ~name:"deblock_mb"
      (branch_blob ctx ~mix:patterned_mix ~n:4 ~work:3
      @ [ B.for_ ~trips:20 [ B.load_global ref_frame (B.seq ~stride:64); B.work 4 ] ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 84)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:3
          @ [ B.call sad_kernel; B.call mode_decision; B.call transform_quant; B.call deblock ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "H.264 encoder: SAD loops, mode-decision branches, L1-resident tiles";
    expect_significant = true;
    build;
  }
