(* 456.hmmer stand-in: profile hidden-Markov-model sequence search. The
   Viterbi inner loop is integer DP with tight data-dependent max-selection
   branches — high branch density, tiny working set, low base CPI. The
   paper's regression gives it the steepest useful slope (0.041) and the
   widest relative prediction interval. *)

open Toolkit
module B = Pi_isa.Builder

let name = "456.hmmer"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"hmmer" ~n:3 in
  let dp_matrix = B.global b ~name:"dp_matrix" ~size:(192 * 1024) in
  let profile_scores = B.global b ~name:"hmm_scores" ~size:(64 * 1024) in
  let viterbi_row =
    B.proc b ~obj:objs.(0) ~name:"p7_viterbi_row"
      [
        B.for_ ~trips:110
          ([
             B.load_global dp_matrix (B.seq ~stride:16);
             B.load_global profile_scores (B.seq ~stride:8);
             B.work 4;
           ]
          @ branch_blob ctx ~mix:hard_mix ~n:2 ~work:2
          @ [ B.store_global dp_matrix (B.seq ~stride:16) ]);
      ]
  in
  let posterior =
    B.proc b ~obj:objs.(1) ~name:"posterior"
      (branch_blob ctx ~mix:patterned_mix ~n:4 ~work:3
      @ [ B.for_ ~trips:30 ([ B.load_global dp_matrix B.rand_access; B.work 3 ] @ branch_blob ctx ~mix:hard_mix ~n:1 ~work:2) ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 48)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:3
          @ [ B.call viterbi_row; B.call posterior ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "HMM sequence search: integer DP, dense hard branches, tiny working set";
    expect_significant = true;
    build;
  }
