(* 300.twolf stand-in (SPEC CPU 2000): standard-cell placement and routing,
   another simulated-annealing code: pointer-structured cell records,
   accept/reject control, small-but-conflict-prone working set. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "300.twolf"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"twolf" ~n:4 in
  let cells = B.heap_site b ~name:"cells" ~obj_size:120 ~count:2048 in
  let nets = B.heap_site b ~name:"net_records" ~obj_size:88 ~count:2048 in
  let rows = B.global b ~name:"rows" ~size:(192 * 1024) in
  let new_position =
    B.proc b ~obj:objs.(0) ~name:"ucxx2"
      ([ B.load_heap cells B.rand_access; B.work 5 ]
      @ branch_blob ctx ~mix:hard_mix ~n:1 ~work:4
      @ [ B.load_global rows B.rand_access ]
      @ branch_blob ctx ~mix:patterned_mix ~n:2 ~work:3)
  in
  let wire_cost =
    B.proc b ~obj:objs.(1) ~name:"new_dbox"
      [
        B.for_ ~trips:12
          ([ B.load_heap nets (B.seq ~stride:24); B.work 4 ]
          @ branch_blob ctx ~mix:easy_mix ~n:1 ~work:2);
      ]
  in
  let accept_reject =
    B.proc b ~obj:objs.(2) ~name:"acceptt"
      (branch_blob ctx ~mix:hard_mix ~n:1 ~work:2
      @ [
          B.if_
            (Behavior.Bernoulli { p_taken = 0.47 })
            [ B.store_heap cells B.rand_access; B.work 4 ]
            [ B.work 2 ];
        ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 560)
          ([ B.call new_position; B.call wire_cost; B.call accept_reject ]
          @ branch_blob ctx ~mix:easy_mix ~n:1 ~work:3);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "Standard-cell placement: annealing over pointer-structured cells";
    expect_significant = true;
    build;
  }
