(* 416.gamess stand-in: quantum chemistry (FORTRAN). Dense FP inner loops
   over basis-function arrays with highly regular control; low CPI, low
   MPKI, but enough conditional structure to keep the correlation
   significant. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "416.gamess"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"gamess" ~n:6 in
  let integrals = B.global b ~name:"integrals" ~size:(1024 * 1024) in
  let density = B.global b ~name:"density" ~size:(256 * 1024) in
  let fock = B.global b ~name:"fock" ~size:(256 * 1024) in
  let two_electron =
    B.proc b ~obj:objs.(0) ~name:"twoei"
      [
        B.for_ ~trips:60
          ([
             B.load_global integrals (B.seq ~stride:16);
             B.fp_work 8;
             B.load_global density (B.seq ~stride:8);
             B.fp_work 4;
           ]
          @ branch_blob ctx ~mix:fp_mix ~n:2 ~work:3);
      ]
  in
  let fock_update =
    B.proc b ~obj:objs.(1) ~name:"fock_update"
      [
        B.for_ ~trips:48
          [
            B.load_global fock (B.seq ~stride:32);
            B.fp_work 6;
            B.store_global fock (B.seq ~stride:32);
            B.work 2;
          ];
      ]
  in
  let guard_checks = guard_pool ctx ~objs ~prefix:"shell_guard" ~procs:14 ~branches_per:4 in
  let shell_pairs =
    spread_pool ctx ~objs ~prefix:"shell" ~n:20 ~body:(fun i ->
        branch_blob ctx ~mix:fp_mix ~n:(2 + (i mod 3)) ~work:4
        @ [ B.fp_work (4 + (i mod 5)); B.load_global integrals B.rand_access ])
  in
  let diagonalize =
    B.proc b ~obj:objs.(2) ~name:"diagonalize"
      [
        B.for_ ~trips:20
          ([ B.fp_work 10; B.mul_work 2; B.load_global fock (B.seq ~stride:8) ]
          @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:2);
      ]
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 64)
          ([ B.call two_electron ] @ call_all guard_checks
          @ call_all (Array.sub shell_pairs 0 8)
          @ [ B.call fock_update; B.call diagonalize ]
          @ branch_blob ctx ~mix:fp_mix ~n:2 ~work:3);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Quantum chemistry: dense FP loops, regular control, cache-resident data";
    expect_significant = true;
    build;
  }
