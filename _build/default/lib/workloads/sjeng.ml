(* 458.sjeng stand-in: chess engine. Alpha-beta search with bitboard move
   generation: very hard data-dependent branches softened by highly biased
   pruning tests. Appears in the paper's Figure 5(a) as a strongly linear
   benchmark in the simulator study. *)

open Toolkit
module B = Pi_isa.Builder

let name = "458.sjeng"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"sjeng" ~n:6 in
  let hash_table = B.global b ~name:"ttable" ~size:(192 * 1024) in
  let board_stack = B.global b ~name:"board_stack" ~size:(64 * 1024) in
  let move_generators =
    spread_pool ctx ~objs ~prefix:"gen" ~n:20 ~body:(fun i ->
        [
          B.load_global board_stack (B.seq ~stride:16);
          B.work (4 + (i mod 3));
          B.load_global board_stack (B.seq ~stride:8);
        ]
        @ branch_blob ctx ~mix:hard_mix ~n:2 ~work:4
        @ branch_blob ctx ~mix:easy_mix ~n:2 ~work:3)
  in
  let evaluate =
    B.proc b ~obj:objs.(0) ~name:"std_eval"
      (branch_blob ctx ~mix:patterned_mix ~n:8 ~work:4
      @ [ B.load_global board_stack B.rand_access; B.work 6 ])
  in
  let probe_tt =
    B.proc b ~obj:objs.(1) ~name:"probe_tt"
      ([ B.load_global hash_table B.rand_access; B.work 3 ]
      @ branch_blob ctx ~mix:hard_mix ~n:1 ~work:2)
  in
  let search_step =
    B.proc b ~obj:objs.(2) ~name:"search"
      ([ B.call probe_tt ]
      @ branch_blob ctx ~mix:hard_mix ~n:2 ~work:3
      @ call_all (Array.sub move_generators 0 6)
      @ [ B.call evaluate ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 190)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:3
          @ [ B.call search_step ]
          @ call_all (Array.sub move_generators 6 6));
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Chess engine: alpha-beta search, hard pruning branches (Fig 5a)";
    expect_significant = true;
    build;
  }
