(* 401.bzip2 stand-in: block-sorting compression. Long scans over a data
   buffer with bit-pattern-periodic control (run-length and Huffman paths),
   a Burrows-Wheeler-ish sorting phase with data-dependent comparisons, and
   modest working sets that mostly live in L2. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "401.bzip2"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"bzip" ~n:5 in
  let input_buffer = B.global b ~name:"input" ~size:(768 * 1024) in
  let work_buffer = B.global b ~name:"work" ~size:(256 * 1024) in
  let freq_table = B.global b ~name:"freq" ~size:4096 in
  let scan_block =
    B.proc b ~obj:objs.(0) ~name:"scan_block"
      [
        B.for_ ~trips:96
          ([ B.load_global input_buffer (B.seq ~stride:64); B.work 6 ]
          @ branch_blob ctx ~mix:patterned_mix ~n:3 ~work:4
          @ [ B.store_global freq_table B.rand_access ]);
      ]
  in
  let sort_block =
    B.proc b ~obj:objs.(1) ~name:"sort_block"
      [
        B.for_ ~trips:64
          ([ B.load_global work_buffer B.rand_access; B.work 4 ]
          @ branch_blob ctx ~mix:hard_mix ~n:2 ~work:3
          @ branch_blob ctx ~mix:patterned_mix ~n:2 ~work:3);
      ]
  in
  let huffman_encode =
    B.proc b ~obj:objs.(2) ~name:"huffman_encode"
      [
        B.for_ ~trips:80
          ([ B.load_global freq_table (B.seq ~stride:16); B.work 5 ]
          @ branch_blob ctx ~mix:patterned_mix ~n:4 ~work:5
          @ [ B.store_global work_buffer (B.seq ~stride:32) ]);
      ]
  in
  let mtf_pass =
    B.proc b ~obj:objs.(3) ~name:"mtf_pass"
      (branch_blob ctx ~mix:long_history_mix ~n:8 ~work:4
      @ [ B.for_ ~trips:40 ([ B.load_global work_buffer (B.seq ~stride:8) ] @ branch_blob ctx ~mix:easy_mix ~n:2 ~work:4) ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 32)
          (branch_blob ctx ~mix:easy_mix ~n:3 ~work:4
          @ [ B.call scan_block; B.call sort_block; B.call mtf_pass; B.call huffman_encode ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Block-sorting compressor: buffer scans, bit-pattern control, L2-resident data";
    expect_significant = true;
    build;
  }
