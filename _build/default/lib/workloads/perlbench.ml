(* 400.perlbench stand-in: a bytecode-interpreter workload. An opcode
   dispatch loop makes indirect calls into a pool of handler procedures,
   each a blob of moderately predictable branches plus hash-table probes
   into a heap-allocated symbol table. Integer-heavy, branchy, light on the
   memory system — the profile behind the paper's headline CPI 0.70 /
   MPKI 6.5 example. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "400.perlbench"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"perl" ~n:8 in
  let symbol_table = B.heap_site b ~name:"symtab" ~obj_size:128 ~count:1536 in
  let pad_buffer = B.global b ~name:"pad" ~size:(96 * 1024) in
  let opcode_handlers =
    spread_pool ctx ~objs ~prefix:"op" ~n:64 ~body:(fun i ->
        let probes =
          if i mod 3 = 0 then [ B.load_heap symbol_table B.rand_access ]
          else [ B.load_global pad_buffer (B.seq ~stride:32) ]
        in
        branch_blob ctx ~mix:patterned_mix ~n:(6 + (i mod 7)) ~work:6
        @ probes
        @ branch_blob ctx ~mix:easy_mix ~n:5 ~work:5)
  in
  let regex_engine =
    B.proc b ~obj:objs.(0) ~name:"regex_match"
      (branch_blob ctx ~mix:long_history_mix ~n:18 ~work:4
      @ [ B.for_ ~trips:12 (branch_blob ctx ~mix:patterned_mix ~n:3 ~work:2) ])
  in
  let gc_pass =
    B.proc b ~obj:objs.(1) ~name:"sv_sweep"
      [
        B.for_ ~trips:48
          ([ B.load_heap symbol_table B.rand_access ]
          @ branch_blob ctx ~mix:easy_mix ~n:2 ~work:2);
      ]
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 130)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:3
          @ dispatch_loop ctx ~trips:6
              ~selector:(bytecode_stream ctx ~n_targets:64 ~length:256 ~hot_fraction:0.15)
              ~callees:opcode_handlers
              ~per_iter:[ B.work 4 ]
          @ [
              B.if_
                (Behavior.Bernoulli { p_taken = 0.2 })
                [ B.call regex_engine ]
                [ B.work 2 ];
              B.if_
                (Behavior.Periodic { pattern = Behavior.loop_pattern ~trips:32 })
                [ B.work 1 ]
                [ B.call gc_pass ];
            ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Perl interpreter: indirect dispatch, hash probes, branchy handlers";
    expect_significant = true;
    build;
  }
