(* 444.namd stand-in: molecular dynamics (C++), heavily optimized compute
   kernels. Almost pure FP arithmetic over L1-resident tiles; branch
   behaviour dominated by counted loops, modest MPKI. *)

open Toolkit
module B = Pi_isa.Builder

let name = "444.namd"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"namd" ~n:4 in
  let tile_a = B.global b ~name:"tile_a" ~size:(48 * 1024) in
  let tile_b = B.global b ~name:"tile_b" ~size:(48 * 1024) in
  let pairlists = B.global b ~name:"pairlists" ~size:(640 * 1024) in
  let compute_pairs =
    spread_pool ctx ~objs ~prefix:"calc_pair" ~n:12 ~body:(fun i ->
        [
          B.for_ ~trips:(40 + (8 * (i mod 4)))
            ([
               B.load_global pairlists (B.seq ~stride:32);
               B.load_global tile_a B.rand_access;
               B.fp_work (8 + (i mod 4));
               B.load_global tile_b B.rand_access;
               B.fp_work 6;
             ]
            @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:2);
        ])
  in
  let integrate =
    B.proc b ~obj:objs.(1) ~name:"integrate"
      [
        B.for_ ~trips:56
          [ B.load_global tile_a (B.seq ~stride:16); B.fp_work 7; B.store_global tile_a (B.seq ~stride:16) ];
      ]
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 26)
          (branch_blob ctx ~mix:fp_mix ~n:2 ~work:3
          @ call_all compute_pairs @ [ B.call integrate ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Molecular dynamics kernels: FP-dense, L1-resident tiles, counted loops";
    expect_significant = true;
    build;
  }
