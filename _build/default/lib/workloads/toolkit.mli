(** Shared machinery for the SPEC stand-in workload generators.

    Every benchmark stand-in is generated from a {!ctx} whose structure RNG
    is seeded from the benchmark's name only, so the *program* (its CFG,
    branch behaviours, memory sites) is a fixed artifact — exactly like a
    compiled SPEC binary — while layout seeds vary per experiment. The
    toolkit provides the recurring motifs: blobs of conditional branches
    drawn from a predictability mix, loop nests, pointer-chase and streaming
    kernels, procedure pools, call fan-outs and dispatch loops. *)

type ctx = {
  builder : Pi_isa.Builder.t;
  rng : Pi_stats.Rng.t;  (** structure randomness; derived from the name *)
  scale : int;  (** outer-loop multiplier; scale 1 = quick test size *)
  mutable labels : string list;  (** labelled branches for correlation *)
  mutable label_counter : int;
}

val make_ctx : name:string -> scale:int -> ctx

val fresh_label : ctx -> string

(** A branch-predictability mixture: probabilities of each behaviour class
    (should sum to <= 1; the remainder becomes correlated branches when
    labelled branches exist, biased ones otherwise). *)
type branch_mix = {
  p_biased : float;  (** Bernoulli 0.92..0.995 or always/never *)
  p_periodic_short : float;  (** period 2..8: GAs-predictable *)
  p_periodic_long : float;  (** period 24..160: needs TAGE-length history *)
  p_loop_long : float;  (** Loop_trip 24..400: loop-predictor food *)
  p_random : float;  (** Bernoulli 0.25..0.75: irreducible *)
}

(** Canonical mixes: [easy_mix] for predictable integer control,
    [patterned_mix] for periodic/data-structured control, [long_history_mix]
    where L-TAGE shines, [hard_mix] for search/chess-style data-dependent
    control, [fp_mix] for FP codes that are almost entirely loop control. *)

val easy_mix : branch_mix

val deterministic_mix : branch_mix
(** Only deterministic / near-deterministic branches: their mispredictions
    come almost exclusively from table aliasing, i.e. from code placement —
    the purest interferometry signal, typical of FP codes' guard tests. *)

val patterned_mix : branch_mix
val long_history_mix : branch_mix
val hard_mix : branch_mix
val fp_mix : branch_mix

val periodic_pattern : ctx -> period:int -> bool array
(** A deterministic repeating direction pattern with run structure (not
    pure noise), drawn from the structure RNG. *)

val gen_behavior : ctx -> branch_mix -> Pi_isa.Behavior.t

val branch_blob :
  ctx -> mix:branch_mix -> n:int -> work:int -> Pi_isa.Builder.stmt list
(** [n] sequential labelled if/else statements whose behaviours are drawn
    from [mix], with ~[work] plain instructions around each. *)

val loop_nest :
  ctx -> trips:int list -> body:Pi_isa.Builder.stmt list -> Pi_isa.Builder.stmt list
(** Nested fixed-trip loops, outermost first. *)

val chase_kernel :
  ctx -> site:Pi_isa.Builder.site_handle -> steps:int -> work:int ->
  extra:Pi_isa.Builder.stmt list -> Pi_isa.Builder.stmt list
(** Pointer-chase loop: [steps] dependent loads with [work] ALU ops and
    [extra] statements per step. *)

val stream_kernel :
  ctx -> global:Pi_isa.Builder.global_handle -> stride:int -> trips:int ->
  work:int -> store_every:int -> Pi_isa.Builder.stmt list
(** Streaming loop over a global array; every [store_every]-th iteration
    also stores. [store_every = 0] disables stores. *)

val proc_pool :
  ctx -> obj:Pi_isa.Builder.obj_handle -> prefix:string -> n:int ->
  body:(int -> Pi_isa.Builder.stmt list) -> Pi_isa.Builder.proc_handle array
(** [n] procedures named [prefix_i] with generated bodies. *)

val round_robin_objects : ctx -> prefix:string -> n:int -> Pi_isa.Builder.obj_handle array
(** [n] object files; spread procedure pools across several link units so
    object reordering has something to permute. *)

val spread_pool :
  ctx -> objs:Pi_isa.Builder.obj_handle array -> prefix:string -> n:int ->
  body:(int -> Pi_isa.Builder.stmt list) -> Pi_isa.Builder.proc_handle array
(** Like {!proc_pool} but distributing procedures round-robin over [objs]. *)

val call_all : Pi_isa.Builder.proc_handle array -> Pi_isa.Builder.stmt list
(** Direct calls to every procedure in order. *)

val guard_pool :
  ctx -> objs:Pi_isa.Builder.obj_handle array -> prefix:string -> procs:int ->
  branches_per:int -> Pi_isa.Builder.proc_handle array
(** Many small procedures of deterministic guard branches. Aliasing within a
    procedure is layout-invariant, so placement-sensitive misprediction
    signal requires guards spread across procedures — this is the knob FP
    stand-ins use to reproduce the paper's significant-but-small branch
    correlations. *)

val dispatch_loop :
  ctx -> trips:int -> selector:Pi_isa.Behavior.Selector.t ->
  callees:Pi_isa.Builder.proc_handle array -> per_iter:Pi_isa.Builder.stmt list ->
  Pi_isa.Builder.stmt list
(** Interpreter-style loop performing an indirect call through [callees]
    each iteration. *)

val bytecode_stream :
  ctx -> n_targets:int -> length:int -> hot_fraction:float -> Pi_isa.Behavior.Selector.t
(** A repeating opcode stream with hot-opcode runs — the realistic indirect
    target distribution of an interpreter, partially BTB-predictable. *)
