(* 252.eon stand-in (SPEC CPU 2000): probabilistic ray tracer (C++). One of
   the paper's two visibly non-linear benchmarks in the Figure 4/5 study.
   The mechanism we reproduce: scene-traversal branches mispredict often,
   and every misprediction's wrong-path run speculatively touches upcoming
   scene data; with a working set that thrashes L2, those touches act as
   erratic prefetches whose benefit saturates as MPKI grows — bending the
   MPKI-CPI relation away from a straight line. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "252.eon"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"eon" ~n:5 in
  (* Scene data straddles the L2 slice so wrong-path prefetches matter. *)
  let scene_bvh = B.global b ~name:"scene_bvh" ~size:(9 * 1024 * 1024) in
  let shade_cache = B.global b ~name:"shade_cache" ~size:(64 * 1024) in
  let traverse_bvh =
    (* Node fetches are sparse relative to the traversal branches and almost
       always miss the L2 slice: exactly the regime in which wrong-path
       prefetching's saturating benefit bends the MPKI-CPI line. *)
    B.proc b ~obj:objs.(0) ~name:"ggRayBBoxIntersect"
      [
        B.for_ ~trips:26
          (branch_blob ctx ~mix:hard_mix ~n:4 ~work:5
          @ [
              B.if_
                (Behavior.Periodic { pattern = [| true; false; false |] })
                [ B.load_global scene_bvh B.rand_access; B.fp_work 4 ]
                [ B.fp_work 3; B.work 2 ];
            ]);
      ]
  in
  let shade =
    B.proc b ~obj:objs.(1) ~name:"mrSurfaceTexture_shade"
      ([ B.load_global shade_cache (B.seq ~stride:16); B.fp_work 7 ]
      @ branch_blob ctx ~mix:patterned_mix ~n:3 ~work:3
      @ [ B.fp_work 5; B.div_work 1 ])
  in
  let sample_pixel =
    B.proc b ~obj:objs.(2) ~name:"mrPixelSample"
      (branch_blob ctx ~mix:hard_mix ~n:2 ~work:2
      @ [ B.call traverse_bvh; B.call shade ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 165)
          (branch_blob ctx ~mix:easy_mix ~n:1 ~work:3 @ [ B.call sample_pixel ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "Ray tracer: dense traversal branches + L2-thrashing scene (non-linear)";
    expect_significant = true;
    build;
  }
