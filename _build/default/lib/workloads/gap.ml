(* 254.gap stand-in (SPEC CPU 2000): computational group theory — another
   interpreter, with big-integer arithmetic kernels between dispatches.
   Extended-registry benchmark. *)

open Toolkit
module B = Pi_isa.Builder

let name = "254.gap"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"gap" ~n:6 in
  let bags = B.heap_site b ~name:"bags" ~obj_size:256 ~count:6144 in
  let workspace = B.global b ~name:"workspace" ~size:(768 * 1024) in
  let eval_handlers =
    spread_pool ctx ~objs ~prefix:"Eval" ~n:36 ~body:(fun i ->
        branch_blob ctx ~mix:patterned_mix ~n:(4 + (i mod 4)) ~work:4
        @ [ B.load_heap bags B.rand_access; B.mul_work (1 + (i mod 2)); B.work 4 ])
  in
  let bigint_multiply =
    B.proc b ~obj:objs.(0) ~name:"ProdInt"
      [
        B.for_ ~trips:40
          [ B.load_global workspace (B.seq ~stride:8); B.mul_work 3; B.work 3 ];
      ]
  in
  let garbage_collect =
    B.proc b ~obj:objs.(1) ~name:"CollectBags"
      [
        B.for_ ~trips:60
          ([ B.load_heap bags (B.seq ~stride:64) ] @ branch_blob ctx ~mix:easy_mix ~n:2 ~work:2);
      ]
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 110)
          (dispatch_loop ctx ~trips:4
             ~selector:(bytecode_stream ctx ~n_targets:36 ~length:144 ~hot_fraction:0.2)
             ~callees:eval_handlers ~per_iter:[ B.work 4 ]
          @ [
              B.call bigint_multiply;
              B.if_
                (Pi_isa.Behavior.Periodic { pattern = Pi_isa.Behavior.loop_pattern ~trips:40 })
                [ B.work 2 ]
                [ B.call garbage_collect ];
            ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "Group-theory interpreter: dispatch + bignum kernels + GC sweeps";
    expect_significant = true;
    build;
  }
