type suite = Cpu2006 | Cpu2000

type t = {
  name : string;
  suite : suite;
  description : string;
  expect_significant : bool;
  build : scale:int -> Pi_isa.Program.t;
}

let suite_name = function Cpu2006 -> "SPEC CPU 2006" | Cpu2000 -> "SPEC CPU 2000"
