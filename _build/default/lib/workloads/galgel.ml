(* 178.galgel stand-in (SPEC CPU 2000): Galerkin-method fluid stability
   analysis (Fortran 90). The paper's other visibly non-linear benchmark:
   spectral solver loops whose convergence tests mispredict in bursts while
   the matrix data thrashes L2, coupling branch behaviour to the memory
   system through wrong-path effects. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "178.galgel"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"galgel" ~n:4 in
  let galerkin_matrix = B.global b ~name:"galerkin_matrix" ~size:(8 * 1024 * 1024) in
  let spectral_coeffs = B.global b ~name:"spectral_coeffs" ~size:(96 * 1024) in
  let assemble_row =
    (* Sparse matrix-element fetches that thrash the L2 behind bursty
       convergence branches: the wrong-path-prefetch-saturation regime. *)
    B.proc b ~obj:objs.(0) ~name:"syshtN"
      [
        B.for_ ~trips:16
          ([
             B.if_
               (Behavior.Periodic { pattern = [| true; false; false; false |] })
               [ B.load_global galerkin_matrix B.rand_access; B.fp_work 6 ]
               [ B.fp_work 4; B.work 3 ];
           ]
          @ branch_blob ctx ~mix:hard_mix ~n:5 ~work:4);
      ]
  in
  let orthogonalize =
    B.proc b ~obj:objs.(1) ~name:"grshN"
      ([ B.load_global spectral_coeffs (B.seq ~stride:16); B.fp_work 8; B.div_work 1 ]
      @ branch_blob ctx ~mix:patterned_mix ~n:3 ~work:3)
  in
  let convergence_test =
    B.proc b ~obj:objs.(2) ~name:"convergence"
      (branch_blob ctx ~mix:hard_mix ~n:3 ~work:2
      @ [
          B.fp_work 4;
          B.load_global spectral_coeffs B.rand_access;
          B.load_global spectral_coeffs (B.seq ~stride:8);
        ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 190)
          ([ B.call assemble_row; B.call orthogonalize; B.call convergence_test ]
          @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:3);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "Galerkin fluid stability: bursty convergence branches + L2 thrash (non-linear)";
    expect_significant = true;
    build;
  }
