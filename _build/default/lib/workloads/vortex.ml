(* 255.vortex stand-in (SPEC CPU 2000): object-oriented database. Schema
   lookups through nested heap records, transaction control flow with
   well-biased validity checks, moderate code footprint. Part of the
   extended registry (not one of the paper's 31 study benchmarks). *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "255.vortex"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"vortex" ~n:8 in
  let db_records = B.heap_site b ~name:"db_records" ~obj_size:176 ~count:12_288 in
  let index_nodes = B.heap_site b ~name:"index_nodes" ~obj_size:96 ~count:4096 in
  let schema = B.global b ~name:"schema" ~size:(192 * 1024) in
  let object_methods =
    spread_pool ctx ~objs ~prefix:"Vchunk" ~n:48 ~body:(fun i ->
        [ B.load_heap db_records B.rand_access ]
        @ branch_blob ctx ~mix:easy_mix ~n:(4 + (i mod 3)) ~work:4
        @ [ B.load_global schema B.rand_access; B.work 3 ])
  in
  let index_lookup =
    B.proc b ~obj:objs.(0) ~name:"Tree_Search"
      (chase_kernel ctx ~site:index_nodes ~steps:7 ~work:5
         ~extra:(branch_blob ctx ~mix:patterned_mix ~n:1 ~work:3))
  in
  let validate =
    B.proc b ~obj:objs.(1) ~name:"Validate_Object"
      (branch_blob ctx ~mix:easy_mix ~n:8 ~work:3
      @ [ B.load_heap db_records (B.seq ~stride:48); B.work 4 ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 120)
          ([ B.call index_lookup; B.call validate ]
          @ call_all (Array.sub object_methods 0 10)
          @ branch_blob ctx ~mix:easy_mix ~n:2 ~work:3);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "OO database: record chases, schema lookups, biased validity checks";
    expect_significant = true;
    build;
  }
