(* 197.parser stand-in (SPEC CPU 2000): link-grammar natural-language
   parser. Dictionary pointer chasing through modest heap structures with
   backtracking control. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "197.parser"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"parser" ~n:5 in
  let dictionary = B.heap_site b ~name:"dict_nodes" ~obj_size:72 ~count:6_144 in
  let connectors = B.heap_site b ~name:"connectors" ~obj_size:40 ~count:8192 in
  let sentence = B.global b ~name:"sentence" ~size:(32 * 1024) in
  let dict_lookup =
    B.proc b ~obj:objs.(0) ~name:"abridged_lookup"
      (chase_kernel ctx ~site:dictionary ~steps:6 ~work:7
         ~extra:(branch_blob ctx ~mix:patterned_mix ~n:1 ~work:2))
  in
  let match_connectors =
    B.proc b ~obj:objs.(1) ~name:"prune_match"
      [
        B.for_ ~trips:10
          ([ B.load_heap connectors B.rand_access; B.work 5 ]
          @ branch_blob ctx ~mix:hard_mix ~n:1 ~work:2
          @ branch_blob ctx ~mix:easy_mix ~n:1 ~work:2);
      ]
  in
  let backtrack =
    B.proc b ~obj:objs.(2) ~name:"region_valid"
      (branch_blob ctx ~mix:hard_mix ~n:2 ~work:4
      @ [ B.load_global sentence (B.seq ~stride:8); B.work 4 ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 260)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:3
          @ [ B.call dict_lookup; B.call match_connectors ]
          @ [
              B.if_
                (Behavior.Bernoulli { p_taken = 0.35 })
                [ B.call backtrack ]
                [ B.work 3 ];
            ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "Link-grammar parser: dictionary chases with backtracking branches";
    expect_significant = true;
    build;
  }
