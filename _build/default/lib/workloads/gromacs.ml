(* 435.gromacs stand-in: molecular dynamics. Neighbour-list force loops:
   semi-regular gather accesses into particle arrays plus heavy FP inner
   work; control is mostly loop-structured with some cutoff tests. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "435.gromacs"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"gmx" ~n:5 in
  let positions = B.global b ~name:"positions" ~size:(128 * 1024) in
  let forces = B.global b ~name:"forces" ~size:(128 * 1024) in
  let neighbours = B.global b ~name:"nblist" ~size:(512 * 1024) in
  let inner_force =
    B.proc b ~obj:objs.(0) ~name:"inl1130"
      [
        B.for_ ~trips:120
          ([
             B.load_global neighbours (B.seq ~stride:16);
             B.load_global positions B.rand_access;
             B.fp_work 9;
             B.if_
               (Behavior.Bernoulli { p_taken = 0.83 })
               [ B.fp_work 5; B.store_global forces B.rand_access ]
               [ B.work 1 ];
           ]
          @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:2);
      ]
  in
  let update_positions =
    B.proc b ~obj:objs.(1) ~name:"update"
      [
        B.for_ ~trips:64
          [
            B.load_global positions (B.seq ~stride:32);
            B.fp_work 5;
            B.store_global positions (B.seq ~stride:32);
          ];
      ]
  in
  let build_nblist =
    B.proc b ~obj:objs.(2) ~name:"ns_grid"
      (branch_blob ctx ~mix:patterned_mix ~n:5 ~work:4
      @ [ B.for_ ~trips:40 [ B.load_global neighbours (B.seq ~stride:64); B.work 4 ] ])
  in
  let constraints =
    B.proc b ~obj:objs.(3) ~name:"lincs"
      [ B.for_ ~trips:30 ([ B.fp_work 6; B.load_global forces (B.seq ~stride:16) ] @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:2) ];
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 34)
          ([ B.call inner_force; B.call update_positions; B.call constraints ]
          @ [
              B.if_
                (Behavior.Periodic { pattern = Behavior.loop_pattern ~trips:10 })
                [ B.work 2 ]
                [ B.call build_nblist ];
            ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Molecular dynamics: neighbour-list FP force loops, cutoff branches";
    expect_significant = true;
    build;
  }
