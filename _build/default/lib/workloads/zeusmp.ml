(* 434.zeusmp stand-in: computational fluid dynamics on a structured grid.
   Stencil sweeps over multi-megabyte arrays with essentially perfect loop
   control: MPKI is tiny and its range under code reordering is so narrow
   that the paper's regression slope (0.373) is an extrapolation artifact —
   a shape this stand-in reproduces by giving the branch predictor almost
   nothing to do while the memory system dominates. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "434.zeusmp"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"zeus" ~n:4 in
  let grid_u = B.global b ~name:"grid_u" ~size:(3 * 1024 * 1024) in
  let grid_v = B.global b ~name:"grid_v" ~size:(3 * 1024 * 1024) in
  let grid_w = B.global b ~name:"grid_w" ~size:(3 * 1024 * 1024) in
  let sweep axis_name grid stride =
    B.proc b ~obj:objs.(0) ~name:axis_name
      [
        B.for_ ~trips:220
          [
            B.load_global grid (B.seq ~stride);
            B.fp_work 7;
            B.load_global grid_u (B.seq ~stride:(stride * 2));
            B.fp_work 5;
            B.store_global grid (B.seq ~stride);
            B.work 2;
          ];
      ]
  in
  let x_sweep = sweep "hsmoc_x" grid_u 8 in
  let y_sweep = sweep "hsmoc_y" grid_v 64 in
  let z_sweep = sweep "hsmoc_z" grid_w 512 in
  let boundary =
    B.proc b ~obj:objs.(1) ~name:"bvald"
      (branch_blob ctx ~mix:fp_mix ~n:4 ~work:4
      @ [ B.for_ ~trips:16 [ B.load_global grid_u (B.seq ~stride:256); B.fp_work 3 ] ])
  in
  let flux_limiters = guard_pool ctx ~objs ~prefix:"flux_limiter" ~procs:26 ~branches_per:7 in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 44)
          ([ B.call x_sweep ] @ call_all flux_limiters
          @ [ B.call y_sweep; B.call z_sweep; B.call boundary; B.work 6 ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "CFD stencil sweeps: near-perfect loop control, memory-system dominated";
    expect_significant = true;
    build;
  }
