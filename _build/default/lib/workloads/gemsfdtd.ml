(* 459.GemsFDTD stand-in: finite-difference time-domain electromagnetics.
   Like zeusmp, an FP stencil code whose branches are almost all counted
   loops: MPKI has nearly no range under reordering, making the paper's
   fitted slope (0.516) another extrapolation artifact, while streaming
   misses set the CPI level. *)

open Toolkit
module B = Pi_isa.Builder

let name = "459.GemsFDTD"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"gems" ~n:4 in
  let e_field = B.global b ~name:"e_field" ~size:(6 * 1024 * 1024) in
  let h_field = B.global b ~name:"h_field" ~size:(6 * 1024 * 1024) in
  let update_e =
    B.proc b ~obj:objs.(0) ~name:"updateE_homo"
      [
        B.for_ ~trips:260
          [
            B.load_global h_field (B.seq ~stride:32);
            B.fp_work 6;
            B.load_global e_field (B.seq ~stride:32);
            B.fp_work 4;
            B.store_global e_field (B.seq ~stride:32);
          ];
      ]
  in
  let update_h =
    B.proc b ~obj:objs.(1) ~name:"updateH_homo"
      [
        B.for_ ~trips:260
          [
            B.load_global e_field (B.seq ~stride:64);
            B.fp_work 5;
            B.store_global h_field (B.seq ~stride:64);
            B.work 2;
          ];
      ]
  in
  let absorbing_boundary =
    B.proc b ~obj:objs.(2) ~name:"upml_updateE"
      (branch_blob ctx ~mix:fp_mix ~n:3 ~work:3
      @ [ B.for_ ~trips:24 [ B.load_global e_field (B.seq ~stride:256); B.fp_work 8 ] ])
  in
  let material_checks = guard_pool ctx ~objs ~prefix:"material_check" ~procs:26 ~branches_per:7 in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 55)
          ([ B.call update_e ] @ call_all material_checks
          @ [ B.call absorbing_boundary; B.call update_h; B.work 4 ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "FDTD electromagnetics: streaming FP stencils, degenerate MPKI range";
    expect_significant = true;
    build;
  }
