(* 188.ammp stand-in (SPEC CPU 2000): molecular mechanics with linked-list
   atom traversal — the classic pointer-chasing FP code. Extended-registry
   benchmark. *)

open Toolkit
module B = Pi_isa.Builder

let name = "188.ammp"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"ammp" ~n:4 in
  let atoms = B.heap_site b ~name:"atoms" ~obj_size:240 ~count:32_768 in
  let nonbond = B.heap_site b ~name:"nonbond_lists" ~obj_size:64 ~count:16_384 in
  let force_field =
    B.proc b ~obj:objs.(0) ~name:"mm_fv_update_nonbon"
      (chase_kernel ctx ~site:atoms ~steps:30 ~work:12
         ~extra:
           ([ B.load_heap nonbond (B.seq ~stride:16) ]
           @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:3))
  in
  let bond_terms =
    B.proc b ~obj:objs.(1) ~name:"v_bond"
      [
        B.for_ ~trips:36
          ([ B.load_heap atoms B.rand_access; B.fp_work 8 ]
          @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:2);
      ]
  in
  let integrate =
    B.proc b ~obj:objs.(2) ~name:"verlet"
      [ B.for_ ~trips:30 [ B.load_heap atoms (B.seq ~stride:80); B.fp_work 6 ] ]
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 42)
          (branch_blob ctx ~mix:fp_mix ~n:2 ~work:3
          @ [ B.call force_field; B.call bond_terms; B.call integrate ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "Molecular mechanics: linked-list atom chases with FP force kernels";
    expect_significant = true;
    build;
  }
