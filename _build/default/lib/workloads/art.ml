(* 179.art stand-in (SPEC CPU 2000): adaptive resonance theory neural
   network — repeated passes over weight matrices slightly larger than L1,
   nearly branch-free except for the winner-take-all scan. Extended-registry
   benchmark. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "179.art"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"art" ~n:3 in
  let f1_weights = B.global b ~name:"bus" ~size:(640 * 1024) in
  let f2_activations = B.global b ~name:"f2" ~size:(48 * 1024) in
  let match_pass =
    B.proc b ~obj:objs.(0) ~name:"match"
      [
        B.for_ ~trips:220
          [
            B.load_global f1_weights (B.seq ~stride:16);
            B.fp_work 5;
            B.load_global f2_activations (B.seq ~stride:8);
            B.fp_work 3;
          ];
      ]
  in
  let winner_scan =
    B.proc b ~obj:objs.(1) ~name:"find_match"
      [
        B.for_ ~trips:40
          ([ B.load_global f2_activations (B.seq ~stride:8) ]
          @ [
              B.if_
                (Behavior.Bernoulli { p_taken = 0.12 })
                [ B.store_global f2_activations (B.fixed 0); B.work 2 ]
                [ B.work 1 ];
            ]);
      ]
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [ B.for_ ~trips:(scale * 42) [ B.call match_pass; B.call winner_scan; B.fp_work 4 ] ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "ART neural network: weight-matrix sweeps, winner-take-all scans";
    expect_significant = true;
    build;
  }
