(** Benchmark stand-in descriptor. *)

type suite = Cpu2006 | Cpu2000

type t = {
  name : string;  (** SPEC-style name, e.g. "400.perlbench" *)
  suite : suite;
  description : string;
  expect_significant : bool;
      (** whether the paper found (or we expect) a statistically significant
          CPI~MPKI correlation under code reordering *)
  build : scale:int -> Pi_isa.Program.t;
      (** construct the program; [scale] multiplies main-loop trip counts *)
}

val suite_name : suite -> string
