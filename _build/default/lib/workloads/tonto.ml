(* 465.tonto stand-in: quantum crystallography (Fortran 95). FP-heavy with
   more object-style indirection than the classic FP codes: moderate branch
   sensitivity around integral screening tests. *)

open Toolkit
module B = Pi_isa.Builder

let name = "465.tonto"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"tonto" ~n:6 in
  let shell_data = B.heap_site b ~name:"shells" ~obj_size:512 ~count:512 in
  let integral_buf = B.global b ~name:"integral_buf" ~size:(768 * 1024) in
  let screening =
    B.proc b ~obj:objs.(0) ~name:"make_gaussian_xyz"
      (branch_blob ctx ~mix:patterned_mix ~n:4 ~work:3
      @ [ B.load_heap shell_data B.rand_access; B.fp_work 6 ])
  in
  let integral_kernels =
    spread_pool ctx ~objs ~prefix:"make_ft" ~n:16 ~body:(fun i ->
        [
          B.for_ ~trips:(30 + (6 * (i mod 4)))
            ([ B.load_global integral_buf (B.seq ~stride:48); B.fp_work (7 + (i mod 3)) ]
            @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:2);
        ])
  in
  let density_fit =
    B.proc b ~obj:objs.(1) ~name:"density_fit"
      [
        B.for_ ~trips:40
          ([ B.load_heap shell_data (B.seq ~stride:64); B.fp_work 5; B.mul_work 1 ]
          @ branch_blob ctx ~mix:fp_mix ~n:2 ~work:2);
      ]
  in
  let symmetry_checks = guard_pool ctx ~objs ~prefix:"symmetry_check" ~procs:20 ~branches_per:6 in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 30)
          ([ B.call screening ] @ call_all symmetry_checks
          @ call_all (Array.sub integral_kernels 0 10)
          @ [ B.call density_fit ]
          @ branch_blob ctx ~mix:fp_mix ~n:2 ~work:3);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Quantum crystallography: FP integrals with screening-test branches";
    expect_significant = true;
    build;
  }
