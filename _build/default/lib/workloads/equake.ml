(* 183.equake stand-in (SPEC CPU 2000): seismic wave simulation with an
   unstructured sparse matrix-vector kernel — indexed gathers over a
   multi-megabyte mesh. Extended-registry benchmark. *)

open Toolkit
module B = Pi_isa.Builder

let name = "183.equake"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"equake" ~n:4 in
  let mesh = B.global b ~name:"mesh_matrix" ~size:(6 * 1024 * 1024) in
  let col_index = B.global b ~name:"col_index" ~size:(768 * 1024) in
  let disp = B.global b ~name:"displacement" ~size:(384 * 1024) in
  let smvp =
    B.proc b ~obj:objs.(0) ~name:"smvp"
      [
        B.for_ ~trips:180
          ([
             B.load_global col_index (B.seq ~stride:8);
             B.load_global mesh B.rand_access;
             B.fp_work 6;
             B.load_global disp B.rand_access;
             B.fp_work 4;
           ]
          @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:2);
      ]
  in
  let time_integration =
    B.proc b ~obj:objs.(1) ~name:"time_integration"
      [
        B.for_ ~trips:70
          [ B.load_global disp (B.seq ~stride:16); B.fp_work 7; B.store_global disp (B.seq ~stride:16) ];
      ]
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 28)
          ([ B.call smvp; B.call time_integration ] @ branch_blob ctx ~mix:fp_mix ~n:2 ~work:3);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "Seismic simulation: sparse matrix-vector gathers over a 6MB mesh";
    expect_significant = true;
    build;
  }
