(* 471.omnetpp stand-in: discrete-event network simulation. An event-queue
   pointer structure larger than L2, virtual dispatch to module handlers,
   and allocation-heavy message passing: CPI ~1.9 with both memory and
   branch components — the paper's second Figure-2 example. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "471.omnetpp"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"omnet" ~n:8 in
  (* Event heap: 7MB of message objects, chased in schedule order. *)
  let messages = B.heap_site b ~name:"messages" ~obj_size:224 ~count:6_144 in
  let gates = B.heap_site b ~name:"gates" ~obj_size:96 ~count:3072 in
  let stats_buf = B.global b ~name:"stats" ~size:(128 * 1024) in
  let module_handlers =
    spread_pool ctx ~objs ~prefix:"handleMessage" ~n:24 ~body:(fun i ->
        [ B.load_heap gates B.rand_access ]
        @ branch_blob ctx ~mix:patterned_mix ~n:(3 + (i mod 4)) ~work:4
        @ [ B.load_heap gates (B.seq ~stride:24); B.work 4 ]
        @ branch_blob ctx ~mix:easy_mix ~n:2 ~work:3)
  in
  let schedule_next =
    B.proc b ~obj:objs.(0) ~name:"cMessageHeap_shiftup"
      (chase_kernel ctx ~site:messages ~steps:4 ~work:6
         ~extra:(branch_blob ctx ~mix:patterned_mix ~n:1 ~work:2))
  in
  let record_stats =
    B.proc b ~obj:objs.(1) ~name:"record_stats"
      ([ B.load_global stats_buf B.rand_access; B.fp_work 3 ]
      @ branch_blob ctx ~mix:easy_mix ~n:2 ~work:2
      @ [ B.store_global stats_buf B.rand_access ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 560)
          ([ B.call schedule_next ]
          @ dispatch_loop ctx ~trips:2
              ~selector:(bytecode_stream ctx ~n_targets:24 ~length:128 ~hot_fraction:0.25)
              ~callees:module_handlers ~per_iter:[ B.work 3 ]
          @ [
              B.if_
                (Behavior.Bernoulli { p_taken = 0.3 })
                [ B.call record_stats ]
                [ B.work 2 ];
            ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Discrete-event simulator: event-heap chases, virtual dispatch, CPI ~1.9";
    expect_significant = true;
    build;
  }
