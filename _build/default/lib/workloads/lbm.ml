(* 470.lbm stand-in: lattice Boltzmann fluid dynamics. A single fused
   stream-collide loop writing most of what it reads across a >L2 grid;
   essentially branch-free. Third benchmark without significant CPI~MPKI
   correlation. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "470.lbm"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"lbm" ~n:2 in
  let src_grid = B.global b ~name:"src_grid" ~size:(14 * 1024 * 1024) in
  let dst_grid = B.global b ~name:"dst_grid" ~size:(14 * 1024 * 1024) in
  let stream_collide =
    B.proc b ~obj:objs.(0) ~name:"LBM_performStreamCollide"
      [
        B.for_ ~trips:420
          [
            B.load_global src_grid (B.seq ~stride:80);
            B.fp_work 11;
            B.if_
              (Behavior.Bernoulli { p_taken = 0.985 })
              [ B.store_global dst_grid (B.seq ~stride:80) ]
              [ B.work 2 ];
          ];
      ]
  in
  let swap_grids =
    B.proc b ~obj:objs.(1) ~name:"LBM_swapGrids" [ B.work 8 ]
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [ B.for_ ~trips:(scale * 24) [ B.call stream_collide; B.call swap_grids ] ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Lattice Boltzmann: fused stream-collide, branch-free (not significant)";
    expect_significant = false;
    build;
  }
