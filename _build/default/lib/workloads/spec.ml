let table1_2006 () =
  [
    Perlbench.spec;
    Bzip2.spec;
    Gcc_bench.spec;
    Gamess.spec;
    Mcf.spec;
    Zeusmp.spec;
    Gromacs.spec;
    Namd.spec;
    Gobmk.spec;
    Soplex.spec;
    Calculix.spec;
    Hmmer.spec;
    Gemsfdtd.spec;
    Libquantum.spec;
    H264ref.spec;
    Tonto.spec;
    Omnetpp.spec;
    Astar.spec;
    Sphinx3.spec;
    Xalancbmk.spec;
  ]

let all_2006 () = table1_2006 () @ [ Bwaves.spec; Milc.spec; Lbm.spec ]

let simulation_suite () =
  all_2006 ()
  @ [
      Sjeng.spec;
      Gzip.spec;
      Vpr.spec;
      Crafty.spec;
      Parser.spec;
      Twolf.spec;
      Eon.spec;
      Galgel.spec;
    ]

let extended_2000 () =
  [ Vortex.spec; Gap.spec; Mesa.spec; Equake.spec; Ammp.spec; Art.spec ]

let everything () = simulation_suite () @ extended_2000 ()

let find name =
  match List.find_opt (fun (b : Bench.t) -> b.name = name) (everything ()) with
  | Some b -> b
  | None -> raise Not_found

let names specs = List.map (fun (b : Bench.t) -> b.Bench.name) specs

let default_scale = 8
