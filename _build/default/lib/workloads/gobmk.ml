(* 445.gobmk stand-in: Go-playing engine. Deep pattern-matching and
   life-and-death search over board state: dense data-dependent branches
   (among the hardest in the suite), wide code, small data. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "445.gobmk"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"gobmk" ~n:10 in
  let board = B.global b ~name:"board" ~size:(32 * 1024) in
  let cache_tt = B.global b ~name:"transposition" ~size:(256 * 1024) in
  let pattern_matchers =
    spread_pool ctx ~objs ~prefix:"matchpat" ~n:48 ~body:(fun i ->
        [ B.load_global board B.rand_access ]
        @ branch_blob ctx ~mix:hard_mix ~n:(2 + (i mod 3)) ~work:4
        @ branch_blob ctx ~mix:patterned_mix ~n:2 ~work:3)
  in
  let owl_attack = ref [] in
  let reading_procs =
    spread_pool ctx ~objs ~prefix:"attack" ~n:24 ~body:(fun i ->
        [ B.load_global cache_tt B.rand_access ]
        @ branch_blob ctx ~mix:hard_mix ~n:3 ~work:4
        @ [ B.load_global board (B.seq ~stride:8); B.work (3 + (i mod 3)) ])
  in
  owl_attack := call_all (Array.sub reading_procs 0 8);
  let evaluate_position =
    B.proc b ~obj:objs.(1) ~name:"evaluate"
      (branch_blob ctx ~mix:hard_mix ~n:6 ~work:4
      @ call_all (Array.sub pattern_matchers 0 16)
      @ !owl_attack)
  in
  let generate_moves =
    B.proc b ~obj:objs.(2) ~name:"genmove"
      ([ B.for_ ~trips:18 ([ B.load_global board (B.seq ~stride:16) ] @ branch_blob ctx ~mix:hard_mix ~n:2 ~work:3) ]
      @ call_all (Array.sub pattern_matchers 16 16))
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 48)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:4
          @ [ B.call generate_moves; B.call evaluate_position ]
          @ call_all (Array.sub reading_procs 8 8));
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Go engine: data-dependent search branches, high MPKI, small data";
    expect_significant = true;
    build;
  }
