(* 164.gzip stand-in (SPEC CPU 2000): LZ77 compression. Hash-chain match
   searching with periodic literal/match decisions over an L2-resident
   window; used only in the simulator linearity study. *)

open Toolkit
module B = Pi_isa.Builder

let name = "164.gzip"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"gzip" ~n:4 in
  let window = B.global b ~name:"window" ~size:(256 * 1024) in
  let hash_head = B.global b ~name:"hash_head" ~size:(128 * 1024) in
  let longest_match =
    B.proc b ~obj:objs.(0) ~name:"longest_match"
      [
        B.for_ ~trips:40
          ([ B.load_global window B.rand_access; B.work 4 ]
          @ branch_blob ctx ~mix:hard_mix ~n:1 ~work:3
          @ branch_blob ctx ~mix:patterned_mix ~n:1 ~work:2);
      ]
  in
  let deflate_step =
    B.proc b ~obj:objs.(1) ~name:"deflate"
      ([ B.load_global hash_head B.rand_access; B.work 3 ]
      @ branch_blob ctx ~mix:patterned_mix ~n:3 ~work:4
      @ [ B.call longest_match; B.store_global hash_head B.rand_access ])
  in
  let fill_window =
    B.proc b ~obj:objs.(2) ~name:"fill_window"
      [ B.for_ ~trips:48 [ B.load_global window (B.seq ~stride:64); B.work 3; B.store_global window (B.seq ~stride:64) ] ]
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 70)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:4
          @ [ B.call deflate_step ]
          @ [ B.if_ (Pi_isa.Behavior.Periodic { pattern = Pi_isa.Behavior.loop_pattern ~trips:16 }) [ B.work 2 ] [ B.call fill_window ] ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "LZ77 compressor: hash-chain searches, literal/match decisions";
    expect_significant = true;
    build;
  }
