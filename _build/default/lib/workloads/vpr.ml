(* 175.vpr stand-in (SPEC CPU 2000): FPGA placement by simulated annealing.
   Random swap proposals with accept/reject branches whose bias drifts, and
   routing-cost gathers over netlist structures. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "175.vpr"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"vpr" ~n:4 in
  let grid = B.global b ~name:"placement_grid" ~size:(192 * 1024) in
  let cost_tables = B.global b ~name:"cost_tables" ~size:(16 * 1024) in
  let netlist = B.heap_site b ~name:"nets" ~obj_size:160 ~count:1536 in
  let try_swap =
    B.proc b ~obj:objs.(0) ~name:"try_swap"
      ([
         B.load_global cost_tables (B.seq ~stride:8);
         B.load_global grid B.rand_access;
         B.work 4;
         B.load_global cost_tables (B.seq ~stride:16);
         B.load_heap netlist B.rand_access;
       ]
      @ branch_blob ctx ~mix:hard_mix ~n:2 ~work:4
      @ [
          B.if_
            (Behavior.Bernoulli { p_taken = 0.44 })
            [ B.store_global grid B.rand_access; B.work 3 ]
            [ B.work 2 ];
        ])
  in
  let net_cost =
    B.proc b ~obj:objs.(1) ~name:"net_cost"
      [
        B.for_ ~trips:14
          ([ B.load_heap netlist (B.seq ~stride:32); B.fp_work 3 ]
          @ branch_blob ctx ~mix:patterned_mix ~n:1 ~work:2);
      ]
  in
  let update_temperature =
    B.proc b ~obj:objs.(2) ~name:"update_t"
      (branch_blob ctx ~mix:easy_mix ~n:3 ~work:3 @ [ B.fp_work 4; B.div_work 1 ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 540)
          ([ B.call try_swap; B.call net_cost ]
          @ [
              B.if_
                (Behavior.Periodic { pattern = Behavior.loop_pattern ~trips:20 })
                [ B.work 2 ]
                [ B.call update_temperature ];
            ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "FPGA placement: annealing accept/reject branches, netlist gathers";
    expect_significant = true;
    build;
  }
