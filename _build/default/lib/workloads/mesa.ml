(* 177.mesa stand-in (SPEC CPU 2000): software 3D rendering. Vertex
   transform FP pipelines and span rasterization loops with mostly counted
   control. Extended-registry benchmark. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "177.mesa"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"mesa" ~n:5 in
  let vertex_buffer = B.global b ~name:"vertex_buffer" ~size:(512 * 1024) in
  let framebuffer = B.global b ~name:"framebuffer" ~size:(3 * 1024 * 1024) in
  let texture = B.global b ~name:"texture" ~size:(1024 * 1024) in
  let transform =
    B.proc b ~obj:objs.(0) ~name:"gl_xform_points3_general"
      [
        B.for_ ~trips:90
          [
            B.load_global vertex_buffer (B.seq ~stride:32);
            B.fp_work 9;
            B.mul_work 2;
            B.store_global vertex_buffer (B.seq ~stride:32);
          ];
      ]
  in
  let rasterize =
    B.proc b ~obj:objs.(1) ~name:"general_textured_triangle"
      [
        B.for_ ~trips:120
          ([
             B.load_global texture B.rand_access;
             B.fp_work 4;
             B.store_global framebuffer (B.seq ~stride:64);
           ]
          @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:2);
      ]
  in
  let clip_cull =
    B.proc b ~obj:objs.(2) ~name:"gl_viewclip_polygon"
      (branch_blob ctx ~mix:patterned_mix ~n:5 ~work:3 @ [ B.fp_work 5 ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 40)
          ([ B.call transform; B.call clip_cull; B.call rasterize ]
          @ [
              B.if_
                (Behavior.Bernoulli { p_taken = 0.92 })
                [ B.work 3 ] [ B.fp_work 4 ];
            ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "Software 3D rendering: FP transforms, texture sampling, span loops";
    expect_significant = true;
    build;
  }
