(* 462.libquantum stand-in: quantum computer simulation. Sweeps over a large
   amplitude vector applying gate operations whose inner control depends on
   qubit bit patterns — long-period deterministic branch sequences layered
   on a prefetch-friendly stream. The paper attributes 84.2% of its CPI
   variance under reordering to branch mispredictions: the memory stream is
   insensitive to placement while the patterned branches alias heavily. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "462.libquantum"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"libq" ~n:4 in
  let amplitudes = B.global b ~name:"amplitudes" ~size:(24 * 1024 * 1024) in
  (* Gate kernels: each sweeps the register with a distinct qubit-mask
     period, so control is deterministic but needs real history to track. *)
  let gate_kernels =
    spread_pool ctx ~objs ~prefix:"gate" ~n:14 ~body:(fun i ->
        let period = 2 lsl (i mod 6) in
        [
          B.for_ ~trips:120
            [
              B.load_global amplitudes (B.seq ~stride:32);
              B.if_ ~label:(fresh_label ctx)
                (Behavior.Periodic { pattern = periodic_pattern ctx ~period })
                [ B.fp_work 4; B.store_global amplitudes (B.seq ~stride:32) ]
                [ B.work 2 ];
              B.work 2;
            ];
        ])
  in
  let toffoli =
    B.proc b ~obj:objs.(1) ~name:"toffoli"
      (branch_blob ctx ~mix:long_history_mix ~n:5 ~work:3
      @ [ B.for_ ~trips:60 [ B.load_global amplitudes (B.seq ~stride:32); B.fp_work 3 ] ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 7)
          (branch_blob ctx ~mix:easy_mix ~n:1 ~work:3
          @ call_all gate_kernels @ [ B.call toffoli ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Quantum simulator: qubit-mask periodic branches on a streaming register";
    expect_significant = true;
    build;
  }
