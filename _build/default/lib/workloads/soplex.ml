(* 450.soplex stand-in: simplex linear-programming solver. Sparse matrix
   operations — indexed gathers over multi-megabyte column data with FP
   pivoting — give it a strong L2 component (CPI ~1.8) alongside moderate,
   significant branch sensitivity. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "450.soplex"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"soplex" ~n:6 in
  let matrix_cols = B.global b ~name:"matrix_cols" ~size:(2 * 1024 * 1024) in
  let row_index = B.global b ~name:"row_index" ~size:(512 * 1024) in
  let workvec = B.global b ~name:"workvec" ~size:(128 * 1024) in
  let price_pass =
    B.proc b ~obj:objs.(0) ~name:"entered4X"
      [
        B.for_ ~trips:72
          ([
             B.load_global row_index (B.seq ~stride:16);
             B.load_global matrix_cols B.rand_access;
             B.fp_work 9;
           ]
          @ branch_blob ctx ~mix:patterned_mix ~n:2 ~work:3);
      ]
  in
  let pivot =
    B.proc b ~obj:objs.(1) ~name:"doPupdate"
      ([ B.load_global workvec (B.seq ~stride:8); B.fp_work 7; B.div_work 1 ]
      @ branch_blob ctx ~mix:hard_mix ~n:2 ~work:4
      @ [ B.store_global workvec (B.seq ~stride:8) ])
  in
  let factorize =
    B.proc b ~obj:objs.(2) ~name:"factorize"
      [
        B.for_ ~trips:36
          ([ B.load_global matrix_cols (B.seq ~stride:128); B.fp_work 6 ]
          @ branch_blob ctx ~mix:fp_mix ~n:2 ~work:3);
      ]
  in
  let ratio_test =
    B.proc b ~obj:objs.(3) ~name:"maxDelta"
      (branch_blob ctx ~mix:patterned_mix ~n:5 ~work:4
      @ [ B.load_global workvec B.rand_access; B.fp_work 4 ])
  in
  let status_checks = guard_pool ctx ~objs ~prefix:"basis_status" ~procs:24 ~branches_per:6 in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 80)
          (call_all status_checks @ [ B.call price_pass; B.call ratio_test; B.call pivot ]
          @ [
              B.if_
                (Behavior.Periodic { pattern = Behavior.loop_pattern ~trips:24 })
                [ B.work 2 ]
                [ B.call factorize ];
            ]
          @ branch_blob ctx ~mix:easy_mix ~n:2 ~work:3);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Simplex LP: sparse gathers over 10MB matrix, FP pivoting, L2-bound";
    expect_significant = true;
    build;
  }
