(* 410.bwaves stand-in: blast-wave CFD (Fortran). Pure block-tridiagonal
   solver sweeps over arrays far larger than L2 with virtually no
   conditional structure beyond counted loops. One of the three compiled
   benchmarks for which the paper could NOT establish significant CPI~MPKI
   correlation: there simply is no MPKI range to regress against. *)

open Toolkit
module B = Pi_isa.Builder

let name = "410.bwaves"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"bwaves" ~n:3 in
  let flow = B.global b ~name:"flow" ~size:(8 * 1024 * 1024) in
  let jacobian = B.global b ~name:"jacobian" ~size:(8 * 1024 * 1024) in
  let mat_x =
    B.proc b ~obj:objs.(0) ~name:"mat_times_vec"
      [
        B.for_ ~trips:280
          [
            B.load_global jacobian (B.seq ~stride:64);
            B.fp_work 9;
            B.load_global flow (B.seq ~stride:32);
            B.fp_work 5;
            B.store_global flow (B.seq ~stride:32);
          ];
      ]
  in
  let bi_cgstab =
    B.proc b ~obj:objs.(1) ~name:"bi_cgstab_block"
      [
        B.for_ ~trips:120
          [ B.load_global flow (B.seq ~stride:16); B.fp_work 7; B.div_work 1 ];
      ]
  in
  let shell =
    B.proc b ~obj:objs.(2) ~name:"shell"
      [ B.for_ ~trips:30 [ B.load_global jacobian (B.seq ~stride:128); B.fp_work 6 ] ]
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [ B.for_ ~trips:(scale * 70) [ B.call mat_x; B.call bi_cgstab; B.call shell; B.work 4 ] ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Blast-wave CFD: pure streaming solver, no branch variance (not significant)";
    expect_significant = false;
    build;
  }
