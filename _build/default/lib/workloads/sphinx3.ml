(* 482.sphinx3 stand-in: speech recognition. Gaussian-mixture scoring (FP
   streams) interleaved with hidden-Markov search over dynamic structures:
   mixed FP/branch/memory profile, CPI ~0.9. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "482.sphinx3"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"sphinx" ~n:6 in
  let gauden = B.global b ~name:"gauden" ~size:(2 * 1024 * 1024) in
  let senone_scores = B.global b ~name:"senone_scores" ~size:(256 * 1024) in
  let hmm_states = B.heap_site b ~name:"hmm_states" ~obj_size:128 ~count:6144 in
  let gmm_score =
    B.proc b ~obj:objs.(0) ~name:"mgau_eval"
      [
        B.for_ ~trips:140
          [
            B.load_global gauden (B.seq ~stride:64);
            B.fp_work 8;
            B.store_global senone_scores (B.seq ~stride:16);
            B.work 2;
          ];
      ]
  in
  let hmm_search =
    B.proc b ~obj:objs.(1) ~name:"hmm_vit_eval"
      [
        B.for_ ~trips:44
          ([ B.load_heap hmm_states B.rand_access; B.work 4 ]
          @ branch_blob ctx ~mix:patterned_mix ~n:2 ~work:3
          @ branch_blob ctx ~mix:hard_mix ~n:1 ~work:2);
      ]
  in
  let prune =
    B.proc b ~obj:objs.(2) ~name:"subvq_prune"
      (branch_blob ctx ~mix:patterned_mix ~n:5 ~work:3
      @ [ B.load_global senone_scores B.rand_access; B.fp_work 3 ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 62)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:3
          @ [ B.call gmm_score; B.call hmm_search; B.call prune ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Speech recognition: GMM FP streaming plus HMM search branches";
    expect_significant = true;
    build;
  }
