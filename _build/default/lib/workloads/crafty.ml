(* 186.crafty stand-in (SPEC CPU 2000): chess engine with 64-bit bitboard
   move generation — long dependent chains of integer logic punctuated by
   very hard search branches. *)

open Toolkit
module B = Pi_isa.Builder

let name = "186.crafty"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"crafty" ~n:5 in
  let bitboards = B.global b ~name:"bitboards" ~size:(32 * 1024) in
  let history_tbl = B.global b ~name:"history" ~size:(96 * 1024) in
  let attacks =
    spread_pool ctx ~objs ~prefix:"attacks" ~n:16 ~body:(fun i ->
        [ B.load_global bitboards (B.seq ~stride:8); B.work (6 + (i mod 4)) ]
        @ branch_blob ctx ~mix:hard_mix ~n:2 ~work:3)
  in
  let make_move =
    B.proc b ~obj:objs.(0) ~name:"make_move"
      ([ B.load_global bitboards B.rand_access; B.work 8 ]
      @ branch_blob ctx ~mix:patterned_mix ~n:2 ~work:3
      @ [ B.store_global bitboards B.rand_access ])
  in
  let evaluate =
    B.proc b ~obj:objs.(1) ~name:"evaluate"
      (branch_blob ctx ~mix:hard_mix ~n:5 ~work:4
      @ [ B.load_global history_tbl B.rand_access; B.work 5 ]
      @ branch_blob ctx ~mix:easy_mix ~n:3 ~work:3)
  in
  let search =
    B.proc b ~obj:objs.(2) ~name:"search"
      ([ B.call make_move ]
      @ call_all (Array.sub attacks 0 6)
      @ branch_blob ctx ~mix:hard_mix ~n:2 ~work:3
      @ [ B.call evaluate ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 300)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:4
          @ [ B.call search ]
          @ call_all (Array.sub attacks 6 6));
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2000;
    description = "Bitboard chess: integer logic chains, very hard search branches";
    expect_significant = true;
    build;
  }
