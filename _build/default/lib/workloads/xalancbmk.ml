(* 483.xalancbmk stand-in: XSLT processor. Like gcc, a very large code
   footprint, but object-oriented: virtual dispatch through many small
   methods over a DOM-like pointer structure. CPI ~1.9 with I-cache and
   branch components. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "483.xalancbmk"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"xalan" ~n:14 in
  let dom_nodes = B.heap_site b ~name:"dom_nodes" ~obj_size:112 ~count:6_144 in
  let string_cache = B.heap_site b ~name:"xml_strings" ~obj_size:64 ~count:6144 in
  let templates = B.global b ~name:"templates" ~size:(256 * 1024) in
  let methods =
    spread_pool ctx ~objs ~prefix:"method" ~n:190 ~body:(fun i ->
        let memory =
          match i mod 3 with
          | 0 -> [ B.load_heap dom_nodes (B.chase ~seed:(300 + i)) ]
          | 1 -> [ B.load_heap string_cache B.rand_access ]
          | _ -> [ B.load_global templates B.rand_access ]
        in
        branch_blob ctx ~mix:patterned_mix ~n:(3 + (i mod 4)) ~work:3
        @ memory
        @ branch_blob ctx ~mix:easy_mix ~n:2 ~work:3)
  in
  let apply_templates =
    B.proc b ~obj:objs.(0) ~name:"apply_templates"
      (branch_blob ctx ~mix:easy_mix ~n:2 ~work:3
      @ dispatch_loop ctx ~trips:5
          ~selector:(bytecode_stream ctx ~n_targets:190 ~length:192 ~hot_fraction:0.1)
          ~callees:methods ~per_iter:[ B.work 3 ])
  in
  let navigate_dom =
    B.proc b ~obj:objs.(1) ~name:"navigate_dom"
      (chase_kernel ctx ~site:dom_nodes ~steps:7 ~work:6
         ~extra:(branch_blob ctx ~mix:patterned_mix ~n:1 ~work:2))
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 280)
          ([ B.call navigate_dom; B.call apply_templates ]
          @ branch_blob ctx ~mix:easy_mix ~n:2 ~work:3);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "XSLT processor: big OO code, virtual dispatch, DOM pointer walks";
    expect_significant = true;
    build;
  }
