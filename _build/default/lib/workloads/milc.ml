(* 433.milc stand-in: lattice quantum chromodynamics. SU(3) matrix kernels
   streamed over a huge lattice; control is counted loops only. Second of
   the three benchmarks without significant CPI~MPKI correlation. *)

open Toolkit
module B = Pi_isa.Builder

let name = "433.milc"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"milc" ~n:3 in
  let _ = ctx in
  let lattice = B.global b ~name:"lattice" ~size:(12 * 1024 * 1024) in
  let momenta = B.global b ~name:"momenta" ~size:(4 * 1024 * 1024) in
  let mult_su3 =
    B.proc b ~obj:objs.(0) ~name:"mult_su3_na"
      [
        B.for_ ~trips:240
          [
            B.load_global lattice (B.seq ~stride:96);
            B.mul_work 4;
            B.fp_work 8;
            B.store_global momenta (B.seq ~stride:48);
          ];
      ]
  in
  let gauge_force =
    B.proc b ~obj:objs.(1) ~name:"imp_gauge_force"
      [
        B.for_ ~trips:100
          [ B.load_global momenta (B.seq ~stride:32); B.fp_work 10 ];
      ]
  in
  let boundary_wrap =
    B.proc b ~obj:objs.(2) ~name:"boundary_wrap"
      (branch_blob ctx ~mix:fp_mix ~n:2 ~work:3)
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 85)
          [ B.call mult_su3; B.call gauge_force; B.call boundary_wrap; B.work 5 ];
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Lattice QCD: streamed SU(3) kernels, loop-only control (not significant)";
    expect_significant = false;
    build;
  }
